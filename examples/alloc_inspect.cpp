//===- examples/alloc_inspect.cpp - allocation decision probe -------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Developer tool: prints per-pass allocator decisions (live ranges,
// interferences, spill choices with names) for one workload routine
// under each heuristic. Usage:
//
//   alloc_inspect [ROUTINE] [--no-opt] [--int K] [--flt K]
//                 [--dump-graph | --dot]
//
// --dump-graph lists every interference-graph node with its degree,
// spill cost and cost/degree ratio; --dot emits Graphviz instead.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/Renumber.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "regalloc/BuildGraph.h"
#include "regalloc/Coalesce.h"
#include "regalloc/GraphDump.h"
#include "regalloc/SpillCost.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <cstdlib>

namespace {

/// Prints every node of the first-pass interference graphs: class,
/// name, degree, spill cost, cost/degree ratio. With \p Dot, emits
/// Graphviz instead (pipe through `dot -Tsvg`).
void dumpGraph(const ra::Workload &W, bool Optimize, bool Dot) {
  using namespace ra;
  Module M;
  Function &F = W.Build(M);
  if (Optimize)
    optimizeFunction(F);
  CFG G = CFG::compute(F);
  Dominators Doms = Dominators::compute(F, G);
  LoopInfo Loops = LoopInfo::compute(F, G, Doms);
  renumberLiveRanges(F, G);
  coalesceAll(F, G);
  renumberLiveRanges(F, G);
  Liveness LV = Liveness::compute(F, G);
  auto Graphs = buildInterferenceGraphs(F, LV);
  std::vector<double> Costs =
      computeSpillCosts(F, Loops, CostModel::rtpc());
  for (ClassGraph &CG : Graphs) {
    setNodeCosts(F, Costs, CG);
    if (Dot) {
      std::string Out = dumpGraphviz(
          CG.Graph, nullptr,
          W.Routine + "." + regClassName(CG.Class));
      std::fwrite(Out.data(), 1, Out.size(), stdout);
      continue;
    }
    std::printf("-- class %s: %u nodes %u edges --\n",
                regClassName(CG.Class), CG.Graph.numNodes(),
                CG.Graph.numEdges());
    std::vector<uint32_t> Order(CG.Graph.numNodes());
    for (uint32_t N = 0; N < Order.size(); ++N)
      Order[N] = N;
    std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
      return CG.Graph.degree(A) > CG.Graph.degree(B);
    });
    for (uint32_t N : Order) {
      const IGNode &Node = CG.Graph.node(N);
      unsigned Deg = CG.Graph.degree(N);
      std::printf("  %-16s deg %3u cost %10.0f ratio %8.1f\n",
                  Node.Name.c_str(), Deg, Node.SpillCost,
                  Deg ? Node.SpillCost / Deg : 0.0);
    }
  }
}

} // namespace

using namespace ra;

int main(int Argc, char **Argv) {
  std::string Routine = "SVD";
  bool Optimize = true;
  bool DumpGraph = false;
  bool Dot = false;
  unsigned IntK = 16, FltK = 8;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--no-opt"))
      Optimize = false;
    else if (!std::strcmp(Argv[I], "--dump-graph"))
      DumpGraph = true;
    else if (!std::strcmp(Argv[I], "--dot")) {
      DumpGraph = true;
      Dot = true;
    }
    else if (!std::strcmp(Argv[I], "--int") && I + 1 < Argc)
      IntK = unsigned(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--flt") && I + 1 < Argc)
      FltK = unsigned(std::atoi(Argv[++I]));
    else
      Routine = Argv[I];
  }

  const Workload *W = findWorkload(Routine);
  if (!W) {
    std::fprintf(stderr, "unknown routine '%s'\n", Routine.c_str());
    return 1;
  }

  if (DumpGraph) {
    dumpGraph(*W, Optimize, Dot);
    return 0;
  }

  for (Heuristic H :
       {Heuristic::Chaitin, Heuristic::Briggs, Heuristic::MatulaBeck}) {
    Module M;
    Function &F = W->Build(M);
    if (Optimize)
      optimizeFunction(F);
    AllocatorConfig C;
    C.H = H;
    C.Machine = MachineInfo(IntK, FltK);
    AllocationResult A = allocateRegisters(F, C);

    std::printf("=== %s on %s (k=%u int / %u flt)%s ===\n",
                heuristicName(H), Routine.c_str(), IntK, FltK,
                A.Success ? "" : "  [DID NOT CONVERGE]");
    for (unsigned P = 0; P < A.Stats.numPasses(); ++P) {
      const PassRecord &R = A.Stats.Passes[P];
      std::printf("pass %u: %u ranges, %u edges, %u spilled, cost %.0f\n",
                  P + 1, R.LiveRanges, R.Interferences,
                  R.SpilledLiveRanges, R.SpilledCost);
      if (!R.SpilledNames.empty()) {
        std::printf("  spilled:");
        for (const std::string &Name : R.SpilledNames)
          std::printf(" %s", Name.c_str());
        std::printf("\n");
      }
    }
    std::printf("total spilled ranges: %u, spill loads %u stores %u\n\n",
                A.Stats.totalSpills(), A.Stats.SpillCode.Loads,
                A.Stats.SpillCode.Stores);
  }
  return 0;
}
