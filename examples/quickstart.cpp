//===- examples/quickstart.cpp - five-minute tour of the library ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Quickstart: write a small function in the textual IR, run it, then
// allocate registers with Chaitin's heuristic and with the paper's
// optimistic heuristic and compare. Shows the three API layers a user
// touches: parse (or IRBuilder), allocateRegisters, Simulator.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace ra;

int main() {
  // A dot product with a scaling factor, in the textual IR.
  const char *Source = R"(
    module {
      array @x : flt[64]
      array @y : flt[64]
      func @sdot {
      block entry:
        %i:int = movi 0
        %n:int = movi 64
        %scale:flt = movf 0.5
        %sum:flt = movf 0.0
        jmp head
      block head:
        br lt %i, %n, body, exit
      block body:
        %a:flt = fload @x[%i]
        %b:flt = fload @y[%i]
        %p:flt = fmul %a, %b
        %sum:flt = fadd %sum, %p
        %i:int = addi %i, 1
        jmp head
      block exit:
        %r:flt = fmul %sum, %scale
        ret %r
      }
    }
  )";

  Module M;
  std::string Error;
  if (!parseModule(Source, M, Error)) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }
  Function &F = *M.findFunction("sdot");

  auto Errors = verifyModule(M);
  if (!Errors.empty()) {
    std::fprintf(stderr, "verifier: %s\n", Errors.front().c_str());
    return 1;
  }

  // Golden run over unlimited virtual registers.
  Simulator Sim(M);
  MemoryImage Mem(M);
  for (unsigned I = 0; I < 64; ++I) {
    Mem.floatArray(M.findArray("x"))[I] = 0.25 * I;
    Mem.floatArray(M.findArray("y"))[I] = 2.0;
  }
  ExecutionResult Golden = Sim.runVirtual(F, Mem);
  std::printf("virtual run: result %.2f in %llu cycles\n",
              Golden.FloatReturn, (unsigned long long)Golden.Cycles);

  // Allocate for a tiny machine with both heuristics.
  for (Heuristic H : {Heuristic::Chaitin, Heuristic::Briggs}) {
    Module M2;
    std::string Err2;
    parseModule(Source, M2, Err2);
    Function &F2 = *M2.findFunction("sdot");

    AllocatorConfig C;
    C.H = H;
    C.Machine = MachineInfo(3, 3); // very constrained, forces spills
    AllocationResult A = allocateRegisters(F2, C);

    MemoryImage Mem2(M2);
    for (unsigned I = 0; I < 64; ++I) {
      Mem2.floatArray(M2.findArray("x"))[I] = 0.25 * I;
      Mem2.floatArray(M2.findArray("y"))[I] = 2.0;
    }
    Simulator Sim2(M2);
    ExecutionResult Run = Sim2.runAllocated(F2, A, Mem2);
    std::printf("%-8s: result %.2f, %u pass(es), %u live ranges "
                "spilled, %llu cycles (%llu spill)\n",
                heuristicName(H), Run.FloatReturn, A.Stats.numPasses(),
                A.Stats.totalSpills(), (unsigned long long)Run.Cycles,
                (unsigned long long)Run.SpillCycles);
  }

  std::printf("\nFinal allocated code (optimistic):\n");
  Module M3;
  std::string Err3;
  parseModule(Source, M3, Err3);
  Function &F3 = *M3.findFunction("sdot");
  AllocatorConfig C;
  C.Machine = MachineInfo(3, 3);
  allocateRegisters(F3, C);
  std::printf("%s", printFunction(M3, F3).c_str());
  return 0;
}
