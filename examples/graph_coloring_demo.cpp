//===- examples/graph_coloring_demo.cpp - Figures 2 and 3 ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The coloring heuristics on the paper's own example graphs, using the
// standalone graph-coloring API (no IR needed):
//
//  * Figure 2 — a five-node graph that needs three colors; every
//    heuristic colors it.
//  * Figure 3 — the four-cycle w-x-z-y. It is 2-colorable, but every
//    node has degree two, so Chaitin's simplification gets stuck at
//    k = 2 and spills; the optimistic heuristic colors it.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"

#include <cstdio>

using namespace ra;

namespace {

void show(const char *Title, const InterferenceGraph &G, unsigned K,
          const char *const *Names) {
  std::printf("%s (k = %u)\n", Title, K);
  for (Heuristic H :
       {Heuristic::Chaitin, Heuristic::Briggs, Heuristic::MatulaBeck}) {
    ColoringResult R = colorGraph(G, K, H);
    std::printf("  %-12s:", heuristicName(H));
    if (R.success()) {
      std::printf(" colored with %u colors —", R.NumColorsUsed);
      for (unsigned N = 0; N < G.numNodes(); ++N)
        std::printf(" %s:%d", Names[N], R.ColorOf[N]);
    } else {
      std::printf(" SPILLS");
      for (uint32_t N : R.Spilled)
        std::printf(" %s", Names[N]);
      std::printf(" (then colors the rest)");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("The paper's example graphs under all three heuristics.\n\n");

  // Figure 2: a-b-c triangle, b-d, c-d, d-e.
  {
    InterferenceGraph G(5);
    G.addEdge(0, 1);
    G.addEdge(0, 2);
    G.addEdge(1, 2);
    G.addEdge(1, 3);
    G.addEdge(2, 3);
    G.addEdge(3, 4);
    for (unsigned N = 0; N < 5; ++N)
      G.node(N).SpillCost = 100;
    const char *Names[] = {"a", "b", "c", "d", "e"};
    show("Figure 2 — three colors suffice", G, 3, Names);
  }

  // Figure 3: the 4-cycle w-x-z-y-w.
  {
    InterferenceGraph G(4);
    G.addEdge(0, 1); // w-x
    G.addEdge(1, 2); // x-z
    G.addEdge(2, 3); // z-y
    G.addEdge(3, 0); // y-w
    for (unsigned N = 0; N < 4; ++N)
      G.node(N).SpillCost = 100;
    const char *Names[] = {"w", "x", "z", "y"};
    show("Figure 3 — 2-colorable, but every degree is 2", G, 2, Names);
  }

  std::printf("Chaitin's heuristic spills on Figure 3 even though a "
              "2-coloring exists;\ndeferring the spill decision to the "
              "select phase (the paper's change) finds it.\n");
  return 0;
}
