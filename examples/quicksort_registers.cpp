//===- examples/quicksort_registers.cpp - shrinking register files --------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Section 3.2's integer experiment as a runnable example: sort an array
// with quicksort while shrinking the integer register file, and watch
// spill code eat into the running time. "An adequate register set is
// important" — and spill-code quality is what the allocator controls.
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ra;

int main() {
  constexpr uint32_t N = 50000;
  std::printf("Quicksort, %u integers, optimistic allocator, shrinking "
              "integer register file:\n\n",
              N);
  std::printf("%9s %14s %12s %14s %16s\n", "registers", "spilled ranges",
              "object (B)", "total cycles", "spill cycles (%)");

  uint64_t Baseline = 0;
  for (unsigned K = 16; K >= 8; K -= 2) {
    Module M;
    Function &F = buildQuicksort(M, N);
    optimizeFunction(F);
    AllocatorConfig C;
    C.Machine = MachineInfo(K, 8);
    AllocationResult A = allocateRegisters(F, C);
    if (!A.Success) {
      std::fprintf(stderr, "allocation failed at k=%u\n", K);
      return 1;
    }
    MemoryImage Mem(M);
    initQuicksortMemory(M, Mem);
    Simulator Sim(M);
    ExecutionResult R =
        Sim.runAllocated(F, A, Mem, SimOptions{.MaxInstructions = 1ull << 33});
    if (!R.Ok) {
      std::fprintf(stderr, "trap at k=%u: %s\n", K, R.Error.c_str());
      return 1;
    }
    if (K == 16)
      Baseline = R.Cycles;
    std::printf("%9u %14u %12u %14llu %11llu (%4.1f)\n", K,
                A.Stats.totalSpills(),
                F.numInstructions() *
                    CostModel::rtpc().bytesPerInstruction(),
                (unsigned long long)R.Cycles,
                (unsigned long long)R.SpillCycles,
                100.0 * double(R.SpillCycles) / double(R.Cycles));
  }
  std::printf("\nSlowdown at 8 vs 16 registers: measured above "
              "(baseline %llu cycles).\n",
              (unsigned long long)Baseline);
  return 0;
}
