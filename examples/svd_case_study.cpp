//===- examples/svd_case_study.cpp - the paper's motivating example -------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Walks through Section 1.2 / Section 3 of the paper on the
// reconstructed SVD routine: allocates it with Chaitin's heuristic and
// with the optimistic heuristic, showing per-pass spill decisions (which
// live ranges each pass gave up on), the resulting spill counts and
// estimated costs, and the simulated cycle counts.
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ra;

namespace {

void report(Heuristic H) {
  const Workload *W = findWorkload("SVD");
  Module M;
  Function &F = W->Build(M);
  optimizeFunction(F);

  AllocatorConfig C;
  C.H = H;
  AllocationResult A = allocateRegisters(F, C);

  std::printf("=== %s ===\n", heuristicName(H));
  std::printf("passes: %u, coalesced copies: %u\n", A.Stats.numPasses(),
              A.Stats.CopiesCoalesced);
  for (unsigned P = 0; P < A.Stats.numPasses(); ++P) {
    const PassRecord &R = A.Stats.Passes[P];
    std::printf("pass %u: %u live ranges, %u interferences, "
                "%u spilled (cost %.0f)\n",
                P + 1, R.LiveRanges, R.Interferences,
                R.SpilledLiveRanges, R.SpilledCost);
    if (!R.SpilledNames.empty()) {
      std::printf("  spilled:");
      for (const std::string &Name : R.SpilledNames)
        std::printf(" %s", Name.c_str());
      std::printf("\n");
    }
  }

  Simulator Sim(M);
  MemoryImage Mem(M);
  W->Init(M, Mem);
  ExecutionResult Run = Sim.runAllocated(F, A, Mem);
  std::printf("simulated: %llu cycles (%llu in spill code, %llu spill "
              "ops), result %.6f\n\n",
              (unsigned long long)Run.Cycles,
              (unsigned long long)Run.SpillCycles,
              (unsigned long long)Run.SpillOps, Run.FloatReturn);
}

} // namespace

int main() {
  std::printf("SVD case study (Figure 1 structure): how deferring the\n"
              "spill decision cleans up the simplification phase's bad "
              "choices.\n\n");
  report(Heuristic::Chaitin);
  report(Heuristic::Briggs);
  return 0;
}
