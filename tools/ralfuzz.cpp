//===- tools/ralfuzz.cpp - randomized allocator fuzzer --------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Seeded fuzzer for the whole allocation pipeline. Each seed derives a
// random-program shape and a register-file size, generates a
// verifier-clean module, records a pre-allocation golden run, then
// allocates under both of the paper's heuristics and checks the result
// three independent ways:
//
//   1. the post-allocation audit (AllocationAudit.h) re-proves the
//      coloring from scratch;
//   2. the IR verifier accepts the rewritten function;
//   3. the simulator is a differential oracle: the allocated run must
//      reproduce the golden run's memory image and return values.
//
// On the first failure the program shape is shrunk while the failure
// still reproduces, a parseable .ral reproducer (with the seed and
// config in header comments) is dumped, and the tool exits 1.
//
//   ralfuzz [--seeds N] [--start S] [--audit|--no-audit]
//           [--fault-inject] [--out FILE] [--emit-corpus DIR] [--quiet]
//
//   --seeds N       number of seeds to run (default 1000)
//   --start S       first seed (default 0)
//   --audit         run the in-allocator audit too (default on)
//   --no-audit      rely on this tool's external checks only
//   --fault-inject  deliberately miscolor / fail convergence and demand
//                   a Degraded-but-still-correct fallback allocation
//   --out FILE      reproducer path (default ralfuzz-repro.ral)
//   --emit-corpus DIR  instead of fuzzing, write one reproducer-format
//                   .ral per seed into DIR (seeds the checked-in
//                   tests/corpus/ regression corpus) and exit
//   --quiet         no progress lines
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/AllocationAudit.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "support/Rng.h"
#include "workloads/RandomProgram.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

using namespace ra;

namespace {

/// One fuzz input: everything needed to regenerate the exact module and
/// allocation deterministically.
struct FuzzCase {
  uint64_t Seed = 0;
  RandomProgramConfig Shape;
  bool Optimize = false;
  unsigned IntK = 16, FltK = 8;
};

const unsigned IntSizes[] = {4, 8, 16};
const unsigned FltSizes[] = {2, 4, 8};

/// Derives the whole case from the seed so a reproducer needs only the
/// seed and the (possibly shrunk) shape numbers.
FuzzCase deriveCase(uint64_t Seed) {
  FuzzCase FC;
  FC.Seed = Seed;
  Rng R(Seed * 0x9E3779B97F4A7C15ull + 0xA5A5A5A5ull);
  FC.Shape.MaxDepth = unsigned(R.nextInRange(1, 3));
  FC.Shape.StatementsPerBlock = unsigned(R.nextInRange(2, 10));
  FC.Shape.Regions = unsigned(R.nextInRange(1, 8));
  FC.Shape.IntVars = unsigned(R.nextInRange(2, 8));
  FC.Shape.FloatVars = unsigned(R.nextInRange(2, 8));
  FC.Shape.ArraySize = unsigned(R.nextInRange(4, 32));
  FC.Shape.LoopTrip = R.nextInRange(1, 6);
  FC.Optimize = R.nextBool();
  FC.IntK = IntSizes[R.nextBelow(3)];
  FC.FltK = FltSizes[R.nextBelow(3)];
  return FC;
}

/// Runs one (case, heuristic) trial. Returns true when every check
/// passes; otherwise fills \p Failure with a one-line diagnosis.
bool runOne(const FuzzCase &FC, Heuristic H, bool Audit, bool FaultInject,
            std::string &Failure) {
  auto Fail = [&](std::string Msg) {
    Failure = std::string(heuristicName(H)) + " int=" +
              std::to_string(FC.IntK) + " flt=" + std::to_string(FC.FltK) +
              ": " + std::move(Msg);
    return false;
  };

  Module M;
  Function &F = buildRandomProgram(M, FC.Seed, FC.Shape);
  auto PreErrors = verifyFunction(M, F);
  if (!PreErrors.empty())
    return Fail("generator produced unverifiable IR: " + PreErrors.front());
  if (FC.Optimize) {
    optimizeFunction(F);
    auto OptErrors = verifyFunction(M, F);
    if (!OptErrors.empty())
      return Fail("optimizer broke the module: " + OptErrors.front());
  }

  // Golden run on the exact function that will be allocated, before the
  // allocator rewrites it.
  Simulator Sim(M);
  MemoryImage GoldenMem(M);
  ExecutionResult Golden = Sim.runVirtual(F, GoldenMem);
  if (!Golden.Ok)
    return Fail("golden (virtual) run trapped: " + Golden.Error);

  AllocatorConfig C;
  C.H = H;
  C.Machine = MachineInfo(FC.IntK, FC.FltK);
  C.MaxPasses = 64; // Matula-Beck-style worst cases need headroom
  C.Audit = Audit || FaultInject; // injected faults must be caught
  if (FaultInject) {
    // Alternate the injected failure mode by seed so both rungs of the
    // degradation ladder see traffic.
    if (FC.Seed & 1)
      C.FaultInject.NonConvergence = true;
    else
      C.FaultInject.Miscolor = true;
  }

  AllocationResult A = allocateRegisters(F, C);
  if (!A.Success)
    return Fail("allocation failed: " + A.Diag.toString());
  if (FaultInject && A.Outcome != AllocOutcome::Degraded)
    return Fail(std::string("injected fault not degraded (outcome ") +
                allocOutcomeName(A.Outcome) + ")");
  if (!FaultInject && A.Outcome != AllocOutcome::Converged)
    return Fail(std::string("unexpected ") + allocOutcomeName(A.Outcome) +
                ": " + A.Diag.toString());

  // Check 1: independent audit (always, even when the allocator already
  // ran it — this is the oracle the tool vouches for).
  auto AuditErrors = auditAllocation(F, A);
  if (!AuditErrors.empty())
    return Fail("audit: " + AuditErrors.front());

  // Check 2: the rewritten function is still verifier-clean.
  auto PostErrors = verifyFunction(M, F);
  if (!PostErrors.empty())
    return Fail("post-allocation verifier: " + PostErrors.front());

  // Check 3: differential oracle against the golden run.
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runAllocated(F, A, Mem);
  if (!R.Ok)
    return Fail("allocated run trapped: " + R.Error);
  if (R.HasIntReturn != Golden.HasIntReturn ||
      R.IntReturn != Golden.IntReturn)
    return Fail("int return diverged: golden " +
                std::to_string(Golden.IntReturn) + ", allocated " +
                std::to_string(R.IntReturn));
  if (R.HasFloatReturn != Golden.HasFloatReturn ||
      !MemoryImage::doubleSemanticallyEqual(R.FloatReturn,
                                            Golden.FloatReturn))
    return Fail("float return diverged");
  if (!(Mem == GoldenMem))
    return Fail("memory image diverged after allocation");
  return true;
}

/// Greedily shrinks the program shape while the failure reproduces.
/// Each knob is walked down one notch at a time; one sweep that changes
/// nothing ends the loop, so this terminates.
FuzzCase minimizeCase(FuzzCase FC, Heuristic H, bool Audit, bool FaultInject,
                      std::string &Failure) {
  auto StillFails = [&](const FuzzCase &Candidate) {
    std::string Msg;
    if (runOne(Candidate, H, Audit, FaultInject, Msg))
      return false;
    Failure = Msg; // keep the message in sync with the shrunk case
    return true;
  };

  bool Shrunk = true;
  while (Shrunk) {
    Shrunk = false;
    auto TryKnob = [&](auto Get, auto Set, uint64_t Floor) {
      while (uint64_t(Get(FC)) > Floor) {
        FuzzCase Candidate = FC;
        Set(Candidate, Get(FC) - 1);
        if (!StillFails(Candidate))
          break;
        FC = Candidate;
        Shrunk = true;
      }
    };
    TryKnob([](const FuzzCase &C) { return C.Shape.Regions; },
            [](FuzzCase &C, uint64_t V) { C.Shape.Regions = unsigned(V); },
            1);
    TryKnob([](const FuzzCase &C) { return C.Shape.MaxDepth; },
            [](FuzzCase &C, uint64_t V) { C.Shape.MaxDepth = unsigned(V); },
            1);
    TryKnob(
        [](const FuzzCase &C) { return C.Shape.StatementsPerBlock; },
        [](FuzzCase &C, uint64_t V) {
          C.Shape.StatementsPerBlock = unsigned(V);
        },
        1);
    TryKnob([](const FuzzCase &C) { return C.Shape.IntVars; },
            [](FuzzCase &C, uint64_t V) { C.Shape.IntVars = unsigned(V); },
            1);
    TryKnob([](const FuzzCase &C) { return C.Shape.FloatVars; },
            [](FuzzCase &C, uint64_t V) { C.Shape.FloatVars = unsigned(V); },
            1);
    TryKnob([](const FuzzCase &C) { return C.Shape.ArraySize; },
            [](FuzzCase &C, uint64_t V) { C.Shape.ArraySize = unsigned(V); },
            2);
    TryKnob([](const FuzzCase &C) { return uint64_t(C.Shape.LoopTrip); },
            [](FuzzCase &C, uint64_t V) { C.Shape.LoopTrip = int64_t(V); },
            1);
  }
  return FC;
}

/// Writes a parseable .ral reproducer with the full recipe in comments.
bool dumpReproducer(const std::string &Path, const FuzzCase &FC,
                    Heuristic H, const std::string &Failure) {
  Module M;
  buildRandomProgram(M, FC.Seed, FC.Shape);
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "; ralfuzz reproducer (minimized)\n"
      << "; failure: " << Failure << "\n"
      << "; seed=" << FC.Seed << " heuristic=" << heuristicName(H)
      << " int=" << FC.IntK << " flt=" << FC.FltK
      << " optimize=" << (FC.Optimize ? 1 : 0) << "\n"
      << "; shape: depth=" << FC.Shape.MaxDepth
      << " stmts=" << FC.Shape.StatementsPerBlock
      << " regions=" << FC.Shape.Regions << " ivars=" << FC.Shape.IntVars
      << " fvars=" << FC.Shape.FloatVars
      << " arrays=" << FC.Shape.ArraySize
      << " trip=" << FC.Shape.LoopTrip << "\n"
      << "; replay: rac " << Path << " --heuristic " << heuristicName(H)
      << " --int " << FC.IntK << " --flt " << FC.FltK << " --run"
      << (FC.Optimize ? "" : " --no-opt") << "\n"
      << printModule(M);
  return bool(Out);
}

/// Writes one corpus case: the same reproducer format dumpReproducer
/// emits (seed + shape + replay line in comments, then the module), so
/// corpus files double as documentation of how to re-derive them.
bool dumpCorpusFile(const std::string &Path, const FuzzCase &FC) {
  Module M;
  buildRandomProgram(M, FC.Seed, FC.Shape);
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "; ralfuzz corpus case\n"
      << "; seed=" << FC.Seed << " int=" << FC.IntK << " flt=" << FC.FltK
      << " optimize=" << (FC.Optimize ? 1 : 0) << "\n"
      << "; shape: depth=" << FC.Shape.MaxDepth
      << " stmts=" << FC.Shape.StatementsPerBlock
      << " regions=" << FC.Shape.Regions << " ivars=" << FC.Shape.IntVars
      << " fvars=" << FC.Shape.FloatVars
      << " arrays=" << FC.Shape.ArraySize
      << " trip=" << FC.Shape.LoopTrip << "\n"
      << "; replay: rac " << Path << " --int " << FC.IntK << " --flt "
      << FC.FltK << " --run --audit"
      << (FC.Optimize ? "" : " --no-opt") << "\n"
      << printModule(M);
  return bool(Out);
}

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start S] [--audit|--no-audit]\n"
               "       [--fault-inject] [--out FILE] [--emit-corpus DIR]\n"
               "       [--quiet]\n",
               Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seeds = 1000, Start = 0;
  bool Audit = true, FaultInject = false, Quiet = false;
  std::string OutPath = "ralfuzz-repro.ral";
  std::string CorpusDir;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--seeds" && I + 1 < Argc) {
      Seeds = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--start" && I + 1 < Argc) {
      Start = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--audit") {
      Audit = true;
    } else if (Arg == "--no-audit") {
      Audit = false;
    } else if (Arg == "--fault-inject") {
      FaultInject = true;
    } else if (Arg == "--out" && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else if (Arg == "--emit-corpus" && I + 1 < Argc) {
      CorpusDir = Argv[++I];
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 1;
    }
  }

  if (!CorpusDir.empty()) {
    for (uint64_t S = Start; S < Start + Seeds; ++S) {
      FuzzCase FC = deriveCase(S);
      char Name[32];
      std::snprintf(Name, sizeof(Name), "seed%04llu.ral",
                    (unsigned long long)S);
      std::string Path = CorpusDir + "/" + Name;
      if (!dumpCorpusFile(Path, FC)) {
        std::fprintf(stderr, "ralfuzz: %s: io-error: cannot write corpus"
                             " file\n", Path.c_str());
        return 1;
      }
    }
    std::printf("ralfuzz: %llu corpus cases written to %s\n",
                (unsigned long long)Seeds, CorpusDir.c_str());
    return 0;
  }

  const Heuristic Heuristics[] = {Heuristic::Chaitin, Heuristic::Briggs};
  uint64_t Trials = 0;

  for (uint64_t S = Start; S < Start + Seeds; ++S) {
    FuzzCase FC = deriveCase(S);
    for (Heuristic H : Heuristics) {
      ++Trials;
      std::string Failure;
      if (runOne(FC, H, Audit, FaultInject, Failure))
        continue;

      std::fprintf(stderr, "seed %llu FAILED: %s\n",
                   (unsigned long long)S, Failure.c_str());
      std::fprintf(stderr, "minimizing...\n");
      FuzzCase Min = minimizeCase(FC, H, Audit, FaultInject, Failure);
      if (dumpReproducer(OutPath, Min, H, Failure))
        std::fprintf(stderr, "reproducer written to %s\n", OutPath.c_str());
      else
        std::fprintf(stderr, "cannot write reproducer %s\n",
                     OutPath.c_str());
      std::fprintf(stderr,
                   "minimized: seed=%llu shape depth=%u stmts=%u "
                   "regions=%u ivars=%u fvars=%u arrays=%u trip=%lld\n",
                   (unsigned long long)Min.Seed, Min.Shape.MaxDepth,
                   Min.Shape.StatementsPerBlock, Min.Shape.Regions,
                   Min.Shape.IntVars, Min.Shape.FloatVars,
                   Min.Shape.ArraySize, (long long)Min.Shape.LoopTrip);
      std::fprintf(stderr, "failure after minimization: %s\n",
                   Failure.c_str());
      return 1;
    }
    if (!Quiet && (S + 1 - Start) % 500 == 0)
      std::fprintf(stderr, "%llu/%llu seeds clean\n",
                   (unsigned long long)(S + 1 - Start),
                   (unsigned long long)Seeds);
  }

  std::printf("ralfuzz: %llu seeds, %llu allocations clean (%s%s)\n",
              (unsigned long long)Seeds, (unsigned long long)Trials,
              Audit ? "audited" : "unaudited",
              FaultInject ? ", fault-injected" : "");
  return 0;
}
