//===- tools/ralfuzz.cpp - randomized allocator fuzzer --------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Seeded fuzzer for the whole allocation pipeline. Each seed derives a
// random-program shape and a register-file size, generates a
// verifier-clean module, records a pre-allocation golden run, then
// allocates under every configured allocator — both of the paper's
// coloring heuristics and the linear-scan backend — and checks each
// result three independent ways:
//
//   1. the post-allocation audit (AllocationAudit.h) re-proves the
//      assignment from scratch;
//   2. the IR verifier accepts the rewritten function;
//   3. the simulator is a differential oracle: the allocated run must
//      reproduce the golden run's memory image and return values.
//
// On top of the per-allocator checks, the allocators are differential
// oracles for *each other*: every pair of allocated runs must agree on
// memory image and return values. A divergence names the disagreeing
// pair in the failure line and the reproducer.
//
// On the first failure the program shape is shrunk while the failure
// still reproduces, a parseable .ral reproducer (with the seed and
// config in header comments) is dumped, and the tool exits 1.
//
//   ralfuzz [--seeds N] [--start S] [--allocators A,B,...]
//           [--audit|--no-audit] [--fault-inject] [--chaos]
//           [--seed-timeout-ms N] [--max-instructions N] [--out FILE]
//           [--emit-corpus DIR] [--quiet]
//
//   --seeds N       number of seeds to run (default 1000)
//   --start S       first seed (default 0)
//   --allocators L  comma-separated allocator list (chaitin, briggs,
//                   briggs-parallel, matula-beck, linear-scan,
//                   linear-scan-nosplit);
//                   default chaitin,briggs,briggs-parallel,
//                   linear-scan,linear-scan-nosplit
//   --audit         run the in-allocator audit too (default on)
//   --no-audit      rely on this tool's external checks only
//   --fault-inject  deliberately miscolor / fail convergence and demand
//                   a Degraded-but-still-correct fallback allocation
//   --chaos         draw a per-seed resource-chaos plan (tiny deadlines,
//                   tiny memory budgets, injected phase stalls, graph
//                   memory spikes) and demand Converged-or-Degraded —
//                   never Failed — with every Degraded result naming the
//                   exhausted resource and still passing every oracle
//   --seed-timeout-ms N  wall-clock watchdog per seed: a seed that does
//                   not finish in N ms is reported and skipped (the
//                   stuck run is abandoned detached) instead of hanging
//                   the whole campaign (0 = off, the default)
//   --max-instructions N  simulator instruction ceiling per run; an
//                   exhausted ceiling is reported as a structured
//                   deadline-exceeded trap, distinguishing an allocator-
//                   induced infinite loop from a wrong-answer trap
//   --service       replay every seed twice per allocator through one
//                   in-process AllocationService: the warm pass must be
//                   served from the content-addressed cache and
//                   reproduce the cold allocation byte for byte
//   --out FILE      reproducer path (default ralfuzz-repro.ral)
//   --emit-corpus DIR  instead of fuzzing, write one reproducer-format
//                   .ral per seed into DIR (seeds the checked-in
//                   tests/corpus/ regression corpus) and exit
//   --quiet         no progress lines
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/AllocationAudit.h"
#include "regalloc/Allocator.h"
#include "service/AllocationService.h"
#include "sim/Simulator.h"
#include "support/Rng.h"
#include "workloads/RandomProgram.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

using namespace ra;

namespace {

/// One fuzz input: everything needed to regenerate the exact module and
/// allocation deterministically.
struct FuzzCase {
  uint64_t Seed = 0;
  RandomProgramConfig Shape;
  bool Optimize = false;
  unsigned IntK = 16, FltK = 8;
};

/// One allocator under test: a backend plus (for graph coloring) its
/// simplify/select heuristic, and (for linear scan) whether interval
/// splitting is on.
struct AllocatorChoice {
  Backend B = Backend::GraphColoring;
  Heuristic H = Heuristic::Briggs;
  bool Split = true;
  /// Graph coloring only: run the speculate-and-repair parallel Select
  /// (gate forced to 0 so even fuzz-sized graphs exercise it). Must be
  /// indistinguishable from plain briggs in every observable.
  bool ParallelGraph = false;

  const char *name() const {
    if (B == Backend::LinearScan && !Split)
      return "linear-scan-nosplit";
    if (B == Backend::GraphColoring && ParallelGraph)
      return "briggs-parallel";
    return allocatorName(B, H);
  }
};

/// The allocators every seed runs by default: both of the paper's
/// heuristics plus the linear-scan backend with and without interval
/// splitting, so coloring-vs-coloring, coloring-vs-linear-scan, and
/// split-vs-nosplit differentials are all always live.
std::vector<AllocatorChoice> defaultAllocators() {
  return {{Backend::GraphColoring, Heuristic::Chaitin},
          {Backend::GraphColoring, Heuristic::Briggs},
          {Backend::GraphColoring, Heuristic::Briggs, /*Split=*/true,
           /*ParallelGraph=*/true},
          {Backend::LinearScan, Heuristic::Briggs},
          {Backend::LinearScan, Heuristic::Briggs, /*Split=*/false}};
}

/// The observable outcome of one allocated run, kept for cross-allocator
/// comparison.
struct CapturedRun {
  std::optional<MemoryImage> Mem;
  ExecutionResult R;
};

/// Per-seed resource-chaos plan: budgets and injected stalls drawn from
/// a stream independent of the program shape, so --chaos replays the
/// exact same corpus as a plain run, just under randomized governance.
struct ChaosPlan {
  double DeadlineSeconds = 0;    ///< 0, 1ms, 5ms, or 20ms
  uint64_t MemoryBudgetBytes = 0; ///< 0, 256 KB, 1 MB, or 16 MB
  unsigned SlowPhaseMicros = 0;  ///< injected stall per pass top
  bool GraphMemorySpike = false; ///< +1 GB on the graph estimate
};

ChaosPlan deriveChaos(uint64_t Seed) {
  ChaosPlan P;
  Rng R(Seed * 0xD1B54A32D192ED03ull + 0x5851F42D4C957F2Dull);
  static const double Deadlines[] = {0, 0.001, 0.005, 0.020};
  static const uint64_t Budgets[] = {0, 256ull << 10, 1ull << 20,
                                     16ull << 20};
  P.DeadlineSeconds = Deadlines[R.nextBelow(4)];
  P.MemoryBudgetBytes = Budgets[R.nextBelow(4)];
  if (R.nextBool())
    P.SlowPhaseMicros = 2000;
  P.GraphMemorySpike = R.nextBelow(4) == 0;
  return P;
}

/// How each (case, allocator) trial is checked — shared by the fuzz
/// loop, the watchdog thread, and minimization.
struct RunPolicy {
  bool Audit = true;
  bool FaultInject = false;
  bool Chaos = false;
  ChaosPlan Plan;
  uint64_t MaxInstructions = 1ull << 32; ///< --max-instructions
};

const unsigned IntSizes[] = {4, 8, 16};
const unsigned FltSizes[] = {2, 4, 8};

/// Derives the whole case from the seed so a reproducer needs only the
/// seed and the (possibly shrunk) shape numbers.
FuzzCase deriveCase(uint64_t Seed) {
  FuzzCase FC;
  FC.Seed = Seed;
  Rng R(Seed * 0x9E3779B97F4A7C15ull + 0xA5A5A5A5ull);
  FC.Shape.MaxDepth = unsigned(R.nextInRange(1, 3));
  FC.Shape.StatementsPerBlock = unsigned(R.nextInRange(2, 10));
  FC.Shape.Regions = unsigned(R.nextInRange(1, 8));
  FC.Shape.IntVars = unsigned(R.nextInRange(2, 8));
  FC.Shape.FloatVars = unsigned(R.nextInRange(2, 8));
  FC.Shape.ArraySize = unsigned(R.nextInRange(4, 32));
  FC.Shape.LoopTrip = R.nextInRange(1, 6);
  FC.Optimize = R.nextBool();
  FC.IntK = IntSizes[R.nextBelow(3)];
  FC.FltK = FltSizes[R.nextBelow(3)];
  return FC;
}

/// Runs one (case, allocator) trial. Returns true when every check
/// passes; otherwise fills \p Failure with a one-line diagnosis. On
/// success, \p Cap (when non-null) receives the allocated run's memory
/// image and return values for cross-allocator comparison.
bool runOne(const FuzzCase &FC, AllocatorChoice AC, const RunPolicy &P,
            std::string &Failure, CapturedRun *Cap = nullptr) {
  const bool Audit = P.Audit, FaultInject = P.FaultInject;
  auto Fail = [&](std::string Msg) {
    Failure = std::string(AC.name()) + " int=" +
              std::to_string(FC.IntK) + " flt=" + std::to_string(FC.FltK) +
              ": " + std::move(Msg);
    return false;
  };

  Module M;
  Function &F = buildRandomProgram(M, FC.Seed, FC.Shape);
  auto PreErrors = verifyFunction(M, F);
  if (!PreErrors.empty())
    return Fail("generator produced unverifiable IR: " + PreErrors.front());
  if (FC.Optimize) {
    optimizeFunction(F);
    auto OptErrors = verifyFunction(M, F);
    if (!OptErrors.empty())
      return Fail("optimizer broke the module: " + OptErrors.front());
  }

  // Golden run on the exact function that will be allocated, before the
  // allocator rewrites it.
  Simulator Sim(M);
  SimOptions SO{.MaxInstructions = P.MaxInstructions};
  MemoryImage GoldenMem(M);
  ExecutionResult Golden = Sim.runVirtual(F, GoldenMem, SO);
  if (!Golden.Ok)
    return Fail(std::string(Golden.Diag.code() ==
                                    StatusCode::DeadlineExceeded
                                ? "golden (virtual) run hung: "
                                : "golden (virtual) run trapped: ") +
                Golden.Error);

  AllocatorConfig C;
  C.B = AC.B;
  C.H = AC.H;
  C.Machine = MachineInfo(FC.IntK, FC.FltK);
  C.SplitIntervals = AC.Split;
  if (AC.ParallelGraph) {
    C.ParallelGraph = true;
    C.ParallelGraphMinNodes = 0; // fuzz graphs are small; force the engine
    C.ParallelGraphJobs = 3;     // odd count -> uneven chunk boundaries
  }
  C.MaxPasses = 64; // Matula-Beck-style worst cases need headroom
  C.Audit = Audit || FaultInject || P.Chaos; // faults must be caught
  if (P.Chaos) {
    C.DeadlineSeconds = P.Plan.DeadlineSeconds;
    C.MemoryBudgetBytes = P.Plan.MemoryBudgetBytes;
    C.FaultInject.SlowPhaseMicros = P.Plan.SlowPhaseMicros;
    C.FaultInject.GraphMemorySpike = P.Plan.GraphMemorySpike;
  }
  if (FaultInject) {
    // Alternate the injected failure mode by seed so both rungs of the
    // degradation ladder see traffic.
    if (FC.Seed & 1)
      C.FaultInject.NonConvergence = true;
    else
      C.FaultInject.Miscolor = true;
  }

  AllocationResult A = allocateRegisters(F, C);
  if (!A.Success)
    return Fail("allocation failed: " + A.Diag.toString());
  if (FaultInject && A.Outcome != AllocOutcome::Degraded)
    return Fail(std::string("injected fault not degraded (outcome ") +
                allocOutcomeName(A.Outcome) + ")");
  if (P.Chaos && !FaultInject && A.Outcome == AllocOutcome::Degraded &&
      A.Diag.code() != StatusCode::DeadlineExceeded &&
      A.Diag.code() != StatusCode::MemoryBudgetExceeded)
    return Fail("chaos degrade does not name the exhausted resource: " +
                A.Diag.toString());
  if (!FaultInject && !P.Chaos && A.Outcome != AllocOutcome::Converged)
    return Fail(std::string("unexpected ") + allocOutcomeName(A.Outcome) +
                ": " + A.Diag.toString());

  // Check 1: independent audit (always, even when the allocator already
  // ran it — this is the oracle the tool vouches for).
  auto AuditErrors = auditAllocation(F, A);
  if (!AuditErrors.empty())
    return Fail("audit: " + AuditErrors.front());

  // Check 2: the rewritten function is still verifier-clean.
  auto PostErrors = verifyFunction(M, F);
  if (!PostErrors.empty())
    return Fail("post-allocation verifier: " + PostErrors.front());

  // Check 3: differential oracle against the golden run.
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runAllocated(F, A, Mem, SO);
  if (!R.Ok)
    return Fail(std::string(R.Diag.code() == StatusCode::DeadlineExceeded
                                ? "allocated run hung: "
                                : "allocated run trapped: ") +
                R.Error);
  if (R.HasIntReturn != Golden.HasIntReturn ||
      R.IntReturn != Golden.IntReturn)
    return Fail("int return diverged: golden " +
                std::to_string(Golden.IntReturn) + ", allocated " +
                std::to_string(R.IntReturn));
  if (R.HasFloatReturn != Golden.HasFloatReturn ||
      !MemoryImage::doubleSemanticallyEqual(R.FloatReturn,
                                            Golden.FloatReturn))
    return Fail("float return diverged");
  if (!(Mem == GoldenMem))
    return Fail("memory image diverged after allocation");
  if (Cap) {
    Cap->Mem = std::move(Mem);
    Cap->R = R;
  }
  return true;
}

/// Runs one seed through every allocator in \p Allocs, then compares
/// the allocated runs pairwise — each allocator is a differential
/// oracle for the others. Returns true when everything agrees;
/// otherwise \p Failure names the failing allocator or the disagreeing
/// pair.
bool runSeed(const FuzzCase &FC, const std::vector<AllocatorChoice> &Allocs,
             const RunPolicy &P, std::string &Failure,
             uint64_t *Trials = nullptr) {
  std::vector<CapturedRun> Runs(Allocs.size());
  for (size_t I = 0; I < Allocs.size(); ++I) {
    if (Trials)
      ++*Trials;
    if (!runOne(FC, Allocs[I], P, Failure, &Runs[I]))
      return false;
  }

  // Cross-allocator differential: every pair must agree on memory and
  // return values. (Each run already matched the virtual golden run, so
  // a disagreement here means the goldens diverged too — checking
  // pairwise keeps the oracle independent of that argument and names
  // the exact pair in the failure.)
  for (size_t I = 0; I < Allocs.size(); ++I)
    for (size_t J = I + 1; J < Allocs.size(); ++J) {
      auto Pair = [&] {
        return std::string(Allocs[I].name()) + " vs " + Allocs[J].name() +
               " int=" + std::to_string(FC.IntK) +
               " flt=" + std::to_string(FC.FltK);
      };
      const CapturedRun &A = Runs[I], &B = Runs[J];
      if (A.R.HasIntReturn != B.R.HasIntReturn ||
          A.R.IntReturn != B.R.IntReturn) {
        Failure = Pair() + ": int return diverged across backends (" +
                  std::to_string(A.R.IntReturn) + " vs " +
                  std::to_string(B.R.IntReturn) + ")";
        return false;
      }
      if (A.R.HasFloatReturn != B.R.HasFloatReturn ||
          !MemoryImage::doubleSemanticallyEqual(A.R.FloatReturn,
                                                B.R.FloatReturn)) {
        Failure = Pair() + ": float return diverged across backends";
        return false;
      }
      if (!(*A.Mem == *B.Mem)) {
        Failure = Pair() + ": memory image diverged across backends";
        return false;
      }
    }
  return true;
}

/// Service-mode oracle: replays one seed twice per allocator through a
/// single shared AllocationService. The first pass allocates cold (and
/// populates the content-addressed cache); the second must be served
/// from the cache and reproduce the cold run byte for byte — printed
/// rewritten module, color assignments, spill counts, everything. Warm
/// passes that miss the cache are themselves failures: a converged
/// allocation that does not memoize would silently disable the service.
bool runSeedService(ra::service::AllocationService &Svc, const FuzzCase &FC,
                    const std::vector<AllocatorChoice> &Allocs,
                    std::string &Failure, uint64_t *Trials = nullptr) {
  Module M;
  buildRandomProgram(M, FC.Seed, FC.Shape);
  const std::string Source = printModule(M);

  for (const AllocatorChoice &AC : Allocs) {
    auto Fail = [&](std::string Msg) {
      Failure = std::string(AC.name()) + " int=" + std::to_string(FC.IntK) +
                " flt=" + std::to_string(FC.FltK) +
                " (service): " + std::move(Msg);
      return false;
    };

    ra::service::ServiceRequest Req;
    Req.Source = Source;
    Req.Optimize = FC.Optimize;
    Req.Alloc.B = AC.B;
    Req.Alloc.H = AC.H;
    Req.Alloc.Machine = MachineInfo(FC.IntK, FC.FltK);
    Req.Alloc.SplitIntervals = AC.Split;
    if (AC.ParallelGraph) {
      Req.Alloc.ParallelGraph = true;
      Req.Alloc.ParallelGraphMinNodes = 0;
      Req.Alloc.ParallelGraphJobs = 3;
    }
    Req.Alloc.MaxPasses = 64;
    Req.Alloc.Audit = true;

    if (Trials)
      *Trials += 2;
    ra::service::ServiceReply Cold = Svc.run(Req);
    if (!Cold.S.ok())
      return Fail("cold request failed: " + Cold.S.toString());
    ra::service::ServiceReply Warm = Svc.run(Req);
    if (!Warm.S.ok())
      return Fail("warm request failed: " + Warm.S.toString());

    for (unsigned I = 0; I < Cold.M->numFunctions(); ++I) {
      const AllocationResult &CA = Cold.MA.Functions[I];
      const AllocationResult &WA = Warm.MA.Functions[I];
      if (!CA.Success)
        return Fail("cold allocation failed: " + CA.Diag.toString());
      if (CA.Outcome != AllocOutcome::Converged)
        return Fail(std::string("cold allocation ") +
                    allocOutcomeName(CA.Outcome) + ": " +
                    CA.Diag.toString());
      if (!Warm.CacheHit[I])
        return Fail("warm pass missed the cache for @" +
                    Cold.M->function(I).name());
      if (CA.ColorOf != WA.ColorOf)
        return Fail("warm color assignments diverged from cold for @" +
                    Cold.M->function(I).name());
      if (CA.Stats.totalSpills() != WA.Stats.totalSpills() ||
          CA.Stats.numPasses() != WA.Stats.numPasses())
        return Fail("warm allocation stats diverged from cold for @" +
                    Cold.M->function(I).name());
    }
    // The decisive check: the rewritten modules print byte-identically.
    std::string ColdText = printModule(*Cold.M);
    std::string WarmText = printModule(*Warm.M);
    if (ColdText != WarmText)
      return Fail("warm rewritten module diverged from cold");
  }
  return true;
}

/// Greedily shrinks the program shape while the failure reproduces.
/// Each knob is walked down one notch at a time; one sweep that changes
/// nothing ends the loop, so this terminates. Minimization replays the
/// whole allocator matrix, so a cross-backend divergence shrinks just
/// like a single-allocator failure.
FuzzCase minimizeCase(FuzzCase FC,
                      const std::vector<AllocatorChoice> &Allocs,
                      const RunPolicy &P, std::string &Failure) {
  auto StillFails = [&](const FuzzCase &Candidate) {
    std::string Msg;
    if (runSeed(Candidate, Allocs, P, Msg))
      return false;
    Failure = Msg; // keep the message in sync with the shrunk case
    return true;
  };

  bool Shrunk = true;
  while (Shrunk) {
    Shrunk = false;
    auto TryKnob = [&](auto Get, auto Set, uint64_t Floor) {
      while (uint64_t(Get(FC)) > Floor) {
        FuzzCase Candidate = FC;
        Set(Candidate, Get(FC) - 1);
        if (!StillFails(Candidate))
          break;
        FC = Candidate;
        Shrunk = true;
      }
    };
    TryKnob([](const FuzzCase &C) { return C.Shape.Regions; },
            [](FuzzCase &C, uint64_t V) { C.Shape.Regions = unsigned(V); },
            1);
    TryKnob([](const FuzzCase &C) { return C.Shape.MaxDepth; },
            [](FuzzCase &C, uint64_t V) { C.Shape.MaxDepth = unsigned(V); },
            1);
    TryKnob(
        [](const FuzzCase &C) { return C.Shape.StatementsPerBlock; },
        [](FuzzCase &C, uint64_t V) {
          C.Shape.StatementsPerBlock = unsigned(V);
        },
        1);
    TryKnob([](const FuzzCase &C) { return C.Shape.IntVars; },
            [](FuzzCase &C, uint64_t V) { C.Shape.IntVars = unsigned(V); },
            1);
    TryKnob([](const FuzzCase &C) { return C.Shape.FloatVars; },
            [](FuzzCase &C, uint64_t V) { C.Shape.FloatVars = unsigned(V); },
            1);
    TryKnob([](const FuzzCase &C) { return C.Shape.ArraySize; },
            [](FuzzCase &C, uint64_t V) { C.Shape.ArraySize = unsigned(V); },
            2);
    TryKnob([](const FuzzCase &C) { return uint64_t(C.Shape.LoopTrip); },
            [](FuzzCase &C, uint64_t V) { C.Shape.LoopTrip = int64_t(V); },
            1);
  }
  return FC;
}

/// Writes a parseable .ral reproducer with the full recipe in comments.
/// The failure line names the failing allocator (or disagreeing pair),
/// and one replay line per allocator under test re-runs the matrix.
bool dumpReproducer(const std::string &Path, const FuzzCase &FC,
                    const std::vector<AllocatorChoice> &Allocs,
                    const RunPolicy &P, const std::string &Failure) {
  Module M;
  buildRandomProgram(M, FC.Seed, FC.Shape);
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "; ralfuzz reproducer (minimized)\n"
      << "; failure: " << Failure << "\n"
      << "; seed=" << FC.Seed << " int=" << FC.IntK << " flt=" << FC.FltK
      << " optimize=" << (FC.Optimize ? 1 : 0) << "\n";
  if (P.Chaos)
    Out << "; chaos: deadline_s=" << P.Plan.DeadlineSeconds
        << " mem_bytes=" << P.Plan.MemoryBudgetBytes
        << " slow_us=" << P.Plan.SlowPhaseMicros
        << " spike=" << (P.Plan.GraphMemorySpike ? 1 : 0) << "\n";
  Out
      << "; shape: depth=" << FC.Shape.MaxDepth
      << " stmts=" << FC.Shape.StatementsPerBlock
      << " regions=" << FC.Shape.Regions << " ivars=" << FC.Shape.IntVars
      << " fvars=" << FC.Shape.FloatVars
      << " arrays=" << FC.Shape.ArraySize
      << " trip=" << FC.Shape.LoopTrip << "\n";
  for (const AllocatorChoice &AC : Allocs)
    Out << "; replay: rac " << Path << " --allocator "
        << allocatorName(AC.B, AC.H) << (AC.Split ? "" : " --no-split")
        << (AC.ParallelGraph ? " --parallel-graph=3 --parallel-graph-min 0"
                             : "")
        << " --int " << FC.IntK << " --flt " << FC.FltK << " --run"
        << (FC.Optimize ? "" : " --no-opt") << "\n";
  Out << printModule(M);
  return bool(Out);
}

/// Writes one corpus case: the same reproducer format dumpReproducer
/// emits (seed + shape + replay line in comments, then the module), so
/// corpus files double as documentation of how to re-derive them.
bool dumpCorpusFile(const std::string &Path, const FuzzCase &FC) {
  Module M;
  buildRandomProgram(M, FC.Seed, FC.Shape);
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "; ralfuzz corpus case\n"
      << "; seed=" << FC.Seed << " int=" << FC.IntK << " flt=" << FC.FltK
      << " optimize=" << (FC.Optimize ? 1 : 0) << "\n"
      << "; shape: depth=" << FC.Shape.MaxDepth
      << " stmts=" << FC.Shape.StatementsPerBlock
      << " regions=" << FC.Shape.Regions << " ivars=" << FC.Shape.IntVars
      << " fvars=" << FC.Shape.FloatVars
      << " arrays=" << FC.Shape.ArraySize
      << " trip=" << FC.Shape.LoopTrip << "\n"
      << "; replay: rac " << Path << " --int " << FC.IntK << " --flt "
      << FC.FltK << " --run --audit"
      << (FC.Optimize ? "" : " --no-opt") << "\n"
      << printModule(M);
  return bool(Out);
}

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--start S] [--allocators A,B,...]\n"
               "       [--audit|--no-audit] [--fault-inject] [--chaos]\n"
               "       [--service] [--seed-timeout-ms N]\n"
               "       [--max-instructions N]\n"
               "       [--out FILE] [--emit-corpus DIR] [--quiet]\n"
               "allocators: chaitin, briggs, briggs-parallel, matula-beck,\n"
               "            linear-scan, linear-scan-nosplit (default\n"
               "            chaitin,briggs,briggs-parallel,linear-scan,\n"
               "            linear-scan-nosplit)\n",
               Prog);
}

/// Parses a comma-separated allocator list; returns false (after
/// printing a diagnostic) on any unknown name.
bool parseAllocatorList(const std::string &List,
                        std::vector<AllocatorChoice> &Allocs) {
  Allocs.clear();
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    std::string Name = List.substr(Pos, Comma - Pos);
    AllocatorChoice AC;
    if (Name == "linear-scan-nosplit") {
      AC.B = Backend::LinearScan;
      AC.Split = false;
    } else if (Name == "briggs-parallel") {
      AC.ParallelGraph = true;
    } else if (!parseAllocatorName(Name, AC.B, AC.H)) {
      std::fprintf(stderr,
                   "ralfuzz: unknown allocator '%s' (expected chaitin, "
                   "briggs, briggs-parallel, matula-beck, linear-scan, "
                   "or linear-scan-nosplit)\n",
                   Name.c_str());
      return false;
    }
    Allocs.push_back(AC);
    Pos = Comma + 1;
  }
  return !Allocs.empty();
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Seeds = 1000, Start = 0;
  bool Audit = true, FaultInject = false, Chaos = false, Quiet = false;
  bool Service = false;
  uint64_t SeedTimeoutMs = 0, MaxInstructions = 1ull << 32;
  std::string OutPath = "ralfuzz-repro.ral";
  std::string CorpusDir;
  std::vector<AllocatorChoice> Allocs = defaultAllocators();

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--seeds" && I + 1 < Argc) {
      Seeds = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--start" && I + 1 < Argc) {
      Start = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--allocators" && I + 1 < Argc) {
      if (!parseAllocatorList(Argv[++I], Allocs)) {
        usage(Argv[0]);
        return 1;
      }
    } else if (Arg == "--audit") {
      Audit = true;
    } else if (Arg == "--no-audit") {
      Audit = false;
    } else if (Arg == "--fault-inject") {
      FaultInject = true;
    } else if (Arg == "--chaos") {
      Chaos = true;
    } else if (Arg == "--service") {
      Service = true;
    } else if (Arg == "--seed-timeout-ms" && I + 1 < Argc) {
      SeedTimeoutMs = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--max-instructions" && I + 1 < Argc) {
      MaxInstructions = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--out" && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else if (Arg == "--emit-corpus" && I + 1 < Argc) {
      CorpusDir = Argv[++I];
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 1;
    }
  }

  if (!CorpusDir.empty()) {
    for (uint64_t S = Start; S < Start + Seeds; ++S) {
      FuzzCase FC = deriveCase(S);
      char Name[32];
      std::snprintf(Name, sizeof(Name), "seed%04llu.ral",
                    (unsigned long long)S);
      std::string Path = CorpusDir + "/" + Name;
      if (!dumpCorpusFile(Path, FC)) {
        std::fprintf(stderr, "ralfuzz: %s: io-error: cannot write corpus"
                             " file\n", Path.c_str());
        return 1;
      }
    }
    std::printf("ralfuzz: %llu corpus cases written to %s\n",
                (unsigned long long)Seeds, CorpusDir.c_str());
    return 0;
  }

  if (Service && (FaultInject || Chaos)) {
    std::fprintf(stderr,
                 "ralfuzz: --service cannot combine with --fault-inject "
                 "or --chaos (injected faults and governed outcomes are "
                 "deliberately uncacheable, so the warm-hit oracle would "
                 "always fail)\n");
    return 1;
  }
  // One service (one cache, one pool) across the whole campaign — the
  // same sharing a long-lived racd would exhibit.
  std::optional<ra::service::AllocationService> Svc;
  if (Service)
    Svc.emplace();

  uint64_t Trials = 0, Skipped = 0;

  for (uint64_t S = Start; S < Start + Seeds; ++S) {
    FuzzCase FC = deriveCase(S);
    RunPolicy P;
    P.Audit = Audit;
    P.FaultInject = FaultInject;
    P.Chaos = Chaos;
    if (Chaos)
      P.Plan = deriveChaos(S);
    P.MaxInstructions = MaxInstructions;

    std::string Failure;
    bool Ok;
    if (Service) {
      Ok = runSeedService(*Svc, FC, Allocs, Failure, &Trials);
    } else if (SeedTimeoutMs > 0) {
      // Watchdog: the seed runs on its own thread; a seed that blows
      // the wall-clock budget is reported and skipped — the campaign
      // keeps going instead of hanging. The stuck thread is abandoned
      // detached (it owns its state via shared_ptr, so nothing
      // dangles); a real hang still shows up in the skip report.
      struct SeedState {
        std::string Failure;
        bool Ok = false;
        uint64_t Trials = 0;
        std::promise<void> Done;
      };
      auto State = std::make_shared<SeedState>();
      std::future<void> Fut = State->Done.get_future();
      std::thread([State, FC, Allocs, P] {
        State->Ok = runSeed(FC, Allocs, P, State->Failure, &State->Trials);
        State->Done.set_value();
      }).detach();
      if (Fut.wait_for(std::chrono::milliseconds(SeedTimeoutMs)) !=
          std::future_status::ready) {
        ++Skipped;
        std::fprintf(stderr,
                     "seed %llu SKIPPED: still running after "
                     "--seed-timeout-ms %llu (possible hang; abandoned "
                     "detached)\n",
                     (unsigned long long)S,
                     (unsigned long long)SeedTimeoutMs);
        continue;
      }
      Trials += State->Trials;
      Ok = State->Ok;
      Failure = State->Failure;
    } else {
      Ok = runSeed(FC, Allocs, P, Failure, &Trials);
    }

    if (!Ok) {
      std::fprintf(stderr, "seed %llu FAILED: %s\n",
                   (unsigned long long)S, Failure.c_str());
      if (Service) {
        // Cold-vs-warm divergences depend on shared-cache state, which
        // the shape-shrinking minimizer cannot replay faithfully — the
        // seed and allocator in the failure line are the reproducer.
        return 1;
      }
      std::fprintf(stderr, "minimizing...\n");
      FuzzCase Min = minimizeCase(FC, Allocs, P, Failure);
      if (dumpReproducer(OutPath, Min, Allocs, P, Failure))
        std::fprintf(stderr, "reproducer written to %s\n", OutPath.c_str());
      else
        std::fprintf(stderr, "cannot write reproducer %s\n",
                     OutPath.c_str());
      std::fprintf(stderr,
                   "minimized: seed=%llu shape depth=%u stmts=%u "
                   "regions=%u ivars=%u fvars=%u arrays=%u trip=%lld\n",
                   (unsigned long long)Min.Seed, Min.Shape.MaxDepth,
                   Min.Shape.StatementsPerBlock, Min.Shape.Regions,
                   Min.Shape.IntVars, Min.Shape.FloatVars,
                   Min.Shape.ArraySize, (long long)Min.Shape.LoopTrip);
      std::fprintf(stderr, "failure after minimization: %s\n",
                   Failure.c_str());
      return 1;
    }
    if (!Quiet && (S + 1 - Start) % 500 == 0)
      std::fprintf(stderr, "%llu/%llu seeds clean\n",
                   (unsigned long long)(S + 1 - Start),
                   (unsigned long long)Seeds);
  }

  std::string Names;
  for (const AllocatorChoice &AC : Allocs) {
    if (!Names.empty())
      Names += ",";
    Names += AC.name();
  }
  if (Skipped > 0)
    std::fprintf(stderr,
                 "ralfuzz: %llu seed%s skipped by the --seed-timeout-ms "
                 "watchdog\n",
                 (unsigned long long)Skipped, Skipped == 1 ? "" : "s");
  std::printf("ralfuzz: %llu seeds x %zu allocators, %llu allocations "
              "clean (%s%s%s; %s)\n",
              (unsigned long long)Seeds, Allocs.size(),
              (unsigned long long)Trials,
              Audit ? "audited" : "unaudited",
              FaultInject ? ", fault-injected" : "",
              Chaos ? ", chaos" : "", Names.c_str());
  if (Service) {
    ra::service::CacheStats CS = Svc->cacheStats();
    std::printf("ralfuzz: service cache %llu hits / %llu misses, every "
                "warm replay byte-identical\n",
                (unsigned long long)CS.Hits,
                (unsigned long long)CS.Misses);
  }
  return 0;
}
