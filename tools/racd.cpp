//===- tools/racd.cpp - register-allocation daemon ------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Allocation as a service: one long-lived process holding one
// AllocationService (shared ThreadPool + content-addressed AllocCache)
// and serving the racd wire protocol:
//
//   racd --socket PATH [options]     listen on a Unix-domain socket,
//                                    one thread per connection
//   racd --stdio [options]           serve a single session over
//                                    stdin/stdout (inetd-style; handy
//                                    for tests and pipes)
//
//   --workers N          miss-allocation pool width (0 = one per
//                        hardware thread, the default)
//   --cache-entries N    cache entry bound (default 65536; 0 = unbounded)
//   --cache-mb N         cache byte ceiling (default 256; 0 = unbounded)
//   --no-cache           disable the allocation cache entirely
//   --stats-csv FILE     append one cache-counter CSV sample at shutdown
//
// Requests carry their own allocator configuration (backend, register
// files, deadline, memory budget), so one daemon serves heterogeneous
// clients; results are byte-identical to running rac on the same input.
// A Shutdown frame stops the daemon cleanly: the listener wakes, every
// connection thread is joined, and the socket file is unlinked.
//
//===----------------------------------------------------------------------===//

#include "service/AllocationService.h"
#include "service/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace ra;
using namespace ra::service;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --stdio)\n"
               "       [--workers N] [--cache-entries N] [--cache-mb N]\n"
               "       [--no-cache] [--stats-csv FILE]\n",
               Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath, StatsCsvPath;
  bool Stdio = false;
  ServiceConfig SC;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--socket" && I + 1 < Argc) {
      SocketPath = Argv[++I];
    } else if (Arg == "--stdio") {
      Stdio = true;
    } else if (Arg == "--workers" && I + 1 < Argc) {
      SC.Workers = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--cache-entries" && I + 1 < Argc) {
      SC.CacheMaxEntries = uint64_t(std::atoll(Argv[++I]));
    } else if (Arg == "--cache-mb" && I + 1 < Argc) {
      SC.CacheMaxBytes = uint64_t(std::atoll(Argv[++I])) << 20;
    } else if (Arg == "--no-cache") {
      SC.CacheEnabled = false;
    } else if (Arg == "--stats-csv" && I + 1 < Argc) {
      StatsCsvPath = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "racd: unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 1;
    }
  }
  if (Stdio == !SocketPath.empty()) {
    usage(Argv[0]);
    return 1;
  }

  AllocationService Svc(SC);
  RacdServer Server(Svc);
  Status S;
  if (Stdio) {
    S = Server.serveStream(/*InFd=*/0, /*OutFd=*/1);
  } else {
    S = Server.listenUnix(SocketPath);
    if (S.ok()) {
      std::fprintf(stderr, "racd: listening on %s (%u workers)\n",
                   SocketPath.c_str(), Svc.poolWidth());
      S = Server.acceptLoop();
    }
  }
  if (!S.ok())
    std::fprintf(stderr, "racd: %s\n", S.toString().c_str());

  CacheStats CS = Svc.cacheStats();
  std::fprintf(stderr,
               "racd: served %llu requests; cache %llu hits / %llu misses"
               " / %llu evictions, %llu bytes peak\n",
               (unsigned long long)Svc.requestsServed(),
               (unsigned long long)CS.Hits, (unsigned long long)CS.Misses,
               (unsigned long long)CS.Evictions,
               (unsigned long long)CS.PeakBytes);
  if (!StatsCsvPath.empty()) {
    std::ofstream Out(StatsCsvPath);
    if (Out)
      Out << cacheStatsCsvHeader() << cacheStatsCsvRow(CS);
    if (!Out || !Out.flush()) {
      std::fprintf(stderr, "racd: cannot write %s\n", StatsCsvPath.c_str());
      return 1;
    }
  }
  return S.ok() ? 0 : 1;
}
