//===- tools/rac.cpp - register-allocating compiler driver ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Command-line driver over the textual IR:
//
//   rac FILE.ral [options]
//
//   --heuristic chaitin|briggs|matula-beck   coloring policy (briggs)
//   --int K / --flt K    register file sizes (16 / 8)
//   --jobs N             allocate functions on N pool workers
//                        (0 = one per hardware thread; output is
//                        bit-identical at any setting)
//   --no-opt             skip LICM/strength reduction/value numbering
//   --remat              rematerialize constant spills
//   --print              print the allocated function(s)
//   --run                execute each function on zero-filled memory
//   --quiet              suppress the statistics table
//   --bench-json FILE    merge allocation telemetry into FILE
//
// Exit status: 0 on success, 1 on parse/verify/allocation errors.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "support/Table.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace ra;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s FILE.ral [--heuristic chaitin|briggs|matula-beck]\n"
      "       [--int K] [--flt K] [--jobs N] [--no-opt] [--remat]\n"
      "       [--print] [--run] [--quiet] [--bench-json FILE]\n",
      Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  Heuristic H = Heuristic::Briggs;
  unsigned IntK = 16, FltK = 8, Jobs = 1;
  bool Optimize = true, Remat = false, Print = false, Run = false;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--heuristic" && I + 1 < Argc) {
      std::string Name = Argv[++I];
      if (Name == "chaitin")
        H = Heuristic::Chaitin;
      else if (Name == "briggs")
        H = Heuristic::Briggs;
      else if (Name == "matula-beck")
        H = Heuristic::MatulaBeck;
      else {
        std::fprintf(stderr, "unknown heuristic '%s'\n", Name.c_str());
        return 1;
      }
    } else if (Arg == "--int" && I + 1 < Argc) {
      IntK = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--flt" && I + 1 < Argc) {
      FltK = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      Jobs = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--no-opt") {
      Optimize = false;
    } else if (Arg == "--remat") {
      Remat = true;
    } else if (Arg == "--print") {
      Print = true;
    } else if (Arg == "--run") {
      Run = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 1;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    usage(Argv[0]);
    return 1;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Module M;
  std::string Error;
  if (!parseModule(Buffer.str(), M, Error)) {
    std::fprintf(stderr, "%s: parse error: %s\n", Path.c_str(),
                 Error.c_str());
    return 1;
  }
  auto Errors = verifyModule(M);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: verifier: %s\n", Path.c_str(), E.c_str());
    return 1;
  }

  Table Stats({"Function", "Live Ranges", "Interferences", "Passes",
               "Spilled", "Spill Cost", "Remats", "Object (B)"});
  bool Failed = false;

  if (Optimize)
    for (unsigned FI = 0; FI < M.numFunctions(); ++FI)
      optimizeFunction(M.function(FI));

  AllocatorConfig C;
  C.H = H;
  C.Machine = MachineInfo(IntK, FltK);
  C.Rematerialize = Remat;
  C.Jobs = Jobs;
  ModuleAllocationResult MA = allocateModule(M, C);

  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    Function &F = M.function(FI);
    AllocationResult &A = MA.Functions[FI];
    if (!A.Success) {
      std::fprintf(stderr, "@%s: allocation did not converge\n",
                   F.name().c_str());
      Failed = true;
      continue;
    }

    double Cost = 0;
    for (const PassRecord &P : A.Stats.Passes)
      Cost += P.SpilledCost;
    Stats.addRow({"@" + F.name(),
                  Table::withCommas(A.Stats.initialLiveRanges()),
                  Table::withCommas(A.Stats.Passes[0].Interferences),
                  Table::withCommas(A.Stats.numPasses()),
                  Table::withCommas(A.Stats.totalSpills()),
                  Table::withCommas(int64_t(Cost)),
                  Table::withCommas(A.Stats.SpillCode.Remats),
                  Table::withCommas(F.numInstructions() * 4)});

    if (Print)
      std::printf("%s", printFunction(M, F).c_str());

    if (Run) {
      Simulator Sim(M);
      MemoryImage Mem(M);
      ExecutionResult R = Sim.runAllocated(F, A, Mem);
      if (!R.Ok) {
        std::fprintf(stderr, "@%s: trap: %s\n", F.name().c_str(),
                     R.Error.c_str());
        Failed = true;
        continue;
      }
      std::printf("@%s: %llu cycles (%llu spill)", F.name().c_str(),
                  (unsigned long long)R.Cycles,
                  (unsigned long long)R.SpillCycles);
      if (R.HasIntReturn)
        std::printf(", returned %lld", (long long)R.IntReturn);
      if (R.HasFloatReturn)
        std::printf(", returned %g", R.FloatReturn);
      std::printf("\n");
    }
  }

  if (!Quiet) {
    std::printf("%s heuristic, %u int / %u flt registers%s%s\n",
                heuristicName(H), IntK, FltK,
                Optimize ? ", optimized" : "",
                Remat ? ", rematerialization" : "");
    Stats.print();
  }

  if (!JsonPath.empty()) {
    BenchJson J("rac");
    double Build = 0, Simplify = 0, Select = 0, Spill = 0;
    uint64_t Graphs = 0;
    for (const AllocationResult &A : MA.Functions) {
      for (const PassRecord &P : A.Stats.Passes) {
        Build += P.BuildSeconds;
        Simplify += P.SimplifySeconds;
        Select += P.SelectSeconds;
        Spill += P.SpillSeconds;
        Graphs += NumRegClasses; // one colored graph per class per pass
      }
    }
    J.set("heuristic", std::string(heuristicName(H)));
    J.set("jobs", Jobs);
    J.set("functions", uint64_t(M.numFunctions()));
    J.set("wall_seconds", MA.WallSeconds);
    J.set("graphs_colored", Graphs);
    J.set("graphs_per_sec",
          MA.WallSeconds > 0 ? double(Graphs) / MA.WallSeconds : 0.0);
    J.set("phases.build_seconds", Build);
    J.set("phases.simplify_seconds", Simplify);
    J.set("phases.select_seconds", Select);
    J.set("phases.spill_seconds", Spill);
    if (!J.writeMerged(JsonPath))
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  }
  return Failed ? 1 : 0;
}
