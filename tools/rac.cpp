//===- tools/rac.cpp - register-allocating compiler driver ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Command-line driver over the textual IR:
//
//   rac FILE.ral... [options]
//
//   --allocator chaitin|briggs|matula-beck|linear-scan
//                        allocation backend (briggs): the three coloring
//                        heuristics, or the linear-scan interval walker
//   --heuristic NAME     deprecated alias for --allocator (coloring
//                        spellings only)
//   --int K / --flt K    register file sizes (16 / 8)
//   --jobs N             allocate functions on N pool workers
//                        (0 = one per hardware thread; output is
//                        bit-identical at any setting)
//   --parallel-graph[=N] speculate-and-repair parallel Select inside
//                        each interference graph on N threads (0 = one
//                        per hardware thread); byte-identical to the
//                        sequential phase at any N
//   --parallel-graph-min N
//                        smallest select stack that engages the
//                        parallel engine (default 2048)
//   --no-opt             skip LICM/strength reduction/value numbering
//   --remat              rematerialize constant spills
//   --split / --no-split interval splitting in the linear-scan backend
//                        (default on; --no-split restores whole-lifetime
//                        spilling — the regression oracle)
//   --deadline-ms N      per-function wall-clock budget; over-budget
//                        functions degrade down the ladder (linear-scan
//                        retry, then audited spill-everything) instead
//                        of failing (0 = unbounded, the default)
//   --mem-budget-mb N    per-function interference-matrix memory budget;
//                        a would-be over-budget graph is refused before
//                        allocation and the function degrades (0 =
//                        unbounded, the default)
//   --audit / --no-audit run the post-allocation audit (default on)
//   --cache / --no-cache memoize per-function allocations in the
//                        content-addressed AllocCache (default on);
//                        repeated functions across a batch are served
//                        from the cache, byte-identical to a cold run
//   --print              print the allocated function(s)
//   --run                execute each function on zero-filled memory
//   --quiet              suppress the statistics table
//   --bench-json FILE    merge allocation telemetry into FILE
//   --trace[=]FILE       write a Chrome/Perfetto trace of the run
//   --metrics[=]FILE     write the per-live-range metrics table (CSV)
//
// Every input file is processed even after an earlier one fails, so a
// batch run reports one structured diagnostic per broken input instead
// of dying at the first. Exit status: 0 only when every file parsed,
// verified and allocated; 1 otherwise.
//
// The driver itself is a thin shell: reading files, rendering tables
// and diagnostics. Parse -> verify -> optimize -> allocate lives in
// service/AllocationService — the same engine the racd daemon serves
// over its socket, so both front ends produce identical results.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "ir/IRPrinter.h"
#include "regalloc/Allocator.h"
#include "service/AllocationService.h"
#include "sim/Simulator.h"
#include "support/Status.h"
#include "support/Table.h"
#include "support/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

using namespace ra;
using service::AllocationService;
using service::ServiceConfig;
using service::ServiceReply;
using service::ServiceRequest;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s FILE.ral... "
      "[--allocator chaitin|briggs|matula-beck|linear-scan]\n"
      "       [--int K] [--flt K] [--jobs N] [--no-opt] [--remat]\n"
      "       [--parallel-graph[=N]] [--parallel-graph-min N]\n"
      "       [--split] [--no-split]\n"
      "       [--deadline-ms N] [--mem-budget-mb N]\n"
      "       [--audit] [--no-audit] [--cache] [--no-cache]\n"
      "       [--print] [--run] [--quiet]\n"
      "       [--bench-json FILE] [--trace FILE] [--metrics FILE]\n"
      "\n"
      "  --allocator picks the allocation backend: one of the paper's\n"
      "  coloring heuristics (chaitin, briggs, matula-beck) or the\n"
      "  linear-scan interval allocator (linear-scan).\n"
      "  --heuristic NAME is a deprecated alias for --allocator.\n",
      Prog);
}

/// Prints a failure as "rac: <file>: <status rendering>".
void report(const std::string &Path, const Status &S) {
  std::fprintf(stderr, "rac: %s: %s\n", Path.c_str(), S.toString().c_str());
}

struct Options {
  Backend B = Backend::GraphColoring;
  Heuristic H = Heuristic::Briggs;
  unsigned IntK = 16, FltK = 8, Jobs = 1;
  bool ParallelGraph = false;          ///< --parallel-graph
  unsigned ParallelGraphJobs = 0;      ///< thread count (0 = hardware)
  unsigned ParallelGraphMinNodes = 2048; ///< --parallel-graph-min
  bool Optimize = true, Remat = false, Audit = true, Split = true;
  bool Cache = true;       ///< --cache / --no-cache
  bool Print = false, Run = false, Quiet = false;
  double DeadlineMs = 0;       ///< --deadline-ms (0 = unbounded)
  uint64_t MemBudgetMb = 0;    ///< --mem-budget-mb (0 = unbounded)
  std::string TracePath;   ///< --trace: Chrome trace JSON output.
  std::string MetricsPath; ///< --metrics: per-range CSV output.

  /// The allocator configuration these options describe.
  AllocatorConfig alloc() const {
    AllocatorConfig C;
    C.B = B;
    C.H = H;
    C.Machine = MachineInfo(IntK, FltK);
    C.Rematerialize = Remat;
    C.SplitIntervals = Split;
    C.Jobs = Jobs;
    C.ParallelGraph = ParallelGraph;
    C.ParallelGraphJobs = ParallelGraphJobs;
    C.ParallelGraphMinNodes = ParallelGraphMinNodes;
    C.Audit = Audit;
    C.DeadlineSeconds = DeadlineMs / 1e3;
    C.MemoryBudgetBytes = MemBudgetMb << 20;
    C.CollectMetrics = !MetricsPath.empty();
    return C;
  }
};

/// Aggregated telemetry across all input files for --bench-json.
struct Telemetry {
  double Build = 0, Simplify = 0, Select = 0, Spill = 0, Wall = 0;
  uint64_t Graphs = 0, Functions = 0;
};

/// Processes one input file end to end. Returns Ok only when the file
/// parsed, verified, and every function allocated (Degraded counts as
/// usable but is reported on stderr).
Status processFile(AllocationService &Svc, const std::string &Path,
                   const Options &Opt, Telemetry &T,
                   std::string &MetricsCsv) {
  std::ifstream In(Path);
  if (!In)
    return Status::error(StatusCode::IoError, "cannot open file");
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  ServiceRequest Req;
  Req.Source = Buffer.str();
  Req.Alloc = Opt.alloc();
  Req.Optimize = Opt.Optimize;
  Req.UseCache = Opt.Cache;
  ServiceReply Reply = Svc.run(Req);
  if (!Reply.S.ok())
    return Reply.S;

  Module &M = *Reply.M;
  ModuleAllocationResult &MA = Reply.MA;

  if (Req.Alloc.CollectMetrics)
    for (unsigned FI = 0; FI < M.numFunctions(); ++FI)
      appendMetricsCsv(MetricsCsv, M.function(FI).name(),
                       MA.Functions[FI].Metrics);

  Table Stats({"Function", "Live Ranges", "Interferences", "Passes",
               "Spilled", "Spill Cost", "Remats", "Object (B)"});
  Status FileStatus;

  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    Function &F = M.function(FI);
    AllocationResult &A = MA.Functions[FI];
    if (!A.Success) {
      // Remember the first failure but keep reporting the rest.
      report(Path, A.Diag);
      if (FileStatus.ok())
        FileStatus = A.Diag;
      continue;
    }
    if (A.Outcome == AllocOutcome::Degraded)
      report(Path, A.Diag); // usable, but the user should know

    double Cost = 0;
    for (const PassRecord &P : A.Stats.Passes)
      Cost += P.SpilledCost;
    Stats.addRow({"@" + F.name(),
                  Table::withCommas(A.Stats.initialLiveRanges()),
                  Table::withCommas(A.Stats.Passes[0].Interferences),
                  Table::withCommas(A.Stats.numPasses()),
                  Table::withCommas(A.Stats.totalSpills()),
                  Table::withCommas(int64_t(Cost)),
                  Table::withCommas(A.Stats.SpillCode.Remats),
                  Table::withCommas(F.numInstructions() * 4)});

    if (Opt.Print)
      std::printf("%s", printFunction(M, F).c_str());

    if (Opt.Run) {
      Simulator Sim(M);
      MemoryImage Mem(M);
      ExecutionResult R = Sim.runAllocated(F, A, Mem);
      if (!R.Ok) {
        Status Trap = Status::error(StatusCode::InvalidInput, R.Error)
                          .addContext("trap in @" + F.name());
        report(Path, Trap);
        if (FileStatus.ok())
          FileStatus = Trap;
        continue;
      }
      std::printf("@%s: %llu cycles (%llu spill)", F.name().c_str(),
                  (unsigned long long)R.Cycles,
                  (unsigned long long)R.SpillCycles);
      if (R.HasIntReturn)
        std::printf(", returned %lld", (long long)R.IntReturn);
      if (R.HasFloatReturn)
        std::printf(", returned %g", R.FloatReturn);
      std::printf("\n");
    }
  }

  if (!Opt.Quiet) {
    std::printf("%s: %s allocator, %u int / %u flt registers%s%s%s\n",
                Path.c_str(), allocatorName(Opt.B, Opt.H), Opt.IntK,
                Opt.FltK,
                Opt.Optimize ? ", optimized" : "",
                Opt.Remat ? ", rematerialization" : "",
                Opt.Audit ? ", audited" : "");
    Stats.print();
  }

  for (const AllocationResult &A : MA.Functions)
    for (const PassRecord &P : A.Stats.Passes) {
      T.Build += P.BuildSeconds;
      T.Simplify += P.SimplifySeconds;
      T.Select += P.SelectSeconds;
      T.Spill += P.SpillSeconds;
      T.Graphs += NumRegClasses; // one colored graph per class per pass
    }
  T.Wall += MA.WallSeconds;
  T.Functions += M.numFunctions();

  return FileStatus;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Paths;
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  Options Opt;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if ((Arg == "--allocator" || Arg == "--heuristic") && I + 1 < Argc) {
      // --heuristic predates the backend split and stays as an alias so
      // existing scripts keep working; --allocator is the spelling the
      // help text advertises.
      std::string Name = Argv[++I];
      if (!parseAllocatorName(Name, Opt.B, Opt.H)) {
        Status S =
            Status::error(StatusCode::InvalidInput,
                          "unknown allocator '" + Name +
                              "' (expected chaitin, briggs, "
                              "matula-beck, or linear-scan)")
                .addContext(Arg);
        std::fprintf(stderr, "rac: %s\n", S.toString().c_str());
        return 1;
      }
    } else if (Arg == "--int" && I + 1 < Argc) {
      Opt.IntK = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--flt" && I + 1 < Argc) {
      Opt.FltK = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--jobs" && I + 1 < Argc) {
      Opt.Jobs = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--parallel-graph") {
      Opt.ParallelGraph = true;
    } else if (Arg.rfind("--parallel-graph=", 0) == 0) {
      Opt.ParallelGraph = true;
      Opt.ParallelGraphJobs = unsigned(std::atoi(Arg.c_str() + 17));
    } else if (Arg == "--parallel-graph-min" && I + 1 < Argc) {
      Opt.ParallelGraphMinNodes = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--deadline-ms" && I + 1 < Argc) {
      Opt.DeadlineMs = std::atof(Argv[++I]);
    } else if (Arg == "--mem-budget-mb" && I + 1 < Argc) {
      Opt.MemBudgetMb = uint64_t(std::atoll(Argv[++I]));
    } else if (Arg == "--no-opt") {
      Opt.Optimize = false;
    } else if (Arg == "--remat") {
      Opt.Remat = true;
    } else if (Arg == "--split") {
      Opt.Split = true;
    } else if (Arg == "--no-split") {
      Opt.Split = false;
    } else if (Arg == "--audit") {
      Opt.Audit = true;
    } else if (Arg == "--no-audit") {
      Opt.Audit = false;
    } else if (Arg == "--cache") {
      Opt.Cache = true;
    } else if (Arg == "--no-cache") {
      Opt.Cache = false;
    } else if (Arg == "--print") {
      Opt.Print = true;
    } else if (Arg == "--run") {
      Opt.Run = true;
    } else if (Arg == "--quiet") {
      Opt.Quiet = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      Opt.TracePath = Arg.substr(8);
    } else if (Arg == "--trace" && I + 1 < Argc) {
      Opt.TracePath = Argv[++I];
    } else if (Arg.rfind("--metrics=", 0) == 0) {
      Opt.MetricsPath = Arg.substr(10);
    } else if (Arg == "--metrics" && I + 1 < Argc) {
      Opt.MetricsPath = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 1;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (Paths.empty()) {
    usage(Argv[0]);
    return 1;
  }

  // One service instance spans the whole batch, so a function repeated
  // across input files (or files repeated on the command line) is
  // allocated once and served from the cache after that.
  ServiceConfig SC;
  SC.CacheEnabled = Opt.Cache;
  SC.Workers = Opt.Jobs;
  AllocationService Svc(SC);

  Telemetry T;
  std::string MetricsCsv;
  bool Failed = false;
  if (!Opt.TracePath.empty())
    trace::beginSession();
  for (const std::string &Path : Paths) {
    Status S = processFile(Svc, Path, Opt, T, MetricsCsv);
    if (!S.ok()) {
      // Parse/verify/open failures were not yet printed by processFile;
      // allocation failures were. Printing the headline status twice is
      // avoided by only reporting codes processFile returns directly.
      if (S.code() == StatusCode::IoError ||
          S.code() == StatusCode::ParseError ||
          S.code() == StatusCode::VerifyError)
        report(Path, S);
      Failed = true;
    }
  }

  // Observability outputs. An unwritable path is a hard failure with a
  // structured diagnostic — events must never be dropped silently.
  if (!Opt.TracePath.empty()) {
    trace::SessionLog Log = trace::endSession();
    if (Status S = trace::writeChromeJson(Opt.TracePath, Log); !S.ok()) {
      report(Opt.TracePath, S);
      Failed = true;
    }
  }
  if (!Opt.MetricsPath.empty()) {
    std::ofstream Out(Opt.MetricsPath);
    if (Out)
      Out << metricsCsvHeader() << MetricsCsv;
    if (!Out || !Out.flush()) {
      report(Opt.MetricsPath,
             Status::error(StatusCode::IoError,
                           "cannot write metrics output")
                 .addContext("--metrics"));
      Failed = true;
    }
  }

  if (!JsonPath.empty()) {
    service::CacheStats CS = Svc.cacheStats();
    BenchJson J("rac");
    J.set("allocator", std::string(allocatorName(Opt.B, Opt.H)));
    J.set("backend", std::string(backendName(Opt.B)));
    J.set("heuristic", std::string(heuristicName(Opt.H)));
    J.set("jobs", Opt.Jobs);
    J.set("parallel_graph", Opt.ParallelGraph ? 1 : 0);
    J.set("parallel_graph_jobs", Opt.ParallelGraphJobs);
    J.set("functions", T.Functions);
    J.set("wall_seconds", T.Wall);
    J.set("graphs_colored", T.Graphs);
    J.set("graphs_per_sec", T.Wall > 0 ? double(T.Graphs) / T.Wall : 0.0);
    J.set("phases.build_seconds", T.Build);
    J.set("phases.simplify_seconds", T.Simplify);
    J.set("phases.select_seconds", T.Select);
    J.set("phases.spill_seconds", T.Spill);
    J.set("cache.enabled", Opt.Cache ? 1 : 0);
    J.set("cache.hits", CS.Hits);
    J.set("cache.misses", CS.Misses);
    J.set("cache.insertions", CS.Insertions);
    J.set("cache.evictions", CS.Evictions);
    J.set("cache.bytes_in_use", CS.BytesInUse);
    J.set("cache.peak_bytes", CS.PeakBytes);
    if (!J.writeMerged(JsonPath))
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  }
  return Failed ? 1 : 0;
}
