//===- tools/rac.cpp - register-allocating compiler driver ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Command-line driver over the textual IR:
//
//   rac FILE.ral [options]
//
//   --heuristic chaitin|briggs|matula-beck   coloring policy (briggs)
//   --int K / --flt K    register file sizes (16 / 8)
//   --no-opt             skip LICM/strength reduction/value numbering
//   --remat              rematerialize constant spills
//   --print              print the allocated function(s)
//   --run                execute each function on zero-filled memory
//   --quiet              suppress the statistics table
//
// Exit status: 0 on success, 1 on parse/verify/allocation errors.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "support/Table.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace ra;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s FILE.ral [--heuristic chaitin|briggs|matula-beck]\n"
      "       [--int K] [--flt K] [--no-opt] [--remat] [--print]\n"
      "       [--run] [--quiet]\n",
      Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  Heuristic H = Heuristic::Briggs;
  unsigned IntK = 16, FltK = 8;
  bool Optimize = true, Remat = false, Print = false, Run = false;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--heuristic" && I + 1 < Argc) {
      std::string Name = Argv[++I];
      if (Name == "chaitin")
        H = Heuristic::Chaitin;
      else if (Name == "briggs")
        H = Heuristic::Briggs;
      else if (Name == "matula-beck")
        H = Heuristic::MatulaBeck;
      else {
        std::fprintf(stderr, "unknown heuristic '%s'\n", Name.c_str());
        return 1;
      }
    } else if (Arg == "--int" && I + 1 < Argc) {
      IntK = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--flt" && I + 1 < Argc) {
      FltK = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--no-opt") {
      Optimize = false;
    } else if (Arg == "--remat") {
      Remat = true;
    } else if (Arg == "--print") {
      Print = true;
    } else if (Arg == "--run") {
      Run = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 1;
    } else {
      Path = Arg;
    }
  }
  if (Path.empty()) {
    usage(Argv[0]);
    return 1;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Module M;
  std::string Error;
  if (!parseModule(Buffer.str(), M, Error)) {
    std::fprintf(stderr, "%s: parse error: %s\n", Path.c_str(),
                 Error.c_str());
    return 1;
  }
  auto Errors = verifyModule(M);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: verifier: %s\n", Path.c_str(), E.c_str());
    return 1;
  }

  Table Stats({"Function", "Live Ranges", "Interferences", "Passes",
               "Spilled", "Spill Cost", "Remats", "Object (B)"});
  bool Failed = false;

  for (unsigned FI = 0; FI < M.numFunctions(); ++FI) {
    Function &F = M.function(FI);
    if (Optimize)
      optimizeFunction(F);

    AllocatorConfig C;
    C.H = H;
    C.Machine = MachineInfo(IntK, FltK);
    C.Rematerialize = Remat;
    AllocationResult A = allocateRegisters(F, C);
    if (!A.Success) {
      std::fprintf(stderr, "@%s: allocation did not converge\n",
                   F.name().c_str());
      Failed = true;
      continue;
    }

    double Cost = 0;
    for (const PassRecord &P : A.Stats.Passes)
      Cost += P.SpilledCost;
    Stats.addRow({"@" + F.name(),
                  Table::withCommas(A.Stats.initialLiveRanges()),
                  Table::withCommas(A.Stats.Passes[0].Interferences),
                  Table::withCommas(A.Stats.numPasses()),
                  Table::withCommas(A.Stats.totalSpills()),
                  Table::withCommas(int64_t(Cost)),
                  Table::withCommas(A.Stats.SpillCode.Remats),
                  Table::withCommas(F.numInstructions() * 4)});

    if (Print)
      std::printf("%s", printFunction(M, F).c_str());

    if (Run) {
      Simulator Sim(M);
      MemoryImage Mem(M);
      ExecutionResult R = Sim.runAllocated(F, A, Mem);
      if (!R.Ok) {
        std::fprintf(stderr, "@%s: trap: %s\n", F.name().c_str(),
                     R.Error.c_str());
        Failed = true;
        continue;
      }
      std::printf("@%s: %llu cycles (%llu spill)", F.name().c_str(),
                  (unsigned long long)R.Cycles,
                  (unsigned long long)R.SpillCycles);
      if (R.HasIntReturn)
        std::printf(", returned %lld", (long long)R.IntReturn);
      if (R.HasFloatReturn)
        std::printf(", returned %g", R.FloatReturn);
      std::printf("\n");
    }
  }

  if (!Quiet) {
    std::printf("%s heuristic, %u int / %u flt registers%s%s\n",
                heuristicName(H), IntK, FltK,
                Optimize ? ", optimized" : "",
                Remat ? ", rematerialization" : "");
    Stats.print();
  }
  return Failed ? 1 : 0;
}
