//===- tools/racc.cpp - racd client ---------------------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Command-line client for a running racd:
//
//   racc --socket PATH FILE.ral... [options]   allocate modules
//   racc --socket PATH --stats                 print daemon cache stats
//   racc --socket PATH --shutdown              stop the daemon cleanly
//
//   --allocator NAME     chaitin|briggs|matula-beck|linear-scan (briggs)
//   --int K / --flt K    register file sizes (16 / 8)
//   --no-opt / --remat / --split / --no-split / --audit / --no-audit
//                        mirror the rac flags of the same names
//   --no-cache           ask the daemon to bypass its allocation cache
//   --deadline-ms N / --mem-budget-mb N
//                        per-function resource governance
//   --print              print each allocated function exactly as
//                        `rac --print --quiet` would — `diff` against a
//                        local rac run is the service's equivalence
//                        check (CI does exactly that)
//   --quiet              suppress the per-function summary lines
//
// Exit status: 0 only when every request succeeded and every function
// allocated (Degraded counts as usable, like rac).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"
#include "service/Server.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace ra;
using namespace ra::service;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH FILE.ral...\n"
      "       [--allocator chaitin|briggs|matula-beck|linear-scan]\n"
      "       [--int K] [--flt K] [--no-opt] [--remat]\n"
      "       [--split] [--no-split] [--audit] [--no-audit] [--no-cache]\n"
      "       [--deadline-ms N] [--mem-budget-mb N] [--print] [--quiet]\n"
      "   or: %s --socket PATH --stats\n"
      "   or: %s --socket PATH --shutdown\n",
      Prog, Prog, Prog);
}

/// One request/reply over the connected socket; protocol-level Error
/// frames and unexpected types become failed Statuses.
Status call(int Fd, MsgType T, const std::string &Payload, MsgType Expect,
            std::string &ReplyPayload) {
  MsgType ReplyT;
  if (Status S = transact(Fd, T, Payload, ReplyT, ReplyPayload); !S.ok())
    return S;
  if (ReplyT == MsgType::Error)
    return Status::error(StatusCode::InvalidInput, ReplyPayload)
        .addContext("server error");
  if (ReplyT != Expect)
    return Status::error(StatusCode::InvalidInput,
                         std::string("expected ") + msgTypeName(Expect) +
                             ", got " + msgTypeName(ReplyT));
  return Status();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  std::vector<std::string> Paths;
  WireConfig Cfg;
  bool Stats = false, Shutdown = false, Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--socket" && I + 1 < Argc) {
      SocketPath = Argv[++I];
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--shutdown") {
      Shutdown = true;
    } else if (Arg == "--allocator" && I + 1 < Argc) {
      Cfg.Allocator = Argv[++I];
    } else if (Arg == "--int" && I + 1 < Argc) {
      Cfg.IntK = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--flt" && I + 1 < Argc) {
      Cfg.FltK = unsigned(std::atoi(Argv[++I]));
    } else if (Arg == "--no-opt") {
      Cfg.Optimize = false;
    } else if (Arg == "--remat") {
      Cfg.Remat = true;
    } else if (Arg == "--split") {
      Cfg.Split = true;
    } else if (Arg == "--no-split") {
      Cfg.Split = false;
    } else if (Arg == "--audit") {
      Cfg.Audit = true;
    } else if (Arg == "--no-audit") {
      Cfg.Audit = false;
    } else if (Arg == "--no-cache") {
      Cfg.UseCache = false;
    } else if (Arg == "--deadline-ms" && I + 1 < Argc) {
      Cfg.DeadlineMs = std::atof(Argv[++I]);
    } else if (Arg == "--mem-budget-mb" && I + 1 < Argc) {
      Cfg.MemBudgetMb = uint64_t(std::atoll(Argv[++I]));
    } else if (Arg == "--print") {
      Cfg.Print = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "racc: unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 1;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (SocketPath.empty() ||
      (Paths.empty() && !Stats && !Shutdown)) {
    usage(Argv[0]);
    return 1;
  }

  int Fd = -1;
  if (Status S = connectUnix(SocketPath, Fd); !S.ok()) {
    std::fprintf(stderr, "racc: %s\n", S.toString().c_str());
    return 1;
  }

  bool Failed = false;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "racc: %s: io-error: cannot open file\n",
                   Path.c_str());
      Failed = true;
      continue;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();

    AllocRequestMsg Req;
    Req.Config = Cfg;
    Req.Source = Buffer.str();
    std::string Payload;
    if (Status S = call(Fd, MsgType::AllocRequest, Req.encode(),
                        MsgType::AllocReply, Payload);
        !S.ok()) {
      std::fprintf(stderr, "racc: %s: %s\n", Path.c_str(),
                   S.toString().c_str());
      Failed = true;
      continue;
    }
    AllocReplyMsg Reply;
    if (Status S = Reply.decode(Payload); !S.ok()) {
      std::fprintf(stderr, "racc: %s: %s\n", Path.c_str(),
                   S.toString().c_str());
      Failed = true;
      continue;
    }
    if (!Reply.Ok) {
      std::fprintf(stderr, "racc: %s: %s\n", Path.c_str(),
                   Reply.Diag.c_str());
      Failed = true;
      continue;
    }
    for (const FunctionReplyMsg &F : Reply.Functions) {
      if (!F.Success) {
        std::fprintf(stderr, "racc: %s: %s\n", Path.c_str(),
                     F.Diag.c_str());
        Failed = true;
        continue;
      }
      if (Cfg.Print)
        std::fputs(F.Printed.c_str(), stdout);
      if (!Quiet)
        std::printf("@%s: %u passes, %u spills, %u live ranges%s\n",
                    F.Name.c_str(), F.Passes, F.Spills, F.LiveRanges,
                    F.CacheHit ? " (cache hit)" : "");
    }
  }

  if (Stats) {
    std::string Payload;
    if (Status S = call(Fd, MsgType::StatsRequest, "",
                        MsgType::StatsReply, Payload);
        !S.ok()) {
      std::fprintf(stderr, "racc: %s\n", S.toString().c_str());
      Failed = true;
    } else {
      StatsReplyMsg Msg;
      if (Status S = Msg.decode(Payload); !S.ok()) {
        std::fprintf(stderr, "racc: %s\n", S.toString().c_str());
        Failed = true;
      } else {
        std::printf("requests=%llu pool_width=%u\n",
                    (unsigned long long)Msg.Requests, Msg.PoolWidth);
        std::printf("cache hits=%llu misses=%llu insertions=%llu "
                    "evictions=%llu refusals=%llu entries=%llu "
                    "bytes=%llu peak=%llu\n",
                    (unsigned long long)Msg.Stats.Hits,
                    (unsigned long long)Msg.Stats.Misses,
                    (unsigned long long)Msg.Stats.Insertions,
                    (unsigned long long)Msg.Stats.Evictions,
                    (unsigned long long)Msg.Stats.Refusals,
                    (unsigned long long)Msg.Stats.Entries,
                    (unsigned long long)Msg.Stats.BytesInUse,
                    (unsigned long long)Msg.Stats.PeakBytes);
      }
    }
  }

  if (Shutdown) {
    std::string Payload;
    if (Status S = call(Fd, MsgType::Shutdown, "", MsgType::ShutdownAck,
                        Payload);
        !S.ok()) {
      std::fprintf(stderr, "racc: %s\n", S.toString().c_str());
      Failed = true;
    } else if (!Quiet) {
      std::printf("racd shut down\n");
    }
  }

  ::close(Fd);
  return Failed ? 1 : 0;
}
