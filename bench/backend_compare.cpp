//===- bench/backend_compare.cpp - coloring vs linear scan ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Cross-backend comparison over the workload suite: the Briggs coloring
// backend against the linear-scan backend with interval splitting on
// (its default) and off (the whole-lifetime-spill baseline), one row
// per routine, with first-pass spills, estimated spill cost, simulated
// dynamic cycles and allocation wall time per configuration. Every
// allocation is audited, and all three runs must produce identical
// memory images — the bench doubles as a differential check. Feeds the
// "Allocation backends" comparison table in EXPERIMENTS.md and merges
// per-configuration telemetry into BENCH_allocator.json.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

using namespace ra;

namespace {

struct BackendRun {
  unsigned Spills = 0;
  double SpillCost = 0;
  uint64_t Cycles = 0;
  double AllocSeconds = 0;
};

double allocSeconds(const AllocationStats &S) {
  double T = 0;
  for (const PassRecord &P : S.Passes)
    T += P.BuildSeconds + P.SimplifySeconds + P.SelectSeconds +
         P.SpillSeconds;
  return T;
}

BackendRun runBackend(const Workload &W, Backend B, bool Split,
                      const char *Label,
                      std::optional<MemoryImage> &MemOut) {
  Module M;
  Function &F = W.Build(M);
  optimizeFunction(F);
  AllocatorConfig C;
  C.B = B;
  C.H = Heuristic::Briggs;
  C.SplitIntervals = Split;
  C.Audit = true; // published numbers come from proven allocations only
  AllocationResult A = allocateRegisters(F, C);
  if (!A.Success || A.Outcome != AllocOutcome::Converged) {
    std::fprintf(stderr, "%s: %s allocation failed: %s\n",
                 W.Routine.c_str(), Label, A.Diag.toString().c_str());
    std::exit(1);
  }

  Simulator Sim(M, CostModel::rtpc());
  MemoryImage Mem(M);
  W.Init(M, Mem);
  ExecutionResult R = Sim.runAllocated(F, A, Mem);
  if (!R.Ok) {
    std::fprintf(stderr, "%s: %s run trapped: %s\n", W.Routine.c_str(),
                 Label, R.Error.c_str());
    std::exit(1);
  }

  BackendRun Out;
  Out.Spills = A.Stats.firstPassSpills();
  Out.SpillCost = A.Stats.firstPassSpillCost();
  Out.Cycles = R.Cycles;
  Out.AllocSeconds = allocSeconds(A.Stats);
  MemOut.emplace(std::move(Mem));
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  std::printf("Allocation backends — Briggs coloring vs linear scan\n");
  std::printf("(16 integer + 8 floating-point registers, RT/PC model;\n"
              " LS = linear scan with interval splitting, LS-ns = "
              "linear scan --no-split)\n\n");

  Table T({"Routine", "Spilled GC", "LS", "LS-ns", "Cost GC", "LS",
           "LS-ns", "Cycles GC", "LS", "LS-ns", "Cycle Pct.",
           "Alloc s GC", "LS", "LS-ns"});

  BackendRun TotalGC, TotalLS, TotalNS;
  unsigned Routines = 0;
  for (const Workload &W : allWorkloads()) {
    std::optional<MemoryImage> MemGC, MemLS, MemNS;
    BackendRun GC = runBackend(W, Backend::GraphColoring, /*Split=*/true,
                               "graph-coloring", MemGC);
    BackendRun LS = runBackend(W, Backend::LinearScan, /*Split=*/true,
                               "linear-scan", MemLS);
    BackendRun NS = runBackend(W, Backend::LinearScan, /*Split=*/false,
                               "linear-scan-nosplit", MemNS);
    if (!(*MemGC == *MemLS) || !(*MemGC == *MemNS)) {
      std::fprintf(stderr, "%s: backends produced different memory "
                           "images\n", W.Routine.c_str());
      std::exit(1);
    }

    T.addRow({W.Routine, Table::withCommas(GC.Spills),
              Table::withCommas(LS.Spills), Table::withCommas(NS.Spills),
              Table::withCommas(int64_t(GC.SpillCost)),
              Table::withCommas(int64_t(LS.SpillCost)),
              Table::withCommas(int64_t(NS.SpillCost)),
              Table::withCommas(GC.Cycles), Table::withCommas(LS.Cycles),
              Table::withCommas(NS.Cycles),
              Table::pctImprovement(double(LS.Cycles), double(GC.Cycles)),
              Table::fixed(GC.AllocSeconds, 4),
              Table::fixed(LS.AllocSeconds, 4),
              Table::fixed(NS.AllocSeconds, 4)});

    auto Accumulate = [](BackendRun &Total, const BackendRun &R) {
      Total.Spills += R.Spills;
      Total.SpillCost += R.SpillCost;
      Total.Cycles += R.Cycles;
      Total.AllocSeconds += R.AllocSeconds;
    };
    Accumulate(TotalGC, GC);
    Accumulate(TotalLS, LS);
    Accumulate(TotalNS, NS);
    ++Routines;
  }

  T.addSeparator();
  T.addRow({"Total", Table::withCommas(TotalGC.Spills),
            Table::withCommas(TotalLS.Spills),
            Table::withCommas(TotalNS.Spills),
            Table::withCommas(int64_t(TotalGC.SpillCost)),
            Table::withCommas(int64_t(TotalLS.SpillCost)),
            Table::withCommas(int64_t(TotalNS.SpillCost)),
            Table::withCommas(TotalGC.Cycles),
            Table::withCommas(TotalLS.Cycles),
            Table::withCommas(TotalNS.Cycles),
            Table::pctImprovement(double(TotalLS.Cycles),
                                  double(TotalGC.Cycles)),
            Table::fixed(TotalGC.AllocSeconds, 4),
            Table::fixed(TotalLS.AllocSeconds, 4),
            Table::fixed(TotalNS.AllocSeconds, 4)});
  T.print();

  std::printf("\n'Cycle Pct.' is positive when graph coloring beats "
              "linear scan (with splitting) on dynamic cycles; the "
              "LS-ns columns show what second-chance splitting buys "
              "over whole-lifetime spilling, and the Alloc columns "
              "show linear scan's compile-time edge.\n");

  if (!JsonPath.empty()) {
    BenchJson J("backend_compare");
    J.set("routines", uint64_t(Routines));
    J.set("graph-coloring.spills", uint64_t(TotalGC.Spills));
    J.set("graph-coloring.spill_cost", TotalGC.SpillCost);
    J.set("graph-coloring.cycles", TotalGC.Cycles);
    J.set("graph-coloring.alloc_seconds", TotalGC.AllocSeconds);
    J.set("linear-scan.spills", uint64_t(TotalLS.Spills));
    J.set("linear-scan.spill_cost", TotalLS.SpillCost);
    J.set("linear-scan.cycles", TotalLS.Cycles);
    J.set("linear-scan.alloc_seconds", TotalLS.AllocSeconds);
    J.set("linear-scan-nosplit.spills", uint64_t(TotalNS.Spills));
    J.set("linear-scan-nosplit.spill_cost", TotalNS.SpillCost);
    J.set("linear-scan-nosplit.cycles", TotalNS.Cycles);
    J.set("linear-scan-nosplit.alloc_seconds", TotalNS.AllocSeconds);
    if (!J.writeMerged(JsonPath))
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  }
  return 0;
}
