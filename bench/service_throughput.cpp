//===- bench/service_throughput.cpp - AllocationService throughput --------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Throughput study of the allocation service with its content-addressed
// cache: N concurrent clients drive a corpus of generated modules
// through one AllocationService, cold (every function allocated) and
// then warm (every function served from the cache).
//
//   service_throughput [--clients N] [--modules M] [--seed S]
//                      [--min-speedup X] [--bench-json FILE]
//
// The cold phase shards the corpus across the clients so each module is
// allocated exactly once; the warm phase has every client replay the
// whole corpus. Every warm reply is byte-compared against the cold
// rewritten module — ANY divergence is a hard error, not a statistic —
// and every warm function must actually hit the cache. Modules/sec for
// both phases and the warm/cold speedup land in the
// "service_throughput" section of the bench JSON. --min-speedup makes
// the speedup an exit-code assertion (used by the acceptance run; 0
// disables for noisy CI boxes).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "ir/IRPrinter.h"
#include "service/AllocationService.h"
#include "support/Timer.h"
#include "workloads/RandomProgram.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace ra;
using namespace ra::service;

namespace {

void die(const std::string &What) {
  std::fprintf(stderr, "service_throughput: %s\n", What.c_str());
  std::exit(1);
}

/// One generated module's source text (what a client would send).
std::string makeModuleSource(uint64_t Seed) {
  Module M;
  RandomProgramConfig Shape;
  Shape.MaxDepth = 3;
  Shape.StatementsPerBlock = 10;
  Shape.Regions = 12;
  Shape.IntVars = 10;
  Shape.FloatVars = 10;
  buildRandomProgram(M, Seed, Shape);
  return printModule(M);
}

ServiceRequest makeRequest(const std::string &Source) {
  ServiceRequest R;
  R.Source = Source;
  R.Alloc.Machine = MachineInfo(6, 3); // pressure -> real spill work
  R.Alloc.Audit = true;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Clients = 4;
  unsigned Modules = 32;
  uint64_t Seed = 1;
  double MinSpeedup = 0;
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);

  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--clients") && I + 1 < Argc)
      Clients = unsigned(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--modules") && I + 1 < Argc)
      Modules = unsigned(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc)
      Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--min-speedup") && I + 1 < Argc)
      MinSpeedup = std::atof(Argv[++I]);
    else
      die(std::string("unknown option '") + Argv[I] + "'");
  }
  if (Clients == 0 || Modules == 0)
    die("--clients and --modules must be positive");

  std::printf("== AllocationService throughput: %u modules, %u clients\n",
              Modules, Clients);

  std::vector<std::string> Corpus(Modules);
  for (unsigned I = 0; I < Modules; ++I)
    Corpus[I] = makeModuleSource(Seed + I);

  AllocationService Svc;

  // Cold: shard the corpus across the clients; every module allocated
  // exactly once, concurrently. The printed rewritten module is the
  // byte-identity reference for the warm phase.
  std::vector<std::string> ColdText(Modules);
  Timer Cold;
  Cold.start();
  {
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        for (unsigned I = C; I < Modules; I += Clients) {
          ServiceReply Reply = Svc.run(makeRequest(Corpus[I]));
          if (!Reply.S.ok())
            die("cold request failed: " + Reply.S.toString());
          for (const AllocationResult &A : Reply.MA.Functions)
            if (!A.Success)
              die("cold allocation failed: " + A.Diag.toString());
          ColdText[I] = printModule(*Reply.M);
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  Cold.stop();
  const double ColdRate = Modules / Cold.seconds();

  CacheStats AfterCold = Svc.cacheStats();
  std::printf("   cold: %7.1f modules/sec (%.3fs, %llu cache misses)\n",
              ColdRate, Cold.seconds(),
              (unsigned long long)AfterCold.Misses);

  // Warm: every client replays the full corpus; every function must be
  // served from the cache and print byte-identically to the cold run.
  Timer Warm;
  Warm.start();
  {
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&] {
        for (unsigned I = 0; I < Modules; ++I) {
          ServiceReply Reply = Svc.run(makeRequest(Corpus[I]));
          if (!Reply.S.ok())
            die("warm request failed: " + Reply.S.toString());
          if (Reply.numHits() != Reply.M->numFunctions())
            die("warm request missed the cache");
          if (printModule(*Reply.M) != ColdText[I])
            die("warm module diverged from cold run (byte identity "
                "violated)");
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  Warm.stop();
  const uint64_t WarmModules = uint64_t(Clients) * Modules;
  const double WarmRate = WarmModules / Warm.seconds();
  const double Speedup = WarmRate / ColdRate;

  CacheStats CS = Svc.cacheStats();
  std::printf("   warm: %7.1f modules/sec (%.3fs, %llu requests, all "
              "byte-identical)\n",
              WarmRate, Warm.seconds(), (unsigned long long)WarmModules);
  std::printf("   speedup: %.1fx  (cache: %llu hits, %llu misses, "
              "%llu bytes peak)\n",
              Speedup, (unsigned long long)CS.Hits,
              (unsigned long long)CS.Misses,
              (unsigned long long)CS.PeakBytes);

  if (CS.Hits < WarmModules)
    die("warm phase recorded fewer hits than replies");
  if (MinSpeedup > 0 && Speedup < MinSpeedup)
    die("warm/cold speedup " + std::to_string(Speedup) +
        "x below required " + std::to_string(MinSpeedup) + "x");

  if (!JsonPath.empty()) {
    BenchJson J("service_throughput");
    J.set("clients", Clients);
    J.set("modules", Modules);
    J.set("cold_modules_per_sec", ColdRate);
    J.set("warm_modules_per_sec", WarmRate);
    J.set("warm_cold_speedup", Speedup);
    J.set("cache.hits", CS.Hits);
    J.set("cache.misses", CS.Misses);
    J.set("cache.evictions", CS.Evictions);
    J.set("cache.peak_bytes", CS.PeakBytes);
    if (!J.writeMerged(JsonPath))
      die("cannot write " + JsonPath);
  }
  return 0;
}
