//===- bench/BenchJson.cpp - Benchmark JSON telemetry ---------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace ra;

void BenchJson::set(const std::string &DottedKey, double Value) {
  if (!std::isfinite(Value)) {
    Values.emplace_back(DottedKey, "null");
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
  Values.emplace_back(DottedKey, Buf);
}

void BenchJson::set(const std::string &DottedKey, int64_t Value) {
  Values.emplace_back(DottedKey, std::to_string(Value));
}

void BenchJson::set(const std::string &DottedKey,
                    const std::string &Value) {
  std::string Quoted = "\"";
  for (char C : Value) {
    if (C == '"' || C == '\\')
      Quoted += '\\';
    if (C == '\n') {
      Quoted += "\\n";
      continue;
    }
    Quoted += C;
  }
  Quoted += '"';
  Values.emplace_back(DottedKey, Quoted);
}

namespace {

/// Ordered tree the dotted keys unfold into.
struct Node {
  std::vector<std::pair<std::string, Node>> Children;
  std::string Leaf; ///< Rendered scalar; meaningful when Children empty.

  Node &child(const std::string &Key) {
    for (auto &[K, N] : Children)
      if (K == Key)
        return N;
    Children.emplace_back(Key, Node());
    return Children.back().second;
  }
};

void renderNode(const Node &N, std::string &Out, unsigned Depth) {
  if (N.Children.empty()) {
    Out += N.Leaf;
    return;
  }
  std::string Pad(2 * (Depth + 1), ' ');
  Out += "{\n";
  for (size_t I = 0; I < N.Children.size(); ++I) {
    Out += Pad + "\"" + N.Children[I].first + "\": ";
    renderNode(N.Children[I].second, Out, Depth + 1);
    if (I + 1 != N.Children.size())
      Out += ",";
    Out += "\n";
  }
  Out += std::string(2 * Depth, ' ') + "}";
}

/// Splits the top-level object of \p Text into (key, raw value text)
/// pairs. Tolerant scanner, not a validator: it only needs to track
/// strings and brace/bracket depth well enough to find section
/// boundaries. Returns false on anything unexpected.
bool splitTopLevel(const std::string &Text,
                   std::vector<std::pair<std::string, std::string>> &Out) {
  size_t I = 0, E = Text.size();
  auto SkipWS = [&] {
    while (I < E && std::strchr(" \t\r\n", Text[I]))
      ++I;
  };
  SkipWS();
  if (I >= E || Text[I] != '{')
    return false;
  ++I;
  for (;;) {
    SkipWS();
    if (I < E && Text[I] == '}')
      return true;
    if (I >= E || Text[I] != '"')
      return false;
    ++I;
    std::string Key;
    while (I < E && Text[I] != '"') {
      if (Text[I] == '\\' && I + 1 < E)
        ++I;
      Key += Text[I++];
    }
    if (I >= E)
      return false;
    ++I; // closing quote
    SkipWS();
    if (I >= E || Text[I] != ':')
      return false;
    ++I;
    SkipWS();
    size_t Start = I;
    int Depth = 0;
    bool InString = false;
    for (; I < E; ++I) {
      char C = Text[I];
      if (InString) {
        if (C == '\\')
          ++I;
        else if (C == '"')
          InString = false;
        continue;
      }
      if (C == '"')
        InString = true;
      else if (C == '{' || C == '[')
        ++Depth;
      else if (C == '}' || C == ']') {
        if (Depth == 0)
          break; // the top-level closing brace
        --Depth;
      } else if (C == ',' && Depth == 0)
        break;
    }
    if (I >= E || Depth != 0 || InString)
      return false;
    size_t End = I;
    while (End > Start && std::strchr(" \t\r\n", Text[End - 1]))
      --End;
    Out.emplace_back(Key, Text.substr(Start, End - Start));
    if (Text[I] == ',')
      ++I;
  }
}

} // namespace

std::string BenchJson::render() const {
  if (Values.empty())
    return "{}";
  Node Root;
  for (const auto &[Dotted, Scalar] : Values) {
    Node *N = &Root;
    size_t Pos = 0;
    for (;;) {
      size_t Dot = Dotted.find('.', Pos);
      if (Dot == std::string::npos) {
        N = &N->child(Dotted.substr(Pos));
        break;
      }
      N = &N->child(Dotted.substr(Pos, Dot - Pos));
      Pos = Dot + 1;
    }
    N->Leaf = Scalar;
  }
  std::string Out;
  renderNode(Root, Out, 1);
  return Out;
}

bool BenchJson::writeMerged(const std::string &Path) const {
  std::vector<std::pair<std::string, std::string>> Sections;
  {
    std::ifstream In(Path);
    if (In) {
      std::stringstream Buf;
      Buf << In.rdbuf();
      if (!splitTopLevel(Buf.str(), Sections))
        Sections.clear(); // malformed: start over with just our section
    }
  }

  std::string Rendered = render();
  bool Replaced = false;
  for (auto &[Key, Value] : Sections)
    if (Key == Section) {
      Value = Rendered;
      Replaced = true;
    }
  if (!Replaced)
    Sections.emplace_back(Section, Rendered);

  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << "{\n";
  for (size_t I = 0; I < Sections.size(); ++I) {
    Out << "  \"" << Sections[I].first << "\": " << Sections[I].second;
    if (I + 1 != Sections.size())
      Out << ",";
    Out << "\n";
  }
  Out << "}\n";
  return bool(Out);
}

std::string BenchJson::consumeFlag(int &Argc, char **Argv) {
  std::string Path;
  int W = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--bench-json") == 0 && I + 1 < Argc) {
      Path = Argv[++I];
      continue;
    }
    Argv[W++] = Argv[I];
  }
  Argc = W;
  return Path;
}
