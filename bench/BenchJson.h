//===- bench/BenchJson.h - Benchmark JSON telemetry ------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny JSON emitter for benchmark telemetry. Every bench binary (and
/// tools/rac) writes one top-level section of BENCH_allocator.json —
/// wall seconds per allocator phase, graphs/sec, thread speedups — so
/// successive PRs have a perf trajectory to regress against.
///
/// Sections are *merged*: writing re-reads the file, replaces only this
/// binary's top-level key and preserves the others, so run_benches.sh
/// can run the binaries in any order (or rerun just one) and still end
/// with a complete file. Keys are dotted paths ("phases.build_seconds")
/// rendered as nested objects, in insertion order.
///
//===----------------------------------------------------------------------===//

#ifndef RA_BENCH_BENCHJSON_H
#define RA_BENCH_BENCHJSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace ra {

/// One top-level section of the benchmark telemetry file.
class BenchJson {
public:
  /// \p Section is this binary's top-level key, e.g. "fig7_phases".
  explicit BenchJson(std::string Section) : Section(std::move(Section)) {}

  /// Sets \p DottedKey ("a.b.c" nests objects) to a number. Non-finite
  /// values are recorded as null (JSON has no inf/nan).
  void set(const std::string &DottedKey, double Value);
  void set(const std::string &DottedKey, int64_t Value);
  void set(const std::string &DottedKey, uint64_t Value) {
    set(DottedKey, int64_t(Value));
  }
  void set(const std::string &DottedKey, int Value) {
    set(DottedKey, int64_t(Value));
  }
  void set(const std::string &DottedKey, unsigned Value) {
    set(DottedKey, int64_t(Value));
  }
  /// Sets a string value (quoted and escaped).
  void set(const std::string &DottedKey, const std::string &Value);

  /// Renders this section's object (not including the section key).
  std::string render() const;

  /// Merges this section into the JSON object in \p Path: other
  /// binaries' top-level sections are preserved, this section is
  /// replaced (or appended). An unreadable or malformed file is
  /// overwritten with just this section. Returns false if the file
  /// cannot be written.
  bool writeMerged(const std::string &Path) const;

  /// Extracts `--bench-json FILE` from an argv vector, removing both
  /// tokens so downstream parsers (e.g. google-benchmark) never see
  /// them. Returns the path, or "" when the flag is absent.
  static std::string consumeFlag(int &Argc, char **Argv);

private:
  /// Flat (dotted key, rendered scalar) pairs in insertion order; the
  /// renderer turns shared dotted prefixes into nested objects.
  std::vector<std::pair<std::string, std::string>> Values;
  std::string Section;
};

} // namespace ra

#endif // RA_BENCH_BENCHJSON_H
