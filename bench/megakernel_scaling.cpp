//===- bench/megakernel_scaling.cpp - Parallel Select thread scaling ------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Thread-scaling study of the speculate-and-repair Select engine
// (ParallelSelect.h) on the mega-kernel family (tens of thousands of
// live ranges in one interference graph) plus a raw random-CSR stress
// graph. For each subject: sequential Select is timed as the baseline,
// then the parallel engine runs at 1/2/4/8 threads (capped by --jobs);
// every parallel coloring is compared against the sequential one and
// ANY mismatch — colors, spill set, spill cost — is a hard error, not
// a statistic. Per-round conflict counts demonstrate repair
// convergence, and an audited end-to-end allocation of the 10k ramp
// proves the engine composes with the full Figure 4 loop. Numbers land
// in the "megakernel_scaling" section of BENCH_allocator.json.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "regalloc/Allocator.h"
#include "regalloc/Coloring.h"
#include "support/Rng.h"
#include "support/Timer.h"
#include "workloads/MegaKernel.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace ra;

namespace {

/// Raw CSR stress graph: no IR behind it, just a random high-degree
/// interference structure at a scale the generated kernels don't reach.
InterferenceGraph makeRandomGraph(unsigned NumNodes, double AvgDegree,
                                  uint64_t Seed) {
  InterferenceGraph G(NumNodes);
  Rng R(Seed);
  uint64_t Edges = uint64_t(NumNodes * AvgDegree / 2);
  for (uint64_t E = 0; E < Edges; ++E)
    G.addEdge(R.nextBelow(NumNodes), R.nextBelow(NumNodes));
  for (unsigned N = 0; N < NumNodes; ++N)
    G.node(N).SpillCost = double(1 + R.nextBelow(8));
  G.finalize();
  return G;
}

void die(const std::string &Subject, const std::string &What) {
  std::fprintf(stderr, "megakernel_scaling: %s: %s\n", Subject.c_str(),
               What.c_str());
  std::exit(1);
}

/// Requires byte-identical colorings — the whole point of the engine.
void requireIdentical(const std::string &Subject, unsigned Threads,
                      const ColoringResult &Seq, const ColoringResult &Par) {
  if (Seq.ColorOf != Par.ColorOf)
    die(Subject, "ColorOf mismatch at " + std::to_string(Threads) +
                     " threads");
  if (Seq.Spilled != Par.Spilled)
    die(Subject, "spill-set mismatch at " + std::to_string(Threads) +
                     " threads");
  if (Seq.SpilledCost != Par.SpilledCost)
    die(Subject, "spill-cost mismatch at " + std::to_string(Threads) +
                     " threads");
  if (Seq.NumColorsUsed != Par.NumColorsUsed)
    die(Subject, "colors-used mismatch at " + std::to_string(Threads) +
                     " threads");
}

/// One scaling study over a finalized graph. Returns the best observed
/// parallel Select seconds (for the summary line).
void runSubject(const std::string &Name, const InterferenceGraph &G,
                unsigned K, unsigned MaxJobs, unsigned Repeats,
                BenchJson *J) {
  // Sequential baseline: best of Repeats to damp scheduler noise.
  ColoringResult Seq;
  double SeqBest = 0;
  for (unsigned R = 0; R < Repeats; ++R) {
    ColoringResult C = colorGraph(G, K, Heuristic::Briggs);
    if (R == 0 || C.SelectSeconds < SeqBest)
      SeqBest = C.SelectSeconds;
    Seq = std::move(C);
  }
  std::printf("%-16s %7u nodes, K=%u: sequential select %8.3f ms, "
              "%zu spilled\n",
              Name.c_str(), G.numNodes(), K, SeqBest * 1e3,
              Seq.Spilled.size());
  if (J) {
    J->set(Name + ".nodes", G.numNodes());
    J->set(Name + ".k", K);
    J->set(Name + ".spilled", uint64_t(Seq.Spilled.size()));
    J->set(Name + ".seq_select_seconds", SeqBest);
  }

  for (unsigned Threads = 1; Threads <= MaxJobs; Threads *= 2) {
    SelectOptions SO;
    SO.Parallel = true;
    SO.Threads = Threads;
    SO.MinNodes = 0;
    ColoringResult Par;
    double ParBest = 0;
    for (unsigned R = 0; R < Repeats; ++R) {
      ColoringResult C = colorGraph(G, K, Heuristic::Briggs, SO);
      requireIdentical(Name, Threads, Seq, C);
      if (R == 0 || C.SelectSeconds < ParBest)
        ParBest = C.SelectSeconds;
      Par = std::move(C);
    }
    double Speedup = ParBest > 0 ? SeqBest / ParBest : 0;
    std::string Rounds;
    for (const SelectRound &SR : Par.SelectRounds) {
      if (!Rounds.empty())
        Rounds += ",";
      Rounds += std::to_string(SR.Conflicts);
    }
    std::printf("  %2u thread%s: %8.3f ms  (%.2fx)  rounds=%zu  "
                "conflicts/round=[%s]\n",
                Threads, Threads == 1 ? " " : "s", ParBest * 1e3, Speedup,
                Par.SelectRounds.size(), Rounds.c_str());
    if (J) {
      std::string P = Name + ".threads_" + std::to_string(Threads) + ".";
      J->set(P + "select_seconds", ParBest);
      J->set(P + "speedup", Speedup);
      J->set(P + "rounds", uint64_t(Par.SelectRounds.size()));
      J->set(P + "conflicts_per_round", Rounds);
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  unsigned MaxJobs = 8;
  unsigned Repeats = 3;
  uint64_t MemBudgetBytes = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      MaxJobs = unsigned(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--repeats") == 0 && I + 1 < Argc)
      Repeats = unsigned(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--mem-budget-mb") == 0 && I + 1 < Argc)
      MemBudgetBytes = uint64_t(std::atoll(Argv[++I])) << 20;
    else {
      std::fprintf(stderr,
                   "usage: megakernel_scaling [--jobs N] [--repeats N] "
                   "[--mem-budget-mb N] [--bench-json FILE]\n");
      return 2;
    }
  }
  if (MaxJobs == 0 || Repeats == 0)
    die("args", "--jobs and --repeats must be >= 1");

  BenchJson J("megakernel_scaling");
  J.set("max_jobs", MaxJobs);
  J.set("repeats", Repeats);

  std::printf("Parallel Select scaling on the mega-kernel family "
              "(best of %u runs; identical colorings enforced)\n\n",
              Repeats);

  // Generated kernels: build the IR, replicate the build phase, then
  // race sequential vs. parallel Select on the biggest class graph.
  for (const MegaKernel &MK : megaKernelFamily()) {
    // Capacity guard: refuse a kernel whose triangular interference
    // matrix would blow the budget *before* building any IR, with the
    // remedy in the message — not a silent attempt that OOMs mid-run.
    if (Status Cap = checkMegaKernelCapacity(MK, MemBudgetBytes); !Cap.ok()) {
      std::fprintf(stderr, "megakernel_scaling: skipping %s\n",
                   Cap.toString().c_str());
      J.set(MK.Name + ".skipped", Cap.toString());
      continue;
    }
    Module M;
    Function &F = MK.Build(M);
    auto Graphs = buildColoringGraphs(F);
    ClassGraph *Big = nullptr;
    for (ClassGraph &CG : Graphs)
      if (!Big || CG.Graph.numNodes() > Big->Graph.numNodes())
        Big = &CG;
    if (!Big || Big->Graph.numNodes() == 0)
      die(MK.Name, "empty interference graph");
    runSubject(MK.Name, Big->Graph, 8, MaxJobs, Repeats, &J);
  }

  // Raw CSR stress: high average degree, no structure to exploit.
  {
    InterferenceGraph G = makeRandomGraph(30000, 24.0, 20260808);
    runSubject("csr.rand.30k", G, 16, MaxJobs, Repeats, &J);
  }

  // End-to-end proof: the engine inside the full allocator, audited.
  if (Status Cap = checkMegaKernelCapacity(megaKernelFamily()[0],
                                           MemBudgetBytes);
      !Cap.ok()) {
    std::fprintf(stderr, "megakernel_scaling: skipping end-to-end: %s\n",
                 Cap.toString().c_str());
  } else {
    Module M;
    Function &F = megaKernelFamily()[0].Build(M);
    AllocatorConfig C;
    C.Audit = true;
    C.ParallelGraph = true;
    C.ParallelGraphJobs = MaxJobs;
    C.ParallelGraphMinNodes = 0;
    Timer T;
    T.start();
    AllocationResult A = allocateRegisters(F, C);
    T.stop();
    if (!A.Success || A.Outcome != AllocOutcome::Converged)
      die("end-to-end", "audited allocation of mega.ramp.10k failed: " +
                            A.Diag.toString());
    unsigned Rounds = 0, Conflicts = 0;
    for (const PassRecord &P : A.Stats.Passes) {
      Rounds += P.SelectRounds;
      Conflicts += P.SelectConflicts;
    }
    std::printf("\nend-to-end: mega.ramp.10k audited allocation in "
                "%.3f s (%u passes, %u select rounds, %u conflicts "
                "repaired)\n",
                T.seconds(), A.Stats.numPasses(), Rounds, Conflicts);
    J.set("end_to_end.seconds", T.seconds());
    J.set("end_to_end.passes", A.Stats.numPasses());
    J.set("end_to_end.select_rounds", Rounds);
    J.set("end_to_end.select_conflicts", Conflicts);
    J.set("end_to_end.outcome", std::string(allocOutcomeName(A.Outcome)));
  }

  if (!JsonPath.empty() && !J.writeMerged(JsonPath))
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  return 0;
}
