//===- bench/fig5_allocation.cpp - Figure 5 reproduction ------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's Figure 5: for every routine of the five
// benchmark programs, object size, live ranges, registers spilled and
// estimated spill cost under Chaitin's heuristic (Old) and the
// optimistic heuristic (New), with percentage improvements, plus the
// whole-program dynamic improvement measured by the cycle-counting
// simulator. Sixteen integer registers, eight floating-point — the
// IBM RT/PC configuration.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <map>

using namespace ra;

namespace {

/// Per-heuristic allocator phase seconds summed over the whole suite.
struct PhaseSeconds {
  double Build = 0, Simplify = 0, Select = 0, Spill = 0;

  void add(const AllocationStats &S) {
    for (const PassRecord &P : S.Passes) {
      Build += P.BuildSeconds;
      Simplify += P.SimplifySeconds;
      Select += P.SelectSeconds;
      Spill += P.SpillSeconds;
    }
  }

  void emit(BenchJson &J, const std::string &Prefix) const {
    J.set(Prefix + ".build_seconds", Build);
    J.set(Prefix + ".simplify_seconds", Simplify);
    J.set(Prefix + ".select_seconds", Select);
    J.set(Prefix + ".spill_seconds", Spill);
  }
};

struct RoutineResult {
  unsigned ObjectBytes = 0;
  unsigned LiveRanges = 0;
  unsigned SpilledOld = 0, SpilledNew = 0;
  double CostOld = 0, CostNew = 0;
  uint64_t CyclesOld = 0, CyclesNew = 0;
  bool Timed = true;
};

RoutineResult measure(const Workload &W, PhaseSeconds &OldPhases,
                      PhaseSeconds &NewPhases) {
  RoutineResult R;
  R.Timed = W.Timed;
  CostModel CM = CostModel::rtpc();

  for (Heuristic H : {Heuristic::Chaitin, Heuristic::Briggs}) {
    Module M;
    Function &F = W.Build(M);
    // The paper's compiler ran its optimizer before allocation; LICM
    // and strength reduction recreate the long live ranges it saw.
    optimizeFunction(F);
    AllocatorConfig C;
    C.H = H;
    C.Audit = true; // every reported number comes from a proven coloring
    AllocationResult A = allocateRegisters(F, C);
    if (!A.Success || A.Outcome != AllocOutcome::Converged) {
      std::fprintf(stderr, "allocation failed for %s: %s\n",
                   W.Routine.c_str(), A.Diag.toString().c_str());
      std::exit(1);
    }
    Simulator Sim(M, CM);
    MemoryImage Mem(M);
    W.Init(M, Mem);
    ExecutionResult Run = Sim.runAllocated(F, A, Mem);
    if (!Run.Ok)
      std::fprintf(stderr, "simulation trapped for %s: %s\n",
                   W.Routine.c_str(), Run.Error.c_str());

    (H == Heuristic::Chaitin ? OldPhases : NewPhases).add(A.Stats);
    if (H == Heuristic::Chaitin) {
      R.SpilledOld = A.Stats.firstPassSpills();
      R.CostOld = A.Stats.firstPassSpillCost();
      R.CyclesOld = Run.Cycles;
    } else {
      R.SpilledNew = A.Stats.firstPassSpills();
      R.CostNew = A.Stats.firstPassSpillCost();
      R.CyclesNew = Run.Cycles;
      // Sizes reported for the New allocator, as in the paper.
      R.ObjectBytes = F.numInstructions() * CM.bytesPerInstruction();
      R.LiveRanges = A.Stats.initialLiveRanges();
    }
  }
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  std::printf("Figure 5 — register allocation improvements\n");
  std::printf("(16 integer + 8 floating-point registers, RT/PC model)\n\n");

  Table T({"Program", "Routine", "Object Size", "Live Ranges",
           "Spilled Old", "New", "Pct.", "Cost Old", "New", "Pct.",
           "Dynamic Pct."});

  std::map<std::string, std::pair<uint64_t, uint64_t>> ProgramCycles;
  std::string LastProgram;

  // First pass over routines to collect per-program dynamic totals.
  PhaseSeconds OldPhases, NewPhases;
  std::vector<std::pair<const Workload *, RoutineResult>> Rows;
  for (const Workload &W : allWorkloads()) {
    RoutineResult R = measure(W, OldPhases, NewPhases);
    if (R.Timed) {
      ProgramCycles[W.Program].first += R.CyclesOld;
      ProgramCycles[W.Program].second += R.CyclesNew;
    }
    Rows.push_back({&W, R});
  }

  for (const auto &[W, R] : Rows) {
    bool NewProgram = W->Program != LastProgram;
    if (NewProgram && !LastProgram.empty())
      T.addSeparator();
    std::string Dynamic;
    if (NewProgram) {
      if (ProgramCycles.count(W->Program) &&
          ProgramCycles[W->Program].first != 0) {
        auto [Old, New] = ProgramCycles[W->Program];
        Dynamic = Table::fixed(100.0 * (double(Old) - double(New)) /
                                   double(Old),
                               2);
      } else {
        Dynamic = "n/a";
      }
    }
    T.addRow({NewProgram ? W->Program : "", W->Routine,
              Table::withCommas(R.ObjectBytes),
              Table::withCommas(R.LiveRanges),
              Table::withCommas(R.SpilledOld),
              Table::withCommas(R.SpilledNew),
              Table::pctImprovement(R.SpilledOld, R.SpilledNew),
              Table::withCommas(int64_t(R.CostOld)),
              Table::withCommas(int64_t(R.CostNew)),
              Table::pctImprovement(R.CostOld, R.CostNew), Dynamic});
    LastProgram = W->Program;
  }
  T.print();

  std::printf("\n'Pct.' columns show the reduction from Chaitin's "
              "heuristic (Old) to the optimistic heuristic (New).\n");
  std::printf("Dynamic Pct. is the whole-program cycle reduction; the "
              "paper reports CEDETA as n/a.\n");

  if (!JsonPath.empty()) {
    BenchJson J("fig5_allocation");
    J.set("routines", uint64_t(Rows.size()));
    OldPhases.emit(J, "phases.chaitin");
    NewPhases.emit(J, "phases.briggs");
    if (!J.writeMerged(JsonPath))
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  }
  return 0;
}
