//===- bench/ablation_ordering.cpp - design-choice ablations --------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Ablations of the design choices the paper argues for:
//
//  1. Cost-guided ordering (Section 2.3): the optimistic allocator with
//     Chaitin's cost/degree choice in the stuck region, versus the pure
//     Matula-Beck smallest-last ordering of Section 2.2, which "would
//     produce arbitrary allocations — possibly terrible allocations".
//  2. Aggressive coalescing on/off: how much the build phase's copy
//     elimination matters to the final spill counts.
//  3. The optimizer in front of the allocator on/off: how much pressure
//     the 1989-era scalar optimizations add.
//
// Each ablation reports total spilled live ranges and estimated spill
// cost summed over every routine in the Figure 5 suite.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace ra;

namespace {

struct SuiteTotals {
  unsigned Spilled = 0;
  double Cost = 0;
  unsigned SpillOps = 0;
  unsigned Failures = 0;
};

SuiteTotals runSuite(Heuristic H, bool Coalesce, bool Optimize,
                     bool Remat = false,
                     CoalescePolicy Policy = CoalescePolicy::Aggressive) {
  SuiteTotals T;
  for (const Workload &W : allWorkloads()) {
    Module M;
    Function &F = W.Build(M);
    if (Optimize)
      optimizeFunction(F);
    AllocatorConfig C;
    C.H = H;
    C.Coalesce = Coalesce;
    C.Coalescing = Policy;
    C.Rematerialize = Remat;
    C.Audit = true; // every reported number comes from a proven coloring
    AllocationResult A = allocateRegisters(F, C);
    if (!A.Success || A.Outcome != AllocOutcome::Converged) {
      ++T.Failures;
      continue;
    }
    T.Spilled += A.Stats.totalSpills();
    for (const PassRecord &P : A.Stats.Passes)
      T.Cost += P.SpilledCost;
    T.SpillOps += A.Stats.SpillCode.Loads + A.Stats.SpillCode.Stores;
  }
  return T;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  BenchJson J("ablation_ordering");
  std::printf("Ablations over the full Figure 5 suite "
              "(totals across all 28 routines)\n\n");

  Table T({"Configuration", "Spilled Ranges", "Spill Cost",
           "Spill Instrs"});

  struct Row {
    const char *Name;
    Heuristic H;
    bool Coalesce, Optimize, Remat;
    CoalescePolicy Policy = CoalescePolicy::Aggressive;
  };
  const Row Rows[] = {
      {"Chaitin (pessimistic)", Heuristic::Chaitin, true, true, false},
      {"Briggs (optimistic, Sec. 2.3)", Heuristic::Briggs, true, true,
       false},
      {"Matula-Beck (no costs, Sec. 2.2)", Heuristic::MatulaBeck, true,
       true, false},
      {"Briggs + rematerialization", Heuristic::Briggs, true, true, true},
      {"Briggs, conservative coalescing", Heuristic::Briggs, true, true,
       false, CoalescePolicy::Conservative},
      {"Briggs, no coalescing", Heuristic::Briggs, false, true, false},
      {"Briggs, no optimizer", Heuristic::Briggs, true, false, false},
      {"Chaitin, no optimizer", Heuristic::Chaitin, true, false, false},
  };
  unsigned RowId = 0;
  for (const Row &R : Rows) {
    SuiteTotals S =
        runSuite(R.H, R.Coalesce, R.Optimize, R.Remat, R.Policy);
    {
      std::string P = "config" + std::to_string(RowId++) + ".";
      J.set(P + "name", std::string(R.Name));
      J.set(P + "spilled", S.Spilled);
      J.set(P + "spill_cost", S.Cost);
      J.set(P + "spill_instrs", S.SpillOps);
    }
    std::string Name = R.Name;
    if (S.Failures)
      Name += " [" + std::to_string(S.Failures) + " failed]";
    // A cost-blind ordering can spill protected spill temporaries,
    // whose estimate is "infinite"; render that honestly.
    std::string Cost = S.Cost > 1e27
                           ? "inf (spilled spill temps)"
                           : Table::withCommas(int64_t(S.Cost));
    T.addRow({Name, Table::withCommas(S.Spilled), Cost,
              Table::withCommas(S.SpillOps)});
  }
  T.print();

  std::printf("\nThe cost-blind smallest-last ordering spills far more "
              "than either cost-guided method — the paper's Section 2.3 "
              "argument.\n");
  if (!JsonPath.empty() && !J.writeMerged(JsonPath))
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  return 0;
}
