//===- bench/micro_coloring.cpp - coloring microbenchmarks ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks backing the paper's complexity
// claims (Section 3.3): simplify+select run in time linear in the size
// of the interference graph for all three heuristics (watch the
// per-item time stay flat as the graph grows at constant average
// degree), and the degree-bucket worklist's operations are O(1).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "regalloc/Coloring.h"
#include "regalloc/DegreeBuckets.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>

using namespace ra;

namespace {

/// Random graph with ~AvgDegree expected degree and loop-weighted
/// random spill costs.
InterferenceGraph makeRandomGraph(unsigned NumNodes, double AvgDegree,
                                  uint64_t Seed) {
  InterferenceGraph G(NumNodes);
  Rng R(Seed);
  uint64_t Edges = uint64_t(NumNodes * AvgDegree / 2);
  for (uint64_t E = 0; E < Edges; ++E) {
    unsigned A = R.nextBelow(NumNodes), B = R.nextBelow(NumNodes);
    G.addEdge(A, B);
  }
  for (unsigned N = 0; N < NumNodes; ++N)
    G.node(N).SpillCost = double(1 + R.nextBelow(10000));
  return G;
}

/// Colors once outside the timed region and aborts the whole run if
/// the result is not a provably valid coloring: a benchmark of wrong
/// answers is worse than no benchmark.
void validateOrDie(const InterferenceGraph &G, unsigned K, Heuristic H) {
  ColoringResult R = colorGraph(G, K, H);
  if (!isValidColoring(G, K, R)) {
    std::fprintf(stderr, "invalid %s coloring at K=%u on %u nodes\n",
                 heuristicName(H), K, G.numNodes());
    std::exit(1);
  }
}

void BM_ColorGraph(benchmark::State &State, Heuristic H) {
  unsigned NumNodes = unsigned(State.range(0));
  InterferenceGraph G = makeRandomGraph(NumNodes, 12.0, 42);
  validateOrDie(G, 8, H);
  for (auto _ : State) {
    ColoringResult R = colorGraph(G, 8, H);
    benchmark::DoNotOptimize(R.ColorOf.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * NumNodes);
}

void BM_Chaitin(benchmark::State &S) { BM_ColorGraph(S, Heuristic::Chaitin); }
void BM_Briggs(benchmark::State &S) { BM_ColorGraph(S, Heuristic::Briggs); }
void BM_MatulaBeck(benchmark::State &S) {
  BM_ColorGraph(S, Heuristic::MatulaBeck);
}

BENCHMARK(BM_Chaitin)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_Briggs)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_MatulaBeck)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

/// High-color configuration: ample colors, so the whole run stays in
/// the linear fast path (no cost scans).
void BM_BriggsNoSpills(benchmark::State &State) {
  unsigned NumNodes = unsigned(State.range(0));
  InterferenceGraph G = makeRandomGraph(NumNodes, 12.0, 42);
  validateOrDie(G, 32, Heuristic::Briggs);
  for (auto _ : State) {
    ColoringResult R = colorGraph(G, 32, Heuristic::Briggs);
    benchmark::DoNotOptimize(R.ColorOf.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * NumNodes);
}
BENCHMARK(BM_BriggsNoSpills)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

/// The Matula-Beck degree-bucket structure: full remove-lowest sweep.
void BM_DegreeBuckets(benchmark::State &State) {
  unsigned NumNodes = unsigned(State.range(0));
  InterferenceGraph G = makeRandomGraph(NumNodes, 12.0, 7);
  std::vector<uint32_t> Degrees(NumNodes);
  for (unsigned N = 0; N < NumNodes; ++N)
    Degrees[N] = G.degree(N);
  for (auto _ : State) {
    DegreeBuckets Buckets;
    Buckets.init(Degrees);
    uint32_t Hint = 0;
    while (Buckets.numLive() != 0) {
      uint32_t D = Buckets.lowestNonEmpty(Hint);
      uint32_t N = Buckets.head(D);
      Buckets.remove(N);
      for (uint32_t M : G.neighbors(N))
        if (!Buckets.isRemoved(M))
          Buckets.decrementDegree(M);
      Hint = D == 0 ? 0 : D - 1;
    }
    benchmark::DoNotOptimize(Buckets.numLive());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * NumNodes);
}
BENCHMARK(BM_DegreeBuckets)->Arg(1024)->Arg(16384);

//===--------------------------------------------------------------------===//
// Random-graph throughput workload: many independent graphs colored
// across a thread pool — the module-allocation shape, minus IR noise.
// Reports graphs/sec per worker count and the speedup over one worker;
// results are checked identical across worker counts.
//===--------------------------------------------------------------------===//

struct ThroughputRun {
  double Seconds = 0;
  double GraphsPerSec = 0;
  double SimplifySeconds = 0, SelectSeconds = 0;
  std::vector<unsigned> SpillCounts; ///< determinism fingerprint
};

ThroughputRun runThroughput(std::vector<InterferenceGraph> &Graphs,
                            Heuristic H, unsigned Threads) {
  ThroughputRun R;
  validateOrDie(Graphs.front(), 8, H); // sanity before the timed sweep
  R.SpillCounts.resize(Graphs.size());
  std::vector<ColoringResult> Results(Graphs.size());
  Timer Wall;
  Wall.start();
  if (Threads <= 1) {
    for (size_t I = 0; I < Graphs.size(); ++I)
      Results[I] = colorGraph(Graphs[I], 8, H);
  } else {
    ThreadPool Pool(Threads);
    std::vector<std::future<ColoringResult>> Pending;
    Pending.reserve(Graphs.size());
    for (InterferenceGraph &G : Graphs)
      Pending.push_back(
          Pool.submit([&G, H] { return colorGraph(G, 8, H); }));
    for (size_t I = 0; I < Graphs.size(); ++I)
      Results[I] = Pending[I].get();
  }
  Wall.stop();
  R.Seconds = Wall.seconds();
  R.GraphsPerSec = R.Seconds > 0 ? Graphs.size() / R.Seconds : 0;
  for (size_t I = 0; I < Graphs.size(); ++I) {
    R.SpillCounts[I] = Results[I].Spilled.size();
    R.SimplifySeconds += Results[I].SimplifySeconds;
    R.SelectSeconds += Results[I].SelectSeconds;
  }
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  unsigned Jobs = 4;
  unsigned NumGraphs = 48, NodesPerGraph = 3000;
  int W = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = unsigned(std::atoi(Argv[++I]));
    else if (std::strcmp(Argv[I], "--graphs") == 0 && I + 1 < Argc)
      NumGraphs = unsigned(std::atoi(Argv[++I]));
    else
      Argv[W++] = Argv[I];
  }
  Argc = W;
  if (Jobs == 0)
    Jobs = ThreadPool::resolveJobs(0);

  std::vector<InterferenceGraph> Graphs;
  Graphs.reserve(NumGraphs);
  for (unsigned I = 0; I < NumGraphs; ++I) {
    Graphs.push_back(makeRandomGraph(NodesPerGraph, 12.0, 1000 + I));
    Graphs.back().finalize(); // share safely across workers
  }

  BenchJson J("micro_coloring");
  J.set("random_graph_workload.num_graphs", NumGraphs);
  J.set("random_graph_workload.nodes_per_graph", NodesPerGraph);
  J.set("random_graph_workload.avg_degree", 12.0);
  J.set("random_graph_workload.colors", 8);

  std::printf("Random-graph throughput (%u graphs x %u nodes, k=8)\n",
              NumGraphs, NodesPerGraph);
  for (Heuristic H : {Heuristic::Chaitin, Heuristic::Briggs}) {
    ThroughputRun Serial = runThroughput(Graphs, H, 1);
    std::string P = std::string("random_graph_workload.") +
                    heuristicName(H) + ".";
    J.set(P + "simplify_seconds", Serial.SimplifySeconds);
    J.set(P + "select_seconds", Serial.SelectSeconds);
    J.set(P + "threads.1.seconds", Serial.Seconds);
    J.set(P + "threads.1.graphs_per_sec", Serial.GraphsPerSec);
    std::printf("  %-12s 1 thread : %8.1f graphs/sec\n",
                heuristicName(H), Serial.GraphsPerSec);
    for (unsigned T = 2; T <= Jobs; T *= 2) {
      ThroughputRun Par = runThroughput(Graphs, H, T);
      if (Par.SpillCounts != Serial.SpillCounts) {
        std::fprintf(stderr,
                     "FATAL: %u-thread coloring differs from serial\n", T);
        return 1;
      }
      double Speedup =
          Par.Seconds > 0 ? Serial.Seconds / Par.Seconds : 0;
      std::string TP = P + "threads." + std::to_string(T) + ".";
      J.set(TP + "seconds", Par.Seconds);
      J.set(TP + "graphs_per_sec", Par.GraphsPerSec);
      J.set(TP + "speedup_vs_1thread", Speedup);
      std::printf("  %-12s %u threads: %8.1f graphs/sec (%.2fx, "
                  "results identical)\n",
                  heuristicName(H), T, Par.GraphsPerSec, Speedup);
    }
  }

  if (!JsonPath.empty() && !J.writeMerged(JsonPath))
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());

  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
