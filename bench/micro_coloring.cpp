//===- bench/micro_coloring.cpp - coloring microbenchmarks ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks backing the paper's complexity
// claims (Section 3.3): simplify+select run in time linear in the size
// of the interference graph for all three heuristics (watch the
// per-item time stay flat as the graph grows at constant average
// degree), and the degree-bucket worklist's operations are O(1).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"
#include "regalloc/DegreeBuckets.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace ra;

namespace {

/// Random graph with ~AvgDegree expected degree and loop-weighted
/// random spill costs.
InterferenceGraph makeRandomGraph(unsigned NumNodes, double AvgDegree,
                                  uint64_t Seed) {
  InterferenceGraph G(NumNodes);
  Rng R(Seed);
  uint64_t Edges = uint64_t(NumNodes * AvgDegree / 2);
  for (uint64_t E = 0; E < Edges; ++E) {
    unsigned A = R.nextBelow(NumNodes), B = R.nextBelow(NumNodes);
    G.addEdge(A, B);
  }
  for (unsigned N = 0; N < NumNodes; ++N)
    G.node(N).SpillCost = double(1 + R.nextBelow(10000));
  return G;
}

void BM_ColorGraph(benchmark::State &State, Heuristic H) {
  unsigned NumNodes = unsigned(State.range(0));
  InterferenceGraph G = makeRandomGraph(NumNodes, 12.0, 42);
  for (auto _ : State) {
    ColoringResult R = colorGraph(G, 8, H);
    benchmark::DoNotOptimize(R.ColorOf.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * NumNodes);
}

void BM_Chaitin(benchmark::State &S) { BM_ColorGraph(S, Heuristic::Chaitin); }
void BM_Briggs(benchmark::State &S) { BM_ColorGraph(S, Heuristic::Briggs); }
void BM_MatulaBeck(benchmark::State &S) {
  BM_ColorGraph(S, Heuristic::MatulaBeck);
}

BENCHMARK(BM_Chaitin)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_Briggs)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_MatulaBeck)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

/// High-color configuration: ample colors, so the whole run stays in
/// the linear fast path (no cost scans).
void BM_BriggsNoSpills(benchmark::State &State) {
  unsigned NumNodes = unsigned(State.range(0));
  InterferenceGraph G = makeRandomGraph(NumNodes, 12.0, 42);
  for (auto _ : State) {
    ColoringResult R = colorGraph(G, 32, Heuristic::Briggs);
    benchmark::DoNotOptimize(R.ColorOf.data());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * NumNodes);
}
BENCHMARK(BM_BriggsNoSpills)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

/// The Matula-Beck degree-bucket structure: full remove-lowest sweep.
void BM_DegreeBuckets(benchmark::State &State) {
  unsigned NumNodes = unsigned(State.range(0));
  InterferenceGraph G = makeRandomGraph(NumNodes, 12.0, 7);
  std::vector<uint32_t> Degrees(NumNodes);
  for (unsigned N = 0; N < NumNodes; ++N)
    Degrees[N] = G.degree(N);
  for (auto _ : State) {
    DegreeBuckets Buckets;
    Buckets.init(Degrees);
    uint32_t Hint = 0;
    while (Buckets.numLive() != 0) {
      uint32_t D = Buckets.lowestNonEmpty(Hint);
      uint32_t N = Buckets.head(D);
      Buckets.remove(N);
      for (uint32_t M : G.neighbors(N))
        if (!Buckets.isRemoved(M))
          Buckets.decrementDegree(M);
      Hint = D == 0 ? 0 : D - 1;
    }
    benchmark::DoNotOptimize(Buckets.numLive());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * NumNodes);
}
BENCHMARK(BM_DegreeBuckets)->Arg(1024)->Arg(16384);

} // namespace

BENCHMARK_MAIN();
