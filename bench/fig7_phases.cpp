//===- bench/fig7_phases.cpp - Figure 7 reproduction ----------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// CPU time for the allocator phases (build / simplify / color / spill)
// across Build-Simplify-Color passes, for the paper's four largest
// routines: DQRDC, SVD, GRADNT, HSSIAN, under both heuristics.
// Properties to reproduce: build dominates; simplify and color are
// cheap; the optimistic method's extra color phase costs almost
// nothing; spill counts collapse after the first pass; neither method
// needs more than about three passes.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace ra;

namespace {

AllocationStats allocate(const std::string &Routine, Heuristic H) {
  const Workload *W = findWorkload(Routine);
  Module M;
  Function &F = W->Build(M);
  optimizeFunction(F);
  AllocatorConfig C;
  C.H = H;
  C.Audit = true; // every reported number comes from a proven coloring
  AllocationResult A = allocateRegisters(F, C);
  if (!A.Success || A.Outcome != AllocOutcome::Converged) {
    std::fprintf(stderr, "allocation failed for %s: %s\n", Routine.c_str(),
                 A.Diag.toString().c_str());
    std::exit(1);
  }
  return A.Stats;
}

std::string ms(double Seconds) { return Table::fixed(Seconds * 1e3, 2); }

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  const char *Routines[] = {"DQRDC", "SVD", "GRADNT", "HSSIAN"};

  std::printf("Figure 7 — CPU time for allocator phases "
              "(milliseconds; the paper used a 60 Hz clock)\n");
  std::printf("Parenthesized numbers: live ranges spilled by that "
              "pass.\n\n");

  std::vector<std::string> Headers = {"Phase"};
  for (const char *R : Routines) {
    Headers.push_back(std::string(R) + " Old");
    Headers.push_back("New");
  }
  Table T(Headers);

  std::vector<AllocationStats> Old, New;
  unsigned MaxPasses = 0;
  for (const char *R : Routines) {
    Old.push_back(allocate(R, Heuristic::Chaitin));
    New.push_back(allocate(R, Heuristic::Briggs));
    MaxPasses = std::max(MaxPasses, Old.back().numPasses());
    MaxPasses = std::max(MaxPasses, New.back().numPasses());
  }

  auto Cell = [](const AllocationStats &S, unsigned Pass,
                 auto Extract) -> std::string {
    if (Pass >= S.numPasses())
      return "";
    return Extract(S.Passes[Pass]);
  };

  for (unsigned Pass = 0; Pass < MaxPasses; ++Pass) {
    if (Pass > 0)
      T.addSeparator();
    struct PhaseRow {
      const char *Name;
      std::string (*Get)(const PassRecord &);
    };
    const PhaseRow Rows[] = {
        {"Build",
         [](const PassRecord &P) { return ms(P.BuildSeconds); }},
        {"Simplify",
         [](const PassRecord &P) { return ms(P.SimplifySeconds); }},
        {"Color",
         [](const PassRecord &P) { return ms(P.SelectSeconds); }},
        {"Spill",
         [](const PassRecord &P) {
           if (P.SpilledLiveRanges == 0)
             return std::string();
           return "(" + std::to_string(P.SpilledLiveRanges) + ") " +
                  ms(P.SpillSeconds);
         }},
    };
    for (const PhaseRow &Row : Rows) {
      std::vector<std::string> Cells = {Row.Name};
      for (unsigned R = 0; R < 4; ++R) {
        Cells.push_back(Cell(Old[R], Pass, Row.Get));
        Cells.push_back(Cell(New[R], Pass, Row.Get));
      }
      T.addRow(Cells);
    }
  }

  T.addSeparator();
  std::vector<std::string> Totals = {"Total"};
  for (unsigned R = 0; R < 4; ++R) {
    Totals.push_back(ms(Old[R].totalSeconds()));
    Totals.push_back(ms(New[R].totalSeconds()));
  }
  T.addRow(Totals);
  T.print();

  std::printf("\nPasses used:");
  for (unsigned R = 0; R < 4; ++R)
    std::printf(" %s old=%u new=%u", Routines[R], Old[R].numPasses(),
                New[R].numPasses());
  std::printf("\n");

  if (!JsonPath.empty()) {
    BenchJson J("fig7_phases");
    const struct {
      const char *Name;
      const std::vector<AllocationStats> *Stats;
    } Sides[] = {{"chaitin", &Old}, {"briggs", &New}};
    for (const auto &Side : Sides) {
      double Build = 0, Simplify = 0, Select = 0, Spill = 0;
      for (unsigned R = 0; R < 4; ++R) {
        const AllocationStats &S = (*Side.Stats)[R];
        double RB = 0, RSi = 0, RSe = 0, RSp = 0;
        for (const PassRecord &P : S.Passes) {
          RB += P.BuildSeconds;
          RSi += P.SimplifySeconds;
          RSe += P.SelectSeconds;
          RSp += P.SpillSeconds;
        }
        std::string Prefix =
            std::string(Side.Name) + "." + Routines[R] + ".";
        J.set(Prefix + "build_seconds", RB);
        J.set(Prefix + "simplify_seconds", RSi);
        J.set(Prefix + "select_seconds", RSe);
        J.set(Prefix + "spill_seconds", RSp);
        J.set(Prefix + "passes", S.numPasses());
        Build += RB;
        Simplify += RSi;
        Select += RSe;
        Spill += RSp;
      }
      std::string Prefix = std::string(Side.Name) + ".total.";
      J.set(Prefix + "build_seconds", Build);
      J.set(Prefix + "simplify_seconds", Simplify);
      J.set(Prefix + "select_seconds", Select);
      J.set(Prefix + "spill_seconds", Spill);
    }
    if (!J.writeMerged(JsonPath))
      std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  }
  return 0;
}
