//===- bench/fig6_quicksort.cpp - Figure 6 reproduction -------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The quicksort study: compile Wirth's non-recursive quicksort with the
// integer register file shrunk from 16 down to 8 registers, under both
// heuristics. For each configuration: live ranges spilled, estimated
// spill cost, object size, and simulated running time sorting 200,000
// integers. The paper's findings to reproduce: both methods agree at 16
// registers, the optimistic method wins increasingly as the file
// shrinks, and an inadequate register set costs real time (27% slower
// and 17% more code at 8 registers, old method).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>

using namespace ra;

namespace {

constexpr uint32_t SortN = 200000;
/// Model clock for converting simulated cycles into seconds (the paper
/// sorted 200,000 integers in ~8 seconds on the RT/PC).
constexpr double ClockHz = 11.0e6;

struct Config {
  unsigned Spilled = 0;
  double SpillCost = 0;
  unsigned ObjectBytes = 0;
  double Seconds = 0;
  double BuildSeconds = 0, SimplifySeconds = 0, SelectSeconds = 0,
         SpillSeconds = 0;
};

Config measure(unsigned K, Heuristic H) {
  Config R;
  Module M;
  Function &F = buildQuicksort(M, SortN);
  optimizeFunction(F);

  AllocatorConfig C;
  C.H = H;
  C.Machine = MachineInfo(K, 8);
  C.Audit = true; // every reported number comes from a proven coloring
  AllocationResult A = allocateRegisters(F, C);
  if (!A.Success || A.Outcome != AllocOutcome::Converged) {
    std::fprintf(stderr, "allocation failed at k=%u: %s\n", K,
                 A.Diag.toString().c_str());
    std::exit(1);
  }
  R.Spilled = A.Stats.totalSpills();
  R.SpillCost = 0;
  for (const PassRecord &P : A.Stats.Passes) {
    R.SpillCost += P.SpilledCost;
    R.BuildSeconds += P.BuildSeconds;
    R.SimplifySeconds += P.SimplifySeconds;
    R.SelectSeconds += P.SelectSeconds;
    R.SpillSeconds += P.SpillSeconds;
  }
  R.ObjectBytes = F.numInstructions() * CostModel::rtpc().bytesPerInstruction();

  MemoryImage Mem(M);
  initQuicksortMemory(M, Mem);
  Simulator Sim(M);
  ExecutionResult Run = Sim.runAllocated(F, A, Mem, SimOptions{.MaxInstructions = 1ull << 33});
  if (!Run.Ok)
    std::fprintf(stderr, "simulation trapped at k=%u: %s\n", K,
                 Run.Error.c_str());
  R.Seconds = double(Run.Cycles) / ClockHz;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = BenchJson::consumeFlag(Argc, Argv);
  BenchJson J("fig6_quicksort");
  std::printf("Figure 6 — quicksort study (Wirth's non-recursive "
              "algorithm, %u integers)\n\n",
              SortN);

  Table T({"Registers", "Spilled Old", "New", "Pct.", "Cost Old", "New",
           "Pct.", "Object Old", "New", "Pct.", "Time Old", "New",
           "Pct."});

  for (unsigned K : {16u, 14u, 12u, 10u, 8u}) {
    Config Old = measure(K, Heuristic::Chaitin);
    Config New = measure(K, Heuristic::Briggs);
    const struct {
      const char *Name;
      const Config *C;
    } Sides[] = {{"chaitin", &Old}, {"briggs", &New}};
    for (const auto &Side : Sides) {
      std::string P = std::string(Side.Name) + ".k" + std::to_string(K) + ".";
      J.set(P + "spilled", Side.C->Spilled);
      J.set(P + "spill_cost", Side.C->SpillCost);
      J.set(P + "simulated_seconds", Side.C->Seconds);
      J.set(P + "build_seconds", Side.C->BuildSeconds);
      J.set(P + "simplify_seconds", Side.C->SimplifySeconds);
      J.set(P + "select_seconds", Side.C->SelectSeconds);
      J.set(P + "spill_seconds", Side.C->SpillSeconds);
    }
    T.addRow({std::to_string(K), Table::withCommas(Old.Spilled),
              Table::withCommas(New.Spilled),
              Table::pctImprovement(Old.Spilled, New.Spilled),
              Table::withCommas(int64_t(Old.SpillCost)),
              Table::withCommas(int64_t(New.SpillCost)),
              Table::pctImprovement(Old.SpillCost, New.SpillCost),
              Table::withCommas(Old.ObjectBytes),
              Table::withCommas(New.ObjectBytes),
              Table::pctImprovement(Old.ObjectBytes, New.ObjectBytes),
              Table::fixed(Old.Seconds, 1), Table::fixed(New.Seconds, 1),
              Table::pctImprovement(Old.Seconds, New.Seconds)});
  }
  T.print();

  std::printf("\nSpill counts/costs are totals across all allocation "
              "passes; time is simulated cycles at %.0f MHz.\n",
              ClockHz / 1e6);
  if (!JsonPath.empty() && !J.writeMerged(JsonPath))
    std::fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
  return 0;
}
