//===- workloads/Euler.cpp - 1-D EULER shock code reconstruction ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reconstruction of the paper's EULER program, a 1-D simulation of shock
// wave propagation. Eleven routines with deliberately different
// register-pressure profiles, matching the spread in Figure 5: from
// BNDRY (straight-line, almost no spilling) through FINDIF/DIFFR
// (moderate nests, ~26% improvement) to DISSIP (SVD-like long live
// ranges over several nests — the table's best case at 69%) and INIT
// (large but simple, little improvement).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/KernelBuilder.h"

using namespace ra;

namespace {
constexpr int64_t NX = 256; ///< grid points
} // namespace

//===--------------------------------------------------------------------===//
// SHOCK — initial discontinuity.
//===--------------------------------------------------------------------===//

Function &ra::buildSHOCK(Module &M) {
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  Function &F = M.newFunction("SHOCK");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NX, "nx");
  VRegId Mid = B.constI(NX / 2, "mid");
  VRegId UL = B.constF(1.0, "ul");
  VRegId UR = B.constF(0.125, "ur");

  VRegId I = B.iReg("i");
  auto L = B.forLoop("fill", I, 0, N);
  VRegId V = B.fReg("v");
  auto Side = B.ifElseCmp(CmpKind::LT, I, Mid, "side");
  B.copy(UL, V);
  B.elseBranch(Side);
  B.copy(UR, V);
  B.endIf(Side);
  B.store(U, I, V);
  B.endDo(L);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// DERIV — centered first and second differences.
//===--------------------------------------------------------------------===//

Function &ra::buildDERIV(Module &M) {
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  uint32_t D1 = M.newArray("d1", NX, RegClass::Float);
  uint32_t D2 = M.newArray("d2", NX, RegClass::Float);
  Function &F = M.newFunction("DERIV");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId Nm1 = B.constI(NX - 1, "nm1");
  VRegId HalfInv = B.constF(0.5 * NX, "halfinv"); // 1/(2 dx), dx = 1/NX
  VRegId DxInv2 = B.constF(double(NX) * NX, "dxinv2");
  VRegId Zero = B.constI(0, "zero");
  VRegId FZero = B.constF(0.0, "fzero");

  VRegId I = B.iReg("i");
  auto L1 = B.forLoop("first", I, 1, Nm1);
  VRegId Diff = B.fsub(B.load(U, B.addI(I, 1)), B.load(U, B.addI(I, -1)));
  B.store(D1, I, B.fmul(Diff, HalfInv));
  B.endDo(L1);

  auto L2 = B.forLoop("second", I, 1, Nm1);
  VRegId Up = B.load(U, B.addI(I, 1));
  VRegId Um = B.load(U, B.addI(I, -1));
  VRegId Uc = B.load(U, I);
  VRegId Lap = B.fsub(B.fadd(Up, Um), B.fadd(Uc, Uc));
  B.store(D2, I, B.fmul(Lap, DxInv2));
  B.endDo(L2);

  // One-sided boundaries.
  B.store(D1, Zero, FZero);
  B.store(D1, B.constI(NX - 1), FZero);
  B.store(D2, Zero, FZero);
  B.store(D2, B.constI(NX - 1), FZero);
  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// CODE — one conservative update step (Burgers flux + viscosity).
//===--------------------------------------------------------------------===//

Function &ra::buildCODE(Module &M) {
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  uint32_t Fx = M.newArray("f", NX, RegClass::Float);
  uint32_t Un = M.newArray("un", NX, RegClass::Float);
  Function &F = M.newFunction("CODE");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NX, "nx");
  VRegId Nm1 = B.constI(NX - 1, "nm1");
  // Coefficient block used in both loops: these are all live together,
  // so, as in the paper's CODE row, both heuristics make nearly the
  // same (necessary) spill choices.
  VRegId Half = B.constF(0.5, "half");
  VRegId DtDx = B.constF(0.4, "dtdx");
  VRegId Visc = B.constF(0.05, "visc");
  VRegId Gm = B.constF(1.4, "gm");
  VRegId Pr = B.constF(0.7, "pr");
  VRegId Cv = B.constF(2.5, "cv");

  VRegId I = B.iReg("i");
  auto Flux = B.forLoop("flux", I, 0, N);
  VRegId Ui = B.load(U, I);
  VRegId Kin = B.fmul(Half, B.fmul(Ui, Ui));
  B.store(Fx, I, B.fadd(Kin, B.fmul(B.fmul(Gm, Cv), B.fabs(Ui))));
  B.endDo(Flux);

  auto Upd = B.forLoop("update", I, 1, Nm1);
  {
    VRegId Ui2 = B.load(U, I);
    VRegId Fi = B.load(Fx, I);
    VRegId Fm = B.load(Fx, B.addI(I, -1));
    VRegId Up = B.load(U, B.addI(I, 1));
    VRegId Um = B.load(U, B.addI(I, -1));
    VRegId Conv = B.fmul(DtDx, B.fmul(B.fsub(Fi, Fm), Pr));
    VRegId Diff = B.fmul(Visc, B.fsub(B.fadd(Up, Um), B.fadd(Ui2, Ui2)));
    VRegId Src = B.fmul(Gm, B.fmul(Cv, B.fmul(Half, Ui2)));
    B.store(Un, I,
            B.fadd(B.fsub(B.fadd(B.fsub(Ui2, Conv), Diff),
                          B.fmul(Src, Visc)),
                   B.fmul(Pr, B.fmul(DtDx, Diff))));
  }
  B.endDo(Upd);

  // Copy back with frozen boundaries.
  auto Cp = B.forLoop("copyback", I, 1, Nm1);
  B.store(U, I, B.load(Un, I));
  B.endDo(Cp);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// CHEB — Chebyshev smoothing recurrence.
//===--------------------------------------------------------------------===//

Function &ra::buildCHEB(Module &M) {
  uint32_t R = M.newArray("r", NX, RegClass::Float);
  uint32_t T0 = M.newArray("t0", NX, RegClass::Float);
  uint32_t T1 = M.newArray("t1", NX, RegClass::Float);
  uint32_t T2 = M.newArray("t2", NX, RegClass::Float);
  Function &F = M.newFunction("CHEB");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NX, "nx");
  VRegId Nm1 = B.constI(NX - 1, "nm1");
  VRegId Deg = B.constI(6, "deg");
  VRegId TwoX = B.constF(1.8, "twox");
  VRegId Cr = B.constF(0.3, "cr");
  VRegId Cs2 = B.constF(0.95, "cs2");
  VRegId Cs3 = B.constF(0.02, "cs3");
  VRegId Cs4 = B.constF(1.05, "cs4");

  VRegId I = B.iReg("i"), K = B.iReg("k");

  // t0 = r; t1 = x * r.
  auto Init = B.forLoop("init", I, 0, N);
  VRegId Ri = B.load(R, I);
  B.store(T0, I, B.fmul(Ri, Cs4));
  B.store(T1, I, B.fmul(B.fmul(TwoX, Ri), Cr));
  B.endDo(Init);

  auto KL = B.forLoop("degree", K, 0, Deg);
  {
    auto IL = B.forLoop("recur", I, 1, Nm1);
    VRegId Next = B.fadd(
        B.fsub(B.fmul(TwoX, B.load(T1, I)), B.fmul(Cs2, B.load(T0, I))),
        B.fmul(Cr, B.load(R, I)));
    VRegId Neighbor =
        B.fadd(B.load(T1, B.addI(I, 1)), B.load(T1, B.addI(I, -1)));
    B.store(T2, I, B.fadd(Next, B.fmul(Cs3, Neighbor)));
    B.endDo(IL);
    auto Shift = B.forLoop("shift", I, 0, N);
    B.store(T0, I, B.fmul(B.load(T1, I), Cs4));
    B.store(T1, I, B.load(T2, I));
    B.endDo(Shift);
  }
  B.endDo(KL);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// FINDIF — finite-difference update with shared coefficient scalars.
//===--------------------------------------------------------------------===//

Function &ra::buildFINDIF(Module &M) {
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  uint32_t W = M.newArray("w", NX, RegClass::Float);
  uint32_t G = M.newArray("g", NX, RegClass::Float);
  Function &F = M.newFunction("FINDIF");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId Nm2 = B.constI(NX - 2, "nm2");
  VRegId Blk = B.constI(8, "blk");
  VRegId Sweeps = B.constI(2, "sweeps");
  VRegId Passes = B.constI(2, "passes");
  // Five shared coefficients, live across the pre-loop and the sweeps
  // (few enough that a colorable neighborhood remains possible).
  VRegId C1 = B.constF(0.1, "c1");
  VRegId C2 = B.constF(0.2, "c2");
  VRegId C3 = B.constF(0.05, "c3");
  VRegId C4 = B.constF(0.7, "c4");
  VRegId C5 = B.constF(1.3, "c5");

  VRegId I = B.iReg("i"), J = B.iReg("j");
  VRegId Sweep = B.iReg("sweep"), Pass = B.iReg("pass");

  // Small doubly-nested boundary smoothing. The temporaries are
  // staggered and one operand is reused late, so their degree reaches
  // the FP file size while the region itself stays colorable — the
  // Figure 3 shape Chaitin's simplification trips over.
  auto PJ = B.forLoop("pre.j", J, 0, Blk);
  auto PI = B.forLoop("pre.i", I, 2, Blk);
  {
    VRegId A = B.load(G, B.addI(I, -2), B.fReg("pre.a"));
    VRegId Bg = B.load(G, B.addI(I, -1), B.fReg("pre.b"));
    VRegId Acc = B.fadd(A, Bg, B.fReg("pre.acc"));
    VRegId C = B.fmul(Bg, C3, B.fReg("pre.c"));
    VRegId D = B.fadd(Acc, C, B.fReg("pre.d"));
    VRegId E = B.fadd(D, A, B.fReg("pre.e")); // late reuse of A
    B.store(G, I, B.fmul(E, C1));
  }
  B.endDo(PI);
  B.endDo(PJ);

  auto SW = B.forLoop("sweep", Sweep, 0, Sweeps);
  {
    // Stage coefficients for this sweep (depend on the sweep counter).
    VRegId Ds = B.fmul(B.itof(Sweep), B.constF(0.1));
    VRegId C6 = B.fsub(B.constF(0.9), B.fmul(Ds, C3));
    VRegId C7 = B.fadd(C5, Ds);
    VRegId C8 = B.fsub(C6, B.fmul(Ds, C1));

    auto PL = B.forLoop("pass", Pass, 0, Passes);
    {
      // Nest 1: 5-point stencil into w, accumulating as it loads so
      // local pressure stays modest (depth-3 body).
      auto L1 = B.forLoop("stencil", I, 2, Nm2);
      {
        VRegId T = B.fmul(C1, B.load(U, B.addI(I, -2)));
        T = B.fadd(T, B.fmul(C2, B.load(U, B.addI(I, -1))));
        T = B.fadd(T, B.fmul(C4, B.load(U, I)));
        T = B.fadd(T, B.fmul(C2, B.load(U, B.addI(I, 1))));
        T = B.fadd(T, B.fmul(C1, B.load(U, B.addI(I, 2))));
        B.store(W, I, B.fmul(T, C7));
      }
      B.endDo(L1);

      // Nest 2: gradient-limited correction with a minmod branch.
      auto L2 = B.forLoop("correct", I, 2, Nm2);
      {
        VRegId Wm = B.load(W, B.addI(I, -1));
        VRegId Wc = B.load(W, I);
        VRegId Wp = B.load(W, B.addI(I, 1));
        VRegId DL = B.fsub(Wc, Wm);
        VRegId DR = B.fsub(Wp, Wc);
        VRegId Corr = B.fReg("corr");
        auto MinMod = B.ifElseCmp(CmpKind::GT, B.fmul(DL, DR), C3,
                                  "minmod");
        B.fsub(B.fmul(C8, DR), B.fmul(C6, DL), Corr);
        B.elseBranch(MinMod);
        B.fmul(C3, B.fadd(B.fabs(DL), B.fabs(DR)), Corr);
        B.endIf(MinMod);
        B.store(G, I, B.fadd(B.fmul(Corr, C4), B.fmul(Wc, C2)));
      }
      B.endDo(L2);
    }
    B.endDo(PL);
  }
  B.endDo(SW);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// FFTB — decimation-in-time butterfly loop nest (real/imag arrays).
//===--------------------------------------------------------------------===//

Function &ra::buildFFTB(Module &M) {
  uint32_t Xr = M.newArray("xr", NX, RegClass::Float);
  uint32_t Xi = M.newArray("xi", NX, RegClass::Float);
  Function &F = M.newFunction("FFTB");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NX, "n");
  VRegId One = B.constF(1.0, "fone");
  VRegId WrStep = B.constF(0.995, "wrstep");
  VRegId WiStep = B.constF(0.0998, "wistep");

  // Stage loop: le = 1, 2, 4, ... < n  (while structure).
  VRegId Le = B.iReg("le");
  B.movI(1, Le);
  uint32_t StageHead = B.newBlock("stage.head");
  uint32_t StageBody = B.newBlock("stage.body");
  uint32_t StageExit = B.newBlock("stage.exit");
  B.jmp(StageHead);
  B.setInsertPoint(StageHead);
  B.br(CmpKind::LT, Le, N, StageBody, StageExit);
  B.setInsertPoint(StageBody);
  {
    VRegId Le2 = B.mulI(Le, 2);
    VRegId Ur = B.fReg("ur");
    VRegId Ui = B.fReg("ui");
    B.movF(1.0, Ur);
    B.movF(0.0, Ui);
    // Second (half-rate) twiddle pair, as a radix-4-style kernel keeps.
    VRegId Vr = B.fReg("vr");
    VRegId Vi = B.fReg("vi");
    B.movF(1.0, Vr);
    B.movF(0.0, Vi);

    VRegId J = B.iReg("j");
    auto JL = B.forLoop("twiddle", J, 0, Le);
    {
      // Strided butterfly: i = j, j+le2, j+2*le2, ...
      VRegId I = B.iReg("i");
      B.copy(J, I);
      uint32_t BflyHead = B.newBlock("bfly.head");
      uint32_t BflyBody = B.newBlock("bfly.body");
      uint32_t BflyExit = B.newBlock("bfly.exit");
      B.jmp(BflyHead);
      B.setInsertPoint(BflyHead);
      VRegId Ip = B.add(I, Le);
      B.br(CmpKind::LT, Ip, N, BflyBody, BflyExit);
      B.setInsertPoint(BflyBody);
      {
        VRegId Tr = B.fsub(B.fmul(Ur, B.load(Xr, Ip)),
                           B.fmul(Ui, B.load(Xi, Ip)));
        VRegId Ti = B.fadd(B.fmul(Ur, B.load(Xi, Ip)),
                           B.fmul(Ui, B.load(Xr, Ip)));
        VRegId Ar = B.fadd(B.fmul(B.load(Xr, I), Vr),
                           B.fmul(B.load(Xi, I), Vi));
        VRegId Ai = B.fsub(B.fmul(B.load(Xi, I), Vr),
                           B.fmul(B.load(Xr, I), Vi));
        B.store(Xr, Ip, B.fsub(Ar, Tr));
        B.store(Xi, Ip, B.fsub(Ai, Ti));
        B.store(Xr, I, B.fadd(Ar, Tr));
        B.store(Xi, I, B.fadd(Ai, Ti));
        B.add(I, Le2, I);
        B.jmp(BflyHead);
      }
      B.setInsertPoint(BflyExit);
      // Twiddle recurrences (approximate rotations, two rates).
      VRegId NewUr = B.fsub(B.fmul(Ur, WrStep), B.fmul(Ui, WiStep));
      VRegId NewUi = B.fadd(B.fmul(Ui, WrStep), B.fmul(Ur, WiStep));
      B.copy(NewUr, Ur);
      B.copy(NewUi, Ui);
      VRegId NewVr = B.fsub(B.fmul(Vr, WrStep), B.fmul(Vi, WrStep));
      VRegId NewVi = B.fadd(B.fmul(Vi, WrStep), B.fmul(Vr, WiStep));
      B.copy(NewVr, Vr);
      B.copy(NewVi, Vi);
    }
    B.endDo(JL);
    (void)One;
    B.copy(Le2, Le);
    B.jmp(StageHead);
  }
  B.setInsertPoint(StageExit);
  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// BNDRY — boundary conditions: long straight-line scalar chains with
// low simultaneous pressure (the table's 3-spill row).
//===--------------------------------------------------------------------===//

Function &ra::buildBNDRY(Module &M) {
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  uint32_t P = M.newArray("p", 32, RegClass::Float);
  Function &F = M.newFunction("BNDRY");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId Damp = B.constF(0.97, "damp");
  VRegId Bias = B.constF(0.01, "bias");

  // Twelve independent chains per edge: each computes a ghost value
  // from two parameters, then stores it. Chains are sequential, so few
  // values are live at once.
  for (int64_t K = 0; K < 12; ++K) {
    VRegId A = B.load(P, B.constI(K % 8));
    VRegId Bv = B.load(P, B.constI((K + 3) % 8));
    VRegId T = B.fmul(A, Damp);
    T = B.fadd(T, B.fmul(Bv, Bias));
    T = B.fsub(T, B.fmul(B.fabs(A), Bias));
    T = B.fmul(T, Damp);
    B.store(U, B.constI(K), T);
    VRegId T2 = B.fadd(B.fmul(Bv, Damp), B.fmul(A, Bias));
    T2 = B.fsub(T2, B.fmul(B.fabs(Bv), Bias));
    B.store(U, B.constI(NX - 1 - K), T2);
  }

  // Small ghost-cell loops.
  VRegId I = B.iReg("i");
  VRegId Four = B.constI(4, "four");
  auto L1 = B.forLoop("ghost.lo", I, 0, Four);
  B.store(U, I, B.fmul(B.load(U, B.addI(I, 4)), Damp));
  B.endDo(L1);
  auto L2 = B.forLoop("ghost.hi", I, 0, Four);
  VRegId Hi = B.sub(B.constI(NX - 1), I);
  B.store(U, Hi, B.fmul(B.load(U, B.addI(Hi, -4)), Damp));
  B.endDo(L2);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// INPUT — problem setup: a long series of parameter assignments plus
// simply nested initialization loops.
//===--------------------------------------------------------------------===//

Function &ra::buildINPUT(Module &M) {
  uint32_t P = M.newArray("p", 32, RegClass::Float);
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  uint32_t R = M.newArray("r", NX, RegClass::Float);
  uint32_t W = M.newArray("w", NX, RegClass::Float);
  Function &F = M.newFunction("INPUT");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NX, "nx");
  VRegId Rows = B.constI(3, "rows");
  VRegId Cols = B.constI(24, "cols");
  // Entry block of physical constants, live through everything below.
  VRegId Scale = B.constF(1.0 / NX, "scale");
  VRegId Gamma = B.constF(1.4, "gamma");
  VRegId Pref = B.constF(101.325, "pref");
  VRegId Rgas = B.constF(0.287, "rgas");
  VRegId Cvh = B.constF(0.718, "cvh");
  VRegId Tref = B.constF(288.0, "tref");

  // Parameter table: generated assignment series using the constants.
  for (int64_t K = 0; K < 24; ++K) {
    VRegId V = B.constF(0.125 * double(K + 1));
    V = B.fmul(V, Gamma);
    if (K % 3 == 0)
      V = B.fadd(V, Pref);
    if (K % 4 == 1)
      V = B.fmul(V, Scale);
    if (K % 5 == 2)
      V = B.fadd(B.fmul(V, Rgas), B.fmul(Cvh, Tref));
    B.store(P, B.constI(K), V);
  }

  // Small doubly-nested normalization over the parameter table, with
  // staggered cheap temporaries.
  VRegId I = B.iReg("i"), J = B.iReg("j");
  auto NormJ = B.forLoop("norm.j", J, 0, Rows);
  auto NormI = B.forLoop("norm.i", I, 1, Cols);
  {
    VRegId Pa = B.load(P, B.addI(I, -1));
    VRegId Pb = B.load(P, I);
    VRegId Acc = B.fadd(Pa, Pb);
    VRegId T = B.fmul(Pb, Rgas);
    B.store(P, I, B.fmul(B.fadd(Acc, T), Scale));
  }
  B.endDo(NormI);
  B.endDo(NormJ);

  // Initial profiles, two points per trip, using the constant block.
  auto L1 = B.forLoop("prof.u", I, 0, N, 2);
  {
    VRegId Ip1 = B.addI(I, 1);
    VRegId X = B.fmul(B.itof(I), Scale);
    VRegId X2 = B.fmul(B.itof(Ip1), Scale);
    VRegId Va = B.fadd(B.fmul(X, X), B.fmul(Gamma, X));
    VRegId Vb = B.fadd(B.fmul(X2, X2), B.fmul(Gamma, X2));
    B.store(U, I, Va);
    B.store(U, Ip1, Vb);
  }
  B.endDo(L1);

  auto L2 = B.forLoop("prof.r", I, 0, N);
  VRegId X3 = B.fmul(B.itof(I), Scale);
  B.store(R, I,
          B.fadd(B.fsub(Pref, B.fmul(X3, Pref)),
                 B.fmul(Rgas, B.fmul(Tref, X3))));
  B.endDo(L2);

  auto L3 = B.forLoop("prof.w", I, 0, N);
  B.store(W, I, B.fmul(B.fmul(B.load(U, I), B.load(R, I)), Cvh));
  B.endDo(L3);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// DIFFR — wide-stencil difference operator over three sequential nests
// sharing a block of coefficients.
//===--------------------------------------------------------------------===//

Function &ra::buildDIFFR(Module &M) {
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  uint32_t A = M.newArray("a", NX, RegClass::Float);
  uint32_t Bx = M.newArray("b", NX, RegClass::Float);
  uint32_t C = M.newArray("c", NX, RegClass::Float);
  Function &F = M.newFunction("DIFFR");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId Nm3 = B.constI(NX - 3, "nm3");
  VRegId Blk = B.constI(9, "blk");
  VRegId Orders = B.constI(2, "orders");
  // Shared coefficient block (long live ranges across all nests).
  VRegId K1 = B.constF(0.0625, "k1");
  VRegId K2 = B.constF(0.25, "k2");
  VRegId K3 = B.constF(0.375, "k3");
  VRegId K4 = B.constF(1.5, "k4");
  VRegId K5 = B.constF(0.8, "k5");
  VRegId K6 = B.constF(0.12, "k6");

  VRegId I = B.iReg("i"), J = B.iReg("j"), Ord = B.iReg("ord");

  // Small doubly-nested aperture initialization (cheap staggered
  // temporaries over a tiny block).
  auto PJ = B.forLoop("aper.j", J, 0, Blk);
  auto PI = B.forLoop("aper.i", I, 2, Blk);
  {
    VRegId A1 = B.load(C, B.addI(I, -2));
    VRegId A2 = B.load(C, B.addI(I, -1));
    VRegId Acc = B.fadd(A1, A2);
    VRegId T = B.fmul(A2, K1);
    B.store(C, I, B.fmul(B.fadd(Acc, T), K2));
  }
  B.endDo(PI);
  B.endDo(PJ);

  // Diffraction orders: each order re-runs the three nests with
  // order-dependent stage coefficients.
  auto OL = B.forLoop("orders", Ord, 0, Orders);
  {
    VRegId Do = B.fmul(B.itof(Ord), B.constF(0.05));
    VRegId K7 = B.fadd(B.constF(2.2), Do);
    VRegId K8 = B.fsub(B.constF(0.45), B.fmul(Do, K6));

    // Nest 1: seven-point smoothing into a.
    auto L1 = B.forLoop("smooth", I, 3, Nm3);
    {
      VRegId S = B.fmul(K1, B.load(U, B.addI(I, -3)));
      S = B.fadd(S, B.fmul(K2, B.load(U, B.addI(I, -2))));
      S = B.fadd(S, B.fmul(K3, B.load(U, B.addI(I, -1))));
      S = B.fadd(S, B.fmul(K4, B.load(U, I)));
      S = B.fadd(S, B.fmul(K3, B.load(U, B.addI(I, 1))));
      S = B.fadd(S, B.fmul(K2, B.load(U, B.addI(I, 2))));
      S = B.fadd(S, B.fmul(K1, B.load(U, B.addI(I, 3))));
      B.store(A, I, S);
    }
    B.endDo(L1);

    // Nest 2: difference of smoothed field into b.
    auto L2 = B.forLoop("diff", I, 3, Nm3);
    {
      VRegId D =
          B.fsub(B.load(A, B.addI(I, 1)), B.load(A, B.addI(I, -1)));
      VRegId D2 =
          B.fsub(B.load(A, B.addI(I, 2)), B.load(A, B.addI(I, -2)));
      VRegId T = B.fsub(B.fmul(K5, D), B.fmul(K6, D2));
      B.store(Bx, I, B.fmul(T, K7));
    }
    B.endDo(L2);

    // Nest 3: combine, with an aperture branch.
    auto L3 = B.forLoop("combine", I, 3, Nm3);
    {
      VRegId Ai = B.load(A, I);
      VRegId Bi = B.load(Bx, I);
      VRegId Ui = B.load(U, I);
      VRegId T = B.fReg("t");
      auto Edge = B.ifElseCmp(CmpKind::GT, B.fabs(Bi),
                              B.fmul(K6, B.fabs(Ai)), "edge");
      B.fadd(B.fmul(K8, Ai), B.fmul(K5, Bi), T);
      B.elseBranch(Edge);
      B.fsub(B.fmul(K8, Ai), B.fmul(K3, Bi), T);
      B.endIf(Edge);
      B.store(C, I, B.fadd(T, B.fmul(K2, Ui)));
    }
    B.endDo(L3);
  }
  B.endDo(OL);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// DISSIP — artificial dissipation. Deliberately SVD-shaped (Figure 1):
// entry-defined coefficients live across a small doubly-nested
// smoothing loop and into deep time-step nests; a second block of
// stage coefficients is derived *inside* the time-step loop (they
// depend on the step number, so LICM cannot merge them with the entry
// block). The nests run at loop depth three, so the shared scalars are
// expensive to spill, while the smoothing loop's temporaries are cheap
// — the exact mis-ranking that made Chaitin's simplification phase
// over-spill SVD, and that the optimistic select phase cleans up. The
// table's best case (69% fewer spilled ranges).
//===--------------------------------------------------------------------===//

Function &ra::buildDISSIP(Module &M) {
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  uint32_t Q = M.newArray("q", NX, RegClass::Float);
  uint32_t D = M.newArray("d", NX, RegClass::Float);
  uint32_t E = M.newArray("e", NX, RegClass::Float);
  Function &F = M.newFunction("DISSIP");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  // Entry coefficient block: long live ranges spanning the smoothing
  // loop and every nest.
  VRegId Nm2 = B.constI(NX - 2, "nm2");
  VRegId Blk = B.constI(10, "blk");
  VRegId E2 = B.constF(0.25, "e2");
  VRegId E4 = B.constF(0.015625, "e4");
  VRegId Cfl = B.constF(0.9, "cfl");
  VRegId Vis = B.constF(0.07, "vis");
  VRegId Amp = B.constF(3.5, "amp");
  VRegId Flr = B.constF(1.0e-9, "flr");

  VRegId I = B.iReg("i"), J = B.iReg("j"), Step = B.iReg("step");
  VRegId Sweep = B.iReg("sweep");
  VRegId Steps = B.constI(2, "steps");
  VRegId Sweeps = B.constI(2, "sweeps");

  // The small doubly-nested smoothing loop — the "array copy" of
  // Figure 1. The accumulator Acc has neighbors that can share a color
  // (A dies before C is born), so its degree overstates its true
  // conflict: the shape of Figure 3.
  auto SJ = B.forLoop("pre.j", J, 0, Blk);
  auto SI = B.forLoop("pre.i", I, 2, Blk);
  {
    VRegId A = B.load(Q, B.addI(I, -2));
    VRegId Bq = B.load(Q, B.addI(I, -1));
    VRegId Acc = B.fadd(A, Bq);
    VRegId C = B.fmul(Bq, E2);
    VRegId Dv = B.fadd(Acc, C);
    B.store(Q, I, B.fmul(Dv, E4));
  }
  B.endDo(SI);
  B.endDo(SJ);

  auto TS = B.forLoop("steps", Step, 0, Steps);
  {
    // Stage coefficient block: derived from the step number, live over
    // the rest of this iteration only.
    VRegId Dt = B.fmul(B.itof(Step), B.constF(0.125));
    VRegId Wgt = B.fadd(B.fmul(Dt, Cfl), B.constF(1.1));
    VRegId Dmp = B.fsub(B.constF(0.93), B.fmul(Dt, E4));
    VRegId Mix = B.fadd(B.fmul(Dt, Vis), B.constF(0.6));
    VRegId Gn = B.fadd(B.constF(1.4), B.fmul(Dt, E2));
    VRegId Rf = B.fadd(B.constF(0.2), B.fmul(Dt, Dt));
    VRegId Sc = B.fmul(B.fadd(Dt, E4), B.constF(0.03));

    auto SW = B.forLoop("sweep", Sweep, 0, Sweeps);
    {
      // Nest 1: pressure sensor with a limiter branch (depth 3 body).
      VRegId PrevSense = B.fReg("prevsense");
      B.movF(0.0, PrevSense);
      auto L1 = B.forLoop("sensor", I, 2, Nm2);
      {
        VRegId Um1 = B.load(U, B.addI(I, -1));
        VRegId Uc = B.load(U, I);
        VRegId Up1 = B.load(U, B.addI(I, 1));
        VRegId Num =
            B.fmul(Gn, B.fabs(B.fadd(B.fsub(Up1, B.fadd(Uc, Uc)), Um1)));
        VRegId Den = B.fadd(
            B.fadd(B.fmul(B.fabs(Up1), Wgt), B.fmul(B.fabs(Uc), Amp)),
            B.fadd(B.fmul(B.fabs(Um1), Wgt), Flr));
        VRegId Sense = B.fmul(B.fdiv(Num, Den), Cfl);
        VRegId Sharp = B.fReg("sharp");
        auto Lim = B.ifElseCmp(CmpKind::GT, Sense, Rf, "sensor.lim");
        B.fmul(B.fmul(E2, Sense), Amp, Sharp);
        B.elseBranch(Lim);
        B.fadd(B.fmul(E2, Sense), B.fmul(B.fmul(E4, Uc), Vis), Sharp);
        B.endIf(Lim);
        B.store(D, I, B.fadd(B.fmul(Sharp, Dmp), B.fmul(PrevSense, Sc)));
        B.fmul(Sense, Dmp, PrevSense);
      }
      B.endDo(L1);

      // Nest 2: dissipative flux with monotonicity branch and carried
      // jump recurrence.
      VRegId PrevJump = B.fReg("prevjump");
      B.movF(0.0, PrevJump);
      auto L2 = B.forLoop("flux", I, 2, Nm2);
      {
        VRegId Di = B.load(D, I);
        VRegId Dm = B.load(D, B.addI(I, -1));
        VRegId Qi = B.load(Q, I);
        VRegId Qm = B.load(Q, B.addI(I, -1));
        VRegId Sigma = B.fmul(Cfl, B.fadd(B.fmul(Di, Wgt), Dm));
        VRegId Jump = B.fmul(B.fsub(Qi, Qm), Gn);
        VRegId Fl = B.fReg("fl");
        auto Mono = B.ifElseCmp(CmpKind::GT, B.fmul(Jump, PrevJump),
                                Flr, "flux.mono");
        B.fmul(B.fmul(Sigma, Jump), Mix, Fl);
        B.elseBranch(Mono);
        B.fmul(B.fmul(Gn, Rf), B.fabs(Jump), Fl);
        B.endIf(Mono);
        B.store(E, I, B.fsub(B.fmul(Fl, Amp), B.fmul(Sc, Qi)));
        B.fadd(B.fmul(Jump, Dmp), B.fmul(PrevJump, E4), PrevJump);
      }
      B.endDo(L2);

      // Nest 3: apply with damping and a floor branch.
      auto L3 = B.forLoop("apply", I, 2, Nm2);
      {
        VRegId Ei = B.load(E, I);
        VRegId Ep = B.load(E, B.addI(I, 1));
        VRegId Ui = B.load(U, I);
        VRegId Upd = B.fmul(Dmp, B.fmul(B.fsub(Ep, Ei), Rf));
        Upd = B.fadd(B.fmul(Mix, Upd), B.fmul(Vis, Ui));
        VRegId Out = B.fReg("out");
        auto Floor =
            B.ifElseCmp(CmpKind::GT, B.fabs(Upd), Flr, "apply.floor");
        B.fadd(Ui, B.fmul(Upd, Cfl), Out);
        B.elseBranch(Floor);
        B.fsub(Ui, B.fmul(E2, B.fabs(Ei)), Out);
        B.endIf(Floor);
        B.store(U, I, B.fadd(B.fmul(Out, Wgt), B.fmul(Ui, E4)));
      }
      B.endDo(L3);
    }
    B.endDo(SW);
  }
  B.endDo(TS);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// INIT — data initialization for the whole program: a long series of
// assignment statements and simply nested loops. Big object code, a
// simple interference graph, low spill costs (the table's 7% row).
//===--------------------------------------------------------------------===//

Function &ra::buildINIT(Module &M) {
  uint32_t U = M.newArray("u", NX, RegClass::Float);
  uint32_t R = M.newArray("r", NX, RegClass::Float);
  uint32_t W = M.newArray("w", NX, RegClass::Float);
  uint32_t P = M.newArray("p", 64, RegClass::Float);
  uint32_t Tz = M.newArray("t", NX, RegClass::Float);
  Function &F = M.newFunction("INIT");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NX, "nx");
  VRegId Scale = B.constF(1.0 / NX, "scale");

  // A long series of parameter assignments computed as a rolling
  // window of recent values: sustained moderate pressure over a large
  // stretch of straight-line code, but every range is cheap to spill
  // (depth zero) — the paper's INIT profile: many spills, low cost,
  // little difference between the heuristics.
  {
    constexpr unsigned WindowSize = 12;
    std::vector<VRegId> Window;
    for (unsigned W = 0; W < WindowSize; ++W)
      Window.push_back(B.constF(0.3 + 0.05 * W));
    for (int64_t K = 0; K < 56; ++K) {
      VRegId V = B.fadd(B.fmul(Window[K % WindowSize],
                               B.constF(0.9 + 0.001 * double(K % 13))),
                        Window[(K + 5) % WindowSize]);
      if (K % 6 == 3)
        V = B.fabs(B.fsub(V, Window[(K + 9) % WindowSize]));
      V = B.fmul(V, B.constF(0.5));
      B.store(P, B.constI(K % 64), V);
      Window[K % WindowSize] = V;
    }
  }

  // Simply nested initialization loops.
  VRegId I = B.iReg("i");
  struct ProfileSpec {
    uint32_t Array;
    double A, Bc, Cc;
  };
  const ProfileSpec Profiles[] = {
      {U, 1.0, 0.5, 0.0},  {R, 0.25, -0.1, 1.0}, {W, 2.0, 0.0, 0.3},
      {Tz, 0.1, 0.9, 0.2},
  };
  for (const ProfileSpec &PS : Profiles) {
    auto L = B.forLoop("fill", I, 0, N);
    VRegId X = B.fmul(B.itof(I), Scale);
    VRegId V = B.fmul(B.constF(PS.A), X);
    V = B.fadd(V, B.constF(PS.Bc));
    V = B.fadd(V, B.fmul(B.constF(PS.Cc), B.fmul(X, X)));
    B.store(PS.Array, I, V);
    B.endDo(L);
  }

  // Derived fields, one simple loop each.
  auto L5 = B.forLoop("derive.w", I, 0, N);
  B.store(W, I, B.fmul(B.load(U, I), B.load(R, I)));
  B.endDo(L5);
  auto L6 = B.forLoop("derive.t", I, 0, N);
  B.store(Tz, I, B.fadd(B.load(Tz, I), B.fmul(B.load(W, I),
                                              B.constF(0.05))));
  B.endDo(L6);

  B.ret();
  return F;
}
