//===- workloads/Svd.cpp - the paper's motivating SVD routine -------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A reconstruction of the singular value decomposition routine from
// Forsythe, Malcolm & Moler that motivated the paper (Section 1.2,
// Figure 1): initialization code, a small doubly-nested array copy, and
// three large, complex loop nests, with about a dozen long live ranges
// (loop limits, tolerances, accumulators, unit constants) extending
// from the initialization through the copy loop and into the nests.
// The numerics follow the Householder-bidiagonalization /
// rotation-sweep shape of the original but are simplified to a
// deterministic, trap-free computation; the register-pressure structure
// is what matters for the reproduction.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/KernelBuilder.h"

using namespace ra;

namespace {
constexpr int64_t Mm = 24;  ///< rows
constexpr int64_t Nn = 12;  ///< columns
constexpr int64_t Ld = Mm;  ///< leading dimension
} // namespace

Function &ra::buildSVD(Module &M) {
  uint32_t A = M.newArray("a", Ld * Nn, RegClass::Float);
  uint32_t U = M.newArray("u", Ld * Nn, RegClass::Float);
  uint32_t W = M.newArray("w", Nn, RegClass::Float);
  uint32_t Rv = M.newArray("rv", Nn, RegClass::Float);
  uint32_t Out = M.newArray("out", 1, RegClass::Float);
  Function &F = M.newFunction("SVD");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  //===----------------------------------------------------------------===//
  // Initialization: the long live ranges. All of these stay live across
  // the copy loop and into the three big nests.
  //===----------------------------------------------------------------===//
  VRegId IZero = B.constI(0, "izero");
  VRegId Mr = B.constI(Mm, "m");
  VRegId Nr = B.constI(Nn, "n");
  VRegId Nm1 = B.addI(Nr, -1, B.iReg("nm1"));
  VRegId ItMax = B.constI(3, "itmax");
  // Exactly six entry-defined floating scalars stay live through the
  // copy loop and all three nests (more would form a clique larger
  // than the FP file and drown the story; the rest of the "dozen" are
  // staged per nest below).
  VRegId One = B.constF(1.0, "one");
  VRegId Half = B.constF(0.5, "half");
  VRegId Eps = B.constF(1.5e-8, "eps");
  VRegId Tol = B.constF(1.0e-20, "tol");
  VRegId Wgt = B.constF(1.02, "wgt");
  VRegId Dmp = B.constF(0.97, "dmp");

  VRegId I = B.iReg("i"), J = B.iReg("j"), K = B.iReg("k");
  VRegId L = B.iReg("l"), It = B.iReg("it");

  //===----------------------------------------------------------------===//
  // The small doubly-nested array copy (Figure 1): u = a, two elements
  // per trip. The staggered temporaries have degree equal to the FP
  // file yet their neighborhoods stay colorable — the Figure 3 shape
  // that tempts Chaitin's simplification into pointless spills.
  //===----------------------------------------------------------------===//
  auto CopyJ = B.forLoop("copy.j", J, 0, Nr);
  auto CopyI = B.forLoop("copy.i", I, 0, Mr, 2);
  {
    VRegId Ip1 = B.addI(I, 1);
    VRegId Ta = B.load2D(A, I, J, Ld);
    VRegId Tb = B.load2D(A, Ip1, J, Ld);
    VRegId Ua = B.fmul(Ta, One);
    VRegId Ub = B.fmul(Tb, One);
    B.store2D(U, I, J, Ld, Ua);
    B.store2D(U, Ip1, J, Ld, Ub);
  }
  B.endDo(CopyI);
  B.endDo(CopyJ);

  //===----------------------------------------------------------------===//
  // Nest 1: Householder-style column reduction. ANorm and Zero1 join
  // the long ranges here (staggered lifetimes, not one big clique).
  //===----------------------------------------------------------------===//
  VRegId ANorm = B.fReg("anorm");
  B.movF(0.0, ANorm);
  VRegId Zero1 = B.fReg("zero1");
  B.movF(0.0, Zero1);
  auto N1K = B.forLoop("house.k", K, 0, Nr);
  {
    // Column magnitude: scale = sum |u(i,k)|, i = k..m-1.
    VRegId Scale = B.fReg("scale");
    B.movF(0.0, Scale);
    auto SL = B.forLoopReg("house.scale", I, K, Mr);
    B.fadd(Scale, B.fabs(B.load2D(U, I, K, Ld)), Scale);
    B.endDo(SL);

    auto NonZero = B.ifElseCmp(CmpKind::GT, Scale, Tol, "house.live");
    {
      // f = sum u(i,k)^2; g = -sqrt(f); h = f - u(k,k)*g.
      VRegId Fv = B.fReg("f");
      B.movF(0.0, Fv);
      auto QL = B.forLoopReg("house.sq", I, K, Mr);
      VRegId T = B.load2D(U, I, K, Ld);
      B.fadd(Fv, B.fmul(T, T), Fv);
      B.endDo(QL);
      VRegId G = B.fneg(B.fsqrt(Fv), B.fReg("g"));
      VRegId Ukk = B.load2D(U, K, K, Ld);
      VRegId H = B.fsub(Fv, B.fmul(Ukk, G), B.fReg("h"));
      B.store(W, K, G);
      B.store(Rv, K, B.fmul(G, Eps));

      // anorm = max(anorm, |g| + scale*half).
      VRegId Cand = B.fadd(B.fabs(G), B.fmul(Scale, Half));
      auto MaxIf = B.ifCmp(CmpKind::GT, Cand, ANorm, "house.norm");
      B.copy(Cand, ANorm);
      B.endIf(MaxIf);

      // Apply the reflector to the trailing columns.
      VRegId Kp1 = B.addI(K, 1);
      auto TJ = B.forLoopReg("house.j", J, Kp1, Nr);
      {
        VRegId S = B.fReg("s");
        B.movF(0.0, S);
        auto DotL = B.forLoopReg("house.dot", I, K, Mr);
        B.fadd(S, B.fmul(B.load2D(U, I, K, Ld), B.load2D(U, I, J, Ld)), S);
        B.endDo(DotL);
        VRegId Fac = B.fdiv(S, H);
        auto UpdL = B.forLoopReg("house.upd", I, K, Mr);
        VRegId Unew = B.fadd(B.fmul(B.load2D(U, I, J, Ld), Dmp),
                             B.fmul(B.fmul(Fac, Wgt),
                                    B.load2D(U, I, K, Ld)));
        B.store2D(U, I, J, Ld, B.fadd(Unew, B.fmul(Eps, Half)));
        B.endDo(UpdL);
      }
      B.endDo(TJ);
    }
    B.elseBranch(NonZero);
    {
      B.store(W, K, Zero1);
      B.store(Rv, K, Zero1);
    }
    B.endIf(NonZero);
  }
  B.endDo(N1K);

  //===----------------------------------------------------------------===//
  // Nest 2: accumulation of the transformations (descending columns).
  // Two and Zero2 are this nest's stage scalars.
  //===----------------------------------------------------------------===//
  VRegId Two = B.fadd(One, One, B.fReg("two"));
  VRegId Zero2 = B.fReg("zero2");
  B.movF(0.0, Zero2);
  B.copy(Nm1, K);
  auto N2K = B.downLoopFrom("accum.k", K, IZero);
  {
    VRegId G2 = B.load(W, K);
    auto Live = B.ifElseCmp(CmpKind::NE, G2, Zero2, "accum.live");
    {
      VRegId Kp1 = B.addI(K, 1);
      auto AJ = B.forLoopReg("accum.j", J, Kp1, Nr);
      {
        VRegId S = B.fReg("s2");
        B.movF(0.0, S);
        auto DotL = B.forLoopReg("accum.dot", I, K, Mr);
        B.fadd(S, B.fmul(B.load2D(U, I, K, Ld), B.load2D(U, I, J, Ld)), S);
        B.endDo(DotL);
        VRegId Fac = B.fdiv(B.fmul(S, Two), B.fadd(B.fabs(G2), Tol));
        auto UpdL = B.forLoopReg("accum.upd", I, K, Mr);
        VRegId Unew = B.fsub(B.fmul(B.load2D(U, I, J, Ld), Wgt),
                             B.fmul(B.fmul(Fac, Dmp),
                                    B.load2D(U, I, K, Ld)));
        B.store2D(U, I, J, Ld, Unew);
        B.endDo(UpdL);
      }
      B.endDo(AJ);
      VRegId Inv = B.fdiv(One, B.fadd(B.fabs(G2), Tol));
      auto ScL = B.forLoopReg("accum.scale", I, K, Mr);
      B.store2D(U, I, K, Ld, B.fmul(B.load2D(U, I, K, Ld), Inv));
      B.endDo(ScL);
    }
    B.elseBranch(Live);
    {
      auto ZL = B.forLoopReg("accum.zero", I, K, Mr);
      B.store2D(U, I, K, Ld, Zero2);
      B.endDo(ZL);
    }
    B.endIf(Live);
    VRegId Diag = B.fadd(B.load2D(U, K, K, Ld), One);
    B.store2D(U, K, K, Ld, Diag);
  }
  B.endDo(N2K);

  //===----------------------------------------------------------------===//
  // Nest 3: rotation sweeps (QR-iteration shape, bounded trip count).
  //===----------------------------------------------------------------===//
  auto Sweep = B.forLoop("qr.it", It, 0, ItMax);
  {
    // Per-sweep stage scalar (depends on the sweep counter, so it
    // cannot be hoisted into the entry block).
    VRegId RotA = B.fadd(B.fmul(B.itof(It), Eps), One);
    auto SwL = B.forLoop("qr.l", L, 0, Nr);
    {
      VRegId X = B.fmul(B.load(W, L), RotA);
      VRegId Yv = B.fmul(B.load(Rv, L), Dmp);
      VRegId H3 =
          B.fsqrt(B.fadd(B.fadd(B.fmul(X, X), B.fmul(Yv, Yv)), Eps));
      VRegId C = B.fdiv(X, H3);
      VRegId S = B.fdiv(Yv, H3);
      B.store(W, L, B.fmul(H3, Wgt));

      // Rotate columns l and l2 = min(l+1, n-1).
      VRegId L2 = B.iReg("l2");
      auto LastCol = B.ifElseCmp(CmpKind::LT, L, Nm1, "qr.l2");
      B.addI(L, 1, L2);
      B.elseBranch(LastCol);
      B.copy(L, L2);
      B.endIf(LastCol);

      auto RotL = B.forLoop("qr.rot", I, 0, Mr);
      {
        VRegId T1 = B.load2D(U, I, L, Ld);
        VRegId T2 = B.load2D(U, I, L2, Ld);
        VRegId NewL = B.fadd(B.fmul(C, T1), B.fmul(S, T2));
        VRegId NewL2 = B.fsub(B.fmul(C, T2), B.fmul(S, T1));
        B.store2D(U, I, L, Ld, NewL);
        B.store2D(U, I, L2, Ld, NewL2);
      }
      B.endDo(RotL);

      VRegId RvNew = B.fmul(B.fmul(S, Yv), Half);
      B.store(Rv, L, RvNew);
    }
    B.endDo(SwL);
  }
  B.endDo(Sweep);

  //===----------------------------------------------------------------===//
  // Result: fold the singular values so everything is observable.
  //===----------------------------------------------------------------===//
  VRegId Sum = B.fReg("sum");
  B.movF(0.0, Sum);
  auto FL = B.forLoop("final", K, 0, Nr);
  B.fadd(Sum, B.fabs(B.load(W, K)), Sum);
  B.endDo(FL);
  B.fadd(Sum, B.fmul(ANorm, Eps), Sum);
  B.store(Out, IZero, Sum);
  B.ret(Sum);
  return F;
}
