//===- workloads/Linpack.cpp - LINPACK kernel reconstructions -------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// IR reconstructions of the LINPACK routines from the paper's Figure 5:
// EPSLON, DSCAL, IDAMAX, DDOT, DAXPY (with the reference code's unrolled
// cleanup structure), MATGEN, DGEFA, DGESL (BLAS loops inlined, since
// the IR has no calls) and the 16x-unrolled DMXPY that Section 3.1
// singles out. Everything is 0-based; FORTRAN column-major indexing is
// kept via index2D.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/KernelBuilder.h"

using namespace ra;

namespace {

/// Problem sizes: large enough to exercise the loop nests, small enough
/// that simulated whole-program runs stay fast.
constexpr int64_t VecN = 200;  ///< vector length for the BLAS-1 kernels
constexpr int64_t MatN = 40;   ///< matrix order for DGEFA/DGESL/MATGEN
constexpr int64_t Lda = MatN;  ///< leading dimension
constexpr int64_t N1 = 40, N2 = 40; ///< DMXPY shape

} // namespace

//===--------------------------------------------------------------------===//
// EPSLON — machine epsilon probe.
//===--------------------------------------------------------------------===//

Function &ra::buildEPSLON(Module &M) {
  uint32_t X = M.newArray("x", 1, RegClass::Float);
  uint32_t Out = M.newArray("out", 1, RegClass::Float);
  Function &F = M.newFunction("EPSLON");
  KernelBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  B.setInsertPoint(Entry);

  VRegId One = B.constF(1.0, "one");
  VRegId FZero = B.constF(0.0, "fzero");
  VRegId A = B.constF(4.0 / 3.0, "a");
  VRegId Eps = B.fReg("eps");
  B.movF(0.0, Eps);

  // 10: b = a - 1; c = b + b + b; eps = |c - 1|; if (eps == 0) goto 10
  uint32_t Loop = B.newBlock("probe");
  uint32_t Done = B.newBlock("done");
  B.jmp(Loop);
  B.setInsertPoint(Loop);
  VRegId BV = B.fsub(A, One);
  VRegId C = B.fadd(BV, BV);
  C = B.fadd(C, BV);
  B.fabs(B.fsub(C, One), Eps);
  B.br(CmpKind::EQ, Eps, FZero, Loop, Done);

  B.setInsertPoint(Done);
  VRegId Xv = B.load(X, B.constI(0, "zero"));
  VRegId Result = B.fmul(Eps, B.fabs(Xv));
  B.store(Out, B.constI(0), Result);
  B.ret(Result);
  return F;
}

//===--------------------------------------------------------------------===//
// DSCAL — dx = da * dx, unrolled by five like the reference code.
//===--------------------------------------------------------------------===//

Function &ra::buildDSCAL(Module &M) {
  uint32_t Dx = M.newArray("dx", VecN, RegClass::Float);
  uint32_t Scal = M.newArray("scal", 1, RegClass::Float);
  Function &F = M.newFunction("DSCAL");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(VecN, "n");
  VRegId Da = B.load(Scal, B.constI(0, "c0"));
  VRegId MRem = B.rem(N, B.constI(5, "c5"));
  VRegId I = B.iReg("i");

  // Cleanup: i in [0, n mod 5).
  auto Clean = B.forLoop("clean", I, 0, MRem);
  B.store(Dx, I, B.fmul(Da, B.load(Dx, I)));
  B.endDo(Clean);

  // Main: five elements per trip.
  auto Main = B.forLoopFrom("main", I, N, 5);
  for (int64_t K = 0; K < 5; ++K) {
    VRegId Idx = K == 0 ? I : B.addI(I, K);
    B.store(Dx, Idx, B.fmul(Da, B.load(Dx, Idx)));
  }
  B.endDo(Main);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// IDAMAX — index of the element with the largest magnitude.
//===--------------------------------------------------------------------===//

Function &ra::buildIDAMAX(Module &M) {
  uint32_t Dx = M.newArray("dx", VecN, RegClass::Float);
  uint32_t IOut = M.newArray("iout", 1, RegClass::Int);
  Function &F = M.newFunction("IDAMAX");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(VecN, "n");
  VRegId Best = B.iReg("best");
  B.movI(0, Best);
  VRegId DMax = B.fabs(B.load(Dx, Best), B.fReg("dmax"));

  VRegId I = B.iReg("i");
  auto Loop = B.forLoop("scan", I, 1, N);
  VRegId T = B.fabs(B.load(Dx, I));
  auto If = B.ifCmp(CmpKind::GT, T, DMax, "newmax");
  B.copy(T, DMax);
  B.copy(I, Best);
  B.endIf(If);
  B.endDo(Loop);

  B.store(IOut, B.constI(0, "c0"), Best);
  B.ret(Best);
  return F;
}

//===--------------------------------------------------------------------===//
// DDOT — dot product, unrolled by five.
//===--------------------------------------------------------------------===//

Function &ra::buildDDOT(Module &M) {
  uint32_t Dx = M.newArray("dx", VecN, RegClass::Float);
  uint32_t Dy = M.newArray("dy", VecN, RegClass::Float);
  uint32_t Out = M.newArray("out", 1, RegClass::Float);
  Function &F = M.newFunction("DDOT");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(VecN, "n");
  VRegId DTemp = B.fReg("dtemp");
  B.movF(0.0, DTemp);
  VRegId MRem = B.rem(N, B.constI(5, "c5"));
  VRegId I = B.iReg("i");

  auto Clean = B.forLoop("clean", I, 0, MRem);
  B.fadd(DTemp, B.fmul(B.load(Dx, I), B.load(Dy, I)), DTemp);
  B.endDo(Clean);

  auto Main = B.forLoopFrom("main", I, N, 5);
  VRegId Acc = B.fmul(B.load(Dx, I), B.load(Dy, I));
  for (int64_t K = 1; K < 5; ++K) {
    VRegId Idx = B.addI(I, K);
    Acc = B.fadd(Acc, B.fmul(B.load(Dx, Idx), B.load(Dy, Idx)));
  }
  B.fadd(DTemp, Acc, DTemp);
  B.endDo(Main);

  B.store(Out, B.constI(0, "c0"), DTemp);
  B.ret(DTemp);
  return F;
}

//===--------------------------------------------------------------------===//
// DAXPY — dy += da * dx, unrolled by four.
//===--------------------------------------------------------------------===//

Function &ra::buildDAXPY(Module &M) {
  uint32_t Dx = M.newArray("dx", VecN, RegClass::Float);
  uint32_t Dy = M.newArray("dy", VecN, RegClass::Float);
  uint32_t Scal = M.newArray("scal", 1, RegClass::Float);
  Function &F = M.newFunction("DAXPY");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(VecN, "n");
  VRegId Da = B.load(Scal, B.constI(0, "c0"));
  VRegId FZero = B.constF(0.0, "fzero");

  // if (da == 0) return — the reference code's early exit.
  uint32_t EarlyRet = B.newBlock("early.ret");
  uint32_t Work = B.newBlock("work");
  B.br(CmpKind::EQ, Da, FZero, EarlyRet, Work);
  B.setInsertPoint(EarlyRet);
  B.ret();

  B.setInsertPoint(Work);
  VRegId MRem = B.rem(N, B.constI(4, "c4"));
  VRegId I = B.iReg("i");

  auto Clean = B.forLoop("clean", I, 0, MRem);
  B.store(Dy, I, B.fadd(B.load(Dy, I), B.fmul(Da, B.load(Dx, I))));
  B.endDo(Clean);

  auto Main = B.forLoopFrom("main", I, N, 4);
  for (int64_t K = 0; K < 4; ++K) {
    VRegId Idx = K == 0 ? I : B.addI(I, K);
    B.store(Dy, Idx, B.fadd(B.load(Dy, Idx), B.fmul(Da, B.load(Dx, Idx))));
  }
  B.endDo(Main);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// MATGEN — fill the test matrix with the LINPACK driver's generator.
//===--------------------------------------------------------------------===//

Function &ra::buildMATGEN(Module &M) {
  uint32_t A = M.newArray("a", Lda * MatN, RegClass::Float);
  uint32_t Bv = M.newArray("b", MatN, RegClass::Float);
  Function &F = M.newFunction("MATGEN");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(MatN, "n");
  VRegId Init = B.constI(1325, "init");
  VRegId C3125 = B.constI(3125, "c3125");
  VRegId C65536 = B.constI(65536, "c65536");
  VRegId Scale = B.constF(1.0 / 16384.0, "scale");

  VRegId J = B.iReg("j"), I = B.iReg("i");
  auto Jl = B.forLoop("cols", J, 0, N);
  auto Il = B.forLoop("rows", I, 0, N);
  B.rem(B.mul(C3125, Init), C65536, Init);
  VRegId Val = B.fmul(B.itof(B.addI(Init, -32768)), Scale);
  B.store2D(A, I, J, Lda, Val);
  B.endDo(Il);
  B.endDo(Jl);

  // b[i] = sum of row i.
  auto Il2 = B.forLoop("brows", I, 0, N);
  VRegId S = B.fReg("s");
  B.movF(0.0, S);
  auto Jl2 = B.forLoop("bcols", J, 0, N);
  B.fadd(S, B.load2D(A, I, J, Lda), S);
  B.endDo(Jl2);
  B.store(Bv, I, S);
  B.endDo(Il2);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// DGEFA — LU factorization with partial pivoting, BLAS loops inlined.
//===--------------------------------------------------------------------===//

Function &ra::buildDGEFA(Module &M) {
  uint32_t A = M.newArray("a", Lda * MatN, RegClass::Float);
  uint32_t Ipvt = M.newArray("ipvt", MatN, RegClass::Int);
  uint32_t Info = M.newArray("info", 1, RegClass::Int);
  Function &F = M.newFunction("DGEFA");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(MatN, "n");
  VRegId Nm1 = B.addI(N, -1);
  VRegId FZero = B.constF(0.0, "fzero");
  VRegId NegOne = B.constF(-1.0, "negone");
  VRegId IZero = B.constI(0, "izero");
  B.store(Info, IZero, IZero);

  VRegId K = B.iReg("k");
  auto Kl = B.forLoop("elim", K, 0, Nm1);
  VRegId Kp1 = B.addI(K, 1);

  // Inlined IDAMAX over column k, rows k..n-1.
  VRegId L = B.iReg("l");
  B.copy(K, L);
  VRegId DMax = B.fabs(B.load2D(A, K, K, Lda), B.fReg("dmax"));
  VRegId I = B.iReg("i");
  auto Pivot = B.forLoopReg("pivot", I, Kp1, N);
  {
    VRegId T = B.fabs(B.load2D(A, I, K, Lda));
    auto If = B.ifCmp(CmpKind::GT, T, DMax, "newpiv");
    B.copy(T, DMax);
    B.copy(I, L);
    B.endIf(If);
  }
  B.endDo(Pivot);
  B.store(Ipvt, K, L);

  VRegId PivVal = B.load2D(A, L, K, Lda);
  auto NonZero = B.ifElseCmp(CmpKind::NE, PivVal, FZero, "nonzero");
  {
    // Swap the pivot element into place if needed.
    auto Swap = B.ifCmp(CmpKind::NE, L, K, "swap.piv");
    {
      VRegId Akk = B.load2D(A, K, K, Lda);
      B.store2D(A, L, K, Lda, Akk);
      B.store2D(A, K, K, Lda, PivVal);
    }
    B.endIf(Swap);

    // Inlined DSCAL: scale the subdiagonal of column k by -1/pivot.
    VRegId T = B.fdiv(NegOne, B.load2D(A, K, K, Lda));
    auto Scale = B.forLoopReg("scale", I, Kp1, N);
    B.store2D(A, I, K, Lda, B.fmul(T, B.load2D(A, I, K, Lda)));
    B.endDo(Scale);

    // Column updates: inlined DAXPY per trailing column.
    VRegId J = B.iReg("j");
    auto Jl = B.forLoopReg("update", J, Kp1, N);
    {
      VRegId Tj = B.load2D(A, L, J, Lda);
      auto Swap2 = B.ifCmp(CmpKind::NE, L, K, "swap.col");
      {
        B.store2D(A, L, J, Lda, B.load2D(A, K, J, Lda));
        B.store2D(A, K, J, Lda, Tj);
      }
      B.endIf(Swap2);
      auto Axpy = B.forLoopReg("axpy", I, Kp1, N);
      VRegId Upd = B.fadd(B.load2D(A, I, J, Lda),
                          B.fmul(Tj, B.load2D(A, I, K, Lda)));
      B.store2D(A, I, J, Lda, Upd);
      B.endDo(Axpy);
    }
    B.endDo(Jl);
  }
  B.elseBranch(NonZero);
  {
    B.store(Info, IZero, Kp1); // zero pivot: record k+1, keep going
  }
  B.endIf(NonZero);
  B.endDo(Kl);

  B.store(Ipvt, Nm1, Nm1);
  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// DGESL — solve A*x = b using DGEFA's factors. Both of the reference
// code's paths are present (job = 0 solves A*x = b with axpy loops;
// job != 0 solves trans(A)*x = b with dot-product loops), which is why
// the paper's DGESL is twice DGEFA's live-range count.
//===--------------------------------------------------------------------===//

Function &ra::buildDGESL(Module &M) {
  uint32_t A = M.newArray("a", Lda * MatN, RegClass::Float);
  uint32_t Bv = M.newArray("b", MatN, RegClass::Float);
  uint32_t Ipvt = M.newArray("ipvt", MatN, RegClass::Int);
  uint32_t Job = M.newArray("job", 1, RegClass::Int);
  Function &F = M.newFunction("DGESL");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(MatN, "n");
  VRegId Nm1 = B.addI(N, -1);
  VRegId IZero = B.constI(0, "izero");
  VRegId K = B.iReg("k"), I = B.iReg("i");

  VRegId JobV = B.load(Job, IZero);
  uint32_t Direct = B.newBlock("direct");
  uint32_t Transpose = B.newBlock("transpose");
  uint32_t Done = B.newBlock("done");
  B.br(CmpKind::EQ, JobV, IZero, Direct, Transpose);

  //===------------------------------------------------------------===//
  // job == 0: solve A*x = b.
  //===------------------------------------------------------------===//
  B.setInsertPoint(Direct);
  // Forward elimination: b = L^-1 * P * b.
  auto Fwd = B.forLoop("fwd", K, 0, Nm1);
  {
    VRegId L = B.load(Ipvt, K);
    VRegId T = B.load(Bv, L);
    auto Swap = B.ifCmp(CmpKind::NE, L, K, "swap");
    {
      B.store(Bv, L, B.load(Bv, K));
      B.store(Bv, K, T);
    }
    B.endIf(Swap);
    VRegId Kp1 = B.addI(K, 1);
    auto Axpy = B.forLoopReg("axpy", I, Kp1, N);
    VRegId Upd =
        B.fadd(B.load(Bv, I), B.fmul(T, B.load2D(A, I, K, Lda)));
    B.store(Bv, I, Upd);
    B.endDo(Axpy);
  }
  B.endDo(Fwd);

  // Back substitution: b = U^-1 * b.
  B.copy(Nm1, K);
  auto Back = B.downLoopFrom("back", K, IZero);
  {
    VRegId Bk = B.fdiv(B.load(Bv, K), B.load2D(A, K, K, Lda));
    B.store(Bv, K, Bk);
    VRegId T = B.fneg(Bk);
    auto Axpy = B.forLoop("baxpy", I, 0, K);
    VRegId Upd =
        B.fadd(B.load(Bv, I), B.fmul(T, B.load2D(A, I, K, Lda)));
    B.store(Bv, I, Upd);
    B.endDo(Axpy);
  }
  B.endDo(Back);
  B.jmp(Done);

  //===------------------------------------------------------------===//
  // job != 0: solve trans(A)*x = b with inlined DDOT loops.
  //===------------------------------------------------------------===//
  B.setInsertPoint(Transpose);
  auto TFwd = B.forLoop("tfwd", K, 0, N);
  {
    VRegId T = B.fReg("tdot");
    B.movF(0.0, T);
    auto Dot = B.forLoop("tdot.i", I, 0, K);
    B.fadd(T, B.fmul(B.load2D(A, I, K, Lda), B.load(Bv, I)), T);
    B.endDo(Dot);
    VRegId Bk = B.fdiv(B.fsub(B.load(Bv, K), T), B.load2D(A, K, K, Lda));
    B.store(Bv, K, Bk);
  }
  B.endDo(TFwd);

  B.copy(B.addI(Nm1, -1), K);
  auto TBack = B.downLoopFrom("tback", K, IZero);
  {
    VRegId Kp1 = B.addI(K, 1);
    VRegId T = B.fReg("tdot2");
    B.movF(0.0, T);
    auto Dot = B.forLoopReg("tback.i", I, Kp1, N);
    B.fadd(T, B.fmul(B.load2D(A, I, K, Lda), B.load(Bv, I)), T);
    B.endDo(Dot);
    B.store(Bv, K, B.fadd(B.load(Bv, K), T));
    VRegId L = B.load(Ipvt, K);
    auto Swap = B.ifCmp(CmpKind::NE, L, K, "tswap");
    {
      VRegId Tl = B.load(Bv, L);
      B.store(Bv, L, B.load(Bv, K));
      B.store(Bv, K, Tl);
    }
    B.endIf(Swap);
  }
  B.endDo(TBack);
  B.jmp(Done);

  B.setInsertPoint(Done);
  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// DMXPY — y += M * x with the reference code's 16-way unrolled column
// loop (Section 3.1's "how one reasonable optimization can reduce the
// effectiveness of later optimizations").
//===--------------------------------------------------------------------===//

Function &ra::buildDMXPY(Module &M) {
  uint32_t Y = M.newArray("y", N1, RegClass::Float);
  uint32_t X = M.newArray("x", N2, RegClass::Float);
  uint32_t Mat = M.newArray("m", Lda * N2, RegClass::Float);
  Function &F = M.newFunction("DMXPY");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N1R = B.constI(N1, "n1");
  VRegId N2R = B.constI(N2, "n2");
  VRegId I = B.iReg("i");
  VRegId J = B.iReg("j");

  // Emits one cleanup section: if (n2 mod Width*2 >= Width) handle the
  // Width columns ending at (n2 mod Width*2) - 1 in a single i-loop.
  auto CleanupSection = [&](int64_t Width, const char *Name) {
    VRegId Rem = B.rem(N2R, B.constI(Width * 2));
    VRegId WidthR = B.constI(Width);
    auto If = B.ifCmp(CmpKind::GE, Rem, WidthR, Name);
    {
      // Hoisted x values and column bases for the Width columns.
      std::vector<VRegId> Xs(Width), Bases(Width);
      for (int64_t C = 0; C < Width; ++C) {
        VRegId Col = B.addI(Rem, C - Width);
        Xs[C] = B.load(X, Col);
        Bases[C] = B.mulI(Col, Lda);
      }
      auto Il = B.forLoop(std::string(Name) + ".rows", I, 0, N1R);
      VRegId Acc = B.load(Y, I);
      for (int64_t C = 0; C < Width; ++C)
        Acc = B.fadd(Acc, B.fmul(Xs[C], B.load(Mat, B.add(Bases[C], I))));
      B.store(Y, I, Acc);
      B.endDo(Il);
    }
    B.endIf(If);
  };

  CleanupSection(1, "odd");
  CleanupSection(2, "mod2");
  CleanupSection(4, "mod4");
  CleanupSection(8, "mod8");

  // Main loop: columns j-15..j, sixteen at a trip.
  VRegId JMin = B.rem(N2R, B.constI(16, "c16"));
  B.addI(JMin, 15, J);
  auto Main = B.forLoopFrom("main", J, N2R, 16);
  {
    std::vector<VRegId> Xs(16), Bases(16);
    for (int64_t C = 0; C < 16; ++C) {
      VRegId Col = B.addI(J, C - 15);
      Xs[C] = B.load(X, Col);
      Bases[C] = B.mulI(Col, Lda);
    }
    auto Il = B.forLoop("main.rows", I, 0, N1R);
    VRegId Acc = B.load(Y, I);
    for (int64_t C = 0; C < 16; ++C)
      Acc = B.fadd(Acc, B.fmul(Xs[C], B.load(Mat, B.add(Bases[C], I))));
    B.store(Y, I, Acc);
    B.endDo(Il);
  }
  B.endDo(Main);

  B.ret();
  return F;
}
