//===- workloads/Workloads.h - Benchmark routine registry ------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of every routine in the paper's Figure 5 evaluation —
/// SVD, the LINPACK kernels, SIMPLEX, the 1-D EULER shock code, and the
/// CEDETA optimization routines — plus Wirth's non-recursive quicksort
/// from the Figure 6 study. Each entry builds an executable IR
/// reconstruction of the routine's loop and live-range structure and
/// knows how to initialize its input memory, so the simulator can run
/// it before and after allocation.
///
//===----------------------------------------------------------------------===//

#ifndef RA_WORKLOADS_WORKLOADS_H
#define RA_WORKLOADS_WORKLOADS_H

#include "ir/Module.h"
#include "sim/Simulator.h"

#include <functional>
#include <string>
#include <vector>

namespace ra {

/// One benchmark routine.
struct Workload {
  std::string Program; ///< "SVD", "LINPACK", "SIMPLEX", "EULER", "CEDETA"
  std::string Routine; ///< e.g. "DAXPY"

  /// Builds the routine (arrays + one function) into a fresh module and
  /// returns the function.
  std::function<Function &(Module &)> Build;

  /// Fills \p Mem with the routine's input data.
  std::function<void(const Module &, MemoryImage &)> Init;

  /// Whether whole-program dynamic timing includes this routine (the
  /// paper lists CEDETA's dynamic improvement as "n/a").
  bool Timed = true;
};

/// All Figure 5 routines, grouped by program in table order.
const std::vector<Workload> &allWorkloads();

/// Finds a routine by name ("SVD", "DAXPY", ...); nullptr when absent.
const Workload *findWorkload(const std::string &Routine);

/// Distinct program names in table order.
std::vector<std::string> workloadPrograms();

//===------------------------------------------------------------------===//
// Individual builders (used directly by focused tests/examples).
//===------------------------------------------------------------------===//

// SVD — the paper's motivating routine (Figure 1 structure).
Function &buildSVD(Module &M);

// LINPACK.
Function &buildEPSLON(Module &M);
Function &buildDSCAL(Module &M);
Function &buildIDAMAX(Module &M);
Function &buildDDOT(Module &M);
Function &buildDAXPY(Module &M);
Function &buildMATGEN(Module &M);
Function &buildDGEFA(Module &M);
Function &buildDGESL(Module &M);
Function &buildDMXPY(Module &M); ///< the 16x-unrolled matrix-vector kernel

// SIMPLEX — parallel direct-search optimization.
Function &buildVALUE(Module &M);
Function &buildCONVERGE(Module &M);
Function &buildCONSTRUCT(Module &M);
Function &buildSIMPLEX(Module &M);

// EULER — 1-D shock wave propagation.
Function &buildSHOCK(Module &M);
Function &buildDERIV(Module &M);
Function &buildCODE(Module &M);
Function &buildCHEB(Module &M);
Function &buildFINDIF(Module &M);
Function &buildFFTB(Module &M);
Function &buildBNDRY(Module &M);
Function &buildINPUT(Module &M);
Function &buildDIFFR(Module &M);
Function &buildDISSIP(Module &M);
Function &buildINIT(Module &M);

// CEDETA — equality constrained minimization.
Function &buildDQRDC(Module &M);
Function &buildGRADNT(Module &M);
Function &buildHSSIAN(Module &M);

// Figure 6: Wirth's non-recursive quicksort over @data of \p N ints.
Function &buildQuicksort(Module &M, uint32_t N = 200000);

/// Deterministically fills quicksort's @data with \p N pseudo-random
/// values.
void initQuicksortMemory(const Module &M, MemoryImage &Mem);

} // namespace ra

#endif // RA_WORKLOADS_WORKLOADS_H
