//===- workloads/MegaKernel.h - Generated giant-function family *- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generated family of "mega-kernels": single functions whose
/// interference graphs reach tens of thousands of live ranges. The
/// paper's Figure 5 routines top out at a few hundred ranges, which is
/// too small for any intra-graph parallelism to show; these shapes make
/// the parallel Select phase (ParallelSelect.h) measurable while
/// staying verifier-clean, terminating, and executable — every kernel
/// folds its values into a store + return, so the simulator can compare
/// runs before and after allocation exactly.
///
/// Three shapes, each stressing a different Select profile:
///  * pressure ramp — one straight-line block where a ring of Width
///    values is repeatedly combined and replaced: ~Ranges short
///    overlapping ranges of near-uniform degree ~2*Width.
///  * wide unrolled loop — Lanes accumulators live across the back
///    edge, a Body-long unrolled chain of temporaries inside: a few
///    very-high-degree nodes over a sea of small ones, with loop-
///    weighted spill costs.
///  * random stress — RandomProgram scaled up (hundreds of regions,
///    large mutable-variable pools): irregular CSR shapes with
///    function-spanning high-degree pool variables.
///
/// Arithmetic stays bounded by construction (every combine is averaged
/// back into [min, max] of its inputs), so no kernel ever produces
/// inf/NaN and differential simulation stays exact.
///
//===----------------------------------------------------------------------===//

#ifndef RA_WORKLOADS_MEGAKERNEL_H
#define RA_WORKLOADS_MEGAKERNEL_H

#include "ir/Module.h"
#include "regalloc/BuildGraph.h"
#include "support/Status.h"

#include <functional>
#include <string>
#include <vector>

namespace ra {

/// One generated mega-kernel shape.
struct MegaKernel {
  std::string Name; ///< "mega.ramp.10k" — unique within the family.
  std::string Kind; ///< "ramp", "wide", "random".
  /// Approximate live ranges the kernel produces — the N that sizes the
  /// O(N^2)-bit triangular interference matrix. Capacity guards
  /// (checkMegaKernelCapacity) use it to refuse a kernel *before*
  /// building anything.
  uint64_t ApproxRanges = 0;
  /// Builds the kernel (arrays + one function) into a fresh module.
  std::function<Function &(Module &)> Build;
};

/// Bench-scale family: ≥10k live ranges per member (the largest ~50k —
/// the triangular interference bit matrix is O(N^2) bits, so 50k nodes
/// costs ~156 MB while 100k would cost ~625 MB).
const std::vector<MegaKernel> &megaKernelFamily();

/// Fast variants of the same three shapes (a few thousand ranges) for
/// unit/determinism tests that run in milliseconds.
const std::vector<MegaKernel> &megaKernelTestFamily();

/// Explicit capacity guard: Ok when \p MK's triangular interference
/// matrix (estimated from ApproxRanges) fits \p MemoryBudgetBytes, or a
/// MemoryBudgetExceeded error naming the kernel, the estimate, and the
/// budget — with the remedy (raise the budget or drop the kernel) in
/// the message — instead of silently attempting the allocation.
/// \p MemoryBudgetBytes == 0 means unbounded (always Ok).
Status checkMegaKernelCapacity(const MegaKernel &MK,
                               uint64_t MemoryBudgetBytes);

/// Straight-line register-pressure ramp: ~\p Ranges float live ranges
/// in one block, each live for ~\p Width defs (degree ~2*Width).
Function &buildPressureRamp(Module &M, unsigned Ranges, unsigned Width,
                            const std::string &Name);

/// Wide unrolled loop: \p Lanes accumulators live across the back edge
/// and ~2*\p Body chained temporaries per iteration body.
Function &buildWideUnrolledLoop(Module &M, unsigned Lanes, unsigned Body,
                                const std::string &Name);

/// RandomProgram scaled to \p Regions sequential regions with large
/// variable pools — irregular high-degree CSR stress.
Function &buildRandomStress(Module &M, uint64_t Seed, unsigned Regions,
                            const std::string &Name);

/// Build-phase replica for standalone coloring experiments: renumbers
/// live ranges, computes liveness, builds both class graphs, fills
/// loop-weighted spill costs, and finalizes the CSR layout. No
/// coalescing — callers get exactly the graphs Simplify/Select would
/// see on the first uncoalesced pass.
std::array<ClassGraph, NumRegClasses> buildColoringGraphs(Function &F);

} // namespace ra

#endif // RA_WORKLOADS_MEGAKERNEL_H
