//===- workloads/Workloads.cpp - Benchmark routine registry ---------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <cassert>

using namespace ra;

namespace {

/// Default input data: every float array gets a bounded deterministic
/// pattern, every int array small non-negative values. Routines with
/// stronger input requirements override this below.
void defaultInit(const Module &M, MemoryImage &Mem) {
  for (uint32_t A = 0; A < M.numArrays(); ++A) {
    const ArrayInfo &AI = M.array(A);
    if (AI.Elem == RegClass::Float) {
      std::vector<double> &D = Mem.floatArray(A);
      for (uint32_t I = 0; I < D.size(); ++I)
        D[I] = double((I * 7919 + 131 * A) % 1000) / 1000.0 - 0.3;
    } else {
      std::vector<int64_t> &D = Mem.intArray(A);
      for (uint32_t I = 0; I < D.size(); ++I)
        D[I] = int64_t((I * 37 + A) % 100);
    }
  }
}

/// EPSLON probes |x| — give it a definite sample point.
void epslonInit(const Module &M, MemoryImage &Mem) {
  defaultInit(M, Mem);
  Mem.floatArray(M.findArray("x"))[0] = 2.5;
}

/// DSCAL/DAXPY read a scale factor that must be nonzero for the main
/// path (DAXPY early-exits on zero).
void scaledInit(const Module &M, MemoryImage &Mem) {
  defaultInit(M, Mem);
  Mem.floatArray(M.findArray("scal"))[0] = 0.37;
}

/// DGESL consumes DGEFA-style factors: hand it a diagonally dominant
/// "prefactored" matrix with identity pivoting so the substitution
/// loops stay numerically tame.
void dgeslInit(const Module &M, MemoryImage &Mem) {
  defaultInit(M, Mem);
  uint32_t A = M.findArray("a");
  uint32_t Ipvt = M.findArray("ipvt");
  std::vector<double> &D = Mem.floatArray(A);
  const ArrayInfo &AI = M.array(A);
  uint32_t N = M.array(Ipvt).Size;
  uint32_t Lda = AI.Size / N;
  for (uint32_t J = 0; J < N; ++J)
    for (uint32_t I = 0; I < N; ++I)
      D[J * Lda + I] =
          I == J ? 4.0 + 0.1 * I : 0.05 * (double((I * 13 + J * 7) % 10) - 5);
  std::vector<int64_t> &P = Mem.intArray(Ipvt);
  for (uint32_t K = 0; K < N; ++K)
    P[K] = K;
  Mem.intArray(M.findArray("job"))[0] = 0; // solve A*x = b
}

std::vector<Workload> makeRegistry() {
  auto Entry = [](const char *Program, const char *Routine,
                  Function &(*Build)(Module &),
                  void (*Init)(const Module &, MemoryImage &) = defaultInit,
                  bool Timed = true) {
    Workload W;
    W.Program = Program;
    W.Routine = Routine;
    W.Build = Build;
    W.Init = Init;
    W.Timed = Timed;
    return W;
  };

  std::vector<Workload> R;
  R.push_back(Entry("SVD", "SVD", buildSVD));

  R.push_back(Entry("LINPACK", "EPSLON", buildEPSLON, epslonInit));
  R.push_back(Entry("LINPACK", "DSCAL", buildDSCAL, scaledInit));
  R.push_back(Entry("LINPACK", "IDAMAX", buildIDAMAX));
  R.push_back(Entry("LINPACK", "DDOT", buildDDOT));
  R.push_back(Entry("LINPACK", "DAXPY", buildDAXPY, scaledInit));
  R.push_back(Entry("LINPACK", "MATGEN", buildMATGEN));
  R.push_back(Entry("LINPACK", "DGEFA", buildDGEFA));
  R.push_back(Entry("LINPACK", "DGESL", buildDGESL, dgeslInit));
  R.push_back(Entry("LINPACK", "DMXPY", buildDMXPY));

  R.push_back(Entry("SIMPLEX", "VALUE", buildVALUE));
  R.push_back(Entry("SIMPLEX", "CONVERGE", buildCONVERGE));
  R.push_back(Entry("SIMPLEX", "CONSTRUCT", buildCONSTRUCT));
  R.push_back(Entry("SIMPLEX", "SIMPLEX", buildSIMPLEX));

  R.push_back(Entry("EULER", "SHOCK", buildSHOCK));
  R.push_back(Entry("EULER", "DERIV", buildDERIV));
  R.push_back(Entry("EULER", "CODE", buildCODE));
  R.push_back(Entry("EULER", "CHEB", buildCHEB));
  R.push_back(Entry("EULER", "FINDIF", buildFINDIF));
  R.push_back(Entry("EULER", "FFTB", buildFFTB));
  R.push_back(Entry("EULER", "BNDRY", buildBNDRY));
  R.push_back(Entry("EULER", "INPUT", buildINPUT));
  R.push_back(Entry("EULER", "DIFFR", buildDIFFR));
  R.push_back(Entry("EULER", "DISSIP", buildDISSIP));
  R.push_back(Entry("EULER", "INIT", buildINIT));

  // The paper lists CEDETA's dynamic improvement as "n/a".
  R.push_back(Entry("CEDETA", "DQRDC", buildDQRDC, defaultInit,
                    /*Timed=*/false));
  R.push_back(Entry("CEDETA", "GRADNT", buildGRADNT, defaultInit,
                    /*Timed=*/false));
  R.push_back(Entry("CEDETA", "HSSIAN", buildHSSIAN, defaultInit,
                    /*Timed=*/false));
  return R;
}

} // namespace

const std::vector<Workload> &ra::allWorkloads() {
  static const std::vector<Workload> Registry = makeRegistry();
  return Registry;
}

const Workload *ra::findWorkload(const std::string &Routine) {
  for (const Workload &W : allWorkloads())
    if (W.Routine == Routine)
      return &W;
  return nullptr;
}

std::vector<std::string> ra::workloadPrograms() {
  std::vector<std::string> Programs;
  for (const Workload &W : allWorkloads())
    if (Programs.empty() || Programs.back() != W.Program)
      Programs.push_back(W.Program);
  return Programs;
}
