//===- workloads/Cedeta.cpp - CEDETA optimization routines ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reconstruction of the CEDETA routines (Celis-Dennis-Tapia equality
// constrained minimization): DQRDC, a Householder QR with column
// pivoting in the LINPACK mold, and the two very large derivative
// evaluators GRADNT and HSSIAN. The paper's GRADNT/HSSIAN are ~15 KB of
// object code with 1274/1552 live ranges — machine-generated-looking
// chains of floating assignments inside loop nests. We generate the
// same shape: blocks of windowed expression chains over a shared
// coefficient table, so hundreds of overlapping live ranges arise.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/KernelBuilder.h"

using namespace ra;

namespace {
constexpr int64_t Qn = 24, Qp = 12, QLd = Qn; ///< DQRDC shape
constexpr int64_t NP = 64;                    ///< GRADNT/HSSIAN points
} // namespace

//===--------------------------------------------------------------------===//
// DQRDC — Householder QR with column pivoting.
//===--------------------------------------------------------------------===//

Function &ra::buildDQRDC(Module &M) {
  uint32_t A = M.newArray("a", QLd * Qp, RegClass::Float);
  uint32_t Qraux = M.newArray("qraux", Qp, RegClass::Float);
  uint32_t Jpvt = M.newArray("jpvt", Qp, RegClass::Int);
  Function &F = M.newFunction("DQRDC");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(Qn, "n");
  VRegId P = B.constI(Qp, "p");
  // Entry coefficient block: live across the norms loop and the sweep.
  VRegId FZero = B.constF(0.0, "fzero");
  VRegId One = B.constF(1.0, "one");
  VRegId WgtQ = B.constF(1.01, "wgtq");
  VRegId DmpQ = B.constF(0.98, "dmpq");
  VRegId EpsQ = B.constF(1.0e-12, "epsq");
  VRegId HalfQ = B.constF(0.5, "halfq");

  VRegId I = B.iReg("i"), J = B.iReg("j"), L = B.iReg("l");

  // Initial column norms, two rows per trip (staggered temporaries,
  // cheap to spill — the Figure 3 shape).
  auto NormJ = B.forLoop("norms", J, 0, P);
  {
    VRegId S = B.fReg("s");
    B.movF(0.0, S);
    auto NormI = B.forLoop("norms.i", I, 0, N, 2);
    {
      VRegId Ip1 = B.addI(I, 1);
      VRegId Ta = B.load2D(A, I, J, QLd);
      VRegId Tb = B.load2D(A, Ip1, J, QLd);
      VRegId Sq = B.fmul(Ta, Ta);
      VRegId Sq2 = B.fmul(Tb, Tb);
      B.fadd(S, B.fadd(Sq, Sq2), S);
    }
    B.endDo(NormI);
    B.store(Qraux, J, B.fsqrt(S));
    B.store(Jpvt, J, J);
  }
  B.endDo(NormJ);

  // Householder sweep with column pivoting.
  auto Ll = B.forLoop("sweep", L, 0, P);
  {
    // Pick the column with the largest remaining norm.
    VRegId MaxJ = B.iReg("maxj");
    B.copy(L, MaxJ);
    VRegId MaxNorm = B.fReg("maxnorm");
    B.copy(B.load(Qraux, L), MaxNorm);
    VRegId Lp1 = B.addI(L, 1);
    auto Pick = B.forLoopReg("pick", J, Lp1, P);
    {
      VRegId Nj = B.load(Qraux, J);
      auto Wider = B.ifCmp(CmpKind::GT, Nj, MaxNorm, "wider");
      B.copy(Nj, MaxNorm);
      B.copy(J, MaxJ);
      B.endIf(Wider);
    }
    B.endDo(Pick);

    // Swap columns l and maxj.
    auto NeedSwap = B.ifCmp(CmpKind::NE, MaxJ, L, "colswap");
    {
      auto Sw = B.forLoop("colswap.i", I, 0, N);
      VRegId Tl = B.load2D(A, I, L, QLd);
      VRegId Tm = B.load2D(A, I, MaxJ, QLd);
      B.store2D(A, I, L, QLd, Tm);
      B.store2D(A, I, MaxJ, QLd, Tl);
      B.endDo(Sw);
      VRegId Ql = B.load(Qraux, L);
      B.store(Qraux, L, B.load(Qraux, MaxJ));
      B.store(Qraux, MaxJ, Ql);
      VRegId Pl = B.load(Jpvt, L);
      B.store(Jpvt, L, B.load(Jpvt, MaxJ));
      B.store(Jpvt, MaxJ, Pl);
    }
    B.endIf(NeedSwap);

    // Householder reflection on column l.
    VRegId Nrm2 = B.fReg("nrm2");
    B.movF(0.0, Nrm2);
    auto Sq = B.forLoopReg("house.sq", I, L, N);
    VRegId T = B.load2D(A, I, L, QLd);
    B.fadd(Nrm2, B.fmul(T, T), Nrm2);
    B.endDo(Sq);
    VRegId NrmXl = B.fsqrt(Nrm2, B.fReg("nrmxl"));

    auto Live = B.ifCmp(CmpKind::GT, NrmXl, FZero, "live");
    {
      VRegId All = B.load2D(A, L, L, QLd);
      auto Flip = B.ifCmp(CmpKind::LT, All, FZero, "flip");
      B.fneg(NrmXl, NrmXl);
      B.endIf(Flip);

      auto Scale = B.forLoopReg("house.scale", I, L, N);
      B.store2D(A, I, L, QLd, B.fdiv(B.load2D(A, I, L, QLd), NrmXl));
      B.endDo(Scale);
      VRegId Diag = B.fadd(B.load2D(A, L, L, QLd), One);
      B.store2D(A, L, L, QLd, Diag);

      // Apply to the trailing columns, refreshing their norms.
      auto Tj = B.forLoopReg("apply", J, Lp1, P);
      {
        VRegId S2 = B.fReg("s2");
        B.movF(0.0, S2);
        auto Dot = B.forLoopReg("apply.dot", I, L, N);
        B.fadd(S2, B.fmul(B.load2D(A, I, L, QLd), B.load2D(A, I, J, QLd)),
               S2);
        B.endDo(Dot);
        VRegId Fac = B.fneg(B.fdiv(S2, B.load2D(A, L, L, QLd)));
        auto Upd = B.forLoopReg("apply.upd", I, L, N);
        VRegId Anew = B.fadd(B.fmul(B.load2D(A, I, J, QLd), DmpQ),
                             B.fmul(B.fmul(Fac, WgtQ),
                                    B.load2D(A, I, L, QLd)));
        B.store2D(A, I, J, QLd, B.fadd(Anew, B.fmul(EpsQ, HalfQ)));
        B.endDo(Upd);
        // Norm downdate (recomputed cheaply).
        VRegId Norm = B.fReg("norm");
        B.movF(0.0, Norm);
        auto Re = B.forLoopReg("apply.norm", I, Lp1, N);
        VRegId T2 = B.load2D(A, I, J, QLd);
        B.fadd(Norm, B.fmul(T2, T2), Norm);
        B.endDo(Re);
        B.store(Qraux, J, B.fsqrt(Norm));
      }
      B.endDo(Tj);

      B.store(Qraux, L, B.load2D(A, L, L, QLd));
      B.store2D(A, L, L, QLd, B.fneg(NrmXl));
    }
    B.endIf(Live);
  }
  B.endDo(Ll);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// GRADNT / HSSIAN — generated derivative evaluators.
//===--------------------------------------------------------------------===//

namespace {

/// Emits one generated nest: a loop over \p NP points whose body is a
/// windowed chain of \p ChainLen floating statements mixing the shared
/// coefficient table \p Coefs with array elements. The rolling window
/// keeps ~WindowSize values live at once, mimicking the pressure of the
/// original machine-generated derivative code.
void emitChainNest(KernelBuilder &B, uint32_t XArr, uint32_t OutArr,
                   const std::vector<VRegId> &Coefs, VRegId I,
                   VRegId Limit, unsigned ChainLen, unsigned Phase,
                   const std::string &Name) {
  constexpr unsigned WindowSize = 10;
  auto L = B.forLoop(Name, I, 0, Limit);
  {
    std::vector<VRegId> Window(WindowSize);
    VRegId X = B.load(XArr, I);
    VRegId Prev = B.load(OutArr, I);
    for (unsigned W = 0; W < WindowSize; ++W)
      Window[W] = W % 2 ? X : Prev;
    for (unsigned S = 0; S < ChainLen; ++S) {
      VRegId C = Coefs[(S * 5 + Phase) % Coefs.size()];
      VRegId V = B.fadd(B.fmul(C, Window[S % WindowSize]),
                        Window[(S + 3) % WindowSize]);
      if (S % 7 == 4)
        V = B.fabs(V);
      if (S % 11 == 6)
        V = B.fmul(V, X);
      // Every dozen statements the generated code branches on a
      // partial result, as the original derivative evaluator's
      // piecewise terms did. The join makes the interference graph
      // locally non-chordal — where optimistic coloring wins.
      if (S % 12 == 7) {
        VRegId Sel = B.fReg("sel");
        VRegId CutA = Coefs[(S + 1) % Coefs.size()];
        VRegId Other = Window[(S + 5) % WindowSize];
        auto Piece = B.ifElseCmp(CmpKind::GT, V, Other, Name + ".piece");
        B.fmul(V, CutA, Sel);
        B.elseBranch(Piece);
        B.fadd(V, Other, Sel);
        B.endIf(Piece);
        V = Sel;
      }
      Window[S % WindowSize] = V;
    }
    // Fold the whole window so every chain value is live (no dead code
    // for the optimizer to strip).
    VRegId Acc = Window[0];
    for (unsigned W = 1; W < WindowSize; ++W)
      Acc = B.fadd(Acc, Window[W]);
    // Keep magnitudes bounded so long runs stay finite.
    Acc = B.fmul(Acc, B.constF(1.0e-3));
    B.store(OutArr, I, Acc);
  }
  B.endDo(L);
}

} // namespace

Function &ra::buildGRADNT(Module &M) {
  uint32_t X = M.newArray("x", NP, RegClass::Float);
  uint32_t G = M.newArray("g", NP, RegClass::Float);
  Function &F = M.newFunction("GRADNT");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NP, "np");
  // Six function-wide coefficients; each nest adds four of its own so
  // the long ranges are staggered, not one giant clique.
  std::vector<VRegId> Entry;
  for (unsigned K = 0; K < 6; ++K)
    Entry.push_back(B.constF(0.05 + 0.07 * K, "c" + std::to_string(K)));

  VRegId I = B.iReg("i");
  for (unsigned Nest = 0; Nest < 10; ++Nest) {
    std::vector<VRegId> Coefs = Entry;
    for (unsigned K = 0; K < 4; ++K)
      Coefs.push_back(B.constF(0.11 + 0.05 * (Nest * 4 + K),
                               "s" + std::to_string(Nest) + "_" +
                                   std::to_string(K)));
    emitChainNest(B, X, G, Coefs, I, N, /*ChainLen=*/84, Nest,
                  "grad" + std::to_string(Nest));
  }

  B.ret();
  return F;
}

Function &ra::buildHSSIAN(Module &M) {
  uint32_t X = M.newArray("x", NP, RegClass::Float);
  uint32_t H = M.newArray("h", NP * 16, RegClass::Float);
  Function &F = M.newFunction("HSSIAN");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NP, "np");
  VRegId Cols = B.constI(16, "cols");
  // Function-wide coefficients plus per-nest stage blocks, as GRADNT.
  std::vector<VRegId> Entry;
  for (unsigned K = 0; K < 6; ++K)
    Entry.push_back(B.constF(0.04 + 0.06 * K, "h" + std::to_string(K)));

  VRegId I = B.iReg("i"), J = B.iReg("j");
  constexpr unsigned WindowSize = 10;
  for (unsigned Nest = 0; Nest < 7; ++Nest) {
    std::vector<VRegId> Coefs = Entry;
    for (unsigned K = 0; K < 4; ++K)
      Coefs.push_back(B.constF(0.09 + 0.04 * (Nest * 4 + K),
                               "hs" + std::to_string(Nest) + "_" +
                                   std::to_string(K)));
    auto Jl = B.forLoop("hess" + std::to_string(Nest) + ".j", J, 0, Cols);
    auto Il = B.forLoop("hess" + std::to_string(Nest) + ".i", I, 0, N);
    {
      VRegId Idx = B.add(B.mulI(J, NP), I);
      std::vector<VRegId> Window(WindowSize);
      VRegId Xi = B.load(X, I);
      VRegId Prev = B.load(H, Idx);
      for (unsigned W = 0; W < WindowSize; ++W)
        Window[W] = W % 2 ? Xi : Prev;
      for (unsigned S = 0; S < 100; ++S) {
        VRegId C = Coefs[(S * 3 + Nest) % Coefs.size()];
        VRegId V = B.fadd(B.fmul(C, Window[S % WindowSize]),
                          Window[(S + 4) % WindowSize]);
        if (S % 9 == 5)
          V = B.fabs(V);
        if (S % 14 == 10) {
          VRegId Sel = B.fReg("hsel");
          VRegId CutA = Coefs[(S + 1) % Coefs.size()];
          VRegId CutB = Coefs[(S + 3) % Coefs.size()];
          auto Piece = B.ifElseCmp(CmpKind::GT, V, CutA, "hess.piece");
          B.fmul(V, CutB, Sel);
          B.elseBranch(Piece);
          B.fadd(V, CutA, Sel);
          B.endIf(Piece);
          V = Sel;
        }
        Window[S % WindowSize] = V;
      }
      VRegId Acc = Window[0];
      for (unsigned W = 1; W < WindowSize; ++W)
        Acc = B.fadd(Acc, Window[W]);
      Acc = B.fmul(Acc, B.constF(1.0e-3));
      B.store(H, Idx, Acc);
    }
    B.endDo(Il);
    B.endDo(Jl);
  }

  B.ret();
  return F;
}
