//===- workloads/Simplex.cpp - SIMPLEX direct-search reconstruction -------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reconstruction of the paper's SIMPLEX program (Torczon's
// multi-directional search along simplex edges): the small VALUE /
// CONVERGE / CONSTRUCT helpers and the large SIMPLEX driver with its
// reflection / expansion / contraction loop nests. The driver's
// long-lived scalars — search coefficients, best/worst values and
// indices, loop limits — span every nest, recreating the pressure
// pattern behind the paper's 46% spill improvement on this routine.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/KernelBuilder.h"

using namespace ra;

namespace {
constexpr int64_t Dim = 8;       ///< problem dimension
constexpr int64_t NV = Dim + 1;  ///< simplex vertices
constexpr int64_t ItMax = 30;    ///< driver iteration bound
} // namespace

//===--------------------------------------------------------------------===//
// VALUE — objective function at one point.
//===--------------------------------------------------------------------===//

Function &ra::buildVALUE(Module &M) {
  uint32_t X = M.newArray("x", Dim, RegClass::Float);
  uint32_t Out = M.newArray("out", 1, RegClass::Float);
  Function &F = M.newFunction("VALUE");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(Dim, "n");
  VRegId Target = B.constF(0.3, "target");
  VRegId Cross = B.constF(0.25, "cross");
  VRegId Penalty = B.constF(0.01, "penalty");
  VRegId Fv = B.fReg("f");
  B.movF(0.0, Fv);

  VRegId J = B.iReg("j");
  auto Quad = B.forLoop("quad", J, 0, N);
  VRegId D = B.fsub(B.load(X, J), Target);
  B.fadd(Fv, B.fmul(D, D), Fv);
  B.endDo(Quad);

  auto CrossL = B.forLoop("cross", J, 1, N);
  VRegId Prev = B.load(X, B.addI(J, -1));
  B.fadd(Fv, B.fmul(Cross, B.fmul(B.load(X, J), Prev)), Fv);
  B.endDo(CrossL);

  auto Pen = B.forLoop("pen", J, 0, N);
  B.fadd(Fv, B.fmul(Penalty, B.fabs(B.load(X, J))), Fv);
  B.endDo(Pen);

  B.store(Out, B.constI(0, "c0"), Fv);
  B.ret(Fv);
  return F;
}

//===--------------------------------------------------------------------===//
// CONVERGE — simplex diameter test.
//===--------------------------------------------------------------------===//

Function &ra::buildCONVERGE(Module &M) {
  uint32_t Fvals = M.newArray("fv", NV, RegClass::Float);
  uint32_t Flag = M.newArray("flag", 1, RegClass::Int);
  Function &F = M.newFunction("CONVERGE");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId N = B.constI(NV, "nv");
  VRegId Tol = B.constF(1.0e-6, "tol");
  VRegId F0 = B.load(Fvals, B.constI(0, "c0"));
  VRegId MaxDiff = B.fReg("maxdiff");
  B.movF(0.0, MaxDiff);

  VRegId I = B.iReg("i");
  auto Scan = B.forLoop("scan", I, 1, N);
  VRegId D = B.fabs(B.fsub(B.load(Fvals, I), F0));
  auto If = B.ifCmp(CmpKind::GT, D, MaxDiff, "wider");
  B.copy(D, MaxDiff);
  B.endIf(If);
  B.endDo(Scan);

  VRegId Result = B.iReg("result");
  auto Conv = B.ifElseCmp(CmpKind::LT, MaxDiff, Tol, "conv");
  B.movI(1, Result);
  B.elseBranch(Conv);
  B.movI(0, Result);
  B.endIf(Conv);

  B.store(Flag, B.constI(0), Result);
  B.ret(Result);
  return F;
}

//===--------------------------------------------------------------------===//
// CONSTRUCT — build the initial simplex around a base point.
//===--------------------------------------------------------------------===//

Function &ra::buildCONSTRUCT(Module &M) {
  uint32_t X0 = M.newArray("x0", Dim, RegClass::Float);
  uint32_t S = M.newArray("s", NV * Dim, RegClass::Float);
  Function &F = M.newFunction("CONSTRUCT");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId NVr = B.constI(NV, "nv");
  VRegId N = B.constI(Dim, "n");
  VRegId Step = B.constF(0.5, "step");

  VRegId I = B.iReg("i"), J = B.iReg("j");
  auto Vl = B.forLoop("vert", I, 0, NVr);
  auto Cl = B.forLoop("comp", J, 0, N);
  VRegId Base = B.load(X0, J);
  VRegId V = B.fReg("v");
  // Vertex i displaces component i-1 (vertex 0 is the base point).
  VRegId Jp1 = B.addI(J, 1);
  auto Disp = B.ifElseCmp(CmpKind::EQ, I, Jp1, "disp");
  B.fadd(Base, Step, V);
  B.elseBranch(Disp);
  B.copy(Base, V);
  B.endIf(Disp);
  B.store2D(S, I, J, NV, V);
  B.endDo(Cl);
  B.endDo(Vl);

  B.ret();
  return F;
}

//===--------------------------------------------------------------------===//
// SIMPLEX — the Nelder-Mead-style driver with inlined helpers.
//===--------------------------------------------------------------------===//

Function &ra::buildSIMPLEX(Module &M) {
  uint32_t S = M.newArray("s", NV * Dim, RegClass::Float);
  uint32_t Sold = M.newArray("sold", NV * Dim, RegClass::Float);
  uint32_t Fvals = M.newArray("fv", NV, RegClass::Float);
  uint32_t C = M.newArray("cent", Dim, RegClass::Float);
  uint32_t Vr = M.newArray("vr", Dim, RegClass::Float);
  uint32_t Ve = M.newArray("ve", Dim, RegClass::Float);
  uint32_t Out = M.newArray("out", 1, RegClass::Float);
  Function &F = M.newFunction("SIMPLEX");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  // Long-lived scalars: limits, search coefficients, tolerances.
  VRegId NVr = B.constI(NV, "nv");
  VRegId N = B.constI(Dim, "n");
  VRegId ItLim = B.constI(ItMax, "itmax");
  VRegId Alpha = B.constF(1.0, "alpha");
  VRegId Beta = B.constF(0.5, "beta");
  VRegId Gamma = B.constF(2.0, "gamma");
  VRegId Tol = B.constF(1.0e-6, "tol");
  VRegId Target = B.constF(0.3, "target");
  VRegId Cross = B.constF(0.25, "cross");
  VRegId InvN = B.constF(1.0 / double(Dim), "invn");

  VRegId I = B.iReg("i"), J = B.iReg("j"), It = B.iReg("it");

  /// Inline VALUE over a point read through \p LoadComp(j).
  auto InlineValue = [&](auto LoadComp, const std::string &Tag) -> VRegId {
    VRegId Fv = B.fReg("f." + Tag);
    B.movF(0.0, Fv);
    auto L1 = B.forLoop(Tag + ".quad", J, 0, N);
    VRegId D = B.fsub(LoadComp(J), Target);
    B.fadd(Fv, B.fmul(D, D), Fv);
    B.endDo(L1);
    auto L2 = B.forLoop(Tag + ".cross", J, 1, N);
    VRegId Prev = LoadComp(B.addI(J, -1));
    B.fadd(Fv, B.fmul(Cross, B.fmul(LoadComp(J), Prev)), Fv);
    B.endDo(L2);
    return Fv;
  };

  // Snapshot the starting simplex (a small doubly-nested copy, two
  // components per trip — the cheap staggered temporaries of Figure 1's
  // array copy loop, shallower than the search nests below).
  auto CpI = B.forLoop("keep.i", I, 0, NVr);
  auto CpJ = B.forLoop("keep.j", J, 0, N, 2);
  {
    VRegId Jp1 = B.addI(J, 1);
    VRegId Ta = B.load2D(S, I, J, NV);
    VRegId Tb = B.load2D(S, I, Jp1, NV);
    VRegId Ua = B.fmul(Ta, Alpha);
    VRegId Ub = B.fmul(Tb, Alpha);
    B.store2D(Sold, I, J, NV, Ua);
    B.store2D(Sold, I, Jp1, NV, Ub);
  }
  B.endDo(CpJ);
  B.endDo(CpI);

  auto Iter = B.forLoop("iter", It, 0, ItLim);
  {
    // Evaluate every vertex (inlined VALUE over s(i,*)).
    auto Ev = B.forLoop("eval", I, 0, NVr);
    VRegId Fi = InlineValue(
        [&](VRegId Jx) { return B.load2D(S, I, Jx, NV); }, "ev");
    B.store(Fvals, I, Fi);
    B.endDo(Ev);

    // Best and worst vertices.
    VRegId IBest = B.iReg("ibest"), IWorst = B.iReg("iworst");
    VRegId FBest = B.fReg("fbest"), FWorst = B.fReg("fworst");
    B.movI(0, IBest);
    B.movI(0, IWorst);
    VRegId C0 = B.constI(0);
    B.copy(B.load(Fvals, C0), FBest);
    B.copy(FBest, FWorst);
    auto Rank = B.forLoop("rank", I, 1, NVr);
    {
      VRegId Fi2 = B.load(Fvals, I);
      auto Lo = B.ifCmp(CmpKind::LT, Fi2, FBest, "lower");
      B.copy(Fi2, FBest);
      B.copy(I, IBest);
      B.endIf(Lo);
      auto Hi = B.ifCmp(CmpKind::GT, Fi2, FWorst, "higher");
      B.copy(Fi2, FWorst);
      B.copy(I, IWorst);
      B.endIf(Hi);
    }
    B.endDo(Rank);

    // Centroid of all vertices except the worst.
    auto CeJ = B.forLoop("cent.j", J, 0, N);
    {
      VRegId Sum = B.fReg("csum");
      B.movF(0.0, Sum);
      auto CeI = B.forLoop("cent.i", I, 0, NVr);
      auto Skip = B.ifCmp(CmpKind::NE, I, IWorst, "keep");
      B.fadd(Sum, B.load2D(S, I, J, NV), Sum);
      B.endIf(Skip);
      B.endDo(CeI);
      B.store(C, J, B.fmul(Sum, InvN));
    }
    B.endDo(CeJ);

    // Reflection: vr = c + alpha*(c - s(iworst,*)).
    auto ReJ = B.forLoop("refl", J, 0, N);
    {
      VRegId Cj = B.load(C, J);
      VRegId Wj = B.load2D(S, IWorst, J, NV);
      B.store(Vr, J, B.fadd(Cj, B.fmul(Alpha, B.fsub(Cj, Wj))));
    }
    B.endDo(ReJ);
    VRegId Fr = InlineValue([&](VRegId Jx) { return B.load(Vr, Jx); }, "fr");

    auto Improve = B.ifElseCmp(CmpKind::LT, Fr, FBest, "improve");
    {
      // Expansion: ve = c + gamma*(vr - c).
      auto ExJ = B.forLoop("expand", J, 0, N);
      VRegId Cj = B.load(C, J);
      B.store(Ve, J,
              B.fadd(Cj, B.fmul(Gamma, B.fsub(B.load(Vr, J), Cj))));
      B.endDo(ExJ);
      VRegId Fe =
          InlineValue([&](VRegId Jx) { return B.load(Ve, Jx); }, "fe");
      auto Keep = B.ifElseCmp(CmpKind::LT, Fe, Fr, "keep.exp");
      {
        auto Cp = B.forLoop("take.ve", J, 0, N);
        B.store2D(S, IWorst, J, NV, B.load(Ve, J));
        B.endDo(Cp);
      }
      B.elseBranch(Keep);
      {
        auto Cp = B.forLoop("take.vr", J, 0, N);
        B.store2D(S, IWorst, J, NV, B.load(Vr, J));
        B.endDo(Cp);
      }
      B.endIf(Keep);
    }
    B.elseBranch(Improve);
    {
      auto Accept = B.ifElseCmp(CmpKind::LT, Fr, FWorst, "accept");
      {
        auto Cp = B.forLoop("take2.vr", J, 0, N);
        B.store2D(S, IWorst, J, NV, B.load(Vr, J));
        B.endDo(Cp);
      }
      B.elseBranch(Accept);
      {
        // Contraction toward the centroid, then (always) a half shrink
        // toward the best vertex — the paper's code searches along all
        // simplex edges.
        auto CoJ = B.forLoop("contract", J, 0, N);
        VRegId Cj = B.load(C, J);
        VRegId Wj = B.load2D(S, IWorst, J, NV);
        B.store2D(S, IWorst, J, NV,
                  B.fadd(Cj, B.fmul(Beta, B.fsub(Wj, Cj))));
        B.endDo(CoJ);
        auto ShI = B.forLoop("shrink.i", I, 0, NVr);
        auto ShJ = B.forLoop("shrink.j", J, 0, N);
        VRegId Bj = B.load2D(S, IBest, J, NV);
        VRegId Sij = B.load2D(S, I, J, NV);
        B.store2D(S, I, J, NV, B.fmul(Beta, B.fadd(Sij, Bj)));
        B.endDo(ShJ);
        B.endDo(ShI);
      }
      B.endIf(Accept);
    }
    B.endIf(Improve);

    // Inlined CONVERGE: early exit when the spread is tiny.
    VRegId Spread = B.fsub(FWorst, FBest);
    uint32_t Continue = B.newBlock("iter.continue");
    B.br(CmpKind::LT, Spread, Tol, Iter.Exit, Continue);
    B.setInsertPoint(Continue);
  }
  B.endDo(Iter);

  VRegId Final = B.load(Fvals, B.constI(0));
  B.store(Out, B.constI(0), Final);
  B.ret(Final);
  return F;
}
