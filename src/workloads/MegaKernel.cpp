//===- workloads/MegaKernel.cpp - Generated giant-function family ---------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/MegaKernel.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/Renumber.h"
#include "regalloc/SpillCost.h"
#include "target/CostModel.h"
#include "workloads/KernelBuilder.h"
#include "workloads/RandomProgram.h"

using namespace ra;

namespace {

/// Bounded combine: (A + B) / 2 stays within [min(A,B), max(A,B)], so
/// chains of any length never overflow and differential simulation of
/// pre/post-allocation code compares exactly.
VRegId avg(KernelBuilder &B, VRegId A, VRegId C, VRegId Half) {
  return B.fmul(B.fadd(A, C), Half);
}

} // namespace

Function &ra::buildPressureRamp(Module &M, unsigned Ranges, unsigned Width,
                                const std::string &Name) {
  assert(Width >= 2 && "ring needs two slots");
  uint32_t Out = M.newArray(Name + ".out", 1, RegClass::Float);
  Function &F = M.newFunction(Name);
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId Half = B.constF(0.5, "half");
  std::vector<VRegId> Ring(Width);
  for (unsigned I = 0; I < Width; ++I)
    Ring[I] = B.constF(1.0 + 0.125 * double(I % 32));

  // Each step consumes two ring slots and replaces one with two fresh
  // temporaries (the sum and the average), so every value stays live
  // for ~Width subsequent steps: ~Ranges overlapping ranges of
  // near-uniform degree ~2*Width, all in one straight-line block.
  unsigned Steps = Ranges / 2;
  for (unsigned I = 0; I < Steps; ++I)
    Ring[I % Width] = avg(B, Ring[I % Width], Ring[(I + 1) % Width], Half);

  VRegId Acc = Ring[0];
  for (unsigned I = 1; I < Width; ++I)
    Acc = avg(B, Acc, Ring[I], Half);
  B.store(Out, B.constI(0), Acc);
  B.ret(Acc);
  return F;
}

Function &ra::buildWideUnrolledLoop(Module &M, unsigned Lanes, unsigned Body,
                                    const std::string &Name) {
  assert(Lanes >= 1 && "need at least one accumulator");
  uint32_t Out = M.newArray(Name + ".out", Lanes, RegClass::Float);
  Function &F = M.newFunction(Name);
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId Half = B.constF(0.5, "half");
  std::vector<VRegId> Acc(Lanes);
  for (unsigned L = 0; L < Lanes; ++L)
    Acc[L] = B.fReg("acc" + std::to_string(L));
  for (unsigned L = 0; L < Lanes; ++L)
    B.movF(1.0 + 0.0625 * double(L % 64), Acc[L]);

  VRegId I = B.iReg("i");
  VRegId Trip = B.constI(8, "trip");
  auto Loop = B.forLoop("mega", I, 0, Trip);

  // The unrolled body: a chain of 2*Body temporaries threading through
  // every accumulator. The accumulators are live across the back edge
  // *and* across the whole chain, so each is a very-high-degree node
  // (~2*Body) over a sea of short chain ranges (degree ~Lanes).
  VRegId Prev = Acc[0];
  for (unsigned U = 0; U < Body; ++U)
    Prev = avg(B, Prev, Acc[U % Lanes], Half);
  // Fold the chain back so every lane is redefined inside the loop.
  for (unsigned L = 0; L < Lanes; ++L)
    B.fmul(B.fadd(Acc[L], Prev), Half, Acc[L]);
  B.endDo(Loop);

  for (unsigned L = 0; L < Lanes; ++L)
    B.store(Out, B.constI(int64_t(L)), Acc[L]);
  B.ret(Acc[0]);
  return F;
}

Function &ra::buildRandomStress(Module &M, uint64_t Seed, unsigned Regions,
                                const std::string &Name) {
  RandomProgramConfig C;
  C.MaxDepth = 2;
  C.StatementsPerBlock = 16;
  C.Regions = Regions;
  C.IntVars = 48;
  C.FloatVars = 48;
  C.ArraySize = 32;
  C.LoopTrip = 3;
  Function &F = buildRandomProgram(M, Seed, C);
  (void)Name; // the generator names its own function; Name keys the family
  return F;
}

const std::vector<MegaKernel> &ra::megaKernelFamily() {
  static const std::vector<MegaKernel> Family = {
      {"mega.ramp.10k", "ramp", 10000,
       [](Module &M) -> Function & {
         return buildPressureRamp(M, 10000, 32, "MEGARAMP10K");
       }},
      {"mega.ramp.50k", "ramp", 50000,
       [](Module &M) -> Function & {
         return buildPressureRamp(M, 50000, 64, "MEGARAMP50K");
       }},
      {"mega.wide.12k", "wide", 12000,
       [](Module &M) -> Function & {
         return buildWideUnrolledLoop(M, 96, 6000, "MEGAWIDE12K");
       }},
      {"mega.rand.16k", "random", 16000,
       [](Module &M) -> Function & {
         return buildRandomStress(M, 20260808, 600, "MEGARAND16K");
       }},
  };
  return Family;
}

const std::vector<MegaKernel> &ra::megaKernelTestFamily() {
  static const std::vector<MegaKernel> Family = {
      {"mini.ramp", "ramp", 3000,
       [](Module &M) -> Function & {
         return buildPressureRamp(M, 3000, 16, "MINIRAMP");
       }},
      {"mini.wide", "wide", 1700,
       [](Module &M) -> Function & {
         return buildWideUnrolledLoop(M, 24, 800, "MINIWIDE");
       }},
      {"mini.rand", "random", 2000,
       [](Module &M) -> Function & {
         return buildRandomStress(M, 7, 100, "MINIRAND");
       }},
  };
  return Family;
}

Status ra::checkMegaKernelCapacity(const MegaKernel &MK,
                                   uint64_t MemoryBudgetBytes) {
  if (MemoryBudgetBytes == 0)
    return Status();
  uint64_t Estimate = InterferenceGraph::estimateBytes(MK.ApproxRanges);
  if (Estimate <= MemoryBudgetBytes)
    return Status();
  return Status::error(
      StatusCode::MemoryBudgetExceeded,
      MK.Name + ": ~" + std::to_string(MK.ApproxRanges) +
          " live ranges need an estimated " + std::to_string(Estimate) +
          " bytes of interference matrix, over the " +
          std::to_string(MemoryBudgetBytes) +
          "-byte budget; raise --mem-budget-mb or skip this kernel");
}

std::array<ClassGraph, NumRegClasses> ra::buildColoringGraphs(Function &F) {
  CFG G = CFG::compute(F);
  renumberLiveRanges(F, G);
  Liveness LV = Liveness::compute(F, G);
  auto Graphs = buildInterferenceGraphs(F, LV);
  Dominators Doms = Dominators::compute(F, G);
  LoopInfo Loops = LoopInfo::compute(F, G, Doms);
  std::vector<double> Costs = computeSpillCosts(F, Loops, CostModel::rtpc());
  for (ClassGraph &CG : Graphs) {
    setNodeCosts(F, Costs, CG);
    CG.Graph.finalize();
  }
  return Graphs;
}
