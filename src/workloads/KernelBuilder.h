//===- workloads/KernelBuilder.h - FORTRAN-style loop scaffolds *- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// KernelBuilder layers FORTRAN DO-loop scaffolding over IRBuilder so
/// the benchmark-routine reconstructions read like the numeric kernels
/// they model. Loops are counted (test at the top, increment at the
/// bottom) with 0-based induction variables.
///
//===----------------------------------------------------------------------===//

#ifndef RA_WORKLOADS_KERNELBUILDER_H
#define RA_WORKLOADS_KERNELBUILDER_H

#include "ir/IRBuilder.h"

#include <string>

namespace ra {

/// IRBuilder plus structured-loop helpers.
class KernelBuilder : public IRBuilder {
public:
  KernelBuilder(Module &M, Function &F) : IRBuilder(M, F) {}

  /// An open DO loop; endDo() closes it.
  struct LoopHandle {
    VRegId Var = InvalidVReg;   ///< induction variable
    VRegId Limit = InvalidVReg; ///< bound register
    uint32_t Head = 0, Body = 0, Exit = 0;
    int64_t Step = 1;
    CmpKind Cmp = CmpKind::LT;
  };

  /// Emits "for (Var = Lo; Var < Limit; Var += Step)". Leaves the insert
  /// point inside the body. \p Var must be a pre-created integer
  /// register (so it is visibly multi-defined, like a FORTRAN index).
  LoopHandle forLoop(const std::string &Name, VRegId Var, int64_t Lo,
                     VRegId Limit, int64_t Step = 1) {
    movI(Lo, Var);
    return forLoopFrom(Name, Var, Limit, Step);
  }

  /// Same, with a register-valued lower bound. Named distinctly from
  /// forLoop because VRegId converts implicitly to int64_t — a shared
  /// overload set would silently misread register ids as constants.
  LoopHandle forLoopReg(const std::string &Name, VRegId Var, VRegId Lo,
                        VRegId Limit, int64_t Step = 1) {
    copy(Lo, Var);
    return forLoopFrom(Name, Var, Limit, Step);
  }

  /// Loop over an already-initialized induction variable.
  LoopHandle forLoopFrom(const std::string &Name, VRegId Var, VRegId Limit,
                         int64_t Step = 1) {
    LoopHandle L;
    L.Var = Var;
    L.Limit = Limit;
    L.Step = Step;
    L.Head = newBlock(Name + ".head");
    L.Body = newBlock(Name + ".body");
    L.Exit = newBlock(Name + ".exit");
    jmp(L.Head);
    setInsertPoint(L.Head);
    br(CmpKind::LT, Var, Limit, L.Body, L.Exit);
    setInsertPoint(L.Body);
    return L;
  }

  /// Emits "for (Var = Hi; Var >= Limit; Var -= 1)" — a descending
  /// FORTRAN "DO ... -1" loop. \p Var must be pre-initialized.
  LoopHandle downLoopFrom(const std::string &Name, VRegId Var,
                          VRegId LimitInclusive) {
    LoopHandle L;
    L.Var = Var;
    L.Limit = LimitInclusive;
    L.Step = -1;
    L.Cmp = CmpKind::GE;
    L.Head = newBlock(Name + ".head");
    L.Body = newBlock(Name + ".body");
    L.Exit = newBlock(Name + ".exit");
    jmp(L.Head);
    setInsertPoint(L.Head);
    br(CmpKind::GE, Var, LimitInclusive, L.Body, L.Exit);
    setInsertPoint(L.Body);
    return L;
  }

  /// Closes \p L: increments the induction variable, branches back, and
  /// moves the insert point past the loop.
  void endDo(const LoopHandle &L) {
    addI(L.Var, L.Step, L.Var);
    jmp(L.Head);
    setInsertPoint(L.Exit);
  }

  /// An open conditional; closed by endIf() (optionally after
  /// elseBranch()).
  struct IfHandle {
    uint32_t Then = 0, Else = 0, Join = 0;
    bool HasElse = false;
  };

  /// Emits "if (A cmp B)". The insert point moves into the then-block.
  IfHandle ifCmp(CmpKind K, VRegId A, VRegId B,
                 const std::string &Name = "if") {
    IfHandle H;
    H.Then = newBlock(Name + ".then");
    H.Join = newBlock(Name + ".join");
    H.Else = H.Join;
    br(K, A, B, H.Then, H.Join);
    setInsertPoint(H.Then);
    return H;
  }

  /// Emits "if (A cmp B) ... else ...". Insert point: then-block.
  IfHandle ifElseCmp(CmpKind K, VRegId A, VRegId B,
                     const std::string &Name = "if") {
    IfHandle H;
    H.Then = newBlock(Name + ".then");
    H.Else = newBlock(Name + ".else");
    H.Join = newBlock(Name + ".join");
    H.HasElse = true;
    br(K, A, B, H.Then, H.Else);
    setInsertPoint(H.Then);
    return H;
  }

  /// Ends the then-block and moves the insert point into the else-block.
  void elseBranch(const IfHandle &H) {
    assert(H.HasElse && "elseBranch on an if without an else");
    jmp(H.Join);
    setInsertPoint(H.Else);
  }

  /// Closes the conditional; the insert point moves to the join block.
  void endIf(const IfHandle &H) {
    jmp(H.Join);
    setInsertPoint(H.Join);
  }

  /// Column-major 2-D index: Col * Ld + Row (FORTRAN array layout).
  VRegId index2D(VRegId Row, VRegId Col, int64_t Ld) {
    VRegId T = mulI(Col, Ld);
    return add(T, Row);
  }

  /// Loads A(Row, Col) from a column-major array with leading dim \p Ld.
  VRegId load2D(uint32_t Array, VRegId Row, VRegId Col, int64_t Ld) {
    return load(Array, index2D(Row, Col, Ld));
  }

  /// Stores \p V to A(Row, Col).
  void store2D(uint32_t Array, VRegId Row, VRegId Col, int64_t Ld,
               VRegId V) {
    store(Array, index2D(Row, Col, Ld), V);
  }

  /// Integer constant in a fresh register.
  VRegId constI(int64_t V, const std::string &Name = "") {
    VRegId R = iReg(Name);
    movI(V, R);
    return R;
  }

  /// Floating constant in a fresh register.
  VRegId constF(double V, const std::string &Name = "") {
    VRegId R = fReg(Name);
    movF(V, R);
    return R;
  }
};

} // namespace ra

#endif // RA_WORKLOADS_KERNELBUILDER_H
