//===- workloads/RandomProgram.h - Random structured programs --*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of random structured programs for property testing.
/// Generated programs are verifier-clean by construction (every use is
/// dominated by a definition), terminate (loops are bounded counters)
/// and never trap (array indices are loop counters, divisors are
/// nonzero constants), so they can be executed before and after
/// allocation and compared exactly.
///
//===----------------------------------------------------------------------===//

#ifndef RA_WORKLOADS_RANDOMPROGRAM_H
#define RA_WORKLOADS_RANDOMPROGRAM_H

#include "ir/Module.h"

#include <cstdint>

namespace ra {

/// Tuning knobs for the generator.
struct RandomProgramConfig {
  unsigned MaxDepth = 3;          ///< loop/if nesting bound
  unsigned StatementsPerBlock = 8;///< straight-line chunk size
  unsigned Regions = 6;           ///< sequential loop/if regions
  unsigned IntVars = 6;           ///< mutable integer scalar pool
  unsigned FloatVars = 6;         ///< mutable float scalar pool
  unsigned ArraySize = 16;
  int64_t LoopTrip = 5;           ///< iterations per generated loop
};

/// Builds one random function into \p M and returns it.
Function &buildRandomProgram(Module &M, uint64_t Seed,
                             const RandomProgramConfig &C = {});

} // namespace ra

#endif // RA_WORKLOADS_RANDOMPROGRAM_H
