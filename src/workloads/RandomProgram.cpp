//===- workloads/RandomProgram.cpp - Random structured programs -----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "workloads/RandomProgram.h"

#include "support/Rng.h"
#include "workloads/KernelBuilder.h"

using namespace ra;

namespace {

/// One generator run.
class ProgramGen {
public:
  ProgramGen(Module &M, Function &F, uint64_t Seed,
             const RandomProgramConfig &C)
      : B(M, F), Rng_(Seed), C(C) {}

  Function &run() {
    B.setInsertPoint(B.newBlock("entry"));
    IntArr = B.module().newArray("ints", C.ArraySize, RegClass::Int);
    FltArr = B.module().newArray("flts", C.ArraySize, RegClass::Float);

    // Scalar pools, all initialized up front so any later assignment
    // keeps definite assignment trivially true.
    for (unsigned I = 0; I < C.IntVars; ++I) {
      VRegId R = B.iReg("iv" + std::to_string(I));
      B.movI(int64_t(Rng_.nextInRange(-20, 20)), R);
      IntVars.push_back(R);
    }
    for (unsigned I = 0; I < C.FloatVars; ++I) {
      VRegId R = B.fReg("fv" + std::to_string(I));
      B.movF(Rng_.nextDouble() * 4 - 2, R);
      FloatVars.push_back(R);
    }

    for (unsigned R = 0; R < C.Regions; ++R)
      emitRegion(0);

    // Fold every scalar into one observable return value.
    VRegId Acc = B.iReg("acc");
    B.movI(0, Acc);
    for (VRegId V : IntVars)
      B.add(Acc, V, Acc);
    VRegId FAcc = B.fReg("facc");
    B.movF(0.0, FAcc);
    for (VRegId V : FloatVars)
      B.fadd(FAcc, V, FAcc);
    // Stores so float state is observable in memory too.
    VRegId Slot = B.constI(0);
    B.store(FltArr, Slot, FAcc);
    B.ret(Acc);
    return B.function();
  }

private:
  VRegId pickInt() { return IntVars[Rng_.nextBelow(IntVars.size())]; }
  VRegId pickFloat() { return FloatVars[Rng_.nextBelow(FloatVars.size())]; }

  /// Emits one straight-line statement.
  void emitStatement() {
    switch (Rng_.nextBelow(10)) {
    case 0: { // int arithmetic
      VRegId D = pickInt();
      Opcode Op = Rng_.nextBool() ? Opcode::Add : Opcode::Sub;
      B.binop(Op, pickInt(), pickInt(), D, RegClass::Int);
      break;
    }
    case 1: // int immediate form
      B.addI(pickInt(), Rng_.nextInRange(-5, 5), pickInt());
      break;
    case 2: { // float arithmetic
      VRegId D = pickFloat();
      static const Opcode Ops[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul};
      B.binop(Ops[Rng_.nextBelow(3)], pickFloat(), pickFloat(), D,
              RegClass::Float);
      break;
    }
    case 3: // float division by a safe constant
      B.fdiv(pickFloat(), B.constF(1.5 + Rng_.nextDouble()), pickFloat());
      break;
    case 4: // conversions
      if (Rng_.nextBool())
        B.itof(pickInt(), pickFloat());
      else
        B.fabs(pickFloat(), pickFloat());
      break;
    case 5: { // array traffic through a bounded index
      VRegId Idx = boundedIndex();
      if (Rng_.nextBool())
        B.load(FltArr, Idx, pickFloat());
      else
        B.store(FltArr, Idx, pickFloat());
      break;
    }
    case 6: { // int array traffic
      VRegId Idx = boundedIndex();
      if (Rng_.nextBool())
        B.load(IntArr, Idx, pickInt());
      else
        B.store(IntArr, Idx, pickInt());
      break;
    }
    case 7: // copies (coalescing fodder)
      if (Rng_.nextBool())
        B.copy(pickInt(), pickInt());
      else
        B.copy(pickFloat(), pickFloat());
      break;
    case 8: // fresh temporaries chained into the pool
      B.fadd(B.fmul(pickFloat(), pickFloat()), pickFloat(), pickFloat());
      break;
    case 9: // constant reload
      if (Rng_.nextBool())
        B.movI(Rng_.nextInRange(-9, 9), pickInt());
      else
        B.movF(Rng_.nextDouble() - 0.5, pickFloat());
      break;
    }
  }

  /// Index guaranteed in [0, ArraySize): a masked rem of an int var,
  /// computed through a fresh temporary chain.
  VRegId boundedIndex() {
    VRegId T = B.rem(pickInt(), B.constI(int64_t(C.ArraySize)));
    // rem can be negative; fold to the non-negative half.
    VRegId Sq = B.mul(T, T);
    return B.rem(Sq, B.constI(int64_t(C.ArraySize)));
  }

  void emitStraightLine() {
    unsigned N = 1 + Rng_.nextBelow(C.StatementsPerBlock);
    for (unsigned I = 0; I < N; ++I)
      emitStatement();
  }

  /// One region: straight-line code, an if, or a bounded loop, possibly
  /// nesting further regions.
  void emitRegion(unsigned Depth) {
    emitStraightLine();
    if (Depth >= C.MaxDepth)
      return;
    switch (Rng_.nextBelow(3)) {
    case 0: // plain block
      break;
    case 1: { // if / if-else
      if (Rng_.nextBool()) {
        auto H = B.ifCmp(CmpKind::LT, pickInt(), pickInt(), "rif");
        emitRegion(Depth + 1);
        B.endIf(H);
      } else {
        auto H = B.ifElseCmp(CmpKind::GE, pickInt(), pickInt(), "rife");
        emitRegion(Depth + 1);
        B.elseBranch(H);
        emitRegion(Depth + 1);
        B.endIf(H);
      }
      break;
    }
    case 2: { // bounded counter loop (fresh induction variable)
      VRegId Var = B.iReg("loop" + std::to_string(Depth));
      VRegId Limit = B.constI(C.LoopTrip);
      auto L = B.forLoop("rl" + std::to_string(Depth), Var, 0, Limit);
      emitRegion(Depth + 1);
      B.endDo(L);
      break;
    }
    }
  }

  KernelBuilder B;
  Rng Rng_;
  RandomProgramConfig C;
  uint32_t IntArr = 0, FltArr = 0;
  std::vector<VRegId> IntVars, FloatVars;
};

} // namespace

Function &ra::buildRandomProgram(Module &M, uint64_t Seed,
                                 const RandomProgramConfig &C) {
  Function &F = M.newFunction("random." + std::to_string(Seed));
  return ProgramGen(M, F, Seed, C).run();
}
