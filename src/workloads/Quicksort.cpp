//===- workloads/Quicksort.cpp - Wirth's non-recursive quicksort ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The Figure 6 study program: the non-recursive quicksort from Wirth's
// "Algorithms + Data Structures = Programs", with an explicit segment
// stack and smaller-partition-first iteration. All-integer code, so the
// quality of integer spill code shows directly in the running time —
// exactly why the paper uses it to study shrinking register files.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "workloads/KernelBuilder.h"

using namespace ra;

Function &ra::buildQuicksort(Module &M, uint32_t N) {
  uint32_t Data = M.newArray("data", N, RegClass::Int);
  uint32_t StkL = M.newArray("stkl", 64, RegClass::Int);
  uint32_t StkR = M.newArray("stkr", 64, RegClass::Int);
  Function &F = M.newFunction("QUICKSORT");
  KernelBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));

  VRegId IZero = B.constI(0, "izero");
  VRegId Two = B.constI(2, "two");
  VRegId S = B.iReg("s");
  VRegId L = B.iReg("l"), R = B.iReg("r");
  VRegId I = B.iReg("i"), J = B.iReg("j");

  // Array base addresses, register-resident for the whole routine as a
  // 1980s code generator would keep them (their value is zero in this
  // address-free IR; what matters is the register pressure and the
  // add-per-access, which the machine really paid).
  VRegId BaseD = B.constI(0, "base.data");
  VRegId BaseL = B.constI(0, "base.stkl");
  VRegId BaseR = B.constI(0, "base.stkr");
  auto DataAt = [&](VRegId Idx) { return B.add(BaseD, Idx); };
  auto StkLAt = [&](VRegId Idx) { return B.add(BaseL, Idx); };
  auto StkRAt = [&](VRegId Idx) { return B.add(BaseR, Idx); };

  // Push the whole range.
  B.movI(0, S);
  B.store(StkL, StkLAt(S), IZero);
  B.store(StkR, StkRAt(S), B.constI(int64_t(N) - 1, "nm1"));

  // Outer loop: pop a segment while the stack is non-empty.
  uint32_t OuterHead = B.newBlock("outer.head");
  uint32_t OuterBody = B.newBlock("outer.body");
  uint32_t Done = B.newBlock("done");
  B.jmp(OuterHead);
  B.setInsertPoint(OuterHead);
  B.br(CmpKind::GE, S, IZero, OuterBody, Done);

  B.setInsertPoint(OuterBody);
  B.load(StkL, StkLAt(S), L);
  B.load(StkR, StkRAt(S), R);
  B.addI(S, -1, S);

  // Partition loop: while (l < r) split the segment.
  uint32_t PartHead = B.newBlock("part.head");
  uint32_t PartBody = B.newBlock("part.body");
  B.jmp(PartHead);
  B.setInsertPoint(PartHead);
  B.br(CmpKind::LT, L, R, PartBody, OuterHead);

  B.setInsertPoint(PartBody);
  B.copy(L, I);
  B.copy(R, J);
  VRegId Mid = B.div(B.add(L, R), Two);
  VRegId Pivot = B.load(Data, DataAt(Mid), B.iReg("pivot"));

  // Scan pointers toward each other.
  uint32_t UpHead = B.newBlock("up.head");
  uint32_t UpInc = B.newBlock("up.inc");
  uint32_t DownHead = B.newBlock("down.head");
  uint32_t DownDec = B.newBlock("down.dec");
  uint32_t Check = B.newBlock("check");
  uint32_t Swap = B.newBlock("swap");
  uint32_t ScanExit = B.newBlock("scan.exit");

  B.jmp(UpHead);
  B.setInsertPoint(UpHead);
  VRegId Xi = B.load(Data, DataAt(I), B.iReg("xi"));
  B.br(CmpKind::LT, Xi, Pivot, UpInc, DownHead);
  B.setInsertPoint(UpInc);
  B.addI(I, 1, I);
  B.jmp(UpHead);

  B.setInsertPoint(DownHead);
  VRegId Xj = B.load(Data, DataAt(J), B.iReg("xj"));
  B.br(CmpKind::LT, Pivot, Xj, DownDec, Check);
  B.setInsertPoint(DownDec);
  B.addI(J, -1, J);
  B.jmp(DownHead);

  B.setInsertPoint(Check);
  B.br(CmpKind::LE, I, J, Swap, ScanExit);
  B.setInsertPoint(Swap);
  VRegId Ti = B.load(Data, DataAt(I), B.iReg("ti"));
  VRegId Tj = B.load(Data, DataAt(J), B.iReg("tj"));
  B.store(Data, DataAt(I), Tj);
  B.store(Data, DataAt(J), Ti);
  B.addI(I, 1, I);
  B.addI(J, -1, J);
  B.br(CmpKind::LE, I, J, UpHead, ScanExit);

  // Push the larger partition, iterate on the smaller one.
  B.setInsertPoint(ScanExit);
  VRegId DLeft = B.sub(J, L);
  VRegId DRight = B.sub(R, I);
  uint32_t LeftSmall = B.newBlock("left.small");
  uint32_t RightSmall = B.newBlock("right.small");
  B.br(CmpKind::LT, DLeft, DRight, LeftSmall, RightSmall);

  B.setInsertPoint(LeftSmall);
  {
    uint32_t PushR = B.newBlock("push.right");
    uint32_t AfterR = B.newBlock("after.right");
    B.br(CmpKind::LT, I, R, PushR, AfterR);
    B.setInsertPoint(PushR);
    B.addI(S, 1, S);
    B.store(StkL, StkLAt(S), I);
    B.store(StkR, StkRAt(S), R);
    B.jmp(AfterR);
    B.setInsertPoint(AfterR);
    B.copy(J, R);
    B.jmp(PartHead);
  }

  B.setInsertPoint(RightSmall);
  {
    uint32_t PushL = B.newBlock("push.left");
    uint32_t AfterL = B.newBlock("after.left");
    B.br(CmpKind::LT, L, J, PushL, AfterL);
    B.setInsertPoint(PushL);
    B.addI(S, 1, S);
    B.store(StkL, StkLAt(S), L);
    B.store(StkR, StkRAt(S), J);
    B.jmp(AfterL);
    B.setInsertPoint(AfterL);
    B.copy(I, L);
    B.jmp(PartHead);
  }

  B.setInsertPoint(Done);
  B.ret();
  return F;
}

void ra::initQuicksortMemory(const Module &M, MemoryImage &Mem) {
  uint32_t Data = M.findArray("data");
  assert(Data != ~0u && "quicksort module has no data array");
  std::vector<int64_t> &D = Mem.intArray(Data);
  // Deterministic LCG fill.
  uint64_t State = 0x2545F4914F6CDD1Dull;
  for (int64_t &V : D) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    V = int64_t(State >> 33) % 1000000;
  }
}
