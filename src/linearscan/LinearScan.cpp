//===- linearscan/LinearScan.cpp - Interval register walk -----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "linearscan/LinearScan.h"

#include "regalloc/InterferenceGraph.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>

using namespace ra;

namespace {

/// Walks the intervals of one register class over a file of K registers.
class ClassWalker {
public:
  ClassWalker(const std::vector<LiveInterval> &All, unsigned K,
              ScanResult &Out)
      : All(All), K(K), Out(Out) {}

  void run(RegClass RC) {
    // Start-ordered worklist of this class's non-empty intervals.
    std::vector<uint32_t> Order;
    for (uint32_t I = 0; I < All.size(); ++I)
      if (All[I].Class == RC && !All[I].empty())
        Order.push_back(I);
    std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
      if (All[A].start() != All[B].start())
        return All[A].start() < All[B].start();
      return All[A].Reg < All[B].Reg; // the paper's footnote-4 tiebreak
    });
    Out.LiveRanges += Order.size();

    for (uint32_t Cur : Order) {
      SlotIndex Pos = All[Cur].start();
      retire(Pos);
      int32_t Reg = pickFree(Cur);
      if (Reg < 0)
        Reg = evictOrSpill(Cur);
      if (Reg >= 0) {
        Out.ColorOf[All[Cur].Reg] = Reg;
        Active.push_back({Cur, uint32_t(Reg)});
      }
    }
  }

private:
  struct Assigned {
    uint32_t Interval;
    uint32_t Reg;
  };

  /// Drops assignments whose interval ended before \p Pos and moves the
  /// rest between the active (covers Pos) and inactive (in a hole at
  /// Pos) sets.
  void retire(SlotIndex Pos) {
    auto Sweep = [&](std::vector<Assigned> &From, std::vector<Assigned> &To,
                     bool WantCovered) {
      for (size_t I = 0; I < From.size();) {
        const LiveInterval &LI = All[From[I].Interval];
        if (LI.stop() <= Pos) {
          From[I] = From.back();
          From.pop_back();
        } else if (LI.covers(Pos) == WantCovered) {
          ++I;
        } else {
          To.push_back(From[I]);
          From[I] = From.back();
          From.pop_back();
        }
      }
    };
    Sweep(Active, Inactive, /*WantCovered=*/true);
    Sweep(Inactive, Active, /*WantCovered=*/false);
  }

  /// Lowest-numbered register not blocked for \p Cur: not held by any
  /// active interval, nor by an inactive interval \p Cur overlaps.
  int32_t pickFree(uint32_t Cur) {
    std::vector<bool> Blocked(K, false);
    for (const Assigned &A : Active)
      Blocked[A.Reg] = true;
    for (const Assigned &A : Inactive)
      if (!Blocked[A.Reg] && All[A.Interval].overlaps(All[Cur]))
        Blocked[A.Reg] = true;
    for (unsigned R = 0; R < K; ++R)
      if (!Blocked[R])
        return int32_t(R);
    return -1;
  }

  /// No register is free for \p Cur: either spill \p Cur, or evict every
  /// conflicting holder of the register whose conflicting holders are
  /// cheapest to spill — whichever side of the comparison costs less.
  /// Returns the register granted to \p Cur, or -1 when \p Cur spills.
  int32_t evictOrSpill(uint32_t Cur) {
    std::vector<double> Weight(K, 0);
    for (const Assigned &A : Active)
      Weight[A.Reg] += All[A.Interval].Cost;
    for (const Assigned &A : Inactive)
      if (All[A.Interval].overlaps(All[Cur]))
        Weight[A.Reg] += All[A.Interval].Cost;

    unsigned Best = 0;
    for (unsigned R = 1; R < K; ++R)
      if (Weight[R] < Weight[Best])
        Best = R;

    if (All[Cur].Cost <= Weight[Best]) {
      if (All[Cur].Cost >= InterferenceGraph::InfiniteCost)
        return breakProtectedDeadlock(Cur);
      spill(Cur);
      return -1;
    }
    evictRegister(Best, Cur);
    return int32_t(Best);
  }

  /// Spills every holder of \p Reg that conflicts with \p Cur, freeing
  /// the register for it.
  void evictRegister(unsigned Reg, uint32_t Cur) {
    auto EvictFrom = [&](std::vector<Assigned> &Set) {
      for (size_t I = 0; I < Set.size();) {
        if (Set[I].Reg == Reg &&
            All[Set[I].Interval].overlaps(All[Cur])) {
          spill(Set[I].Interval);
          Set[I] = Set.back();
          Set.pop_back();
        } else {
          ++I;
        }
      }
    };
    EvictFrom(Active);
    EvictFrom(Inactive);
  }

  /// \p Cur is protected (infinite cost — a spill temporary or a range
  /// coalescing merged with one) and so is some holder of every
  /// register. Something protected has to be re-spilled, and the choice
  /// decides convergence: re-spilling a minimal temporary regenerates
  /// byte-identical load/store code and the conflict forever, while
  /// re-spilling a *wide* protected interval — a coalesce-merged range
  /// whose occurrences span many instructions — rewrites it into
  /// minimal per-occurrence temporaries and frees its register across
  /// the whole span. Evict the register holding the widest conflicting
  /// interval, unless \p Cur itself is at least as wide (then spilling
  /// \p Cur is the productive move). The decision depends only on
  /// interval content (widest extent, then lowest register index), not
  /// on the sets' internal ordering, so results stay deterministic.
  int32_t breakProtectedDeadlock(uint32_t Cur) {
    const SlotIndex CurExtent = All[Cur].stop() - All[Cur].start();
    bool Found = false;
    unsigned BestReg = 0;
    SlotIndex BestExtent = 0;
    auto Consider = [&](const Assigned &A) {
      if (!All[A.Interval].overlaps(All[Cur]))
        return;
      SlotIndex E = All[A.Interval].stop() - All[A.Interval].start();
      if (!Found || E > BestExtent ||
          (E == BestExtent && A.Reg < BestReg)) {
        Found = true;
        BestExtent = E;
        BestReg = A.Reg;
      }
    };
    for (const Assigned &A : Active)
      Consider(A);
    for (const Assigned &A : Inactive)
      Consider(A);

    if (!Found || BestExtent <= CurExtent) {
      spill(Cur);
      return -1;
    }
    evictRegister(BestReg, Cur);
    return int32_t(BestReg);
  }

  void spill(uint32_t Interval) {
    const LiveInterval &LI = All[Interval];
    Out.ColorOf[LI.Reg] = -1;
    Out.Spilled.push_back(LI.Reg);
    Out.SpilledCost += LI.Cost;
  }

  const std::vector<LiveInterval> &All;
  unsigned K;
  ScanResult &Out;
  std::vector<Assigned> Active, Inactive;
};

} // namespace

ScanResult ra::scanIntervals(const LiveIntervals &LI,
                             const MachineInfo &Machine) {
  ScanResult Out;
  Out.ColorOf.assign(LI.numIntervals(), -1);
  Timer Walk;
  Walk.start();
  RA_TRACE_SPAN("IntervalWalk", "linearscan", [&] {
    return "intervals=" + std::to_string(LI.numIntervals());
  });
  for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
    RegClass RC = RegClass(Cls);
    ClassWalker W(LI.intervals(), Machine.numRegs(RC), Out);
    W.run(RC);
  }
  Walk.stop();
  Out.WalkSeconds = Walk.seconds();
  return Out;
}
