//===- linearscan/LinearScan.cpp - Interval register walk -----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Second-chance binpacking over live-interval pieces. The walk state is
// a start-ordered priority queue of pieces; a piece that cannot be
// placed is split at the conflict point and its tail re-enqueued, so a
// live range may end up holding several registers over disjoint slot
// ranges (emitted as PieceAssignment rows) or holding registers over a
// head and memory over a suffix (emitted as a nonzero SpillFromSlot).
//
// Two invariants keep the materialization simple and correct:
//
//  * suffix memory — a spilled region is always a suffix of its range's
//    lifetime. The walk maintains this because a range has at most one
//    pending (unassigned) piece at any time: truncating a holder whose
//    parent already has a pending tail merges the two pending pieces,
//    and fully spilling a holder cancels the pending tail into the
//    spill. A committed later piece can never be stranded behind a
//    spill: eviction requires overlap with the current position, and
//    every later piece starts after it — still pending, so cancelable.
//
//  * instruction-aligned cuts — split points are rounded down to even
//    slots, so an instruction's read and write slots always land in the
//    same piece and inter-piece moves happen only between instructions.
//
// Termination: each re-enqueued tail starts strictly later than the cut
// that produced it, and split decisions per range are bounded by
// ScanOptions::MaxSplitsPerRange (the bound falls back to suffix
// spilling), so the queue drains.
//
//===----------------------------------------------------------------------===//

#include "linearscan/LinearScan.h"

#include "regalloc/InterferenceGraph.h"
#include "support/Budget.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <deque>
#include <queue>

using namespace ra;

namespace {

/// Concatenates two interval fragments of the same live range, \p A
/// entirely before \p B, preserving the sorted/disjoint/non-touching
/// segment invariant (touching boundary segments fuse).
LiveInterval concatFragments(LiveInterval A, const LiveInterval &B) {
  if (A.empty())
    return B;
  for (const IntervalSegment &Seg : B.Segments) {
    assert(A.Segments.back().To <= Seg.From && "fragments out of order");
    if (A.Segments.back().To == Seg.From)
      A.Segments.back().To = Seg.To;
    else
      A.Segments.push_back(Seg);
  }
  return A;
}

/// Walks the pieces of one register class over a file of K registers.
class ClassWalker {
public:
  ClassWalker(const std::vector<LiveInterval> &All, unsigned K,
              const ScanOptions &Opts, ScanResult &Out)
      : All(All), K(K), Opts(Opts), Out(Out) {
    PendingOf.assign(All.size(), -1);
    SpillIdxOf.assign(All.size(), -1);
    SplitCount.assign(All.size(), 0);
  }

  void run(RegClass RC) {
    unsigned Seeded = 0;
    for (uint32_t I = 0; I < All.size(); ++I)
      if (All[I].Class == RC && !All[I].empty()) {
        uint32_t Idx = uint32_t(Pieces.size());
        Pieces.push_back({&All[I], All[I].Reg, /*Stage=*/0,
                          /*Dead=*/false, /*AssignedReg=*/-1});
        Queue.push({All[I].start(), All[I].Reg, Idx});
        ++Seeded;
      }
    Out.LiveRanges += Seeded;

    while (!Queue.empty()) {
      if (Opts.Governor && !Opts.Governor->checkpoint())
        return; // over budget: abandon the walk, caller discards Out
      QueueEnt Q = Queue.top();
      Queue.pop();
      uint32_t Cur = Q.PieceIdx;
      if (Pieces[Cur].Dead)
        continue; // canceled by a merge or a holder spill
      if (PendingOf[Pieces[Cur].Parent] == int32_t(Cur))
        PendingOf[Pieces[Cur].Parent] = -1;

      SlotIndex Pos = Pieces[Cur].LI->start();
      retire(Pos);
      int32_t Reg = pickFree(Cur);
      if (Reg < 0)
        Reg = trySecondChance(Cur);
      if (Reg < 0) {
        // Re-enqueued tails never evict — that is what bounds eviction
        // cascades — unless protected (infinite cost), where the
        // deadlock-break logic inside evictOrSpill is the convergence
        // safety valve exactly as for original intervals.
        if (Pieces[Cur].Stage == 0 ||
            Pieces[Cur].LI->Cost >= InterferenceGraph::InfiniteCost)
          Reg = evictOrSpill(Cur);
        else
          spillCurPiece(Cur);
      }
      if (Reg >= 0) {
        Pieces[Cur].AssignedReg = Reg;
        Active.push_back({Cur, uint32_t(Reg)});
      }
    }
    emit();
  }

private:
  struct Piece {
    const LiveInterval *LI; ///< This piece's slots (into All or Arena).
    VRegId Parent;          ///< The live range the piece belongs to.
    uint8_t Stage;          ///< 0 = original interval, n = split n deep.
    bool Dead;              ///< Canceled / replaced / spilled.
    int32_t AssignedReg;    ///< Committed register, or -1.
  };

  struct Assigned {
    uint32_t PieceIdx;
    uint32_t Reg;
  };

  struct QueueEnt {
    SlotIndex Start;
    VRegId Parent;
    uint32_t PieceIdx;
  };
  /// Min-heap on (Start, Parent, PieceIdx) — the paper's footnote-4
  /// start-order tiebreak, extended with the piece index so requeued
  /// tails stay deterministic.
  struct QueueCmp {
    bool operator()(const QueueEnt &A, const QueueEnt &B) const {
      if (A.Start != B.Start)
        return A.Start > B.Start;
      if (A.Parent != B.Parent)
        return A.Parent > B.Parent;
      return A.PieceIdx > B.PieceIdx;
    }
  };

  const LiveInterval &li(uint32_t PieceIdx) const {
    return *Pieces[PieceIdx].LI;
  }

  /// Drops assignments whose piece ended before \p Pos and re-partitions
  /// the rest between the active (covers Pos) and inactive (in a hole
  /// at Pos) sets. Single merged sweep: every entry is classified
  /// exactly once per position.
  void retire(SlotIndex Pos) {
    Scratch.clear();
    Scratch.reserve(Active.size() + Inactive.size());
    Scratch.insert(Scratch.end(), Active.begin(), Active.end());
    Scratch.insert(Scratch.end(), Inactive.begin(), Inactive.end());
    Active.clear();
    Inactive.clear();
    for (const Assigned &A : Scratch) {
      const LiveInterval &LI = li(A.PieceIdx);
      if (LI.stop() <= Pos)
        continue; // retired for good; its record is already on the piece
      (LI.covers(Pos) ? Active : Inactive).push_back(A);
    }
  }

  /// Lowest-numbered register not blocked for \p Cur: not held by any
  /// active piece, nor by an inactive piece \p Cur overlaps.
  int32_t pickFree(uint32_t Cur) {
    Blocked.assign(K, false);
    for (const Assigned &A : Active)
      Blocked[A.Reg] = true;
    for (const Assigned &A : Inactive)
      if (!Blocked[A.Reg] && li(A.PieceIdx).overlaps(li(Cur)))
        Blocked[A.Reg] = true;
    for (unsigned R = 0; R < K; ++R)
      if (!Blocked[R])
        return int32_t(R);
    return -1;
  }

  /// Second chance: a register whose conflicts with \p Cur all begin
  /// strictly after Cur's start can hold Cur's head up to the first
  /// conflict. Picks the register maximizing that conflict-free prefix
  /// (ties toward the lowest index), splits Cur there, and re-enqueues
  /// the tail. Returns the register for the (shrunk) head, or -1.
  int32_t trySecondChance(uint32_t Cur) {
    if (!Opts.SplitIntervals ||
        SplitCount[Pieces[Cur].Parent] >= Opts.MaxSplitsPerRange)
      return -1;
    const SlotIndex Pos = li(Cur).start();
    constexpr SlotIndex NoHolder = ~SlotIndex(0);
    FirstConflict.assign(K, NoHolder);
    for (const Assigned &A : Active)
      FirstConflict[A.Reg] = Pos; // covers Pos, so conflicts immediately
    for (const Assigned &A : Inactive)
      if (li(A.PieceIdx).overlaps(li(Cur)))
        FirstConflict[A.Reg] = std::min(
            FirstConflict[A.Reg], li(A.PieceIdx).firstOverlapSlot(li(Cur)));

    int32_t BestReg = -1;
    SlotIndex BestCut = Pos;
    for (unsigned R = 0; R < K; ++R) {
      if (FirstConflict[R] == NoHolder)
        continue; // free register: pickFree would have taken it
      SlotIndex Cut = FirstConflict[R] & ~SlotIndex(1); // instruction-align
      if (Cut > BestCut) {
        BestReg = int32_t(R);
        BestCut = Cut;
      }
    }
    if (BestReg < 0)
      return -1;

    auto [Head, Tail] = li(Cur).splitAt(BestCut);
    if (Head.empty() || Tail.empty())
      return -1;
    Arena.push_back(std::move(Head));
    Pieces[Cur].LI = &Arena.back();
    ++SplitCount[Pieces[Cur].Parent];
    ++Out.Splits;
    makeTailPiece(Pieces[Cur].Parent, std::move(Tail),
                  unsigned(Pieces[Cur].Stage) + 1);
    return BestReg;
  }

  /// Spill-cost density of the piece's live range: estimated spill cost
  /// per covered slot. Raw cost makes one long expensive holder defeat
  /// an arbitrary stream of short cheap intervals one comparison at a
  /// time — each spilling whole — while a density comparison lets a
  /// short hot interval displace a long cold one, which splitting then
  /// truncates instead of destroying. Density is a property of the
  /// parent range (cost and coverage both live there), so every piece
  /// of a range carries the same density.
  double density(uint32_t PieceIdx) const {
    const LiveInterval &Parent = All[Pieces[PieceIdx].Parent];
    return Parent.Cost / double(std::max(1u, Parent.coveredSlots()));
  }

  /// No register is free for \p Cur even with a second chance: either
  /// spill \p Cur, or take the register whose conflicting holders are
  /// cheapest — with splitting, truncating them at the conflict instead
  /// of spilling their whole lifetimes. Returns the register granted to
  /// \p Cur, or -1 when \p Cur spills.
  ///
  /// The comparison metric differs by mode. Without splitting, eviction
  /// destroys every conflicting holder outright, so the price of a
  /// register is the *sum* of its holders' whole-range costs (the
  /// original allocator's rule, preserved as the regression oracle).
  /// With splitting, eviction only truncates, so the comparison is the
  /// spill-cost *density* of the most valuable conflicting holder: the
  /// current piece wins the register iff its range generates more spill
  /// cost per slot than anything it displaces.
  int32_t evictOrSpill(uint32_t Cur) {
    const bool Split = Opts.SplitIntervals;
    Weight.assign(K, 0);
    auto Price = [&](uint32_t P) {
      return Split ? density(P) : li(P).Cost;
    };
    auto Add = [&](double &Slot, double V) {
      Slot = Split ? std::max(Slot, V) : Slot + V;
    };
    for (const Assigned &A : Active)
      Add(Weight[A.Reg], Price(A.PieceIdx));
    for (const Assigned &A : Inactive)
      if (li(A.PieceIdx).overlaps(li(Cur)))
        Add(Weight[A.Reg], Price(A.PieceIdx));

    unsigned Best = 0;
    for (unsigned R = 1; R < K; ++R)
      if (Weight[R] < Weight[Best])
        Best = R;

    if (Price(Cur) <= Weight[Best]) {
      if (li(Cur).Cost >= InterferenceGraph::InfiniteCost)
        return breakProtectedDeadlock(Cur);
      spillCurPiece(Cur);
      return -1;
    }
    evictRegister(Best, Cur, /*AllowSplit=*/true);
    return int32_t(Best);
  }

  /// Displaces every holder of \p Reg that conflicts with \p Cur. With
  /// \p AllowSplit (and splitting on), a holder is truncated at its
  /// first conflict with Cur — the head keeps the register over the
  /// slots it already won — and the tail re-enqueued; otherwise (or at
  /// the split bound) the holder's piece spills outright.
  void evictRegister(unsigned Reg, uint32_t Cur, bool AllowSplit) {
    auto EvictFrom = [&](std::vector<Assigned> &Set) {
      for (size_t I = 0; I < Set.size();) {
        uint32_t H = Set[I].PieceIdx;
        if (Set[I].Reg != Reg || !li(H).overlaps(li(Cur))) {
          ++I;
          continue;
        }
        bool KeepInSet = false;
        if (AllowSplit && Opts.SplitIntervals &&
            SpillIdxOf[Pieces[H].Parent] < 0 &&
            SplitCount[Pieces[H].Parent] < Opts.MaxSplitsPerRange)
          KeepInSet = truncateHolder(H, Cur);
        else
          fullSpillHolder(H);
        if (KeepInSet) {
          ++I;
        } else {
          Set[I] = Set.back();
          Set.pop_back();
        }
      }
    };
    EvictFrom(Active);
    EvictFrom(Inactive);
  }

  /// Cuts evicted holder \p H at its first conflict with \p Cur. The
  /// head keeps H's register (it never overlaps Cur); the tail merges
  /// with any pending piece of the same range and re-enqueues. Returns
  /// true when a non-empty head remains — it stays in its set, still
  /// blocking the register over its slots for later pieces.
  bool truncateHolder(uint32_t H, uint32_t Cur) {
    SlotIndex Cut = li(H).firstOverlapSlot(li(Cur)) & ~SlotIndex(1);
    auto [Head, Tail] = li(H).splitAt(Cut);
    assert(!Tail.empty() && "eviction cut past the holder's end");
    VRegId Par = Pieces[H].Parent;
    unsigned Stage = unsigned(Pieces[H].Stage) + 1;
    ++SplitCount[Par];
    ++Out.Splits;
    if (Head.empty()) {
      Pieces[H].Dead = true; // whole piece re-enqueues
      makeTailPiece(Par, std::move(Tail), Stage);
      return false;
    }
    Arena.push_back(std::move(Head));
    Pieces[H].LI = &Arena.back();
    makeTailPiece(Par, std::move(Tail), Stage);
    return true;
  }

  /// Spills holder piece \p H outright: its slot range goes to memory
  /// from its start, and any pending tail of the same range folds into
  /// the spill (the tail's slots are inside the spilled suffix).
  void fullSpillHolder(uint32_t H) {
    VRegId Par = Pieces[H].Parent;
    SlotIndex From = Pieces[H].Stage == 0 ? 0 : li(H).start();
    double Cost = li(H).Cost;
    Pieces[H].Dead = true;
    if (PendingOf[Par] >= 0) {
      Pieces[PendingOf[Par]].Dead = true;
      PendingOf[Par] = -1;
    }
    spillParent(Par, From, Cost);
  }

  /// \p Cur is protected (infinite cost — a spill temporary or a range
  /// coalescing merged with one) and so is some holder of every
  /// register. Something protected has to be re-spilled, and the choice
  /// decides convergence: re-spilling a minimal temporary regenerates
  /// byte-identical load/store code and the conflict forever, while
  /// re-spilling a *wide* protected interval — a coalesce-merged range
  /// whose occurrences span many instructions — rewrites it into
  /// minimal per-occurrence temporaries and frees its register across
  /// the whole span. Evict the register holding the widest conflicting
  /// piece, unless \p Cur itself is at least as wide (then spilling
  /// \p Cur is the productive move). Deadlock eviction always spills
  /// outright — re-enqueueing a protected tail could regenerate the
  /// conflict — and the decision depends only on piece content (widest
  /// extent, then lowest register index), not on the sets' internal
  /// ordering, so results stay deterministic.
  int32_t breakProtectedDeadlock(uint32_t Cur) {
    const SlotIndex CurExtent = li(Cur).stop() - li(Cur).start();
    bool Found = false;
    unsigned BestReg = 0;
    SlotIndex BestExtent = 0;
    auto Consider = [&](const Assigned &A) {
      if (!li(A.PieceIdx).overlaps(li(Cur)))
        return;
      SlotIndex E = li(A.PieceIdx).stop() - li(A.PieceIdx).start();
      if (!Found || E > BestExtent || (E == BestExtent && A.Reg < BestReg)) {
        Found = true;
        BestExtent = E;
        BestReg = A.Reg;
      }
    };
    for (const Assigned &A : Active)
      Consider(A);
    for (const Assigned &A : Inactive)
      Consider(A);

    if (!Found || BestExtent <= CurExtent) {
      spillCurPiece(Cur);
      return -1;
    }
    evictRegister(BestReg, Cur, /*AllowSplit=*/false);
    return int32_t(BestReg);
  }

  /// The current piece loses its register fight: its slots spill. An
  /// original interval (stage 0) spills its whole lifetime; a split
  /// tail spills only from its own start — the committed head pieces
  /// keep their registers.
  void spillCurPiece(uint32_t Cur) {
    SlotIndex From = Pieces[Cur].Stage == 0 ? 0 : li(Cur).start();
    double Cost = li(Cur).Cost;
    Pieces[Cur].Dead = true;
    spillParent(Pieces[Cur].Parent, From, Cost);
  }

  /// Records (or widens) the spill decision for live range \p V. Each
  /// range appears once in Out.Spilled, in first-decision order; a
  /// later spill of an earlier piece only moves the suffix start down.
  void spillParent(VRegId V, SlotIndex From, double Cost) {
    if (SpillIdxOf[V] < 0) {
      SpillIdxOf[V] = int32_t(Out.Spilled.size());
      Out.Spilled.push_back(V);
      Out.SpillFromSlot.push_back(From);
      Out.SpilledCost += Cost;
    } else if (From < Out.SpillFromSlot[SpillIdxOf[V]]) {
      Out.SpillFromSlot[SpillIdxOf[V]] = From;
    }
  }

  /// Creates the pending piece for range \p Par from fragment \p Tail,
  /// merging with an already-pending piece (a range has at most one —
  /// the suffix-memory invariant depends on it) and enqueueing it.
  void makeTailPiece(VRegId Par, LiveInterval Tail, unsigned Stage) {
    if (PendingOf[Par] >= 0) {
      Piece &Pend = Pieces[PendingOf[Par]];
      Tail = concatFragments(std::move(Tail), *Pend.LI);
      Stage = std::max(Stage, unsigned(Pend.Stage));
      Pend.Dead = true;
      PendingOf[Par] = -1;
    }
    Arena.push_back(std::move(Tail));
    uint32_t Idx = uint32_t(Pieces.size());
    Pieces.push_back({&Arena.back(), Par,
                      uint8_t(std::min(Stage, 255u)), /*Dead=*/false,
                      /*AssignedReg=*/-1});
    Queue.push({Arena.back().start(), Par, Idx});
    PendingOf[Par] = int32_t(Idx);
  }

  /// Publishes the walk's results: per-range colors, and for ranges
  /// whose pieces landed on different registers, the per-slot
  /// assignment table (instruction-aligned, adjacent same-register
  /// pieces merged away).
  void emit() {
    std::vector<uint32_t> Order;
    for (uint32_t I = 0; I < Pieces.size(); ++I)
      if (!Pieces[I].Dead && Pieces[I].AssignedReg >= 0 &&
          SpillIdxOf[Pieces[I].Parent] < 0)
        Order.push_back(I);
    std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
      if (Pieces[A].Parent != Pieces[B].Parent)
        return Pieces[A].Parent < Pieces[B].Parent;
      return li(A).start() < li(B).start();
    });

    std::vector<PieceAssignment> Merged;
    for (size_t I = 0; I < Order.size();) {
      VRegId Par = Pieces[Order[I]].Parent;
      Merged.clear();
      for (; I < Order.size() && Pieces[Order[I]].Parent == Par; ++I) {
        const LiveInterval &LI = li(Order[I]);
        SlotIndex From = LI.start() & ~SlotIndex(1);
        SlotIndex To = (LI.stop() + 1) & ~SlotIndex(1);
        uint32_t Phys = uint32_t(Pieces[Order[I]].AssignedReg);
        if (!Merged.empty() && Merged.back().PhysReg == Phys)
          Merged.back().To = To;
        else
          Merged.push_back({Par, From, To, Phys});
      }
      Out.ColorOf[Par] = int32_t(Merged.front().PhysReg);
      if (Merged.size() > 1) {
        ++Out.SplitRanges;
        for (const PieceAssignment &P : Merged)
          Out.Pieces.push_back(P);
      }
    }
  }

  const std::vector<LiveInterval> &All;
  unsigned K;
  const ScanOptions &Opts;
  ScanResult &Out;

  std::deque<LiveInterval> Arena; ///< Split fragments (stable addresses).
  std::vector<Piece> Pieces;
  std::priority_queue<QueueEnt, std::vector<QueueEnt>, QueueCmp> Queue;
  std::vector<Assigned> Active, Inactive;

  std::vector<int32_t> PendingOf;  ///< Pending piece per range, or -1.
  std::vector<int32_t> SpillIdxOf; ///< Index into Out.Spilled, or -1.
  std::vector<unsigned> SplitCount;

  // Hot-loop scratch, hoisted out of pickFree/evictOrSpill/retire so
  // the walk allocates nothing per piece.
  std::vector<bool> Blocked;
  std::vector<double> Weight;
  std::vector<SlotIndex> FirstConflict;
  std::vector<Assigned> Scratch;
};

} // namespace

ScanResult ra::scanIntervals(const LiveIntervals &LI,
                             const MachineInfo &Machine,
                             const ScanOptions &Opts) {
  ScanResult Out;
  Out.ColorOf.assign(LI.numIntervals(), -1);
  Timer Walk;
  Walk.start();
  RA_TRACE_SPAN("IntervalWalk", "linearscan", [&] {
    return "intervals=" + std::to_string(LI.numIntervals());
  });
  for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
    RegClass RC = RegClass(Cls);
    ClassWalker W(LI.intervals(), Machine.numRegs(RC), Opts, Out);
    W.run(RC);
  }
  // The classes interleave vreg ids; consumers (audit, simulator) want
  // the table sorted by (Reg, From).
  std::sort(Out.Pieces.begin(), Out.Pieces.end(),
            [](const PieceAssignment &A, const PieceAssignment &B) {
              if (A.Reg != B.Reg)
                return A.Reg < B.Reg;
              return A.From < B.From;
            });
  Walk.stop();
  Out.WalkSeconds = Walk.seconds();
  return Out;
}
