//===- linearscan/LinearScanAlloc.cpp - Linear-scan driver ----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The linear-scan analogue of Allocator.cpp's runColoringPasses: the
// same renumber/coalesce/spill-cost front end and the same spill-code
// back end, with the build-simplify-select middle replaced by interval
// construction plus one start-ordered walk. Because spill temporaries
// carry an infinite cost estimate, the walk never evicts them, and —
// as in the coloring backends — the worst-case pressure after spilling
// everything is the operand count of one instruction, so the cycle
// converges for every register file the tools accept.
//
//===----------------------------------------------------------------------===//

#include "linearscan/LinearScanAlloc.h"

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/Renumber.h"
#include "linearscan/LinearScan.h"
#include "regalloc/SpillCost.h"
#include "support/Budget.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <chrono>
#include <thread>

using namespace ra;

namespace {

/// Copies a register across the first pair of overlapping same-class
/// colored intervals (or, when no interval overlaps another, pushes one
/// assignment outside the register file). The audit must catch either —
/// the linear-scan twin of the coloring backends' fault injection.
void injectMiscoloring(const LiveIntervals &LI, const MachineInfo &Machine,
                       AllocationResult &Result) {
  const std::vector<LiveInterval> &All = LI.intervals();
  for (uint32_t A = 0; A < All.size(); ++A) {
    if (All[A].empty() || Result.ColorOf[All[A].Reg] < 0)
      continue;
    for (uint32_t B = A + 1; B < All.size(); ++B) {
      if (All[B].Class != All[A].Class || All[B].empty() ||
          Result.ColorOf[All[B].Reg] < 0)
        continue;
      if (All[A].overlaps(All[B])) {
        Result.ColorOf[All[A].Reg] = Result.ColorOf[All[B].Reg];
        return;
      }
    }
  }
  for (const LiveInterval &I : All)
    if (!I.empty() && Result.ColorOf[I.Reg] >= 0) {
      Result.ColorOf[I.Reg] = int32_t(Machine.numRegs(I.Class));
      return;
    }
}

/// One metrics row for interval \p I. Linear scan never builds the
/// interference graph, so Degree is 0 and CostPerDegree follows the
/// table's degree-0 convention (== Cost).
RangeMetrics intervalRow(const Function &F, const LiveInterval &I,
                         unsigned Pass, const std::vector<double> &Area,
                         const std::vector<unsigned> &DepthOf,
                         RangeMetrics::Decision D, int32_t Color) {
  RangeMetrics RM;
  RM.Name = F.vreg(I.Reg).Name;
  RM.Pass = Pass;
  RM.Class = I.Class;
  RM.Degree = 0;
  RM.Area = Area[I.Reg];
  RM.Cost = I.Cost;
  RM.CostPerDegree = I.Cost;
  RM.LoopDepth = DepthOf[I.Reg];
  RM.D = D;
  RM.Color = Color;
  return RM;
}

} // namespace

namespace {

/// Renders a tripped budget as this backend run's Failed result (the
/// linear-scan twin of the helper in Allocator.cpp). The IR is valid —
/// loops back out only at whole-unit boundaries — so the ladder can
/// still run spill-everything on the function.
AllocationResult overBudget(AllocationResult Result, Budget &Gov,
                            unsigned Pass) {
  Result.Success = false;
  Result.Outcome = AllocOutcome::Failed;
  Status S = Gov.status();
  S.addContext("pass " + std::to_string(Pass));
  Result.Diag = std::move(S);
  Result.ColorOf.clear();
  Result.Pieces.clear();
  return Result;
}

} // namespace

AllocationResult ra::runLinearScanPasses(Function &F,
                                         const AllocatorConfig &C,
                                         const CFG &G, const LoopInfo &Loops,
                                         Budget *Gov) {
  AllocationResult Result;
  Result.Machine = C.Machine;

  for (unsigned Pass = 0; Pass < C.MaxPasses; ++Pass) {
    PassRecord Rec;
    RA_TRACE_SPAN("Pass", "linearscan",
                  [&] { return "pass=" + std::to_string(Pass); });
    if (C.FaultInject.SlowPhaseMicros)
      std::this_thread::sleep_for(
          std::chrono::microseconds(C.FaultInject.SlowPhaseMicros));
    if (Gov && Gov->expired())
      return overBudget(std::move(Result), *Gov, Pass);

    //===----------------------------------------------------------===//
    // Build: renumber, coalesce, number slots, intervals, costs.
    //===----------------------------------------------------------===//
    Timer BuildTimer;
    RA_TRACE_SPAN_NAMED(BuildSpan, "Build", "linearscan");
    BuildTimer.start();
    {
      RA_TRACE_SPAN("Renumber", "linearscan");
      renumberLiveRanges(F, G);
    }
    if (C.Coalesce) {
      CoalesceStats CS = coalesceAll(F, G, C.Coalescing, C.Machine, Gov);
      Result.Stats.CopiesCoalesced += CS.CopiesRemoved;
      if (C.CollectMetrics)
        for (const CoalescedCopy &CC : CS.Merges) {
          RangeMetrics RM;
          RM.Name = CC.Merged;
          RM.Pass = Pass;
          RM.Class = CC.Class;
          RM.D = RangeMetrics::Decision::Coalesced;
          RM.CoalescedInto = CC.Into;
          Result.Metrics.push_back(std::move(RM));
        }
      if (CS.CopiesRemoved != 0)
        renumberLiveRanges(F, G); // compact ids merged away
    }
    Liveness LV = Liveness::compute(F, G);
    InstrNumbering Num = InstrNumbering::compute(F);
    LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
    std::vector<double> Costs = computeSpillCosts(F, Loops, C.Costs);
    LI.setCosts(Costs);
    std::vector<double> Area;
    std::vector<unsigned> DepthOf;
    if (C.CollectMetrics)
      computeAreaAndDepth(F, Loops, LV, Area, DepthOf);
    BuildTimer.stop();
    Rec.BuildSeconds = BuildTimer.seconds();
    BuildSpan.close();
    if (Gov && Gov->expired()) {
      Result.Stats.Passes.push_back(std::move(Rec));
      return overBudget(std::move(Result), *Gov, Pass);
    }

    //===----------------------------------------------------------===//
    // Scan: one start-ordered walk decides every interval. The walk
    // time lands in the record's select column (the decision phase);
    // linear scan has no simplify analogue.
    //===----------------------------------------------------------===//
    ScanOptions SO;
    SO.SplitIntervals = C.SplitIntervals;
    SO.Governor = Gov;
    ScanResult Scan = scanIntervals(LI, C.Machine, SO);
    if (Gov && Gov->expired()) {
      // The walk was abandoned mid-queue; its spill set is partial.
      Result.Stats.Passes.push_back(std::move(Rec));
      return overBudget(std::move(Result), *Gov, Pass);
    }
    Rec.LiveRanges = Scan.LiveRanges;
    Rec.SelectSeconds = Scan.WalkSeconds;
    Rec.SpilledLiveRanges = Scan.Spilled.size();
    Rec.SpilledCost = Scan.SpilledCost;
    Rec.SplitLiveRanges = Scan.SplitRanges;
    Rec.SplitDecisions = Scan.Splits;
    for (VRegId R : Scan.Spilled)
      Rec.SpilledNames.push_back(F.vreg(R).Name);
    if (C.CollectMetrics)
      for (VRegId R : Scan.Spilled)
        Result.Metrics.push_back(
            intervalRow(F, LI.interval(R), Pass, Area, DepthOf,
                        RangeMetrics::Decision::Spilled, /*Color=*/-1));

    if (Scan.success()) {
      Result.ColorOf = std::move(Scan.ColorOf);
      Result.Pieces = std::move(Scan.Pieces);
      if (C.CollectMetrics) {
        // Which vregs committed to several registers (Split rows).
        std::vector<bool> IsSplit(F.numVRegs(), false);
        for (const PieceAssignment &P : Result.Pieces)
          IsSplit[P.Reg] = true;
        for (const LiveInterval &I : LI.intervals())
          if (!I.empty())
            Result.Metrics.push_back(intervalRow(
                F, I, Pass, Area, DepthOf,
                IsSplit[I.Reg] ? RangeMetrics::Decision::Split
                               : RangeMetrics::Decision::Colored,
                Result.ColorOf[I.Reg]));
      }
      if (C.FaultInject.Miscolor)
        injectMiscoloring(LI, C.Machine, Result);
      Result.Stats.Passes.push_back(std::move(Rec));
      Result.Success = true;
      Result.Outcome = AllocOutcome::Converged;
      return Result;
    }

    //===----------------------------------------------------------===//
    // Spill: same inserter as the coloring backends — suffix-aware,
    // so a range whose head already won registers only spills the
    // losing tail — then rescan.
    //===----------------------------------------------------------===//
    std::vector<SpillRequest> Requests;
    Requests.reserve(Scan.Spilled.size());
    for (size_t I = 0; I < Scan.Spilled.size(); ++I)
      Requests.push_back({Scan.Spilled[I], Scan.SpillFromSlot[I]});
    Timer SpillTimer;
    SpillTimer.start();
    SpillCodeStats SC = insertSpillCode(F, Requests, C.Rematerialize);
    SpillTimer.stop();
    Rec.SpillSeconds = SpillTimer.seconds();
    Result.Stats.SpillCode.Loads += SC.Loads;
    Result.Stats.SpillCode.Stores += SC.Stores;
    Result.Stats.SpillCode.Remats += SC.Remats;
    Result.Stats.Passes.push_back(std::move(Rec));
  }

  Result.Success = false;
  Result.Outcome = AllocOutcome::Failed;
  Result.Diag = Status::error(StatusCode::NonConvergence,
                              "no linear-scan allocation after " +
                                  std::to_string(C.MaxPasses) + " passes");
  return Result;
}
