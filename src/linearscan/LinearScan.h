//===- linearscan/LinearScan.h - Interval register walk --------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One pass of linear-scan allocation over live intervals: interval
/// *pieces* are drawn from a start-ordered priority queue; each is
/// given a free register when one exists, and otherwise the walk
/// chooses between three escapes, cheapest damage first:
///
///  * second-chance split — if some register's conflicts all begin
///    strictly after the piece's start, take that register for the head
///    (maximizing the conflict-free prefix) and re-enqueue the tail as
///    a new piece carrying the parent's vreg and cost;
///  * eviction — when the current piece's cost beats the cheapest
///    register's holders, the holders are *truncated* at the current
///    position (their already-scanned heads keep their registers) and
///    their tails re-enqueued, instead of spilling their whole
///    lifetimes;
///  * spill — the losing piece's slot range goes to memory. Because a
///    piece is always a suffix of its parent's unassigned remainder,
///    spills are "from slot X to the end": the head that already won
///    registers keeps them, and only the part that still loses spills.
///
/// Re-enqueued tails (stage >= 1) may take free registers or split
/// further but never evict — each requeue strictly advances the start
/// position and per-range splits are bounded, so the walk terminates.
/// With ScanOptions::SplitIntervals off every escape degenerates to
/// whole-lifetime spilling and the walk reproduces the original
/// spill-everywhere behavior decision for decision.
///
/// Intervals with holes are tracked through an *inactive* set: a piece
/// whose lifetime has started but that does not cover the current
/// position blocks a register only for pieces it actually overlaps, so
/// lifetime-disjoint intervals share registers across holes.
///
/// A pass never inserts spill code; the driver (LinearScanAlloc.cpp)
/// inserts it for the reported spill set and re-runs, exactly like the
/// coloring backends' Build-Simplify-Color cycle.
///
//===----------------------------------------------------------------------===//

#ifndef RA_LINEARSCAN_LINEARSCAN_H
#define RA_LINEARSCAN_LINEARSCAN_H

#include "linearscan/LiveInterval.h"
#include "regalloc/Allocator.h"
#include "target/MachineInfo.h"

#include <vector>

namespace ra {

class Budget;

/// Walk policy knobs.
struct ScanOptions {
  /// Second-chance binpacking (see file comment). Off restores the
  /// original whole-lifetime spilling — rac's --no-split oracle.
  bool SplitIntervals = true;
  /// Safety bound on split decisions per live range; a range at the
  /// bound falls back to suffix spilling. Keeps the piece count — and
  /// with it termination — trivially bounded.
  unsigned MaxSplitsPerRange = 4;
  /// Resource-governance token (support/Budget.h), or null for the
  /// ungoverned default. The walk polls it per dequeued piece; a trip
  /// abandons the walk mid-queue, leaving the ScanResult partial —
  /// governed callers must check the token before trusting a result.
  Budget *Governor = nullptr;
};

/// Outcome of one interval walk over both register classes.
struct ScanResult {
  /// Physical register per vreg, or -1 (spilled this pass / empty
  /// interval). Split vregs report their first piece's register here;
  /// Pieces carries the full per-slot assignment.
  std::vector<int32_t> ColorOf;

  /// Per-slot assignments of vregs committed to more than one register,
  /// sorted by (Reg, From). Adjacent same-register pieces are merged,
  /// so every listed vreg genuinely changes register mid-lifetime.
  std::vector<PieceAssignment> Pieces;

  /// Vregs chosen for spilling, in decision order.
  std::vector<VRegId> Spilled;

  /// Parallel to Spilled: first InstrNumbering slot of the spilled
  /// region. 0 means the whole lifetime (the pre-splitting behavior);
  /// a nonzero slot spills only accesses from that slot on — the head
  /// already holds registers and keeps them.
  std::vector<SlotIndex> SpillFromSlot;

  /// Sum of LiveInterval::Cost over Spilled.
  double SpilledCost = 0;

  /// Intervals with at least one segment (live ranges seen).
  unsigned LiveRanges = 0;

  /// Split decisions taken (second-chance splits + eviction
  /// truncations).
  unsigned Splits = 0;

  /// Vregs that ended the walk holding more than one register
  /// (== number of distinct Reg values in Pieces).
  unsigned SplitRanges = 0;

  /// Wall-clock seconds spent walking intervals (the backend's analogue
  /// of the coloring select phase).
  double WalkSeconds = 0;

  bool success() const { return Spilled.empty(); }
};

/// Runs one linear-scan pass over \p LI for the register files of
/// \p Machine. Interval costs must already be set (LiveIntervals::
/// setCosts). Deterministic: pieces are visited in (start, vreg) order
/// and ties in eviction weight break toward the lowest register index.
ScanResult scanIntervals(const LiveIntervals &LI, const MachineInfo &Machine,
                         const ScanOptions &Opts = ScanOptions());

} // namespace ra

#endif // RA_LINEARSCAN_LINEARSCAN_H
