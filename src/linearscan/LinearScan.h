//===- linearscan/LinearScan.h - Interval register walk --------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One pass of linear-scan allocation over live intervals: intervals
/// are visited in start order; each is given a free register when one
/// exists, and otherwise the cheapest conflicting assignment is evicted
/// — or the current interval itself is spilled when it is the cheapest
/// thing at its own start point ("spill at the interval heart"). The
/// eviction weights are the same loop-weighted SpillCost estimates the
/// coloring backends feed Chaitin's cost/degree metric, so the two
/// families rank spill candidates with one model.
///
/// Intervals with holes are tracked through an *inactive* set: an
/// interval whose lifetime has started but that does not cover the
/// current position blocks a register only for intervals it actually
/// overlaps, so lifetime-disjoint intervals share registers across
/// holes.
///
/// A pass never inserts spill code; the driver (LinearScanAlloc.cpp)
/// inserts it for the reported spill set and re-runs, exactly like the
/// coloring backends' Build-Simplify-Color cycle.
///
//===----------------------------------------------------------------------===//

#ifndef RA_LINEARSCAN_LINEARSCAN_H
#define RA_LINEARSCAN_LINEARSCAN_H

#include "linearscan/LiveInterval.h"
#include "target/MachineInfo.h"

#include <vector>

namespace ra {

/// Outcome of one interval walk over both register classes.
struct ScanResult {
  /// Physical register per vreg, or -1 (spilled this pass / empty
  /// interval).
  std::vector<int32_t> ColorOf;

  /// Vregs chosen for spilling, in decision order.
  std::vector<VRegId> Spilled;

  /// Sum of LiveInterval::Cost over Spilled.
  double SpilledCost = 0;

  /// Intervals with at least one segment (live ranges seen).
  unsigned LiveRanges = 0;

  /// Wall-clock seconds spent walking intervals (the backend's analogue
  /// of the coloring select phase).
  double WalkSeconds = 0;

  bool success() const { return Spilled.empty(); }
};

/// Runs one linear-scan pass over \p LI for the register files of
/// \p Machine. Interval costs must already be set (LiveIntervals::
/// setCosts). Deterministic: intervals are visited in (start, vreg)
/// order and ties in eviction weight break toward the lowest register
/// index.
ScanResult scanIntervals(const LiveIntervals &LI, const MachineInfo &Machine);

} // namespace ra

#endif // RA_LINEARSCAN_LINEARSCAN_H
