//===- linearscan/LiveInterval.h - Intervals over slot indexes -*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live intervals for the linear-scan backend: one interval per live
/// range (post-renumbering vreg), made of disjoint, sorted, half-open
/// [From, To) segments over the InstrNumbering slot space. Segments —
/// not a single [start, end) span — matter because a def-use web can be
/// dead through whole regions of the layout (the classic case: a value
/// defined in both arms of a diamond and used at the join is dead over
/// the second arm's prefix), and the allocator exploits those *holes*
/// to share registers between lifetime-disjoint intervals.
///
/// Construction (LiveIntervals::compute) is a single backward walk per
/// block seeded from the existing analysis/Liveness solution, so the
/// intervals are exact at instruction granularity: an interval covers a
/// read slot iff the range is live-before that instruction, and covers
/// a write slot iff the range is live-after it or is defined by it.
/// tests/LiveIntervalTest.cpp proves exactly this equivalence against
/// the dataflow solver on the whole regression corpus.
///
//===----------------------------------------------------------------------===//

#ifndef RA_LINEARSCAN_LIVEINTERVAL_H
#define RA_LINEARSCAN_LIVEINTERVAL_H

#include "analysis/InstrNumbering.h"
#include "analysis/Liveness.h"

#include <cassert>
#include <limits>
#include <utility>
#include <vector>

namespace ra {

/// Half-open slot range [From, To).
struct IntervalSegment {
  SlotIndex From = 0;
  SlotIndex To = 0;

  bool contains(SlotIndex S) const { return From <= S && S < To; }
  bool overlaps(const IntervalSegment &O) const {
    return From < O.To && O.From < To;
  }
  bool operator==(const IntervalSegment &O) const = default;
};

/// The lifetime of one live range as sorted disjoint segments.
struct LiveInterval {
  VRegId Reg = InvalidVReg;
  RegClass Class = RegClass::Int;
  /// Loop-weighted spill estimate (regalloc/SpillCost.h); infinite for
  /// spill temporaries, so eviction never chooses them.
  double Cost = 0;
  /// Sorted, pairwise-disjoint, non-touching segments.
  std::vector<IntervalSegment> Segments;

  bool empty() const { return Segments.empty(); }

  SlotIndex start() const {
    assert(!empty() && "empty interval has no start");
    return Segments.front().From;
  }

  SlotIndex stop() const {
    assert(!empty() && "empty interval has no stop");
    return Segments.back().To;
  }

  /// True when some segment contains slot \p S.
  bool covers(SlotIndex S) const {
    // Segments are few (holes are rare); linear scan beats binary
    // search on the sizes seen in practice.
    for (const IntervalSegment &Seg : Segments) {
      if (Seg.From > S)
        return false;
      if (S < Seg.To)
        return true;
    }
    return false;
  }

  /// Number of slots the interval actually covers (holes excluded) —
  /// the denominator of the eviction heuristic's spill-cost density.
  unsigned coveredSlots() const {
    unsigned N = 0;
    for (const IntervalSegment &Seg : Segments)
      N += unsigned(Seg.To - Seg.From);
    return N;
  }

  /// True when any segments of the two intervals overlap.
  bool overlaps(const LiveInterval &O) const {
    auto I = Segments.begin(), E = Segments.end();
    auto J = O.Segments.begin(), F = O.Segments.end();
    while (I != E && J != F) {
      if (I->overlaps(*J))
        return true;
      if (I->To <= J->From)
        ++I;
      else
        ++J;
    }
    return false;
  }

  /// Earliest slot where segments of the two intervals overlap. Requires
  /// overlaps(O); the result is max(From, From) of the first colliding
  /// segment pair — the conflict point second-chance splitting cuts at.
  SlotIndex firstOverlapSlot(const LiveInterval &O) const {
    auto I = Segments.begin(), E = Segments.end();
    auto J = O.Segments.begin(), F = O.Segments.end();
    while (I != E && J != F) {
      if (I->overlaps(*J))
        return I->From > J->From ? I->From : J->From;
      if (I->To <= J->From)
        ++I;
      else
        ++J;
    }
    assert(false && "firstOverlapSlot on disjoint intervals");
    return 0;
  }

  /// Carves the segment list at slot \p S into a head covering only
  /// slots < S and a tail covering only slots >= S. Both halves keep
  /// Reg/Class/Cost. A cut inside a segment splits that segment; a cut
  /// at a hole boundary (or inside a hole) partitions the list cleanly;
  /// a cut at or before start() yields an empty head, at or after
  /// stop() an empty tail.
  std::pair<LiveInterval, LiveInterval> splitAt(SlotIndex S) const {
    LiveInterval Head, Tail;
    Head.Reg = Tail.Reg = Reg;
    Head.Class = Tail.Class = Class;
    Head.Cost = Tail.Cost = Cost;
    for (const IntervalSegment &Seg : Segments) {
      if (Seg.To <= S) {
        Head.Segments.push_back(Seg);
      } else if (Seg.From >= S) {
        Tail.Segments.push_back(Seg);
      } else {
        Head.Segments.push_back({Seg.From, S});
        Tail.Segments.push_back({S, Seg.To});
      }
    }
    return {std::move(Head), std::move(Tail)};
  }
};

/// All live intervals of one function snapshot.
class LiveIntervals {
public:
  /// Builds intervals for \p F from the block-boundary liveness \p LV
  /// and the slot numbering \p Num (both computed on the same function
  /// snapshot). Every vreg gets an entry; vregs with no occurrence
  /// yield an empty interval.
  static LiveIntervals compute(const Function &F, const Liveness &LV,
                               const InstrNumbering &Num);

  const LiveInterval &interval(VRegId R) const { return Intervals[R]; }
  const std::vector<LiveInterval> &intervals() const { return Intervals; }

  unsigned numIntervals() const { return Intervals.size(); }

  /// Copies the per-vreg spill estimates onto the intervals (the
  /// eviction heuristic reads LiveInterval::Cost). The cost table must
  /// cover every interval: a size mismatch means the table and the
  /// intervals were computed on different renumberings, which is a bug,
  /// not a condition to paper over. If the assert is compiled out, an
  /// untracked interval gets an effectively-infinite cost — never
  /// evicted — rather than the silent Cost = 0 (maximally evictable)
  /// the old guard left behind.
  void setCosts(const std::vector<double> &CostPerVReg) {
    assert(CostPerVReg.size() == Intervals.size() &&
           "spill-cost table does not match the interval snapshot");
    for (LiveInterval &I : Intervals)
      I.Cost = I.Reg < CostPerVReg.size()
                   ? CostPerVReg[I.Reg]
                   : std::numeric_limits<double>::max();
  }

private:
  std::vector<LiveInterval> Intervals;
};

} // namespace ra

#endif // RA_LINEARSCAN_LIVEINTERVAL_H
