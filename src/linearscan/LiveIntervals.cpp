//===- linearscan/LiveIntervals.cpp - Interval construction ---------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// One backward walk per block, seeded from the dataflow live-out set.
// Blocks are processed in reverse layout order and every new segment
// starts at or before all segments already recorded, so segments are
// appended in descending order and reversed once at the end — the whole
// construction is O(instructions + segments).
//
//===----------------------------------------------------------------------===//

#include "linearscan/LiveInterval.h"

#include "support/Trace.h"

#include <algorithm>

using namespace ra;

namespace {

/// Per-vreg segment list under construction, ordered by descending From.
class SegmentBuilder {
public:
  explicit SegmentBuilder(unsigned NumVRegs) : Segs(NumVRegs) {}

  /// Records [From, To) as live. Merges with the most recently added
  /// (lowest) segment when they touch or overlap.
  void addRange(VRegId R, SlotIndex From, SlotIndex To) {
    if (From >= To)
      return;
    std::vector<IntervalSegment> &S = Segs[R];
    if (!S.empty() && To >= S.back().From) {
      S.back().From = std::min(S.back().From, From);
      S.back().To = std::max(S.back().To, To);
    } else {
      S.push_back({From, To});
    }
  }

  /// A definition at write slot \p Pos: trims the currently-live-through
  /// segment to start at the definition, or — when the value is dead
  /// after the definition — records the one-slot segment [Pos, Pos + 1).
  void setFrom(VRegId R, SlotIndex Pos) {
    std::vector<IntervalSegment> &S = Segs[R];
    if (!S.empty() && S.back().contains(Pos)) {
      S.back().From = Pos;
    } else if (!S.empty() && S.back().From == Pos + 1) {
      S.back().From = Pos; // touching: extend instead of splitting
    } else {
      S.push_back({Pos, Pos + 1});
    }
  }

  /// Finalizes vreg \p R: segments in ascending order.
  std::vector<IntervalSegment> take(VRegId R) {
    std::vector<IntervalSegment> S = std::move(Segs[R]);
    std::reverse(S.begin(), S.end());
    return S;
  }

private:
  std::vector<std::vector<IntervalSegment>> Segs;
};

} // namespace

LiveIntervals LiveIntervals::compute(const Function &F, const Liveness &LV,
                                     const InstrNumbering &Num) {
  RA_TRACE_SPAN("BuildIntervals", "linearscan",
                [&] { return "vregs=" + std::to_string(F.numVRegs()); });
  SegmentBuilder B(F.numVRegs());

  for (uint32_t BId = F.numBlocks(); BId-- > 0;) {
    const BasicBlock &BB = F.block(BId);
    SlotIndex From = Num.blockFrom(BId), To = Num.blockTo(BId);
    LV.liveOut(BId).forEachSetBit(
        [&](unsigned R) { B.addRange(R, From, To); });
    for (unsigned Idx = BB.Insts.size(); Idx-- > 0;) {
      const Instruction &I = BB.Insts[Idx];
      if (I.hasDef())
        B.setFrom(I.defReg(), Num.writeSlot(BId, Idx));
      SlotIndex ReadEnd = Num.readSlot(BId, Idx) + 1;
      I.forEachUse([&](VRegId R) { B.addRange(R, From, ReadEnd); });
    }
  }

  LiveIntervals LI;
  LI.Intervals.resize(F.numVRegs());
  for (VRegId R = 0; R < F.numVRegs(); ++R) {
    LiveInterval &I = LI.Intervals[R];
    I.Reg = R;
    I.Class = F.regClass(R);
    I.Segments = B.take(R);
#ifndef NDEBUG
    for (size_t S = 1; S < I.Segments.size(); ++S)
      assert(I.Segments[S - 1].To < I.Segments[S].From &&
             "segments must be sorted, disjoint, and non-touching");
#endif
  }
  return LI;
}
