//===- linearscan/LinearScanAlloc.h - Linear-scan backend ------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear-scan allocation backend: renumber -> [coalesce -> number
/// instructions -> build live intervals -> scan -> insert spill code]*
/// until a scan spills nothing. Structurally the same driver cycle as
/// the coloring backends' Figure 4 loop — the spill-code inserter, the
/// spill-cost model, and the renumbering pass are shared — only the
/// middle (interval walk instead of build-simplify-select) differs,
/// which is what keeps AllocationResult, the post-allocation audit, and
/// the degradation ladder backend-agnostic.
///
/// Callers go through allocateRegisters (regalloc/Allocator.h) with
/// AllocatorConfig::B == Backend::LinearScan; this header exists for
/// the dispatch layer and for focused tests.
///
//===----------------------------------------------------------------------===//

#ifndef RA_LINEARSCAN_LINEARSCANALLOC_H
#define RA_LINEARSCAN_LINEARSCANALLOC_H

#include "regalloc/Allocator.h"

namespace ra {

class Budget;
class CFG;
class LoopInfo;

/// Runs the multi-pass linear-scan primary allocation on \p F. Performs
/// no auditing and no fallback — allocateRegisters layers the ladder on
/// top, identically for every backend. \p Gov (may be null) is the
/// function's resource-governance token: the coalesce loop and the
/// interval walk poll it, and a trip returns a Failed result carrying
/// the budget status for the ladder to act on.
AllocationResult runLinearScanPasses(Function &F, const AllocatorConfig &C,
                                     const CFG &G, const LoopInfo &Loops,
                                     Budget *Gov = nullptr);

} // namespace ra

#endif // RA_LINEARSCAN_LINEARSCANALLOC_H
