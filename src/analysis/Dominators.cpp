//===- analysis/Dominators.cpp - Dominator tree ---------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <cassert>

using namespace ra;

Dominators Dominators::compute(const Function &F, const CFG &G) {
  Dominators D;
  D.Entry = F.entry();
  D.IDom.assign(F.numBlocks(), ~0u);
  D.RPOIndex.resize(F.numBlocks());
  for (uint32_t B = 0; B < F.numBlocks(); ++B)
    D.RPOIndex[B] = G.rpoIndex(B);

  D.IDom[D.Entry] = D.Entry;

  auto Intersect = [&D](uint32_t A, uint32_t B) {
    while (A != B) {
      while (D.RPOIndex[A] > D.RPOIndex[B])
        A = D.IDom[A];
      while (D.RPOIndex[B] > D.RPOIndex[A])
        B = D.IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : G.rpo()) {
      if (B == D.Entry)
        continue;
      uint32_t NewIDom = ~0u;
      for (uint32_t P : G.preds(B)) {
        if (D.IDom[P] == ~0u)
          continue; // not yet processed / unreachable
        NewIDom = NewIDom == ~0u ? P : Intersect(P, NewIDom);
      }
      assert(NewIDom != ~0u && "reachable block with no processed pred");
      if (D.IDom[B] != NewIDom) {
        D.IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
  return D;
}

bool Dominators::dominates(uint32_t A, uint32_t B) const {
  assert(IDom[A] != ~0u && IDom[B] != ~0u && "query on unreachable block");
  // Walk B's idom chain upward; idoms strictly decrease in RPO index.
  while (RPOIndex[B] > RPOIndex[A])
    B = IDom[B];
  return A == B;
}
