//===- analysis/Liveness.cpp - Backward live-variable analysis ------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

using namespace ra;

Liveness Liveness::compute(const Function &F, const CFG &G) {
  Liveness L;
  unsigned NB = F.numBlocks(), NR = F.numVRegs();
  L.LiveIn.assign(NB, BitVector(NR));
  L.LiveOut.assign(NB, BitVector(NR));
  L.UEVar.assign(NB, BitVector(NR));
  L.VarKill.assign(NB, BitVector(NR));

  // Local sets: UEVar collects uses not preceded by a local kill.
  for (const BasicBlock &B : F.blocks()) {
    BitVector &UE = L.UEVar[B.Id], &Kill = L.VarKill[B.Id];
    for (const Instruction &I : B.Insts) {
      I.forEachUse([&](VRegId R) {
        if (!Kill.test(R))
          UE.set(R);
      });
      if (I.hasDef())
        Kill.set(I.defReg());
    }
  }

  // Backward fixpoint. Reverse RPO first for fast convergence on
  // reducible graphs; unreachable blocks (never in the RPO) are
  // appended so the equations hold on the whole graph.
  std::vector<uint32_t> Order(G.rpo().rbegin(), G.rpo().rend());
  for (uint32_t B = 0; B < NB; ++B)
    if (!G.isReachable(B))
      Order.push_back(B);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Order) {
      BitVector Out(NR);
      for (uint32_t S : G.succs(B))
        Out.unionWith(L.LiveIn[S]);
      BitVector In = Out;
      In.subtract(L.VarKill[B]);
      In.unionWith(L.UEVar[B]);
      if (!(Out == L.LiveOut[B]) || !(In == L.LiveIn[B])) {
        L.LiveOut[B] = std::move(Out);
        L.LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
  return L;
}
