//===- analysis/InstrNumbering.h - Linear instruction numbers --*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear numbering of every instruction in a function, in block
/// layout order. Each instruction owns two consecutive *slots*: its
/// inputs are read at the even slot and its output is written at the
/// odd slot that follows. Live-interval endpoints (linearscan/) are
/// expressed in these slots, which is what makes a dying use and a
/// same-instruction definition non-overlapping — the read slot ends
/// before the write slot begins, so they may share a register, exactly
/// as the interference-graph build rule (and the post-allocation audit)
/// permit.
///
/// The numbering is a pure index; it is invalidated by any instruction
/// insertion or deletion and must be recomputed per allocation pass.
///
//===----------------------------------------------------------------------===//

#ifndef RA_ANALYSIS_INSTRNUMBERING_H
#define RA_ANALYSIS_INSTRNUMBERING_H

#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace ra {

/// Slot index into the linearized function; see file comment.
using SlotIndex = uint32_t;

/// Dense instruction slots for one function snapshot.
class InstrNumbering {
public:
  /// Numbers every instruction of \p F in block layout order.
  static InstrNumbering compute(const Function &F);

  /// Read slot (even) of instruction \p InstIdx of block \p B. The
  /// write slot is readSlot() + 1.
  SlotIndex readSlot(uint32_t B, unsigned InstIdx) const {
    return (FirstInst[B] + InstIdx) * 2;
  }

  SlotIndex writeSlot(uint32_t B, unsigned InstIdx) const {
    return readSlot(B, InstIdx) + 1;
  }

  /// First slot belonging to block \p B (the read slot of its first
  /// instruction).
  SlotIndex blockFrom(uint32_t B) const { return FirstInst[B] * 2; }

  /// One past the last slot of block \p B. For adjacent blocks in
  /// layout order, blockTo(B) == blockFrom(B + 1), so a value live
  /// across the boundary gets one contiguous interval segment.
  SlotIndex blockTo(uint32_t B) const {
    return (FirstInst[B] + InstCount[B]) * 2;
  }

  /// Total number of slots (2x the instruction count).
  SlotIndex numSlots() const { return Slots; }

  unsigned numBlocks() const { return FirstInst.size(); }

private:
  std::vector<uint32_t> FirstInst; ///< global index of block's first inst
  std::vector<uint32_t> InstCount; ///< instructions per block
  SlotIndex Slots = 0;
};

} // namespace ra

#endif // RA_ANALYSIS_INSTRNUMBERING_H
