//===- analysis/Liveness.h - Backward live-variable analysis ---*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward live-variable dataflow over virtual registers. The
/// interference-graph builder walks each block backward from LiveOut,
/// so only the block-boundary sets are stored here.
///
//===----------------------------------------------------------------------===//

#ifndef RA_ANALYSIS_LIVENESS_H
#define RA_ANALYSIS_LIVENESS_H

#include "analysis/CFG.h"
#include "support/BitVector.h"

namespace ra {

/// Live-in/live-out sets per basic block, over vreg ids.
class Liveness {
public:
  /// Solves liveness for \p F using \p G.
  static Liveness compute(const Function &F, const CFG &G);

  const BitVector &liveIn(uint32_t B) const { return LiveIn[B]; }
  const BitVector &liveOut(uint32_t B) const { return LiveOut[B]; }

  /// Upward-exposed uses of block \p B (used before any local def).
  const BitVector &upwardExposed(uint32_t B) const { return UEVar[B]; }

  /// Registers defined anywhere in block \p B.
  const BitVector &defs(uint32_t B) const { return VarKill[B]; }

private:
  std::vector<BitVector> LiveIn, LiveOut, UEVar, VarKill;
};

} // namespace ra

#endif // RA_ANALYSIS_LIVENESS_H
