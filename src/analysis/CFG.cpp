//===- analysis/CFG.cpp - Control-flow graph utilities --------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include <algorithm>

using namespace ra;

CFG CFG::compute(const Function &F) {
  CFG G;
  unsigned NB = F.numBlocks();
  G.Preds.resize(NB);
  G.Succs.resize(NB);
  G.RPOIndex.assign(NB, ~0u);

  for (const BasicBlock &B : F.blocks()) {
    for (uint32_t S : B.successors()) {
      G.Succs[B.Id].push_back(S);
      G.Preds[S].push_back(B.Id);
    }
  }

  // Iterative post-order DFS from the entry.
  std::vector<uint32_t> PostOrder;
  std::vector<uint8_t> State(NB, 0); // 0 = unseen, 1 = open, 2 = done
  std::vector<std::pair<uint32_t, unsigned>> Stack;
  Stack.push_back({F.entry(), 0});
  State[F.entry()] = 1;
  while (!Stack.empty()) {
    auto &[B, NextChild] = Stack.back();
    if (NextChild < G.Succs[B].size()) {
      uint32_t S = G.Succs[B][NextChild++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
    } else {
      State[B] = 2;
      PostOrder.push_back(B);
      Stack.pop_back();
    }
  }

  G.RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0; I < G.RPO.size(); ++I)
    G.RPOIndex[G.RPO[I]] = I;
  return G;
}
