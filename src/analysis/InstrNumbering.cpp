//===- analysis/InstrNumbering.cpp - Linear instruction numbers -----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/InstrNumbering.h"

using namespace ra;

InstrNumbering InstrNumbering::compute(const Function &F) {
  InstrNumbering N;
  N.FirstInst.resize(F.numBlocks());
  N.InstCount.resize(F.numBlocks());
  uint32_t Next = 0;
  for (const BasicBlock &B : F.blocks()) {
    N.FirstInst[B.Id] = Next;
    N.InstCount[B.Id] = B.Insts.size();
    Next += B.Insts.size();
  }
  N.Slots = Next * 2;
  return N;
}
