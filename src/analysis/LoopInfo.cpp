//===- analysis/LoopInfo.cpp - Natural loops and nesting depth ------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace ra;

LoopInfo LoopInfo::compute(const Function &F, const CFG &G,
                           const Dominators &D) {
  LoopInfo LI;
  unsigned NB = F.numBlocks();
  LI.Depth.assign(NB, 0);

  // Back edges grouped by header: T -> H where H dominates T.
  std::map<uint32_t, std::vector<uint32_t>> Latches;
  for (uint32_t B = 0; B < NB; ++B) {
    if (!G.isReachable(B))
      continue;
    for (uint32_t S : G.succs(B))
      if (G.isReachable(S) && D.dominates(S, B))
        Latches[S].push_back(B);
  }

  // Natural loop of header H: H plus all blocks that reach a latch
  // without passing through H (backward flood from the latches).
  for (const auto &[Header, LatchList] : Latches) {
    Loop L;
    L.Header = Header;
    std::vector<bool> InLoop(NB, false);
    InLoop[Header] = true;
    std::vector<uint32_t> Work;
    for (uint32_t T : LatchList)
      if (!InLoop[T]) {
        InLoop[T] = true;
        Work.push_back(T);
      }
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      for (uint32_t P : G.preds(B))
        if (G.isReachable(P) && !InLoop[P]) {
          InLoop[P] = true;
          Work.push_back(P);
        }
    }
    for (uint32_t B = 0; B < NB; ++B)
      if (InLoop[B]) {
        L.Blocks.push_back(B);
        ++LI.Depth[B];
      }
    LI.Loops.push_back(std::move(L));
  }

  LI.MaxDepth = LI.Depth.empty()
                    ? 0
                    : *std::max_element(LI.Depth.begin(), LI.Depth.end());
  return LI;
}
