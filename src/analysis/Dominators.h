//===- analysis/Dominators.h - Dominator tree ------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate dominators computed with the Cooper–Harvey–Kennedy
/// iterative algorithm ("A Simple, Fast Dominance Algorithm") — a fitting
/// choice, as Cooper and Kennedy are authors of the paper reproduced
/// here. Loop detection (back edges) builds on these results.
///
//===----------------------------------------------------------------------===//

#ifndef RA_ANALYSIS_DOMINATORS_H
#define RA_ANALYSIS_DOMINATORS_H

#include "analysis/CFG.h"

namespace ra {

/// Dominator tree over the reachable blocks of a function.
class Dominators {
public:
  /// Computes immediate dominators of every reachable block.
  static Dominators compute(const Function &F, const CFG &G);

  /// Immediate dominator of \p B; the entry's idom is itself.
  /// Undefined for unreachable blocks.
  uint32_t idom(uint32_t B) const { return IDom[B]; }

  /// True iff \p A dominates \p B (reflexive). Both must be reachable.
  bool dominates(uint32_t A, uint32_t B) const;

private:
  std::vector<uint32_t> IDom;
  std::vector<uint32_t> RPOIndex; // for the idom-chain walk bound
  uint32_t Entry = 0;
};

} // namespace ra

#endif // RA_ANALYSIS_DOMINATORS_H
