//===- analysis/Renumber.h - Live-range renumbering ------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaitin's "renumber" phase: splits every virtual register into its
/// def-use webs (maximal sets of definitions and uses that must share a
/// register) and rewrites the function over a fresh, dense register id
/// space in which one vreg == one live range. The paper's build phase
/// begins with "finding and renumbering distinct live ranges"; this pass
/// is that step, implemented with reaching definitions and union-find.
///
//===----------------------------------------------------------------------===//

#ifndef RA_ANALYSIS_RENUMBER_H
#define RA_ANALYSIS_RENUMBER_H

#include "analysis/CFG.h"

namespace ra {

/// Statistics reported by the renumbering pass.
struct RenumberStats {
  unsigned VRegsBefore = 0; ///< Register count before splitting.
  unsigned VRegsAfter = 0;  ///< Live-range count after splitting.
};

/// Splits \p F's virtual registers into def-use webs, rewriting every
/// operand. After this pass each virtual register is one live range.
/// Registers that are never defined (would be verifier errors) keep one
/// web so the function stays well-formed.
RenumberStats renumberLiveRanges(Function &F, const CFG &G);

} // namespace ra

#endif // RA_ANALYSIS_RENUMBER_H
