//===- analysis/LoopInfo.h - Natural loops and nesting depth ---*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and per-block loop nesting depth. The spill
/// cost estimator weights each load/store insertion point by
/// 10^depth(block), exactly as the paper describes ("weighted by the
/// loop nesting depth of each insertion point").
///
//===----------------------------------------------------------------------===//

#ifndef RA_ANALYSIS_LOOPINFO_H
#define RA_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

namespace ra {

/// One natural loop: a header plus its body (headers of back edges
/// merged, so each header owns exactly one loop).
struct Loop {
  uint32_t Header = 0;
  std::vector<uint32_t> Blocks; ///< Includes the header.
};

/// Loop nesting structure of a function.
class LoopInfo {
public:
  /// Finds all natural loops via dominator-identified back edges.
  static LoopInfo compute(const Function &F, const CFG &G,
                          const Dominators &D);

  /// Number of loops (strictly) containing \p B, counting a loop header
  /// as inside its own loop.
  unsigned depth(uint32_t B) const { return Depth[B]; }

  const std::vector<Loop> &loops() const { return Loops; }

  /// Largest depth over all blocks.
  unsigned maxDepth() const { return MaxDepth; }

private:
  std::vector<Loop> Loops;
  std::vector<unsigned> Depth;
  unsigned MaxDepth = 0;
};

} // namespace ra

#endif // RA_ANALYSIS_LOOPINFO_H
