//===- analysis/Renumber.cpp - Live-range renumbering ---------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Renumber.h"

#include "support/BitVector.h"
#include "support/UnionFind.h"

#include <cassert>
#include <map>

using namespace ra;

namespace {

/// Reaching-definitions solver plus web construction for one function.
class Renumberer {
public:
  Renumberer(Function &F, const CFG &G) : F(F), G(G) {}

  RenumberStats run() {
    RenumberStats Stats;
    Stats.VRegsBefore = F.numVRegs();
    enumerateDefs();
    solveReachingDefs();
    buildWebs();
    rewrite();
    Stats.VRegsAfter = F.numVRegs();
    return Stats;
  }

private:
  void enumerateDefs() {
    DefsOf.assign(F.numVRegs(), {});
    for (const BasicBlock &B : F.blocks())
      for (const Instruction &I : B.Insts)
        if (I.hasDef()) {
          uint32_t D = DefVReg.size();
          DefVReg.push_back(I.defReg());
          DefsOf[I.defReg()].push_back(D);
        }
  }

  void solveReachingDefs() {
    unsigned NB = F.numBlocks(), ND = DefVReg.size();
    Gen.assign(NB, BitVector(ND));
    Kill.assign(NB, BitVector(ND));
    In.assign(NB, BitVector(ND));
    Out.assign(NB, BitVector(ND));

    // Local Gen/Kill: the last def of a vreg in the block survives.
    uint32_t NextDef = 0;
    for (const BasicBlock &B : F.blocks()) {
      BitVector &G_ = Gen[B.Id], &K = Kill[B.Id];
      for (const Instruction &I : B.Insts) {
        if (!I.hasDef())
          continue;
        uint32_t D = NextDef++;
        VRegId V = I.defReg();
        for (uint32_t Other : DefsOf[V]) {
          K.set(Other);
          G_.reset(Other);
        }
        G_.set(D);
        K.reset(D);
      }
    }

    // Forward fixpoint over the RPO.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t B : G.rpo()) {
        BitVector NewIn(ND);
        for (uint32_t P : G.preds(B))
          NewIn.unionWith(Out[P]);
        BitVector NewOut = NewIn;
        NewOut.subtract(Kill[B]);
        NewOut.unionWith(Gen[B]);
        if (!(NewIn == In[B]) || !(NewOut == Out[B])) {
          In[B] = std::move(NewIn);
          Out[B] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }

  /// Walks every block forward, uniting all definitions that reach a
  /// common use into one web.
  void buildWebs() {
    Webs.reset(DefVReg.size());
    unsigned NR = F.numVRegs();

    // Per-vreg list of currently reaching def ids, rebuilt per block.
    std::vector<std::vector<uint32_t>> Reaching(NR);

    uint32_t NextDef = 0;
    for (const BasicBlock &B : F.blocks()) {
      for (auto &L : Reaching)
        L.clear();
      In[B.Id].forEachSetBit(
          [&](unsigned D) { Reaching[DefVReg[D]].push_back(D); });

      for (const Instruction &I : B.Insts) {
        I.forEachUse([&](VRegId V) {
          const std::vector<uint32_t> &Ds = Reaching[V];
          for (unsigned K = 1; K < Ds.size(); ++K)
            Webs.unite(Ds[0], Ds[K]);
        });
        if (I.hasDef()) {
          uint32_t D = NextDef++;
          Reaching[I.defReg()] = {D};
        }
      }
    }
  }

  /// Second walk: assign dense new register ids per web and rewrite all
  /// operands.
  void rewrite() {
    unsigned NR = F.numVRegs();
    std::vector<VRegInfo> NewTable;
    std::map<uint32_t, VRegId> WebToNew; // UF root -> new id
    std::vector<unsigned> SplitCount(NR, 0);
    // Lazily created webs for never-defined registers (kept so that a
    // malformed function stays structurally intact).
    std::vector<VRegId> UndefWeb(NR, InvalidVReg);

    auto NewRegForWeb = [&](uint32_t Root, VRegId OldV) -> VRegId {
      auto It = WebToNew.find(Root);
      if (It != WebToNew.end())
        return It->second;
      const VRegInfo &Old = F.vreg(OldV);
      VRegInfo Info = Old;
      unsigned Seq = SplitCount[OldV]++;
      if (Seq > 0)
        Info.Name = Old.Name + "." + std::to_string(Seq);
      VRegId Id = NewTable.size();
      NewTable.push_back(std::move(Info));
      WebToNew[Root] = Id;
      return Id;
    };

    auto UndefRegFor = [&](VRegId OldV) -> VRegId {
      if (UndefWeb[OldV] != InvalidVReg)
        return UndefWeb[OldV];
      VRegId Id = NewTable.size();
      NewTable.push_back(F.vreg(OldV));
      UndefWeb[OldV] = Id;
      return Id;
    };

    std::vector<std::vector<uint32_t>> Reaching(NR);
    uint32_t NextDef = 0;
    for (BasicBlock &B : F.blocks()) {
      for (auto &L : Reaching)
        L.clear();
      In[B.Id].forEachSetBit(
          [&](unsigned D) { Reaching[DefVReg[D]].push_back(D); });

      for (Instruction &I : B.Insts) {
        I.forEachUseOperand([&](Operand &O) {
          VRegId V = O.Reg;
          if (Reaching[V].empty()) {
            O = Operand::reg(UndefRegFor(V));
            return;
          }
          O = Operand::reg(NewRegForWeb(Webs.find(Reaching[V][0]), V));
        });
        if (I.hasDef()) {
          uint32_t D = NextDef++;
          VRegId V = I.defReg();
          I.setDefReg(NewRegForWeb(Webs.find(D), V));
          Reaching[V] = {D};
        }
      }
    }

    F.setVRegTable(std::move(NewTable));
  }

  Function &F;
  const CFG &G;

  std::vector<VRegId> DefVReg;                ///< def id -> defined vreg
  std::vector<std::vector<uint32_t>> DefsOf;  ///< vreg -> def ids
  std::vector<BitVector> Gen, Kill, In, Out;  ///< reaching defs, per block
  UnionFind Webs;
};

} // namespace

RenumberStats ra::renumberLiveRanges(Function &F, const CFG &G) {
  return Renumberer(F, G).run();
}
