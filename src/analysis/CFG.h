//===- analysis/CFG.h - Control-flow graph utilities -----------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derived control-flow structure of a function: predecessor/successor
/// lists, reachability from the entry, and a reverse post-order used by
/// the dataflow solvers and the dominator computation.
///
//===----------------------------------------------------------------------===//

#ifndef RA_ANALYSIS_CFG_H
#define RA_ANALYSIS_CFG_H

#include "ir/Function.h"

#include <vector>

namespace ra {

/// Immutable CFG snapshot; recompute after editing blocks.
class CFG {
public:
  /// Builds the CFG of \p F.
  static CFG compute(const Function &F);

  const std::vector<uint32_t> &preds(uint32_t B) const { return Preds[B]; }
  const std::vector<uint32_t> &succs(uint32_t B) const { return Succs[B]; }

  /// Reverse post-order over reachable blocks (entry first).
  const std::vector<uint32_t> &rpo() const { return RPO; }

  /// Position of block \p B in the RPO, or ~0u when unreachable.
  uint32_t rpoIndex(uint32_t B) const { return RPOIndex[B]; }

  bool isReachable(uint32_t B) const { return RPOIndex[B] != ~0u; }

  unsigned numBlocks() const { return Preds.size(); }

private:
  std::vector<std::vector<uint32_t>> Preds, Succs;
  std::vector<uint32_t> RPO;
  std::vector<uint32_t> RPOIndex;
};

} // namespace ra

#endif // RA_ANALYSIS_CFG_H
