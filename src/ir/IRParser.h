//===- ir/IRParser.h - Textual IR input ------------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR syntax produced by IRPrinter. Used by tests and
/// examples to write small programs directly, and to round-trip modules.
///
//===----------------------------------------------------------------------===//

#ifndef RA_IR_IRPARSER_H
#define RA_IR_IRPARSER_H

#include "ir/Module.h"

#include <string>

namespace ra {

/// Parses \p Text into \p M (which should be empty). On failure returns
/// false and stores a "line N: message" diagnostic in \p Error.
bool parseModule(const std::string &Text, Module &M, std::string &Error);

} // namespace ra

#endif // RA_IR_IRPARSER_H
