//===- ir/Verifier.h - IR well-formedness checks ---------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type checks over modules: operand signatures per
/// opcode, register-class agreement, terminator placement, in-range
/// block/array/slot references, and a forward definite-assignment
/// dataflow proving every use is preceded by a definition on all paths.
///
//===----------------------------------------------------------------------===//

#ifndef RA_IR_VERIFIER_H
#define RA_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace ra {

/// Returns all verification errors in \p F (empty means well-formed).
std::vector<std::string> verifyFunction(const Module &M, const Function &F);

/// Verifies every function in \p M.
std::vector<std::string> verifyModule(const Module &M);

} // namespace ra

#endif // RA_IR_VERIFIER_H
