//===- ir/Module.h - Arrays and functions ----------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns the memory symbols (arrays) a program operates on and
/// the functions that reference them. Arrays stand in for the FORTRAN
/// COMMON blocks and dummy array arguments of the paper's benchmark
/// programs; the simulator materializes them as typed memory.
///
//===----------------------------------------------------------------------===//

#ifndef RA_IR_MODULE_H
#define RA_IR_MODULE_H

#include "ir/Function.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace ra {

/// One module-level array symbol.
struct ArrayInfo {
  std::string Name;
  uint32_t Size = 0;               ///< Element count.
  RegClass Elem = RegClass::Float; ///< Element type (Int or Float).
};

/// Container for a program: arrays plus functions.
class Module {
public:
  /// Declares an array of \p Size elements of type \p Elem.
  uint32_t newArray(std::string Name, uint32_t Size, RegClass Elem) {
    Arrays.push_back({std::move(Name), Size, Elem});
    return Arrays.size() - 1;
  }

  unsigned numArrays() const { return Arrays.size(); }

  const ArrayInfo &array(uint32_t Id) const {
    assert(Id < Arrays.size() && "array id out of range");
    return Arrays[Id];
  }

  /// Finds an array by name; returns ~0u when absent.
  uint32_t findArray(const std::string &Name) const {
    for (uint32_t I = 0, E = Arrays.size(); I != E; ++I)
      if (Arrays[I].Name == Name)
        return I;
    return ~0u;
  }

  /// Creates an empty function owned by this module.
  Function &newFunction(std::string Name) {
    Funcs.push_back(std::make_unique<Function>(std::move(Name)));
    return *Funcs.back();
  }

  unsigned numFunctions() const { return Funcs.size(); }

  Function &function(unsigned I) {
    assert(I < Funcs.size() && "function index out of range");
    return *Funcs[I];
  }

  const Function &function(unsigned I) const {
    assert(I < Funcs.size() && "function index out of range");
    return *Funcs[I];
  }

  /// Finds a function by name; returns nullptr when absent.
  Function *findFunction(const std::string &Name) {
    for (auto &F : Funcs)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

private:
  std::vector<ArrayInfo> Arrays;
  std::vector<std::unique_ptr<Function>> Funcs;
};

} // namespace ra

#endif // RA_IR_MODULE_H
