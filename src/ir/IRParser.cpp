//===- ir/IRParser.cpp - Textual IR input ---------------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

using namespace ra;

namespace {

struct Token {
  enum class Kind {
    Ident,   // bare identifier (keywords, opcodes, block names)
    Reg,     // %name
    Array,   // @name
    IntLit,  // 123, -4
    FloatLit,// 1.5, -2e3
    Punct,   // one of { } : = , [ ]
    End,
  };
  Kind K = Kind::End;
  std::string Text;   // identifier / register / array name (no sigil)
  int64_t IntValue = 0;
  double FloatValue = 0;
  char Punct = 0;
  unsigned Line = 0;
};

class Lexer {
public:
  Lexer(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  /// Tokenizes the whole input. Returns false on a lexical error.
  bool run(std::vector<Token> &Out) {
    while (true) {
      skipSpaceAndComments();
      if (Pos >= Text.size())
        break;
      if (!lexOne(Out))
        return false;
    }
    Out.push_back({Token::Kind::End, "", 0, 0, 0, Line});
    return true;
  }

private:
  void skipSpaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';' ||
                 (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/')) {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool lexOne(std::vector<Token> &Out) {
    char C = Text[Pos];
    unsigned TokLine = Line;

    auto IsIdentChar = [](char Ch) {
      return std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_' ||
             Ch == '.';
    };

    if (C == '%' || C == '@') {
      ++Pos;
      std::string Name;
      while (Pos < Text.size() && IsIdentChar(Text[Pos]))
        Name += Text[Pos++];
      if (Name.empty()) {
        Error = diag(TokLine, "empty register/array name");
        return false;
      }
      Out.push_back({C == '%' ? Token::Kind::Reg : Token::Kind::Array, Name, 0,
                     0, 0, TokLine});
      return true;
    }

    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-' || C == '+') {
      size_t Start = Pos;
      ++Pos;
      bool IsFloat = false;
      while (Pos < Text.size()) {
        char D = Text[Pos];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          ++Pos;
        } else if (D == '.' || D == 'e' || D == 'E') {
          IsFloat = true;
          ++Pos;
          if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-') &&
              (D == 'e' || D == 'E'))
            ++Pos;
        } else {
          break;
        }
      }
      std::string Lit = Text.substr(Start, Pos - Start);
      Token T;
      T.Line = TokLine;
      if (IsFloat) {
        T.K = Token::Kind::FloatLit;
        T.FloatValue = std::strtod(Lit.c_str(), nullptr);
      } else {
        T.K = Token::Kind::IntLit;
        T.IntValue = std::strtoll(Lit.c_str(), nullptr, 10);
      }
      Out.push_back(T);
      return true;
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Name;
      while (Pos < Text.size() && IsIdentChar(Text[Pos]))
        Name += Text[Pos++];
      // Float literals like "inf"/"nan" never appear; identifiers only.
      Out.push_back({Token::Kind::Ident, Name, 0, 0, 0, TokLine});
      return true;
    }

    if (std::string("{}:=,[]").find(C) != std::string::npos) {
      ++Pos;
      Out.push_back({Token::Kind::Punct, "", 0, 0, C, TokLine});
      return true;
    }

    Error = diag(TokLine, std::string("unexpected character '") + C + "'");
    return false;
  }

  static std::string diag(unsigned Line, const std::string &Msg) {
    return "line " + std::to_string(Line + 1) + ": " + Msg;
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
  unsigned Line = 0;
};

/// Recursive-descent parser over the token stream.
class Parser {
public:
  Parser(std::vector<Token> Tokens, Module &M, std::string &Error)
      : Tokens(std::move(Tokens)), M(M), Error(Error) {}

  bool run() {
    if (!expectIdent("module") || !expectPunct('{'))
      return false;
    while (!atPunct('}')) {
      if (at(Token::Kind::End))
        return fail("unexpected end of input inside module");
      if (atIdent("array")) {
        if (!parseArray())
          return false;
      } else if (atIdent("func")) {
        if (!parseFunction())
          return false;
      } else {
        return fail("expected 'array' or 'func'");
      }
    }
    return expectPunct('}');
  }

private:
  //===--------------------------------------------------------------===//
  // Token helpers.
  //===--------------------------------------------------------------===//

  const Token &peek(unsigned Ahead = 0) const {
    size_t Idx = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[Idx];
  }
  const Token &take() { return Tokens[std::min(Pos++, Tokens.size() - 1)]; }

  bool at(Token::Kind K) const { return peek().K == K; }
  bool atIdent(const char *S) const {
    return at(Token::Kind::Ident) && peek().Text == S;
  }
  bool atPunct(char C) const {
    return at(Token::Kind::Punct) && peek().Punct == C;
  }

  bool fail(const std::string &Msg) {
    Error = "line " + std::to_string(peek().Line + 1) + ": " + Msg;
    return false;
  }

  bool expectIdent(const char *S) {
    if (!atIdent(S))
      return fail(std::string("expected '") + S + "'");
    take();
    return true;
  }

  bool expectPunct(char C) {
    if (!atPunct(C))
      return fail(std::string("expected '") + C + "'");
    take();
    return true;
  }

  //===--------------------------------------------------------------===//
  // Grammar productions.
  //===--------------------------------------------------------------===//

  bool parseArray() {
    take(); // 'array'
    if (!at(Token::Kind::Array))
      return fail("expected array name after 'array'");
    std::string Name = take().Text;
    if (!expectPunct(':'))
      return false;
    RegClass RC;
    if (!parseRegClass(RC))
      return false;
    if (!expectPunct('['))
      return false;
    if (!at(Token::Kind::IntLit))
      return fail("expected array size");
    int64_t Size = take().IntValue;
    if (Size < 0)
      return fail("negative array size");
    if (!expectPunct(']'))
      return false;
    if (M.findArray(Name) != ~0u)
      return fail("duplicate array @" + Name);
    M.newArray(Name, uint32_t(Size), RC);
    return true;
  }

  bool parseRegClass(RegClass &RC) {
    if (atIdent("int")) {
      RC = RegClass::Int;
      take();
      return true;
    }
    if (atIdent("flt")) {
      RC = RegClass::Float;
      take();
      return true;
    }
    return fail("expected register class 'int' or 'flt'");
  }

  bool parseFunction() {
    take(); // 'func'
    if (!at(Token::Kind::Array))
      return fail("expected function name after 'func'");
    std::string Name = take().Text;
    if (!expectPunct('{'))
      return false;

    F = &M.newFunction(Name);
    RegsByName.clear();
    BlocksByName.clear();

    // Pre-scan: declare blocks in order so the first one is the entry and
    // forward branch references resolve.
    for (size_t I = Pos, Depth = 1; I < Tokens.size(); ++I) {
      const Token &T = Tokens[I];
      if (T.K == Token::Kind::Punct && T.Punct == '{')
        ++Depth;
      if (T.K == Token::Kind::Punct && T.Punct == '}' && --Depth == 0)
        break;
      if (T.K == Token::Kind::Ident && T.Text == "block" &&
          Tokens[I + 1].K == Token::Kind::Ident &&
          Tokens[I + 2].K == Token::Kind::Punct && Tokens[I + 2].Punct == ':') {
        const std::string &BName = Tokens[I + 1].Text;
        if (BlocksByName.count(BName)) {
          Pos = I;
          return fail("duplicate block '" + BName + "'");
        }
        BlocksByName[BName] = F->newBlock(BName);
      }
    }
    if (F->numBlocks() == 0)
      return fail("function @" + Name + " has no blocks");

    uint32_t CurBlock = ~0u;
    while (!atPunct('}')) {
      if (at(Token::Kind::End))
        return fail("unexpected end of input inside function");
      if (atIdent("block")) {
        take();
        if (!at(Token::Kind::Ident))
          return fail("expected block name");
        CurBlock = BlocksByName[take().Text];
        if (!expectPunct(':'))
          return false;
        continue;
      }
      if (CurBlock == ~0u)
        return fail("instruction outside any block");
      if (!parseInstruction(CurBlock))
        return false;
    }
    return expectPunct('}');
  }

  /// Resolves (or, at a definition, creates) a register by name.
  bool resolveReg(const std::string &Name, std::optional<RegClass> DefClass,
                  VRegId &Out) {
    auto It = RegsByName.find(Name);
    if (It != RegsByName.end()) {
      Out = It->second;
      if (DefClass && F->regClass(Out) != *DefClass)
        return fail("register %" + Name + " redefined with a different class");
      return true;
    }
    if (!DefClass)
      return fail("use of undefined register %" + Name);
    Out = F->newVReg(*DefClass, Name);
    RegsByName[Name] = Out;
    return true;
  }

  bool parseUseReg(VRegId &Out) {
    if (!at(Token::Kind::Reg))
      return fail("expected register operand");
    return resolveReg(take().Text, std::nullopt, Out);
  }

  bool parseBlockRef(uint32_t &Out) {
    if (!at(Token::Kind::Ident))
      return fail("expected block name operand");
    std::string Name = take().Text;
    auto It = BlocksByName.find(Name);
    if (It == BlocksByName.end())
      return fail("reference to unknown block '" + Name + "'");
    Out = It->second;
    return true;
  }

  bool parseIntLit(int64_t &Out) {
    if (!at(Token::Kind::IntLit))
      return fail("expected integer literal");
    Out = take().IntValue;
    return true;
  }

  bool parseArrayRef(uint32_t &Out) {
    if (!at(Token::Kind::Array))
      return fail("expected array operand");
    std::string Name = take().Text;
    Out = M.findArray(Name);
    if (Out == ~0u)
      return fail("reference to unknown array @" + Name);
    return true;
  }

  static std::optional<Opcode> opcodeByName(const std::string &S) {
    static const std::pair<const char *, Opcode> Names[] = {
        {"movi", Opcode::MovI},       {"movf", Opcode::MovF},
        {"copy", Opcode::Copy},       {"add", Opcode::Add},
        {"sub", Opcode::Sub},         {"mul", Opcode::Mul},
        {"div", Opcode::Div},         {"rem", Opcode::Rem},
        {"addi", Opcode::AddI},       {"muli", Opcode::MulI},
        {"fadd", Opcode::FAdd},       {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul},       {"fdiv", Opcode::FDiv},
        {"fneg", Opcode::FNeg},       {"fabs", Opcode::FAbs},
        {"fsqrt", Opcode::FSqrt},     {"itof", Opcode::IToF},
        {"ftoi", Opcode::FToI},       {"load", Opcode::Load},
        {"fload", Opcode::FLoad},     {"store", Opcode::Store},
        {"fstore", Opcode::FStore},   {"spill.ld", Opcode::SpillLd},
        {"spill.st", Opcode::SpillSt},{"br", Opcode::Br},
        {"jmp", Opcode::Jmp},         {"ret", Opcode::Ret},
    };
    for (const auto &[Name, Op] : Names)
      if (S == Name)
        return Op;
    return std::nullopt;
  }

  static std::optional<CmpKind> cmpByName(const std::string &S) {
    static const std::pair<const char *, CmpKind> Names[] = {
        {"eq", CmpKind::EQ}, {"ne", CmpKind::NE}, {"lt", CmpKind::LT},
        {"le", CmpKind::LE}, {"gt", CmpKind::GT}, {"ge", CmpKind::GE},
    };
    for (const auto &[Name, K] : Names)
      if (S == Name)
        return K;
    return std::nullopt;
  }

  /// Grows the function's spill-slot table so that \p Slot exists with
  /// class \p RC (textual spill code may name slots in any order).
  bool ensureSpillSlot(int64_t Slot, RegClass RC) {
    if (Slot < 0)
      return fail("negative spill slot");
    while (F->numSpillSlots() <= unsigned(Slot))
      F->newSpillSlot(RC);
    if (F->spillSlotClass(unsigned(Slot)) != RC)
      return fail("spill slot " + std::to_string(Slot) +
                  " used with two classes");
    return true;
  }

  bool parseInstruction(uint32_t Block) {
    // Optional "%dst:class =" prefix.
    std::optional<VRegId> Def;
    if (at(Token::Kind::Reg)) {
      std::string DstName = take().Text;
      if (!expectPunct(':'))
        return false;
      RegClass RC;
      if (!parseRegClass(RC))
        return false;
      if (!expectPunct('='))
        return false;
      VRegId R;
      if (!resolveReg(DstName, RC, R))
        return false;
      Def = R;
    }

    if (!at(Token::Kind::Ident))
      return fail("expected an opcode");
    std::string OpName = take().Text;
    std::optional<Opcode> OpOrNone = opcodeByName(OpName);
    if (!OpOrNone)
      return fail("unknown opcode '" + OpName + "'");
    Opcode Op = *OpOrNone;

    if (opcodeHasDef(Op) != Def.has_value())
      return fail(std::string("opcode '") + OpName +
                  (Def ? "' does not produce a value" : "' needs a result"));

    Instruction I;
    I.Op = Op;
    if (Def)
      I.Ops.push_back(Operand::reg(*Def));
    if (!parseOperands(I))
      return false;
    F->block(Block).Insts.push_back(std::move(I));
    return true;
  }

  bool parseOperands(Instruction &I) {
    auto UseReg = [&](void) -> bool {
      VRegId R;
      if (!parseUseReg(R))
        return false;
      I.Ops.push_back(Operand::reg(R));
      return true;
    };
    auto Comma = [&]() { return expectPunct(','); };

    switch (I.Op) {
    case Opcode::MovI: {
      int64_t V;
      if (!parseIntLit(V))
        return false;
      I.Ops.push_back(Operand::intImm(V));
      return true;
    }
    case Opcode::MovF: {
      if (at(Token::Kind::FloatLit)) {
        I.Ops.push_back(Operand::floatImm(take().FloatValue));
        return true;
      }
      if (at(Token::Kind::IntLit)) {
        I.Ops.push_back(Operand::floatImm(double(take().IntValue)));
        return true;
      }
      return fail("expected floating literal");
    }
    case Opcode::Copy:
    case Opcode::FNeg:
    case Opcode::FAbs:
    case Opcode::FSqrt:
    case Opcode::IToF:
    case Opcode::FToI:
      return UseReg();
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      return UseReg() && Comma() && UseReg();
    case Opcode::AddI:
    case Opcode::MulI: {
      if (!UseReg() || !Comma())
        return false;
      int64_t V;
      if (!parseIntLit(V))
        return false;
      I.Ops.push_back(Operand::intImm(V));
      return true;
    }
    case Opcode::Load:
    case Opcode::FLoad: {
      uint32_t Arr;
      VRegId Idx;
      if (!parseArrayRef(Arr) || !expectPunct('[') || !parseUseReg(Idx) ||
          !expectPunct(']'))
        return false;
      I.Ops.push_back(Operand::array(Arr));
      I.Ops.push_back(Operand::reg(Idx));
      return true;
    }
    case Opcode::Store:
    case Opcode::FStore: {
      // Syntax: store @arr[%idx], %value — but operand order is
      // (value, array, index).
      uint32_t Arr;
      VRegId Idx, Val;
      if (!parseArrayRef(Arr) || !expectPunct('[') || !parseUseReg(Idx) ||
          !expectPunct(']') || !Comma() || !parseUseReg(Val))
        return false;
      I.Ops.push_back(Operand::reg(Val));
      I.Ops.push_back(Operand::array(Arr));
      I.Ops.push_back(Operand::reg(Idx));
      return true;
    }
    case Opcode::SpillLd: {
      int64_t Slot;
      if (!parseIntLit(Slot))
        return false;
      if (!ensureSpillSlot(Slot, F->regClass(I.defReg())))
        return false;
      I.Ops.push_back(Operand::intImm(Slot));
      return true;
    }
    case Opcode::SpillSt: {
      int64_t Slot;
      VRegId Val;
      if (!parseIntLit(Slot) || !Comma() || !parseUseReg(Val))
        return false;
      if (!ensureSpillSlot(Slot, F->regClass(Val)))
        return false;
      I.Ops.push_back(Operand::reg(Val));
      I.Ops.push_back(Operand::intImm(Slot));
      return true;
    }
    case Opcode::Br: {
      if (!at(Token::Kind::Ident))
        return fail("expected comparison kind after 'br'");
      std::optional<CmpKind> K = cmpByName(take().Text);
      if (!K)
        return fail("unknown comparison kind");
      I.Cmp = *K;
      uint32_t T, E;
      if (!UseReg() || !Comma() || !UseReg() || !Comma() ||
          !parseBlockRef(T) || !Comma() || !parseBlockRef(E))
        return false;
      I.Ops.push_back(Operand::block(T));
      I.Ops.push_back(Operand::block(E));
      return true;
    }
    case Opcode::Jmp: {
      uint32_t T;
      if (!parseBlockRef(T))
        return false;
      I.Ops.push_back(Operand::block(T));
      return true;
    }
    case Opcode::Ret: {
      if (at(Token::Kind::Reg))
        return UseReg();
      return true;
    }
    }
    return fail("unhandled opcode");
  }

  std::vector<Token> Tokens;
  Module &M;
  std::string &Error;
  size_t Pos = 0;

  Function *F = nullptr;
  std::map<std::string, VRegId> RegsByName;
  std::map<std::string, uint32_t> BlocksByName;
};

} // namespace

bool ra::parseModule(const std::string &Text, Module &M, std::string &Error) {
  std::vector<Token> Tokens;
  Lexer L(Text, Error);
  if (!L.run(Tokens))
    return false;
  Parser P(std::move(Tokens), M, Error);
  return P.run();
}
