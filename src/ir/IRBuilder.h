//===- ir/IRBuilder.h - Convenience instruction emission -------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder appends instructions to a chosen basic block, one helper per
/// opcode. Helpers that produce a value either write into a caller-chosen
/// register (for multi-def variables like loop indices) or mint a fresh
/// temporary when passed InvalidVReg.
///
//===----------------------------------------------------------------------===//

#ifndef RA_IR_IRBUILDER_H
#define RA_IR_IRBUILDER_H

#include "ir/Module.h"

namespace ra {

/// Appends instructions to basic blocks of one function.
class IRBuilder {
public:
  IRBuilder(Module &M, Function &F) : M(M), F(F) {}

  Module &module() { return M; }
  Function &function() { return F; }

  /// Creates a block and returns its id (does not move the insert point).
  uint32_t newBlock(const std::string &Name = "") { return F.newBlock(Name); }

  /// Subsequent emissions append to block \p B.
  void setInsertPoint(uint32_t B) { Cur = B; }

  uint32_t insertPoint() const { return Cur; }

  /// Fresh named integer register.
  VRegId iReg(const std::string &Name = "") {
    return F.newVReg(RegClass::Int, Name);
  }

  /// Fresh named floating-point register.
  VRegId fReg(const std::string &Name = "") {
    return F.newVReg(RegClass::Float, Name);
  }

  //===--------------------------------------------------------------===//
  // Value-producing instructions. Pass Dst == InvalidVReg to mint a
  // fresh temporary of the correct class; the chosen register is
  // returned either way.
  //===--------------------------------------------------------------===//

  VRegId movI(int64_t V, VRegId Dst = InvalidVReg) {
    Dst = ensure(Dst, RegClass::Int);
    emit({Opcode::MovI, {Operand::reg(Dst), Operand::intImm(V)}});
    return Dst;
  }

  VRegId movF(double V, VRegId Dst = InvalidVReg) {
    Dst = ensure(Dst, RegClass::Float);
    emit({Opcode::MovF, {Operand::reg(Dst), Operand::floatImm(V)}});
    return Dst;
  }

  VRegId copy(VRegId Src, VRegId Dst = InvalidVReg) {
    Dst = ensure(Dst, F.regClass(Src));
    emit({Opcode::Copy, {Operand::reg(Dst), Operand::reg(Src)}});
    return Dst;
  }

  VRegId binop(Opcode Op, VRegId A, VRegId B, VRegId Dst, RegClass RC) {
    Dst = ensure(Dst, RC);
    emit({Op, {Operand::reg(Dst), Operand::reg(A), Operand::reg(B)}});
    return Dst;
  }

  VRegId add(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::Add, A, B, Dst, RegClass::Int);
  }
  VRegId sub(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::Sub, A, B, Dst, RegClass::Int);
  }
  VRegId mul(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::Mul, A, B, Dst, RegClass::Int);
  }
  VRegId div(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::Div, A, B, Dst, RegClass::Int);
  }
  VRegId rem(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::Rem, A, B, Dst, RegClass::Int);
  }

  VRegId addI(VRegId A, int64_t Imm, VRegId Dst = InvalidVReg) {
    Dst = ensure(Dst, RegClass::Int);
    emit({Opcode::AddI,
          {Operand::reg(Dst), Operand::reg(A), Operand::intImm(Imm)}});
    return Dst;
  }

  VRegId mulI(VRegId A, int64_t Imm, VRegId Dst = InvalidVReg) {
    Dst = ensure(Dst, RegClass::Int);
    emit({Opcode::MulI,
          {Operand::reg(Dst), Operand::reg(A), Operand::intImm(Imm)}});
    return Dst;
  }

  VRegId fadd(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::FAdd, A, B, Dst, RegClass::Float);
  }
  VRegId fsub(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::FSub, A, B, Dst, RegClass::Float);
  }
  VRegId fmul(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::FMul, A, B, Dst, RegClass::Float);
  }
  VRegId fdiv(VRegId A, VRegId B, VRegId Dst = InvalidVReg) {
    return binop(Opcode::FDiv, A, B, Dst, RegClass::Float);
  }

  VRegId unop(Opcode Op, VRegId A, VRegId Dst, RegClass RC) {
    Dst = ensure(Dst, RC);
    emit({Op, {Operand::reg(Dst), Operand::reg(A)}});
    return Dst;
  }

  VRegId fneg(VRegId A, VRegId Dst = InvalidVReg) {
    return unop(Opcode::FNeg, A, Dst, RegClass::Float);
  }
  VRegId fabs(VRegId A, VRegId Dst = InvalidVReg) {
    return unop(Opcode::FAbs, A, Dst, RegClass::Float);
  }
  VRegId fsqrt(VRegId A, VRegId Dst = InvalidVReg) {
    return unop(Opcode::FSqrt, A, Dst, RegClass::Float);
  }
  VRegId itof(VRegId A, VRegId Dst = InvalidVReg) {
    return unop(Opcode::IToF, A, Dst, RegClass::Float);
  }
  VRegId ftoi(VRegId A, VRegId Dst = InvalidVReg) {
    return unop(Opcode::FToI, A, Dst, RegClass::Int);
  }

  VRegId load(uint32_t Array, VRegId Index, VRegId Dst = InvalidVReg) {
    RegClass RC = M.array(Array).Elem;
    Dst = ensure(Dst, RC);
    emit({RC == RegClass::Int ? Opcode::Load : Opcode::FLoad,
          {Operand::reg(Dst), Operand::array(Array), Operand::reg(Index)}});
    return Dst;
  }

  void store(uint32_t Array, VRegId Index, VRegId Value) {
    RegClass RC = M.array(Array).Elem;
    assert(F.regClass(Value) == RC && "stored value class mismatch");
    emit({RC == RegClass::Int ? Opcode::Store : Opcode::FStore,
          {Operand::reg(Value), Operand::array(Array), Operand::reg(Index)}});
  }

  //===--------------------------------------------------------------===//
  // Terminators.
  //===--------------------------------------------------------------===//

  void br(CmpKind K, VRegId A, VRegId B, uint32_t IfTrue, uint32_t IfFalse) {
    assert(F.regClass(A) == F.regClass(B) && "mixed-class comparison");
    emit({Opcode::Br, K,
          {Operand::reg(A), Operand::reg(B), Operand::block(IfTrue),
           Operand::block(IfFalse)}});
  }

  void jmp(uint32_t Target) {
    emit({Opcode::Jmp, {Operand::block(Target)}});
  }

  void ret() { emit({Opcode::Ret, {}}); }

  /// Return yielding \p Value to the harness (keeps the value observably
  /// live so final results are not dead code).
  void ret(VRegId Value) { emit({Opcode::Ret, {Operand::reg(Value)}}); }

  /// Appends an arbitrary prebuilt instruction.
  void emit(Instruction I) {
    assert(Cur < F.numBlocks() && "no insertion point set");
    F.block(Cur).Insts.push_back(std::move(I));
  }

private:
  VRegId ensure(VRegId Dst, RegClass RC) {
    if (Dst == InvalidVReg)
      return F.newVReg(RC);
    assert(F.regClass(Dst) == RC && "destination class mismatch");
    return Dst;
  }

  Module &M;
  Function &F;
  uint32_t Cur = 0;
};

} // namespace ra

#endif // RA_IR_IRBUILDER_H
