//===- ir/Opcode.h - IR opcodes and traits ---------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes of the three-address intermediate representation. The set
/// mirrors what a late-1980s RISC code generator (the paper's IBM RT/PC
/// target) would expose to a Chaitin-style allocator: register-register
/// arithmetic in two register classes, register+immediate forms, array
/// loads/stores, compare-and-branch, and dedicated spill traffic opcodes
/// so spill code inserted by the allocator is visible to the cost model.
///
//===----------------------------------------------------------------------===//

#ifndef RA_IR_OPCODE_H
#define RA_IR_OPCODE_H

#include <cstdint>

namespace ra {

/// Register classes. The RT/PC has sixteen general purpose (integer)
/// registers and eight floating-point registers in disjoint files.
enum class RegClass : uint8_t { Int = 0, Float = 1 };

/// Number of distinct register classes.
inline constexpr unsigned NumRegClasses = 2;

/// Printable name of a register class ("int" / "flt").
const char *regClassName(RegClass RC);

/// IR operation codes.
enum class Opcode : uint8_t {
  // Constants and copies.
  MovI,  ///< int reg = integer immediate
  MovF,  ///< float reg = floating immediate
  Copy,  ///< reg = reg (same class; the coalescable copy)

  // Integer arithmetic (three-address, register operands).
  Add, Sub, Mul, Div, Rem,
  // Integer register+immediate forms.
  AddI, ///< int reg = reg + imm
  MulI, ///< int reg = reg * imm

  // Floating-point arithmetic.
  FAdd, FSub, FMul, FDiv,
  FNeg,  ///< float reg = -reg
  FAbs,  ///< float reg = |reg|
  FSqrt, ///< float reg = sqrt(reg)

  // Conversions.
  IToF, ///< float reg = (double) int reg
  FToI, ///< int reg = (int) float reg (truncating)

  // Array memory traffic: base is a module-level array symbol, the
  // index is an integer register.
  Load,   ///< int reg = intarray[idx]
  FLoad,  ///< float reg = fltarray[idx]
  Store,  ///< intarray[idx] = int reg
  FStore, ///< fltarray[idx] = float reg

  // Spill traffic inserted by the register allocator. The slot is an
  // integer immediate naming a per-function spill slot.
  SpillLd, ///< reg = spill-slot
  SpillSt, ///< spill-slot = reg

  // Terminators.
  Br,  ///< compare two registers of one class, branch to one of two blocks
  Jmp, ///< unconditional branch
  Ret, ///< return (optionally yielding one register to the harness)
};

/// Comparison kinds used by \c Opcode::Br.
enum class CmpKind : uint8_t { EQ, NE, LT, LE, GT, GE };

/// Printable mnemonic ("movi", "fadd", ...).
const char *opcodeName(Opcode Op);

/// Printable comparison mnemonic ("eq", "lt", ...).
const char *cmpKindName(CmpKind K);

/// True iff the opcode defines a register (which is always operand 0).
bool opcodeHasDef(Opcode Op);

/// True iff the opcode ends a basic block.
bool opcodeIsTerminator(Opcode Op);

/// Evaluates an integer comparison.
bool evalCmp(CmpKind K, int64_t L, int64_t R);

/// Evaluates a floating-point comparison.
bool evalCmp(CmpKind K, double L, double R);

} // namespace ra

#endif // RA_IR_OPCODE_H
