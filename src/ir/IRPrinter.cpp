//===- ir/IRPrinter.cpp - Textual IR output -------------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include <cctype>
#include <cstdio>

using namespace ra;

namespace {

/// Keeps only characters that are legal in identifiers.
std::string sanitize(const std::string &S) {
  std::string Out;
  for (char C : S)
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
      Out += C;
  if (Out.empty())
    Out = "v";
  return Out;
}

// The printer is also used to render verifier diagnostics, so it must
// tolerate out-of-range ids instead of asserting on them.

std::string regName(const Function &F, VRegId R) {
  if (R >= F.numVRegs())
    return "%<bad:" + std::to_string(R) + ">";
  return "%" + sanitize(F.vreg(R).Name) + "." + std::to_string(R);
}

std::string blockName(const Function &F, uint32_t B) {
  if (B >= F.numBlocks())
    return "<bad:" + std::to_string(B) + ">";
  return sanitize(F.block(B).Name) + "." + std::to_string(B);
}

std::string floatLit(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  std::string S = Buf;
  // Guarantee the literal re-parses as a float, not an integer.
  if (S.find_first_of(".eEnN") == std::string::npos)
    S += ".0";
  return S;
}

std::string operandText(const Module &M, const Function &F, const Operand &O) {
  switch (O.K) {
  case Operand::Kind::None:
    return "<none>";
  case Operand::Kind::Reg:
    return regName(F, O.Reg);
  case Operand::Kind::IntImm:
    return std::to_string(O.Imm);
  case Operand::Kind::FloatImm:
    return floatLit(O.FImm);
  case Operand::Kind::Array:
    return "@" + M.array(O.Array).Name;
  case Operand::Kind::Block:
    return blockName(F, O.Block);
  }
  return "<bad>";
}

} // namespace

std::string ra::printInstruction(const Module &M, const Function &F,
                                 const Instruction &I) {
  std::string Out;
  unsigned FirstSrc = 0;
  if (I.hasDef()) {
    Out += regName(F, I.defReg());
    Out += ":";
    Out += regClassName(F.regClass(I.defReg()));
    Out += " = ";
    FirstSrc = 1;
  }
  Out += opcodeName(I.Op);
  if (I.Op == Opcode::Br) {
    Out += " ";
    Out += cmpKindName(I.Cmp);
  }

  // Memory operations print with array-subscript syntax.
  if (I.Op == Opcode::Load || I.Op == Opcode::FLoad) {
    Out += " " + operandText(M, F, I.Ops[1]) + "[" +
           operandText(M, F, I.Ops[2]) + "]";
    return Out;
  }
  if (I.Op == Opcode::Store || I.Op == Opcode::FStore) {
    Out += " " + operandText(M, F, I.Ops[1]) + "[" +
           operandText(M, F, I.Ops[2]) + "], " + operandText(M, F, I.Ops[0]);
    return Out;
  }

  for (unsigned Idx = FirstSrc, E = I.Ops.size(); Idx != E; ++Idx) {
    Out += Idx == FirstSrc ? " " : ", ";
    Out += operandText(M, F, I.Ops[Idx]);
  }
  return Out;
}

std::string ra::printFunction(const Module &M, const Function &F) {
  std::string Out = "func @" + F.name() + " {\n";
  for (const BasicBlock &B : F.blocks()) {
    Out += "block " + blockName(F, B.Id) + ":\n";
    for (const Instruction &I : B.Insts)
      Out += "  " + printInstruction(M, F, I) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string ra::printModule(const Module &M) {
  std::string Out = "module {\n";
  for (unsigned A = 0; A < M.numArrays(); ++A) {
    const ArrayInfo &AI = M.array(A);
    Out += "array @" + AI.Name + " : " + regClassName(AI.Elem) + "[" +
           std::to_string(AI.Size) + "]\n";
  }
  for (unsigned FI = 0; FI < M.numFunctions(); ++FI)
    Out += printFunction(M, M.function(FI));
  Out += "}\n";
  return Out;
}
