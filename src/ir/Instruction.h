//===- ir/Instruction.h - Operands and instructions ------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operand and Instruction value types. An instruction is an opcode plus
/// a short operand list; when the opcode defines a register, the
/// definition is always operand 0 and every other register operand is a
/// use. That single convention keeps the allocator's def/use scanning
/// free of per-opcode special cases.
///
//===----------------------------------------------------------------------===//

#ifndef RA_IR_INSTRUCTION_H
#define RA_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace ra {

/// A virtual register id, dense per function. After the renumbering pass
/// runs, each virtual register is exactly one live range.
using VRegId = uint32_t;

/// Sentinel for "no register".
inline constexpr VRegId InvalidVReg = ~VRegId(0);

/// One instruction operand.
struct Operand {
  enum class Kind : uint8_t { None, Reg, IntImm, FloatImm, Array, Block };

  Kind K = Kind::None;
  union {
    VRegId Reg;     ///< Kind::Reg
    int64_t Imm;    ///< Kind::IntImm (also spill-slot indices)
    double FImm;    ///< Kind::FloatImm
    uint32_t Array; ///< Kind::Array — module array symbol id
    uint32_t Block; ///< Kind::Block — basic block id
  };

  Operand() : Imm(0) {}

  static Operand reg(VRegId R) {
    Operand O;
    O.K = Kind::Reg;
    O.Reg = R;
    return O;
  }
  static Operand intImm(int64_t V) {
    Operand O;
    O.K = Kind::IntImm;
    O.Imm = V;
    return O;
  }
  static Operand floatImm(double V) {
    Operand O;
    O.K = Kind::FloatImm;
    O.FImm = V;
    return O;
  }
  static Operand array(uint32_t Id) {
    Operand O;
    O.K = Kind::Array;
    O.Array = Id;
    return O;
  }
  static Operand block(uint32_t Id) {
    Operand O;
    O.K = Kind::Block;
    O.Block = Id;
    return O;
  }

  bool isReg() const { return K == Kind::Reg; }
  bool isBlock() const { return K == Kind::Block; }
};

/// One three-address instruction.
struct Instruction {
  Opcode Op = Opcode::Ret;
  CmpKind Cmp = CmpKind::EQ; ///< Meaningful only when Op == Opcode::Br.
  std::vector<Operand> Ops;

  Instruction() = default;
  Instruction(Opcode Op, std::vector<Operand> Ops)
      : Op(Op), Ops(std::move(Ops)) {}
  Instruction(Opcode Op, CmpKind Cmp, std::vector<Operand> Ops)
      : Op(Op), Cmp(Cmp), Ops(std::move(Ops)) {}

  /// True iff this instruction defines a register.
  bool hasDef() const { return opcodeHasDef(Op); }

  /// The defined register. Only valid when hasDef().
  VRegId defReg() const {
    assert(hasDef() && "instruction has no definition");
    assert(!Ops.empty() && Ops[0].isReg() && "malformed definition");
    return Ops[0].Reg;
  }

  /// Rewrites the defined register.
  void setDefReg(VRegId R) {
    assert(hasDef() && "instruction has no definition");
    Ops[0] = Operand::reg(R);
  }

  bool isTerminator() const { return opcodeIsTerminator(Op); }
  bool isCopy() const { return Op == Opcode::Copy; }

  /// Calls \p Fn(VRegId) for every register *use* (all register operands
  /// except the definition).
  template <typename CallableT> void forEachUse(CallableT Fn) const {
    unsigned First = hasDef() ? 1 : 0;
    for (unsigned I = First, E = Ops.size(); I != E; ++I)
      if (Ops[I].isReg())
        Fn(Ops[I].Reg);
  }

  /// Calls \p Fn(Operand&) for every register-use operand, allowing the
  /// callee to rewrite the register in place.
  template <typename CallableT> void forEachUseOperand(CallableT Fn) {
    unsigned First = hasDef() ? 1 : 0;
    for (unsigned I = First, E = Ops.size(); I != E; ++I)
      if (Ops[I].isReg())
        Fn(Ops[I]);
  }

  /// Calls \p Fn(uint32_t BlockId) for every block operand (terminators).
  template <typename CallableT> void forEachBlockTarget(CallableT Fn) const {
    for (const Operand &O : Ops)
      if (O.isBlock())
        Fn(O.Block);
  }
};

} // namespace ra

#endif // RA_IR_INSTRUCTION_H
