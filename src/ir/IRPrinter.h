//===- ir/IRPrinter.h - Textual IR output ----------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules, functions and instructions in the textual IR syntax
/// accepted by the parser (round-trippable). Registers print as
/// "%name.id" so debug names never collide; blocks print as "name.id".
///
//===----------------------------------------------------------------------===//

#ifndef RA_IR_IRPRINTER_H
#define RA_IR_IRPRINTER_H

#include "ir/Module.h"

#include <string>

namespace ra {

/// Renders a whole module as parseable text.
std::string printModule(const Module &M);

/// Renders one function (with its enclosing module for array names).
std::string printFunction(const Module &M, const Function &F);

/// Renders one instruction on a single line (no trailing newline).
std::string printInstruction(const Module &M, const Function &F,
                             const Instruction &I);

} // namespace ra

#endif // RA_IR_IRPRINTER_H
