//===- ir/Function.h - Basic blocks and functions --------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock and Function. A function owns its virtual register table,
/// its blocks (block 0 is the entry), and the spill-slot table that the
/// register allocator grows as it inserts spill code.
///
//===----------------------------------------------------------------------===//

#ifndef RA_IR_FUNCTION_H
#define RA_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace ra {

/// Static information about one virtual register / live range.
struct VRegInfo {
  std::string Name;          ///< Debug name ("i", "da.3", "spill.t12", ...).
  RegClass Class = RegClass::Int;
  bool IsSpillTemp = false;  ///< Created by the spill-code inserter.
};

/// A straight-line run of instructions ending in one terminator.
struct BasicBlock {
  uint32_t Id = 0;
  std::string Name;
  std::vector<Instruction> Insts;

  /// The terminator, which must be the last instruction.
  const Instruction &terminator() const {
    assert(!Insts.empty() && Insts.back().isTerminator() &&
           "block is not terminated");
    return Insts.back();
  }

  /// Successor block ids in terminator operand order.
  std::vector<uint32_t> successors() const {
    std::vector<uint32_t> Out;
    terminator().forEachBlockTarget([&Out](uint32_t B) { Out.push_back(B); });
    return Out;
  }
};

/// A single routine: the unit over which the allocator runs.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  //===--------------------------------------------------------------===//
  // Virtual registers.
  //===--------------------------------------------------------------===//

  /// Creates a fresh virtual register of class \p RC.
  VRegId newVReg(RegClass RC, std::string RegName = "",
                 bool IsSpillTemp = false) {
    VRegId Id = VRegs.size();
    if (RegName.empty())
      RegName = "v" + std::to_string(Id);
    VRegs.push_back({std::move(RegName), RC, IsSpillTemp});
    return Id;
  }

  unsigned numVRegs() const { return VRegs.size(); }

  const VRegInfo &vreg(VRegId Id) const {
    assert(Id < VRegs.size() && "vreg id out of range");
    return VRegs[Id];
  }

  VRegInfo &vreg(VRegId Id) {
    assert(Id < VRegs.size() && "vreg id out of range");
    return VRegs[Id];
  }

  RegClass regClass(VRegId Id) const { return vreg(Id).Class; }

  /// Replaces the whole register table. Used by the renumbering pass,
  /// which rewrites every register operand to a fresh, dense id space.
  void setVRegTable(std::vector<VRegInfo> NewTable) {
    VRegs = std::move(NewTable);
  }

  //===--------------------------------------------------------------===//
  // Blocks.
  //===--------------------------------------------------------------===//

  /// Appends an (empty) block. Block 0 is the function entry.
  uint32_t newBlock(std::string BlockName = "") {
    uint32_t Id = Blocks.size();
    if (BlockName.empty())
      BlockName = "bb" + std::to_string(Id);
    Blocks.push_back({Id, std::move(BlockName), {}});
    return Id;
  }

  unsigned numBlocks() const { return Blocks.size(); }

  BasicBlock &block(uint32_t Id) {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }

  const BasicBlock &block(uint32_t Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }

  std::vector<BasicBlock> &blocks() { return Blocks; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// Entry block id (always 0 for a non-empty function).
  uint32_t entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return 0;
  }

  /// Total instruction count across all blocks.
  unsigned numInstructions() const {
    unsigned N = 0;
    for (const BasicBlock &B : Blocks)
      N += B.Insts.size();
    return N;
  }

  //===--------------------------------------------------------------===//
  // Spill slots.
  //===--------------------------------------------------------------===//

  /// Reserves a new spill slot holding a value of class \p RC.
  unsigned newSpillSlot(RegClass RC) {
    SpillSlots.push_back(RC);
    return SpillSlots.size() - 1;
  }

  unsigned numSpillSlots() const { return SpillSlots.size(); }

  RegClass spillSlotClass(unsigned Slot) const {
    assert(Slot < SpillSlots.size() && "spill slot out of range");
    return SpillSlots[Slot];
  }

private:
  std::string Name;
  std::vector<VRegInfo> VRegs;
  std::vector<BasicBlock> Blocks;
  std::vector<RegClass> SpillSlots;
};

} // namespace ra

#endif // RA_IR_FUNCTION_H
