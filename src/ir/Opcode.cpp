//===- ir/Opcode.cpp - IR opcodes and traits ------------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace ra;

const char *ra::regClassName(RegClass RC) {
  return RC == RegClass::Int ? "int" : "flt";
}

const char *ra::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::MovI:    return "movi";
  case Opcode::MovF:    return "movf";
  case Opcode::Copy:    return "copy";
  case Opcode::Add:     return "add";
  case Opcode::Sub:     return "sub";
  case Opcode::Mul:     return "mul";
  case Opcode::Div:     return "div";
  case Opcode::Rem:     return "rem";
  case Opcode::AddI:    return "addi";
  case Opcode::MulI:    return "muli";
  case Opcode::FAdd:    return "fadd";
  case Opcode::FSub:    return "fsub";
  case Opcode::FMul:    return "fmul";
  case Opcode::FDiv:    return "fdiv";
  case Opcode::FNeg:    return "fneg";
  case Opcode::FAbs:    return "fabs";
  case Opcode::FSqrt:   return "fsqrt";
  case Opcode::IToF:    return "itof";
  case Opcode::FToI:    return "ftoi";
  case Opcode::Load:    return "load";
  case Opcode::FLoad:   return "fload";
  case Opcode::Store:   return "store";
  case Opcode::FStore:  return "fstore";
  case Opcode::SpillLd: return "spill.ld";
  case Opcode::SpillSt: return "spill.st";
  case Opcode::Br:      return "br";
  case Opcode::Jmp:     return "jmp";
  case Opcode::Ret:     return "ret";
  }
  assert(false && "unknown opcode");
  return "<bad>";
}

const char *ra::cmpKindName(CmpKind K) {
  switch (K) {
  case CmpKind::EQ: return "eq";
  case CmpKind::NE: return "ne";
  case CmpKind::LT: return "lt";
  case CmpKind::LE: return "le";
  case CmpKind::GT: return "gt";
  case CmpKind::GE: return "ge";
  }
  assert(false && "unknown comparison");
  return "<bad>";
}

bool ra::opcodeHasDef(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::FStore:
  case Opcode::SpillSt:
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    return false;
  default:
    return true;
  }
}

bool ra::opcodeIsTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
}

bool ra::evalCmp(CmpKind K, int64_t L, int64_t R) {
  switch (K) {
  case CmpKind::EQ: return L == R;
  case CmpKind::NE: return L != R;
  case CmpKind::LT: return L < R;
  case CmpKind::LE: return L <= R;
  case CmpKind::GT: return L > R;
  case CmpKind::GE: return L >= R;
  }
  assert(false && "unknown comparison");
  return false;
}

bool ra::evalCmp(CmpKind K, double L, double R) {
  switch (K) {
  case CmpKind::EQ: return L == R;
  case CmpKind::NE: return L != R;
  case CmpKind::LT: return L < R;
  case CmpKind::LE: return L <= R;
  case CmpKind::GT: return L > R;
  case CmpKind::GE: return L >= R;
  }
  assert(false && "unknown comparison");
  return false;
}
