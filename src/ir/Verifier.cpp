//===- ir/Verifier.cpp - IR well-formedness checks ------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"
#include "support/BitVector.h"

#include <deque>

using namespace ra;

namespace {

/// Collects errors for one function.
class FunctionVerifier {
public:
  FunctionVerifier(const Module &M, const Function &F) : M(M), F(F) {}

  std::vector<std::string> run() {
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return Errors;
    }
    for (const BasicBlock &B : F.blocks())
      checkBlock(B);
    if (Errors.empty())
      checkDefiniteAssignment();
    return Errors;
  }

private:
  void error(const std::string &Msg) {
    Errors.push_back("@" + F.name() + ": " + Msg);
  }

  void errorAt(const BasicBlock &B, const Instruction &I,
               const std::string &Msg) {
    error("in " + B.Name + ": '" + printInstruction(M, F, I) + "': " + Msg);
  }

  bool checkReg(const BasicBlock &B, const Instruction &I, const Operand &O,
                RegClass Expected) {
    if (!O.isReg()) {
      errorAt(B, I, "expected a register operand");
      return false;
    }
    if (O.Reg >= F.numVRegs()) {
      errorAt(B, I, "register id out of range");
      return false;
    }
    if (F.regClass(O.Reg) != Expected) {
      errorAt(B, I, std::string("operand must be of class ") +
                        regClassName(Expected));
      return false;
    }
    return true;
  }

  bool checkCount(const BasicBlock &B, const Instruction &I, unsigned N) {
    if (I.Ops.size() == N)
      return true;
    errorAt(B, I, "expected " + std::to_string(N) + " operands, found " +
                      std::to_string(I.Ops.size()));
    return false;
  }

  bool checkKind(const BasicBlock &B, const Instruction &I, unsigned Idx,
                 Operand::Kind K, const char *What) {
    if (I.Ops[Idx].K == K)
      return true;
    errorAt(B, I, std::string("operand ") + std::to_string(Idx) +
                      " must be " + What);
    return false;
  }

  void checkBlock(const BasicBlock &B) {
    if (B.Insts.empty()) {
      error("block " + B.Name + " is empty (needs a terminator)");
      return;
    }
    for (unsigned Idx = 0, E = B.Insts.size(); Idx != E; ++Idx) {
      const Instruction &I = B.Insts[Idx];
      bool IsLast = Idx + 1 == E;
      if (I.isTerminator() != IsLast) {
        errorAt(B, I, IsLast ? "block does not end in a terminator"
                             : "terminator in the middle of a block");
        return;
      }
      checkSignature(B, I);
    }
  }

  void checkSignature(const BasicBlock &B, const Instruction &I) {
    using K = Operand::Kind;
    const RegClass IC = RegClass::Int, FC = RegClass::Float;
    switch (I.Op) {
    case Opcode::MovI:
      if (checkCount(B, I, 2) && checkReg(B, I, I.Ops[0], IC))
        checkKind(B, I, 1, K::IntImm, "an integer immediate");
      return;
    case Opcode::MovF:
      if (checkCount(B, I, 2) && checkReg(B, I, I.Ops[0], FC))
        checkKind(B, I, 1, K::FloatImm, "a floating immediate");
      return;
    case Opcode::Copy:
      if (!checkCount(B, I, 2))
        return;
      if (!I.Ops[0].isReg() || !I.Ops[1].isReg() ||
          I.Ops[0].Reg >= F.numVRegs() || I.Ops[1].Reg >= F.numVRegs()) {
        errorAt(B, I, "copy needs two in-range registers");
        return;
      }
      if (F.regClass(I.Ops[0].Reg) != F.regClass(I.Ops[1].Reg))
        errorAt(B, I, "copy between different register classes");
      return;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
      if (checkCount(B, I, 3))
        for (unsigned Idx = 0; Idx < 3; ++Idx)
          checkReg(B, I, I.Ops[Idx], IC);
      return;
    case Opcode::AddI:
    case Opcode::MulI:
      if (checkCount(B, I, 3) && checkReg(B, I, I.Ops[0], IC) &&
          checkReg(B, I, I.Ops[1], IC))
        checkKind(B, I, 2, K::IntImm, "an integer immediate");
      return;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      if (checkCount(B, I, 3))
        for (unsigned Idx = 0; Idx < 3; ++Idx)
          checkReg(B, I, I.Ops[Idx], FC);
      return;
    case Opcode::FNeg:
    case Opcode::FAbs:
    case Opcode::FSqrt:
      if (checkCount(B, I, 2)) {
        checkReg(B, I, I.Ops[0], FC);
        checkReg(B, I, I.Ops[1], FC);
      }
      return;
    case Opcode::IToF:
      if (checkCount(B, I, 2)) {
        checkReg(B, I, I.Ops[0], FC);
        checkReg(B, I, I.Ops[1], IC);
      }
      return;
    case Opcode::FToI:
      if (checkCount(B, I, 2)) {
        checkReg(B, I, I.Ops[0], IC);
        checkReg(B, I, I.Ops[1], FC);
      }
      return;
    case Opcode::Load:
    case Opcode::FLoad: {
      if (!checkCount(B, I, 3))
        return;
      RegClass Elem = I.Op == Opcode::Load ? IC : FC;
      checkReg(B, I, I.Ops[0], Elem);
      checkArray(B, I, 1, Elem);
      checkReg(B, I, I.Ops[2], IC);
      return;
    }
    case Opcode::Store:
    case Opcode::FStore: {
      if (!checkCount(B, I, 3))
        return;
      RegClass Elem = I.Op == Opcode::Store ? IC : FC;
      checkReg(B, I, I.Ops[0], Elem);
      checkArray(B, I, 1, Elem);
      checkReg(B, I, I.Ops[2], IC);
      return;
    }
    case Opcode::SpillLd:
      if (!checkCount(B, I, 2) || !I.Ops[0].isReg())
        return;
      checkSlot(B, I, 1, F.regClass(I.Ops[0].Reg));
      return;
    case Opcode::SpillSt:
      if (!checkCount(B, I, 2) || !I.Ops[0].isReg())
        return;
      checkSlot(B, I, 1, F.regClass(I.Ops[0].Reg));
      return;
    case Opcode::Br: {
      if (!checkCount(B, I, 4))
        return;
      if (!I.Ops[0].isReg() || I.Ops[0].Reg >= F.numVRegs()) {
        errorAt(B, I, "bad comparison operand");
        return;
      }
      RegClass RC = F.regClass(I.Ops[0].Reg);
      checkReg(B, I, I.Ops[1], RC);
      checkBlockRef(B, I, 2);
      checkBlockRef(B, I, 3);
      return;
    }
    case Opcode::Jmp:
      if (checkCount(B, I, 1))
        checkBlockRef(B, I, 0);
      return;
    case Opcode::Ret:
      if (I.Ops.size() > 1) {
        errorAt(B, I, "ret takes at most one register");
        return;
      }
      if (I.Ops.size() == 1 &&
          (!I.Ops[0].isReg() || I.Ops[0].Reg >= F.numVRegs()))
        errorAt(B, I, "bad ret operand");
      return;
    }
  }

  void checkArray(const BasicBlock &B, const Instruction &I, unsigned Idx,
                  RegClass Elem) {
    if (!checkKind(B, I, Idx, Operand::Kind::Array, "an array"))
      return;
    if (I.Ops[Idx].Array >= M.numArrays()) {
      errorAt(B, I, "array id out of range");
      return;
    }
    if (M.array(I.Ops[Idx].Array).Elem != Elem)
      errorAt(B, I, "array element class mismatch");
  }

  void checkSlot(const BasicBlock &B, const Instruction &I, unsigned Idx,
                 RegClass RC) {
    if (!checkKind(B, I, Idx, Operand::Kind::IntImm, "a spill slot"))
      return;
    int64_t Slot = I.Ops[Idx].Imm;
    if (Slot < 0 || unsigned(Slot) >= F.numSpillSlots()) {
      errorAt(B, I, "spill slot out of range");
      return;
    }
    if (F.spillSlotClass(unsigned(Slot)) != RC)
      errorAt(B, I, "spill slot class mismatch");
  }

  void checkBlockRef(const BasicBlock &B, const Instruction &I, unsigned Idx) {
    if (!checkKind(B, I, Idx, Operand::Kind::Block, "a block"))
      return;
    if (I.Ops[Idx].Block >= F.numBlocks())
      errorAt(B, I, "branch to out-of-range block");
  }

  /// Forward dataflow: a register is definitely assigned at a use iff a
  /// definition precedes it on every path from the entry.
  void checkDefiniteAssignment() {
    unsigned NB = F.numBlocks(), NR = F.numVRegs();
    // In[b] = intersection over predecessors of Out[p]; Out = In U defs.
    std::vector<BitVector> Out(NB, BitVector(NR));
    std::vector<bool> Reached(NB, false);
    std::vector<std::vector<uint32_t>> Preds(NB);
    for (const BasicBlock &B : F.blocks())
      for (uint32_t S : B.successors())
        Preds[S].push_back(B.Id);

    // Initialize Out[b] to "everything" for unprocessed blocks so the
    // intersection over predecessors starts from the top element.
    for (BitVector &BV : Out)
      BV.setAll();

    std::deque<uint32_t> Work;
    Work.push_back(F.entry());
    std::vector<bool> InWork(NB, false);
    InWork[F.entry()] = true;
    BitVector EntryIn(NR); // entry starts with nothing assigned

    while (!Work.empty()) {
      uint32_t BId = Work.front();
      Work.pop_front();
      InWork[BId] = false;
      bool FirstVisit = !Reached[BId];
      Reached[BId] = true;

      BitVector In(NR);
      bool First = true;
      if (BId == F.entry()) {
        First = false; // entry's In is empty
      } else {
        for (uint32_t P : Preds[BId]) {
          if (!Reached[P])
            continue;
          if (First) {
            In = Out[P];
            First = false;
          } else {
            In.intersectWith(Out[P]);
          }
        }
      }
      if (First)
        continue; // no reached predecessor yet

      BitVector NewOut = In;
      for (const Instruction &I : F.block(BId).Insts)
        if (I.hasDef())
          NewOut.set(I.defReg());
      if (!(NewOut == Out[BId]) || FirstVisit) {
        Out[BId] = NewOut;
        for (uint32_t S : F.block(BId).successors())
          if (!InWork[S]) {
            InWork[S] = true;
            Work.push_back(S);
          }
      }
    }

    // Re-walk each reached block checking uses against the In set.
    for (const BasicBlock &B : F.blocks()) {
      if (!Reached[B.Id])
        continue;
      BitVector Live(NR);
      bool First = true;
      if (B.Id == F.entry()) {
        First = false;
      } else {
        for (uint32_t P : Preds[B.Id]) {
          if (!Reached[P])
            continue;
          if (First) {
            Live = Out[P];
            First = false;
          } else {
            Live.intersectWith(Out[P]);
          }
        }
      }
      for (const Instruction &I : B.Insts) {
        I.forEachUse([&](VRegId R) {
          if (R < Live.size() && !Live.test(R))
            errorAt(B, I,
                    "register %" + F.vreg(R).Name +
                        " may be used before definition");
        });
        if (I.hasDef())
          Live.set(I.defReg());
      }
    }
  }

  const Module &M;
  const Function &F;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> ra::verifyFunction(const Module &M,
                                            const Function &F) {
  return FunctionVerifier(M, F).run();
}

std::vector<std::string> ra::verifyModule(const Module &M) {
  std::vector<std::string> All;
  for (unsigned I = 0; I < M.numFunctions(); ++I) {
    auto Errs = verifyFunction(M, M.function(I));
    All.insert(All.end(), Errs.begin(), Errs.end());
  }
  return All;
}
