//===- regalloc/AllocationAudit.h - Post-allocation verifier ---*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent verifier for finished allocations. It re-derives
/// liveness from the rewritten function with its own dataflow solver and
/// proves, without consulting the allocator's interference graph:
///
///  * every register operand has a physical register, valid for its
///    class and inside the configured file;
///  * at every definition point, the defined register's physical
///    register is not held by any other simultaneously-live range of
///    the same class (modulo Chaitin's copy exception: a copy may share
///    its source's register, since both hold the same value there);
///  * spill loads/stores are well-formed: slot operands are in-range
///    immediates of the matching class, and every spill load is
///    preceded by a store to its slot on all paths from the entry.
///
/// Because the checks are recomputed from scratch, a bug anywhere in
/// build/coalesce/simplify/select surfaces here instead of being
/// inherited — which is what lets the allocator fall back to
/// spill-everything and report Degraded rather than emit wrong code.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_ALLOCATIONAUDIT_H
#define RA_REGALLOC_ALLOCATIONAUDIT_H

#include "regalloc/Allocator.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace ra {

/// Audits \p A as an allocation of the (rewritten) function \p F.
/// Returns every broken invariant as a human-readable message; an empty
/// vector means the allocation is provably consistent.
std::vector<std::string> auditAllocation(const Function &F,
                                         const AllocationResult &A);

/// Convenience wrapper: Ok, or an AuditFailure status carrying the first
/// few audit messages (and the total count when truncated).
Status auditAllocationStatus(const Function &F, const AllocationResult &A);

} // namespace ra

#endif // RA_REGALLOC_ALLOCATIONAUDIT_H
