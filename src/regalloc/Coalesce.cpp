//===- regalloc/Coalesce.cpp - Aggressive copy coalescing -----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coalesce.h"

#include "analysis/Liveness.h"
#include "regalloc/BuildGraph.h"
#include "support/Budget.h"
#include "support/Trace.h"
#include "support/UnionFind.h"

#include <algorithm>

using namespace ra;

unsigned ra::coalesceOnePass(Function &F, const CFG &G,
                             CoalescePolicy Policy,
                             const std::optional<MachineInfo> &Machine,
                             std::vector<CoalescedCopy> *Merges) {
  RA_TRACE_SPAN("CoalesceRound", "regalloc");
  Liveness LV = Liveness::compute(F, G);
  TriangularBitMatrix Matrix = buildInterferenceMatrix(F, LV);
  unsigned NR = F.numVRegs();

  // Degrees per vreg, needed by the conservative test.
  std::vector<uint32_t> Degree;
  if (Policy == CoalescePolicy::Conservative) {
    assert(Machine && "conservative coalescing needs register counts");
    Degree.assign(NR, 0);
    for (VRegId A = 0; A < NR; ++A)
      for (VRegId B = A + 1; B < NR; ++B)
        if (Matrix.test(A, B)) {
          ++Degree[A];
          ++Degree[B];
        }
  }

  // Briggs' test: the merged node is safe if it has fewer than k
  // neighbors whose own degree is >= k (low-degree neighbors can always
  // be simplified away first).
  auto ConservativelySafe = [&](VRegId D, VRegId S) {
    unsigned K = Machine->numRegs(F.regClass(D));
    unsigned Significant = 0;
    for (VRegId N = 0; N < NR; ++N) {
      if (N == D || N == S)
        continue;
      if (!Matrix.test(N, D) && !Matrix.test(N, S))
        continue;
      // Merging may drop this neighbor's degree by one (it loses a
      // double edge); use the pre-merge degree as the safe upper bound.
      if (Degree[N] >= K)
        ++Significant;
    }
    return Significant < K;
  };

  UnionFind UF(F.numVRegs());
  // Interference info goes stale for registers already merged this pass;
  // copies touching them wait for the next round's rebuilt matrix.
  std::vector<bool> Touched(F.numVRegs(), false);
  unsigned Merged = 0;

  for (BasicBlock &B : F.blocks()) {
    for (Instruction &I : B.Insts) {
      if (!I.isCopy())
        continue;
      VRegId D = I.Ops[0].Reg, S = I.Ops[1].Reg;
      if (D == S || Touched[D] || Touched[S])
        continue;
      if (F.regClass(D) != F.regClass(S))
        continue;
      if (Matrix.test(D, S))
        continue;
      if (Policy == CoalescePolicy::Conservative &&
          !ConservativelySafe(D, S))
        continue;
      unsigned Root = UF.unite(D, S);
      if (Merges) {
        VRegId Gone = Root == D ? S : D;
        Merges->push_back(
            {F.vreg(Gone).Name, F.vreg(Root).Name, F.regClass(D)});
      }
      // A merge with a spill temporary stays protected from re-spilling.
      F.vreg(Root).IsSpillTemp =
          F.vreg(D).IsSpillTemp || F.vreg(S).IsSpillTemp;
      Touched[D] = Touched[S] = true;
      ++Merged;
    }
  }
  if (Merged == 0)
    return 0;

  // Rewrite all operands through the union-find, then drop copies that
  // became self-copies.
  for (BasicBlock &B : F.blocks()) {
    for (Instruction &I : B.Insts) {
      if (I.hasDef())
        I.setDefReg(UF.find(I.defReg()));
      I.forEachUseOperand(
          [&UF](Operand &O) { O = Operand::reg(UF.find(O.Reg)); });
    }
    std::erase_if(B.Insts, [](const Instruction &I) {
      return I.isCopy() && I.Ops[0].Reg == I.Ops[1].Reg;
    });
  }
  return Merged;
}

CoalesceStats ra::coalesceAll(Function &F, const CFG &G,
                              CoalescePolicy Policy,
                              const std::optional<MachineInfo> &Machine,
                              Budget *Gov) {
  RA_TRACE_SPAN("Coalesce", "regalloc");
  CoalesceStats Stats;
  while (true) {
    if (Gov && !Gov->checkpoint())
      break; // over budget: stop merging; the IR is valid as-is
    unsigned Merged =
        coalesceOnePass(F, G, Policy, Machine, &Stats.Merges);
    ++Stats.Rounds;
    if (Merged == 0)
      break;
    Stats.CopiesRemoved += Merged;
  }
  RA_TRACE_COUNTER("coalesce.copies_removed", Stats.CopiesRemoved);
  RA_TRACE_COUNTER("coalesce.rounds", Stats.Rounds);
  return Stats;
}
