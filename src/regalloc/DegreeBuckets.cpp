//===- regalloc/DegreeBuckets.cpp - Matula-Beck degree lists --------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/DegreeBuckets.h"

using namespace ra;

void DegreeBuckets::init(const std::vector<uint32_t> &Degrees) {
  unsigned N = Degrees.size();
  Degree = Degrees;
  Next.assign(N, None);
  Prev.assign(N, None);
  Removed.assign(N, false);
  uint32_t MaxDegree = 0;
  for (uint32_t D : Degrees)
    MaxDegree = std::max(MaxDegree, D);
  Heads.assign(MaxDegree + 1, None);
  Live = N;
  // Insert in reverse id order so each list reads lowest-id-first.
  for (uint32_t I = N; I-- > 0;)
    pushFront(I, Degree[I]);
}

void DegreeBuckets::pushFront(uint32_t N, uint32_t D) {
  Next[N] = Heads[D];
  Prev[N] = None;
  if (Heads[D] != None)
    Prev[Heads[D]] = N;
  Heads[D] = N;
}

void DegreeBuckets::detach(uint32_t N) {
  uint32_t D = Degree[N];
  if (Prev[N] != None)
    Next[Prev[N]] = Next[N];
  else
    Heads[D] = Next[N];
  if (Next[N] != None)
    Prev[Next[N]] = Prev[N];
  Next[N] = Prev[N] = None;
}

void DegreeBuckets::remove(uint32_t N) {
  assert(!Removed[N] && "node removed twice");
  detach(N);
  Removed[N] = true;
  --Live;
}

void DegreeBuckets::decrementDegree(uint32_t N) {
  assert(!Removed[N] && "decrementing a removed node");
  assert(Degree[N] > 0 && "degree underflow");
  detach(N);
  --Degree[N];
  pushFront(N, Degree[N]);
}

uint32_t DegreeBuckets::lowestNonEmpty(uint32_t StartHint) const {
  for (uint32_t D = StartHint, E = Heads.size(); D < E; ++D)
    if (Heads[D] != None)
      return D;
  return None;
}
