//===- regalloc/GraphDump.h - Graphviz output ------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders interference graphs in Graphviz DOT format for inspection
/// (`dot -Tsvg graph.dot`). Colored nodes are filled with a palette
/// color per register; spilled nodes are drawn as grey boxes.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_GRAPHDUMP_H
#define RA_REGALLOC_GRAPHDUMP_H

#include "regalloc/Coloring.h"

#include <string>

namespace ra {

/// Renders \p G as an undirected DOT graph. With a non-null \p Result,
/// nodes are annotated with their assigned color (fill color chosen
/// from a small palette, cycling) or marked spilled.
std::string dumpGraphviz(const InterferenceGraph &G,
                         const ColoringResult *Result = nullptr,
                         const std::string &Name = "interference");

} // namespace ra

#endif // RA_REGALLOC_GRAPHDUMP_H
