//===- regalloc/ParallelSelect.h - Speculate-and-repair select -*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel Select over one interference graph, after Rokos, Gorman &
/// Kelly ("A Fast and Scalable Graph Coloring Algorithm for Multi-core
/// and Many-core Architectures"): color the select order speculatively
/// in chunks, detect nodes whose color disagrees with the sequential
/// greedy rule, re-color only those, and repeat until none disagree.
///
/// Why this reproduces the sequential Select *byte-identically*: rank
/// every stack node by its position in select order (reverse removal
/// order). The sequential phase assigns each node the lowest color in
/// [0, K) unused by its lower-ranked colored neighbors — mex over
/// earlier ranks — or spill when none is free. That makes the
/// sequential coloring the *unique* array satisfying
///
///     color[n] = mex{ color[m] : m adjacent to n, rank[m] < rank[n] }
///
/// for every stack node n (unique by induction on rank: rank 0 is
/// forced, and each next value is a function of strictly earlier ones).
/// Detection therefore checks *equality with the mex*, not mere
/// validity — a stale read can leave a node with a legal-but-too-high
/// color, which a validity check would miss. Any state where every node
/// satisfies its equation IS the sequential answer, so the engine is
/// deterministic at every thread count, chunk size, and interleaving.
///
/// Termination: consider the lowest-ranked wrong node after a round's
/// join. All its lower-ranked neighbors are correct and are not wrong,
/// hence not re-colored next round; repairing it reads only settled
/// final values, so it becomes correct and stays correct (its equation
/// inputs never change again). The minimum wrong rank strictly
/// increases every repair round, bounding rounds by the stack size; in
/// practice conflicts shrink geometrically and a handful of rounds
/// suffice. A sequential rank-order sweep is the MaxRounds safety
/// valve — from *any* intermediate state it lands on the fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_PARALLELSELECT_H
#define RA_REGALLOC_PARALLELSELECT_H

#include "regalloc/Coloring.h"
#include "regalloc/InterferenceGraph.h"

#include <cstdint>
#include <vector>

namespace ra {

/// Runs speculate-and-repair select over finalized graph \p G.
/// \p SelectOrder lists stack nodes lowest rank first (reverse removal
/// order; Chaitin-spilled nodes absent). On return `ColorOf[n]` for
/// every node in the order equals the sequential Select result (-1 =
/// uncolorable, i.e. Briggs spill); nodes outside the order are left
/// untouched. \p Rounds receives one entry per round. The caller
/// derives Spilled/SpilledCost/NumColorsUsed in a sequential sweep so
/// accumulation order matches the sequential phase exactly.
void runParallelSelect(const InterferenceGraph &G, unsigned K,
                       const std::vector<uint32_t> &SelectOrder,
                       const SelectOptions &SO, std::vector<int32_t> &ColorOf,
                       std::vector<SelectRound> &Rounds);

/// The color the sequential greedy rule gives \p Node under \p Colors:
/// lowest color in [0, K) unused by neighbors with Rank[m] < Rank[Node]
/// and Colors[m] >= 0, or -1 when all K are taken. Rank is ~0u for
/// nodes outside the select order (never constrains). Reference
/// implementation for tests and for conflict detection.
int32_t greedySelectColor(const InterferenceGraph &G, unsigned K,
                          const std::vector<uint32_t> &Rank,
                          const std::vector<int32_t> &Colors, uint32_t Node);

/// Rank positions in \p SelectOrder whose node violates its greedy
/// equation under \p Colors — the exact set a repair round would
/// re-color. Sequential; exposed for unit tests on hand-built adjacency.
std::vector<uint32_t>
findSelectConflicts(const InterferenceGraph &G, unsigned K,
                    const std::vector<uint32_t> &SelectOrder,
                    const std::vector<int32_t> &Colors);

} // namespace ra

#endif // RA_REGALLOC_PARALLELSELECT_H
