//===- regalloc/BuildGraph.h - Interference graph construction -*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds interference graphs from liveness. Each block is walked
/// backward from its live-out set; a definition interferes with every
/// live range live at that point — except, for a Copy, the copy source
/// (Chaitin's rule, which is what makes coalescing possible).
///
/// Integer and floating-point registers live in disjoint files on the
/// target, so one graph is built per register class, each with a dense
/// node numbering and a mapping back to vreg ids.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_BUILDGRAPH_H
#define RA_REGALLOC_BUILDGRAPH_H

#include "analysis/Liveness.h"
#include "regalloc/InterferenceGraph.h"

#include <array>

namespace ra {

class Budget;

/// The interference graph of one register class plus the node<->vreg
/// correspondence.
struct ClassGraph {
  RegClass Class = RegClass::Int;
  InterferenceGraph Graph;
  std::vector<VRegId> NodeToVReg;   ///< dense node id -> vreg id
  std::vector<uint32_t> VRegToNode; ///< vreg id -> node id or ~0u
};

/// Builds per-class interference graphs for \p F. Spill costs on the
/// nodes are left zero; callers fill them via \c setNodeCosts.
///
/// \p Gov, when non-null, is polled once per block during the
/// interference walk; a tripped budget stops the build early (the
/// graphs are then partial — callers must check the token and discard
/// them before coloring).
std::array<ClassGraph, NumRegClasses>
buildInterferenceGraphs(const Function &F, const Liveness &LV,
                        Budget *Gov = nullptr);

/// Copies \p Costs (per vreg) onto the graph nodes and marks spill
/// temporaries NoSpill.
void setNodeCosts(const Function &F, const std::vector<double> &Costs,
                  ClassGraph &CG);

/// Builds a whole-function interference matrix over *all* vregs (both
/// classes), used by the coalescer for O(1) interference tests.
TriangularBitMatrix buildInterferenceMatrix(const Function &F,
                                            const Liveness &LV);

} // namespace ra

#endif // RA_REGALLOC_BUILDGRAPH_H
