//===- regalloc/SpillHeap.h - Lazy spill-candidate heap --------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// O(log n) selection of Chaitin's spill candidate — the live node
/// minimizing SpillCost / current degree (Section 2.3) — replacing the
/// O(n) rescan of every live node on every stuck step.
///
/// The heap is *lazy*: entries are never updated in place. The first
/// stuck step heapifies all live nodes; afterwards every degree
/// decrement pushes a fresh entry, and selection pops and discards
/// entries that no longer match the node's current state (removed, or a
/// stale degree). Degrees only decrease during simplify, so the entry
/// carrying a node's current degree is always present and any entry
/// with a mismatched degree is stale by construction.
///
/// Ordering is identical to the linear scan it replaces: spillable
/// nodes beat NoSpill nodes, then lowest cost/degree ratio, then lowest
/// node id (the paper's footnote 4 tie-break) — so Chaitin and Briggs
/// still make exactly the same choices.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_SPILLHEAP_H
#define RA_REGALLOC_SPILLHEAP_H

#include "regalloc/DegreeBuckets.h"
#include "regalloc/InterferenceGraph.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ra {

/// Min-heap of (spillability, cost/degree, node id) over live nodes,
/// with lazy invalidation against a DegreeBuckets worklist.
class SpillCandidateHeap {
public:
  /// True once \c build has run; until then the owner pays nothing for
  /// maintaining the heap (the common no-spill allocation never builds).
  bool active() const { return Active; }

  /// Heapifies every live node at its current degree. O(live nodes).
  void build(const InterferenceGraph &G, const DegreeBuckets &Buckets) {
    assert(!Active && "heap already built");
    Entries.clear();
    Entries.reserve(Buckets.numLive());
    for (uint32_t N = 0, E = G.numNodes(); N != E; ++N)
      if (!Buckets.isRemoved(N))
        Entries.push_back(makeEntry(G.node(N), N, Buckets.degree(N)));
    std::make_heap(Entries.begin(), Entries.end(), HeapLess);
    Active = true;
  }

  /// Records that live node \p N now has degree \p Degree. O(log n).
  /// No-op until \c build has run.
  void update(const InterferenceGraph &G, uint32_t N, uint32_t Degree) {
    if (!Active)
      return;
    Entries.push_back(makeEntry(G.node(N), N, Degree));
    std::push_heap(Entries.begin(), Entries.end(), HeapLess);
  }

  /// Pops the best current spill candidate, discarding stale entries.
  /// The caller must remove the returned node from the graph (its
  /// entry has been consumed).
  uint32_t pick(const DegreeBuckets &Buckets) {
    assert(Active && "pick before build");
    while (!Entries.empty()) {
      std::pop_heap(Entries.begin(), Entries.end(), HeapLess);
      Entry Top = Entries.back();
      Entries.pop_back();
      if (!Buckets.isRemoved(Top.Node) &&
          Buckets.degree(Top.Node) == Top.Degree)
        return Top.Node;
    }
    assert(false && "no live node to spill");
    return DegreeBuckets::None;
  }

private:
  struct Entry {
    double Ratio;    ///< SpillCost / degree-at-push (NoSpill: infinite).
    uint32_t Node;
    uint32_t Degree; ///< Degree at push time; stale when it disagrees.
    bool NoSpill;
  };

  static Entry makeEntry(const IGNode &Node, uint32_t N, uint32_t Degree) {
    assert(Degree > 0 && "stuck with an isolated node");
    double Ratio = Node.NoSpill ? InterferenceGraph::InfiniteCost
                                : Node.SpillCost / double(Degree);
    return {Ratio, N, Degree, Node.NoSpill};
  }

  /// Strict-weak "A is a better candidate than B". Matches the linear
  /// scan: spillable first, then ratio, then lowest id.
  static bool better(const Entry &A, const Entry &B) {
    if (A.NoSpill != B.NoSpill)
      return !A.NoSpill;
    if (A.Ratio != B.Ratio)
      return A.Ratio < B.Ratio;
    return A.Node < B.Node;
  }

  /// std::*_heap comparator: a max-heap under this predicate is a
  /// min-heap under \c better.
  static bool HeapLess(const Entry &A, const Entry &B) {
    return better(B, A);
  }

  std::vector<Entry> Entries;
  bool Active = false;
};

} // namespace ra

#endif // RA_REGALLOC_SPILLHEAP_H
