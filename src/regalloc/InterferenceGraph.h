//===- regalloc/InterferenceGraph.h - Interference graph -------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interference graph: nodes are live ranges, edges connect live
/// ranges that are simultaneously live. Following Chaitin [CACC 81] the
/// graph is kept in two forms at once — a triangular bit matrix for O(1)
/// membership tests (used when adding edges and when coalescing) and
/// adjacency for iteration (used by simplify and select).
///
/// Adjacency is stored in CSR (compressed sparse row) form: edges are
/// accumulated into a flat edge list during build, then a two-pass
/// count/prefix-sum/fill pass packs every node's neighbors into one
/// contiguous array. Compared to per-node std::vectors this does two
/// allocations instead of 2E amortized ones and keeps simplify/select
/// walking sequential memory. Neighbor order within a node is edge
/// insertion order, exactly as the old per-node vectors produced, so
/// removal sequences and colorings are unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_INTERFERENCEGRAPH_H
#define RA_REGALLOC_INTERFERENCEGRAPH_H

#include "support/TriangularBitMatrix.h"

#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace ra {

/// Per-node allocator metadata.
struct IGNode {
  double SpillCost = 0;    ///< Chaitin's precomputed spill cost estimate.
  bool NoSpill = false;    ///< Spill temporaries: never choose to spill.
  uint32_t ExternalId = 0; ///< Client handle (vreg id for the allocator).
  std::string Name;        ///< Debug label.
};

/// Undirected interference graph over dense node ids [0, numNodes()).
class InterferenceGraph {
public:
  InterferenceGraph() = default;

  explicit InterferenceGraph(unsigned NumNodes) { reset(NumNodes); }

  /// Discards everything and allocates \p NumNodes isolated nodes.
  void reset(unsigned NumNodes) {
    Nodes.assign(NumNodes, IGNode());
    Degrees.assign(NumNodes, 0);
    EdgeA.clear();
    EdgeB.clear();
    Matrix.reset(NumNodes);
    CSRValid = false;
  }

  unsigned numNodes() const { return Nodes.size(); }
  unsigned numEdges() const { return EdgeA.size(); }

  IGNode &node(unsigned N) {
    assert(N < Nodes.size() && "node out of range");
    return Nodes[N];
  }
  const IGNode &node(unsigned N) const {
    assert(N < Nodes.size() && "node out of range");
    return Nodes[N];
  }

  /// Adds the undirected edge {A, B} unless it exists or A == B.
  /// Returns true iff a new edge was inserted. Invalidates the CSR
  /// layout; it is rebuilt on the next neighbor query.
  bool addEdge(unsigned A, unsigned B) {
    if (A == B)
      return false;
    if (!Matrix.testAndSet(A, B))
      return false;
    EdgeA.push_back(A);
    EdgeB.push_back(B);
    ++Degrees[A];
    ++Degrees[B];
    CSRValid = false;
    return true;
  }

  bool interferes(unsigned A, unsigned B) const { return Matrix.test(A, B); }

  /// Neighbors of \p N in edge insertion order, as a view into the CSR
  /// array. Building the CSR arrays is done lazily on first use (and by
  /// \c finalize); concurrent readers must finalize first.
  std::span<const uint32_t> neighbors(unsigned N) const {
    assert(N < Nodes.size() && "node out of range");
    if (!CSRValid)
      buildCSR();
    return {Flat.data() + Offsets[N], Degrees[N]};
  }

  /// Degree in the full (unsimplified) graph.
  unsigned degree(unsigned N) const { return Degrees[N]; }

  /// Packs the adjacency into CSR form (count / prefix-sum / fill).
  /// Idempotent; call before sharing the graph across threads so the
  /// lazy build in \c neighbors can never race.
  void finalize() const {
    if (!CSRValid)
      buildCSR();
  }

  /// Effectively-infinite spill cost for must-keep nodes.
  static constexpr double InfiniteCost = std::numeric_limits<double>::max();

  /// Estimate of the bytes \c reset(NumNodes) commits up front: the
  /// triangular bit matrix (the dominant term — O(N^2) bits, ~156 MB at
  /// 50k nodes) plus per-node metadata. The CSR edge arrays are
  /// excluded: their size is the edge count, unknown before the build
  /// walks liveness. Resource governance charges this estimate *before*
  /// constructing the graph, so a would-be OOM is refused into the
  /// degradation ladder instead of attempted.
  static uint64_t estimateBytes(uint64_t NumNodes) {
    uint64_t MatrixBytes =
        NumNodes < 2 ? 0 : (NumNodes * (NumNodes - 1) / 2 + 7) / 8;
    return MatrixBytes + NumNodes * (sizeof(IGNode) + 3 * sizeof(uint32_t));
  }

private:
  void buildCSR() const {
    unsigned N = Nodes.size();
    // Pass 1: the degree counts are maintained by addEdge; prefix-sum
    // them into row offsets.
    Offsets.assign(N + 1, 0);
    for (unsigned I = 0; I < N; ++I)
      Offsets[I + 1] = Offsets[I] + Degrees[I];
    // Pass 2: fill. Cursor starts at each row's offset; scanning the
    // edge list in insertion order reproduces the order the old
    // per-node vectors had.
    Flat.resize(Offsets[N]);
    std::vector<uint32_t> Cursor(Offsets.begin(), Offsets.end() - 1);
    for (size_t E = 0, EC = EdgeA.size(); E != EC; ++E) {
      Flat[Cursor[EdgeA[E]]++] = EdgeB[E];
      Flat[Cursor[EdgeB[E]]++] = EdgeA[E];
    }
    CSRValid = true;
  }

  std::vector<IGNode> Nodes;
  std::vector<uint32_t> Degrees;       ///< Full-graph degree per node.
  std::vector<uint32_t> EdgeA, EdgeB;  ///< Flat edge list (build order).
  TriangularBitMatrix Matrix;

  // CSR arrays, derived from the edge list on demand.
  mutable std::vector<uint32_t> Offsets; ///< Row starts, size numNodes()+1.
  mutable std::vector<uint32_t> Flat;    ///< Concatenated neighbor lists.
  mutable bool CSRValid = false;
};

} // namespace ra

#endif // RA_REGALLOC_INTERFERENCEGRAPH_H
