//===- regalloc/InterferenceGraph.h - Interference graph -------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interference graph: nodes are live ranges, edges connect live
/// ranges that are simultaneously live. Following Chaitin [CACC 81] the
/// graph is kept in two forms at once — a triangular bit matrix for O(1)
/// membership tests (used when adding edges and when coalescing) and
/// adjacency vectors for iteration (used by simplify and select).
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_INTERFERENCEGRAPH_H
#define RA_REGALLOC_INTERFERENCEGRAPH_H

#include "support/TriangularBitMatrix.h"

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ra {

/// Per-node allocator metadata.
struct IGNode {
  double SpillCost = 0;    ///< Chaitin's precomputed spill cost estimate.
  bool NoSpill = false;    ///< Spill temporaries: never choose to spill.
  uint32_t ExternalId = 0; ///< Client handle (vreg id for the allocator).
  std::string Name;        ///< Debug label.
};

/// Undirected interference graph over dense node ids [0, numNodes()).
class InterferenceGraph {
public:
  InterferenceGraph() = default;

  explicit InterferenceGraph(unsigned NumNodes) { reset(NumNodes); }

  /// Discards everything and allocates \p NumNodes isolated nodes.
  void reset(unsigned NumNodes) {
    Nodes.assign(NumNodes, IGNode());
    Adj.assign(NumNodes, {});
    Matrix.reset(NumNodes);
    Edges = 0;
  }

  unsigned numNodes() const { return Nodes.size(); }
  unsigned numEdges() const { return Edges; }

  IGNode &node(unsigned N) {
    assert(N < Nodes.size() && "node out of range");
    return Nodes[N];
  }
  const IGNode &node(unsigned N) const {
    assert(N < Nodes.size() && "node out of range");
    return Nodes[N];
  }

  /// Adds the undirected edge {A, B} unless it exists or A == B.
  /// Returns true iff a new edge was inserted.
  bool addEdge(unsigned A, unsigned B) {
    if (A == B)
      return false;
    if (!Matrix.testAndSet(A, B))
      return false;
    Adj[A].push_back(B);
    Adj[B].push_back(A);
    ++Edges;
    return true;
  }

  bool interferes(unsigned A, unsigned B) const { return Matrix.test(A, B); }

  const std::vector<uint32_t> &neighbors(unsigned N) const {
    assert(N < Adj.size() && "node out of range");
    return Adj[N];
  }

  /// Degree in the full (unsimplified) graph.
  unsigned degree(unsigned N) const { return Adj[N].size(); }

  /// Effectively-infinite spill cost for must-keep nodes.
  static constexpr double InfiniteCost = std::numeric_limits<double>::max();

private:
  std::vector<IGNode> Nodes;
  std::vector<std::vector<uint32_t>> Adj;
  TriangularBitMatrix Matrix;
  unsigned Edges = 0;
};

} // namespace ra

#endif // RA_REGALLOC_INTERFERENCEGRAPH_H
