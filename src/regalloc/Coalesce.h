//===- regalloc/Coalesce.h - Aggressive copy coalescing --------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaitin-style aggressive coalescing: a copy "d = s" whose operands do
/// not interfere is eliminated by merging the two live ranges. The
/// paper's build phase runs "repeatedly building the graph and
/// coalescing registers" until no copy can be merged; \c coalesceAll
/// drives that loop.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_COALESCE_H
#define RA_REGALLOC_COALESCE_H

#include "analysis/CFG.h"
#include "target/MachineInfo.h"

#include <optional>

namespace ra {

class Budget;

/// How eagerly copies are merged.
enum class CoalescePolicy : uint8_t {
  /// Chaitin's rule: merge every non-interfering copy. Can create
  /// uncolorable nodes (merging raises degree).
  Aggressive,
  /// The later Briggs-lineage refinement: merge only when the combined
  /// node has fewer than k neighbors of significant degree (>= k), so
  /// coalescing can never turn a colorable graph uncolorable.
  Conservative,
};

/// One live range merged away by coalescing (metrics-table feed).
struct CoalescedCopy {
  std::string Merged; ///< Name of the range that disappeared.
  std::string Into;   ///< Name of the surviving (root) range.
  RegClass Class = RegClass::Int;
};

/// Result of the coalescing fixpoint.
struct CoalesceStats {
  unsigned CopiesRemoved = 0; ///< Copies eliminated by merging.
  unsigned Rounds = 0;        ///< Build+merge rounds until fixpoint.
  /// Every merge in decision order — feeds the per-range metrics
  /// table's Coalesced rows.
  std::vector<CoalescedCopy> Merges;
};

/// Runs one build+merge round: builds the interference matrix, merges
/// every coalescable copy whose operands were not already touched by a
/// merge this round, rewrites operands, and deletes the dead copies.
/// Returns the number of copies removed; when \p Merges is non-null,
/// appends one CoalescedCopy per merge. For the Conservative policy,
/// \p Machine supplies the per-class k.
unsigned coalesceOnePass(Function &F, const CFG &G,
                         CoalescePolicy Policy = CoalescePolicy::Aggressive,
                         const std::optional<MachineInfo> &Machine = {},
                         std::vector<CoalescedCopy> *Merges = nullptr);

/// Repeats \c coalesceOnePass until no copy can be merged. \p Gov, when
/// non-null, is polled once per round; a tripped budget stops early —
/// safe at any round boundary, since coalescing is an optimization and
/// the IR is valid between rounds.
CoalesceStats coalesceAll(Function &F, const CFG &G,
                          CoalescePolicy Policy = CoalescePolicy::Aggressive,
                          const std::optional<MachineInfo> &Machine = {},
                          Budget *Gov = nullptr);

} // namespace ra

#endif // RA_REGALLOC_COALESCE_H
