//===- regalloc/Coloring.cpp - Simplify/select heuristics -----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"

#include "regalloc/DegreeBuckets.h"
#include "regalloc/ParallelSelect.h"
#include "regalloc/SpillHeap.h"
#include "support/Budget.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cassert>

using namespace ra;

const char *ra::heuristicName(Heuristic H) {
  switch (H) {
  case Heuristic::Chaitin:    return "chaitin";
  case Heuristic::Briggs:     return "briggs";
  case Heuristic::MatulaBeck: return "matula-beck";
  }
  return "<bad>";
}

namespace {

/// Removes \p N from the working graph, decrementing live neighbors and
/// pushing their refreshed cost/degree entries (once \p Spill is active).
void removeNode(const InterferenceGraph &G, DegreeBuckets &Buckets,
                SpillCandidateHeap &Spill, uint32_t N) {
  Buckets.remove(N);
  for (uint32_t M : G.neighbors(N))
    if (!Buckets.isRemoved(M)) {
      Buckets.decrementDegree(M);
      uint32_t D = Buckets.degree(M);
      if (D > 0) // isolated nodes are never spill candidates
        Spill.update(G, M, D);
    }
}

} // namespace

ColoringResult ra::colorGraph(const InterferenceGraph &G, unsigned K,
                              Heuristic H, const SelectOptions &SO) {
  assert(K >= 1 && "need at least one color");
  ColoringResult R;
  unsigned N = G.numNodes();
  R.ColorOf.assign(N, -1);
  if (N == 0)
    return R;

  // Pack adjacency into its CSR layout up front: simplify/select then
  // read only sequential memory, and concurrent colorings of already-
  // finalized graphs never mutate shared state.
  G.finalize();

  Timer SimplifyTimer, SelectTimer;

  // Counter tracking is gated on an active trace session: when off, the
  // only residue is dead local integers (and no StuckPushed allocation).
  const bool Tracing = trace::enabled();
  uint64_t StuckEntries = 0, StuckPicks = 0, OptimisticSaves = 0;
  std::vector<bool> StuckPushed;
  if (Tracing && H == Heuristic::Briggs)
    StuckPushed.assign(N, false);

  //===------------------------------------------------------------===//
  // Phase 2: simplify.
  //===------------------------------------------------------------===//
  RA_TRACE_SPAN_NAMED(SimplifySpan, "Simplify", "regalloc", [&] {
    return "nodes=" + std::to_string(N) + ";k=" + std::to_string(K) +
           ";heuristic=" + heuristicName(H);
  });
  SimplifyTimer.start();
  DegreeBuckets Buckets;
  {
    std::vector<uint32_t> Degrees(N);
    for (uint32_t I = 0; I < N; ++I)
      Degrees[I] = G.degree(I);
    Buckets.init(Degrees);
  }

  R.RemovalOrder.reserve(N);
  std::vector<bool> MarkedSpilled(N, false); // Chaitin only
  SpillCandidateHeap SpillHeap; // built on the first stuck step

  Budget *Gov = SO.Governor;
  uint32_t Hint = 0;
  bool InStuckRegion = false;
  while (Buckets.numLive() != 0) {
    if (Gov && !Gov->checkpoint())
      break; // over budget: abandon simplify, skip select entirely
    uint32_t D = Buckets.lowestNonEmpty(Hint);
    assert(D != DegreeBuckets::None && "live nodes but empty buckets");

    uint32_t Chosen;
    bool Push = true;
    if (D < K || H == Heuristic::MatulaBeck) {
      // Unconstrained node (or smallest-last regardless of K): remove
      // the head of the lowest bucket.
      Chosen = Buckets.head(D);
      InStuckRegion = false;
    } else {
      StuckEntries += !InStuckRegion;
      InStuckRegion = true;
      ++StuckPicks;
      // Stuck: every remaining node has K or more neighbors. Fall back
      // on Chaitin's estimator (Section 2.3) to choose the node, then
      // either mark it spilled (Chaitin) or push it optimistically
      // (Briggs). The lazy heap makes selection O(log n) instead of a
      // rescan of every live node; until the first stuck step it costs
      // nothing at all.
      if (!SpillHeap.active())
        SpillHeap.build(G, Buckets);
      Chosen = SpillHeap.pick(Buckets);
      if (!StuckPushed.empty())
        StuckPushed[Chosen] = true; // Briggs: optimistic push, tracked
      if (H == Heuristic::Chaitin) {
        MarkedSpilled[Chosen] = true;
        R.Spilled.push_back(Chosen);
        R.SpilledCost += G.node(Chosen).SpillCost;
        Push = false;
      }
    }

    removeNode(G, Buckets, SpillHeap, Chosen);
    if (Push)
      R.RemovalOrder.push_back(Chosen);
    // Matula-Beck's search refinement: removing a node from bucket D
    // can create degree D-1 but nothing lower.
    Hint = D == 0 ? 0 : D - 1;
  }
  SimplifyTimer.stop();
  SimplifySpan.close();

  //===------------------------------------------------------------===//
  // Phase 3: select. Rebuild the graph in reverse removal order,
  // assigning each node the first color unused by its already-inserted
  // neighbors. Uncolorable nodes are left uncolored (Briggs) — spill
  // decisions deferred to this phase.
  //===------------------------------------------------------------===//
  RA_TRACE_SPAN_NAMED(SelectSpan, "Select", "regalloc");
  SelectTimer.start();
  // A budget trip leaves the removal stack partial; select over it
  // would miscount spills (and trip the Chaitin colorability assert),
  // so the phase is skipped outright — the governed caller discards
  // the result anyway.
  const bool Tripped = Gov && Gov->exhausted();
  const bool UseParallel =
      SO.Parallel && R.RemovalOrder.size() >= SO.MinNodes;
  if (Tripped) {
    // nothing: R stays partial
  } else if (UseParallel) {
    // Speculate-and-repair engine (ParallelSelect.cpp): converges to the
    // same coloring the sequential loop below computes, at any thread
    // count. The spill list, cost sum, and counters are then derived in
    // one sequential rank-order sweep so decision order and floating-
    // point accumulation order match the sequential phase exactly.
    std::vector<uint32_t> SelectOrder(R.RemovalOrder.rbegin(),
                                      R.RemovalOrder.rend());
    runParallelSelect(G, K, SelectOrder, SO, R.ColorOf, R.SelectRounds);
    R.ParallelSelect = true;
    if (Gov && Gov->exhausted()) {
      // Repair was abandoned mid-round; the color array is partial and
      // the spill derivation below would misread it.
      SelectTimer.stop();
      SelectSpan.close();
      R.SimplifySeconds = SimplifyTimer.seconds();
      R.SelectSeconds = SelectTimer.seconds();
      return R;
    }
    for (uint32_t Node : SelectOrder) {
      int32_t Color = R.ColorOf[Node];
      if (Color < 0) {
        assert(H != Heuristic::Chaitin &&
               "Chaitin's stack nodes are always colorable");
        R.Spilled.push_back(Node);
        R.SpilledCost += G.node(Node).SpillCost;
      } else {
        R.NumColorsUsed = std::max(R.NumColorsUsed, unsigned(Color) + 1);
        if (!StuckPushed.empty() && StuckPushed[Node])
          ++OptimisticSaves; // a stuck-pushed node still found a color
      }
    }
  } else {
    std::vector<bool> Used(K);
    std::vector<bool> Inserted(N, false);
    for (auto It = R.RemovalOrder.rbegin(), E = R.RemovalOrder.rend();
         It != E; ++It) {
      if (Gov && !Gov->checkpoint())
        break; // partial coloring; governed caller discards it
      uint32_t Node = *It;
      std::fill(Used.begin(), Used.end(), false);
      for (uint32_t M : G.neighbors(Node))
        if (Inserted[M] && R.ColorOf[M] >= 0)
          Used[R.ColorOf[M]] = true;
      int32_t Color = -1;
      for (unsigned C = 0; C < K; ++C)
        if (!Used[C]) {
          Color = int32_t(C);
          break;
        }
      if (Color < 0) {
        assert(H != Heuristic::Chaitin &&
               "Chaitin's stack nodes are always colorable");
        R.Spilled.push_back(Node);
        R.SpilledCost += G.node(Node).SpillCost;
      } else {
        R.ColorOf[Node] = Color;
        R.NumColorsUsed = std::max(R.NumColorsUsed, unsigned(Color) + 1);
        if (!StuckPushed.empty() && StuckPushed[Node])
          ++OptimisticSaves; // a stuck-pushed node still found a color
      }
      Inserted[Node] = true;
    }
  }
  SelectTimer.stop();
  SelectSpan.close();

  if (Tracing) {
    RA_TRACE_COUNTER("coloring.stuck_entries", double(StuckEntries));
    RA_TRACE_COUNTER("coloring.stuck_picks", double(StuckPicks));
    if (H == Heuristic::Briggs)
      RA_TRACE_COUNTER("coloring.optimistic_saves", double(OptimisticSaves));
    RA_TRACE_COUNTER("coloring.spilled", double(R.Spilled.size()));
    if (R.ParallelSelect) {
      // Scheduling-dependent totals (they vary with thread count and
      // interleaving, like wall time) — never compare across --jobs.
      uint64_t Conflicts = 0, Recolored = 0;
      for (size_t I = 0; I != R.SelectRounds.size(); ++I) {
        Conflicts += R.SelectRounds[I].Conflicts;
        if (I > 0)
          Recolored += R.SelectRounds[I].Colored;
      }
      RA_TRACE_COUNTER("coloring.parallel.selects", 1);
      RA_TRACE_COUNTER("coloring.parallel.rounds",
                       double(R.SelectRounds.size()));
      RA_TRACE_COUNTER("coloring.parallel.conflicts", double(Conflicts));
      RA_TRACE_COUNTER("coloring.parallel.recolored", double(Recolored));
    }
  }

  R.SimplifySeconds = SimplifyTimer.seconds();
  R.SelectSeconds = SelectTimer.seconds();
  return R;
}

bool ra::isValidColoring(const InterferenceGraph &G, unsigned K,
                         const ColoringResult &R) {
  if (R.ColorOf.size() != G.numNodes())
    return false;
  for (uint32_t N = 0, E = G.numNodes(); N != E; ++N) {
    int32_t C = R.ColorOf[N];
    if (C >= int32_t(K))
      return false;
    if (C < 0)
      continue;
    for (uint32_t M : G.neighbors(N))
      if (M > N && R.ColorOf[M] == C)
        return false;
  }
  return true;
}
