//===- regalloc/Coloring.cpp - Simplify/select heuristics -----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"

#include "regalloc/DegreeBuckets.h"
#include "support/Timer.h"

#include <cassert>

using namespace ra;

const char *ra::heuristicName(Heuristic H) {
  switch (H) {
  case Heuristic::Chaitin:    return "chaitin";
  case Heuristic::Briggs:     return "briggs";
  case Heuristic::MatulaBeck: return "matula-beck";
  }
  return "<bad>";
}

namespace {

/// Scans the live nodes for Chaitin's spill candidate: the minimum
/// ratio of precomputed spill cost to *current* degree. NoSpill nodes
/// (spill temporaries) rank behind everything else; ties break toward
/// the lowest node id so all heuristics make identical choices.
uint32_t pickSpillCandidate(const InterferenceGraph &G,
                            const DegreeBuckets &Buckets) {
  uint32_t Best = DegreeBuckets::None;
  double BestRatio = 0;
  bool BestNoSpill = true;
  for (uint32_t N = 0, E = G.numNodes(); N != E; ++N) {
    if (Buckets.isRemoved(N))
      continue;
    const IGNode &Node = G.node(N);
    uint32_t Deg = Buckets.degree(N);
    assert(Deg > 0 && "stuck with an isolated node");
    double Ratio = Node.NoSpill ? InterferenceGraph::InfiniteCost
                                : Node.SpillCost / double(Deg);
    bool Better;
    if (Best == DegreeBuckets::None)
      Better = true;
    else if (Node.NoSpill != BestNoSpill)
      Better = !Node.NoSpill; // spillable beats no-spill
    else
      Better = Ratio < BestRatio;
    if (Better) {
      Best = N;
      BestRatio = Ratio;
      BestNoSpill = Node.NoSpill;
    }
  }
  assert(Best != DegreeBuckets::None && "no live node to spill");
  return Best;
}

/// Removes \p N from the working graph, decrementing live neighbors.
void removeNode(const InterferenceGraph &G, DegreeBuckets &Buckets,
                uint32_t N) {
  Buckets.remove(N);
  for (uint32_t M : G.neighbors(N))
    if (!Buckets.isRemoved(M))
      Buckets.decrementDegree(M);
}

} // namespace

ColoringResult ra::colorGraph(const InterferenceGraph &G, unsigned K,
                              Heuristic H) {
  assert(K >= 1 && "need at least one color");
  ColoringResult R;
  unsigned N = G.numNodes();
  R.ColorOf.assign(N, -1);
  if (N == 0)
    return R;

  Timer SimplifyTimer, SelectTimer;

  //===------------------------------------------------------------===//
  // Phase 2: simplify.
  //===------------------------------------------------------------===//
  SimplifyTimer.start();
  DegreeBuckets Buckets;
  {
    std::vector<uint32_t> Degrees(N);
    for (uint32_t I = 0; I < N; ++I)
      Degrees[I] = G.degree(I);
    Buckets.init(Degrees);
  }

  R.RemovalOrder.reserve(N);
  std::vector<bool> MarkedSpilled(N, false); // Chaitin only

  uint32_t Hint = 0;
  while (Buckets.numLive() != 0) {
    uint32_t D = Buckets.lowestNonEmpty(Hint);
    assert(D != DegreeBuckets::None && "live nodes but empty buckets");

    uint32_t Chosen;
    bool Push = true;
    if (D < K || H == Heuristic::MatulaBeck) {
      // Unconstrained node (or smallest-last regardless of K): remove
      // the head of the lowest bucket.
      Chosen = Buckets.head(D);
    } else {
      // Stuck: every remaining node has K or more neighbors. Fall back
      // on Chaitin's estimator (Section 2.3) to choose the node, then
      // either mark it spilled (Chaitin) or push it optimistically
      // (Briggs).
      Chosen = pickSpillCandidate(G, Buckets);
      if (H == Heuristic::Chaitin) {
        MarkedSpilled[Chosen] = true;
        R.Spilled.push_back(Chosen);
        R.SpilledCost += G.node(Chosen).SpillCost;
        Push = false;
      }
    }

    removeNode(G, Buckets, Chosen);
    if (Push)
      R.RemovalOrder.push_back(Chosen);
    // Matula-Beck's search refinement: removing a node from bucket D
    // can create degree D-1 but nothing lower.
    Hint = D == 0 ? 0 : D - 1;
  }
  SimplifyTimer.stop();

  //===------------------------------------------------------------===//
  // Phase 3: select. Rebuild the graph in reverse removal order,
  // assigning each node the first color unused by its already-inserted
  // neighbors. Uncolorable nodes are left uncolored (Briggs) — spill
  // decisions deferred to this phase.
  //===------------------------------------------------------------===//
  SelectTimer.start();
  std::vector<bool> Used(K);
  std::vector<bool> Inserted(N, false);
  for (auto It = R.RemovalOrder.rbegin(), E = R.RemovalOrder.rend(); It != E;
       ++It) {
    uint32_t Node = *It;
    std::fill(Used.begin(), Used.end(), false);
    for (uint32_t M : G.neighbors(Node))
      if (Inserted[M] && R.ColorOf[M] >= 0)
        Used[R.ColorOf[M]] = true;
    int32_t Color = -1;
    for (unsigned C = 0; C < K; ++C)
      if (!Used[C]) {
        Color = int32_t(C);
        break;
      }
    if (Color < 0) {
      assert(H != Heuristic::Chaitin &&
             "Chaitin's stack nodes are always colorable");
      R.Spilled.push_back(Node);
      R.SpilledCost += G.node(Node).SpillCost;
    } else {
      R.ColorOf[Node] = Color;
      R.NumColorsUsed = std::max(R.NumColorsUsed, unsigned(Color) + 1);
    }
    Inserted[Node] = true;
  }
  SelectTimer.stop();

  R.SimplifySeconds = SimplifyTimer.seconds();
  R.SelectSeconds = SelectTimer.seconds();
  return R;
}

bool ra::isValidColoring(const InterferenceGraph &G, unsigned K,
                         const ColoringResult &R) {
  if (R.ColorOf.size() != G.numNodes())
    return false;
  for (uint32_t N = 0, E = G.numNodes(); N != E; ++N) {
    int32_t C = R.ColorOf[N];
    if (C >= int32_t(K))
      return false;
    if (C < 0)
      continue;
    for (uint32_t M : G.neighbors(N))
      if (M > N && R.ColorOf[M] == C)
        return false;
  }
  return true;
}
