//===- regalloc/SpillInserter.h - Spill code insertion ---------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inserts spill code for live ranges chosen by a coloring heuristic:
/// "the value is stored to memory after each definition and restored
/// before each use" (Section 2.1). Each insertion introduces a tiny new
/// live range (a spill temporary), which is why the Build-Simplify-Color
/// cycle must repeat — and why it converges: the temporaries span only a
/// single instruction.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_SPILLINSERTER_H
#define RA_REGALLOC_SPILLINSERTER_H

#include "ir/Function.h"

#include <vector>

namespace ra {

/// Counts of inserted spill traffic.
struct SpillCodeStats {
  unsigned Loads = 0;  ///< spill.ld instructions inserted.
  unsigned Stores = 0; ///< spill.st instructions inserted.
  unsigned Remats = 0; ///< ranges rematerialized instead of spilled.
};

/// Rewrites \p F so that every live range in \p ToSpill lives in a
/// fresh stack slot: stores after defs, loads before uses, through
/// single-instruction spill temporaries.
///
/// With \p Rematerialize set, a spilled range whose every definition
/// loads the same constant is never stored at all: each use recomputes
/// the constant with a fresh mov (one of the refinements Chaitin
/// sketches and later allocators made standard). Constant reloads cost
/// one cycle instead of a memory round trip.
SpillCodeStats insertSpillCode(Function &F,
                               const std::vector<VRegId> &ToSpill,
                               bool Rematerialize = false);

} // namespace ra

#endif // RA_REGALLOC_SPILLINSERTER_H
