//===- regalloc/SpillInserter.h - Spill code insertion ---------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inserts spill code for live ranges chosen by a coloring heuristic:
/// "the value is stored to memory after each definition and restored
/// before each use" (Section 2.1). Each insertion introduces a tiny new
/// live range (a spill temporary), which is why the Build-Simplify-Color
/// cycle must repeat — and why it converges: the temporaries span only a
/// single instruction.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_SPILLINSERTER_H
#define RA_REGALLOC_SPILLINSERTER_H

#include "ir/Function.h"

#include <vector>

namespace ra {

/// Counts of inserted spill traffic.
struct SpillCodeStats {
  unsigned Loads = 0;  ///< spill.ld instructions inserted.
  unsigned Stores = 0; ///< spill.st instructions inserted.
  unsigned Remats = 0; ///< ranges rematerialized instead of spilled.
  /// Suffix requests demoted to whole-lifetime spills because their
  /// region contained no uses to reload (see insertSpillCode).
  unsigned Demoted = 0;
};

/// One spill decision: live range \p Reg spills from InstrNumbering
/// slot \p FromSlot to the end of its lifetime. FromSlot == 0 spills
/// the whole lifetime (the classic whole-range rewrite); a nonzero
/// slot is a *suffix* spill produced by linear-scan splitting — the
/// head of the range already holds registers and keeps reading the
/// original vreg.
struct SpillRequest {
  VRegId Reg = InvalidVReg;
  uint32_t FromSlot = 0;
};

/// Rewrites \p F so that every live range in \p ToSpill lives in a
/// fresh stack slot: stores after defs, loads before uses, through
/// single-instruction spill temporaries.
///
/// With \p Rematerialize set, a spilled range whose every definition
/// loads the same constant is never stored at all: each use recomputes
/// the constant with a fresh mov (one of the refinements Chaitin
/// sketches and later allocators made standard). Constant reloads cost
/// one cycle instead of a memory round trip.
SpillCodeStats insertSpillCode(Function &F,
                               const std::vector<VRegId> &ToSpill,
                               bool Rematerialize = false);

/// Suffix-aware overload. Whole-lifetime requests (FromSlot == 0) take
/// the classic rewrite above. A suffix request keeps the range's head
/// untouched: only uses whose read slot is >= FromSlot reload (or
/// recompute); every definition keeps writing the original vreg and is
/// followed by a store, so the slot is current whenever the suffix
/// region is entered — including over back edges from the region into
/// the head. Slots are the InstrNumbering of \p F *before* rewriting.
///
/// A suffix request whose region holds no uses at all is demoted to a
/// whole-lifetime spill. Such regions exist when an interval is live at
/// the region's slots only through a loop back edge (every textual use
/// sits at a lower-numbered slot): a store-only rewrite would change
/// neither the uses nor the liveness, and the allocator's next pass
/// would reproduce the identical request forever. Demotion retires the
/// vreg instead, so the spill loop always makes progress.
SpillCodeStats insertSpillCode(Function &F,
                               const std::vector<SpillRequest> &ToSpill,
                               bool Rematerialize = false);

} // namespace ra

#endif // RA_REGALLOC_SPILLINSERTER_H
