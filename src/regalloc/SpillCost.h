//===- regalloc/SpillCost.h - Loop-weighted spill estimates ----*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaitin's spill cost estimate, as described in Section 2.1: "the
/// number of loads and stores that would have to be inserted, weighted
/// by the loop nesting depth of each insertion point". Each definition
/// contributes one store and each use one load, weighted by
/// 10^depth(block). Spill temporaries get an effectively infinite cost
/// so re-spilling them never looks attractive and allocation converges.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_SPILLCOST_H
#define RA_REGALLOC_SPILLCOST_H

#include "analysis/LoopInfo.h"
#include "target/CostModel.h"

#include <vector>

namespace ra {

/// Per-vreg spill cost estimates for \p F.
std::vector<double> computeSpillCosts(const Function &F, const LoopInfo &LI,
                                      const CostModel &CM);

/// The loop-depth weight: 10^depth, saturating to keep doubles exact.
double loopDepthWeight(unsigned Depth);

} // namespace ra

#endif // RA_REGALLOC_SPILLCOST_H
