//===- regalloc/ModuleAlloc.cpp - Whole-module parallel allocation --------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper measures whole FORTRAN modules; this driver allocates every
// function of a module, farming functions out across a fixed thread
// pool. Each function is an independent allocation unit (allocateRegisters
// mutates only its own Function; the Module's arrays and function table
// are read-only during allocation), so any worker count produces
// bit-identical output: futures are collected in function order.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "ir/Module.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <future>
#include <vector>

using namespace ra;

namespace {

/// Converts a worker exception into a Failed result for just that
/// function. std::packaged_task stores anything the task throws in its
/// future, so \c Get rethrows here on the collecting thread — one
/// throwing function must not crash or hang the whole module.
template <typename GetT>
AllocationResult collectOne(const Function &F, const AllocatorConfig &C,
                            GetT Get) {
  try {
    return Get();
  } catch (const std::exception &E) {
    AllocationResult R;
    R.Machine = C.Machine;
    R.Diag = Status::error(StatusCode::WorkerError, E.what())
                 .addContext("allocating @" + F.name());
    return R;
  } catch (...) {
    AllocationResult R;
    R.Machine = C.Machine;
    R.Diag = Status::error(StatusCode::WorkerError,
                           "worker threw a non-standard exception")
                 .addContext("allocating @" + F.name());
    return R;
  }
}

} // namespace

ModuleAllocationResult ra::allocateModule(Module &M,
                                          const AllocatorConfig &C) {
  ModuleAllocationResult Result;
  Result.Functions.resize(M.numFunctions());
  Timer Wall;
  Wall.start();

  unsigned Jobs = ThreadPool::resolveJobs(C.Jobs);
  // Scheduling events go in the "sched" category: they describe how work
  // landed on workers, which varies with --jobs, so normalizedLog drops
  // them while trace viewers still show the fan-out.
  RA_TRACE_SPAN("ModuleAlloc", "sched", [&] {
    return "functions=" + std::to_string(M.numFunctions()) +
           ";jobs=" + std::to_string(Jobs);
  });
  if (Jobs <= 1 || M.numFunctions() <= 1) {
    for (unsigned I = 0; I < M.numFunctions(); ++I) {
      Function &F = M.function(I);
      Result.Functions[I] =
          collectOne(F, C, [&] { return allocateRegisters(F, C); });
    }
  } else {
    // When functions already fan out across the pool, divide the
    // hardware budget for the intra-graph parallel Select between them
    // instead of oversubscribing Jobs * hw threads. Results are
    // identical at any split — the speculate-and-repair engine is
    // thread-count-agnostic — so this only tunes contention.
    AllocatorConfig WorkerC = C;
    if (C.ParallelGraph && C.ParallelGraphJobs == 0)
      WorkerC.ParallelGraphJobs =
          std::max(1u, ThreadPool::resolveJobs(0) / Jobs);
    ThreadPool Pool(Jobs);
    std::vector<std::future<AllocationResult>> Pending;
    Pending.reserve(M.numFunctions());
    for (unsigned I = 0; I < M.numFunctions(); ++I) {
      Function &F = M.function(I);
      if (trace::enabled())
        RA_TRACE_INSTANT("TaskQueued", "sched", "@" + F.name());
      Pending.push_back(Pool.submit([&F, &WorkerC] {
        return allocateRegisters(F, WorkerC);
      }));
    }
    for (unsigned I = 0; I < M.numFunctions(); ++I) {
      RA_TRACE_SPAN("CollectFunction", "sched",
                    [&] { return "@" + M.function(I).name(); });
      Result.Functions[I] =
          collectOne(M.function(I), C, [&] { return Pending[I].get(); });
    }
  }

  Wall.stop();
  Result.WallSeconds = Wall.seconds();
  return Result;
}
