//===- regalloc/Backend.h - Pluggable allocation backends ------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the backend-agnostic allocation pipeline and the
/// engines that produce a primary allocation. allocateRegisters owns
/// everything around the engine — input validation, flow analyses, the
/// post-allocation audit, and the spill-everything degradation ladder —
/// and delegates only the renumber/analyze/assign/spill cycle to an
/// AllocatorBackend. Both engines mutate the function through the same
/// shared passes (Renumber, Coalesce, SpillCost, SpillInserter), so
/// their results are directly comparable and every existing oracle
/// (AllocationAudit, the simulator differential in ralfuzz, the bench
/// telemetry) applies to any backend unchanged.
///
/// The backend selector (Backend) and its name helpers live in
/// Allocator.h next to AllocatorConfig; this header adds the virtual
/// interface and the registry for code that needs to enumerate or
/// invoke backends directly (the dispatch layer, focused tests).
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_BACKEND_H
#define RA_REGALLOC_BACKEND_H

#include "regalloc/Allocator.h"

namespace ra {

class Budget;
class CFG;
class LoopInfo;

/// One allocation engine. Implementations are stateless singletons —
/// per-run state belongs in the AllocationResult.
class AllocatorBackend {
public:
  virtual ~AllocatorBackend() = default;

  /// Stable identifier ("graph-coloring", "linear-scan").
  virtual const char *name() const = 0;

  /// Runs the primary allocation cycle on \p F until it converges or
  /// C.MaxPasses is exhausted. Must not audit and must not fall back:
  /// allocateRegisters layers the degradation ladder on top, so every
  /// backend fails (and degrades) through the same path.
  ///
  /// \p Gov is the function's resource-governance token, or null for
  /// the ungoverned default. A governed backend polls it cooperatively
  /// and, on a trip, returns a Failed result whose Diag carries the
  /// budget status (DeadlineExceeded / MemoryBudgetExceeded) — the
  /// ladder in allocateRegisters turns that into a cheaper retry or the
  /// spill-everything rung, never a lost allocation.
  virtual AllocationResult runPasses(Function &F, const AllocatorConfig &C,
                                     const CFG &G, const LoopInfo &Loops,
                                     Budget *Gov = nullptr) const = 0;
};

/// The engine implementing \p B. Returned references are to immortal
/// singletons.
const AllocatorBackend &backendFor(Backend B);

} // namespace ra

#endif // RA_REGALLOC_BACKEND_H
