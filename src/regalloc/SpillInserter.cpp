//===- regalloc/SpillInserter.cpp - Spill code insertion ------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillInserter.h"

#include "support/Trace.h"

#include <cassert>
#include <cstring>
#include <map>
#include <optional>

using namespace ra;

namespace {

/// If every definition of \p R in \p F is a mov of one identical
/// constant, returns that defining instruction (to replicate at uses).
std::optional<Instruction> rematerializableConstant(const Function &F,
                                                    VRegId R) {
  std::optional<Instruction> Def;
  for (const BasicBlock &B : F.blocks()) {
    for (const Instruction &I : B.Insts) {
      if (!I.hasDef() || I.defReg() != R)
        continue;
      if (I.Op != Opcode::MovI && I.Op != Opcode::MovF)
        return std::nullopt;
      if (Def) {
        // All defs must produce bit-identical constants.
        if (Def->Op != I.Op)
          return std::nullopt;
        if (I.Op == Opcode::MovI && Def->Ops[1].Imm != I.Ops[1].Imm)
          return std::nullopt;
        if (I.Op == Opcode::MovF &&
            std::memcmp(&Def->Ops[1].FImm, &I.Ops[1].FImm,
                        sizeof(double)) != 0)
          return std::nullopt;
      } else {
        Def = I;
      }
    }
  }
  return Def;
}

} // namespace

SpillCodeStats ra::insertSpillCode(Function &F,
                                   const std::vector<VRegId> &ToSpill,
                                   bool Rematerialize) {
  SpillCodeStats Stats;
  if (ToSpill.empty())
    return Stats;
  RA_TRACE_SPAN("SpillInserter", "regalloc",
                [&] { return "ranges=" + std::to_string(ToSpill.size()); });

  // Constant ranges that can be recomputed instead of stored.
  std::map<VRegId, Instruction> Remat;
  if (Rematerialize)
    for (VRegId R : ToSpill)
      if (auto Def = rematerializableConstant(F, R)) {
        Remat.emplace(R, *Def);
        ++Stats.Remats;
      }

  // Assign one stack slot per genuinely spilled live range.
  std::vector<int32_t> SlotOf(F.numVRegs(), -1);
  for (VRegId R : ToSpill) {
    if (Remat.count(R))
      continue;
    assert(SlotOf[R] < 0 && "live range spilled twice in one pass");
    SlotOf[R] = int32_t(F.newSpillSlot(F.regClass(R)));
  }

  for (BasicBlock &B : F.blocks()) {
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(B.Insts.size());
    for (Instruction &I : B.Insts) {
      // Definitions of rematerialized constants simply disappear: every
      // use recomputes the value.
      if (I.hasDef() && Remat.count(I.defReg()))
        continue;

      // Restore spilled operands into fresh temporaries before the use.
      // Several uses of the same spilled range in one instruction share
      // one restore (or one recompute).
      std::vector<std::pair<VRegId, VRegId>> Restored; // (old, temp)
      I.forEachUseOperand([&](Operand &O) {
        VRegId R = O.Reg;
        auto RematIt = Remat.find(R);
        if (SlotOf[R] < 0 && RematIt == Remat.end())
          return;
        VRegId Temp = InvalidVReg;
        for (const auto &[Old, T] : Restored)
          if (Old == R)
            Temp = T;
        if (Temp == InvalidVReg) {
          Temp = F.newVReg(F.regClass(R), F.vreg(R).Name + ".r",
                           /*IsSpillTemp=*/true);
          if (RematIt != Remat.end()) {
            Instruction Recompute = RematIt->second;
            Recompute.setDefReg(Temp);
            NewInsts.push_back(std::move(Recompute));
          } else {
            NewInsts.push_back({Opcode::SpillLd,
                                {Operand::reg(Temp),
                                 Operand::intImm(SlotOf[R])}});
            ++Stats.Loads;
          }
          Restored.push_back({R, Temp});
        }
        O = Operand::reg(Temp);
      });

      // Redirect a spilled definition into a temporary and store it to
      // the slot right after.
      bool StoreAfter = false;
      int64_t StoreSlot = 0;
      VRegId StoreTemp = InvalidVReg;
      if (I.hasDef() && SlotOf[I.defReg()] >= 0) {
        VRegId R = I.defReg();
        StoreTemp = F.newVReg(F.regClass(R), F.vreg(R).Name + ".s",
                              /*IsSpillTemp=*/true);
        StoreSlot = SlotOf[R];
        I.setDefReg(StoreTemp);
        StoreAfter = true;
      }

      NewInsts.push_back(std::move(I));
      if (StoreAfter) {
        NewInsts.push_back({Opcode::SpillSt,
                            {Operand::reg(StoreTemp),
                             Operand::intImm(StoreSlot)}});
        ++Stats.Stores;
      }
    }
    B.Insts = std::move(NewInsts);
  }
  RA_TRACE_COUNTER("spill.loads", Stats.Loads);
  RA_TRACE_COUNTER("spill.stores", Stats.Stores);
  RA_TRACE_COUNTER("spill.remats", Stats.Remats);
  return Stats;
}
