//===- regalloc/SpillInserter.cpp - Spill code insertion ------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillInserter.h"

#include "support/Trace.h"

#include <cassert>
#include <cstring>
#include <map>
#include <optional>

using namespace ra;

namespace {

/// If every definition of \p R in \p F is a mov of one identical
/// constant, returns that defining instruction (to replicate at uses).
std::optional<Instruction> rematerializableConstant(const Function &F,
                                                    VRegId R) {
  std::optional<Instruction> Def;
  for (const BasicBlock &B : F.blocks()) {
    for (const Instruction &I : B.Insts) {
      if (!I.hasDef() || I.defReg() != R)
        continue;
      if (I.Op != Opcode::MovI && I.Op != Opcode::MovF)
        return std::nullopt;
      if (Def) {
        // All defs must produce bit-identical constants.
        if (Def->Op != I.Op)
          return std::nullopt;
        if (I.Op == Opcode::MovI && Def->Ops[1].Imm != I.Ops[1].Imm)
          return std::nullopt;
        if (I.Op == Opcode::MovF &&
            std::memcmp(&Def->Ops[1].FImm, &I.Ops[1].FImm,
                        sizeof(double)) != 0)
          return std::nullopt;
      } else {
        Def = I;
      }
    }
  }
  return Def;
}

} // namespace

SpillCodeStats ra::insertSpillCode(Function &F,
                                   const std::vector<VRegId> &ToSpill,
                                   bool Rematerialize) {
  std::vector<SpillRequest> Requests;
  Requests.reserve(ToSpill.size());
  for (VRegId R : ToSpill)
    Requests.push_back({R, /*FromSlot=*/0});
  return insertSpillCode(F, Requests, Rematerialize);
}

SpillCodeStats ra::insertSpillCode(Function &F,
                                   const std::vector<SpillRequest> &ToSpill,
                                   bool Rematerialize) {
  SpillCodeStats Stats;
  if (ToSpill.empty())
    return Stats;
  RA_TRACE_SPAN("SpillInserter", "regalloc",
                [&] { return "ranges=" + std::to_string(ToSpill.size()); });
  constexpr uint32_t NotSpilled = ~uint32_t(0);

  // Demote suffix requests whose region holds no *real* uses to
  // whole-lifetime spills. A region can be live yet use-free when the
  // lifetime is held open by a loop back edge to a lower-numbered slot;
  // and spill.st operands don't count, because a store inserted by an
  // earlier pass's suffix spill of the same range only copies the value
  // back to memory — reloading for it is memory-to-memory churn that
  // shrinks nothing. Either way a store-only rewrite leaves the range —
  // and therefore the next pass's decision — unchanged, so spilling the
  // suffix would never converge; demotion retires the vreg instead.
  std::vector<SpillRequest> Reqs(ToSpill);
  bool AnySuffix = false;
  for (const SpillRequest &S : Reqs)
    AnySuffix |= S.FromSlot != 0;
  if (AnySuffix) {
    std::vector<uint32_t> LastUse(F.numVRegs(), NotSpilled);
    uint32_t Idx = 0;
    for (BasicBlock &B : F.blocks())
      for (Instruction &I : B.Insts) {
        const uint32_t ReadSlot = Idx++ * 2;
        if (I.Op == Opcode::SpillSt)
          continue;
        I.forEachUseOperand(
            [&](Operand &O) { LastUse[O.Reg] = ReadSlot; });
      }
    for (SpillRequest &S : Reqs)
      if (S.FromSlot != 0 &&
          (LastUse[S.Reg] == NotSpilled || LastUse[S.Reg] < S.FromSlot)) {
        S.FromSlot = 0;
        ++Stats.Demoted;
      }
  }

  // Constant ranges that can be recomputed instead of stored.
  std::map<VRegId, Instruction> Remat;
  if (Rematerialize)
    for (const SpillRequest &S : Reqs)
      if (auto Def = rematerializableConstant(F, S.Reg)) {
        Remat.emplace(S.Reg, *Def);
        ++Stats.Remats;
      }

  // Assign one stack slot per genuinely spilled live range, and record
  // where each range's spilled region begins (0 = whole lifetime).
  std::vector<uint32_t> FromOf(F.numVRegs(), NotSpilled);
  std::vector<int32_t> SlotOf(F.numVRegs(), -1);
  for (const SpillRequest &S : Reqs) {
    assert(FromOf[S.Reg] == NotSpilled &&
           "live range spilled twice in one pass");
    FromOf[S.Reg] = S.FromSlot;
    if (Remat.count(S.Reg))
      continue;
    SlotOf[S.Reg] = int32_t(F.newSpillSlot(F.regClass(S.Reg)));
  }

  // Walk in block layout order, tracking the pre-rewrite instruction
  // index — read slot = index * 2, matching InstrNumbering — so suffix
  // requests can tell head uses (kept in the original vreg) from
  // region uses (reloaded).
  uint32_t GlobalIdx = 0;
  for (BasicBlock &B : F.blocks()) {
    std::vector<Instruction> NewInsts;
    NewInsts.reserve(B.Insts.size());
    for (Instruction &I : B.Insts) {
      const uint32_t ReadSlot = GlobalIdx * 2;
      ++GlobalIdx;

      // Definitions of whole-range rematerialized constants simply
      // disappear: every use recomputes the value. Suffix-spilled
      // definitions always survive — head uses still read the vreg.
      if (I.hasDef() && FromOf[I.defReg()] == 0 && Remat.count(I.defReg()))
        continue;

      // Restore spilled operands into fresh temporaries before the use.
      // Several uses of the same spilled range in one instruction share
      // one restore (or one recompute). For a suffix request only uses
      // at or past the region start reload; head uses keep the vreg.
      std::vector<std::pair<VRegId, VRegId>> Restored; // (old, temp)
      I.forEachUseOperand([&](Operand &O) {
        VRegId R = O.Reg;
        if (FromOf[R] == NotSpilled || ReadSlot < FromOf[R])
          return;
        auto RematIt = Remat.find(R);
        if (SlotOf[R] < 0 && RematIt == Remat.end())
          return;
        VRegId Temp = InvalidVReg;
        for (const auto &[Old, T] : Restored)
          if (Old == R)
            Temp = T;
        if (Temp == InvalidVReg) {
          Temp = F.newVReg(F.regClass(R), F.vreg(R).Name + ".r",
                           /*IsSpillTemp=*/true);
          if (RematIt != Remat.end()) {
            Instruction Recompute = RematIt->second;
            Recompute.setDefReg(Temp);
            NewInsts.push_back(std::move(Recompute));
          } else {
            NewInsts.push_back({Opcode::SpillLd,
                                {Operand::reg(Temp),
                                 Operand::intImm(SlotOf[R])}});
            ++Stats.Loads;
          }
          Restored.push_back({R, Temp});
        }
        O = Operand::reg(Temp);
      });

      // Whole-range spill: redirect the definition into a temporary and
      // store it to the slot right after. Suffix spill: the definition
      // keeps writing the vreg (head uses — possibly reached over a
      // back edge from inside the region — still read it) and the
      // store copies the vreg itself, keeping the slot current on
      // every path into the region.
      bool StoreAfter = false;
      int64_t StoreSlot = 0;
      VRegId StoreReg = InvalidVReg;
      if (I.hasDef() && SlotOf[I.defReg()] >= 0) {
        VRegId R = I.defReg();
        StoreSlot = SlotOf[R];
        if (FromOf[R] == 0) {
          StoreReg = F.newVReg(F.regClass(R), F.vreg(R).Name + ".s",
                               /*IsSpillTemp=*/true);
          I.setDefReg(StoreReg);
        } else {
          StoreReg = R;
        }
        StoreAfter = true;
      }

      NewInsts.push_back(std::move(I));
      if (StoreAfter) {
        NewInsts.push_back({Opcode::SpillSt,
                            {Operand::reg(StoreReg),
                             Operand::intImm(StoreSlot)}});
        ++Stats.Stores;
      }
    }
    B.Insts = std::move(NewInsts);
  }
  RA_TRACE_COUNTER("spill.loads", Stats.Loads);
  RA_TRACE_COUNTER("spill.stores", Stats.Stores);
  RA_TRACE_COUNTER("spill.remats", Stats.Remats);
  return Stats;
}
