//===- regalloc/Allocator.h - Build-Simplify-Color driver ------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete register allocator of the paper's Figure 4:
///
///     renumber -> [ build -> coalesce -> spill costs
///                   -> simplify -> select -> insert spill code ]*
///
/// The cycle repeats until a pass needs no spill code. Integer and
/// floating-point registers are colored independently (disjoint files).
/// Per-pass phase timings and spill counts are recorded to regenerate
/// the paper's Figure 7; first-pass spill counts and costs feed the
/// Figure 5 table.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_ALLOCATOR_H
#define RA_REGALLOC_ALLOCATOR_H

#include "regalloc/Coalesce.h"
#include "regalloc/Coloring.h"
#include "regalloc/SpillInserter.h"
#include "support/Status.h"
#include "target/CostModel.h"
#include "target/MachineInfo.h"

#include <string>
#include <vector>

namespace ra {

/// True when the RA_AUDIT environment variable requests audits (set and
/// neither empty nor "0"). Used as the default for AllocatorConfig::Audit
/// so CI can run whole existing suites with auditing forced on.
bool auditEnabledByEnv();

/// Which engine produces the primary allocation. Everything around the
/// engine — validation, audit, spill-everything degradation — is shared
/// and backend-agnostic (see regalloc/Backend.h).
enum class Backend : uint8_t {
  /// The paper's Build-Simplify-Color cycle; AllocatorConfig::H picks
  /// the simplify/select heuristic (Chaitin, Briggs, Matula-Beck).
  GraphColoring,
  /// Start-ordered walk over live intervals with holes (linearscan/).
  /// AllocatorConfig::H is ignored.
  LinearScan,
};

/// Printable backend name ("graph-coloring", "linear-scan").
const char *backendName(Backend B);

/// The canonical --allocator spelling of a configuration: the heuristic
/// name for graph coloring ("chaitin", "briggs", "matula-beck"),
/// "linear-scan" otherwise.
const char *allocatorName(Backend B, Heuristic H);

/// Parses an --allocator value into a backend/heuristic pair. Accepts
/// exactly the spellings allocatorName produces; returns false (leaving
/// \p B and \p H untouched) for anything else.
bool parseAllocatorName(const std::string &Name, Backend &B, Heuristic &H);

/// Test-only fault injection: deliberately break the allocator so the
/// audit + spill-everything degradation path is provably exercised.
struct FaultInjectOptions {
  /// After a successful coloring, corrupt one assignment (copy a color
  /// across an interference edge, or push it out of the register file).
  bool Miscolor = false;
  /// Report MaxPasses exhaustion without running any pass.
  bool NonConvergence = false;
  /// Throw std::runtime_error from allocateRegisters for functions with
  /// this exact name (exercises worker-exception propagation).
  std::string ThrowInFunction;
  /// Sleep this many microseconds at the top of every backend pass —
  /// deterministically trips a tiny deadline so every ladder rung is
  /// provable without relying on machine speed.
  unsigned SlowPhaseMicros = 0;
  /// Pretend the interference-graph matrix estimate is ~1 GB larger
  /// than it is, so a memory budget refuses the graph-coloring build
  /// up front and the ladder retries under linear scan (which has no
  /// triangular matrix and charges nothing extra).
  bool GraphMemorySpike = false;

  bool any() const {
    return Miscolor || NonConvergence || !ThrowInFunction.empty() ||
           SlowPhaseMicros != 0 || GraphMemorySpike;
  }
};

/// Tuning knobs for one allocation run.
struct AllocatorConfig {
  /// Allocation engine for the primary allocation. The spill-everything
  /// fallback always runs graph coloring — the bottom rung of the
  /// degradation ladder stays on the most battle-tested engine.
  Backend B = Backend::GraphColoring;
  /// Simplify/select policy for the GraphColoring backend (and for the
  /// fallback's residual coloring under any backend).
  Heuristic H = Heuristic::Briggs;
  MachineInfo Machine = MachineInfo::rtpc();
  CostModel Costs = CostModel::rtpc();
  /// Safety bound on Build-Simplify-Color cycles (the paper observed at
  /// most three in practice).
  unsigned MaxPasses = 32;
  /// Run copy coalescing during build.
  bool Coalesce = true;
  /// Aggressive (Chaitin, the paper's setting) or the later
  /// conservative test that never creates uncolorable nodes.
  CoalescePolicy Coalescing = CoalescePolicy::Aggressive;
  /// Recompute spilled constants at their uses instead of storing and
  /// reloading them (off by default: the paper's allocator predates
  /// rematerialization; turn on to measure the refinement).
  bool Rematerialize = false;
  /// Linear-scan only: second-chance binpacking. When an interval finds
  /// no free register and eviction loses the cost comparison, split it
  /// (or the evictee) at the conflict point and re-enqueue the tail
  /// instead of spilling the whole lifetime. Off reproduces the
  /// original spill-everywhere walk — the regression oracle behind
  /// rac's --no-split.
  bool SplitIntervals = true;
  /// Worker threads for \c allocateModule (functions are independent
  /// allocation units). 1 = serial; 0 = one per hardware thread. Output
  /// is bit-identical at any setting.
  unsigned Jobs = 1;
  /// Color the Int and Float graphs of one function on two threads when
  /// both are large enough to pay for a thread. Never changes results:
  /// the two class graphs share no state.
  bool ParallelClasses = true;
  /// Parallelize the Select phase *inside* one interference graph with
  /// the speculate-and-repair engine (ParallelSelect.h). Byte-identical
  /// to the sequential phase at any thread count; engages only for
  /// graphs whose select stack reaches ParallelGraphMinNodes. rac's
  /// --parallel-graph flag.
  bool ParallelGraph = false;
  /// Threads for the parallel Select. 0 = one per hardware thread
  /// (divided by Jobs when the module driver is already running
  /// functions in parallel — see allocateModule).
  unsigned ParallelGraphJobs = 0;
  /// Select stacks smaller than this stay sequential even with
  /// ParallelGraph set; below it, thread spawn outweighs the work.
  unsigned ParallelGraphMinNodes = 2048;
  /// Run the independent post-allocation audit (AllocationAudit.h) on
  /// every allocation. An audit failure triggers the spill-everything
  /// fallback and a Degraded outcome instead of returning wrong code.
  /// Defaults to off unless the RA_AUDIT environment variable turns it
  /// on process-wide.
  bool Audit = auditEnabledByEnv();
  /// Wall-clock allowance per function, in seconds (0 = unbounded, the
  /// default). Exceeding it never fails an allocation: the graph-
  /// coloring backend retries under linear scan, and any remaining
  /// over-budget run falls to the audited spill-everything rung, so the
  /// result is Degraded with a DeadlineExceeded status rather than
  /// Failed. rac's --deadline-ms.
  double DeadlineSeconds = 0;
  /// Byte ceiling per function for governed allocations — today the
  /// dominant O(N^2)-bit interference matrices, charged up front from
  /// InterferenceGraph::estimateBytes so a would-be OOM is refused
  /// before the matrix exists (0 = unbounded). Same ladder as the
  /// deadline. rac's --mem-budget-mb.
  uint64_t MemoryBudgetBytes = 0;

  /// True when either resource limit is armed.
  bool governed() const {
    return DeadlineSeconds > 0 || MemoryBudgetBytes > 0;
  }

  /// Fill AllocationResult::Metrics with a per-live-range feature/
  /// decision table (degree, area, cost/degree, loop depth, spill
  /// decision, color, coalesced-into). Off by default: collecting the
  /// table costs an extra liveness walk per pass.
  bool CollectMetrics = false;
  /// Deliberate breakage for tests; see FaultInjectOptions.
  FaultInjectOptions FaultInject;
};

/// Phase timings and spill decisions of one Build-Simplify-Color pass.
struct PassRecord {
  double BuildSeconds = 0;    ///< renumber + coalesce + graph + costs
  double SimplifySeconds = 0; ///< both classes
  double SelectSeconds = 0;   ///< both classes ("color" in Figure 7)
  double SpillSeconds = 0;    ///< spill-code insertion

  unsigned LiveRanges = 0;      ///< graph nodes this pass (both classes)
  unsigned Interferences = 0;   ///< graph edges this pass
  unsigned SpilledLiveRanges = 0;
  double SpilledCost = 0;       ///< sum of estimates over spilled ranges
  std::vector<std::string> SpilledNames; ///< debug names, decision order
  /// Linear scan with splitting: ranges this pass assigned to more than
  /// one register over disjoint slot ranges (graph coloring: always 0).
  unsigned SplitLiveRanges = 0;
  /// Split decisions taken during the walk (second-chance splits plus
  /// eviction truncations), whether or not the pass converged.
  unsigned SplitDecisions = 0;
  /// Parallel Select (AllocatorConfig::ParallelGraph) telemetry, summed
  /// over both class graphs: speculate/repair rounds run, conflicts
  /// detected, and nodes re-colored by repair. All zero when the
  /// sequential phase ran. Scheduling-dependent (vary with thread count
  /// and interleaving, like the timing fields) — the resulting coloring
  /// is identical regardless.
  unsigned SelectRounds = 0;
  unsigned SelectConflicts = 0;
  unsigned SelectRecolored = 0;
};

/// Aggregate statistics for a full allocation.
struct AllocationStats {
  std::vector<PassRecord> Passes;
  unsigned CopiesCoalesced = 0;
  SpillCodeStats SpillCode;

  unsigned numPasses() const { return Passes.size(); }

  /// First-pass spill count — the paper's Figure 5 "Registers Spilled".
  unsigned firstPassSpills() const {
    return Passes.empty() ? 0 : Passes.front().SpilledLiveRanges;
  }

  /// First-pass spill cost — the Figure 5 "Spill Cost" column.
  double firstPassSpillCost() const {
    return Passes.empty() ? 0 : Passes.front().SpilledCost;
  }

  /// Live ranges seen by the first pass (Figure 5 "Live Ranges").
  unsigned initialLiveRanges() const {
    return Passes.empty() ? 0 : Passes.front().LiveRanges;
  }

  unsigned totalSpills() const {
    unsigned N = 0;
    for (const PassRecord &P : Passes)
      N += P.SpilledLiveRanges;
    return N;
  }

  double totalSeconds() const {
    double S = 0;
    for (const PassRecord &P : Passes)
      S += P.BuildSeconds + P.SimplifySeconds + P.SelectSeconds +
           P.SpillSeconds;
    return S;
  }
};

/// One live range's graph features and allocation decision — the rows
/// of the per-range metrics table (AllocatorConfig::CollectMetrics).
/// Every pass contributes rows for its spilled and coalesced-away
/// ranges; the converging pass additionally contributes one Colored row
/// per surviving range, so the table is a census of where every live
/// range ended up and the features (Chaitin's spill estimator inputs)
/// behind each decision.
struct RangeMetrics {
  /// The decision taken for the range.
  enum class Decision : uint8_t {
    Colored,   ///< Got a register in the converging pass.
    Spilled,   ///< Chosen for spilling this pass.
    Coalesced, ///< Merged into CoalescedInto by copy coalescing.
    Split,     ///< Linear scan: got several registers over disjoint
               ///< slot ranges (Color reports the first piece's).
  };

  std::string Name;          ///< Live-range debug name at decision time.
  unsigned Pass = 0;         ///< Build-Simplify-Color pass (0-based).
  RegClass Class = RegClass::Int;
  unsigned Degree = 0;       ///< Interference-graph degree this pass.
  double Area = 0;           ///< Loop-weighted occupancy: sum over
                             ///< instructions where live of 10^depth.
  double Cost = 0;           ///< Loop-weighted spill cost estimate.
  double CostPerDegree = 0;  ///< Chaitin's spill metric (Cost for
                             ///< degree-0 nodes).
  unsigned LoopDepth = 0;    ///< Deepest loop containing an occurrence.
  Decision D = Decision::Colored;
  int32_t Color = -1;        ///< Physical register, or -1 if not colored.
  std::string CoalescedInto; ///< Surviving range's name (Coalesced only).
  /// Speculate/repair rounds the range's class graph took this pass
  /// (0 = sequential Select). Scheduling-dependent, like wall time.
  unsigned SelectRounds = 0;
};

/// Printable decision name ("colored", "spilled", "coalesced", "split").
const char *rangeDecisionName(RangeMetrics::Decision D);

class Liveness;
class LoopInfo;

/// Loop-weighted area (sum over instructions where the range is live of
/// 10^depth — Chaitin's "area" feature) and deepest-occurrence loop
/// depth, per vreg. The backend-independent feature columns of the
/// metrics table; both backends fill their rows from it.
void computeAreaAndDepth(const Function &F, const LoopInfo &Loops,
                         const Liveness &LV, std::vector<double> &Area,
                         std::vector<unsigned> &DepthOf);

/// Header line of the metrics CSV dump (matches appendMetricsCsv).
std::string metricsCsvHeader();

/// Appends one CSV line per metrics row of \p A to \p Out, prefixed
/// with \p FunctionName. Numeric formatting is deterministic, so equal
/// allocations dump byte-identical CSV (golden-file tested).
void appendMetricsCsv(std::string &Out, const std::string &FunctionName,
                      const std::vector<RangeMetrics> &Metrics);

/// How an allocation concluded — the degradation ladder's rungs.
enum class AllocOutcome : uint8_t {
  Converged, ///< Build-Simplify-Color converged; audit (if run) passed.
  Degraded,  ///< Primary allocation failed its audit or never converged;
             ///< the guaranteed-terminating spill-everything fallback
             ///< produced the (audited) allocation instead.
  Failed,    ///< No usable allocation; Diag explains why.
};

/// Printable outcome name ("converged", "degraded", "failed").
const char *allocOutcomeName(AllocOutcome O);

/// One committed register piece of a split live range: \p Reg occupies
/// physical register \p PhysReg over InstrNumbering slots [From, To).
/// Both bounds are instruction-aligned (even), so an instruction's read
/// and write slots always land in the same piece; crossing a piece
/// boundary is an implicit register-register move the simulator
/// performs (with parallel-copy semantics) and the audit validates.
struct PieceAssignment {
  VRegId Reg = InvalidVReg;
  uint32_t From = 0; ///< First slot (even) the piece's register holds.
  uint32_t To = 0;   ///< One past the last slot (even).
  uint32_t PhysReg = 0;

  bool operator==(const PieceAssignment &O) const = default;
};

/// Outcome of \c allocateRegisters. The function itself is rewritten in
/// place (renumbered, coalesced, spill code inserted).
struct AllocationResult {
  bool Success = false;        ///< Usable allocation (Converged or Degraded).
  AllocOutcome Outcome = AllocOutcome::Failed;
  /// Ok when Converged; for Degraded, why the primary allocation was
  /// rejected; for Failed, why no allocation could be produced.
  Status Diag;
  AllocationStats Stats;
  /// Per-live-range feature/decision table; filled only when
  /// AllocatorConfig::CollectMetrics is set. For a Degraded outcome the
  /// rows describe the spill-everything fallback that produced the
  /// final allocation.
  std::vector<RangeMetrics> Metrics;
  /// Physical register index per final vreg, within its class's file.
  /// A split vreg (linear scan with second-chance splitting) reports
  /// its *first* piece's register here; Pieces carries the full
  /// per-slot assignment that overrides it.
  std::vector<int32_t> ColorOf;
  /// Per-slot assignments of split live ranges, sorted by (Reg, From);
  /// empty unless linear-scan splitting committed a multi-register
  /// range. Vregs not listed occupy ColorOf over their whole lifetime.
  std::vector<PieceAssignment> Pieces;
  MachineInfo Machine = MachineInfo::rtpc();
  /// Resource-governance telemetry (zero when ungoverned): cooperative
  /// checkpoints served and the high-water mark of governed bytes,
  /// cumulative across every ladder rung this function ran.
  uint64_t BudgetCheckpoints = 0;
  uint64_t BudgetPeakBytes = 0;

  /// Physical register assigned to \p R (requires Success). For split
  /// vregs this is the first piece's register; slot-aware consumers
  /// (simulator, audit) resolve through Pieces instead.
  unsigned physReg(VRegId R) const {
    assert(R < ColorOf.size() && ColorOf[R] >= 0 && "unallocated register");
    return unsigned(ColorOf[R]);
  }
};

/// Allocates registers for \p F (mutating it) with configuration \p C.
///
/// Never aborts on recoverable conditions: structurally malformed input
/// returns a Failed result with an InvalidInput status, and when
/// \c C.Audit is set, a miscoloring or MaxPasses exhaustion degrades to
/// the audited spill-everything fallback (Outcome == Degraded) rather
/// than failing. Only \c FaultInjectOptions::ThrowInFunction ever makes
/// this function throw.
AllocationResult allocateRegisters(Function &F, const AllocatorConfig &C);

class Module;

/// Result of allocating every function of a module.
struct ModuleAllocationResult {
  /// Per-function results, in module function order regardless of the
  /// order worker threads finished in.
  std::vector<AllocationResult> Functions;
  /// Wall-clock seconds for the whole module (all functions, all
  /// workers) — the denominator of the bench JSON's graphs/sec.
  double WallSeconds = 0;

  bool allSucceeded() const {
    for (const AllocationResult &R : Functions)
      if (!R.Success)
        return false;
    return true;
  }

  /// Functions that fell back to spill-everything.
  unsigned numDegraded() const {
    unsigned N = 0;
    for (const AllocationResult &R : Functions)
      N += R.Outcome == AllocOutcome::Degraded;
    return N;
  }
};

/// Allocates registers for every function in \p M (mutating them),
/// farming functions out across \c C.Jobs pool workers. Functions are
/// independent allocation units, so the result — rewritten functions,
/// colors, spill decisions — is bit-identical to running
/// \c allocateRegisters serially in function order.
///
/// A worker that throws fails only that function's AllocationResult
/// (Outcome == Failed, WorkerError status); the exception propagates
/// through the future and is converted here, so one bad function never
/// crashes or hangs the whole module.
ModuleAllocationResult allocateModule(Module &M, const AllocatorConfig &C);

} // namespace ra

#endif // RA_REGALLOC_ALLOCATOR_H
