//===- regalloc/DegreeBuckets.h - Matula-Beck degree lists -----*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The degree-indexed worklist of Section 2.2: an array N where N[i]
/// heads a doubly-linked list of the nodes that currently have i
/// neighbors in the (shrinking) graph. Removing a node moves each of
/// its neighbors down one cell; the search for the lowest non-empty
/// cell restarts at N[i-1] after removing a node of degree i (the
/// paper's refinement), which bounds total search work by twice the
/// edge count — linear in the size of the interference graph.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_DEGREEBUCKETS_H
#define RA_REGALLOC_DEGREEBUCKETS_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace ra {

/// Intrusive doubly-linked degree buckets over dense node ids.
class DegreeBuckets {
public:
  /// Builds buckets for \p NumNodes nodes with initial degrees
  /// \p Degrees (nodes are inserted in ascending id order, so lists pop
  /// lowest-id-first for deterministic tie-breaking).
  void init(const std::vector<uint32_t> &Degrees);

  /// Current degree of a live (non-removed) node.
  uint32_t degree(uint32_t N) const {
    assert(!Removed[N] && "degree of a removed node");
    return Degree[N];
  }

  bool isRemoved(uint32_t N) const { return Removed[N]; }

  /// Detaches \p N from its bucket and marks it removed. The caller is
  /// responsible for decrementing its still-live neighbors.
  void remove(uint32_t N);

  /// Moves live node \p N down one bucket (a neighbor was removed).
  void decrementDegree(uint32_t N);

  /// Lowest degree with a non-empty bucket, searching upward from
  /// \p StartHint. Returns ~0u when every node has been removed.
  uint32_t lowestNonEmpty(uint32_t StartHint = 0) const;

  /// First node of bucket \p D (lowest id first by construction order).
  uint32_t head(uint32_t D) const { return Heads[D]; }

  unsigned numLive() const { return Live; }

  /// Total buckets (max possible degree + 1).
  unsigned numBuckets() const { return Heads.size(); }

  /// Sentinel id for "no node".
  static constexpr uint32_t None = ~uint32_t(0);

private:
  void detach(uint32_t N);
  void pushFront(uint32_t N, uint32_t D);

  std::vector<uint32_t> Degree;
  std::vector<uint32_t> Next, Prev;
  std::vector<uint32_t> Heads; ///< Heads[d] = first node with degree d.
  std::vector<bool> Removed;
  unsigned Live = 0;
};

} // namespace ra

#endif // RA_REGALLOC_DEGREEBUCKETS_H
