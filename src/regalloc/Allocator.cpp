//===- regalloc/Allocator.cpp - Build-Simplify-Color driver ---------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 4 cycle, wrapped in a self-checking pipeline:
// structurally invalid input is rejected with a diagnostic instead of
// tripping asserts, and (with Audit on) every finished allocation is
// re-proved by the independent AllocationAudit. When the primary
// allocation fails its audit or never converges, the driver degrades to
// a guaranteed-terminating spill-everything allocation — every live
// range lives in memory, so the residual graph only holds
// single-instruction temporaries and colors in one more pass.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/Renumber.h"
#include "linearscan/LinearScanAlloc.h"
#include "regalloc/AllocationAudit.h"
#include "regalloc/Backend.h"
#include "regalloc/BuildGraph.h"
#include "regalloc/Coalesce.h"
#include "regalloc/SpillCost.h"
#include "support/Budget.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <thread>

using namespace ra;

bool ra::auditEnabledByEnv() {
  static const bool Enabled = [] {
    const char *V = std::getenv("RA_AUDIT");
    return V && *V && std::string_view(V) != "0";
  }();
  return Enabled;
}

const char *ra::allocOutcomeName(AllocOutcome O) {
  switch (O) {
  case AllocOutcome::Converged: return "converged";
  case AllocOutcome::Degraded:  return "degraded";
  case AllocOutcome::Failed:    return "failed";
  }
  return "unknown";
}

const char *ra::backendName(Backend B) {
  switch (B) {
  case Backend::GraphColoring: return "graph-coloring";
  case Backend::LinearScan:    return "linear-scan";
  }
  return "unknown";
}

const char *ra::allocatorName(Backend B, Heuristic H) {
  return B == Backend::LinearScan ? "linear-scan" : heuristicName(H);
}

bool ra::parseAllocatorName(const std::string &Name, Backend &B,
                            Heuristic &H) {
  if (Name == "chaitin") {
    B = Backend::GraphColoring;
    H = Heuristic::Chaitin;
  } else if (Name == "briggs") {
    B = Backend::GraphColoring;
    H = Heuristic::Briggs;
  } else if (Name == "matula-beck") {
    B = Backend::GraphColoring;
    H = Heuristic::MatulaBeck;
  } else if (Name == "linear-scan") {
    B = Backend::LinearScan;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Nodes below which a class graph is colored on the calling thread:
/// spawning a thread costs more than simplifying a small graph.
constexpr unsigned ParallelClassThreshold = 256;

/// Cheap structural validity: the conditions CFG/liveness construction
/// would otherwise assert on. Anything caught here is a recoverable
/// InvalidInput, not a crash.
Status validateForAllocation(const Function &F) {
  if (F.numBlocks() == 0)
    return Status::error(StatusCode::InvalidInput, "function has no blocks");
  for (const BasicBlock &B : F.blocks()) {
    if (B.Insts.empty())
      return Status::error(StatusCode::InvalidInput,
                           "block " + B.Name + " is empty");
    for (unsigned Idx = 0, E = B.Insts.size(); Idx != E; ++Idx) {
      const Instruction &I = B.Insts[Idx];
      if (I.isTerminator() != (Idx + 1 == E))
        return Status::error(StatusCode::InvalidInput,
                             Idx + 1 == E
                                 ? "block " + B.Name +
                                       " does not end in a terminator"
                                 : "terminator in the middle of block " +
                                       B.Name);
      for (const Operand &O : I.Ops) {
        if (O.isReg() && O.Reg >= F.numVRegs())
          return Status::error(StatusCode::InvalidInput,
                               "register id out of range in " + B.Name);
        if (O.isBlock() && O.Block >= F.numBlocks())
          return Status::error(StatusCode::InvalidInput,
                               "branch to out-of-range block in " + B.Name);
      }
      if (I.hasDef() && (I.Ops.empty() || !I.Ops[0].isReg()))
        return Status::error(StatusCode::InvalidInput,
                             "malformed definition in " + B.Name);
    }
  }
  return Status();
}

/// Copies a color across the first interference edge whose endpoints are
/// both colored (or, when the graphs have no such edge, pushes one
/// assignment outside the register file). The audit must catch either.
void injectMiscoloring(const std::array<ClassGraph, NumRegClasses> &Graphs,
                       const std::array<ColoringResult, NumRegClasses> &Cols,
                       const MachineInfo &Machine, AllocationResult &Result) {
  for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
    const ClassGraph &CG = Graphs[Cls];
    for (uint32_t N = 0; N < CG.Graph.numNodes(); ++N) {
      if (Cols[Cls].ColorOf[N] < 0)
        continue;
      for (uint32_t M : CG.Graph.neighbors(N)) {
        if (Cols[Cls].ColorOf[M] < 0)
          continue;
        Result.ColorOf[CG.NodeToVReg[N]] = Cols[Cls].ColorOf[M];
        return;
      }
    }
  }
  for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
    const ClassGraph &CG = Graphs[Cls];
    if (CG.Graph.numNodes() != 0) {
      Result.ColorOf[CG.NodeToVReg[0]] =
          int32_t(Machine.numRegs(CG.Class));
      return;
    }
  }
}

} // namespace

void ra::computeAreaAndDepth(const Function &F, const LoopInfo &Loops,
                             const Liveness &LV, std::vector<double> &Area,
                             std::vector<unsigned> &DepthOf) {
  Area.assign(F.numVRegs(), 0);
  DepthOf.assign(F.numVRegs(), 0);
  for (const BasicBlock &B : F.blocks()) {
    unsigned Depth = Loops.depth(B.Id);
    double W = loopDepthWeight(Depth);
    BitVector Live = LV.liveOut(B.Id);
    for (auto It = B.Insts.rbegin(), E = B.Insts.rend(); It != E; ++It) {
      const Instruction &I = *It;
      if (I.hasDef()) {
        DepthOf[I.defReg()] = std::max(DepthOf[I.defReg()], Depth);
        Live.reset(I.defReg());
      }
      I.forEachUse([&](VRegId R) {
        DepthOf[R] = std::max(DepthOf[R], Depth);
        Live.set(R);
      });
      Live.forEachSetBit([&](unsigned R) { Area[R] += W; });
    }
  }
}

namespace {

/// One metrics row for graph node \p Node of \p CG.
RangeMetrics rangeRow(const Function &F, const ClassGraph &CG,
                      uint32_t Node, unsigned Pass,
                      const std::vector<double> &Costs,
                      const std::vector<double> &Area,
                      const std::vector<unsigned> &DepthOf,
                      RangeMetrics::Decision D, int32_t Color,
                      unsigned SelectRounds) {
  VRegId R = CG.NodeToVReg[Node];
  RangeMetrics RM;
  RM.Name = F.vreg(R).Name;
  RM.Pass = Pass;
  RM.Class = CG.Class;
  RM.Degree = CG.Graph.degree(Node);
  RM.Area = Area[R];
  RM.Cost = Costs[R];
  RM.CostPerDegree = RM.Cost == InterferenceGraph::InfiniteCost
                         ? RM.Cost
                         : (RM.Degree ? RM.Cost / RM.Degree : RM.Cost);
  RM.LoopDepth = DepthOf[R];
  RM.D = D;
  RM.Color = Color;
  RM.SelectRounds = SelectRounds;
  return RM;
}

/// Renders a tripped budget as this backend run's Failed result. The
/// partial allocation state (colors, pieces) is wiped — the IR itself
/// is valid (loops only back out at whole-unit boundaries), so the
/// ladder can rerun a cheaper engine on the same function.
AllocationResult overBudget(AllocationResult Result, Budget &Gov,
                            unsigned Pass) {
  Result.Success = false;
  Result.Outcome = AllocOutcome::Failed;
  Status S = Gov.status();
  S.addContext("pass " + std::to_string(Pass));
  Result.Diag = std::move(S);
  Result.ColorOf.clear();
  Result.Pieces.clear();
  return Result;
}

/// FaultInjectOptions::SlowPhaseMicros — stall so a tiny test deadline
/// trips deterministically regardless of machine speed.
void injectSlowPhase(const AllocatorConfig &C) {
  if (C.FaultInject.SlowPhaseMicros)
    std::this_thread::sleep_for(
        std::chrono::microseconds(C.FaultInject.SlowPhaseMicros));
}

/// The Figure 4 loop: renumber -> [build -> coalesce -> costs ->
/// simplify -> select -> spill]* until no pass spills. Sets Success and
/// a NonConvergence diagnostic, but performs no auditing or fallback —
/// allocateRegisters layers those on top.
///
/// With a governed \p Gov: each pass charges the estimated size of its
/// interference matrices before building them (a refusal exits before
/// the bytes exist), every long loop polls the token, and phase
/// boundaries force a deadline check, so a trip surfaces as a Failed
/// over-budget result within one phase of the expiry.
AllocationResult runColoringPasses(Function &F, const AllocatorConfig &C,
                                   const CFG &G, const LoopInfo &Loops,
                                   Budget *Gov) {
  AllocationResult Result;
  Result.Machine = C.Machine;

  for (unsigned Pass = 0; Pass < C.MaxPasses; ++Pass) {
    PassRecord Rec;
    RA_TRACE_SPAN("Pass", "regalloc",
                  [&] { return "pass=" + std::to_string(Pass); });
    injectSlowPhase(C);
    if (Gov && Gov->expired())
      return overBudget(std::move(Result), *Gov, Pass);

    //===----------------------------------------------------------===//
    // Build: renumber, coalesce, build graphs, compute spill costs.
    //===----------------------------------------------------------===//
    Timer BuildTimer;
    RA_TRACE_SPAN_NAMED(BuildSpan, "Build", "regalloc");
    BuildTimer.start();
    {
      RA_TRACE_SPAN("Renumber", "regalloc");
      renumberLiveRanges(F, G);
    }
    if (C.Coalesce) {
      CoalesceStats CS = coalesceAll(F, G, C.Coalescing, C.Machine, Gov);
      Result.Stats.CopiesCoalesced += CS.CopiesRemoved;
      if (C.CollectMetrics)
        for (const CoalescedCopy &CC : CS.Merges) {
          RangeMetrics RM;
          RM.Name = CC.Merged;
          RM.Pass = Pass;
          RM.Class = CC.Class;
          RM.D = RangeMetrics::Decision::Coalesced;
          RM.CoalescedInto = CC.Into;
          Result.Metrics.push_back(std::move(RM));
        }
      if (CS.CopiesRemoved != 0)
        renumberLiveRanges(F, G); // compact ids merged away
    }
    // Charge the matrices *before* they exist: the triangular bit
    // matrix is the allocation that OOMs at scale, and refusing it up
    // front turns a would-be OOM into a clean over-budget exit. The
    // charge is held for the pass (the graphs die with the iteration).
    uint64_t GraphBytes = 0;
    if (Gov) {
      std::array<uint64_t, NumRegClasses> ClassNodes{};
      for (VRegId R = 0; R < F.numVRegs(); ++R)
        ++ClassNodes[static_cast<unsigned>(F.regClass(R))];
      for (uint64_t N : ClassNodes)
        GraphBytes += InterferenceGraph::estimateBytes(N);
      if (C.FaultInject.GraphMemorySpike)
        GraphBytes += uint64_t(1) << 30; // pretend the graph is ~1 GB bigger
    }
    ScopedCharge GraphCharge(Gov, GraphBytes);
    if (!GraphCharge.granted())
      return overBudget(std::move(Result), *Gov, Pass);

    Liveness LV = Liveness::compute(F, G);
    auto Graphs = buildInterferenceGraphs(F, LV, Gov);
    std::vector<double> Costs = computeSpillCosts(F, Loops, C.Costs);
    std::vector<double> Area;
    std::vector<unsigned> DepthOf;
    if (C.CollectMetrics)
      computeAreaAndDepth(F, Loops, LV, Area, DepthOf);
    for (ClassGraph &CG : Graphs) {
      setNodeCosts(F, Costs, CG);
      Rec.LiveRanges += CG.Graph.numNodes();
      Rec.Interferences += CG.Graph.numEdges();
    }
    BuildTimer.stop();
    Rec.BuildSeconds = BuildTimer.seconds();
    BuildSpan.close();
    if (Gov && Gov->expired()) {
      Result.Stats.Passes.push_back(std::move(Rec));
      return overBudget(std::move(Result), *Gov, Pass);
    }

    //===----------------------------------------------------------===//
    // Simplify + select, one class at a time.
    //===----------------------------------------------------------===//
    std::vector<VRegId> ToSpill;
    std::array<ColoringResult, NumRegClasses> Colorings;
    static_assert(NumRegClasses == 2, "per-class threading assumes 2");
    SelectOptions SelOpts;
    SelOpts.Parallel = C.ParallelGraph;
    SelOpts.Threads = C.ParallelGraphJobs;
    SelOpts.MinNodes = C.ParallelGraphMinNodes;
    SelOpts.Governor = Gov;
    bool Concurrent =
        C.ParallelClasses &&
        Graphs[0].Graph.numNodes() >= ParallelClassThreshold &&
        Graphs[1].Graph.numNodes() >= ParallelClassThreshold;
    if (Concurrent) {
      // The two class files are disjoint, so their colorings share no
      // state; run Float on a helper thread while Int colors here.
      // Results land in fixed slots — output is identical to serial.
      // The helper traces under its own sub-context so the event log
      // groups deterministically whether or not it was spawned.
      std::string ParentCtx = trace::ScopedContext::current();
      std::thread Helper([&, ParentCtx] {
        RA_TRACE_CONTEXT([&] { return ParentCtx + "/flt-helper"; });
        Colorings[1] =
            colorGraph(Graphs[1].Graph, C.Machine.numRegs(Graphs[1].Class),
                       C.H, SelOpts);
      });
      Colorings[0] = colorGraph(Graphs[0].Graph,
                                C.Machine.numRegs(Graphs[0].Class), C.H,
                                SelOpts);
      Helper.join();
    } else {
      for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls)
        Colorings[Cls] = colorGraph(Graphs[Cls].Graph,
                                    C.Machine.numRegs(Graphs[Cls].Class),
                                    C.H, SelOpts);
    }
    if (Gov && Gov->expired()) {
      // A class coloring was abandoned mid-phase; its ColoringResult is
      // partial and must not feed spill decisions.
      Result.Stats.Passes.push_back(std::move(Rec));
      return overBudget(std::move(Result), *Gov, Pass);
    }
    for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
      ClassGraph &CG = Graphs[Cls];
      Rec.SimplifySeconds += Colorings[Cls].SimplifySeconds;
      Rec.SelectSeconds += Colorings[Cls].SelectSeconds;
      for (size_t I = 0; I != Colorings[Cls].SelectRounds.size(); ++I) {
        const SelectRound &SR = Colorings[Cls].SelectRounds[I];
        ++Rec.SelectRounds;
        Rec.SelectConflicts += SR.Conflicts;
        if (I > 0) // entry 0 is speculation, not repair
          Rec.SelectRecolored += SR.Colored;
      }
      for (uint32_t Node : Colorings[Cls].Spilled) {
        VRegId R = CG.NodeToVReg[Node];
        ToSpill.push_back(R);
        Rec.SpilledNames.push_back(F.vreg(R).Name);
        Rec.SpilledCost += Costs[R];
        if (C.CollectMetrics)
          Result.Metrics.push_back(rangeRow(
              F, CG, Node, Pass, Costs, Area, DepthOf,
              RangeMetrics::Decision::Spilled, /*Color=*/-1,
              unsigned(Colorings[Cls].SelectRounds.size())));
      }
    }
    Rec.SpilledLiveRanges = ToSpill.size();

    if (ToSpill.empty()) {
      // Done: translate per-class node colors into a per-vreg map.
      Result.ColorOf.assign(F.numVRegs(), -1);
      for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
        const ClassGraph &CG = Graphs[Cls];
        for (uint32_t Node = 0; Node < CG.Graph.numNodes(); ++Node)
          Result.ColorOf[CG.NodeToVReg[Node]] =
              Colorings[Cls].ColorOf[Node];
      }
      if (C.CollectMetrics)
        for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
          const ClassGraph &CG = Graphs[Cls];
          for (uint32_t Node = 0; Node < CG.Graph.numNodes(); ++Node)
            Result.Metrics.push_back(
                rangeRow(F, CG, Node, Pass, Costs, Area, DepthOf,
                         RangeMetrics::Decision::Colored,
                         Colorings[Cls].ColorOf[Node],
                         unsigned(Colorings[Cls].SelectRounds.size())));
        }
      if (C.FaultInject.Miscolor)
        injectMiscoloring(Graphs, Colorings, C.Machine, Result);
      Result.Stats.Passes.push_back(std::move(Rec));
      Result.Success = true;
      Result.Outcome = AllocOutcome::Converged;
      return Result;
    }

    //===----------------------------------------------------------===//
    // Spill: insert the stores and loads, then go around again.
    //===----------------------------------------------------------===//
    Timer SpillTimer;
    SpillTimer.start();
    SpillCodeStats SC = insertSpillCode(F, ToSpill, C.Rematerialize);
    SpillTimer.stop();
    Rec.SpillSeconds = SpillTimer.seconds();
    Result.Stats.SpillCode.Loads += SC.Loads;
    Result.Stats.SpillCode.Stores += SC.Stores;
    Result.Stats.SpillCode.Remats += SC.Remats;
    Result.Stats.Passes.push_back(std::move(Rec));
  }

  // Never observed in practice (the paper reports at most three passes);
  // allocateRegisters degrades to spill-everything from here.
  Result.Success = false;
  Result.Outcome = AllocOutcome::Failed;
  Result.Diag = Status::error(StatusCode::NonConvergence,
                              "no coloring after " +
                                  std::to_string(C.MaxPasses) + " passes");
  return Result;
}

/// The bottom rung of the degradation ladder: spill every live range to
/// memory, then color the residue. After spilling, every remaining live
/// range is a single-instruction temporary, so at most a handful are
/// ever simultaneously live and the loop converges immediately for any
/// realistic file size.
AllocationResult spillEverything(Function &F, const AllocatorConfig &C,
                                 const CFG &G, const LoopInfo &Loops) {
  RA_TRACE_SPAN("SpillEverything", "regalloc");
  renumberLiveRanges(F, G);
  std::vector<VRegId> All(F.numVRegs());
  for (VRegId R = 0; R < F.numVRegs(); ++R)
    All[R] = R;
  insertSpillCode(F, All, /*Rematerialize=*/false);

  AllocatorConfig FallbackC = C;
  // The bottom rung always colors, whatever backend just failed: the
  // residual graph is tiny and the coloring cycle is the most
  // battle-tested path through the allocator.
  FallbackC.B = Backend::GraphColoring;
  FallbackC.Coalesce = false; // no copies worth merging among temporaries
  FallbackC.FaultInject = {}; // the fallback must stay unbroken
  FallbackC.MaxPasses = 8;
  // The bottom rung runs ungoverned: it is the guaranteed-progress
  // escape hatch, and its residual graph is tiny by construction.
  return runColoringPasses(F, FallbackC, G, Loops, /*Gov=*/nullptr);
}

/// Backend.h's engine for Backend::GraphColoring.
class GraphColoringBackend final : public AllocatorBackend {
public:
  const char *name() const override { return "graph-coloring"; }
  AllocationResult runPasses(Function &F, const AllocatorConfig &C,
                             const CFG &G, const LoopInfo &Loops,
                             Budget *Gov) const override {
    return runColoringPasses(F, C, G, Loops, Gov);
  }
};

/// Backend.h's engine for Backend::LinearScan.
class LinearScanBackend final : public AllocatorBackend {
public:
  const char *name() const override { return "linear-scan"; }
  AllocationResult runPasses(Function &F, const AllocatorConfig &C,
                             const CFG &G, const LoopInfo &Loops,
                             Budget *Gov) const override {
    return runLinearScanPasses(F, C, G, Loops, Gov);
  }
};

} // namespace

const AllocatorBackend &ra::backendFor(Backend B) {
  static const GraphColoringBackend Coloring;
  static const LinearScanBackend Scan;
  return B == Backend::LinearScan
             ? static_cast<const AllocatorBackend &>(Scan)
             : static_cast<const AllocatorBackend &>(Coloring);
}

AllocationResult ra::allocateRegisters(Function &F,
                                       const AllocatorConfig &C) {
  if (!C.FaultInject.ThrowInFunction.empty() &&
      F.name() == C.FaultInject.ThrowInFunction)
    throw std::runtime_error("fault injection: worker throw in @" +
                             F.name());

  RA_TRACE_CONTEXT([&] { return "@" + F.name(); });
  RA_TRACE_SPAN("AllocateFunction", "regalloc", [&] {
    // Keep the historical heuristic=... spelling for graph coloring —
    // trace goldens pin it — and name the backend otherwise.
    return C.B == Backend::GraphColoring
               ? std::string("heuristic=") + heuristicName(C.H)
               : std::string("allocator=") + allocatorName(C.B, C.H);
  });

  AllocationResult Result;
  Result.Machine = C.Machine;
  if (Status S = validateForAllocation(F); !S.ok()) {
    Result.Diag = std::move(S.addContext("@" + F.name()));
    return Result; // Failed: cannot even build a CFG safely.
  }

  // The CFG shape never changes below: coalescing deletes only copies,
  // spilling inserts only non-terminators, renumbering touches only
  // operands. Compute flow structure once.
  CFG G = CFG::compute(F);
  Dominators Doms = Dominators::compute(F, G);
  LoopInfo Loops = LoopInfo::compute(F, G, Doms);

  // Per-function resource-governance token. Each function gets its own
  // (allocateModule shares nothing across workers), so one pathological
  // sibling can never drain another function's budget.
  Budget Token;
  if (C.governed())
    Token.arm(C.DeadlineSeconds, C.MemoryBudgetBytes);
  Budget *Gov = C.governed() ? &Token : nullptr;

  // Stamps the cumulative budget telemetry onto whichever result wins
  // the ladder. Zero when ungoverned — the fields (and trace counters)
  // only exist for governed runs, keeping defaults byte-identical.
  auto Finish = [&](AllocationResult R) {
    if (Gov) {
      R.BudgetCheckpoints = Token.checkpoints();
      R.BudgetPeakBytes = Token.peakBytes();
      RA_TRACE_COUNTER("budget.checkpoints", double(R.BudgetCheckpoints));
      RA_TRACE_COUNTER("budget.peak_bytes", double(R.BudgetPeakBytes));
    }
    return R;
  };

  if (C.FaultInject.NonConvergence) {
    Result.Success = false;
    Result.Outcome = AllocOutcome::Failed;
    Result.Diag = Status::error(StatusCode::NonConvergence,
                                "fault injection: forced non-convergence");
  } else {
    Result = backendFor(C.B).runPasses(F, C, G, Loops, Gov);
  }

  // Rung 1 of the budget ladder: graph coloring ran over its deadline
  // or was refused its matrices — retry under linear scan, which
  // allocates no triangular matrix and is the measured-cheaper engine,
  // before surrendering registers entirely. The retry keeps the same
  // token (memory charges carry over) with a fresh deadline window, and
  // is audited unconditionally: degraded code must never be wrong code.
  auto BudgetTripped = [](const Status &S) {
    return S.code() == StatusCode::DeadlineExceeded ||
           S.code() == StatusCode::MemoryBudgetExceeded;
  };
  if (!Result.Success && BudgetTripped(Result.Diag) &&
      C.B == Backend::GraphColoring) {
    RA_TRACE_COUNTER("budget.retry.linear_scan", 1);
    Status Why = Result.Diag;
    Token.rearm();
    AllocatorConfig RetryC = C;
    RetryC.B = Backend::LinearScan;
    AllocationResult Retry =
        backendFor(Backend::LinearScan).runPasses(F, RetryC, G, Loops, Gov);
    if (Retry.Success) {
      Status RetryAudit = auditAllocationStatus(F, Retry);
      if (RetryAudit.ok()) {
        Retry.Outcome = AllocOutcome::Degraded;
        Retry.Diag = std::move(
            Why.addContext("degraded to linear-scan retry for @" + F.name()));
        return Finish(std::move(Retry));
      }
      Retry.Success = false;
      Retry.Outcome = AllocOutcome::Failed;
      Retry.Diag = std::move(RetryAudit);
    }
    Result = std::move(Retry); // fall through to spill-everything
  }

  if (Result.Success) {
    if (!C.Audit)
      return Finish(std::move(Result));
    Status AuditS = auditAllocationStatus(F, Result);
    if (AuditS.ok())
      return Finish(std::move(Result));
    Result.Success = false;
    Result.Outcome = AllocOutcome::Failed;
    Result.Diag = std::move(AuditS);
  }

  // Degradation ladder: primary allocation is unusable — spill every
  // live range and re-color. The fallback is always audited, whatever
  // C.Audit says: degraded code must never be wrong code.
  Status Why = Result.Diag;
  if (Gov && BudgetTripped(Why))
    RA_TRACE_COUNTER("budget.fallback.spill_everything", 1);
  AllocationResult Fallback = spillEverything(F, C, G, Loops);
  if (Fallback.Success) {
    Status FallbackAudit = auditAllocationStatus(F, Fallback);
    if (!FallbackAudit.ok()) {
      Fallback.Success = false;
      Fallback.Outcome = AllocOutcome::Failed;
      Fallback.Diag = std::move(FallbackAudit);
    }
  }
  if (Fallback.Success) {
    Fallback.Outcome = AllocOutcome::Degraded;
    Fallback.Diag =
        std::move(Why.addContext("degraded to spill-everything for @" +
                                 F.name()));
    return Finish(std::move(Fallback));
  }

  Result.Success = false;
  Result.Outcome = AllocOutcome::Failed;
  Result.Diag = std::move(Fallback.Diag.addContext(
      "spill-everything fallback also failed for @" + F.name() +
      " (primary failure: " + Why.toString() + ")"));
  return Finish(std::move(Result));
}
