//===- regalloc/Allocator.cpp - Build-Simplify-Color driver ---------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/Renumber.h"
#include "regalloc/BuildGraph.h"
#include "regalloc/Coalesce.h"
#include "regalloc/SpillCost.h"
#include "support/Timer.h"

#include <cassert>
#include <thread>

using namespace ra;

namespace {

/// Nodes below which a class graph is colored on the calling thread:
/// spawning a thread costs more than simplifying a small graph.
constexpr unsigned ParallelClassThreshold = 256;

} // namespace

AllocationResult ra::allocateRegisters(Function &F,
                                       const AllocatorConfig &C) {
  AllocationResult Result;
  Result.Machine = C.Machine;

  // The CFG shape never changes below: coalescing deletes only copies,
  // spilling inserts only non-terminators, renumbering touches only
  // operands. Compute flow structure once.
  CFG G = CFG::compute(F);
  Dominators Doms = Dominators::compute(F, G);
  LoopInfo Loops = LoopInfo::compute(F, G, Doms);

  for (unsigned Pass = 0; Pass < C.MaxPasses; ++Pass) {
    PassRecord Rec;

    //===----------------------------------------------------------===//
    // Build: renumber, coalesce, build graphs, compute spill costs.
    //===----------------------------------------------------------===//
    Timer BuildTimer;
    BuildTimer.start();
    renumberLiveRanges(F, G);
    if (C.Coalesce) {
      CoalesceStats CS = coalesceAll(F, G, C.Coalescing, C.Machine);
      Result.Stats.CopiesCoalesced += CS.CopiesRemoved;
      if (CS.CopiesRemoved != 0)
        renumberLiveRanges(F, G); // compact ids merged away
    }
    Liveness LV = Liveness::compute(F, G);
    auto Graphs = buildInterferenceGraphs(F, LV);
    std::vector<double> Costs = computeSpillCosts(F, Loops, C.Costs);
    for (ClassGraph &CG : Graphs) {
      setNodeCosts(F, Costs, CG);
      Rec.LiveRanges += CG.Graph.numNodes();
      Rec.Interferences += CG.Graph.numEdges();
    }
    BuildTimer.stop();
    Rec.BuildSeconds = BuildTimer.seconds();

    //===----------------------------------------------------------===//
    // Simplify + select, one class at a time.
    //===----------------------------------------------------------===//
    std::vector<VRegId> ToSpill;
    std::array<ColoringResult, NumRegClasses> Colorings;
    static_assert(NumRegClasses == 2, "per-class threading assumes 2");
    bool Concurrent =
        C.ParallelClasses &&
        Graphs[0].Graph.numNodes() >= ParallelClassThreshold &&
        Graphs[1].Graph.numNodes() >= ParallelClassThreshold;
    if (Concurrent) {
      // The two class files are disjoint, so their colorings share no
      // state; run Float on a helper thread while Int colors here.
      // Results land in fixed slots — output is identical to serial.
      std::thread Helper([&] {
        Colorings[1] =
            colorGraph(Graphs[1].Graph, C.Machine.numRegs(Graphs[1].Class),
                       C.H);
      });
      Colorings[0] = colorGraph(Graphs[0].Graph,
                                C.Machine.numRegs(Graphs[0].Class), C.H);
      Helper.join();
    } else {
      for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls)
        Colorings[Cls] = colorGraph(Graphs[Cls].Graph,
                                    C.Machine.numRegs(Graphs[Cls].Class),
                                    C.H);
    }
    for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
      ClassGraph &CG = Graphs[Cls];
      Rec.SimplifySeconds += Colorings[Cls].SimplifySeconds;
      Rec.SelectSeconds += Colorings[Cls].SelectSeconds;
      for (uint32_t Node : Colorings[Cls].Spilled) {
        VRegId R = CG.NodeToVReg[Node];
        ToSpill.push_back(R);
        Rec.SpilledNames.push_back(F.vreg(R).Name);
        Rec.SpilledCost += Costs[R];
      }
    }
    Rec.SpilledLiveRanges = ToSpill.size();

    if (ToSpill.empty()) {
      // Done: translate per-class node colors into a per-vreg map.
      Result.ColorOf.assign(F.numVRegs(), -1);
      for (unsigned Cls = 0; Cls < NumRegClasses; ++Cls) {
        const ClassGraph &CG = Graphs[Cls];
        for (uint32_t Node = 0; Node < CG.Graph.numNodes(); ++Node)
          Result.ColorOf[CG.NodeToVReg[Node]] =
              Colorings[Cls].ColorOf[Node];
      }
      Result.Stats.Passes.push_back(std::move(Rec));
      Result.Success = true;
      return Result;
    }

    //===----------------------------------------------------------===//
    // Spill: insert the stores and loads, then go around again.
    //===----------------------------------------------------------===//
    Timer SpillTimer;
    SpillTimer.start();
    SpillCodeStats SC = insertSpillCode(F, ToSpill, C.Rematerialize);
    SpillTimer.stop();
    Rec.SpillSeconds = SpillTimer.seconds();
    Result.Stats.SpillCode.Loads += SC.Loads;
    Result.Stats.SpillCode.Stores += SC.Stores;
    Result.Stats.SpillCode.Remats += SC.Remats;
    Result.Stats.Passes.push_back(std::move(Rec));
  }

  // Never observed in practice (the paper reports at most three
  // passes); callers treat this as an allocation failure.
  Result.Success = false;
  return Result;
}
