//===- regalloc/AllocationAudit.cpp - Post-allocation verifier ------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Everything here is recomputed from the function text: liveness with a
// local backward solver, register conflicts at definition points, and a
// forward store-before-load dataflow over spill slots. None of the
// allocator's own analyses (Liveness, BuildGraph, the interference
// graph) are reused, so the audit catches their bugs rather than
// inheriting them.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocationAudit.h"

#include "support/BitVector.h"
#include "support/Trace.h"

#include <deque>

using namespace ra;

namespace {

/// Formats an operand without needing the enclosing Module (the audit
/// runs inside allocateRegisters, which only sees the Function).
std::string operandText(const Function &F, const Operand &O) {
  switch (O.K) {
  case Operand::Kind::Reg:
    return O.Reg < F.numVRegs() ? "%" + F.vreg(O.Reg).Name
                                : "%<out-of-range:" + std::to_string(O.Reg) +
                                      ">";
  case Operand::Kind::IntImm:
    return std::to_string(O.Imm);
  case Operand::Kind::FloatImm:
    return std::to_string(O.FImm);
  case Operand::Kind::Array:
    return "@array." + std::to_string(O.Array);
  case Operand::Kind::Block:
    return O.Block < F.numBlocks() ? F.block(O.Block).Name
                                   : "<bad-block:" + std::to_string(O.Block) +
                                         ">";
  case Operand::Kind::None:
    break;
  }
  return "<none>";
}

std::string instructionText(const Function &F, const Instruction &I) {
  std::string Out = opcodeName(I.Op);
  for (unsigned Idx = 0; Idx < I.Ops.size(); ++Idx)
    Out += (Idx ? ", " : " ") + operandText(F, I.Ops[Idx]);
  return Out;
}

class Auditor {
public:
  Auditor(const Function &F, const AllocationResult &A) : F(F), A(A) {}

  std::vector<std::string> run() {
    if (!checkStructure())
      return Errors; // dataflow below needs well-shaped blocks
    checkAssignments();
    if (Errors.empty()) {
      computeLiveness();
      checkRegisterConflicts();
      checkSpillSlots();
    }
    return Errors;
  }

private:
  void error(const BasicBlock &B, const Instruction &I,
             const std::string &Msg) {
    Errors.push_back("@" + F.name() + ": in " + B.Name + ": '" +
                     instructionText(F, I) + "': " + Msg);
  }

  void error(const std::string &Msg) {
    Errors.push_back("@" + F.name() + ": " + Msg);
  }

  /// Shape checks the later dataflow depends on: non-empty terminated
  /// blocks, in-range branch targets and register ids.
  bool checkStructure() {
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return false;
    }
    for (const BasicBlock &B : F.blocks()) {
      if (B.Insts.empty()) {
        error("block " + B.Name + " is empty");
        return false;
      }
      for (unsigned Idx = 0, E = B.Insts.size(); Idx != E; ++Idx) {
        const Instruction &I = B.Insts[Idx];
        if (I.isTerminator() != (Idx + 1 == E)) {
          error(B, I, Idx + 1 == E ? "block does not end in a terminator"
                                   : "terminator in the middle of a block");
          return false;
        }
        for (const Operand &O : I.Ops) {
          if (O.isReg() && O.Reg >= F.numVRegs()) {
            error(B, I, "register id out of range");
            return false;
          }
          if (O.isBlock() && O.Block >= F.numBlocks()) {
            error(B, I, "branch to out-of-range block");
            return false;
          }
        }
        if ((I.Op == Opcode::SpillLd || I.Op == Opcode::SpillSt) &&
            (I.Ops.size() != 2 || !I.Ops[0].isReg() ||
             I.Ops[1].K != Operand::Kind::IntImm)) {
          error(B, I, "malformed spill instruction");
          return false;
        }
      }
    }
    return true;
  }

  /// Every register operand must map to a physical register inside its
  /// class's file.
  void checkAssignments() {
    if (A.ColorOf.size() != F.numVRegs()) {
      error("allocation covers " + std::to_string(A.ColorOf.size()) +
            " registers but the function has " +
            std::to_string(F.numVRegs()));
      return;
    }
    BitVector Reported(F.numVRegs());
    for (const BasicBlock &B : F.blocks()) {
      for (const Instruction &I : B.Insts) {
        for (const Operand &O : I.Ops) {
          if (!O.isReg() || !Reported.testAndSet(O.Reg))
            continue;
          int32_t Phys = A.ColorOf[O.Reg];
          unsigned FileSize = A.Machine.numRegs(F.regClass(O.Reg));
          if (Phys < 0)
            error(B, I, "%" + F.vreg(O.Reg).Name +
                            " has no physical register");
          else if (unsigned(Phys) >= FileSize)
            error(B, I, "%" + F.vreg(O.Reg).Name + " assigned " +
                            regClassName(F.regClass(O.Reg)) + " r" +
                            std::to_string(Phys) + " outside the " +
                            std::to_string(FileSize) + "-register file");
        }
      }
    }
  }

  /// Backward live-variable fixpoint, written out longhand so the audit
  /// shares no code with analysis/Liveness.
  void computeLiveness() {
    unsigned NB = F.numBlocks(), NR = F.numVRegs();
    std::vector<BitVector> Use(NB, BitVector(NR)), Def(NB, BitVector(NR));
    LiveOut.assign(NB, BitVector(NR));
    std::vector<BitVector> LiveIn(NB, BitVector(NR));
    std::vector<std::vector<uint32_t>> Preds(NB);

    for (const BasicBlock &B : F.blocks()) {
      B.terminator().forEachBlockTarget(
          [&](uint32_t S) { Preds[S].push_back(B.Id); });
      for (const Instruction &I : B.Insts) {
        I.forEachUse([&](VRegId R) {
          if (!Def[B.Id].test(R))
            Use[B.Id].set(R);
        });
        if (I.hasDef())
          Def[B.Id].set(I.defReg());
      }
    }

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned BId = NB; BId-- > 0;) {
        BitVector Out(NR);
        F.block(BId).terminator().forEachBlockTarget(
            [&](uint32_t S) { Out.unionWith(LiveIn[S]); });
        BitVector In = Out;
        In.subtract(Def[BId]);
        In.unionWith(Use[BId]);
        if (!(Out == LiveOut[BId]) || !(In == LiveIn[BId])) {
          LiveOut[BId] = std::move(Out);
          LiveIn[BId] = std::move(In);
          Changed = true;
        }
      }
    }
  }

  /// At every definition point, the defined register must not share its
  /// physical register with any other live range live just after the
  /// instruction (same class). Exception: a Copy's target may share with
  /// its source — both hold the same value at that point, so later reads
  /// of either are still correct.
  void checkRegisterConflicts() {
    for (const BasicBlock &B : F.blocks()) {
      BitVector Live = LiveOut[B.Id];
      for (unsigned Idx = B.Insts.size(); Idx-- > 0;) {
        const Instruction &I = B.Insts[Idx];
        // Live currently holds the set live immediately after I.
        if (I.hasDef()) {
          VRegId D = I.defReg();
          RegClass DC = F.regClass(D);
          int32_t DPhys = A.ColorOf[D];
          VRegId CopySrc =
              I.isCopy() && I.Ops[1].isReg() ? I.Ops[1].Reg : InvalidVReg;
          Live.forEachSetBit([&](unsigned V) {
            if (V == D || V == CopySrc)
              return;
            if (F.regClass(V) == DC && A.ColorOf[V] == DPhys)
              error(B, I,
                    std::string(regClassName(DC)) + " r" +
                        std::to_string(DPhys) + " is clobbered: %" +
                        F.vreg(D).Name + " is defined while %" +
                        F.vreg(V).Name + " is live in the same register");
          });
          Live.reset(D);
        }
        I.forEachUse([&](VRegId R) { Live.set(R); });
      }
    }
  }

  /// Spill traffic: slot operands in range and of the right class, and a
  /// forward definite-assignment dataflow proving every spill load is
  /// reached by a store to its slot on all paths ("never reload garbage").
  void checkSpillSlots() {
    unsigned NB = F.numBlocks(), NS = F.numSpillSlots();

    for (const BasicBlock &B : F.blocks()) {
      for (const Instruction &I : B.Insts) {
        if (I.Op != Opcode::SpillLd && I.Op != Opcode::SpillSt)
          continue;
        int64_t Slot = I.Ops[1].Imm;
        if (Slot < 0 || uint64_t(Slot) >= NS) {
          error(B, I, "spill slot out of range");
          return; // slot dataflow below would index out of range
        }
        if (F.spillSlotClass(unsigned(Slot)) != F.regClass(I.Ops[0].Reg))
          error(B, I, "spill slot class mismatch");
      }
    }
    if (NS == 0)
      return;

    // StoredOut[b]: slots stored on every path from entry through b.
    std::vector<BitVector> StoredOut(NB, BitVector(NS));
    std::vector<bool> Reached(NB, false);
    std::vector<std::vector<uint32_t>> Preds(NB);
    for (const BasicBlock &B : F.blocks())
      B.terminator().forEachBlockTarget(
          [&](uint32_t S) { Preds[S].push_back(B.Id); });
    for (BitVector &BV : StoredOut)
      BV.setAll(); // top element for the intersection

    std::deque<uint32_t> Work{F.entry()};
    std::vector<bool> InWork(NB, false);
    InWork[F.entry()] = true;
    while (!Work.empty()) {
      uint32_t BId = Work.front();
      Work.pop_front();
      InWork[BId] = false;
      bool FirstVisit = !Reached[BId];
      Reached[BId] = true;

      BitVector In = blockInSet(BId, Preds, StoredOut, Reached, NS);
      for (const Instruction &I : F.block(BId).Insts)
        if (I.Op == Opcode::SpillSt)
          In.set(unsigned(I.Ops[1].Imm));
      if (FirstVisit || !(In == StoredOut[BId])) {
        StoredOut[BId] = std::move(In);
        F.block(BId).terminator().forEachBlockTarget([&](uint32_t S) {
          if (!InWork[S]) {
            InWork[S] = true;
            Work.push_back(S);
          }
        });
      }
    }

    for (const BasicBlock &B : F.blocks()) {
      if (!Reached[B.Id])
        continue;
      BitVector Stored = blockInSet(B.Id, Preds, StoredOut, Reached, NS);
      for (const Instruction &I : B.Insts) {
        if (I.Op == Opcode::SpillLd &&
            !Stored.test(unsigned(I.Ops[1].Imm)))
          error(B, I, "spill load from slot " +
                          std::to_string(I.Ops[1].Imm) +
                          " that is not stored on every path");
        else if (I.Op == Opcode::SpillSt)
          Stored.set(unsigned(I.Ops[1].Imm));
      }
    }
  }

  /// Intersection of StoredOut over reached predecessors (empty set for
  /// the entry block).
  BitVector blockInSet(uint32_t BId,
                       const std::vector<std::vector<uint32_t>> &Preds,
                       const std::vector<BitVector> &StoredOut,
                       const std::vector<bool> &Reached, unsigned NS) {
    BitVector In(NS);
    if (BId == F.entry())
      return In;
    bool First = true;
    for (uint32_t P : Preds[BId]) {
      if (!Reached[P])
        continue;
      if (First) {
        In = StoredOut[P];
        First = false;
      } else {
        In.intersectWith(StoredOut[P]);
      }
    }
    return In;
  }

  const Function &F;
  const AllocationResult &A;
  std::vector<BitVector> LiveOut;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> ra::auditAllocation(const Function &F,
                                             const AllocationResult &A) {
  RA_TRACE_SPAN("AllocationAudit", "regalloc");
  return Auditor(F, A).run();
}

Status ra::auditAllocationStatus(const Function &F,
                                 const AllocationResult &A) {
  std::vector<std::string> Errors = auditAllocation(F, A);
  if (Errors.empty())
    return Status();
  constexpr unsigned MaxShown = 3;
  std::string Msg;
  for (unsigned I = 0; I < Errors.size() && I < MaxShown; ++I)
    Msg += (I ? "; " : "") + Errors[I];
  if (Errors.size() > MaxShown)
    Msg += "; ... (" + std::to_string(Errors.size()) + " audit errors total)";
  return Status::error(StatusCode::AuditFailure, std::move(Msg));
}
