//===- regalloc/AllocationAudit.cpp - Post-allocation verifier ------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Everything here is recomputed from the function text: liveness with a
// local backward solver, register conflicts at definition points, and a
// forward store-before-load dataflow over spill slots. None of the
// allocator's own analyses (Liveness, BuildGraph, the interference
// graph) are reused, so the audit catches their bugs rather than
// inheriting them.
//
//===----------------------------------------------------------------------===//

#include "regalloc/AllocationAudit.h"

#include "support/BitVector.h"
#include "support/Trace.h"

#include <deque>
#include <map>

using namespace ra;

namespace {

/// Formats an operand without needing the enclosing Module (the audit
/// runs inside allocateRegisters, which only sees the Function).
std::string operandText(const Function &F, const Operand &O) {
  switch (O.K) {
  case Operand::Kind::Reg:
    return O.Reg < F.numVRegs() ? "%" + F.vreg(O.Reg).Name
                                : "%<out-of-range:" + std::to_string(O.Reg) +
                                      ">";
  case Operand::Kind::IntImm:
    return std::to_string(O.Imm);
  case Operand::Kind::FloatImm:
    return std::to_string(O.FImm);
  case Operand::Kind::Array:
    return "@array." + std::to_string(O.Array);
  case Operand::Kind::Block:
    return O.Block < F.numBlocks() ? F.block(O.Block).Name
                                   : "<bad-block:" + std::to_string(O.Block) +
                                         ">";
  case Operand::Kind::None:
    break;
  }
  return "<none>";
}

std::string instructionText(const Function &F, const Instruction &I) {
  std::string Out = opcodeName(I.Op);
  for (unsigned Idx = 0; Idx < I.Ops.size(); ++Idx)
    Out += (Idx ? ", " : " ") + operandText(F, I.Ops[Idx]);
  return Out;
}

class Auditor {
public:
  Auditor(const Function &F, const AllocationResult &A) : F(F), A(A) {}

  std::vector<std::string> run() {
    if (!checkStructure())
      return Errors; // dataflow below needs well-shaped blocks
    checkAssignments();
    checkPieces();
    if (Errors.empty()) {
      numberBlocks();
      computeLiveness();
      if (!A.Pieces.empty()) {
        checkPieceCoverage();
        checkBlockEntryDistinct();
      }
      checkRegisterConflicts();
      checkSpillSlots();
    }
    return Errors;
  }

private:
  void error(const BasicBlock &B, const Instruction &I,
             const std::string &Msg) {
    Errors.push_back("@" + F.name() + ": in " + B.Name + ": '" +
                     instructionText(F, I) + "': " + Msg);
  }

  void error(const std::string &Msg) {
    Errors.push_back("@" + F.name() + ": " + Msg);
  }

  /// Shape checks the later dataflow depends on: non-empty terminated
  /// blocks, in-range branch targets and register ids.
  bool checkStructure() {
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return false;
    }
    for (const BasicBlock &B : F.blocks()) {
      if (B.Insts.empty()) {
        error("block " + B.Name + " is empty");
        return false;
      }
      for (unsigned Idx = 0, E = B.Insts.size(); Idx != E; ++Idx) {
        const Instruction &I = B.Insts[Idx];
        if (I.isTerminator() != (Idx + 1 == E)) {
          error(B, I, Idx + 1 == E ? "block does not end in a terminator"
                                   : "terminator in the middle of a block");
          return false;
        }
        for (const Operand &O : I.Ops) {
          if (O.isReg() && O.Reg >= F.numVRegs()) {
            error(B, I, "register id out of range");
            return false;
          }
          if (O.isBlock() && O.Block >= F.numBlocks()) {
            error(B, I, "branch to out-of-range block");
            return false;
          }
        }
        if ((I.Op == Opcode::SpillLd || I.Op == Opcode::SpillSt) &&
            (I.Ops.size() != 2 || !I.Ops[0].isReg() ||
             I.Ops[1].K != Operand::Kind::IntImm)) {
          error(B, I, "malformed spill instruction");
          return false;
        }
      }
    }
    return true;
  }

  /// Every register operand must map to a physical register inside its
  /// class's file.
  void checkAssignments() {
    if (A.ColorOf.size() != F.numVRegs()) {
      error("allocation covers " + std::to_string(A.ColorOf.size()) +
            " registers but the function has " +
            std::to_string(F.numVRegs()));
      return;
    }
    BitVector Reported(F.numVRegs());
    for (const BasicBlock &B : F.blocks()) {
      for (const Instruction &I : B.Insts) {
        for (const Operand &O : I.Ops) {
          if (!O.isReg() || !Reported.testAndSet(O.Reg))
            continue;
          int32_t Phys = A.ColorOf[O.Reg];
          unsigned FileSize = A.Machine.numRegs(F.regClass(O.Reg));
          if (Phys < 0)
            error(B, I, "%" + F.vreg(O.Reg).Name +
                            " has no physical register");
          else if (unsigned(Phys) >= FileSize)
            error(B, I, "%" + F.vreg(O.Reg).Name + " assigned " +
                            regClassName(F.regClass(O.Reg)) + " r" +
                            std::to_string(Phys) + " outside the " +
                            std::to_string(FileSize) + "-register file");
        }
      }
    }
  }

  /// Validates the split-range table: sorted by (register, slot),
  /// well-formed instruction-aligned ranges, physical registers inside
  /// the file, no overlap between pieces of one range, and a color
  /// table that agrees with each range's first piece. Also builds the
  /// per-vreg span index the slot-aware checks below resolve against.
  void checkPieces() {
    if (A.Pieces.empty() || A.ColorOf.size() != F.numVRegs())
      return; // nothing to index, or checkAssignments already reported
    SpansOf.assign(F.numVRegs(), {});
    const PieceAssignment *Prev = nullptr;
    for (const PieceAssignment &P : A.Pieces) {
      if (P.Reg >= F.numVRegs()) {
        error("piece assignment for out-of-range register " +
              std::to_string(P.Reg));
        continue;
      }
      std::string Name = "%" + F.vreg(P.Reg).Name;
      if (P.From >= P.To || (P.From & 1) || (P.To & 1))
        error("piece of " + Name + " has malformed slot range [" +
              std::to_string(P.From) + ", " + std::to_string(P.To) + ")");
      unsigned FileSize = A.Machine.numRegs(F.regClass(P.Reg));
      if (P.PhysReg >= FileSize)
        error("piece of " + Name + " assigned " +
              std::string(regClassName(F.regClass(P.Reg))) + " r" +
              std::to_string(P.PhysReg) + " outside the " +
              std::to_string(FileSize) + "-register file");
      if (Prev && (Prev->Reg > P.Reg ||
                   (Prev->Reg == P.Reg && Prev->From > P.From)))
        error("piece table is not sorted by (register, slot)");
      if (Prev && Prev->Reg == P.Reg && Prev->To > P.From)
        error("pieces of " + Name + " overlap");
      SpansOf[P.Reg].push_back({P.From, P.To, P.PhysReg});
      Prev = &P;
    }
    for (VRegId R = 0; R < F.numVRegs(); ++R)
      if (!SpansOf[R].empty() &&
          A.ColorOf[R] != int32_t(SpansOf[R].front().Phys))
        error("%" + F.vreg(R).Name +
              " color table disagrees with its first piece");
  }

  /// Local copy of the InstrNumbering convention: instructions are
  /// numbered in block layout order, read slot = index * 2, write slot
  /// = index * 2 + 1. Recomputed here so the audit does not inherit the
  /// analysis it is checking.
  void numberBlocks() {
    FirstInst.assign(F.numBlocks(), 0);
    uint32_t Idx = 0;
    for (const BasicBlock &B : F.blocks()) {
      FirstInst[B.Id] = Idx;
      Idx += uint32_t(B.Insts.size());
    }
  }

  /// Where value \p V lives at slot \p S: its piece's register, its
  /// single color when unsplit, or -1 when no piece covers the slot.
  int32_t physAt(VRegId V, uint32_t S) const {
    if (SpansOf.empty() || SpansOf[V].empty())
      return A.ColorOf[V];
    for (const Span &P : SpansOf[V])
      if (P.From <= S && S < P.To)
        return int32_t(P.Phys);
    return -1;
  }

  /// Every access of a split range must land inside one of its pieces:
  /// reads at the instruction's read slot, definitions at its write
  /// slot. A gap at an access point means the value has no register
  /// exactly when the instruction needs one.
  void checkPieceCoverage() {
    for (const BasicBlock &B : F.blocks()) {
      uint32_t Idx = 0;
      for (const Instruction &I : B.Insts) {
        const uint32_t ReadSlot = (FirstInst[B.Id] + Idx) * 2;
        ++Idx;
        I.forEachUse([&](VRegId R) {
          if (!SpansOf[R].empty() && physAt(R, ReadSlot) < 0)
            error(B, I, "%" + F.vreg(R).Name + " is read at slot " +
                            std::to_string(ReadSlot) +
                            " where no piece assigns it a register");
        });
        if (I.hasDef() && !SpansOf[I.defReg()].empty() &&
            physAt(I.defReg(), ReadSlot + 1) < 0)
          error(B, I, "%" + F.vreg(I.defReg()).Name +
                          " is defined at slot " +
                          std::to_string(ReadSlot + 1) +
                          " where no piece assigns it a register");
      }
    }
  }

  /// On entry to each block every live-in value must occupy a distinct
  /// register within its class. Cross-edge piece moves are resolved on
  /// the edge, so a collision at the entry slot means two values target
  /// one register — the conflict shape def-point checking cannot see,
  /// because a piece may change register across an edge with no def in
  /// sight.
  void checkBlockEntryDistinct() {
    std::map<std::pair<RegClass, int32_t>, unsigned> Holder;
    for (const BasicBlock &B : F.blocks()) {
      const uint32_t S = FirstInst[B.Id] * 2;
      Holder.clear();
      LiveIn[B.Id].forEachSetBit([&](unsigned V) {
        int32_t P = physAt(V, S);
        if (P < 0)
          return;
        auto Key = std::make_pair(F.regClass(V), P);
        auto It = Holder.find(Key);
        if (It != Holder.end())
          error(B, B.Insts.front(),
                "at block entry %" + F.vreg(V).Name + " and %" +
                    F.vreg(It->second).Name + " both occupy " +
                    std::string(regClassName(F.regClass(V))) + " r" +
                    std::to_string(P));
        else
          Holder.emplace(Key, V);
      });
    }
  }

  /// Backward live-variable fixpoint, written out longhand so the audit
  /// shares no code with analysis/Liveness.
  void computeLiveness() {
    unsigned NB = F.numBlocks(), NR = F.numVRegs();
    std::vector<BitVector> Use(NB, BitVector(NR)), Def(NB, BitVector(NR));
    LiveOut.assign(NB, BitVector(NR));
    LiveIn.assign(NB, BitVector(NR));
    std::vector<std::vector<uint32_t>> Preds(NB);

    for (const BasicBlock &B : F.blocks()) {
      B.terminator().forEachBlockTarget(
          [&](uint32_t S) { Preds[S].push_back(B.Id); });
      for (const Instruction &I : B.Insts) {
        I.forEachUse([&](VRegId R) {
          if (!Def[B.Id].test(R))
            Use[B.Id].set(R);
        });
        if (I.hasDef())
          Def[B.Id].set(I.defReg());
      }
    }

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned BId = NB; BId-- > 0;) {
        BitVector Out(NR);
        F.block(BId).terminator().forEachBlockTarget(
            [&](uint32_t S) { Out.unionWith(LiveIn[S]); });
        BitVector In = Out;
        In.subtract(Def[BId]);
        In.unionWith(Use[BId]);
        if (!(Out == LiveOut[BId]) || !(In == LiveIn[BId])) {
          LiveOut[BId] = std::move(Out);
          LiveIn[BId] = std::move(In);
          Changed = true;
        }
      }
    }
  }

  /// At every definition point, the defined register must not share its
  /// physical register with any other live range live just after the
  /// instruction (same class). Exception: a Copy's target may share with
  /// its source — both hold the same value at that point, so later reads
  /// of either are still correct. All comparisons resolve through
  /// physAt, so a split range is checked against the register it holds
  /// *at that slot*; and wherever a piece boundary falls inside the
  /// block, the implicit move is checked against every other live
  /// value's location at the same slot.
  void checkRegisterConflicts() {
    const bool Pieced = !A.Pieces.empty();
    for (const BasicBlock &B : F.blocks()) {
      BitVector Live = LiveOut[B.Id];
      for (unsigned Idx = B.Insts.size(); Idx-- > 0;) {
        const Instruction &I = B.Insts[Idx];
        const uint32_t ReadSlot = (FirstInst[B.Id] + Idx) * 2;
        // Live currently holds the set live immediately after I.
        if (I.hasDef()) {
          VRegId D = I.defReg();
          RegClass DC = F.regClass(D);
          int32_t DPhys = physAt(D, ReadSlot + 1);
          VRegId CopySrc =
              I.isCopy() && I.Ops[1].isReg() ? I.Ops[1].Reg : InvalidVReg;
          Live.forEachSetBit([&](unsigned V) {
            if (V == D || V == CopySrc)
              return;
            if (F.regClass(V) == DC && DPhys >= 0 &&
                physAt(V, ReadSlot + 1) == DPhys)
              error(B, I,
                    std::string(regClassName(DC)) + " r" +
                        std::to_string(DPhys) + " is clobbered: %" +
                        F.vreg(D).Name + " is defined while %" +
                        F.vreg(V).Name + " is live in the same register");
          });
          Live.reset(D);
        }
        I.forEachUse([&](VRegId R) { Live.set(R); });
        // Live now holds the set live immediately before I. A split
        // value changing register right here (between the previous
        // instruction and this one) implies a move; its target must not
        // be occupied by any other value live across the move.
        if (Pieced && ReadSlot >= FirstInst[B.Id] * 2 + 2) {
          Live.forEachSetBit([&](unsigned V) {
            if (SpansOf[V].empty())
              return;
            int32_t POld = physAt(V, ReadSlot - 2);
            int32_t PNew = physAt(V, ReadSlot);
            if (POld < 0 || PNew < 0 || POld == PNew)
              return;
            RegClass C = F.regClass(V);
            Live.forEachSetBit([&](unsigned W) {
              if (W == V || F.regClass(W) != C)
                return;
              if (physAt(W, ReadSlot) == PNew)
                error(B, I,
                      "piece move puts %" + F.vreg(V).Name + " into " +
                          std::string(regClassName(C)) + " r" +
                          std::to_string(PNew) + " while %" +
                          F.vreg(W).Name + " occupies it");
            });
          });
        }
      }
    }
  }

  /// Spill traffic: slot operands in range and of the right class, and a
  /// forward definite-assignment dataflow proving every spill load is
  /// reached by a store to its slot on all paths ("never reload garbage").
  void checkSpillSlots() {
    unsigned NB = F.numBlocks(), NS = F.numSpillSlots();

    for (const BasicBlock &B : F.blocks()) {
      for (const Instruction &I : B.Insts) {
        if (I.Op != Opcode::SpillLd && I.Op != Opcode::SpillSt)
          continue;
        int64_t Slot = I.Ops[1].Imm;
        if (Slot < 0 || uint64_t(Slot) >= NS) {
          error(B, I, "spill slot out of range");
          return; // slot dataflow below would index out of range
        }
        if (F.spillSlotClass(unsigned(Slot)) != F.regClass(I.Ops[0].Reg))
          error(B, I, "spill slot class mismatch");
      }
    }
    if (NS == 0)
      return;

    // StoredOut[b]: slots stored on every path from entry through b.
    std::vector<BitVector> StoredOut(NB, BitVector(NS));
    std::vector<bool> Reached(NB, false);
    std::vector<std::vector<uint32_t>> Preds(NB);
    for (const BasicBlock &B : F.blocks())
      B.terminator().forEachBlockTarget(
          [&](uint32_t S) { Preds[S].push_back(B.Id); });
    for (BitVector &BV : StoredOut)
      BV.setAll(); // top element for the intersection

    std::deque<uint32_t> Work{F.entry()};
    std::vector<bool> InWork(NB, false);
    InWork[F.entry()] = true;
    while (!Work.empty()) {
      uint32_t BId = Work.front();
      Work.pop_front();
      InWork[BId] = false;
      bool FirstVisit = !Reached[BId];
      Reached[BId] = true;

      BitVector In = blockInSet(BId, Preds, StoredOut, Reached, NS);
      for (const Instruction &I : F.block(BId).Insts)
        if (I.Op == Opcode::SpillSt)
          In.set(unsigned(I.Ops[1].Imm));
      if (FirstVisit || !(In == StoredOut[BId])) {
        StoredOut[BId] = std::move(In);
        F.block(BId).terminator().forEachBlockTarget([&](uint32_t S) {
          if (!InWork[S]) {
            InWork[S] = true;
            Work.push_back(S);
          }
        });
      }
    }

    for (const BasicBlock &B : F.blocks()) {
      if (!Reached[B.Id])
        continue;
      BitVector Stored = blockInSet(B.Id, Preds, StoredOut, Reached, NS);
      for (const Instruction &I : B.Insts) {
        if (I.Op == Opcode::SpillLd &&
            !Stored.test(unsigned(I.Ops[1].Imm)))
          error(B, I, "spill load from slot " +
                          std::to_string(I.Ops[1].Imm) +
                          " that is not stored on every path");
        else if (I.Op == Opcode::SpillSt)
          Stored.set(unsigned(I.Ops[1].Imm));
      }
    }
  }

  /// Intersection of StoredOut over reached predecessors (empty set for
  /// the entry block).
  BitVector blockInSet(uint32_t BId,
                       const std::vector<std::vector<uint32_t>> &Preds,
                       const std::vector<BitVector> &StoredOut,
                       const std::vector<bool> &Reached, unsigned NS) {
    BitVector In(NS);
    if (BId == F.entry())
      return In;
    bool First = true;
    for (uint32_t P : Preds[BId]) {
      if (!Reached[P])
        continue;
      if (First) {
        In = StoredOut[P];
        First = false;
      } else {
        In.intersectWith(StoredOut[P]);
      }
    }
    return In;
  }

  /// One piece of a split range, indexed per vreg by checkPieces.
  struct Span {
    uint32_t From;
    uint32_t To;
    uint32_t Phys;
  };

  const Function &F;
  const AllocationResult &A;
  std::vector<BitVector> LiveOut;
  std::vector<BitVector> LiveIn;
  std::vector<std::vector<Span>> SpansOf; ///< Empty vector = unsplit.
  std::vector<uint32_t> FirstInst;        ///< Block -> first instr index.
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> ra::auditAllocation(const Function &F,
                                             const AllocationResult &A) {
  RA_TRACE_SPAN("AllocationAudit", "regalloc");
  return Auditor(F, A).run();
}

Status ra::auditAllocationStatus(const Function &F,
                                 const AllocationResult &A) {
  std::vector<std::string> Errors = auditAllocation(F, A);
  if (Errors.empty())
    return Status();
  constexpr unsigned MaxShown = 3;
  std::string Msg;
  for (unsigned I = 0; I < Errors.size() && I < MaxShown; ++I)
    Msg += (I ? "; " : "") + Errors[I];
  if (Errors.size() > MaxShown)
    Msg += "; ... (" + std::to_string(Errors.size()) + " audit errors total)";
  return Status::error(StatusCode::AuditFailure, std::move(Msg));
}
