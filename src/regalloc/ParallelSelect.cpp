//===- regalloc/ParallelSelect.cpp - Speculate-and-repair select ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/ParallelSelect.h"

#include "support/Budget.h"
#include "support/ParallelFor.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace ra;

namespace {

constexpr uint32_t NoRank = ~0u; ///< Rank of nodes outside the stack.

/// Per-worker scratch, cacheline-separated so neighbor workers never
/// false-share. Mark/Stamp implement an O(K) color set with O(1) clear;
/// Out accumulates rank positions to hand back to the coordinator.
struct alignas(64) Worker {
  std::vector<uint32_t> Mark;
  uint32_t Stamp = 0;
  std::vector<uint32_t> Out;
};

/// The greedy rule on the atomically-published color array: lowest color
/// in [0, K) unused by neighbors ranked before \p MyRank, or -1. Sets
/// \p SawForeign when some constraining neighbor ranks before
/// \p ForeignBound — round 0 passes its chunk base, so the flag means
/// "this read may have been stale at the time" (within-chunk reads are
/// settled by the in-order walk; cross-chunk ones may not be written or
/// may still change).
int32_t mexColor(const InterferenceGraph &G, unsigned K,
                 const std::vector<uint32_t> &Rank,
                 const std::atomic<int32_t> *Colors, uint32_t Node,
                 uint32_t MyRank, size_t ForeignBound, bool &SawForeign,
                 Worker &W) {
  ++W.Stamp;
  for (uint32_t M : G.neighbors(Node)) {
    uint32_t RM = Rank[M];
    if (RM >= MyRank) // NoRank lands here: non-stack nodes never constrain
      continue;
    if (RM < ForeignBound)
      SawForeign = true;
    int32_t C = Colors[M].load(std::memory_order_relaxed);
    if (C >= 0)
      W.Mark[C] = W.Stamp;
  }
  for (unsigned C = 0; C < K; ++C)
    if (W.Mark[C] != W.Stamp)
      return int32_t(C);
  return -1;
}

} // namespace

int32_t ra::greedySelectColor(const InterferenceGraph &G, unsigned K,
                              const std::vector<uint32_t> &Rank,
                              const std::vector<int32_t> &Colors,
                              uint32_t Node) {
  uint32_t MyRank = Rank[Node];
  std::vector<bool> Used(K, false);
  for (uint32_t M : G.neighbors(Node))
    if (Rank[M] < MyRank && Colors[M] >= 0)
      Used[Colors[M]] = true;
  for (unsigned C = 0; C < K; ++C)
    if (!Used[C])
      return int32_t(C);
  return -1;
}

std::vector<uint32_t>
ra::findSelectConflicts(const InterferenceGraph &G, unsigned K,
                        const std::vector<uint32_t> &SelectOrder,
                        const std::vector<int32_t> &Colors) {
  std::vector<uint32_t> Rank(G.numNodes(), NoRank);
  for (size_t I = 0, S = SelectOrder.size(); I != S; ++I)
    Rank[SelectOrder[I]] = uint32_t(I);
  std::vector<uint32_t> Wrong;
  for (size_t I = 0, S = SelectOrder.size(); I != S; ++I) {
    uint32_t Node = SelectOrder[I];
    if (greedySelectColor(G, K, Rank, Colors, Node) != Colors[Node])
      Wrong.push_back(uint32_t(I));
  }
  return Wrong;
}

void ra::runParallelSelect(const InterferenceGraph &G, unsigned K,
                           const std::vector<uint32_t> &SelectOrder,
                           const SelectOptions &SO,
                           std::vector<int32_t> &ColorOf,
                           std::vector<SelectRound> &Rounds) {
  assert(K >= 1 && "need at least one color");
  Rounds.clear();
  const size_t S = SelectOrder.size();
  if (S == 0)
    return;
  G.finalize(); // CSR must be packed before threads read it
  const unsigned N = G.numNodes();
  assert(ColorOf.size() == N && "color array must cover the graph");

  unsigned Threads = ThreadPool::resolveJobs(SO.Threads);
  size_t ChunkSize = SO.ChunkSize ? SO.ChunkSize : (S + Threads - 1) / Threads;
  ChunkSize = std::max<size_t>(ChunkSize, 1);
  const size_t NumChunks = (S + ChunkSize - 1) / ChunkSize;
  Threads = unsigned(std::min<size_t>(Threads, NumChunks));

  std::vector<uint32_t> Rank(N, NoRank);
  for (size_t I = 0; I != S; ++I)
    Rank[SelectOrder[I]] = uint32_t(I);

  // Colors live in relaxed atomics for the duration: speculative rounds
  // read neighbors other threads may be writing, and relaxed is enough
  // because no round ever *depends* on seeing a fresh value — stale
  // reads only create conflicts that detection (which runs strictly
  // after a join, on settled memory) then repairs.
  std::vector<std::atomic<int32_t>> Color(N);
  for (unsigned I = 0; I != N; ++I)
    Color[I].store(-1, std::memory_order_relaxed);

  std::vector<Worker> Workers(Threads);
  for (Worker &W : Workers)
    W.Mark.assign(K, 0);

  // Candidate dedup flags, indexed by rank position; cleared back to 0
  // via the gathered list each round so the array is allocated once.
  std::vector<std::atomic<uint8_t>> Touched(S);
  for (size_t I = 0; I != S; ++I)
    Touched[I].store(0, std::memory_order_relaxed);

  // Concatenates per-worker Out lists in worker order.
  auto gatherOuts = [&Workers](std::vector<uint32_t> &Into) {
    Into.clear();
    for (Worker &W : Workers) {
      Into.insert(Into.end(), W.Out.begin(), W.Out.end());
      W.Out.clear();
    }
  };

  //===------------------------------------------------------------===//
  // Round 0: speculation. Thread T owns chunks T, T+Threads, ... and
  // Gauss-Seidel colors each chunk in rank order, so within-chunk (and
  // own-earlier-chunk) reads are settled; only nodes that consulted a
  // neighbor ranked before their chunk can disagree with the joined
  // state, and exactly those become detection candidates.
  //===------------------------------------------------------------===//
  Timer SpecTimer;
  SpecTimer.start();
  forkJoin(Threads, [&](unsigned T) {
    Worker &W = Workers[T];
    for (size_t Chunk = T; Chunk < NumChunks; Chunk += Threads) {
      const size_t Begin = Chunk * ChunkSize;
      const size_t End = std::min(S, Begin + ChunkSize);
      for (size_t I = Begin; I != End; ++I) {
        uint32_t Node = SelectOrder[I];
        bool Foreign = false;
        int32_t C = mexColor(G, K, Rank, Color.data(), Node, uint32_t(I),
                             Begin, Foreign, W);
        Color[Node].store(C, std::memory_order_relaxed);
        if (Foreign)
          W.Out.push_back(uint32_t(I));
      }
    }
  });

  std::vector<uint32_t> Candidates, Conflicts;
  gatherOuts(Candidates);
  std::sort(Candidates.begin(), Candidates.end());

  // Exact detection: a candidate is wrong iff its color differs from
  // the mex over the joined state. Equality — not mere validity — is
  // what makes the fixpoint the sequential coloring (a stale read can
  // leave a valid-but-too-high color). Batches cover the sorted
  // candidate list contiguously, so the concatenated conflict list is
  // already in rank order.
  auto detect = [&](const std::vector<uint32_t> &Cand) {
    parallelBatches(Cand.size(), Threads, [&](unsigned B, size_t Lo,
                                              size_t Hi) {
      Worker &W = Workers[B];
      for (size_t X = Lo; X != Hi; ++X) {
        uint32_t I = Cand[X];
        uint32_t Node = SelectOrder[I];
        bool Unused = false;
        int32_t Want =
            mexColor(G, K, Rank, Color.data(), Node, I, 0, Unused, W);
        if (Want != Color[Node].load(std::memory_order_relaxed))
          W.Out.push_back(I);
      }
    });
    gatherOuts(Conflicts);
  };

  detect(Candidates);
  SpecTimer.stop();
  Rounds.push_back({uint32_t(S), uint32_t(Candidates.size()),
                    uint32_t(Conflicts.size()), SpecTimer.seconds()});

  //===------------------------------------------------------------===//
  // Repair rounds: re-color exactly the wrong set, then re-detect the
  // only equations whose inputs changed — the re-colored nodes and
  // their higher-ranked neighbors. The minimum wrong rank strictly
  // increases each round (its lower-ranked neighbors are all correct,
  // absent from the conflict list, and thus never concurrently
  // rewritten), so the loop terminates in at most S rounds; MaxRounds
  // is a safety valve behind which one sequential sweep finishes
  // exactly.
  //===------------------------------------------------------------===//
  while (!Conflicts.empty()) {
    if (SO.Governor && !SO.Governor->checkpoint())
      break; // over budget mid-repair: colors stay partial, caller discards
    if (Rounds.size() > SO.MaxRounds) {
      Timer SweepTimer;
      SweepTimer.start();
      Worker &W = Workers[0];
      for (size_t I = 0; I != S; ++I) {
        uint32_t Node = SelectOrder[I];
        bool Unused = false;
        Color[Node].store(
            mexColor(G, K, Rank, Color.data(), Node, uint32_t(I), 0, Unused,
                     W),
            std::memory_order_relaxed);
      }
      SweepTimer.stop();
      Rounds.push_back({uint32_t(S), uint32_t(S), 0, SweepTimer.seconds()});
      break;
    }

    Timer RepairTimer;
    RepairTimer.start();
    const uint32_t Recolored = uint32_t(Conflicts.size());
    std::vector<uint32_t> Repair;
    Repair.swap(Conflicts);

    parallelBatches(Repair.size(), Threads, [&](unsigned B, size_t Lo,
                                                size_t Hi) {
      Worker &W = Workers[B];
      for (size_t X = Lo; X != Hi; ++X) {
        uint32_t I = Repair[X];
        uint32_t Node = SelectOrder[I];
        bool Unused = false;
        Color[Node].store(
            mexColor(G, K, Rank, Color.data(), Node, I, 0, Unused, W),
            std::memory_order_relaxed);
      }
    });

    parallelBatches(Repair.size(), Threads, [&](unsigned B, size_t Lo,
                                                size_t Hi) {
      Worker &W = Workers[B];
      for (size_t X = Lo; X != Hi; ++X) {
        uint32_t I = Repair[X];
        if (!Touched[I].exchange(1, std::memory_order_relaxed))
          W.Out.push_back(I);
        for (uint32_t M : G.neighbors(SelectOrder[I])) {
          uint32_t RM = Rank[M];
          if (RM != NoRank && RM > I &&
              !Touched[RM].exchange(1, std::memory_order_relaxed))
            W.Out.push_back(RM);
        }
      }
    });
    gatherOuts(Candidates);
    std::sort(Candidates.begin(), Candidates.end());
    for (uint32_t I : Candidates)
      Touched[I].store(0, std::memory_order_relaxed);

    detect(Candidates);
    RepairTimer.stop();
    Rounds.push_back({Recolored, uint32_t(Candidates.size()),
                      uint32_t(Conflicts.size()), RepairTimer.seconds()});
  }

  for (size_t I = 0; I != S; ++I) {
    uint32_t Node = SelectOrder[I];
    ColorOf[Node] = Color[Node].load(std::memory_order_relaxed);
  }

#ifndef NDEBUG
  // The fixpoint property IS the byte-identity guarantee; re-assert it
  // from scratch in debug builds. A budget trip legitimately abandons
  // the fixpoint — the partial coloring is discarded by the caller.
  assert((SO.Governor && SO.Governor->exhausted()) ||
         (findSelectConflicts(G, K, SelectOrder, ColorOf).empty() &&
          "parallel select did not reach the sequential fixpoint"));
#endif

  if (trace::enabled()) {
    // Per-round shape under "sched": round counts and conflict totals
    // vary with thread scheduling (like wall time), so normalizedLog
    // omits them and golden/determinism comparisons stay exact.
    for (size_t R = 0; R != Rounds.size(); ++R)
      trace::instant("SelectRound", "sched",
                     "round=" + std::to_string(R) +
                         ";colored=" + std::to_string(Rounds[R].Colored) +
                         ";checked=" + std::to_string(Rounds[R].Checked) +
                         ";conflicts=" + std::to_string(Rounds[R].Conflicts));
  }
}
