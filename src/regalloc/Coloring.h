//===- regalloc/Coloring.h - Simplify/select heuristics --------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three coloring heuristics the paper discusses, over an abstract
/// interference graph:
///
///  * Chaitin  — pessimistic: when every remaining node has degree >= k,
///    the minimum cost/degree node is removed and *marked spilled*; it
///    never reaches the select phase [Chai 82].
///  * Briggs   — optimistic (the paper's contribution): the stuck node is
///    chosen exactly as Chaitin would (Section 2.3's refinement) but is
///    pushed on the stack anyway; the spill decision is deferred to
///    select, which may still find it a color because neighbors were
///    given duplicate colors or were themselves spilled (Section 2.2).
///  * MatulaBeck — pure smallest-last ordering [MaBe 81]: always remove
///    a lowest-degree node, never consult spill costs. Included as the
///    ablation the paper argues against in Section 2.3 ("arbitrary
///    allocations — possibly terrible allocations").
///
/// Chaitin and Briggs share one simplify implementation, so their
/// removal sequences are identical — which is what makes the paper's
/// guarantee hold: Briggs spills a subset of the nodes Chaitin spills.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_COLORING_H
#define RA_REGALLOC_COLORING_H

#include "regalloc/InterferenceGraph.h"

#include <cstdint>
#include <vector>

namespace ra {

class Budget;

/// Which simplify/select policy to run.
enum class Heuristic : uint8_t { Chaitin, Briggs, MatulaBeck };

/// Printable heuristic name ("chaitin", "briggs", "matula-beck").
const char *heuristicName(Heuristic H);

/// Controls for the speculate-and-repair parallel Select phase
/// (ParallelSelect.cpp). The parallel path reproduces the sequential
/// greedy coloring *byte-identically* at any thread count — sequential
/// Select is the unique fixpoint of "every node holds the lowest color
/// unused by its earlier-ranked colored neighbors", and the repair
/// rounds converge to exactly that fixpoint — so these knobs only move
/// wall-clock time and scheduling-dependent round counts, never results.
struct SelectOptions {
  /// Off by default: the sequential loop in colorGraph stays the oracle.
  bool Parallel = false;

  /// Worker threads for the speculative rounds; 0 = one per hardware
  /// thread (ThreadPool::resolveJobs).
  unsigned Threads = 0;

  /// Graphs whose select stack is smaller than this many nodes keep the
  /// sequential path even when Parallel is set — below it, thread spawn
  /// outweighs the work.
  unsigned MinNodes = 2048;

  /// Safety valve on the repair loop. Convergence is guaranteed in at
  /// most stack-size rounds (the minimum-rank wrong node is fixed every
  /// round); in practice a handful suffice. If this cap is ever hit, one
  /// sequential sweep in rank order finishes the job exactly.
  unsigned MaxRounds = 32;

  /// Test hook: speculation chunk size in nodes. 0 (the default) carves
  /// one contiguous chunk per thread; tests set small sizes to force
  /// many cross-chunk boundaries (and thus conflicts) on small graphs.
  unsigned ChunkSize = 0;

  /// Resource-governance token (support/Budget.h), or null for the
  /// ungoverned default. Simplify polls it per node removal, sequential
  /// select per node, and the parallel engine per repair round; a trip
  /// abandons the phase mid-flight, leaving the ColoringResult partial —
  /// callers that govern must check the token before trusting a result.
  Budget *Governor = nullptr;
};

/// What one speculate/detect/repair round of the parallel Select did.
/// Counts and timings are scheduling-dependent (they vary with thread
/// count and interleaving, like wall time) — only the resulting coloring
/// is deterministic. Observability surfaces them under the trace
/// "sched" category, which normalizedLog drops by design.
struct SelectRound {
  uint32_t Colored = 0;   ///< Nodes (re)colored this round.
  uint32_t Checked = 0;   ///< Candidate nodes examined by detection.
  uint32_t Conflicts = 0; ///< Nodes found wrong, to repair next round.
  double Seconds = 0;     ///< Wall time of this round.
};

/// Outcome of one simplify+select run over a graph.
struct ColoringResult {
  /// Color per node in [0, K), or -1 for spilled/uncolored nodes.
  std::vector<int32_t> ColorOf;

  /// Nodes that must be spilled, in decision order (simplify order for
  /// Chaitin, select order for Briggs/MatulaBeck).
  std::vector<uint32_t> Spilled;

  /// Simplify removal order, bottom of the coloring stack first. For
  /// Chaitin, spilled nodes do not appear here.
  std::vector<uint32_t> RemovalOrder;

  /// Sum of SpillCost over Spilled (the paper's "spill cost" metric).
  double SpilledCost = 0;

  /// Number of distinct colors actually used.
  unsigned NumColorsUsed = 0;

  /// Wall-clock seconds in the two phases (for Figure 7).
  double SimplifySeconds = 0, SelectSeconds = 0;

  /// True when select ran the parallel speculate-and-repair engine
  /// (coloring is still byte-identical to the sequential path).
  bool ParallelSelect = false;

  /// Per-round telemetry when ParallelSelect; empty otherwise. The first
  /// entry is the speculation round, the rest are repair rounds.
  std::vector<SelectRound> SelectRounds;

  bool success() const { return Spilled.empty(); }
};

/// Runs heuristic \p H on \p G with \p K colors. Requires K >= 1.
/// Ties in the cost/degree spill metric break toward the lowest node id
/// (the paper's footnote 4: "often something as trivial as a symbol
/// table index"), consistently across heuristics.
/// \p SO selects the Select-phase engine; the default keeps the
/// sequential path, and the parallel engine produces the same result.
ColoringResult colorGraph(const InterferenceGraph &G, unsigned K,
                          Heuristic H, const SelectOptions &SO = {});

/// Checks that \p R is a valid (partial) coloring of \p G: no two
/// adjacent nodes share a color and all colors are < \p K.
bool isValidColoring(const InterferenceGraph &G, unsigned K,
                     const ColoringResult &R);

} // namespace ra

#endif // RA_REGALLOC_COLORING_H
