//===- regalloc/Coloring.h - Simplify/select heuristics --------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three coloring heuristics the paper discusses, over an abstract
/// interference graph:
///
///  * Chaitin  — pessimistic: when every remaining node has degree >= k,
///    the minimum cost/degree node is removed and *marked spilled*; it
///    never reaches the select phase [Chai 82].
///  * Briggs   — optimistic (the paper's contribution): the stuck node is
///    chosen exactly as Chaitin would (Section 2.3's refinement) but is
///    pushed on the stack anyway; the spill decision is deferred to
///    select, which may still find it a color because neighbors were
///    given duplicate colors or were themselves spilled (Section 2.2).
///  * MatulaBeck — pure smallest-last ordering [MaBe 81]: always remove
///    a lowest-degree node, never consult spill costs. Included as the
///    ablation the paper argues against in Section 2.3 ("arbitrary
///    allocations — possibly terrible allocations").
///
/// Chaitin and Briggs share one simplify implementation, so their
/// removal sequences are identical — which is what makes the paper's
/// guarantee hold: Briggs spills a subset of the nodes Chaitin spills.
///
//===----------------------------------------------------------------------===//

#ifndef RA_REGALLOC_COLORING_H
#define RA_REGALLOC_COLORING_H

#include "regalloc/InterferenceGraph.h"

#include <cstdint>
#include <vector>

namespace ra {

/// Which simplify/select policy to run.
enum class Heuristic : uint8_t { Chaitin, Briggs, MatulaBeck };

/// Printable heuristic name ("chaitin", "briggs", "matula-beck").
const char *heuristicName(Heuristic H);

/// Outcome of one simplify+select run over a graph.
struct ColoringResult {
  /// Color per node in [0, K), or -1 for spilled/uncolored nodes.
  std::vector<int32_t> ColorOf;

  /// Nodes that must be spilled, in decision order (simplify order for
  /// Chaitin, select order for Briggs/MatulaBeck).
  std::vector<uint32_t> Spilled;

  /// Simplify removal order, bottom of the coloring stack first. For
  /// Chaitin, spilled nodes do not appear here.
  std::vector<uint32_t> RemovalOrder;

  /// Sum of SpillCost over Spilled (the paper's "spill cost" metric).
  double SpilledCost = 0;

  /// Number of distinct colors actually used.
  unsigned NumColorsUsed = 0;

  /// Wall-clock seconds in the two phases (for Figure 7).
  double SimplifySeconds = 0, SelectSeconds = 0;

  bool success() const { return Spilled.empty(); }
};

/// Runs heuristic \p H on \p G with \p K colors. Requires K >= 1.
/// Ties in the cost/degree spill metric break toward the lowest node id
/// (the paper's footnote 4: "often something as trivial as a symbol
/// table index"), consistently across heuristics.
ColoringResult colorGraph(const InterferenceGraph &G, unsigned K,
                          Heuristic H);

/// Checks that \p R is a valid (partial) coloring of \p G: no two
/// adjacent nodes share a color and all colors are < \p K.
bool isValidColoring(const InterferenceGraph &G, unsigned K,
                     const ColoringResult &R);

} // namespace ra

#endif // RA_REGALLOC_COLORING_H
