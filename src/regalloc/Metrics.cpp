//===- regalloc/Metrics.cpp - Per-range metrics table rendering -----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// CSV rendering of the per-live-range metrics table. The table itself
// is collected inside the Figure 4 loop (Allocator.cpp); this file only
// turns rows into deterministic text for `rac --metrics=out.csv` and
// the golden-file tests that pin the format.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include <cstdio>

using namespace ra;

const char *ra::rangeDecisionName(RangeMetrics::Decision D) {
  switch (D) {
  case RangeMetrics::Decision::Colored:   return "colored";
  case RangeMetrics::Decision::Spilled:   return "spilled";
  case RangeMetrics::Decision::Coalesced: return "coalesced";
  case RangeMetrics::Decision::Split:     return "split";
  }
  return "unknown";
}

namespace {

/// Deterministic short rendering of a double ("120", "1.5", "1e+06").
/// Infinite spill cost (spill temporaries) prints as "inf".
std::string num(double V) {
  if (V == InterferenceGraph::InfiniteCost)
    return "inf";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// CSV-quotes a field if it contains a comma or quote (range names are
/// normally plain identifiers; this keeps the dump well-formed anyway).
std::string field(const std::string &S) {
  if (S.find_first_of(",\"\n") == std::string::npos)
    return S;
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

} // namespace

std::string ra::metricsCsvHeader() {
  return "function,pass,name,class,degree,area,cost,cost_per_degree,"
         "loop_depth,decision,color,coalesced_into,select_rounds\n";
}

void ra::appendMetricsCsv(std::string &Out, const std::string &FunctionName,
                          const std::vector<RangeMetrics> &Metrics) {
  for (const RangeMetrics &R : Metrics) {
    Out += field(FunctionName);
    Out += "," + std::to_string(R.Pass);
    Out += "," + field(R.Name);
    Out += "," + std::string(regClassName(R.Class));
    Out += "," + std::to_string(R.Degree);
    Out += "," + num(R.Area);
    Out += "," + num(R.Cost);
    Out += "," + num(R.CostPerDegree);
    Out += "," + std::to_string(R.LoopDepth);
    Out += "," + std::string(rangeDecisionName(R.D));
    Out += "," + (R.Color >= 0 ? std::to_string(R.Color) : std::string("-"));
    Out += "," + field(R.CoalescedInto);
    // 0 = sequential Select; >0 = speculate/repair rounds the range's
    // class graph took (scheduling-dependent, so golden runs keep the
    // parallel engine off).
    Out += "," + std::to_string(R.SelectRounds);
    Out += "\n";
  }
}
