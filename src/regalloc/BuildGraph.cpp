//===- regalloc/BuildGraph.cpp - Interference graph construction ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/BuildGraph.h"

#include "support/Budget.h"
#include "support/Trace.h"

using namespace ra;

namespace {

/// Walks every block backward from live-out, invoking
/// \p AddInterference(Def, Live) for each def against each live range
/// live just after it (excluding a Copy's source). Polls \p Gov once
/// per block and stops the walk when the budget trips.
template <typename CallableT>
void forEachInterference(const Function &F, const Liveness &LV,
                         CallableT AddInterference, Budget *Gov = nullptr) {
  BitVector LiveNow;
  for (const BasicBlock &B : F.blocks()) {
    if (Gov && !Gov->checkpoint())
      return;
    LiveNow = LV.liveOut(B.Id);
    for (auto It = B.Insts.rbegin(), E = B.Insts.rend(); It != E; ++It) {
      const Instruction &I = *It;
      if (I.hasDef()) {
        VRegId D = I.defReg();
        // For a copy "d = s", d and s may share a register: exclude s.
        VRegId CopySrc = I.isCopy() ? I.Ops[1].Reg : InvalidVReg;
        LiveNow.forEachSetBit([&](unsigned L) {
          if (L != D && L != CopySrc)
            AddInterference(D, VRegId(L));
        });
        LiveNow.reset(D);
      }
      I.forEachUse([&](VRegId U) { LiveNow.set(U); });
    }
  }
}

} // namespace

std::array<ClassGraph, NumRegClasses>
ra::buildInterferenceGraphs(const Function &F, const Liveness &LV,
                            Budget *Gov) {
  RA_TRACE_SPAN("BuildGraph", "regalloc");
  std::array<ClassGraph, NumRegClasses> Out;

  // Dense node numbering per class, in ascending vreg order so node ids
  // follow live-range creation order (deterministic tie-breaking).
  for (unsigned C = 0; C < NumRegClasses; ++C) {
    Out[C].Class = static_cast<RegClass>(C);
    Out[C].VRegToNode.assign(F.numVRegs(), ~0u);
  }
  for (VRegId R = 0; R < F.numVRegs(); ++R) {
    ClassGraph &CG = Out[static_cast<unsigned>(F.regClass(R))];
    CG.VRegToNode[R] = CG.NodeToVReg.size();
    CG.NodeToVReg.push_back(R);
  }
  for (unsigned C = 0; C < NumRegClasses; ++C) {
    ClassGraph &CG = Out[C];
    CG.Graph.reset(CG.NodeToVReg.size());
    for (unsigned N = 0; N < CG.NodeToVReg.size(); ++N) {
      const VRegInfo &Info = F.vreg(CG.NodeToVReg[N]);
      CG.Graph.node(N).ExternalId = CG.NodeToVReg[N];
      CG.Graph.node(N).Name = Info.Name;
      CG.Graph.node(N).NoSpill = Info.IsSpillTemp;
    }
  }

  forEachInterference(
      F, LV,
      [&](VRegId D, VRegId L) {
        if (F.regClass(D) != F.regClass(L))
          return; // disjoint files never compete for a register
        ClassGraph &CG = Out[static_cast<unsigned>(F.regClass(D))];
        CG.Graph.addEdge(CG.VRegToNode[D], CG.VRegToNode[L]);
      },
      Gov);
  // Pack adjacency into CSR here, once, so the graphs are ready to be
  // colored concurrently (the lazy build in neighbors() must not race).
  for (ClassGraph &CG : Out)
    CG.Graph.finalize();
  return Out;
}

void ra::setNodeCosts(const Function &F, const std::vector<double> &Costs,
                      ClassGraph &CG) {
  assert(Costs.size() == F.numVRegs() && "cost table size mismatch");
  (void)F;
  for (unsigned N = 0; N < CG.Graph.numNodes(); ++N)
    CG.Graph.node(N).SpillCost = Costs[CG.NodeToVReg[N]];
}

TriangularBitMatrix ra::buildInterferenceMatrix(const Function &F,
                                                const Liveness &LV) {
  TriangularBitMatrix M(F.numVRegs());
  forEachInterference(F, LV, [&](VRegId D, VRegId L) {
    if (F.regClass(D) == F.regClass(L))
      M.set(D, L);
  });
  return M;
}
