//===- regalloc/SpillCost.cpp - Loop-weighted spill estimates -------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillCost.h"

#include "regalloc/InterferenceGraph.h"
#include "support/Trace.h"

using namespace ra;

double ra::loopDepthWeight(unsigned Depth) {
  double W = 1;
  for (unsigned I = 0; I < Depth && I < 12; ++I)
    W *= 10;
  return W;
}

std::vector<double> ra::computeSpillCosts(const Function &F,
                                          const LoopInfo &LI,
                                          const CostModel &CM) {
  RA_TRACE_SPAN("SpillCost", "regalloc");
  std::vector<double> Cost(F.numVRegs(), 0);
  for (const BasicBlock &B : F.blocks()) {
    double W = loopDepthWeight(LI.depth(B.Id));
    for (const Instruction &I : B.Insts) {
      I.forEachUse([&](VRegId R) { Cost[R] += CM.spillLoadCost() * W; });
      if (I.hasDef())
        Cost[I.defReg()] += CM.spillStoreCost() * W;
    }
  }
  for (VRegId R = 0; R < F.numVRegs(); ++R)
    if (F.vreg(R).IsSpillTemp)
      Cost[R] = InterferenceGraph::InfiniteCost;
  return Cost;
}
