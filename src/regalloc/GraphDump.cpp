//===- regalloc/GraphDump.cpp - Graphviz output ---------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "regalloc/GraphDump.h"

#include <cstdio>

using namespace ra;

std::string ra::dumpGraphviz(const InterferenceGraph &G,
                             const ColoringResult *Result,
                             const std::string &Name) {
  // A small qualitative palette; colors repeat past eight registers.
  static const char *const Palette[] = {
      "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3",
      "#a6d854", "#ffd92f", "#e5c494", "#b3b3b3",
  };
  constexpr unsigned PaletteSize = sizeof(Palette) / sizeof(Palette[0]);

  std::string Out = "graph \"" + Name + "\" {\n";
  Out += "  node [style=filled, fontname=\"monospace\"];\n";
  for (unsigned N = 0; N < G.numNodes(); ++N) {
    const IGNode &Node = G.node(N);
    std::string Label = Node.Name.empty() ? "n" + std::to_string(N)
                                          : Node.Name;
    char Buf[256];
    if (Result && N < Result->ColorOf.size()) {
      int32_t C = Result->ColorOf[N];
      if (C >= 0) {
        std::snprintf(Buf, sizeof(Buf),
                      "  n%u [label=\"%s\\nr%d\", fillcolor=\"%s\"];\n",
                      N, Label.c_str(), C,
                      Palette[unsigned(C) % PaletteSize]);
      } else {
        std::snprintf(Buf, sizeof(Buf),
                      "  n%u [label=\"%s\\nspilled\", shape=box, "
                      "fillcolor=\"#dddddd\"];\n",
                      N, Label.c_str());
      }
    } else {
      std::snprintf(Buf, sizeof(Buf),
                    "  n%u [label=\"%s\\ncost %.0f\", "
                    "fillcolor=\"white\"];\n",
                    N, Label.c_str(), Node.SpillCost);
    }
    Out += Buf;
  }
  for (unsigned N = 0; N < G.numNodes(); ++N)
    for (uint32_t M : G.neighbors(N))
      if (M > N)
        Out += "  n" + std::to_string(N) + " -- n" + std::to_string(M) +
               ";\n";
  Out += "}\n";
  return Out;
}
