//===- sim/Simulator.h - Cycle-counting IR interpreter ---------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes IR functions against typed array memory, counting cycles
/// with the target cost model. Two modes:
///
///  * virtual  — registers are the vreg table itself (pre-allocation
///    golden runs);
///  * allocated — every register operand is mapped through an
///    AllocationResult onto the target's finite register files, and
///    spill slots become real memory.
///
/// Running the same program in both modes and comparing array memory and
/// return values validates an allocation end-to-end; comparing cycle
/// counts between two allocators yields the paper's dynamic columns.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SIM_SIMULATOR_H
#define RA_SIM_SIMULATOR_H

#include "ir/Module.h"
#include "regalloc/Allocator.h"
#include "target/CostModel.h"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

namespace ra {

/// Typed storage for every array in a module.
class MemoryImage {
public:
  /// Allocates zero-initialized storage shaped like \p M's arrays.
  explicit MemoryImage(const Module &M);

  std::vector<int64_t> &intArray(uint32_t Id);
  std::vector<double> &floatArray(uint32_t Id);
  const std::vector<int64_t> &intArray(uint32_t Id) const;
  const std::vector<double> &floatArray(uint32_t Id) const;

  /// Semantic equality of all array contents: floats compare by bit
  /// pattern — except that any NaN equals any NaN. Plain operator==
  /// would make two runs computing the identical NaN diverge (NaN !=
  /// NaN), while strict bitwise comparison is too strong the other way:
  /// with two NaN operands, x*y propagates whichever one the compiler's
  /// instruction scheduling happens to read first, so the payload/sign
  /// of a computed NaN is not a property a differential oracle (golden
  /// run vs allocated run) may rely on.
  bool operator==(const MemoryImage &Other) const {
    if (IntData != Other.IntData || FloatData.size() != Other.FloatData.size())
      return false;
    for (size_t A = 0; A < FloatData.size(); ++A) {
      const std::vector<double> &L = FloatData[A], &R = Other.FloatData[A];
      if (L.size() != R.size())
        return false;
      for (size_t I = 0; I < L.size(); ++I)
        if (!doubleSemanticallyEqual(L[I], R[I]))
          return false;
    }
    return true;
  }

  /// Bit-equal, or both NaN (of any payload/sign).
  static bool doubleSemanticallyEqual(double L, double R) {
    if (std::isnan(L) || std::isnan(R))
      return std::isnan(L) && std::isnan(R);
    uint64_t LB, RB;
    std::memcpy(&LB, &L, sizeof(double));
    std::memcpy(&RB, &R, sizeof(double));
    return LB == RB;
  }

private:
  // Indexed by array id; the unused class's vector stays empty.
  std::vector<std::vector<int64_t>> IntData;
  std::vector<std::vector<double>> FloatData;
};

/// Execution limits for one simulated run.
struct SimOptions {
  /// Instruction ceiling before the run traps (the hedge against
  /// allocation bugs that manifest as infinite loops). Exhausting it
  /// produces a structured DeadlineExceeded diagnostic in
  /// ExecutionResult::Diag, so harnesses (ralfuzz --max-instructions)
  /// can tell a hang apart from a wrong-answer trap and shrink hang
  /// reproducers like any other failure.
  uint64_t MaxInstructions = 1ull << 32;
};

/// Outcome of one simulated run.
struct ExecutionResult {
  bool Ok = false;
  std::string Error;             ///< Trap reason when !Ok.
  /// Structured twin of Error: InvalidInput for genuine program traps
  /// (division by zero, out-of-bounds access, ...), DeadlineExceeded
  /// when SimOptions::MaxInstructions ran out. Ok status on success.
  Status Diag;
  uint64_t Cycles = 0;           ///< Total cost-model cycles.
  uint64_t Instructions = 0;     ///< Instructions executed.
  uint64_t SpillCycles = 0;      ///< Cycles spent in spill.ld/spill.st.
  uint64_t SpillOps = 0;         ///< Spill instructions executed.
  /// Inter-piece register moves executed for split live ranges (each
  /// charged one Copy). The allocation's Pieces table implies a move
  /// wherever a value crosses into a piece holding a different
  /// register while live; the simulator performs them between
  /// instructions, as a hardware resolver (or a later rewrite pass)
  /// would.
  uint64_t SplitMoves = 0;
  bool HasIntReturn = false, HasFloatReturn = false;
  int64_t IntReturn = 0;
  double FloatReturn = 0;
};

/// Interprets functions of one module.
class Simulator {
public:
  Simulator(const Module &M, CostModel CM = CostModel::rtpc())
      : M(M), CM(CM) {}

  /// Runs \p F over virtual registers.
  ExecutionResult runVirtual(const Function &F, MemoryImage &Mem,
                             const SimOptions &SO = {}) const;

  /// Runs \p F with registers mapped through \p A onto physical files.
  /// \p A must come from allocating exactly this (rewritten) function.
  ExecutionResult runAllocated(const Function &F, const AllocationResult &A,
                               MemoryImage &Mem,
                               const SimOptions &SO = {}) const;

private:
  ExecutionResult run(const Function &F, MemoryImage &Mem,
                      const AllocationResult *A, const SimOptions &SO) const;

  const Module &M;
  CostModel CM;
};

} // namespace ra

#endif // RA_SIM_SIMULATOR_H
