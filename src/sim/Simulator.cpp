//===- sim/Simulator.cpp - Cycle-counting IR interpreter ------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "analysis/CFG.h"
#include "analysis/InstrNumbering.h"
#include "analysis/Liveness.h"
#include "linearscan/LiveInterval.h"

#include <cstring>

#include <cassert>
#include <cmath>
#include <utility>

using namespace ra;

MemoryImage::MemoryImage(const Module &M) {
  IntData.resize(M.numArrays());
  FloatData.resize(M.numArrays());
  for (uint32_t A = 0; A < M.numArrays(); ++A) {
    const ArrayInfo &AI = M.array(A);
    if (AI.Elem == RegClass::Int)
      IntData[A].assign(AI.Size, 0);
    else
      FloatData[A].assign(AI.Size, 0.0);
  }
}

std::vector<int64_t> &MemoryImage::intArray(uint32_t Id) {
  assert(Id < IntData.size() && "array id out of range");
  return IntData[Id];
}
std::vector<double> &MemoryImage::floatArray(uint32_t Id) {
  assert(Id < FloatData.size() && "array id out of range");
  return FloatData[Id];
}
const std::vector<int64_t> &MemoryImage::intArray(uint32_t Id) const {
  assert(Id < IntData.size() && "array id out of range");
  return IntData[Id];
}
const std::vector<double> &MemoryImage::floatArray(uint32_t Id) const {
  assert(Id < FloatData.size() && "array id out of range");
  return FloatData[Id];
}

ExecutionResult Simulator::runVirtual(const Function &F, MemoryImage &Mem,
                                      const SimOptions &SO) const {
  return run(F, Mem, nullptr, SO);
}

ExecutionResult Simulator::runAllocated(const Function &F,
                                        const AllocationResult &A,
                                        MemoryImage &Mem,
                                        const SimOptions &SO) const {
  assert(A.Success && "cannot execute a failed allocation");
  assert(A.ColorOf.size() == F.numVRegs() &&
         "allocation does not match this function");
  return run(F, Mem, &A, SO);
}

ExecutionResult Simulator::run(const Function &F, MemoryImage &Mem,
                               const AllocationResult *A,
                               const SimOptions &SO) const {
  ExecutionResult R;

  // Register files. Virtual mode sizes them by the vreg count; allocated
  // mode by the machine's files, with operands mapped through ColorOf.
  unsigned IntFile = A ? A->Machine.numRegs(RegClass::Int) : F.numVRegs();
  unsigned FltFile = A ? A->Machine.numRegs(RegClass::Float) : F.numVRegs();
  std::vector<int64_t> IntRegs(IntFile, 0);
  std::vector<double> FltRegs(FltFile, 0.0);
  std::vector<int64_t> IntSlots(F.numSpillSlots(), 0);
  std::vector<double> FltSlots(F.numSpillSlots(), 0.0);

  // Split-range state (empty unless the allocation carries per-slot
  // piece assignments). SpansOf holds each split range's piece table;
  // CurPiece tracks which piece the value last occupied along the
  // executed path; ExactLife holds the range's exact lifetime, so the
  // implicit boundary move fires only where the value is genuinely
  // live — at a post-hole resumption the defining instruction writes
  // the new register itself, and the old piece's register may already
  // belong to another value.
  struct Span {
    uint32_t From, To, Phys;
  };
  std::vector<std::vector<Span>> SpansOf;
  std::vector<int32_t> CurPiece;
  std::vector<VRegId> SplitRegs;
  std::vector<LiveInterval> ExactLife; // parallel to SplitRegs
  std::vector<uint32_t> FirstInst;     // block id -> first instr index
  if (A && !A->Pieces.empty()) {
    SpansOf.assign(F.numVRegs(), {});
    for (const PieceAssignment &P : A->Pieces)
      SpansOf[P.Reg].push_back({P.From, P.To, P.PhysReg});
    CurPiece.assign(F.numVRegs(), -1);
    CFG G = CFG::compute(F);
    Liveness LV = Liveness::compute(F, G);
    InstrNumbering Num = InstrNumbering::compute(F);
    LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
    for (VRegId V = 0; V < F.numVRegs(); ++V)
      if (!SpansOf[V].empty()) {
        SplitRegs.push_back(V);
        ExactLife.push_back(LI.interval(V));
      }
    FirstInst.assign(F.numBlocks(), 0);
    uint32_t N = 0;
    for (const BasicBlock &B : F.blocks()) {
      FirstInst[B.Id] = N;
      N += uint32_t(B.Insts.size());
    }
  }

  auto Loc = [&](VRegId V) -> unsigned {
    if (!A)
      return V;
    if (!SpansOf.empty() && !SpansOf[V].empty()) {
      assert(CurPiece[V] >= 0 && "split register accessed before any piece");
      return SpansOf[V][size_t(CurPiece[V])].Phys;
    }
    assert(A->ColorOf[V] >= 0 && "executing an unallocated register");
    return unsigned(A->ColorOf[V]);
  };

  // Applies the implicit moves at slot \p S: every split value whose
  // piece changes here while live is copied old register -> new, as a
  // parallel copy (sources snapshot first — two values may swap).
  std::vector<std::pair<uint32_t, uint32_t>> IntMoves, FltMoves;
  std::vector<int64_t> IntSnap;
  std::vector<double> FltSnap;
  auto PieceTransitions = [&](uint32_t S) {
    IntMoves.clear();
    FltMoves.clear();
    for (size_t K = 0; K < SplitRegs.size(); ++K) {
      VRegId V = SplitRegs[K];
      const std::vector<Span> &Sp = SpansOf[V];
      int32_t J = -1;
      for (size_t P = 0; P < Sp.size(); ++P)
        if (Sp[P].From <= S && S < Sp[P].To) {
          J = int32_t(P);
          break;
        }
      if (J < 0)
        continue;
      int32_t Old = CurPiece[V];
      CurPiece[V] = J;
      if (Old < 0 || Old == J ||
          Sp[size_t(Old)].Phys == Sp[size_t(J)].Phys ||
          !ExactLife[K].covers(S))
        continue;
      auto Mv = std::make_pair(Sp[size_t(Old)].Phys, Sp[size_t(J)].Phys);
      if (F.regClass(V) == RegClass::Int)
        IntMoves.push_back(Mv);
      else
        FltMoves.push_back(Mv);
    }
    if (IntMoves.empty() && FltMoves.empty())
      return;
    IntSnap.clear();
    FltSnap.clear();
    for (const auto &Mv : IntMoves)
      IntSnap.push_back(IntRegs[Mv.first]);
    for (const auto &Mv : FltMoves)
      FltSnap.push_back(FltRegs[Mv.first]);
    for (size_t K = 0; K < IntMoves.size(); ++K)
      IntRegs[IntMoves[K].second] = IntSnap[K];
    for (size_t K = 0; K < FltMoves.size(); ++K)
      FltRegs[FltMoves[K].second] = FltSnap[K];
    uint64_t N = IntMoves.size() + FltMoves.size();
    R.SplitMoves += N;
    R.Cycles += N * CM.cycles(Opcode::Copy);
  };
  auto IReg = [&](const Operand &O) -> int64_t & {
    return IntRegs[Loc(O.Reg)];
  };
  auto FReg = [&](const Operand &O) -> double & {
    return FltRegs[Loc(O.Reg)];
  };

  // Traps carry both the human-readable Error and a structured Diag so
  // harnesses can dispatch on the failure class without string matching.
  auto Trap = [&R](StatusCode C, const std::string &Msg) {
    R.Ok = false;
    R.Error = Msg;
    R.Diag = Status::error(C, Msg);
  };

  uint32_t Block = F.entry();
  size_t Idx = 0;
  while (true) {
    if (R.Instructions >= SO.MaxInstructions) {
      Trap(StatusCode::DeadlineExceeded,
           "instruction budget of " + std::to_string(SO.MaxInstructions) +
               " exhausted (possible infinite loop)");
      return R;
    }
    assert(Idx < F.block(Block).Insts.size() && "fell off a block");
    const Instruction &I = F.block(Block).Insts[Idx];
    if (!SplitRegs.empty())
      PieceTransitions((FirstInst[Block] + uint32_t(Idx)) * 2);
    ++R.Instructions;
    R.Cycles += CM.cycles(I.Op);
    ++Idx;

    switch (I.Op) {
    case Opcode::MovI:
      IReg(I.Ops[0]) = I.Ops[1].Imm;
      break;
    case Opcode::MovF:
      FReg(I.Ops[0]) = I.Ops[1].FImm;
      break;
    case Opcode::Copy:
      if (F.regClass(I.Ops[0].Reg) == RegClass::Int)
        IReg(I.Ops[0]) = IReg(I.Ops[1]);
      else
        FReg(I.Ops[0]) = FReg(I.Ops[1]);
      break;
    case Opcode::Add:
      IReg(I.Ops[0]) = IReg(I.Ops[1]) + IReg(I.Ops[2]);
      break;
    case Opcode::Sub:
      IReg(I.Ops[0]) = IReg(I.Ops[1]) - IReg(I.Ops[2]);
      break;
    case Opcode::Mul:
      IReg(I.Ops[0]) = IReg(I.Ops[1]) * IReg(I.Ops[2]);
      break;
    case Opcode::Div: {
      int64_t D = IReg(I.Ops[2]);
      if (D == 0) {
        Trap(StatusCode::InvalidInput, "integer division by zero");
        return R;
      }
      IReg(I.Ops[0]) = IReg(I.Ops[1]) / D;
      break;
    }
    case Opcode::Rem: {
      int64_t D = IReg(I.Ops[2]);
      if (D == 0) {
        Trap(StatusCode::InvalidInput, "integer remainder by zero");
        return R;
      }
      IReg(I.Ops[0]) = IReg(I.Ops[1]) % D;
      break;
    }
    case Opcode::AddI:
      IReg(I.Ops[0]) = IReg(I.Ops[1]) + I.Ops[2].Imm;
      break;
    case Opcode::MulI:
      IReg(I.Ops[0]) = IReg(I.Ops[1]) * I.Ops[2].Imm;
      break;
    case Opcode::FAdd:
      FReg(I.Ops[0]) = FReg(I.Ops[1]) + FReg(I.Ops[2]);
      break;
    case Opcode::FSub:
      FReg(I.Ops[0]) = FReg(I.Ops[1]) - FReg(I.Ops[2]);
      break;
    case Opcode::FMul:
      FReg(I.Ops[0]) = FReg(I.Ops[1]) * FReg(I.Ops[2]);
      break;
    case Opcode::FDiv:
      FReg(I.Ops[0]) = FReg(I.Ops[1]) / FReg(I.Ops[2]);
      break;
    case Opcode::FNeg:
      FReg(I.Ops[0]) = -FReg(I.Ops[1]);
      break;
    case Opcode::FAbs:
      FReg(I.Ops[0]) = std::fabs(FReg(I.Ops[1]));
      break;
    case Opcode::FSqrt: {
      double V = FReg(I.Ops[1]);
      if (V < 0) {
        Trap(StatusCode::InvalidInput, "square root of a negative value");
        return R;
      }
      FReg(I.Ops[0]) = std::sqrt(V);
      break;
    }
    case Opcode::IToF:
      FReg(I.Ops[0]) = double(IReg(I.Ops[1]));
      break;
    case Opcode::FToI:
      IReg(I.Ops[0]) = int64_t(FReg(I.Ops[1]));
      break;
    case Opcode::Load:
    case Opcode::FLoad: {
      uint32_t Arr = I.Ops[1].Array;
      int64_t Index = IReg(I.Ops[2]);
      if (Index < 0 || uint64_t(Index) >= M.array(Arr).Size) {
        Trap(StatusCode::InvalidInput,
             "load index out of bounds in @" + M.array(Arr).Name);
        return R;
      }
      if (I.Op == Opcode::Load)
        IReg(I.Ops[0]) = Mem.intArray(Arr)[Index];
      else
        FReg(I.Ops[0]) = Mem.floatArray(Arr)[Index];
      break;
    }
    case Opcode::Store:
    case Opcode::FStore: {
      uint32_t Arr = I.Ops[1].Array;
      int64_t Index = IReg(I.Ops[2]);
      if (Index < 0 || uint64_t(Index) >= M.array(Arr).Size) {
        Trap(StatusCode::InvalidInput,
             "store index out of bounds in @" + M.array(Arr).Name);
        return R;
      }
      if (I.Op == Opcode::Store)
        Mem.intArray(Arr)[Index] = IReg(I.Ops[0]);
      else
        Mem.floatArray(Arr)[Index] = FReg(I.Ops[0]);
      break;
    }
    case Opcode::SpillLd: {
      R.SpillCycles += CM.cycles(I.Op);
      ++R.SpillOps;
      unsigned Slot = unsigned(I.Ops[1].Imm);
      if (F.regClass(I.Ops[0].Reg) == RegClass::Int)
        IReg(I.Ops[0]) = IntSlots[Slot];
      else
        FReg(I.Ops[0]) = FltSlots[Slot];
      break;
    }
    case Opcode::SpillSt: {
      R.SpillCycles += CM.cycles(I.Op);
      ++R.SpillOps;
      unsigned Slot = unsigned(I.Ops[1].Imm);
      if (F.regClass(I.Ops[0].Reg) == RegClass::Int)
        IntSlots[Slot] = IReg(I.Ops[0]);
      else
        FltSlots[Slot] = FReg(I.Ops[0]);
      break;
    }
    case Opcode::Br: {
      bool Taken;
      if (F.regClass(I.Ops[0].Reg) == RegClass::Int)
        Taken = evalCmp(I.Cmp, IReg(I.Ops[0]), IReg(I.Ops[1]));
      else
        Taken = evalCmp(I.Cmp, FReg(I.Ops[0]), FReg(I.Ops[1]));
      Block = Taken ? I.Ops[2].Block : I.Ops[3].Block;
      Idx = 0;
      break;
    }
    case Opcode::Jmp:
      Block = I.Ops[0].Block;
      Idx = 0;
      break;
    case Opcode::Ret:
      if (I.Ops.size() == 1) {
        if (F.regClass(I.Ops[0].Reg) == RegClass::Int) {
          R.HasIntReturn = true;
          R.IntReturn = IReg(I.Ops[0]);
        } else {
          R.HasFloatReturn = true;
          R.FloatReturn = FReg(I.Ops[0]);
        }
      }
      R.Ok = true;
      return R;
    }
  }
}
