//===- target/MachineInfo.h - Register file description --------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine description for the allocator: how many registers each class
/// holds. The default models the paper's IBM RT/PC — sixteen general
/// purpose registers and eight floating-point registers in disjoint
/// files. The counts are configurable so the Figure 6 study can shrink
/// the integer file from 16 down to 8.
///
//===----------------------------------------------------------------------===//

#ifndef RA_TARGET_MACHINEINFO_H
#define RA_TARGET_MACHINEINFO_H

#include "ir/Opcode.h"

#include <cassert>

namespace ra {

/// Per-class register file sizes.
class MachineInfo {
public:
  MachineInfo(unsigned IntRegs, unsigned FltRegs) {
    assert(IntRegs >= 1 && FltRegs >= 1 && "empty register file");
    Regs[unsigned(RegClass::Int)] = IntRegs;
    Regs[unsigned(RegClass::Float)] = FltRegs;
  }

  /// The paper's target: IBM RT/PC, 16 integer / 8 floating-point.
  static MachineInfo rtpc() { return MachineInfo(16, 8); }

  /// Number of allocatable registers in class \p RC.
  unsigned numRegs(RegClass RC) const {
    return Regs[static_cast<unsigned>(RC)];
  }

  /// Copy with the integer file resized (Figure 6's shrinking study).
  MachineInfo withIntRegs(unsigned K) const {
    return MachineInfo(K, Regs[unsigned(RegClass::Float)]);
  }

  /// Copy with the floating-point file resized.
  MachineInfo withFloatRegs(unsigned K) const {
    return MachineInfo(Regs[unsigned(RegClass::Int)], K);
  }

private:
  unsigned Regs[NumRegClasses];
};

} // namespace ra

#endif // RA_TARGET_MACHINEINFO_H
