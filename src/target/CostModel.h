//===- target/CostModel.h - Per-opcode cycle costs -------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle cost per opcode, modeled after the IBM RT/PC: cheap
/// single-cycle integer ALU, a floating-point coprocessor whose
/// operations cost an order of magnitude more, and 4-byte fixed-width
/// instructions. The FP/integer ratio is what keeps the paper's dynamic
/// improvements small on FP-dominated codes (spill traffic is noise
/// next to the FP work) and visible on the integer quicksort.
///
/// Spill loads/stores have their own opcodes so the cost model and the
/// spill-cost estimator (Section 2.3's cost/degree metric) price spill
/// traffic identically.
///
//===----------------------------------------------------------------------===//

#ifndef RA_TARGET_COSTMODEL_H
#define RA_TARGET_COSTMODEL_H

#include "ir/Opcode.h"

namespace ra {

/// Per-opcode cycle costs plus instruction encoding width.
class CostModel {
public:
  /// The paper's target: RT/PC-like latencies with an attached FP
  /// coprocessor (FP ops cost >> integer ops).
  static CostModel rtpc() { return CostModel(); }

  /// Cycles to execute one instruction with opcode \p Op.
  unsigned cycles(Opcode Op) const {
    switch (Op) {
    case Opcode::MovI:   return 1;
    case Opcode::MovF:   return 2;
    case Opcode::Copy:   return 1;
    case Opcode::Add:    return 1;
    case Opcode::Sub:    return 1;
    case Opcode::Mul:    return 5;
    case Opcode::Div:    return 19;
    case Opcode::Rem:    return 19;
    case Opcode::AddI:   return 1;
    case Opcode::MulI:   return 5;
    case Opcode::FAdd:   return 11;
    case Opcode::FSub:   return 11;
    case Opcode::FMul:   return 13;
    case Opcode::FDiv:   return 57;
    case Opcode::FNeg:   return 4;
    case Opcode::FAbs:   return 4;
    case Opcode::FSqrt:  return 121;
    case Opcode::IToF:   return 8;
    case Opcode::FToI:   return 8;
    case Opcode::Load:   return 2;
    case Opcode::FLoad:  return 3;
    case Opcode::Store:  return 2;
    case Opcode::FStore: return 3;
    case Opcode::SpillLd: return 2;
    case Opcode::SpillSt: return 2;
    case Opcode::Br:     return 2;
    case Opcode::Jmp:    return 1;
    case Opcode::Ret:    return 2;
    }
    return 1;
  }

  /// Cost of one spill reload — the "load" term of Chaitin's estimate.
  double spillLoadCost() const { return cycles(Opcode::SpillLd); }

  /// Cost of one spill store — the "store" term of Chaitin's estimate.
  double spillStoreCost() const { return cycles(Opcode::SpillSt); }

  /// Fixed instruction encoding width (RISC, 4 bytes) used for the
  /// paper's object-size columns.
  unsigned bytesPerInstruction() const { return 4; }
};

} // namespace ra

#endif // RA_TARGET_COSTMODEL_H
