//===- service/ContentHash.h - Canonical allocation cache keys -*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the content-addressed key under which one function's
/// allocation is memoized, plus the 64-bit hash used for telemetry and
/// sharding.
///
/// The key is the *canonical printed form* of the allocation input —
/// the module's array table (IRPrinter's `array` lines, so array-id
/// order, names, element classes and sizes all participate) followed by
/// the function's printed body — concatenated with a rendering of every
/// AllocatorConfig field that can change the allocation result.
///
/// Deliberately NOT semantic: two textually different but semantically
/// identical modules (renamed registers, reordered blocks, a renamed
/// function) produce different keys and therefore MISS. Rename
/// insensitivity would require hashing a normal form the pipeline never
/// computes; the build-farm workload this cache serves re-submits
/// byte-identical sources, where the printed form is exactly stable.
/// ServiceTest pins this contract in both directions.
///
/// Config fields that are pure performance knobs — Jobs,
/// ParallelClasses, ParallelGraph* — are excluded: they are proven
/// byte-identical elsewhere (1-vs-N determinism tests, the
/// briggs-parallel fuzz leg), so keying on them would only split the
/// cache. Deadline and memory budgets are excluded too: only Converged
/// results are ever inserted (AllocationService), and a governed run
/// that converges is byte-identical to the ungoverned run by
/// construction — budget polling can abort work, never steer it.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SERVICE_CONTENTHASH_H
#define RA_SERVICE_CONTENTHASH_H

#include "regalloc/Allocator.h"

#include <cstdint>
#include <string>

namespace ra {

class Function;
class Module;

namespace service {

/// 64-bit FNV-1a over \p Len bytes starting at \p Data.
uint64_t fnv1a64(const void *Data, size_t Len,
                 uint64_t Seed = 0xCBF29CE484222325ull);

/// Renders every result-affecting AllocatorConfig field (plus the
/// optimizer toggle) as one deterministic "k=v" line.
std::string canonicalConfigText(const AllocatorConfig &C, bool Optimize);

/// The full cache key for allocating \p F inside \p M under \p C:
/// canonical config text + array-table text + printed function.
std::string canonicalFunctionKey(const Module &M, const Function &F,
                                 const AllocatorConfig &C, bool Optimize);

/// fnv1a64 over a canonical key — the short form for telemetry.
uint64_t contentHash(const std::string &CanonicalKey);

/// True when results under \p C may be served from / inserted into the
/// cache at all. Fault injection is test-only deliberate breakage, so
/// it always bypasses the cache.
bool cacheableConfig(const AllocatorConfig &C);

} // namespace service
} // namespace ra

#endif // RA_SERVICE_CONTENTHASH_H
