//===- service/ContentHash.cpp - Canonical allocation cache keys ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/ContentHash.h"

#include "ir/IRPrinter.h"
#include "ir/Module.h"

using namespace ra;

uint64_t ra::service::fnv1a64(const void *Data, size_t Len, uint64_t Seed) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001B3ull;
  }
  return H;
}

std::string ra::service::canonicalConfigText(const AllocatorConfig &C,
                                             bool Optimize) {
  // Every field here changes what allocateRegisters produces; anything
  // not listed is a performance knob proven byte-identical elsewhere
  // (see the header comment for the exclusion argument).
  std::string Out = "config";
  Out += " backend=";
  Out += backendName(C.B);
  Out += " heuristic=";
  Out += heuristicName(C.H);
  Out += " int=" + std::to_string(C.Machine.numRegs(RegClass::Int));
  Out += " flt=" + std::to_string(C.Machine.numRegs(RegClass::Float));
  Out += " maxpasses=" + std::to_string(C.MaxPasses);
  Out += " coalesce=" + std::to_string(C.Coalesce ? 1 : 0);
  Out += " aggressive=";
  Out += C.Coalescing == CoalescePolicy::Aggressive ? "1" : "0";
  Out += " remat=" + std::to_string(C.Rematerialize ? 1 : 0);
  Out += " split=" + std::to_string(C.SplitIntervals ? 1 : 0);
  Out += " audit=" + std::to_string(C.Audit ? 1 : 0);
  Out += " metrics=" + std::to_string(C.CollectMetrics ? 1 : 0);
  Out += " opt=" + std::to_string(Optimize ? 1 : 0);
  Out += "\n";
  return Out;
}

std::string ra::service::canonicalFunctionKey(const Module &M,
                                              const Function &F,
                                              const AllocatorConfig &C,
                                              bool Optimize) {
  std::string Key = canonicalConfigText(C, Optimize);
  // The array table participates because instructions reference arrays
  // by *id*: substituting a cached function clone into a module whose
  // array table differs in order, element class, or size would silently
  // retarget its memory operations. Rendering the table exactly as
  // IRPrinter's module header does pins the whole id -> symbol mapping.
  for (unsigned A = 0; A < M.numArrays(); ++A) {
    const ArrayInfo &AI = M.array(A);
    Key += "array @" + AI.Name + " : " + regClassName(AI.Elem) + "[" +
           std::to_string(AI.Size) + "]\n";
  }
  Key += printFunction(M, F);
  return Key;
}

uint64_t ra::service::contentHash(const std::string &CanonicalKey) {
  return fnv1a64(CanonicalKey.data(), CanonicalKey.size());
}

bool ra::service::cacheableConfig(const AllocatorConfig &C) {
  return !C.FaultInject.any();
}
