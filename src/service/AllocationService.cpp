//===- service/AllocationService.cpp - Allocation as a service ------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/AllocationService.h"

#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "service/ContentHash.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <future>

using namespace ra;
using namespace ra::service;

namespace {

/// Converts a worker exception into a Failed result for just that
/// function — the same contract allocateModule keeps, so routing a
/// module through the service never changes failure isolation.
template <typename GetT>
AllocationResult collectOne(const Function &F, const AllocatorConfig &C,
                            GetT Get) {
  try {
    return Get();
  } catch (const std::exception &E) {
    AllocationResult R;
    R.Machine = C.Machine;
    R.Diag = Status::error(StatusCode::WorkerError, E.what())
                 .addContext("allocating @" + F.name());
    return R;
  } catch (...) {
    AllocationResult R;
    R.Machine = C.Machine;
    R.Diag = Status::error(StatusCode::WorkerError,
                           "worker threw a non-standard exception")
                 .addContext("allocating @" + F.name());
    return R;
  }
}

/// Optimize-then-allocate for one cache miss. Optimization happens
/// inside the work unit (not up front as the old rac driver did) so a
/// hit skips it too; functions are independent, so the result is
/// identical either way.
AllocationResult allocateMiss(Function &F, const AllocatorConfig &C,
                              bool Optimize) {
  if (Optimize)
    optimizeFunction(F);
  return allocateRegisters(F, C);
}

} // namespace

AllocationService::AllocationService(const ServiceConfig &SC)
    : SC(SC), Cache(SC.CacheEnabled ? SC.CacheMaxEntries : 0,
                    SC.CacheEnabled ? SC.CacheMaxBytes : 0),
      Pool(ThreadPool::resolveJobs(SC.Workers)) {}

ServiceReply AllocationService::run(const ServiceRequest &R) {
  Requests.fetch_add(1, std::memory_order_relaxed);
  ServiceReply Reply;
  Reply.M = std::make_unique<Module>();

  std::string Error;
  if (!parseModule(R.Source, *Reply.M, Error)) {
    Reply.S = Status::error(StatusCode::ParseError, Error);
    Reply.M.reset();
    return Reply;
  }

  auto Errors = verifyModule(*Reply.M);
  if (!Errors.empty()) {
    // Shaped exactly as the rac CLI has always reported it.
    Reply.S = Status::error(StatusCode::VerifyError, Errors.front());
    if (Errors.size() > 1)
      Reply.S.addContext(std::to_string(Errors.size()) +
                         " verifier errors, first");
    Reply.M.reset();
    return Reply;
  }

  allocateParsed(*Reply.M, R.Alloc, R.Optimize, R.UseCache, Reply.MA,
                 Reply.CacheHit);
  return Reply;
}

void AllocationService::allocateParsed(Module &M, const AllocatorConfig &C,
                                       bool Optimize, bool UseCache,
                                       ModuleAllocationResult &MA,
                                       std::vector<uint8_t> &CacheHit) {
  const unsigned N = M.numFunctions();
  MA.Functions.clear();
  MA.Functions.resize(N);
  CacheHit.assign(N, 0);

  Timer Wall;
  Wall.start();
  RA_TRACE_SPAN("ServiceRequest", "service", [&] {
    return "functions=" + std::to_string(N);
  });

  const bool Cacheable =
      SC.CacheEnabled && UseCache && cacheableConfig(C);

  // Phase 1: cache probe. Hit = substitute the memoized rewritten
  // function (deep copy) and result; the Build->Select work — ~97% of
  // allocation time — never runs.
  std::vector<std::string> Keys(N);
  std::vector<unsigned> Misses;
  Misses.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    if (Cacheable) {
      Keys[I] = canonicalFunctionKey(M, M.function(I), C, Optimize);
      AllocCache::Value V;
      if (Cache.lookup(Keys[I], V)) {
        M.function(I) = std::move(V.F);
        MA.Functions[I] = std::move(V.A);
        CacheHit[I] = 1;
        continue;
      }
    }
    Misses.push_back(I);
  }

  // Phase 2: allocate the misses, sharding across the service pool.
  // Collection stays in function order, so output is bit-identical at
  // any pool width (the same argument allocateModule makes).
  if (!Misses.empty()) {
    AllocatorConfig WorkerC = C;
    const unsigned Jobs = ThreadPool::resolveJobs(C.Jobs);
    const unsigned Width = std::min<unsigned>(Pool.numThreads(), Jobs);
    if (Width <= 1 || Misses.size() <= 1) {
      for (unsigned I : Misses) {
        Function &F = M.function(I);
        MA.Functions[I] = collectOne(
            F, C, [&] { return allocateMiss(F, WorkerC, Optimize); });
      }
    } else {
      // Divide the intra-graph parallel-Select thread budget between
      // concurrently allocating functions instead of oversubscribing —
      // same tuning allocateModule applies, results identical at any
      // split.
      if (C.ParallelGraph && C.ParallelGraphJobs == 0)
        WorkerC.ParallelGraphJobs =
            std::max(1u, ThreadPool::resolveJobs(0) / Width);
      std::vector<std::future<AllocationResult>> Pending;
      Pending.reserve(Misses.size());
      for (unsigned I : Misses) {
        Function &F = M.function(I);
        Pending.push_back(Pool.submit(
            [&F, &WorkerC, Optimize] {
              return allocateMiss(F, WorkerC, Optimize);
            }));
      }
      for (size_t J = 0; J < Misses.size(); ++J)
        MA.Functions[Misses[J]] = collectOne(
            M.function(Misses[J]), C, [&] { return Pending[J].get(); });
    }
  }

  // Phase 3: memoize fresh Converged results. Degraded and Failed
  // outcomes are wall-clock-dependent (or broken) and never cached.
  if (Cacheable)
    for (unsigned I : Misses)
      if (MA.Functions[I].Outcome == AllocOutcome::Converged) {
        AllocCache::Value V;
        V.F = M.function(I);
        V.A = MA.Functions[I];
        Cache.insert(Keys[I], V);
      }

  Wall.stop();
  MA.WallSeconds = Wall.seconds();
}
