//===- service/AllocCache.h - Content-addressed allocation cache -*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, content-addressed memoization cache for whole
/// per-function allocations: key = canonicalFunctionKey (ContentHash.h),
/// value = the rewritten Function plus its AllocationResult, stored as
/// deep copies so a hit replays the cold run byte-for-byte with no
/// aliasing into any caller's module.
///
/// Bounded two ways, both enforced on insert with LRU eviction:
///
///  * entry count (MaxEntries);
///  * resident bytes, charged against a support/Budget token armed with
///    the byte ceiling — the same governance primitive the allocator
///    uses for interference matrices, so the cache's accounting (peak
///    bytes, refusals) comes out of one audited mechanism. An entry
///    that cannot fit even into an empty cache is *refused* (counted,
///    never inserted) rather than evicting the world.
///
/// Hits, misses, insertions, evictions, refusals and byte totals are
/// kept in CacheStats and mirrored to the Trace subsystem via the
/// RA_TRACE_COUNTER macros ("cache.hits", "cache.misses",
/// "cache.evictions", "cache.bytes") — zero overhead when tracing is
/// compiled out (TraceNoopTest) and one relaxed load when no session is
/// active.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SERVICE_ALLOCCACHE_H
#define RA_SERVICE_ALLOCCACHE_H

#include "ir/Function.h"
#include "regalloc/Allocator.h"
#include "support/Budget.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ra {
namespace service {

/// Point-in-time counters of one AllocCache.
struct CacheStats {
  uint64_t Hits = 0;       ///< Lookups served from the cache.
  uint64_t Misses = 0;     ///< Lookups that found nothing.
  uint64_t Insertions = 0; ///< Entries accepted.
  uint64_t Evictions = 0;  ///< Entries displaced by LRU pressure.
  uint64_t Refusals = 0;   ///< Inserts refused (entry > byte ceiling).
  uint64_t Entries = 0;    ///< Entries resident now.
  uint64_t BytesInUse = 0; ///< Estimated resident bytes now.
  uint64_t PeakBytes = 0;  ///< High-water mark of BytesInUse.
};

/// CSV rendering of CacheStats (one header, one row per sample) — the
/// shape racd's --stats-csv and the service bench export.
std::string cacheStatsCsvHeader();
std::string cacheStatsCsvRow(const CacheStats &S);

class AllocCache {
public:
  /// One memoized allocation: the rewritten function and its result.
  struct Value {
    Function F{""};
    AllocationResult A;
  };

  /// \p MaxEntries and \p MaxBytes bound the cache; 0 disables the
  /// corresponding bound.
  AllocCache(uint64_t MaxEntries, uint64_t MaxBytes);

  /// Copies the entry under \p Key into \p Out and marks it
  /// most-recently-used. Returns false (and counts a miss) when absent.
  bool lookup(const std::string &Key, Value &Out);

  /// Inserts a copy of \p V under \p Key, evicting LRU entries until
  /// both bounds hold. Returns false when the entry alone exceeds the
  /// byte ceiling (counted as a refusal, nothing evicted) — or when the
  /// key is already present (first insertion wins; concurrent misses on
  /// one key race benignly to identical values).
  bool insert(const std::string &Key, const Value &V);

  CacheStats stats() const;

  /// Drops every entry (counters other than Entries/BytesInUse keep
  /// their totals).
  void clear();

  /// The byte estimate insert() charges for one entry: key bytes plus
  /// the dominant owned allocations of the function clone and result.
  /// An estimate, not an exact malloc census — the Budget charge is
  /// governance, not an allocator.
  static uint64_t estimateBytes(const std::string &Key, const Value &V);

private:
  struct Entry {
    std::string Key;
    Value V;
    uint64_t Bytes = 0;
  };
  using LruList = std::list<Entry>;

  /// Drops the LRU tail entry. Requires the lock held and a non-empty
  /// list.
  void evictTailLocked();

  mutable std::mutex Mu;
  LruList Lru; ///< Front = most recently used.
  /// Views into the list nodes' owned keys — list nodes never move.
  std::unordered_map<std::string_view, LruList::iterator> Index;
  Budget Bytes; ///< Armed with (no deadline, MaxBytes).
  uint64_t MaxEntries;
  CacheStats S;
};

} // namespace service
} // namespace ra

#endif // RA_SERVICE_ALLOCCACHE_H
