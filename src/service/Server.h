//===- service/Server.h - racd transport + dispatch ------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The racd daemon shell around one AllocationService: frame dispatch
/// (handleFrame), a blocking byte-stream loop usable over any fd pair
/// (serveStream — stdin/stdout or a connected socket), and a Unix-
/// domain listener running one thread per connection so concurrent
/// clients shard functions across the service's shared ThreadPool.
///
/// Shutdown is cooperative: a Shutdown frame is acknowledged with
/// ShutdownAck, then the listener is woken and every connection thread
/// joined before listenUnix's socket file is unlinked — a stopped racd
/// never leaks its socket path.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SERVICE_SERVER_H
#define RA_SERVICE_SERVER_H

#include "service/AllocationService.h"
#include "service/Protocol.h"
#include "support/Status.h"

#include <atomic>
#include <string>

namespace ra {
namespace service {

class RacdServer {
public:
  explicit RacdServer(AllocationService &Svc) : Svc(Svc) {}
  ~RacdServer();

  /// Dispatches one decoded frame, appending any reply frames to
  /// \p Out. Returns false when the connection should end (Shutdown
  /// acknowledged, or a request type the server cannot answer).
  bool handleFrame(MsgType T, const std::string &Payload, std::string &Out);

  /// Serves framed requests from \p InFd until EOF, a Shutdown frame,
  /// or a protocol error (which is itself answered with an Error frame
  /// when the stream is still writable). \p InFd and \p OutFd may be
  /// the same fd (socket) or a pipe pair (stdio mode).
  Status serveStream(int InFd, int OutFd);

  /// Binds and listens on a Unix-domain socket at \p Path (unlinking a
  /// stale file first). Call acceptLoop() next.
  Status listenUnix(const std::string &Path);

  /// Accepts connections until a Shutdown frame or requestStop(),
  /// running each connection on its own thread; joins every connection
  /// thread and removes the socket file before returning.
  Status acceptLoop();

  /// Wakes acceptLoop() and marks the server stopping. Safe from any
  /// thread (it is how a Shutdown frame on a connection thread stops
  /// the listener).
  void requestStop();

  bool stopRequested() const {
    return Stop.load(std::memory_order_acquire);
  }

  /// Requests served so far (frames of type AllocRequest).
  uint64_t allocRequests() const {
    return AllocFrames.load(std::memory_order_relaxed);
  }

private:
  void closeListener();

  AllocationService &Svc;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> AllocFrames{0};
  int ListenFd = -1;
  std::string SockPath;
};

/// Client-side helper: connects to a racd Unix-domain socket. On
/// success \p Fd holds a connected stream socket the caller owns.
Status connectUnix(const std::string &Path, int &Fd);

/// Writes all of \p Bytes to \p Fd, retrying short writes and EINTR.
Status writeAll(int Fd, const std::string &Bytes);

/// Blocking client call: writes one framed request and reads frames
/// until one complete reply arrives. Used by racc and the benches.
Status transact(int Fd, MsgType T, const std::string &Payload,
                MsgType &ReplyT, std::string &ReplyPayload);

} // namespace service
} // namespace ra

#endif // RA_SERVICE_SERVER_H
