//===- service/Server.cpp - racd transport + dispatch ---------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "ir/IRPrinter.h"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ra;
using namespace ra::service;

RacdServer::~RacdServer() { closeListener(); }

//===--------------------------------------------------------------------===//
// Frame dispatch.
//===--------------------------------------------------------------------===//

bool RacdServer::handleFrame(MsgType T, const std::string &Payload,
                             std::string &Out) {
  switch (T) {
  case MsgType::AllocRequest: {
    AllocFrames.fetch_add(1, std::memory_order_relaxed);
    AllocRequestMsg Req;
    if (Status S = Req.decode(Payload); !S.ok()) {
      appendFrame(Out, MsgType::Error, S.toString());
      return true;
    }
    ServiceRequest R;
    if (Status S = Req.Config.apply(R.Alloc); !S.ok()) {
      appendFrame(Out, MsgType::Error, S.toString());
      return true;
    }
    R.Source = std::move(Req.Source);
    R.Optimize = Req.Config.Optimize;
    R.UseCache = Req.Config.UseCache;
    // Each connection allocates serially within its request; concurrency
    // comes from concurrent connections sharing the service pool.
    R.Alloc.Jobs = 0;

    ServiceReply Reply = Svc.run(R);

    AllocReplyMsg Msg;
    Msg.Ok = Reply.S.ok() ? 1 : 0;
    Msg.Diag = Reply.S.toString();
    if (Reply.M) {
      const Module &M = *Reply.M;
      Msg.Functions.reserve(M.numFunctions());
      for (unsigned I = 0; I < M.numFunctions(); ++I) {
        const AllocationResult &A = Reply.MA.Functions[I];
        FunctionReplyMsg F;
        F.Name = M.function(I).name();
        F.Outcome = uint8_t(A.Outcome);
        F.Success = A.Success ? 1 : 0;
        F.CacheHit = Reply.CacheHit[I];
        F.Diag = A.Diag.toString();
        F.Passes = A.Stats.numPasses();
        F.Spills = A.Stats.totalSpills();
        F.LiveRanges = A.Stats.initialLiveRanges();
        if (Req.Config.Print)
          F.Printed = printFunction(M, M.function(I));
        Msg.Functions.push_back(std::move(F));
      }
    }
    appendFrame(Out, MsgType::AllocReply, Msg.encode());
    return true;
  }
  case MsgType::StatsRequest: {
    StatsReplyMsg Msg;
    Msg.Stats = Svc.cacheStats();
    Msg.Requests = Svc.requestsServed();
    Msg.PoolWidth = Svc.poolWidth();
    appendFrame(Out, MsgType::StatsReply, Msg.encode());
    return true;
  }
  case MsgType::Shutdown:
    appendFrame(Out, MsgType::ShutdownAck, "");
    requestStop();
    return false;
  default:
    appendFrame(Out, MsgType::Error,
                std::string("unexpected message type ") +
                    msgTypeName(T));
    return false;
  }
}

//===--------------------------------------------------------------------===//
// Byte-stream serving.
//===--------------------------------------------------------------------===//

Status ra::service::writeAll(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(StatusCode::IoError,
                           std::string("write: ") + std::strerror(errno));
    }
    Off += size_t(N);
  }
  return Status();
}

Status RacdServer::serveStream(int InFd, int OutFd) {
  FrameReader Reader;
  char Chunk[64 << 10];
  for (;;) {
    ssize_t N = ::read(InFd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(StatusCode::IoError,
                           std::string("read: ") + std::strerror(errno));
    }
    if (N == 0)
      return Status(); // clean EOF
    Reader.feed(Chunk, size_t(N));

    for (;;) {
      MsgType T;
      std::string Payload;
      Status Err;
      FrameReader::Result R = Reader.pop(T, Payload, Err);
      if (R == FrameReader::Result::NeedMore)
        break;
      if (R == FrameReader::Result::Malformed) {
        std::string Out;
        appendFrame(Out, MsgType::Error, Err.toString());
        (void)writeAll(OutFd, Out); // best effort; stream is dead anyway
        return Err;
      }
      std::string Out;
      bool Continue = handleFrame(T, Payload, Out);
      if (Status S = writeAll(OutFd, Out); !S.ok())
        return S;
      if (!Continue)
        return Status();
    }
  }
}

//===--------------------------------------------------------------------===//
// Unix-domain listener.
//===--------------------------------------------------------------------===//

Status RacdServer::listenUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (Path.size() + 1 > sizeof(Addr.sun_path))
    return Status::error(StatusCode::InvalidInput,
                         "socket path '" + Path +
                             "' exceeds the sockaddr_un limit");
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error(StatusCode::IoError,
                         std::string("socket: ") + std::strerror(errno));
  ::unlink(Path.c_str()); // stale socket from an unclean previous run
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status S = Status::error(StatusCode::IoError,
                             std::string("bind: ") + std::strerror(errno));
    ::close(Fd);
    return S.addContext(Path);
  }
  if (::listen(Fd, 64) < 0) {
    Status S = Status::error(StatusCode::IoError,
                             std::string("listen: ") + std::strerror(errno));
    ::close(Fd);
    ::unlink(Path.c_str());
    return S.addContext(Path);
  }
  ListenFd = Fd;
  SockPath = Path;
  return Status();
}

Status RacdServer::acceptLoop() {
  if (ListenFd < 0)
    return Status::error(StatusCode::InvalidInput,
                         "acceptLoop called before listenUnix");
  std::vector<std::thread> Conns;
  std::mutex ConnsMu;
  while (!stopRequested()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      if (stopRequested())
        break; // requestStop() shut the listener down under us
      Status S = Status::error(StatusCode::IoError,
                               std::string("accept: ") +
                                   std::strerror(errno));
      closeListener();
      return S;
    }
    std::lock_guard<std::mutex> Lock(ConnsMu);
    Conns.emplace_back([this, Fd] {
      (void)serveStream(Fd, Fd);
      ::close(Fd);
    });
  }
  // A Shutdown frame stops the listener from a connection thread that
  // is itself in Conns — join after the accept loop exits, when no new
  // connections can appear.
  for (std::thread &T : Conns)
    T.join();
  closeListener();
  return Status();
}

void RacdServer::requestStop() {
  Stop.store(true, std::memory_order_release);
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR); // wakes the blocking accept()
}

void RacdServer::closeListener() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (!SockPath.empty()) {
    ::unlink(SockPath.c_str());
    SockPath.clear();
  }
}

//===--------------------------------------------------------------------===//
// Client helpers.
//===--------------------------------------------------------------------===//

Status ra::service::connectUnix(const std::string &Path, int &Fd) {
  sockaddr_un Addr;
  if (Path.size() + 1 > sizeof(Addr.sun_path))
    return Status::error(StatusCode::InvalidInput,
                         "socket path '" + Path +
                             "' exceeds the sockaddr_un limit");
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0)
    return Status::error(StatusCode::IoError,
                         std::string("socket: ") + std::strerror(errno));
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Status E = Status::error(StatusCode::IoError,
                             std::string("connect: ") +
                                 std::strerror(errno));
    ::close(S);
    return E.addContext(Path);
  }
  Fd = S;
  return Status();
}

Status ra::service::transact(int Fd, MsgType T, const std::string &Payload,
                             MsgType &ReplyT, std::string &ReplyPayload) {
  std::string Out;
  appendFrame(Out, T, Payload);
  if (Status S = writeAll(Fd, Out); !S.ok())
    return S;

  FrameReader Reader;
  char Chunk[64 << 10];
  for (;;) {
    Status Err;
    FrameReader::Result R = Reader.pop(ReplyT, ReplyPayload, Err);
    if (R == FrameReader::Result::Frame)
      return Status();
    if (R == FrameReader::Result::Malformed)
      return Err;
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error(StatusCode::IoError,
                           std::string("read: ") + std::strerror(errno));
    }
    if (N == 0)
      return Status::error(StatusCode::IoError,
                           "connection closed before a reply arrived");
    Reader.feed(Chunk, size_t(N));
  }
}
