//===- service/Protocol.h - racd wire protocol -----------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framing and message encoding racd speaks over stdin/stdout and
/// Unix-domain sockets.
///
/// Framing is length-prefixed and transport-agnostic:
///
///     u32-LE payload-length | u8 type | payload bytes
///
/// The length covers the payload only (not itself, not the type byte)
/// and is capped at MaxFrameBytes — an oversized or malformed frame is
/// a protocol error that ends the connection with a structured Status,
/// never a crash or an unbounded buffer.
///
/// Payloads are built from three primitives: u8, u32/u64 (LE), and
/// length-prefixed strings (u32 length + bytes). The per-request
/// allocation configuration travels as one readable "k=v ..." text line
/// (WireConfig) so captures stay debuggable by eye.
///
/// Message flow: a client sends AllocRequest (config + module source)
/// and receives AllocReply (module-level status + one structured entry
/// per function: outcome, cache hit, diagnostics, spill/pass counts,
/// optionally the printed allocated function). StatsRequest/StatsReply
/// expose the cache counters; Shutdown asks the daemon to stop and is
/// acknowledged with ShutdownAck before the socket closes. A request
/// the server cannot decode earns an Error frame carrying the rendered
/// Status.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SERVICE_PROTOCOL_H
#define RA_SERVICE_PROTOCOL_H

#include "regalloc/Allocator.h"
#include "service/AllocCache.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ra {
namespace service {

enum class MsgType : uint8_t {
  AllocRequest = 1,
  AllocReply = 2,
  StatsRequest = 3,
  StatsReply = 4,
  Shutdown = 5,
  ShutdownAck = 6,
  Error = 7,
};

/// Printable message-type name ("alloc-request", ...).
const char *msgTypeName(MsgType T);

/// Hard ceiling on one frame's payload. Large enough for any corpus
/// module with printed replies; small enough that a corrupted length
/// prefix cannot OOM the peer.
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Appends one framed message to \p Out.
void appendFrame(std::string &Out, MsgType T, const std::string &Payload);

/// Incremental frame decoder: feed() transport bytes in any chunking,
/// pop() complete frames.
class FrameReader {
public:
  void feed(const char *Data, size_t Len) { Buf.append(Data, Len); }

  /// Result of one pop attempt.
  enum class Result { Frame, NeedMore, Malformed };

  /// Pops the next complete frame into \p T / \p Payload. Malformed
  /// framing (length over MaxFrameBytes) fills \p Err and poisons the
  /// reader — a byte stream with a broken length prefix has no
  /// recoverable frame boundary.
  Result pop(MsgType &T, std::string &Payload, Status &Err);

private:
  std::string Buf;
  bool Poisoned = false;
};

/// The per-request allocation configuration, rendered as one
/// space-separated "k=v" text line. Unknown keys are a parse error —
/// a client speaking a newer dialect must fail loudly, not silently
/// lose a knob.
struct WireConfig {
  std::string Allocator = "briggs"; ///< rac --allocator spellings.
  unsigned IntK = 16, FltK = 8;
  bool Optimize = true;
  bool Remat = false;
  bool Split = true;
  bool Audit = true;
  bool UseCache = true;
  bool Print = false; ///< Return printed allocated functions.
  double DeadlineMs = 0;
  uint64_t MemBudgetMb = 0;

  std::string render() const;
  Status parse(const std::string &Text);

  /// Resolves into the allocator configuration (validating Allocator).
  /// \p C starts from defaults; only wire-carried fields are set.
  Status apply(AllocatorConfig &C) const;
};

/// AllocRequest payload: config line + module source text.
struct AllocRequestMsg {
  WireConfig Config;
  std::string Source;

  std::string encode() const;
  Status decode(const std::string &Payload);
};

/// One function's slice of an AllocReply.
struct FunctionReplyMsg {
  std::string Name;
  uint8_t Outcome = 0; ///< AllocOutcome as u8.
  uint8_t Success = 0;
  uint8_t CacheHit = 0;
  std::string Diag; ///< Rendered Status ("ok" when clean).
  uint32_t Passes = 0;
  uint32_t Spills = 0;
  uint32_t LiveRanges = 0;
  std::string Printed; ///< Allocated function text when requested.
};

/// AllocReply payload: module-level status + per-function entries.
struct AllocReplyMsg {
  uint8_t Ok = 0;   ///< Module parsed, verified, every function usable.
  std::string Diag; ///< Module-level failure rendering ("ok" if none).
  std::vector<FunctionReplyMsg> Functions;

  std::string encode() const;
  Status decode(const std::string &Payload);
};

/// StatsReply payload: the daemon's cache counters + requests served.
struct StatsReplyMsg {
  CacheStats Stats;
  uint64_t Requests = 0;
  uint32_t PoolWidth = 0;

  std::string encode() const;
  Status decode(const std::string &Payload);
};

} // namespace service
} // namespace ra

#endif // RA_SERVICE_PROTOCOL_H
