//===- service/AllocationService.h - Allocation as a service ---*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library-level allocation driver behind both the rac CLI and the
/// racd daemon: parse -> verify -> (optimize) -> allocate every
/// function, with a content-addressed AllocCache in front of the
/// Build->Select work. One AllocationService instance serves any number
/// of requests, from any number of threads, sharing one ThreadPool and
/// one cache:
///
///  * a cache HIT substitutes the memoized rewritten function (a deep
///    copy) and its AllocationResult into the request's module —
///    byte-identical to the cold run and skipping renumber/build/
///    simplify/select/spill/audit entirely;
///  * a MISS allocates on the shared pool (function order preserved,
///    worker exceptions converted to per-function WorkerError results
///    exactly like allocateModule) and, when the result Converged under
///    a cacheable config, inserts it for the next request.
///
/// Only Converged results are memoized: Degraded outcomes depend on
/// when a deadline tripped, which is wall-clock state, not content.
/// Per-request resource governance (AllocatorConfig::DeadlineSeconds /
/// MemoryBudgetBytes) rides through unchanged — each function arms its
/// own Budget inside allocateRegisters, so one abusive request degrades
/// only itself while its pool-mates proceed.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SERVICE_ALLOCATIONSERVICE_H
#define RA_SERVICE_ALLOCATIONSERVICE_H

#include "ir/Module.h"
#include "regalloc/Allocator.h"
#include "service/AllocCache.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ra {
namespace service {

/// Construction-time configuration of one service instance.
struct ServiceConfig {
  bool CacheEnabled = true;
  uint64_t CacheMaxEntries = 1u << 16; ///< 0 = unbounded.
  uint64_t CacheMaxBytes = 256ull << 20; ///< 0 = unbounded.
  /// Pool width for miss allocation; 0 = one per hardware thread.
  unsigned Workers = 0;
};

/// One allocation request: a textual IR module plus the per-request
/// allocation configuration.
struct ServiceRequest {
  std::string Source;
  AllocatorConfig Alloc;
  bool Optimize = true;
  /// Per-request cache opt-out (the service-level CacheEnabled switch
  /// still wins).
  bool UseCache = true;
};

/// Everything one request produced. When S is not ok (parse/verify
/// failure) the other fields are empty.
struct ServiceReply {
  Status S;
  /// The allocated (rewritten) module; functions served from the cache
  /// are substituted clones.
  std::unique_ptr<Module> M;
  ModuleAllocationResult MA;
  /// Per-function: 1 when served from the cache.
  std::vector<uint8_t> CacheHit;

  unsigned numHits() const {
    unsigned N = 0;
    for (uint8_t H : CacheHit)
      N += H;
    return N;
  }
};

class AllocationService {
public:
  explicit AllocationService(const ServiceConfig &SC = {});

  /// Processes one textual-IR request end to end. Parse and verifier
  /// failures come back as ParseError / VerifyError statuses shaped
  /// exactly as the rac CLI has always reported them (golden-tested).
  ServiceReply run(const ServiceRequest &R);

  /// The module-level core for callers that already hold a parsed,
  /// verified module: optimizes + allocates every function of \p M in
  /// place, filling \p MA and the per-function \p CacheHit flags.
  void allocateParsed(Module &M, const AllocatorConfig &C, bool Optimize,
                      bool UseCache, ModuleAllocationResult &MA,
                      std::vector<uint8_t> &CacheHit);

  CacheStats cacheStats() const { return Cache.stats(); }
  void clearCache() { Cache.clear(); }
  uint64_t requestsServed() const {
    return Requests.load(std::memory_order_relaxed);
  }
  unsigned poolWidth() const { return Pool.numThreads(); }

private:
  ServiceConfig SC;
  AllocCache Cache;
  ThreadPool Pool;
  std::atomic<uint64_t> Requests{0};
};

} // namespace service
} // namespace ra

#endif // RA_SERVICE_ALLOCATIONSERVICE_H
