//===- service/Protocol.cpp - racd wire protocol --------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <cstring>

using namespace ra;
using namespace ra::service;

const char *ra::service::msgTypeName(MsgType T) {
  switch (T) {
  case MsgType::AllocRequest: return "alloc-request";
  case MsgType::AllocReply:   return "alloc-reply";
  case MsgType::StatsRequest: return "stats-request";
  case MsgType::StatsReply:   return "stats-reply";
  case MsgType::Shutdown:     return "shutdown";
  case MsgType::ShutdownAck:  return "shutdown-ack";
  case MsgType::Error:        return "error";
  }
  return "unknown";
}

//===--------------------------------------------------------------------===//
// Framing.
//===--------------------------------------------------------------------===//

void ra::service::appendFrame(std::string &Out, MsgType T,
                              const std::string &Payload) {
  uint32_t Len = uint32_t(Payload.size());
  char Hdr[5];
  Hdr[0] = char(Len & 0xFF);
  Hdr[1] = char((Len >> 8) & 0xFF);
  Hdr[2] = char((Len >> 16) & 0xFF);
  Hdr[3] = char((Len >> 24) & 0xFF);
  Hdr[4] = char(uint8_t(T));
  Out.append(Hdr, 5);
  Out += Payload;
}

FrameReader::Result FrameReader::pop(MsgType &T, std::string &Payload,
                                     Status &Err) {
  if (Poisoned) {
    Err = Status::error(StatusCode::InvalidInput,
                        "frame stream already poisoned by a malformed "
                        "length prefix");
    return Result::Malformed;
  }
  if (Buf.size() < 5)
    return Result::NeedMore;
  uint32_t Len = uint32_t(uint8_t(Buf[0])) |
                 uint32_t(uint8_t(Buf[1])) << 8 |
                 uint32_t(uint8_t(Buf[2])) << 16 |
                 uint32_t(uint8_t(Buf[3])) << 24;
  if (Len > MaxFrameBytes) {
    Poisoned = true;
    Err = Status::error(StatusCode::InvalidInput,
                        "frame length " + std::to_string(Len) +
                            " exceeds the " +
                            std::to_string(MaxFrameBytes) +
                            "-byte frame ceiling");
    return Result::Malformed;
  }
  if (Buf.size() < size_t(5) + Len)
    return Result::NeedMore;
  T = MsgType(uint8_t(Buf[4]));
  Payload.assign(Buf, 5, Len);
  Buf.erase(0, size_t(5) + Len);
  return Result::Frame;
}

//===--------------------------------------------------------------------===//
// Payload primitives.
//===--------------------------------------------------------------------===//

namespace {

void putU8(std::string &Out, uint8_t V) { Out.push_back(char(V)); }

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xFF));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(char((V >> (8 * I)) & 0xFF));
}

void putStr(std::string &Out, const std::string &S) {
  putU32(Out, uint32_t(S.size()));
  Out += S;
}

/// Bounds-checked payload reader. Every get* returns false past the
/// end; decode() turns that into one truncated-payload Status.
struct Reader {
  const std::string &P;
  size_t Off = 0;

  bool getU8(uint8_t &V) {
    if (Off + 1 > P.size())
      return false;
    V = uint8_t(P[Off++]);
    return true;
  }

  bool getU32(uint32_t &V) {
    if (Off + 4 > P.size())
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(uint8_t(P[Off + I])) << (8 * I);
    Off += 4;
    return true;
  }

  bool getU64(uint64_t &V) {
    if (Off + 8 > P.size())
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= uint64_t(uint8_t(P[Off + I])) << (8 * I);
    Off += 8;
    return true;
  }

  bool getStr(std::string &S) {
    uint32_t Len;
    if (!getU32(Len) || Off + Len > P.size())
      return false;
    S.assign(P, Off, Len);
    Off += Len;
    return true;
  }

  bool done() const { return Off == P.size(); }
};

Status truncated(const char *What) {
  return Status::error(StatusCode::InvalidInput,
                       std::string("truncated or overlong ") + What +
                           " payload");
}

} // namespace

//===--------------------------------------------------------------------===//
// WireConfig.
//===--------------------------------------------------------------------===//

std::string WireConfig::render() const {
  std::string Out = "allocator=" + Allocator;
  Out += " int=" + std::to_string(IntK);
  Out += " flt=" + std::to_string(FltK);
  Out += " opt=" + std::to_string(Optimize ? 1 : 0);
  Out += " remat=" + std::to_string(Remat ? 1 : 0);
  Out += " split=" + std::to_string(Split ? 1 : 0);
  Out += " audit=" + std::to_string(Audit ? 1 : 0);
  Out += " cache=" + std::to_string(UseCache ? 1 : 0);
  Out += " print=" + std::to_string(Print ? 1 : 0);
  Out += " deadline_ms=" + std::to_string(DeadlineMs);
  Out += " mem_mb=" + std::to_string(MemBudgetMb);
  return Out;
}

Status WireConfig::parse(const std::string &Text) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    while (Pos < Text.size() && Text[Pos] == ' ')
      ++Pos;
    if (Pos >= Text.size())
      break;
    size_t End = Text.find(' ', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Token = Text.substr(Pos, End - Pos);
    Pos = End;
    size_t Eq = Token.find('=');
    if (Eq == std::string::npos)
      return Status::error(StatusCode::InvalidInput,
                           "config token '" + Token +
                               "' is not of the form key=value");
    std::string Key = Token.substr(0, Eq), Val = Token.substr(Eq + 1);
    auto AsBool = [&](bool &Out) {
      Out = Val != "0";
      return Status();
    };
    auto AsUnsigned = [&](unsigned &Out) {
      Out = unsigned(std::strtoul(Val.c_str(), nullptr, 10));
      return Status();
    };
    Status S;
    if (Key == "allocator")
      Allocator = Val;
    else if (Key == "int")
      S = AsUnsigned(IntK);
    else if (Key == "flt")
      S = AsUnsigned(FltK);
    else if (Key == "opt")
      S = AsBool(Optimize);
    else if (Key == "remat")
      S = AsBool(Remat);
    else if (Key == "split")
      S = AsBool(Split);
    else if (Key == "audit")
      S = AsBool(Audit);
    else if (Key == "cache")
      S = AsBool(UseCache);
    else if (Key == "print")
      S = AsBool(Print);
    else if (Key == "deadline_ms")
      DeadlineMs = std::strtod(Val.c_str(), nullptr);
    else if (Key == "mem_mb")
      MemBudgetMb = std::strtoull(Val.c_str(), nullptr, 10);
    else
      return Status::error(StatusCode::InvalidInput,
                           "unknown config key '" + Key + "'");
    if (!S.ok())
      return S;
  }
  if (IntK < 1 || FltK < 1)
    return Status::error(StatusCode::InvalidInput,
                         "register files must hold at least one register");
  return Status();
}

Status WireConfig::apply(AllocatorConfig &C) const {
  if (!parseAllocatorName(Allocator, C.B, C.H))
    return Status::error(StatusCode::InvalidInput,
                         "unknown allocator '" + Allocator +
                             "' (expected chaitin, briggs, matula-beck, "
                             "or linear-scan)");
  C.Machine = MachineInfo(IntK, FltK);
  C.Rematerialize = Remat;
  C.SplitIntervals = Split;
  C.Audit = Audit;
  C.DeadlineSeconds = DeadlineMs / 1e3;
  C.MemoryBudgetBytes = MemBudgetMb << 20;
  return Status();
}

//===--------------------------------------------------------------------===//
// Messages.
//===--------------------------------------------------------------------===//

std::string AllocRequestMsg::encode() const {
  std::string Out;
  putStr(Out, Config.render());
  putStr(Out, Source);
  return Out;
}

Status AllocRequestMsg::decode(const std::string &Payload) {
  Reader R{Payload};
  std::string ConfigText;
  if (!R.getStr(ConfigText) || !R.getStr(Source) || !R.done())
    return truncated("alloc-request");
  return Config.parse(ConfigText);
}

std::string AllocReplyMsg::encode() const {
  std::string Out;
  putU8(Out, Ok);
  putStr(Out, Diag);
  putU32(Out, uint32_t(Functions.size()));
  for (const FunctionReplyMsg &F : Functions) {
    putStr(Out, F.Name);
    putU8(Out, F.Outcome);
    putU8(Out, F.Success);
    putU8(Out, F.CacheHit);
    putStr(Out, F.Diag);
    putU32(Out, F.Passes);
    putU32(Out, F.Spills);
    putU32(Out, F.LiveRanges);
    putStr(Out, F.Printed);
  }
  return Out;
}

Status AllocReplyMsg::decode(const std::string &Payload) {
  Reader R{Payload};
  uint32_t N;
  if (!R.getU8(Ok) || !R.getStr(Diag) || !R.getU32(N))
    return truncated("alloc-reply");
  Functions.clear();
  Functions.reserve(std::min<uint32_t>(N, 1u << 16));
  for (uint32_t I = 0; I < N; ++I) {
    FunctionReplyMsg F;
    if (!R.getStr(F.Name) || !R.getU8(F.Outcome) || !R.getU8(F.Success) ||
        !R.getU8(F.CacheHit) || !R.getStr(F.Diag) || !R.getU32(F.Passes) ||
        !R.getU32(F.Spills) || !R.getU32(F.LiveRanges) ||
        !R.getStr(F.Printed))
      return truncated("alloc-reply");
    Functions.push_back(std::move(F));
  }
  if (!R.done())
    return truncated("alloc-reply");
  return Status();
}

std::string StatsReplyMsg::encode() const {
  std::string Out;
  putU64(Out, Stats.Hits);
  putU64(Out, Stats.Misses);
  putU64(Out, Stats.Insertions);
  putU64(Out, Stats.Evictions);
  putU64(Out, Stats.Refusals);
  putU64(Out, Stats.Entries);
  putU64(Out, Stats.BytesInUse);
  putU64(Out, Stats.PeakBytes);
  putU64(Out, Requests);
  putU32(Out, PoolWidth);
  return Out;
}

Status StatsReplyMsg::decode(const std::string &Payload) {
  Reader R{Payload};
  if (!R.getU64(Stats.Hits) || !R.getU64(Stats.Misses) ||
      !R.getU64(Stats.Insertions) || !R.getU64(Stats.Evictions) ||
      !R.getU64(Stats.Refusals) || !R.getU64(Stats.Entries) ||
      !R.getU64(Stats.BytesInUse) || !R.getU64(Stats.PeakBytes) ||
      !R.getU64(Requests) || !R.getU32(PoolWidth) || !R.done())
    return truncated("stats-reply");
  return Status();
}
