//===- service/AllocCache.cpp - Content-addressed allocation cache --------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "service/AllocCache.h"

#include "support/Trace.h"

using namespace ra;
using namespace ra::service;

std::string ra::service::cacheStatsCsvHeader() {
  return "hits,misses,insertions,evictions,refusals,entries,bytes_in_use,"
         "peak_bytes\n";
}

std::string ra::service::cacheStatsCsvRow(const CacheStats &S) {
  return std::to_string(S.Hits) + "," + std::to_string(S.Misses) + "," +
         std::to_string(S.Insertions) + "," + std::to_string(S.Evictions) +
         "," + std::to_string(S.Refusals) + "," + std::to_string(S.Entries) +
         "," + std::to_string(S.BytesInUse) + "," +
         std::to_string(S.PeakBytes) + "\n";
}

AllocCache::AllocCache(uint64_t MaxEntries, uint64_t MaxBytes)
    : MaxEntries(MaxEntries) {
  Bytes.arm(/*DeadlineSeconds=*/0, MaxBytes);
}

uint64_t AllocCache::estimateBytes(const std::string &Key, const Value &V) {
  uint64_t N = Key.size() + sizeof(Entry);
  for (const BasicBlock &B : V.F.blocks()) {
    N += sizeof(BasicBlock) + B.Name.size();
    N += B.Insts.size() * sizeof(Instruction);
  }
  for (unsigned R = 0; R < V.F.numVRegs(); ++R)
    N += sizeof(VRegInfo) + V.F.vreg(R).Name.size();
  N += V.A.ColorOf.size() * sizeof(int32_t);
  N += V.A.Pieces.size() * sizeof(PieceAssignment);
  for (const RangeMetrics &RM : V.A.Metrics)
    N += sizeof(RangeMetrics) + RM.Name.size() + RM.CoalescedInto.size();
  for (const PassRecord &P : V.A.Stats.Passes) {
    N += sizeof(PassRecord);
    for (const std::string &Name : P.SpilledNames)
      N += Name.size() + sizeof(std::string);
  }
  return N;
}

bool AllocCache::lookup(const std::string &Key, Value &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(std::string_view(Key));
  if (It == Index.end()) {
    ++S.Misses;
    RA_TRACE_COUNTER("cache.misses", 1);
    return false;
  }
  Lru.splice(Lru.begin(), Lru, It->second); // iterator stays valid
  Out = It->second->V;                      // deep copy under the lock
  ++S.Hits;
  RA_TRACE_COUNTER("cache.hits", 1);
  return true;
}

void AllocCache::evictTailLocked() {
  Entry &Victim = Lru.back();
  Index.erase(std::string_view(Victim.Key));
  Bytes.release(Victim.Bytes);
  S.BytesInUse -= Victim.Bytes;
  --S.Entries;
  ++S.Evictions;
  RA_TRACE_COUNTER("cache.evictions", 1);
  RA_TRACE_COUNTER("cache.bytes", -double(Victim.Bytes));
  Lru.pop_back();
}

bool AllocCache::insert(const std::string &Key, const Value &V) {
  uint64_t Need = estimateBytes(Key, V);
  std::lock_guard<std::mutex> Lock(Mu);
  if (Index.count(std::string_view(Key)))
    return false; // first insertion won; values are identical by key

  // Make room: entry-count bound first, then the byte ceiling. A
  // tryCharge refusal latches the Budget token, so every retry after an
  // eviction rearms it (rearm keeps the cumulative telemetry).
  while (MaxEntries > 0 && S.Entries >= MaxEntries && !Lru.empty())
    evictTailLocked();
  while (!Bytes.tryCharge(Need)) {
    Bytes.rearm();
    if (Lru.empty()) {
      ++S.Refusals;
      RA_TRACE_COUNTER("cache.refusals", 1);
      return false; // the entry alone exceeds the ceiling
    }
    evictTailLocked();
  }

  Lru.push_front(Entry{Key, V, Need});
  Index.emplace(std::string_view(Lru.front().Key), Lru.begin());
  ++S.Insertions;
  ++S.Entries;
  S.BytesInUse += Need;
  if (S.BytesInUse > S.PeakBytes)
    S.PeakBytes = S.BytesInUse;
  RA_TRACE_COUNTER("cache.bytes", double(Need));
  return true;
}

CacheStats AllocCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

void AllocCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const Entry &E : Lru)
    Bytes.release(E.Bytes);
  Index.clear();
  Lru.clear();
  S.Entries = 0;
  S.BytesInUse = 0;
}
