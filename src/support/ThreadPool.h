//===- support/ThreadPool.h - Fixed worker thread pool ---------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed pool of worker threads with a futures-based submit API. The
/// allocator's work units — whole functions in a module, and the two
/// register-class graphs inside one function — are independent, so the
/// pool imposes no ordering; callers that need deterministic output
/// collect futures in submission order (see \c allocateModule).
///
/// Submitting from inside a worker is not supported (a task that blocks
/// on a future of the same pool can deadlock); the allocator keeps its
/// nested per-class parallelism on plain threads instead.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_THREADPOOL_H
#define RA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace ra {

/// Fixed-size worker pool. Threads start in the constructor and join in
/// the destructor; queued tasks all run before shutdown completes.
class ThreadPool {
public:
  /// Starts \p NumThreads workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains the queue and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return Workers.size(); }

  /// Enqueues \p Fn and returns a future for its result. Tasks may run
  /// in any order and on any worker. A task that throws never takes a
  /// worker down: the exception is captured by the packaged_task and
  /// rethrown from future::get() on the collecting thread, and the
  /// worker moves on to the next queued task.
  template <typename FnT>
  auto submit(FnT &&Fn) -> std::future<std::invoke_result_t<FnT>> {
    using ResultT = std::invoke_result_t<FnT>;
    auto Task = std::make_shared<std::packaged_task<ResultT()>>(
        std::forward<FnT>(Fn));
    std::future<ResultT> Result = Task->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.push([Task] { (*Task)(); });
    }
    WakeWorker.notify_one();
    return Result;
  }

  /// Clamps a requested job count: 0 -> hardware concurrency, and never
  /// less than 1 (hardware_concurrency may report 0).
  static unsigned resolveJobs(unsigned Requested);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WakeWorker;
  bool Stopping = false;
};

} // namespace ra

#endif // RA_SUPPORT_THREADPOOL_H
