//===- support/Budget.h - Cooperative deadline + memory budget -*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative resource-governance token: a monotonic-clock deadline
/// plus an atomic byte-accounting counter with a high-water mark.
///
/// The allocation pipeline never kills threads or unwinds mid-phase.
/// Instead, every long-running loop polls `checkpoint()` — an amortized
/// check that touches the clock only every 64th call — and backs out at
/// the next IR-safe boundary when the token has tripped. Memory is
/// governed up front: a phase *estimates* its dominant allocation (the
/// triangular bit matrix) and asks `tryCharge()` before allocating, so
/// a would-be OOM is refused into the degradation ladder before any
/// bytes are committed.
///
/// Tripping is *latched*: once either resource is exhausted the token
/// stays exhausted (every subsequent checkpoint answers instantly)
/// until `rearm()` opens a fresh window for the next ladder rung.
/// Cumulative telemetry — checkpoints served, peak bytes — survives a
/// rearm so the final AllocationResult can report totals.
///
/// A default-constructed Budget is *ungoverned*: no deadline, no byte
/// limit, checkpoints never trip. Pipeline code takes `Budget *` and
/// treats nullptr as ungoverned too, which keeps the default
/// (governance off) a single pointer test away from byte-identical
/// behavior.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_BUDGET_H
#define RA_SUPPORT_BUDGET_H

#include "support/Status.h"

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ra {

class Budget {
public:
  using Clock = std::chrono::steady_clock;

  /// Ungoverned: no limits, `checkpoint()` never trips.
  Budget() = default;

  /// Arms the token. Zero disables the corresponding limit.
  ///
  /// \p DeadlineSeconds wall-clock allowance from *now* (monotonic).
  /// \p MemoryBytes ceiling for concurrently-charged bytes.
  void arm(double DeadlineSeconds, uint64_t MemoryBytes) {
    DeadlineLimit = DeadlineSeconds;
    ByteLimit = MemoryBytes;
    Start = Clock::now();
    Exhausted.store(nullptr, std::memory_order_relaxed);
  }

  /// Opens a fresh deadline window from *now* and clears the exhausted
  /// latch — the ladder calls this before retrying a function on a
  /// cheaper rung. Byte accounting (current charge, peak, checkpoint
  /// totals) carries over: the retry still answers for memory already
  /// held, and telemetry stays cumulative.
  void rearm() {
    Start = Clock::now();
    Exhausted.store(nullptr, std::memory_order_relaxed);
  }

  /// True when either limit is armed. Ungoverned tokens skip straight
  /// through every check.
  bool governed() const { return DeadlineLimit > 0 || ByteLimit > 0; }

  /// The cooperative poll. Counts every call; reads the clock only on
  /// every 64th (amortizing the syscall), except that a latched trip
  /// answers immediately. Returns true while within budget.
  bool checkpoint() {
    uint64_t N = Checkpoints.fetch_add(1, std::memory_order_relaxed);
    if (Exhausted.load(std::memory_order_relaxed))
      return false;
    if (DeadlineLimit <= 0)
      return true;
    if ((N & ClockMask) != 0)
      return true;
    return checkDeadlineNow();
  }

  /// Forced deadline check — phase boundaries call this so a trip is
  /// noticed even when the amortized counter hasn't wrapped. Returns
  /// true when the token has tripped (either resource).
  bool expired() {
    Checkpoints.fetch_add(1, std::memory_order_relaxed);
    if (Exhausted.load(std::memory_order_relaxed))
      return true;
    if (DeadlineLimit <= 0)
      return false;
    return !checkDeadlineNow();
  }

  /// True when a limit has already been latched (no clock read).
  bool exhausted() const {
    return Exhausted.load(std::memory_order_relaxed) != nullptr;
  }

  /// Attempts to account \p Bytes against the byte limit. On success
  /// the charge is held until `release()`; the high-water mark tracks
  /// the maximum concurrent charge. A refusal charges nothing and
  /// latches the token as memory-exhausted (recording the refused
  /// request so the diagnostic can name it). Ungoverned tokens always
  /// grant and still track the peak for telemetry.
  bool tryCharge(uint64_t Bytes) {
    uint64_t Now = Current.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    if (ByteLimit > 0 && Now > ByteLimit) {
      Current.fetch_sub(Bytes, std::memory_order_relaxed);
      RefusedBytes.store(Bytes, std::memory_order_relaxed);
      Exhausted.store(MemoryExhaustedTag, std::memory_order_relaxed);
      return false;
    }
    uint64_t Peak = PeakBytes.load(std::memory_order_relaxed);
    while (Now > Peak &&
           !PeakBytes.compare_exchange_weak(Peak, Now,
                                            std::memory_order_relaxed))
      ;
    return true;
  }

  /// Returns \p Bytes previously granted by `tryCharge()`.
  void release(uint64_t Bytes) {
    Current.fetch_sub(Bytes, std::memory_order_relaxed);
  }

  uint64_t checkpoints() const {
    return Checkpoints.load(std::memory_order_relaxed);
  }
  uint64_t peakBytes() const {
    return PeakBytes.load(std::memory_order_relaxed);
  }
  uint64_t currentBytes() const {
    return Current.load(std::memory_order_relaxed);
  }
  double deadlineSeconds() const { return DeadlineLimit; }
  uint64_t byteLimit() const { return ByteLimit; }

  /// Renders the latched trip as a Status naming the exhausted resource
  /// and both limit and actual, e.g.
  ///   deadline-exceeded: deadline of 0.005s exceeded after 0.007s
  ///   memory-budget-exceeded: memory budget of 1048576 bytes refused a
  ///   2097152-byte charge (1000000 bytes held)
  /// Returns Ok when nothing has tripped.
  Status status() const;

private:
  /// Clock reads happen on every (N & ClockMask)==0 checkpoint.
  static constexpr uint64_t ClockMask = 63;

  /// Latch tags — distinguish which resource tripped without another
  /// field. Any non-null value means exhausted.
  static const char *const DeadlineExhaustedTag;
  static const char *const MemoryExhaustedTag;

  bool checkDeadlineNow() {
    double Elapsed =
        std::chrono::duration<double>(Clock::now() - Start).count();
    if (Elapsed <= DeadlineLimit)
      return true;
    TrippedAfter.store(Elapsed, std::memory_order_relaxed);
    Exhausted.store(DeadlineExhaustedTag, std::memory_order_relaxed);
    return false;
  }

  double DeadlineLimit = 0;  ///< Seconds; 0 = no deadline.
  uint64_t ByteLimit = 0;    ///< Bytes; 0 = no memory limit.
  Clock::time_point Start{}; ///< Window start (arm/rearm time).

  std::atomic<const char *> Exhausted{nullptr};
  std::atomic<uint64_t> Checkpoints{0};
  std::atomic<uint64_t> Current{0};
  std::atomic<uint64_t> PeakBytes{0};
  std::atomic<uint64_t> RefusedBytes{0};
  std::atomic<double> TrippedAfter{0};
};

/// RAII charge against a Budget: charges on construction (when granted)
/// and releases on destruction. `granted()` is true when the charge was
/// accepted — or when there was no governor at all.
class ScopedCharge {
public:
  ScopedCharge(Budget *B, uint64_t Bytes)
      : Governor(B), Bytes(Bytes),
        Granted(!B || B->tryCharge(Bytes)) {}
  ~ScopedCharge() {
    if (Governor && Granted)
      Governor->release(Bytes);
  }
  ScopedCharge(const ScopedCharge &) = delete;
  ScopedCharge &operator=(const ScopedCharge &) = delete;

  bool granted() const { return Granted; }

private:
  Budget *Governor;
  uint64_t Bytes;
  bool Granted;
};

} // namespace ra

#endif // RA_SUPPORT_BUDGET_H
