//===- support/BitVector.h - Dense dynamic bit set -------------*- C++ -*-===//
//
// Part of briggs-regalloc, an implementation of Briggs, Cooper, Kennedy &
// Torczon, "Coloring Heuristics for Register Allocation", PLDI 1989.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, dynamically sized bit vector used by the dataflow analyses and
/// the interference graph. Word-parallel union/intersect/subtract keep
/// liveness solving fast on a single core.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_BITVECTOR_H
#define RA_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ra {

/// Dense bit set over the index range [0, size()).
class BitVector {
public:
  BitVector() = default;

  /// Constructs a vector of \p NumBits bits, all set to \p Value.
  explicit BitVector(unsigned NumBits, bool Value = false) {
    resize(NumBits, Value);
  }

  /// Number of bits tracked (not the number set).
  unsigned size() const { return NumBits; }

  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks to \p NewSize bits; new bits take \p Value.
  void resize(unsigned NewSize, bool Value = false);

  /// Sets every bit to false without changing the size.
  void clearAll();

  /// Sets every bit to true.
  void setAll();

  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }

  void set(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] |= WordType(1) << (Idx % WordBits);
  }

  void reset(unsigned Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / WordBits] &= ~(WordType(1) << (Idx % WordBits));
  }

  /// Sets bit \p Idx and returns true iff it was previously clear.
  bool testAndSet(unsigned Idx) {
    if (test(Idx))
      return false;
    set(Idx);
    return true;
  }

  /// Number of set bits.
  unsigned count() const;

  /// True iff no bit is set.
  bool none() const;

  /// True iff at least one bit is set.
  bool any() const { return !none(); }

  /// This |= Other. Returns true iff any bit changed.
  bool unionWith(const BitVector &Other);

  /// This &= Other.
  void intersectWith(const BitVector &Other);

  /// This &= ~Other.
  void subtract(const BitVector &Other);

  /// True iff this and \p Other share at least one set bit.
  bool intersects(const BitVector &Other) const;

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Index of the first set bit, or -1 if none.
  int findFirst() const;

  /// Index of the first set bit strictly after \p Prev, or -1 if none.
  int findNext(unsigned Prev) const;

  /// Calls \p Fn(Idx) for every set bit in ascending order.
  template <typename CallableT> void forEachSetBit(CallableT Fn) const {
    for (unsigned W = 0, E = Words.size(); W != E; ++W) {
      WordType Word = Words[W];
      while (Word) {
        unsigned Bit = __builtin_ctzll(Word);
        Fn(W * WordBits + Bit);
        Word &= Word - 1;
      }
    }
  }

private:
  using WordType = uint64_t;
  static constexpr unsigned WordBits = 64;

  /// Clears any bits in the last word beyond NumBits.
  void clearUnusedBits();

  unsigned NumBits = 0;
  std::vector<WordType> Words;
};

} // namespace ra

#endif // RA_SUPPORT_BITVECTOR_H
