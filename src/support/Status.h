//===- support/Status.h - Structured error propagation ---------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small status type — code, message, and a chain of context frames —
/// for recoverable failures. The allocator, the module driver and the
/// command-line tools thread Status through their results instead of
/// aborting, so malformed input, non-convergence or a crashed worker
/// degrade into a diagnostic rather than taking the process down.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_STATUS_H
#define RA_SUPPORT_STATUS_H

#include <string>
#include <utility>
#include <vector>

namespace ra {

/// Coarse failure category. Ok must stay the zero value so a
/// default-constructed Status means success.
enum class StatusCode : uint8_t {
  Ok = 0,
  InvalidInput,   ///< Structurally malformed IR reached a pipeline stage.
  ParseError,     ///< Textual IR did not parse.
  VerifyError,    ///< The IR verifier rejected a module.
  NonConvergence, ///< Build-Simplify-Color exhausted MaxPasses.
  AuditFailure,   ///< The post-allocation audit found a broken invariant.
  WorkerError,    ///< A pool worker threw while allocating a function.
  IoError,        ///< File could not be read or written.
  DeadlineExceeded,     ///< A Budget deadline expired mid-allocation.
  MemoryBudgetExceeded, ///< A Budget byte charge was refused.
};

/// Printable name of a status code ("audit-failure", ...).
inline const char *statusCodeName(StatusCode C) {
  switch (C) {
  case StatusCode::Ok:             return "ok";
  case StatusCode::InvalidInput:   return "invalid-input";
  case StatusCode::ParseError:     return "parse-error";
  case StatusCode::VerifyError:    return "verify-error";
  case StatusCode::NonConvergence: return "non-convergence";
  case StatusCode::AuditFailure:   return "audit-failure";
  case StatusCode::WorkerError:    return "worker-error";
  case StatusCode::IoError:        return "io-error";
  case StatusCode::DeadlineExceeded:     return "deadline-exceeded";
  case StatusCode::MemoryBudgetExceeded: return "memory-budget-exceeded";
  }
  return "unknown";
}

/// Success-or-diagnostic. A failed Status carries the innermost message
/// plus the context frames pushed while it propagated outward, so the
/// final rendering reads outermost-first, e.g.
///
///   audit-failure: @dgefa: pass 2: int registers r3 assigned to two
///   simultaneously-live ranges
class Status {
public:
  Status() = default; ///< Ok. (There is no factory; `Status()` is Ok.)

  static Status error(StatusCode C, std::string Message) {
    Status S;
    S.Code = C;
    S.Message = std::move(Message);
    return S;
  }

  bool ok() const { return Code == StatusCode::Ok; }
  StatusCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// Pushes one context frame (innermost call sites push first; frames
  /// render outermost-first). No-op on an Ok status, so callers can
  /// unconditionally annotate results on the way out.
  Status &addContext(std::string Frame) {
    if (!ok())
      Context.push_back(std::move(Frame));
    return *this;
  }

  /// "code: outer: inner: message" — or "ok" for a success.
  std::string toString() const {
    std::string Out = statusCodeName(Code);
    if (ok())
      return Out;
    for (auto It = Context.rbegin(); It != Context.rend(); ++It)
      Out += ": " + *It;
    Out += ": " + Message;
    return Out;
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Message;
  std::vector<std::string> Context; ///< Innermost frame first.
};

} // namespace ra

#endif // RA_SUPPORT_STATUS_H
