//===- support/UnionFind.h - Disjoint-set forest ---------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disjoint-set forest with union by rank and path compression. Used by
/// the live-range renumbering pass (def-use webs) and by copy coalescing.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_UNIONFIND_H
#define RA_SUPPORT_UNIONFIND_H

#include <cstdint>
#include <vector>

namespace ra {

/// Disjoint sets over the dense id range [0, size()).
class UnionFind {
public:
  UnionFind() = default;

  explicit UnionFind(unsigned NumElements) { reset(NumElements); }

  /// Re-initializes to \p NumElements singleton sets.
  void reset(unsigned NumElements);

  unsigned size() const { return Parent.size(); }

  /// Appends one new singleton set and returns its id.
  unsigned grow();

  /// Representative of the set containing \p X (with path compression).
  unsigned find(unsigned X);

  /// Merges the sets of \p A and \p B; returns the new representative.
  unsigned unite(unsigned A, unsigned B);

  /// True iff \p A and \p B are in the same set.
  bool connected(unsigned A, unsigned B) { return find(A) == find(B); }

  /// Number of distinct sets remaining.
  unsigned numSets() const { return NumSets; }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
  unsigned NumSets = 0;
};

} // namespace ra

#endif // RA_SUPPORT_UNIONFIND_H
