//===- support/Table.h - ASCII table printer -------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned ASCII table printer used by the benchmark harnesses to
/// regenerate the paper's Figures 5, 6 and 7 as readable console tables.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_TABLE_H
#define RA_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ra {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
public:
  enum class Align { Left, Right };

  /// \p Headers names the columns; every row must have the same arity.
  explicit Table(std::vector<std::string> Headers,
                 std::vector<Align> Alignments = {});

  /// Appends one row. Missing cells render empty; extra cells assert.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line at the current position.
  void addSeparator();

  /// Renders the whole table, including the header, to a string.
  std::string render() const;

  /// Renders to stdout.
  void print() const;

  /// Formats a number with thousands separators: 596713 -> "596,713".
  static std::string withCommas(int64_t Value);

  /// Formats \p Value with \p Digits digits after the decimal point.
  static std::string fixed(double Value, int Digits);

  /// Formats the paper's "Pct." column: 100*(Old-New)/Old rounded to the
  /// nearest integer, or "0" when Old is zero.
  static std::string pctImprovement(double Old, double New);

private:
  struct Row {
    bool IsSeparator = false;
    std::vector<std::string> Cells;
  };

  std::vector<std::string> Headers;
  std::vector<Align> Alignments;
  std::vector<Row> Rows;
};

} // namespace ra

#endif // RA_SUPPORT_TABLE_H
