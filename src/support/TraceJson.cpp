//===- support/TraceJson.cpp - Chrome trace export ------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Renders a SessionLog as the Chrome Trace Event Format (the JSON that
// chrome://tracing and https://ui.perfetto.dev load directly): one
// object per event in the "traceEvents" array, "ph":"X" complete spans
// with microsecond ts/dur, "C" counters, "i" instants, and "M"
// thread-name metadata. Also the normalized (volatile-free) rendering
// the golden-file and determinism tests compare.
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string_view>

using namespace ra;
using namespace ra::trace;

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
std::string quoted(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
  return Out;
}

/// Microseconds with nanosecond fraction, as Chrome's "ts" expects.
std::string micros(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03u",
                (unsigned long long)(Ns / 1000), unsigned(Ns % 1000));
  return Buf;
}

std::string value(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%g", V);
  return Buf;
}

const char *phase(EventKind K) {
  switch (K) {
  case EventKind::Span:       return "X";
  case EventKind::Instant:    return "i";
  case EventKind::Counter:    return "C";
  case EventKind::ThreadName: return "M";
  }
  return "i";
}

const char *kindName(EventKind K) {
  switch (K) {
  case EventKind::Span:       return "span";
  case EventKind::Instant:    return "instant";
  case EventKind::Counter:    return "counter";
  case EventKind::ThreadName: return "thread-name";
  }
  return "?";
}

} // namespace

std::string ra::trace::toChromeJson(const SessionLog &Log) {
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const Event &E : Log.Events) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":";
    Out += quoted(E.Name);
    Out += ",\"ph\":\"";
    Out += phase(E.Kind);
    Out += "\",\"pid\":1,\"tid\":";
    Out += std::to_string(E.Tid);
    switch (E.Kind) {
    case EventKind::Span:
      Out += ",\"cat\":" + quoted(E.Category);
      Out += ",\"ts\":" + micros(E.StartNs);
      Out += ",\"dur\":" + micros(E.DurNs);
      break;
    case EventKind::Instant:
      Out += ",\"cat\":" + quoted(E.Category);
      Out += ",\"ts\":" + micros(E.StartNs);
      Out += ",\"s\":\"t\"";
      break;
    case EventKind::Counter:
      Out += ",\"ts\":" + micros(E.StartNs);
      break;
    case EventKind::ThreadName:
      break;
    }
    Out += ",\"args\":{";
    if (E.Kind == EventKind::Counter) {
      Out += quoted(E.Name) + ":" + value(E.Value);
    } else if (E.Kind == EventKind::ThreadName) {
      Out += "\"name\":" + quoted(E.Detail);
    } else {
      bool Inner = false;
      if (!E.Ctx.empty()) {
        Out += "\"ctx\":" + quoted(E.Ctx);
        Inner = true;
      }
      if (!E.Detail.empty()) {
        if (Inner)
          Out += ",";
        Out += "\"detail\":" + quoted(E.Detail);
      }
    }
    Out += "}}";
  }
  Out += "\n]}\n";
  return Out;
}

Status ra::trace::writeChromeJson(const std::string &Path,
                                  const SessionLog &Log) {
  std::ofstream OutFile(Path, std::ios::trunc);
  if (!OutFile)
    return Status::error(StatusCode::IoError,
                         "cannot open trace output '" + Path + "'");
  OutFile << toChromeJson(Log);
  OutFile.flush();
  if (!OutFile)
    return Status::error(StatusCode::IoError,
                         "error writing trace output '" + Path + "'");
  return Status();
}

std::string ra::trace::normalizedLog(const SessionLog &Log) {
  // Group by context, preserving each group's record order. A context's
  // work happens on one thread (helpers get their own sub-context), so
  // record order within a group is deterministic at any worker count.
  std::vector<std::pair<std::string, std::vector<const Event *>>> Groups;
  auto GroupFor =
      [&Groups](const std::string &Ctx) -> std::vector<const Event *> & {
    for (auto &G : Groups)
      if (G.first == Ctx)
        return G.second;
    Groups.emplace_back(Ctx, std::vector<const Event *>());
    return Groups.back().second;
  };
  for (const Event &E : Log.Events) {
    if (E.Kind == EventKind::ThreadName ||
        std::string_view(E.Category) == "sched")
      continue; // Varies with worker count / scheduling; not comparable.
    GroupFor(E.Ctx).push_back(&E);
  }
  std::sort(Groups.begin(), Groups.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  std::string Out;
  for (const auto &[Ctx, Events] : Groups) {
    Out += "[" + (Ctx.empty() ? std::string("<global>") : Ctx) + "]\n";
    for (const Event *E : Events) {
      Out += std::string(kindName(E->Kind)) + " " + E->Name;
      if (*E->Category && std::string_view(E->Category) != "counter")
        Out += " cat=" + std::string(E->Category);
      if (E->Kind == EventKind::Counter)
        Out += " value=" + value(E->Value);
      if (!E->Detail.empty())
        Out += " " + E->Detail;
      Out += "\n";
    }
  }
  return Out;
}
