//===- support/ParallelFor.h - Plain-thread batch helpers ------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fork-join batching over plain std::threads. The ThreadPool cannot be
/// used for work *inside* an allocation task — its header forbids
/// submitting from a worker (a task blocking on a same-pool future can
/// deadlock), and the parallel Select phase runs exactly there, inside
/// \c allocateModule's pool tasks. These helpers follow the precedent
/// of Allocator.cpp's per-class helper thread: short-lived plain
/// threads, joined before returning, so the join gives callers a
/// happens-before edge over everything the batches wrote.
///
/// Index 0 always runs on the calling thread, so `Threads == 1` costs
/// no thread spawn at all.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_PARALLELFOR_H
#define RA_SUPPORT_PARALLELFOR_H

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace ra {

/// Runs `Fn(ThreadIdx)` for every ThreadIdx in [0, Threads), each on its
/// own thread except index 0 which runs on the caller. Returns after all
/// of them complete (the joins are the synchronization point).
template <typename FnT> void forkJoin(unsigned Threads, FnT &&Fn) {
  if (Threads <= 1) {
    Fn(0u);
    return;
  }
  std::vector<std::thread> Helpers;
  Helpers.reserve(Threads - 1);
  for (unsigned T = 1; T < Threads; ++T)
    Helpers.emplace_back([&Fn, T] { Fn(T); });
  Fn(0u);
  for (std::thread &H : Helpers)
    H.join();
}

/// Splits [0, N) into at most \p Threads contiguous batches of
/// near-equal size and runs `Fn(BatchIdx, Begin, End)` for each, one
/// batch per thread (batch 0 on the caller). Batches cover the range in
/// order and never overlap; fewer than \p Threads batches are made when
/// N is small, and empty ranges spawn nothing.
template <typename FnT>
void parallelBatches(size_t N, unsigned Threads, FnT &&Fn) {
  unsigned Batches =
      unsigned(std::min<size_t>(std::max(1u, Threads), std::max<size_t>(N, 1)));
  if (Batches <= 1 || N == 0) {
    if (N != 0)
      Fn(0u, size_t(0), N);
    return;
  }
  size_t Base = N / Batches, Rem = N % Batches;
  forkJoin(Batches, [&](unsigned B) {
    size_t Begin = B * Base + std::min<size_t>(B, Rem);
    size_t End = Begin + Base + (B < Rem ? 1 : 0);
    Fn(B, Begin, End);
  });
}

} // namespace ra

#endif // RA_SUPPORT_PARALLELFOR_H
