//===- support/Trace.h - Phase tracing and counters ------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zero-overhead-when-off tracing for the allocator pipeline: scoped
/// phase spans, monotonic counters, and instant markers, collected into
/// lock-free per-thread event streams and exported as Chrome
/// `chrome://tracing` / Perfetto trace JSON (TraceJson.cpp).
///
/// Layers of "off":
///
///  * Compile time — a translation unit built with \c RA_NO_TRACING
///    defined sees every RA_TRACE_* macro expand to `((void)0)`; macro
///    arguments are not even evaluated (asserted by TraceNoopTest).
///  * Run time — with no session active the macros cost one relaxed
///    atomic load; no event is allocated or recorded, and span detail
///    lambdas are never invoked.
///
/// A session is begun/ended from a single coordinating thread
/// (\c beginSession / \c endSession); any thread may record while one
/// is active. Each recording thread appends to its own stream, so the
/// only synchronization is a one-time stream registration per thread
/// per session.
///
/// Events carry a *context* label — set with RA_TRACE_CONTEXT, e.g.
/// "@dgefa" while allocating that function — which is what makes the
/// collected log comparable across worker counts: allocation work is
/// grouped per context, and \c normalizedLog renders the volatile-free
/// view golden and determinism tests compare.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_TRACE_H
#define RA_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ra {
class Status; // support/Status.h; only needed by the JSON writer.
namespace trace {

/// What one recorded event is.
enum class EventKind : uint8_t {
  Span,       ///< Completed phase span ("ph":"X"): start + duration.
  Instant,    ///< Point-in-time marker ("ph":"i").
  Counter,    ///< Monotonic counter sample ("ph":"C").
  ThreadName, ///< Metadata: names the recording thread ("ph":"M").
};

/// One trace event. Name/Category must be string literals (they are
/// stored unowned); Detail and Ctx are owned copies.
struct Event {
  EventKind Kind = EventKind::Instant;
  const char *Name = "";
  const char *Category = "";
  uint64_t StartNs = 0; ///< Nanoseconds since session begin.
  uint64_t DurNs = 0;   ///< Span only.
  double Value = 0;     ///< Counter only.
  uint32_t Tid = 0;     ///< Stream id (stable within a session).
  std::string Detail;   ///< Deterministic key=value extras ("pass=0").
  std::string Ctx;      ///< Context label at record time ("@fn").
};

/// Everything one session collected: events merged stream-by-stream in
/// registration order, plus counter totals aggregated by name.
struct SessionLog {
  std::vector<Event> Events;
  std::map<std::string, double> CounterTotals;

  /// Total of counter \p Name over the session (0 when never bumped).
  double counter(const std::string &Name) const {
    auto It = CounterTotals.find(Name);
    return It == CounterTotals.end() ? 0 : It->second;
  }
};

namespace detail {
extern std::atomic<bool> Enabled;
uint64_t nowNs();
void record(Event E);
const std::string &threadContext();
void setThreadContext(std::string Ctx);
} // namespace detail

/// True while a session is collecting. The macros' fast path.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Starts collecting; discards anything from a previous session.
void beginSession();

/// Stops collecting and returns everything recorded since beginSession.
SessionLog endSession();

/// Bumps monotonic counter \p Name (a literal) by \p Delta. No-op when
/// no session is active.
inline void counter(const char *Name, double Delta) {
  if (!enabled())
    return;
  Event E;
  E.Kind = EventKind::Counter;
  E.Name = Name;
  E.Category = "counter";
  E.StartNs = detail::nowNs();
  E.Value = Delta;
  detail::record(std::move(E));
}

/// Records an instant marker. No-op when no session is active.
inline void instant(const char *Name, const char *Category,
                    std::string Detail = {}) {
  if (!enabled())
    return;
  Event E;
  E.Kind = EventKind::Instant;
  E.Name = Name;
  E.Category = Category;
  E.StartNs = detail::nowNs();
  E.Detail = std::move(Detail);
  detail::record(std::move(E));
}

/// Names the calling thread in trace viewers ("pool-worker-3").
void setCurrentThreadName(const std::string &Name);

/// RAII phase span. Opens on construction (when a session is active)
/// and records one completed-span event on destruction. The optional
/// detail functor is only invoked while tracing, so building the detail
/// string costs nothing when off.
class Span {
public:
  Span(const char *Name, const char *Category) {
    if (enabled())
      open(Name, Category, {});
  }

  template <typename DetailFn,
            typename = decltype(std::declval<DetailFn>()())>
  Span(const char *Name, const char *Category, DetailFn &&Detail) {
    if (enabled())
      open(Name, Category, Detail());
  }

  ~Span() { close(); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void close() {
    if (!Active)
      return;
    Active = false;
    E.DurNs = detail::nowNs() - E.StartNs;
    detail::record(std::move(E));
  }

private:
  void open(const char *Name, const char *Category, std::string Detail) {
    E.Kind = EventKind::Span;
    E.Name = Name;
    E.Category = Category;
    E.Detail = std::move(Detail);
    E.StartNs = detail::nowNs();
    Active = true;
  }

  Event E;
  bool Active = false;
};

/// What RA_TRACE_SPAN_NAMED declares under RA_NO_TRACING: same shape as
/// Span (close() exists) but constructible from nothing and free.
struct NoopSpan {
  void close() {}
};

/// RAII context label: events recorded by this thread inside the scope
/// carry \p Ctx (e.g. "@dgefa" while that function allocates). Restores
/// the previous label on exit. Threads helping with a scope's work set
/// the parent's context plus a suffix (see Allocator.cpp's class-helper
/// thread) so their events group deterministically.
class ScopedContext {
public:
  explicit ScopedContext(std::string Ctx) {
    if (!enabled())
      return;
    Active = true;
    Saved = detail::threadContext();
    detail::setThreadContext(std::move(Ctx));
  }

  /// Lazy variant: the functor building the label only runs while a
  /// session is active.
  template <typename MakeCtxFn,
            typename = decltype(std::declval<MakeCtxFn>()())>
  explicit ScopedContext(MakeCtxFn &&MakeCtx) {
    if (!enabled())
      return;
    Active = true;
    Saved = detail::threadContext();
    detail::setThreadContext(MakeCtx());
  }

  ~ScopedContext() {
    if (Active)
      detail::setThreadContext(std::move(Saved));
  }

  ScopedContext(const ScopedContext &) = delete;
  ScopedContext &operator=(const ScopedContext &) = delete;

  /// The calling thread's current context label ("" outside any scope).
  static std::string current() {
    return enabled() ? detail::threadContext() : std::string();
  }

private:
  std::string Saved;
  bool Active = false;
};

//===--------------------------------------------------------------------===//
// Export (TraceJson.cpp).
//===--------------------------------------------------------------------===//

/// Renders \p Log as Chrome trace JSON (the "traceEvents" array format
/// chrome://tracing and Perfetto load directly). Timestamps are
/// microseconds with nanosecond fraction.
std::string toChromeJson(const SessionLog &Log);

/// Writes \c toChromeJson(Log) to \p Path. Returns Ok or an IoError
/// status naming the path — callers must surface this, never drop
/// events silently.
Status writeChromeJson(const std::string &Path, const SessionLog &Log);

/// Volatile-free rendering for golden-file and determinism tests:
/// events are grouped by context (sorted by context label), keeping
/// each group's record order, and only deterministic fields are printed
/// (kind, name, category, detail, counter value). Scheduling-category
/// events ("sched") and thread-name metadata are omitted — they vary
/// with worker count; everything else is identical at any --jobs.
std::string normalizedLog(const SessionLog &Log);

} // namespace trace
} // namespace ra

//===--------------------------------------------------------------------===//
// Instrumentation macros. These — not the classes above — are what the
// pipeline uses, so a build (or one translation unit) can compile the
// instrumentation away entirely with RA_NO_TRACING.
//===--------------------------------------------------------------------===//

#ifndef RA_NO_TRACING

#define RA_TRACE_CONCAT_IMPL(A, B) A##B
#define RA_TRACE_CONCAT(A, B) RA_TRACE_CONCAT_IMPL(A, B)

/// Scoped span: RA_TRACE_SPAN("Simplify", "regalloc") or with a lazy
/// detail functor RA_TRACE_SPAN("Pass", "regalloc", [&] { ... }).
#define RA_TRACE_SPAN(...)                                                   \
  ra::trace::Span RA_TRACE_CONCAT(RaTraceSpan, __LINE__)(__VA_ARGS__)

/// Span bound to a caller-chosen variable, for phases whose boundaries
/// are not a brace scope: RA_TRACE_SPAN_NAMED(S, "Simplify", "regalloc");
/// ... S.close();
#define RA_TRACE_SPAN_NAMED(Var, ...) ra::trace::Span Var(__VA_ARGS__)

/// Scoped context label for everything this thread records inside.
#define RA_TRACE_CONTEXT(Ctx)                                                \
  ra::trace::ScopedContext RA_TRACE_CONCAT(RaTraceCtx, __LINE__)(Ctx)

#define RA_TRACE_COUNTER(Name, Delta) ra::trace::counter((Name), (Delta))
#define RA_TRACE_INSTANT(...) ra::trace::instant(__VA_ARGS__)

#else // RA_NO_TRACING: compile-time no-ops; arguments are not evaluated.

#define RA_TRACE_SPAN(...) ((void)0)
#define RA_TRACE_SPAN_NAMED(Var, ...) ra::trace::NoopSpan Var
#define RA_TRACE_CONTEXT(Ctx) ((void)0)
#define RA_TRACE_COUNTER(Name, Delta) ((void)0)
#define RA_TRACE_INSTANT(...) ((void)0)

#endif // RA_NO_TRACING

#endif // RA_SUPPORT_TRACE_H
