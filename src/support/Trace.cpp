//===- support/Trace.cpp - Phase tracing and counters ---------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The collector: one event stream per recording thread, registered on
// the thread's first record of each session. Appends after registration
// take no lock — a stream is written by exactly one thread, and
// endSession only reads streams after flipping Enabled off, by which
// point the coordinating caller has joined or drained its workers (the
// allocator's pools and helper threads never outlive the call that
// spawned them).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <chrono>
#include <memory>
#include <mutex>

using namespace ra;
using namespace ra::trace;

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's events for the current session.
struct Stream {
  std::vector<Event> Events;
  uint32_t Tid = 0;
};

struct Registry {
  std::mutex Mutex;
  std::vector<std::unique_ptr<Stream>> Streams; ///< Registration order.
  Clock::time_point SessionStart;
  uint64_t Generation = 0; ///< Bumped by beginSession.
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Thread-local handle into the registry, revalidated per session.
struct LocalSlot {
  uint64_t Generation = ~uint64_t(0);
  Stream *S = nullptr;
  std::string Context;
};

LocalSlot &localSlot() {
  thread_local LocalSlot Slot;
  return Slot;
}

Stream &currentStream() {
  Registry &R = registry();
  LocalSlot &Slot = localSlot();
  if (Slot.Generation != R.Generation || !Slot.S) {
    std::lock_guard<std::mutex> Lock(R.Mutex);
    auto S = std::make_unique<Stream>();
    S->Tid = uint32_t(R.Streams.size());
    Slot.S = S.get();
    Slot.Generation = R.Generation;
    R.Streams.push_back(std::move(S));
  }
  return *Slot.S;
}

} // namespace

std::atomic<bool> ra::trace::detail::Enabled{false};

uint64_t ra::trace::detail::nowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - registry().SessionStart)
                      .count());
}

void ra::trace::detail::record(Event E) {
  if (!enabled())
    return; // Session ended while this event was open: drop it.
  Stream &S = currentStream();
  E.Tid = S.Tid;
  if (E.Ctx.empty())
    E.Ctx = localSlot().Context;
  S.Events.push_back(std::move(E));
}

const std::string &ra::trace::detail::threadContext() {
  return localSlot().Context;
}

void ra::trace::detail::setThreadContext(std::string Ctx) {
  localSlot().Context = std::move(Ctx);
}

void ra::trace::beginSession() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Streams.clear();
  R.SessionStart = Clock::now();
  ++R.Generation;
  detail::Enabled.store(true, std::memory_order_release);
}

SessionLog ra::trace::endSession() {
  Registry &R = registry();
  detail::Enabled.store(false, std::memory_order_release);
  SessionLog Log;
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const std::unique_ptr<Stream> &S : R.Streams)
    for (const Event &E : S->Events)
      Log.Events.push_back(E);
  R.Streams.clear();
  ++R.Generation; // Invalidate every thread's cached stream pointer.
  for (const Event &E : Log.Events)
    if (E.Kind == EventKind::Counter)
      Log.CounterTotals[E.Name] += E.Value;
  return Log;
}

void ra::trace::setCurrentThreadName(const std::string &Name) {
  if (!enabled())
    return;
  Event E;
  E.Kind = EventKind::ThreadName;
  E.Name = "thread_name";
  E.Category = "__metadata";
  E.Detail = Name;
  detail::record(std::move(E));
}
