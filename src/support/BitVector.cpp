//===- support/BitVector.cpp - Dense dynamic bit set ----------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

#include <algorithm>

using namespace ra;

void BitVector::resize(unsigned NewSize, bool Value) {
  unsigned NewWords = (NewSize + WordBits - 1) / WordBits;
  WordType Fill = Value ? ~WordType(0) : 0;
  if (Value && NumBits < NewSize && NumBits % WordBits != 0) {
    // Set the tail bits of the current last word that become live.
    Words[NumBits / WordBits] |= Fill << (NumBits % WordBits);
  }
  Words.resize(NewWords, Fill);
  NumBits = NewSize;
  clearUnusedBits();
}

void BitVector::clearAll() { std::fill(Words.begin(), Words.end(), 0); }

void BitVector::setAll() {
  std::fill(Words.begin(), Words.end(), ~WordType(0));
  clearUnusedBits();
}

void BitVector::clearUnusedBits() {
  unsigned Tail = NumBits % WordBits;
  if (Tail != 0 && !Words.empty())
    Words.back() &= (WordType(1) << Tail) - 1;
}

unsigned BitVector::count() const {
  unsigned N = 0;
  for (WordType W : Words)
    N += __builtin_popcountll(W);
  return N;
}

bool BitVector::none() const {
  for (WordType W : Words)
    if (W)
      return false;
  return true;
}

bool BitVector::unionWith(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "size mismatch");
  bool Changed = false;
  for (unsigned I = 0, E = Words.size(); I != E; ++I) {
    WordType Merged = Words[I] | Other.Words[I];
    Changed |= Merged != Words[I];
    Words[I] = Merged;
  }
  return Changed;
}

void BitVector::intersectWith(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "size mismatch");
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= Other.Words[I];
}

void BitVector::subtract(const BitVector &Other) {
  assert(NumBits == Other.NumBits && "size mismatch");
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= ~Other.Words[I];
}

bool BitVector::intersects(const BitVector &Other) const {
  assert(NumBits == Other.NumBits && "size mismatch");
  for (unsigned I = 0, E = Words.size(); I != E; ++I)
    if (Words[I] & Other.Words[I])
      return true;
  return false;
}

int BitVector::findFirst() const {
  for (unsigned W = 0, E = Words.size(); W != E; ++W)
    if (Words[W])
      return W * WordBits + __builtin_ctzll(Words[W]);
  return -1;
}

int BitVector::findNext(unsigned Prev) const {
  unsigned Idx = Prev + 1;
  if (Idx >= NumBits)
    return -1;
  unsigned W = Idx / WordBits;
  WordType Word = Words[W] >> (Idx % WordBits);
  if (Word)
    return Idx + __builtin_ctzll(Word);
  for (++W; W < Words.size(); ++W)
    if (Words[W])
      return W * WordBits + __builtin_ctzll(Words[W]);
  return -1;
}
