//===- support/Timer.h - Phase timing ---------------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock stopwatch used to reproduce the per-phase CPU times of the
/// paper's Figure 7 (the original used a 60 Hz clock; we use steady_clock).
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_TIMER_H
#define RA_SUPPORT_TIMER_H

#include <chrono>

namespace ra {

/// Accumulating stopwatch.
class Timer {
public:
  /// Starts (or restarts) the stopwatch.
  void start() { Begin = Clock::now(); Running = true; }

  /// Stops and adds the elapsed interval to the accumulated total.
  void stop() {
    if (!Running)
      return;
    Accumulated += Clock::now() - Begin;
    Running = false;
  }

  /// Accumulated time in seconds (excludes a currently running interval).
  double seconds() const {
    return std::chrono::duration<double>(Accumulated).count();
  }

  /// Discards all accumulated time.
  void reset() {
    Accumulated = Clock::duration::zero();
    Running = false;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin;
  Clock::duration Accumulated = Clock::duration::zero();
  bool Running = false;
};

/// RAII helper that runs \c start() on construction and \c stop() on
/// destruction.
class TimerScope {
public:
  explicit TimerScope(Timer &T) : T(T) { T.start(); }
  ~TimerScope() { T.stop(); }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer &T;
};

} // namespace ra

#endif // RA_SUPPORT_TIMER_H
