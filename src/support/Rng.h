//===- support/Rng.h - Deterministic PRNG ----------------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic PRNG (xorshift128+) so property tests, random
/// program generation, and benchmark workloads are reproducible across
/// platforms and standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_RNG_H
#define RA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace ra {

/// xorshift128+ generator with splitmix64 seeding.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the two state words.
    auto Mix = [&Seed]() {
      Seed += 0x9E3779B97F4A7C15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
      return Z ^ (Z >> 31);
    };
    S0 = Mix();
    S1 = Mix();
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + int64_t(nextBelow(uint64_t(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() { return double(next() >> 11) * 0x1.0p-53; }

  /// True with probability \p P (clamped to [0,1]).
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

private:
  uint64_t S0, S1;
};

} // namespace ra

#endif // RA_SUPPORT_RNG_H
