//===- support/Budget.cpp - Cooperative deadline + memory budget ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include <cstdio>

using namespace ra;

const char *const Budget::DeadlineExhaustedTag = "deadline";
const char *const Budget::MemoryExhaustedTag = "memory";

Status Budget::status() const {
  const char *Tag = Exhausted.load(std::memory_order_relaxed);
  if (!Tag)
    return Status();
  char Buf[192];
  if (Tag == DeadlineExhaustedTag) {
    std::snprintf(Buf, sizeof(Buf),
                  "deadline of %.6gs exceeded after %.6gs", DeadlineLimit,
                  TrippedAfter.load(std::memory_order_relaxed));
    return Status::error(StatusCode::DeadlineExceeded, Buf);
  }
  std::snprintf(Buf, sizeof(Buf),
                "memory budget of %llu bytes refused a %llu-byte charge "
                "(%llu bytes held)",
                (unsigned long long)ByteLimit,
                (unsigned long long)RefusedBytes.load(
                    std::memory_order_relaxed),
                (unsigned long long)Current.load(std::memory_order_relaxed));
  return Status::error(StatusCode::MemoryBudgetExceeded, Buf);
}
