//===- support/UnionFind.cpp - Disjoint-set forest ------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/UnionFind.h"

#include <cassert>
#include <numeric>

using namespace ra;

void UnionFind::reset(unsigned NumElements) {
  Parent.resize(NumElements);
  std::iota(Parent.begin(), Parent.end(), 0);
  Rank.assign(NumElements, 0);
  NumSets = NumElements;
}

unsigned UnionFind::grow() {
  unsigned Id = Parent.size();
  Parent.push_back(Id);
  Rank.push_back(0);
  ++NumSets;
  return Id;
}

unsigned UnionFind::find(unsigned X) {
  assert(X < Parent.size() && "element out of range");
  unsigned Root = X;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  // Path compression.
  while (Parent[X] != Root) {
    unsigned Next = Parent[X];
    Parent[X] = Root;
    X = Next;
  }
  return Root;
}

unsigned UnionFind::unite(unsigned A, unsigned B) {
  unsigned RA = find(A), RB = find(B);
  if (RA == RB)
    return RA;
  if (Rank[RA] < Rank[RB])
    std::swap(RA, RB);
  Parent[RB] = RA;
  if (Rank[RA] == Rank[RB])
    ++Rank[RA];
  --NumSets;
  return RA;
}
