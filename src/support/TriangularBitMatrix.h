//===- support/TriangularBitMatrix.h - Symmetric bit matrix ----*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lower-triangular bit matrix for symmetric relations over node ids.
/// Chaitin's allocator keeps the interference relation in exactly this
/// shape for O(1) membership tests, alongside adjacency vectors for
/// iteration [CACC 81]; we reuse the structure here.
///
//===----------------------------------------------------------------------===//

#ifndef RA_SUPPORT_TRIANGULARBITMATRIX_H
#define RA_SUPPORT_TRIANGULARBITMATRIX_H

#include "support/BitVector.h"

#include <algorithm>
#include <cassert>

namespace ra {

/// Symmetric boolean relation over {0, ..., N-1} stored as the strictly
/// lower triangle of an N x N bit matrix. The diagonal is not stored:
/// a node never relates to itself.
class TriangularBitMatrix {
public:
  TriangularBitMatrix() = default;

  explicit TriangularBitMatrix(unsigned NumNodes) { reset(NumNodes); }

  /// Discards all pairs and resizes to \p NumNodes nodes.
  void reset(unsigned NumNodes) {
    N = NumNodes;
    Bits = BitVector(N < 2 ? 0 : N * (N - 1) / 2);
  }

  unsigned numNodes() const { return N; }

  /// Marks the unordered pair {A, B}. A must differ from B.
  void set(unsigned A, unsigned B) { Bits.set(index(A, B)); }

  /// Clears the unordered pair {A, B}.
  void clear(unsigned A, unsigned B) { Bits.reset(index(A, B)); }

  /// True iff the unordered pair {A, B} is marked. A == B returns false.
  bool test(unsigned A, unsigned B) const {
    if (A == B)
      return false;
    return Bits.test(index(A, B));
  }

  /// Marks {A, B}; returns true iff the pair was previously clear.
  bool testAndSet(unsigned A, unsigned B) {
    return Bits.testAndSet(index(A, B));
  }

private:
  /// Maps an unordered pair to its bit position in the lower triangle.
  unsigned index(unsigned A, unsigned B) const {
    assert(A != B && "no self edges in a triangular matrix");
    assert(A < N && B < N && "node id out of range");
    unsigned Hi = std::max(A, B), Lo = std::min(A, B);
    return Hi * (Hi - 1) / 2 + Lo;
  }

  unsigned N = 0;
  BitVector Bits;
};

} // namespace ra

#endif // RA_SUPPORT_TRIANGULARBITMATRIX_H
