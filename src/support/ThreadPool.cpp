//===- support/ThreadPool.cpp - Fixed worker thread pool ------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Trace.h"

using namespace ra;

unsigned ThreadPool::resolveJobs(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW != 0 ? HW : 1;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  unsigned N = resolveJobs(NumThreads);
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this, I] {
      if (trace::enabled())
        trace::setCurrentThreadName("pool-worker-" + std::to_string(I));
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WakeWorker.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorker.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
  }
}
