//===- support/Table.cpp - ASCII table printer ----------------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ra;

Table::Table(std::vector<std::string> Headers, std::vector<Align> Alignments)
    : Headers(std::move(Headers)), Alignments(std::move(Alignments)) {
  // Default alignment: first column left (names), the rest right (numbers).
  if (this->Alignments.empty()) {
    this->Alignments.assign(this->Headers.size(), Align::Right);
    if (!this->Alignments.empty())
      this->Alignments.front() = Align::Left;
  }
  assert(this->Alignments.size() == this->Headers.size() &&
         "one alignment per column");
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Headers.size() && "row wider than the header");
  Cells.resize(Headers.size());
  Rows.push_back({false, std::move(Cells)});
}

void Table::addSeparator() { Rows.push_back({true, {}}); }

std::string Table::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const Row &R : Rows) {
    if (R.IsSeparator)
      continue;
    for (size_t C = 0; C < R.Cells.size(); ++C)
      Widths[C] = std::max(Widths[C], R.Cells[C].size());
  }

  auto EmitCell = [&](std::string &Out, const std::string &Cell, size_t C) {
    size_t Pad = Widths[C] - Cell.size();
    if (Alignments[C] == Align::Right)
      Out.append(Pad, ' ');
    Out += Cell;
    if (Alignments[C] == Align::Left)
      Out.append(Pad, ' ');
  };

  auto EmitSeparator = [&](std::string &Out) {
    for (size_t C = 0; C < Widths.size(); ++C) {
      Out += (C == 0 ? "+" : "+");
      Out.append(Widths[C] + 2, '-');
    }
    Out += "+\n";
  };

  std::string Out;
  EmitSeparator(Out);
  Out += "|";
  for (size_t C = 0; C < Headers.size(); ++C) {
    Out += ' ';
    EmitCell(Out, Headers[C], C);
    Out += " |";
  }
  Out += "\n";
  EmitSeparator(Out);
  for (const Row &R : Rows) {
    if (R.IsSeparator) {
      EmitSeparator(Out);
      continue;
    }
    Out += "|";
    for (size_t C = 0; C < R.Cells.size(); ++C) {
      Out += ' ';
      EmitCell(Out, R.Cells[C], C);
      Out += " |";
    }
    Out += "\n";
  }
  EmitSeparator(Out);
  return Out;
}

void Table::print() const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), stdout);
}

std::string Table::withCommas(int64_t Value) {
  bool Negative = Value < 0;
  uint64_t Magnitude = Negative ? uint64_t(-(Value + 1)) + 1 : uint64_t(Value);
  std::string Digits = std::to_string(Magnitude);
  std::string Out;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Out += ',';
    Out += *It;
    ++Count;
  }
  if (Negative)
    Out += '-';
  return std::string(Out.rbegin(), Out.rend());
}

std::string Table::fixed(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string Table::pctImprovement(double Old, double New) {
  if (Old == 0)
    return "0";
  double Pct = 100.0 * (Old - New) / Old;
  return std::to_string(int64_t(std::llround(Pct)));
}
