//===- opt/Optimizer.h - Classic loop optimizations ------------*- C++ -*-===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scalar optimizer that sits in front of the register allocator,
/// modeling the paper's compilation pipeline: "our front-end and
/// optimizer rely on the code generator doing a good job of global
/// register allocation" (Section 1). Two classic transformations:
///
///  * loop-invariant code motion — pure, single-def computations whose
///    operands are defined outside a loop move to a freshly inserted
///    preheader;
///  * strength reduction — multiplications and additions of a basic
///    induction variable become new induction variables updated in
///    lock-step.
///
/// Both lengthen live ranges and raise register pressure, which is what
/// the 1989 evaluation machines actually presented to the allocator
/// ("after optimization, there are about a dozen long live ranges...").
///
//===----------------------------------------------------------------------===//

#ifndef RA_OPT_OPTIMIZER_H
#define RA_OPT_OPTIMIZER_H

#include "ir/Function.h"

namespace ra {

/// Statistics from one optimizer run.
struct OptStats {
  unsigned PreheadersInserted = 0;
  unsigned InstructionsHoisted = 0;
  unsigned IVsCreated = 0;     ///< strength-reduced induction variables
  unsigned ValuesNumbered = 0; ///< redundant computations replaced
};

/// Inserts a preheader block before every natural-loop header that has
/// entry edges from outside the loop (skipping headers that are the
/// function entry). Returns the number of blocks inserted.
unsigned insertPreheaders(Function &F);

/// Loop-invariant code motion. Requires preheaders (inserts them).
unsigned hoistLoopInvariants(Function &F);

/// Strength reduction of mulI/addI/add over basic induction variables.
/// Requires preheaders (inserts them).
unsigned reduceStrength(Function &F);

/// Local (per-block) value numbering: replaces a pure computation whose
/// operands carry the same value numbers as an earlier one in the block
/// with a copy of the earlier result. Returns replacements made. Copies
/// propagate value numbers, so chains collapse; the allocator's
/// coalescer later folds the copies away.
unsigned localValueNumbering(Function &F);

/// Removes pure instructions whose results are never used, iterating to
/// a fixpoint (removals expose further dead code). Returns the number
/// of instructions deleted. Memory operations, spill traffic, and
/// potentially trapping operations are never removed.
unsigned eliminateDeadCode(Function &F);

/// The standard pipeline: preheaders, then LICM and strength reduction
/// to a combined fixpoint (each enables more of the other).
OptStats optimizeFunction(Function &F);

} // namespace ra

#endif // RA_OPT_OPTIMIZER_H
