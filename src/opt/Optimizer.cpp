//===- opt/Optimizer.cpp - Classic loop optimizations ---------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

using namespace ra;

namespace {

/// Redirects every block operand equal to \p From in \p I to \p To.
void retargetTerminator(Instruction &I, uint32_t From, uint32_t To) {
  for (Operand &O : I.Ops)
    if (O.isBlock() && O.Block == From)
      O = Operand::block(To);
}

/// True iff \p P already acts as a preheader for \p Header: its only
/// instruction is an unconditional jump to the header.
bool isPreheader(const Function &F, uint32_t P, uint32_t Header) {
  const BasicBlock &B = F.block(P);
  return B.Insts.size() >= 1 && B.Insts.back().Op == Opcode::Jmp &&
         B.Insts.back().Ops[0].Block == Header;
}

/// Per-function bookkeeping shared by LICM and strength reduction.
struct DefInfo {
  std::vector<uint32_t> DefCount; ///< total defs per vreg

  explicit DefInfo(const Function &F) {
    DefCount.assign(F.numVRegs(), 0);
    for (const BasicBlock &B : F.blocks())
      for (const Instruction &I : B.Insts)
        if (I.hasDef())
          ++DefCount[I.defReg()];
  }
};

/// Opcodes that may move or be replicated speculatively: pure and
/// trap-free. FSqrt traps on negative input, Div/Rem on zero, and loads
/// observe memory, so none of those belong here.
bool isSpeculatable(Opcode Op) {
  switch (Op) {
  case Opcode::MovI:
  case Opcode::MovF:
  case Opcode::Copy:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::AddI:
  case Opcode::MulI:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::FAbs:
  case Opcode::IToF:
  case Opcode::FToI:
    return true;
  default:
    return false;
  }
}

/// Loops sorted innermost-first (body size ascending), with preheader
/// and membership lookups.
struct LoopWork {
  Loop L;
  uint32_t Preheader = ~0u;
  std::vector<bool> InLoop; // indexed by block id
};

std::vector<LoopWork> collectLoops(Function &F) {
  CFG G = CFG::compute(F);
  Dominators D = Dominators::compute(F, G);
  LoopInfo LI = LoopInfo::compute(F, G, D);

  std::vector<LoopWork> Work;
  for (const Loop &L : LI.loops()) {
    if (L.Header == F.entry())
      continue; // cannot place a preheader before the entry
    LoopWork W;
    W.L = L;
    W.InLoop.assign(F.numBlocks(), false);
    for (uint32_t B : L.Blocks)
      W.InLoop[B] = true;
    // The preheader is the unique outside predecessor ending in an
    // unconditional jump (insertPreheaders guarantees it exists).
    for (uint32_t P : G.preds(L.Header))
      if (!W.InLoop[P] && isPreheader(F, P, L.Header)) {
        W.Preheader = P;
        break;
      }
    Work.push_back(std::move(W));
  }
  std::sort(Work.begin(), Work.end(),
            [](const LoopWork &A, const LoopWork &B) {
              return A.L.Blocks.size() < B.L.Blocks.size();
            });
  return Work;
}

} // namespace

unsigned ra::insertPreheaders(Function &F) {
  CFG G = CFG::compute(F);
  Dominators D = Dominators::compute(F, G);
  LoopInfo LI = LoopInfo::compute(F, G, D);

  unsigned Inserted = 0;
  for (const Loop &L : LI.loops()) {
    if (L.Header == F.entry())
      continue;
    std::vector<bool> InLoop(F.numBlocks(), false);
    for (uint32_t B : L.Blocks)
      InLoop[B] = true;

    std::vector<uint32_t> Entries;
    for (uint32_t P : G.preds(L.Header))
      if (!InLoop[P])
        Entries.push_back(P);
    if (Entries.size() == 1 && isPreheader(F, Entries[0], L.Header) &&
        F.block(Entries[0]).successors().size() == 1)
      continue; // already has one

    uint32_t Pre = F.newBlock(F.block(L.Header).Name + ".pre");
    for (uint32_t E : Entries)
      retargetTerminator(F.block(E).Insts.back(), L.Header, Pre);
    F.block(Pre).Insts.push_back(
        {Opcode::Jmp, {Operand::block(L.Header)}});
    ++Inserted;
  }
  return Inserted;
}

unsigned ra::hoistLoopInvariants(Function &F) {
  insertPreheaders(F);
  std::vector<LoopWork> Loops = collectLoops(F);
  DefInfo DI(F);
  unsigned Hoisted = 0;

  for (LoopWork &W : Loops) {
    if (W.Preheader == ~0u)
      continue;
    // Defs located inside this loop, per vreg.
    std::vector<uint32_t> DefsInLoop(F.numVRegs(), 0);
    for (uint32_t BId : W.L.Blocks)
      for (const Instruction &I : F.block(BId).Insts)
        if (I.hasDef())
          ++DefsInLoop[I.defReg()];

    BasicBlock &Pre = F.block(W.Preheader);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t BId : W.L.Blocks) {
        BasicBlock &B = F.block(BId);
        for (unsigned Idx = 0; Idx < B.Insts.size();) {
          Instruction &I = B.Insts[Idx];
          bool CanHoist = isSpeculatable(I.Op) && I.hasDef() &&
                          DI.DefCount[I.defReg()] == 1;
          if (CanHoist)
            I.forEachUse([&](VRegId R) {
              if (DefsInLoop[R] != 0)
                CanHoist = false;
            });
          if (!CanHoist) {
            ++Idx;
            continue;
          }
          // Move before the preheader's terminator.
          DefsInLoop[I.defReg()] = 0;
          Pre.Insts.insert(Pre.Insts.end() - 1, I);
          B.Insts.erase(B.Insts.begin() + Idx);
          ++Hoisted;
          Changed = true;
        }
      }
    }
  }
  return Hoisted;
}

unsigned ra::reduceStrength(Function &F) {
  insertPreheaders(F);
  std::vector<LoopWork> Loops = collectLoops(F);
  DefInfo DI(F);
  unsigned Created = 0;

  for (LoopWork &W : Loops) {
    if (W.Preheader == ~0u)
      continue;
    std::vector<uint32_t> DefsInLoop(F.numVRegs(), 0);
    for (uint32_t BId : W.L.Blocks)
      for (const Instruction &I : F.block(BId).Insts)
        if (I.hasDef())
          ++DefsInLoop[I.defReg()];

    // Basic induction variables: exactly two defs in total, exactly one
    // inside the loop, of the form v = addI(v, step).
    struct BasicIV {
      int64_t Step = 0;
      uint32_t IncBlock = 0;
      unsigned IncIdx = 0;
    };
    std::vector<int32_t> IVIndex(F.numVRegs(), -1);
    std::vector<BasicIV> IVs;
    for (uint32_t BId : W.L.Blocks) {
      BasicBlock &B = F.block(BId);
      for (unsigned Idx = 0; Idx < B.Insts.size(); ++Idx) {
        const Instruction &I = B.Insts[Idx];
        if (I.Op != Opcode::AddI || !I.Ops[1].isReg())
          continue;
        VRegId V = I.defReg();
        if (I.Ops[1].Reg != V || DI.DefCount[V] != 2 ||
            DefsInLoop[V] != 1)
          continue;
        IVIndex[V] = int32_t(IVs.size());
        IVs.push_back({I.Ops[2].Imm, BId, Idx});
      }
    }
    if (IVs.empty())
      continue;

    // Derived-IV candidates: x = mulI(v, m) | addI(v, k) | add(v, w)
    // with v a basic IV, x single-def, and w loop-invariant.
    struct NewIV {
      VRegId Reg;            ///< the fresh induction register
      Instruction Init;      ///< placed in the preheader
      unsigned BasicIdx;     ///< which basic IV drives it
      int64_t Step;          ///< increment per basic-IV step
    };
    std::vector<NewIV> NewIVs;

    for (uint32_t BId : W.L.Blocks) {
      BasicBlock &B = F.block(BId);
      for (Instruction &I : B.Insts) {
        if (!I.hasDef())
          continue;
        VRegId X = I.defReg();
        if (DI.DefCount[X] != 1)
          continue;
        VRegId V = InvalidVReg;
        int64_t Step = 0;
        Instruction Init;
        if (I.Op == Opcode::MulI && IVIndex[I.Ops[1].Reg] >= 0) {
          V = I.Ops[1].Reg;
          Step = IVs[IVIndex[V]].Step * I.Ops[2].Imm;
          Init = I;
        } else if (I.Op == Opcode::AddI && I.Ops[1].isReg() &&
                   IVIndex[I.Ops[1].Reg] >= 0) {
          V = I.Ops[1].Reg;
          Step = IVs[IVIndex[V]].Step;
          Init = I;
        } else if (I.Op == Opcode::Add) {
          VRegId A = I.Ops[1].Reg, Bv = I.Ops[2].Reg;
          if (IVIndex[A] >= 0 && DefsInLoop[Bv] == 0) {
            V = A;
          } else if (IVIndex[Bv] >= 0 && DefsInLoop[A] == 0) {
            V = Bv;
          }
          if (V != InvalidVReg) {
            Step = IVs[IVIndex[V]].Step;
            Init = I;
          }
        }
        if (V == InvalidVReg || X == V)
          continue;

        VRegId Fresh =
            F.newVReg(RegClass::Int, F.vreg(X).Name + ".iv");
        Init.setDefReg(Fresh);
        NewIVs.push_back({Fresh, Init, unsigned(IVIndex[V]), Step});
        // The original computation becomes a copy off the new IV
        // (coalescing will fold it away).
        I = Instruction{Opcode::Copy,
                        {Operand::reg(X), Operand::reg(Fresh)}};
        ++Created;
      }
    }

    if (NewIVs.empty())
      continue;

    // Emit initializers in the preheader.
    BasicBlock &Pre = F.block(W.Preheader);
    for (const NewIV &N : NewIVs)
      Pre.Insts.insert(Pre.Insts.end() - 1, N.Init);

    // Emit increments immediately after each basic IV's increment.
    // Group per basic IV so a single rebuild per block suffices.
    for (uint32_t BId : W.L.Blocks) {
      BasicBlock &B = F.block(BId);
      std::vector<Instruction> Rebuilt;
      Rebuilt.reserve(B.Insts.size() + NewIVs.size());
      for (unsigned Idx = 0; Idx < B.Insts.size(); ++Idx) {
        Rebuilt.push_back(B.Insts[Idx]);
        for (const NewIV &N : NewIVs) {
          const BasicIV &IV = IVs[N.BasicIdx];
          if (IV.IncBlock == BId && IV.IncIdx == Idx)
            Rebuilt.push_back(
                {Opcode::AddI,
                 {Operand::reg(N.Reg), Operand::reg(N.Reg),
                  Operand::intImm(N.Step)}});
        }
      }
      B.Insts = std::move(Rebuilt);
    }
  }
  return Created;
}

unsigned ra::localValueNumbering(Function &F) {
  unsigned Replaced = 0;

  // A value number per vreg, strictly per block: numbers must never
  // leak across blocks (a branch may have redefined the register on
  // another path), so entries are invalidated by an epoch stamp at
  // every block boundary.
  std::vector<uint32_t> VN(F.numVRegs(), 0);
  std::vector<uint32_t> Epoch(F.numVRegs(), 0);
  uint32_t CurEpoch = 0;
  uint32_t NextVN = 0;
  auto NumberOf = [&](VRegId R) {
    if (Epoch[R] != CurEpoch) {
      Epoch[R] = CurEpoch;
      VN[R] = NextVN++;
    }
    return VN[R];
  };
  auto SetNumber = [&](VRegId R, uint32_t N) {
    Epoch[R] = CurEpoch;
    VN[R] = N;
  };

  // Expression key: opcode + operand value descriptors, packed into a
  // small vector so it can key a map.
  using Key = std::vector<uint64_t>;
  struct Available {
    VRegId Dst;
    uint32_t DstVN;
  };

  for (BasicBlock &B : F.blocks()) {
    ++CurEpoch;
    std::map<Key, Available> Table;
    for (Instruction &I : B.Insts) {
      if (!I.hasDef()) {
        // Uses still consume value numbers lazily; nothing else to do.
        continue;
      }
      VRegId Dst = I.defReg();

      // Copies propagate the source's number (no new value created).
      if (I.isCopy()) {
        SetNumber(Dst, NumberOf(I.Ops[1].Reg));
        continue;
      }

      if (!isSpeculatable(I.Op)) {
        SetNumber(Dst, NextVN++); // loads, div/rem, sqrt: always fresh
        continue;
      }

      Key K;
      K.push_back(uint64_t(I.Op));
      std::vector<uint64_t> OperandIds;
      for (unsigned Idx = 1; Idx < I.Ops.size(); ++Idx) {
        const Operand &O = I.Ops[Idx];
        switch (O.K) {
        case Operand::Kind::Reg:
          OperandIds.push_back((uint64_t(1) << 60) | NumberOf(O.Reg));
          break;
        case Operand::Kind::IntImm:
          OperandIds.push_back((uint64_t(2) << 60) |
                               (uint64_t(O.Imm) & 0x0FFFFFFFFFFFFFFFull));
          break;
        case Operand::Kind::FloatImm: {
          uint64_t Bits;
          static_assert(sizeof(Bits) == sizeof(O.FImm));
          std::memcpy(&Bits, &O.FImm, sizeof(Bits));
          OperandIds.push_back(Bits);
          break;
        }
        default:
          OperandIds.push_back(0);
        }
      }
      // Commutative operations match in either operand order.
      switch (I.Op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::FAdd:
      case Opcode::FMul:
        std::sort(OperandIds.begin(), OperandIds.end());
        break;
      default:
        break;
      }
      K.insert(K.end(), OperandIds.begin(), OperandIds.end());

      auto It = Table.find(K);
      if (It != Table.end() && NumberOf(It->second.Dst) == It->second.DstVN &&
          It->second.Dst != Dst) {
        // Same value already available: reuse it through a copy.
        I = Instruction{Opcode::Copy,
                        {Operand::reg(Dst), Operand::reg(It->second.Dst)}};
        SetNumber(Dst, It->second.DstVN);
        ++Replaced;
        continue;
      }
      uint32_t NewVN = NextVN++;
      SetNumber(Dst, NewVN);
      Table[K] = {Dst, NewVN};
    }
  }
  return Replaced;
}

unsigned ra::eliminateDeadCode(Function &F) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<uint32_t> UseCount(F.numVRegs(), 0);
    for (const BasicBlock &B : F.blocks())
      for (const Instruction &I : B.Insts)
        I.forEachUse([&](VRegId R) { ++UseCount[R]; });
    for (BasicBlock &B : F.blocks()) {
      auto IsDead = [&](const Instruction &I) {
        return I.hasDef() && isSpeculatable(I.Op) &&
               I.Op != Opcode::SpillLd && UseCount[I.defReg()] == 0;
      };
      unsigned Before = B.Insts.size();
      std::erase_if(B.Insts, IsDead);
      unsigned Delta = Before - B.Insts.size();
      Removed += Delta;
      Changed |= Delta != 0;
    }
  }
  return Removed;
}

OptStats ra::optimizeFunction(Function &F) {
  OptStats S;
  S.PreheadersInserted = insertPreheaders(F);
  S.ValuesNumbered = localValueNumbering(F);
  // LICM and strength reduction enable one another (hoisted operands
  // make more IV candidates invariant and vice versa); two rounds reach
  // the fixpoint on everything in the workload suite.
  for (int Round = 0; Round < 2; ++Round) {
    S.InstructionsHoisted += hoistLoopInvariants(F);
    S.IVsCreated += reduceStrength(F);
  }
  eliminateDeadCode(F);
  return S;
}
