//===- tests/MegaKernelTest.cpp - generated giant-function family ---------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The mega-kernel contract: every generated shape is verifier-clean,
// reaches its advertised live-range scale, allocates with a clean audit,
// computes the same answers before and after allocation, and colors
// identically under the sequential and parallel Select engines.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "regalloc/Allocator.h"
#include "regalloc/Coloring.h"
#include "sim/Simulator.h"
#include "workloads/MegaKernel.h"

#include <gtest/gtest.h>

#include <set>

using namespace ra;

namespace {

/// Total interference-graph nodes across both register classes.
unsigned totalNodes(std::array<ClassGraph, NumRegClasses> &Graphs) {
  unsigned N = 0;
  for (ClassGraph &CG : Graphs)
    N += CG.Graph.numNodes();
  return N;
}

TEST(MegaKernelTest, FamiliesAreWellFormedAndUniquelyNamed) {
  std::set<std::string> Names;
  for (const auto *Family : {&megaKernelFamily(), &megaKernelTestFamily()})
    for (const MegaKernel &MK : *Family) {
      EXPECT_TRUE(Names.insert(MK.Name).second)
          << "duplicate name " << MK.Name;
      EXPECT_TRUE(MK.Kind == "ramp" || MK.Kind == "wide" ||
                  MK.Kind == "random")
          << MK.Name;
      EXPECT_TRUE(MK.Build != nullptr) << MK.Name;
    }
}

TEST(MegaKernelTest, TestFamilyVerifiesAndReachesScale) {
  for (const MegaKernel &MK : megaKernelTestFamily()) {
    Module M;
    Function &F = MK.Build(M);
    EXPECT_TRUE(verifyFunction(M, F).empty()) << MK.Name;
    auto Graphs = buildColoringGraphs(F);
    // "A few thousand ranges": enough to clear the default parallel
    // gate, small enough for millisecond tests.
    EXPECT_GE(totalNodes(Graphs), 1000u) << MK.Name;
  }
}

TEST(MegaKernelTest, BenchFamilyHitsTenThousandRanges) {
  // Only the smallest bench member is built here — the 50k ramp's
  // triangular bit matrix alone costs ~150 MB and belongs in the bench
  // binary, not the test suite.
  Module M;
  Function &F = megaKernelFamily()[0].Build(M);
  EXPECT_TRUE(verifyFunction(M, F).empty());
  auto Graphs = buildColoringGraphs(F);
  EXPECT_GE(totalNodes(Graphs), 10000u)
      << "mega.ramp.10k must reach its advertised scale";
}

TEST(MegaKernelTest, ParallelSelectMatchesSequentialOnEveryShape) {
  for (const MegaKernel &MK : megaKernelTestFamily()) {
    Module M;
    Function &F = MK.Build(M);
    auto Graphs = buildColoringGraphs(F);
    for (ClassGraph &CG : Graphs) {
      if (CG.Graph.numNodes() == 0)
        continue;
      // K=6 is tight enough that the ramp/wide shapes spill, so the
      // spill-order path is compared too, not just clean colorings.
      ColoringResult Seq = colorGraph(CG.Graph, 6, Heuristic::Briggs);
      SelectOptions SO;
      SO.Parallel = true;
      SO.Threads = 4;
      SO.MinNodes = 0;
      ColoringResult Par = colorGraph(CG.Graph, 6, Heuristic::Briggs, SO);
      EXPECT_EQ(Seq.ColorOf, Par.ColorOf) << MK.Name;
      EXPECT_EQ(Seq.Spilled, Par.Spilled) << MK.Name;
      EXPECT_EQ(Seq.SpilledCost, Par.SpilledCost) << MK.Name;
    }
  }
}

TEST(MegaKernelTest, AllocatesAuditCleanAndComputesSameAnswers) {
  for (const MegaKernel &MK : megaKernelTestFamily()) {
    Module M;
    Function &F = MK.Build(M);

    // Golden answer from the virtual-register program.
    double Golden;
    {
      Simulator Sim(M);
      MemoryImage Mem(M);
      ExecutionResult R = Sim.runVirtual(F, Mem);
      ASSERT_TRUE(R.Ok) << MK.Name << ": " << R.Error;
      Golden = R.FloatReturn;
      EXPECT_TRUE(std::isfinite(Golden))
          << MK.Name << ": bounded-combine construction violated";
    }

    AllocatorConfig C;
    C.Audit = true;
    C.ParallelGraph = true;
    C.ParallelGraphMinNodes = 0;
    C.ParallelGraphJobs = 3;
    AllocationResult A = allocateRegisters(F, C);
    ASSERT_TRUE(A.Success) << MK.Name;
    EXPECT_EQ(A.Outcome, AllocOutcome::Converged)
        << MK.Name << ": parallel select failed the audit";

    Simulator Sim(M);
    MemoryImage Mem(M);
    ExecutionResult R = Sim.runAllocated(F, A, Mem);
    ASSERT_TRUE(R.Ok) << MK.Name << ": " << R.Error;
    EXPECT_EQ(R.FloatReturn, Golden) << MK.Name;
  }
}

} // namespace
