//===- tests/RegallocTest.cpp - graph build/coalesce/spill/driver tests ---===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "regalloc/BuildGraph.h"
#include "regalloc/Coalesce.h"
#include "regalloc/GraphDump.h"
#include "regalloc/SpillCost.h"
#include "regalloc/SpillInserter.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

//===--------------------------------------------------------------------===//
// Interference graph construction.
//===--------------------------------------------------------------------===//

TEST(BuildGraphTest, StraightLineInterferences) {
  // a = 1; b = 2; c = a + b; d = a + c; ret d
  // a interferes with b and c; b with a (dies at c); c with a.
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId A = B.movI(1);
  VRegId Bv = B.movI(2);
  VRegId C = B.add(A, Bv);
  VRegId D = B.add(A, C);
  B.ret(D);

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  auto Graphs = buildInterferenceGraphs(F, LV);
  const ClassGraph &IG = Graphs[unsigned(RegClass::Int)];
  auto Interferes = [&](VRegId X, VRegId Y) {
    return IG.Graph.interferes(IG.VRegToNode[X], IG.VRegToNode[Y]);
  };
  EXPECT_TRUE(Interferes(A, Bv));
  EXPECT_TRUE(Interferes(A, C));
  EXPECT_FALSE(Interferes(Bv, C)) << "b dies as c is defined";
  EXPECT_FALSE(Interferes(A, D)) << "a dies as d is defined";
  EXPECT_EQ(IG.Graph.numEdges(), 2u);
}

TEST(BuildGraphTest, CopySourceDoesNotInterfere) {
  // b = copy a; both used later -> they do interfere only if a is used
  // after the copy. Here a dies at the copy: no edge (Chaitin's rule).
  Module M;
  uint32_t Arr = M.newArray("arr", 4, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId A = B.movI(7);
  VRegId Bv = B.copy(A);
  B.store(Arr, Zero, Bv);
  B.ret();

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  auto Graphs = buildInterferenceGraphs(F, LV);
  const ClassGraph &IG = Graphs[unsigned(RegClass::Int)];
  EXPECT_FALSE(
      IG.Graph.interferes(IG.VRegToNode[A], IG.VRegToNode[Bv]));
}

TEST(BuildGraphTest, ClassesNeverInterfere) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId I1 = B.movI(1);
  VRegId F1 = B.movF(1.0);
  VRegId I2 = B.addI(I1, 1);
  VRegId F2 = B.fadd(F1, F1);
  B.emit({Opcode::Ret, {Operand::reg(I2)}});
  (void)F2;

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  auto Graphs = buildInterferenceGraphs(F, LV);
  // Each class graph only contains its own registers.
  EXPECT_EQ(Graphs[0].NodeToVReg.size() + Graphs[1].NodeToVReg.size(),
            F.numVRegs());
  for (VRegId R = 0; R < F.numVRegs(); ++R) {
    unsigned Cls = unsigned(F.regClass(R));
    EXPECT_NE(Graphs[Cls].VRegToNode[R], ~0u);
    EXPECT_EQ(Graphs[1 - Cls].VRegToNode[R], ~0u);
  }
}

//===--------------------------------------------------------------------===//
// Spill costs.
//===--------------------------------------------------------------------===//

TEST(SpillCostTest, LoopDepthWeighting) {
  EXPECT_EQ(loopDepthWeight(0), 1.0);
  EXPECT_EQ(loopDepthWeight(1), 10.0);
  EXPECT_EQ(loopDepthWeight(3), 1000.0);

  // x defined outside a loop (1 store) and used once inside (1 load at
  // depth 1): cost = storeCost*1 + loadCost*10.
  Module M;
  uint32_t Arr = M.newArray("a", 8, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Head = B.newBlock("head");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  VRegId X = B.movI(9);
  VRegId I = B.iReg("i");
  VRegId N = B.movI(4);
  B.movI(0, I);
  B.jmp(Head);
  B.setInsertPoint(Head);
  B.br(CmpKind::LT, I, N, Body, Exit);
  B.setInsertPoint(Body);
  B.store(Arr, I, X);
  B.addI(I, 1, I);
  B.jmp(Head);
  B.setInsertPoint(Exit);
  B.ret();

  CFG G = CFG::compute(F);
  Dominators D = Dominators::compute(F, G);
  LoopInfo LI = LoopInfo::compute(F, G, D);
  CostModel CM = CostModel::rtpc();
  std::vector<double> Costs = computeSpillCosts(F, LI, CM);
  EXPECT_EQ(Costs[X], CM.spillStoreCost() * 1.0 + CM.spillLoadCost() * 10.0);
}

TEST(SpillCostTest, SpillTempsAreInfinite) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId T = F.newVReg(RegClass::Int, "t", /*IsSpillTemp=*/true);
  B.movI(0, T);
  B.ret(T);
  CFG G = CFG::compute(F);
  Dominators D = Dominators::compute(F, G);
  LoopInfo LI = LoopInfo::compute(F, G, D);
  std::vector<double> Costs =
      computeSpillCosts(F, LI, CostModel::rtpc());
  EXPECT_EQ(Costs[T], InterferenceGraph::InfiniteCost);
}

//===--------------------------------------------------------------------===//
// Coalescing.
//===--------------------------------------------------------------------===//

TEST(CoalesceTest, MergesNonInterferingCopy) {
  Module M;
  uint32_t Arr = M.newArray("arr", 4, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId A = B.movI(7);
  VRegId Bv = B.copy(A); // a dies here: coalescable
  B.store(Arr, Zero, Bv);
  B.ret();

  unsigned InstsBefore = F.numInstructions();
  CFG G = CFG::compute(F);
  CoalesceStats S = coalesceAll(F, G);
  EXPECT_EQ(S.CopiesRemoved, 1u);
  EXPECT_EQ(F.numInstructions(), InstsBefore - 1);
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(CoalesceTest, KeepsInterferingCopy) {
  Module M;
  uint32_t Arr = M.newArray("arr", 4, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId A = B.movI(7);
  VRegId Bv = B.copy(A);
  B.addI(Bv, 1, Bv);      // b changes while a still live
  B.store(Arr, Zero, A);  // a used after the copy -> interference
  B.store(Arr, Zero, Bv);
  B.ret();

  CFG G = CFG::compute(F);
  CoalesceStats S = coalesceAll(F, G);
  EXPECT_EQ(S.CopiesRemoved, 0u)
      << "interfering copy must not be merged";
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(CoalesceTest, ChainsConvergeAcrossRounds) {
  // c = copy b = copy a, all dead after their single use: both merge,
  // possibly across rounds.
  Module M;
  uint32_t Arr = M.newArray("arr", 4, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId A = B.movI(7);
  VRegId Bv = B.copy(A);
  VRegId C = B.copy(Bv);
  B.store(Arr, Zero, C);
  B.ret();

  CFG G = CFG::compute(F);
  CoalesceStats S = coalesceAll(F, G);
  EXPECT_EQ(S.CopiesRemoved, 2u);
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(CoalesceTest, PreservesSemanticsOnWorkloads) {
  for (const char *Name : {"SVD", "DMXPY", "SIMPLEX", "QUICKSORT"}) {
    Module M;
    Function *F;
    const Workload *W = findWorkload(Name);
    if (W) {
      F = &W->Build(M);
    } else {
      F = &buildQuicksort(M, 500);
    }
    Simulator Sim(M);
    MemoryImage Golden(M);
    if (W)
      W->Init(M, Golden);
    else
      initQuicksortMemory(M, Golden);
    ExecutionResult G1 = Sim.runVirtual(*F, Golden);
    ASSERT_TRUE(G1.Ok) << Name;

    CFG G = CFG::compute(*F);
    coalesceAll(*F, G);
    ASSERT_TRUE(verifyFunction(M, *F).empty()) << Name;

    MemoryImage Mem(M);
    if (W)
      W->Init(M, Mem);
    else
      initQuicksortMemory(M, Mem);
    ExecutionResult R = Sim.runVirtual(*F, Mem);
    ASSERT_TRUE(R.Ok) << Name;
    EXPECT_TRUE(Mem == Golden) << Name;
  }
}

//===--------------------------------------------------------------------===//
// Spill-code insertion.
//===--------------------------------------------------------------------===//

TEST(SpillInserterTest, InsertsStoresAfterDefsAndLoadsBeforeUses) {
  Module M;
  uint32_t Arr = M.newArray("arr", 4, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId X = B.movI(7);     // def of x -> store after
  VRegId Y = B.addI(X, 1);  // use of x -> load before
  B.store(Arr, Zero, Y);
  B.store(Arr, Zero, X);    // second use -> second load
  B.ret();

  SpillCodeStats S = insertSpillCode(F, std::vector<VRegId>{X});
  EXPECT_EQ(S.Stores, 1u);
  EXPECT_EQ(S.Loads, 2u);
  EXPECT_EQ(F.numSpillSlots(), 1u);
  EXPECT_TRUE(verifyFunction(M, F).empty());

  // Every new temp is flagged as a spill temp.
  unsigned Temps = 0;
  for (VRegId R = 0; R < F.numVRegs(); ++R)
    if (F.vreg(R).IsSpillTemp)
      ++Temps;
  EXPECT_EQ(Temps, 3u);

  // Semantics preserved: arr[0] must end as 7.
  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(Mem.intArray(Arr)[0], 7);
}

TEST(SpillInserterTest, SharedRestoreForRepeatedUseInOneInstruction) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId X = B.movI(21);
  VRegId Y = B.add(X, X); // two uses of x in one instruction
  B.ret(Y);

  SpillCodeStats S = insertSpillCode(F, std::vector<VRegId>{X});
  EXPECT_EQ(S.Loads, 1u) << "one restore serves both operands";
  EXPECT_EQ(S.Stores, 1u);

  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.IntReturn, 42);
}

TEST(SpillInserterTest, SuffixRequestWithNoUsesInRegionIsDemoted) {
  // A suffix region past the last textual use would get a store-only
  // rewrite that changes nothing the allocator sees — the classic
  // back-edge livelock. The inserter must demote such requests to
  // whole-lifetime spills so the vreg actually retires.
  auto Build = [](Module &M, uint32_t &Arr, VRegId &X) -> Function & {
    Arr = M.newArray("arr", 4, RegClass::Int);
    Function &F = M.newFunction("f");
    IRBuilder B(M, F);
    B.setInsertPoint(B.newBlock("entry"));
    VRegId Zero = B.movI(0);
    X = B.movI(7);           // write slot 3
    VRegId Y = B.addI(X, 1); // read slot 4 — X's last use
    B.store(Arr, Zero, Y);
    B.ret();
    return F;
  };

  // Region [6, end) holds no uses of X: demoted, and the rewrite is
  // exactly the whole-lifetime one (store after the def, load at the
  // pre-region use).
  {
    Module M;
    uint32_t Arr;
    VRegId X;
    Function &F = Build(M, Arr, X);
    SpillCodeStats S =
        insertSpillCode(F, std::vector<SpillRequest>{{X, 6}});
    EXPECT_EQ(S.Demoted, 1u);
    EXPECT_EQ(S.Stores, 1u);
    EXPECT_EQ(S.Loads, 1u);
    EXPECT_TRUE(verifyFunction(M, F).empty());

    Simulator Sim(M);
    MemoryImage Mem(M);
    ExecutionResult R = Sim.runVirtual(F, Mem);
    ASSERT_TRUE(R.Ok);
    EXPECT_EQ(Mem.intArray(Arr)[0], 8);
  }

  // Region [4, end) covers the use: a genuine suffix spill, no
  // demotion.
  {
    Module M;
    uint32_t Arr;
    VRegId X;
    Function &F = Build(M, Arr, X);
    SpillCodeStats S =
        insertSpillCode(F, std::vector<SpillRequest>{{X, 4}});
    EXPECT_EQ(S.Demoted, 0u);
    EXPECT_EQ(S.Stores, 1u);
    EXPECT_EQ(S.Loads, 1u);
    EXPECT_TRUE(verifyFunction(M, F).empty());

    Simulator Sim(M);
    MemoryImage Mem(M);
    ExecutionResult R = Sim.runVirtual(F, Mem);
    ASSERT_TRUE(R.Ok);
    EXPECT_EQ(Mem.intArray(Arr)[0], 8);
  }
}

//===--------------------------------------------------------------------===//
// The full driver.
//===--------------------------------------------------------------------===//

TEST(AllocatorTest, BriggsNeverSpillsMoreAcrossTheSuite) {
  for (const Workload &W : allWorkloads()) {
    Module M1, M2;
    Function &F1 = W.Build(M1);
    Function &F2 = W.Build(M2);
    optimizeFunction(F1);
    optimizeFunction(F2);
    AllocatorConfig C1, C2;
    C1.H = Heuristic::Chaitin;
    C2.H = Heuristic::Briggs;
    AllocationResult A1 = allocateRegisters(F1, C1);
    AllocationResult A2 = allocateRegisters(F2, C2);
    ASSERT_TRUE(A1.Success && A2.Success) << W.Routine;
    EXPECT_LE(A2.Stats.firstPassSpills(), A1.Stats.firstPassSpills())
        << W.Routine;
    EXPECT_LE(A2.Stats.firstPassSpillCost() + 1e-9,
              A1.Stats.firstPassSpillCost() + 1e-9)
        << W.Routine;
  }
}

TEST(AllocatorTest, AssignmentRespectsInterference) {
  Module M;
  Function &F = buildSVD(M);
  AllocatorConfig C;
  C.H = Heuristic::Briggs;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success);

  // Rebuild liveness on the final function and check no two
  // simultaneously-live same-class registers share a physical register.
  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  auto Graphs = buildInterferenceGraphs(F, LV);
  for (const ClassGraph &CG : Graphs) {
    for (unsigned N = 0; N < CG.Graph.numNodes(); ++N)
      for (uint32_t Nb : CG.Graph.neighbors(N))
        if (Nb > N)
          EXPECT_NE(A.ColorOf[CG.NodeToVReg[N]],
                    A.ColorOf[CG.NodeToVReg[Nb]]);
  }
  // Every color fits its register file.
  for (VRegId R = 0; R < F.numVRegs(); ++R) {
    ASSERT_GE(A.ColorOf[R], 0);
    EXPECT_LT(unsigned(A.ColorOf[R]), A.Machine.numRegs(F.regClass(R)));
  }
}

TEST(AllocatorTest, PassCountsStaySmall) {
  // The paper: "We have never observed either method needing more than
  // three passes." Allow a little slack for the reconstructions.
  for (const char *Name : {"SVD", "DISSIP", "DMXPY", "GRADNT"}) {
    const Workload *W = findWorkload(Name);
    Module M;
    Function &F = W->Build(M);
    optimizeFunction(F);
    AllocatorConfig C;
    C.H = Heuristic::Briggs;
    AllocationResult A = allocateRegisters(F, C);
    ASSERT_TRUE(A.Success);
    EXPECT_LE(A.Stats.numPasses(), 4u) << Name;
  }
}

TEST(AllocatorTest, StatsAreInternallyConsistent) {
  Module M;
  Function &F = buildDMXPY(M);
  optimizeFunction(F);
  AllocatorConfig C;
  C.H = Heuristic::Chaitin;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success);
  ASSERT_GE(A.Stats.numPasses(), 2u) << "DMXPY must spill";
  unsigned Sum = 0;
  for (const PassRecord &P : A.Stats.Passes) {
    EXPECT_EQ(P.SpilledNames.size(), P.SpilledLiveRanges);
    Sum += P.SpilledLiveRanges;
  }
  EXPECT_EQ(Sum, A.Stats.totalSpills());
  EXPECT_EQ(A.Stats.Passes.back().SpilledLiveRanges, 0u)
      << "the final pass must be spill-free";
  EXPECT_GT(A.Stats.SpillCode.Loads, 0u);
  EXPECT_GT(A.Stats.SpillCode.Stores, 0u);
}

TEST(AllocatorTest, SmallFileStillConverges) {
  Module M;
  Function &F = buildDDOT(M);
  AllocatorConfig C;
  C.H = Heuristic::Briggs;
  C.Machine = MachineInfo(3, 3);
  AllocationResult A = allocateRegisters(F, C);
  EXPECT_TRUE(A.Success) << "minimum legal file must still allocate";
}

} // namespace

//===--------------------------------------------------------------------===//
// Rematerialization (constant spills recomputed, not stored).
//===--------------------------------------------------------------------===//

namespace {

TEST(RematTest, ConstantRangeIsRecomputedNotStored) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId C = B.movI(77); // the spilled constant
  VRegId A = B.addI(C, 1);
  VRegId Sum = B.add(A, C);
  B.ret(Sum);

  SpillCodeStats S = insertSpillCode(F, std::vector<VRegId>{C}, /*Rematerialize=*/true);
  EXPECT_EQ(S.Remats, 1u);
  EXPECT_EQ(S.Loads, 0u);
  EXPECT_EQ(S.Stores, 0u);
  EXPECT_EQ(F.numSpillSlots(), 0u) << "no stack slot for a constant";
  EXPECT_TRUE(verifyFunction(M, F).empty());

  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntReturn, 155);
}

TEST(RematTest, MixedDefinitionsFallBackToMemory) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId X = B.movI(1);
  B.addI(X, 1, X); // second def is not a constant mov
  VRegId Y = B.addI(X, 0);
  B.ret(Y);

  SpillCodeStats S = insertSpillCode(F, std::vector<VRegId>{X}, /*Rematerialize=*/true);
  EXPECT_EQ(S.Remats, 0u);
  EXPECT_GT(S.Stores, 0u);
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(RematTest, DifferentConstantsFallBackToMemory) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Then = B.newBlock("then");
  uint32_t Else = B.newBlock("else");
  uint32_t Join = B.newBlock("join");
  B.setInsertPoint(Entry);
  VRegId A = B.movI(1);
  VRegId Z = B.movI(0);
  B.br(CmpKind::LT, A, Z, Then, Else);
  VRegId X = B.iReg("x");
  B.setInsertPoint(Then);
  B.movI(10, X);
  B.jmp(Join);
  B.setInsertPoint(Else);
  B.movI(20, X); // different constant on the other path
  B.jmp(Join);
  B.setInsertPoint(Join);
  B.ret(X);

  SpillCodeStats S = insertSpillCode(F, std::vector<VRegId>{X}, /*Rematerialize=*/true);
  EXPECT_EQ(S.Remats, 0u)
      << "defs with different constants cannot rematerialize";
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(RematTest, AllocatorEndToEndWithRemat) {
  // The whole driver with rematerialization on: results must match the
  // plain run, with fewer spill instructions executed.
  const Workload *W = findWorkload("DISSIP");
  Module M1, M2;
  Function &F1 = W->Build(M1);
  Function &F2 = W->Build(M2);
  optimizeFunction(F1);
  optimizeFunction(F2);

  AllocatorConfig CPlain, CRemat;
  CPlain.H = CRemat.H = Heuristic::Briggs;
  CRemat.Rematerialize = true;
  AllocationResult A1 = allocateRegisters(F1, CPlain);
  AllocationResult A2 = allocateRegisters(F2, CRemat);
  ASSERT_TRUE(A1.Success && A2.Success);
  EXPECT_GT(A2.Stats.SpillCode.Remats, 0u)
      << "DISSIP spills constant coefficients";

  Simulator S1(M1), S2(M2);
  MemoryImage Mem1(M1), Mem2(M2);
  W->Init(M1, Mem1);
  W->Init(M2, Mem2);
  ExecutionResult R1 = S1.runAllocated(F1, A1, Mem1);
  ExecutionResult R2 = S2.runAllocated(F2, A2, Mem2);
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_TRUE(Mem1 == Mem2) << "rematerialization changed results";
  EXPECT_LT(R2.SpillCycles, R1.SpillCycles)
      << "recomputing constants must beat memory round trips";
}

//===--------------------------------------------------------------------===//
// Local value numbering.
//===--------------------------------------------------------------------===//

TEST(ValueNumberingTest, RemovesRedundantComputation) {
  Module M;
  uint32_t Arr = M.newArray("a", 8, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId X = B.movI(3);
  VRegId Y = B.movI(4);
  VRegId P1 = B.add(X, Y);
  VRegId P2 = B.add(Y, X); // commutative duplicate
  B.store(Arr, B.movI(0), P1);
  B.store(Arr, B.movI(1), P2);
  B.ret();

  unsigned Replaced = localValueNumbering(F);
  EXPECT_GE(Replaced, 1u);
  EXPECT_TRUE(verifyFunction(M, F).empty());

  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(Mem.intArray(Arr)[0], 7);
  EXPECT_EQ(Mem.intArray(Arr)[1], 7);
}

TEST(ValueNumberingTest, RespectsRedefinitions) {
  Module M;
  uint32_t Arr = M.newArray("a", 8, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId X = B.iReg("x");
  B.movI(3, X);
  VRegId One = B.movI(1);
  VRegId P1 = B.add(X, One);
  B.movI(10, X); // x changes
  VRegId P2 = B.add(X, One); // NOT redundant
  B.store(Arr, B.movI(0), P1);
  B.store(Arr, B.movI(1), P2);
  B.ret();

  localValueNumbering(F);
  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(Mem.intArray(Arr)[0], 4);
  EXPECT_EQ(Mem.intArray(Arr)[1], 11);
}

TEST(ValueNumberingTest, NeverReusesLoadsAcrossStores) {
  Module M;
  uint32_t Arr = M.newArray("a", 8, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId L1 = B.load(Arr, Zero);
  B.store(Arr, Zero, B.addI(L1, 5));
  VRegId L2 = B.load(Arr, Zero); // must observe the store
  B.ret(L2);

  localValueNumbering(F);
  Simulator Sim(M);
  MemoryImage Mem(M);
  Mem.intArray(Arr)[0] = 1;
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.IntReturn, 6);
}

} // namespace

//===--------------------------------------------------------------------===//
// Graphviz dump.
//===--------------------------------------------------------------------===//

namespace {

TEST(GraphDumpTest, RendersNodesEdgesAndColors) {
  InterferenceGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.node(0).Name = "w";
  G.node(1).Name = "x";
  G.node(2).Name = "z";
  ColoringResult R = colorGraph(G, 2, Heuristic::Briggs);
  std::string Dot = dumpGraphviz(G, &R, "demo");
  EXPECT_NE(Dot.find("graph \"demo\""), std::string::npos);
  EXPECT_NE(Dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(Dot.find("n1 -- n2;"), std::string::npos);
  EXPECT_EQ(Dot.find("n0 -- n2;"), std::string::npos);
  EXPECT_NE(Dot.find("w\\nr"), std::string::npos) << Dot;

  // Without a result: costs shown instead of registers.
  std::string Plain = dumpGraphviz(G);
  EXPECT_NE(Plain.find("cost"), std::string::npos);
}

TEST(GraphDumpTest, MarksSpilledNodes) {
  // 4-clique at k=2: two nodes spill and must render as boxes.
  InterferenceGraph G(4);
  for (unsigned A = 0; A < 4; ++A)
    for (unsigned B = A + 1; B < 4; ++B)
      G.addEdge(A, B);
  for (unsigned N = 0; N < 4; ++N)
    G.node(N).SpillCost = 1 + N;
  ColoringResult R = colorGraph(G, 2, Heuristic::Briggs);
  std::string Dot = dumpGraphviz(G, &R);
  EXPECT_NE(Dot.find("spilled"), std::string::npos);
  EXPECT_NE(Dot.find("shape=box"), std::string::npos);
}

} // namespace
