//===- tests/IRTest.cpp - IR, printer, parser, verifier tests -------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "sim/Simulator.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

TEST(OpcodeTest, TraitsAreConsistent) {
  EXPECT_TRUE(opcodeHasDef(Opcode::Add));
  EXPECT_TRUE(opcodeHasDef(Opcode::SpillLd));
  EXPECT_FALSE(opcodeHasDef(Opcode::Store));
  EXPECT_FALSE(opcodeHasDef(Opcode::SpillSt));
  EXPECT_FALSE(opcodeHasDef(Opcode::Br));
  EXPECT_TRUE(opcodeIsTerminator(Opcode::Ret));
  EXPECT_TRUE(opcodeIsTerminator(Opcode::Jmp));
  EXPECT_FALSE(opcodeIsTerminator(Opcode::Copy));
  EXPECT_STREQ(opcodeName(Opcode::FSqrt), "fsqrt");
  EXPECT_STREQ(cmpKindName(CmpKind::LE), "le");
}

TEST(OpcodeTest, CmpEvaluation) {
  EXPECT_TRUE(evalCmp(CmpKind::LT, int64_t(1), int64_t(2)));
  EXPECT_FALSE(evalCmp(CmpKind::GT, int64_t(1), int64_t(2)));
  EXPECT_TRUE(evalCmp(CmpKind::GE, 2.0, 2.0));
  EXPECT_TRUE(evalCmp(CmpKind::NE, 1.5, 2.5));
}

TEST(InstructionTest, DefAndUseIteration) {
  Instruction I{Opcode::Add,
                {Operand::reg(5), Operand::reg(6), Operand::reg(7)}};
  EXPECT_EQ(I.defReg(), 5u);
  std::vector<VRegId> Uses;
  I.forEachUse([&](VRegId R) { Uses.push_back(R); });
  EXPECT_EQ(Uses, (std::vector<VRegId>{6, 7}));

  Instruction St{Opcode::Store,
                 {Operand::reg(1), Operand::array(0), Operand::reg(2)}};
  Uses.clear();
  St.forEachUse([&](VRegId R) { Uses.push_back(R); });
  EXPECT_EQ(Uses, (std::vector<VRegId>{1, 2}))
      << "stores use both the value and the index";
}

TEST(FunctionTest, SpillSlots) {
  Function F("f");
  unsigned S0 = F.newSpillSlot(RegClass::Int);
  unsigned S1 = F.newSpillSlot(RegClass::Float);
  EXPECT_EQ(S0, 0u);
  EXPECT_EQ(S1, 1u);
  EXPECT_EQ(F.spillSlotClass(0), RegClass::Int);
  EXPECT_EQ(F.spillSlotClass(1), RegClass::Float);
}

TEST(ModuleTest, ArrayAndFunctionLookup) {
  Module M;
  uint32_t A = M.newArray("data", 16, RegClass::Int);
  EXPECT_EQ(M.findArray("data"), A);
  EXPECT_EQ(M.findArray("nope"), ~0u);
  Function &F = M.newFunction("main");
  EXPECT_EQ(M.findFunction("main"), &F);
  EXPECT_EQ(M.findFunction("other"), nullptr);
}

//===--------------------------------------------------------------------===//
// Parser.
//===--------------------------------------------------------------------===//

TEST(ParserTest, ParsesSmallModule) {
  const char *Text = R"(
    module {
      array @a : int[8]
      func @f {
      block entry:
        %x:int = movi 5
        %y:int = addi %x, 37
        store @a[%x], %y
        %z:int = load @a[%x]
        ret %z
      }
    }
  )";
  Module M;
  std::string Err;
  ASSERT_TRUE(parseModule(Text, M, Err)) << Err;
  ASSERT_EQ(M.numFunctions(), 1u);
  Function &F = M.function(0);
  EXPECT_EQ(F.name(), "f");
  EXPECT_EQ(F.numBlocks(), 1u);
  EXPECT_EQ(F.numInstructions(), 5u);
  EXPECT_TRUE(verifyFunction(M, F).empty());

  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntReturn, 42);
}

TEST(ParserTest, ParsesControlFlowAndFloats) {
  const char *Text = R"(
    module {
      array @v : flt[4]
      func @g {
      block entry:
        %i:int = movi 0
        %n:int = movi 4
        %sum:flt = movf 0.0
        jmp head
      block head:
        br lt %i, %n, body, exit
      block body:
        %x:flt = fload @v[%i]
        %sum:flt = fadd %sum, %x
        %i:int = addi %i, 1
        jmp head
      block exit:
        ret %sum
      }
    }
  )";
  Module M;
  std::string Err;
  ASSERT_TRUE(parseModule(Text, M, Err)) << Err;
  Function &F = M.function(0);
  EXPECT_EQ(F.numBlocks(), 4u);
  EXPECT_TRUE(verifyFunction(M, F).empty());

  Simulator Sim(M);
  MemoryImage Mem(M);
  auto &V = Mem.floatArray(0);
  V = {1.5, 2.0, 3.0, 4.0};
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.FloatReturn, 10.5);
}

struct ParserErrorCase {
  const char *Name;
  const char *Text;
  const char *ExpectInMessage;
};

class ParserErrors : public ::testing::TestWithParam<ParserErrorCase> {};

TEST_P(ParserErrors, RejectsWithDiagnostic) {
  Module M;
  std::string Err;
  EXPECT_FALSE(parseModule(GetParam().Text, M, Err));
  EXPECT_NE(Err.find(GetParam().ExpectInMessage), std::string::npos)
      << "actual: " << Err;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        ParserErrorCase{"MissingModule", "func @f {}", "expected 'module'"},
        ParserErrorCase{"UnknownOpcode",
                        "module { func @f { block e: frobnicate } }",
                        "unknown opcode"},
        ParserErrorCase{"UndefinedRegister",
                        "module { func @f { block e: ret %x } }",
                        "undefined register"},
        ParserErrorCase{"UnknownArray",
                        "module { func @f { block e: %x:int = load "
                        "@a[%x] ret } }",
                        "unknown array"},
        ParserErrorCase{"UnknownBlock",
                        "module { func @f { block e: jmp nowhere } }",
                        "unknown block"},
        ParserErrorCase{"ClassMismatch",
                        "module { func @f { block e: %x:int = movi 1\n"
                        "%x:flt = movf 1.0\nret } }",
                        "different class"},
        ParserErrorCase{"DuplicateArray",
                        "module { array @a : int[1] array @a : int[2] }",
                        "duplicate array"},
        ParserErrorCase{"DefOnVoidOp",
                        "module { func @f { block e: %x:int = ret } }",
                        "does not produce a value"}),
    [](const auto &Info) { return std::string(Info.param.Name); });

//===--------------------------------------------------------------------===//
// Printer round-trips.
//===--------------------------------------------------------------------===//

class RoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTrip, WorkloadPrintsParsesAndRunsTheSame) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  Module M;
  Function &F = W->Build(M);

  std::string Text = printModule(M);
  Module M2;
  std::string Err;
  ASSERT_TRUE(parseModule(Text, M2, Err)) << Err;
  Function *F2 = M2.findFunction(F.name());
  ASSERT_NE(F2, nullptr);
  EXPECT_EQ(F2->numBlocks(), F.numBlocks());
  EXPECT_EQ(F2->numInstructions(), F.numInstructions());
  EXPECT_EQ(F2->numVRegs(), F.numVRegs());
  EXPECT_TRUE(verifyFunction(M2, *F2).empty());

  // Same behavior: run both and compare memory plus return values.
  Simulator S1(M), S2(M2);
  MemoryImage Mem1(M), Mem2(M2);
  W->Init(M, Mem1);
  W->Init(M2, Mem2);
  ExecutionResult R1 = S1.runVirtual(F, Mem1);
  ExecutionResult R2 = S2.runVirtual(*F2, Mem2);
  ASSERT_TRUE(R1.Ok) << R1.Error;
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  EXPECT_EQ(R1.IntReturn, R2.IntReturn);
  EXPECT_EQ(R1.FloatReturn, R2.FloatReturn);
  EXPECT_TRUE(Mem1 == Mem2);
}

INSTANTIATE_TEST_SUITE_P(AllRoutines, RoundTrip, [] {
  std::vector<std::string> Names;
  for (const Workload &W : allWorkloads())
    Names.push_back(W.Routine);
  return ::testing::ValuesIn(Names);
}());

TEST(RoundTripRandom, RandomProgramsSurviveTextRoundTrip) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Module M;
    Function &F = buildRandomProgram(M, Seed);
    std::string Text = printModule(M);
    Module M2;
    std::string Err;
    ASSERT_TRUE(parseModule(Text, M2, Err)) << "seed " << Seed << ": " << Err;
    Function &F2 = M2.function(0);
    Simulator S1(M), S2(M2);
    MemoryImage Mem1(M), Mem2(M2);
    ExecutionResult R1 = S1.runVirtual(F, Mem1);
    ExecutionResult R2 = S2.runVirtual(F2, Mem2);
    ASSERT_TRUE(R1.Ok && R2.Ok);
    EXPECT_EQ(R1.IntReturn, R2.IntReturn) << "seed " << Seed;
    EXPECT_TRUE(Mem1 == Mem2) << "seed " << Seed;
  }
}

//===--------------------------------------------------------------------===//
// Verifier negatives.
//===--------------------------------------------------------------------===//

TEST(VerifierTest, CatchesMissingTerminator) {
  Module M;
  Function &F = M.newFunction("bad");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  B.movI(1);
  auto Errors = verifyFunction(M, F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, CatchesUseBeforeDef) {
  Module M;
  Function &F = M.newFunction("bad");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Then = B.newBlock("then");
  uint32_t Join = B.newBlock("join");
  B.setInsertPoint(Entry);
  VRegId A = B.movI(1);
  VRegId Cond = B.movI(0);
  B.br(CmpKind::EQ, A, Cond, Then, Join);
  B.setInsertPoint(Then);
  VRegId X = B.movI(5); // only defined on one path
  B.jmp(Join);
  B.setInsertPoint(Join);
  B.ret(X);
  auto Errors = verifyFunction(M, F);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("before definition"), std::string::npos);
}

TEST(VerifierTest, CatchesClassMismatch) {
  Module M;
  Function &F = M.newFunction("bad");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId X = B.movI(1);
  VRegId Fv = F.newVReg(RegClass::Float, "f");
  // Hand-build a malformed add mixing classes.
  B.emit({Opcode::Add,
          {Operand::reg(Fv), Operand::reg(X), Operand::reg(X)}});
  B.ret();
  EXPECT_FALSE(verifyFunction(M, F).empty());
}

TEST(VerifierTest, CatchesBadBlockReference) {
  Module M;
  Function &F = M.newFunction("bad");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  B.emit({Opcode::Jmp, {Operand::block(99)}});
  EXPECT_FALSE(verifyFunction(M, F).empty());
}

TEST(VerifierTest, AcceptsAllWorkloads) {
  for (const Workload &W : allWorkloads()) {
    Module M;
    Function &F = W.Build(M);
    auto Errors = verifyFunction(M, F);
    EXPECT_TRUE(Errors.empty())
        << W.Routine << ": " << (Errors.empty() ? "" : Errors[0]);
  }
}

} // namespace
