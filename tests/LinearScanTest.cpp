//===- tests/LinearScanTest.cpp - linear-scan backend tests ---------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end and unit coverage for the linear-scan backend: the walker's
// eviction decisions, the full driver over the workload suite and the
// regression corpus (audited and differentially simulated against the
// virtual golden run), cross-backend agreement with graph coloring,
// determinism, the fault-injection/degradation ladder, and the backend
// naming/parsing helpers the tools build on.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/InstrNumbering.h"
#include "analysis/Liveness.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "linearscan/LinearScan.h"
#include "linearscan/LiveInterval.h"
#include "opt/Optimizer.h"
#include "regalloc/AllocationAudit.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ra;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

AllocatorConfig linearScanConfig(unsigned IntK = 16, unsigned FltK = 8) {
  AllocatorConfig C;
  C.B = Backend::LinearScan;
  C.Machine = MachineInfo(IntK, FltK);
  C.MaxPasses = 64; // small files need headroom, as in the fuzzer
  return C;
}

//===--------------------------------------------------------------------===//
// Walker unit tests (scanIntervals directly).
//===--------------------------------------------------------------------===//

/// Builds a = 1; b = 2; c = a + b; ret c and returns the scan result for
/// a one-register integer file with the given costs for a and b. With
/// K = 1 the walker must keep exactly one of a/b in the register, so the
/// decision exposes the eviction heuristic directly.
ScanResult scanStraightLine(double CostA, double CostB, VRegId &A,
                            VRegId &B2, VRegId &C) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  A = B.movI(1);
  B2 = B.movI(2);
  C = B.add(A, B2);
  B.ret(C);

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  std::vector<double> Costs(F.numVRegs(), 0);
  Costs[A] = CostA;
  Costs[B2] = CostB;
  LI.setCosts(Costs);
  return scanIntervals(LI, MachineInfo(1, 1));
}

TEST(LinearScanWalkerTest, EvictsTheCheaperInterval) {
  VRegId A, B, C;
  // a is cheap: when b arrives, a is evicted (spilled) in its favor.
  ScanResult S1 = scanStraightLine(1.0, 100.0, A, B, C);
  ASSERT_EQ(S1.Spilled.size(), 1u);
  EXPECT_EQ(S1.Spilled[0], A);
  EXPECT_EQ(S1.ColorOf[B], 0);
  EXPECT_EQ(S1.ColorOf[C], 0) << "c starts after b ends and reuses r0";

  // Costs reversed: now b is the cheap one and spills instead.
  ScanResult S2 = scanStraightLine(100.0, 1.0, A, B, C);
  ASSERT_EQ(S2.Spilled.size(), 1u);
  EXPECT_EQ(S2.Spilled[0], B);
  EXPECT_EQ(S2.ColorOf[A], 0);
}

TEST(LinearScanWalkerTest, DisjointLifetimesShareOneRegister) {
  // a dies as c is born (dying use vs same-instruction def): K = 1
  // suffices for c even though three values exist.
  VRegId A, B, C;
  ScanResult S = scanStraightLine(1.0, 100.0, A, B, C);
  EXPECT_EQ(S.LiveRanges, 3u);
  EXPECT_GE(S.WalkSeconds, 0.0);
  EXPECT_FALSE(S.success()) << "K=1 cannot hold a and b together";
}

//===--------------------------------------------------------------------===//
// Full driver: workloads, corpus, cross-backend agreement.
//===--------------------------------------------------------------------===//

TEST(LinearScanAllocTest, WorkloadsAllocateAuditAndMatchGolden) {
  for (const Workload &W : allWorkloads()) {
    Module M;
    Function &F = W.Build(M);
    optimizeFunction(F);

    Simulator Sim(M);
    MemoryImage Golden(M);
    W.Init(M, Golden);
    ExecutionResult G = Sim.runVirtual(F, Golden);
    ASSERT_TRUE(G.Ok) << W.Routine;

    AllocatorConfig C = linearScanConfig();
    AllocationResult A = allocateRegisters(F, C);
    ASSERT_TRUE(A.Success) << W.Routine << ": " << A.Diag.toString();
    EXPECT_EQ(A.Outcome, AllocOutcome::Converged) << W.Routine;
    EXPECT_TRUE(auditAllocation(F, A).empty()) << W.Routine;
    EXPECT_TRUE(verifyFunction(M, F).empty()) << W.Routine;

    MemoryImage Mem(M);
    W.Init(M, Mem);
    ExecutionResult R = Sim.runAllocated(F, A, Mem);
    ASSERT_TRUE(R.Ok) << W.Routine << ": " << R.Error;
    EXPECT_TRUE(Mem == Golden) << W.Routine;
  }
}

TEST(LinearScanAllocTest, CorpusAllocatesUnderSmallFiles) {
  // The whole regression corpus under a deliberately tight 4/3 file —
  // the configuration that exposed the protected-interval deadlock.
  for (int Seed = 0; Seed < 8; ++Seed) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "seed%04d.ral", Seed);
    std::string Text =
        readFile(std::string(RA_TESTS_DIR) + "/corpus/" + Name);
    ASSERT_FALSE(Text.empty()) << Name;
    Module M;
    std::string Error;
    ASSERT_TRUE(parseModule(Text, M, Error)) << Name << ": " << Error;
    for (unsigned I = 0; I < M.numFunctions(); ++I) {
      Function &F = M.function(I);
      Simulator Sim(M);
      MemoryImage Golden(M);
      ExecutionResult G = Sim.runVirtual(F, Golden);
      ASSERT_TRUE(G.Ok) << Name;

      AllocatorConfig C = linearScanConfig(4, 3);
      AllocationResult A = allocateRegisters(F, C);
      ASSERT_TRUE(A.Success) << Name << ": " << A.Diag.toString();
      EXPECT_TRUE(auditAllocation(F, A).empty()) << Name;

      MemoryImage Mem(M);
      ExecutionResult R = Sim.runAllocated(F, A, Mem);
      ASSERT_TRUE(R.Ok) << Name << ": " << R.Error;
      EXPECT_TRUE(Mem == Golden) << Name;
      EXPECT_EQ(R.IntReturn, G.IntReturn) << Name;
    }
  }
}

TEST(LinearScanAllocTest, ProtectedDeadlockRegressionConverges) {
  // seed0005 under a 4/3 file once drove the walker into re-spilling
  // minimal spill temporaries forever (exponential temp growth). The
  // widest-interval deadlock break must keep the pass count sane.
  std::string Text =
      readFile(std::string(RA_TESTS_DIR) + "/corpus/seed0005.ral");
  ASSERT_FALSE(Text.empty());
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(Text, M, Error)) << Error;
  AllocatorConfig C = linearScanConfig(4, 3);
  AllocationResult A = allocateRegisters(M.function(0), C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Converged);
  EXPECT_LE(A.Stats.numPasses(), 32u)
      << "deadlock breaking must make real progress each pass";
}

TEST(LinearScanAllocTest, AgreesWithGraphColoringOnWorkloads) {
  // Cross-backend differential in unit-test form: both backends must
  // produce the same memory image and returns on every workload.
  for (const Workload &W : allWorkloads()) {
    Module M1, M2;
    Function &F1 = W.Build(M1);
    Function &F2 = W.Build(M2);
    optimizeFunction(F1);
    optimizeFunction(F2);

    AllocatorConfig C1;
    C1.H = Heuristic::Briggs;
    AllocatorConfig C2 = linearScanConfig();
    AllocationResult A1 = allocateRegisters(F1, C1);
    AllocationResult A2 = allocateRegisters(F2, C2);
    ASSERT_TRUE(A1.Success && A2.Success) << W.Routine;

    Simulator S1(M1), S2(M2);
    MemoryImage Mem1(M1), Mem2(M2);
    W.Init(M1, Mem1);
    W.Init(M2, Mem2);
    ExecutionResult R1 = S1.runAllocated(F1, A1, Mem1);
    ExecutionResult R2 = S2.runAllocated(F2, A2, Mem2);
    ASSERT_TRUE(R1.Ok && R2.Ok) << W.Routine;
    EXPECT_TRUE(Mem1 == Mem2) << W.Routine << ": backends diverged";
    EXPECT_EQ(R1.IntReturn, R2.IntReturn) << W.Routine;
  }
}

TEST(LinearScanAllocTest, DeterministicAcrossRuns) {
  for (int Round = 0; Round < 2; ++Round) {
    Module M1, M2;
    Function &F1 = buildSVD(M1);
    Function &F2 = buildSVD(M2);
    optimizeFunction(F1);
    optimizeFunction(F2);
    AllocatorConfig C = linearScanConfig();
    AllocationResult A1 = allocateRegisters(F1, C);
    AllocationResult A2 = allocateRegisters(F2, C);
    ASSERT_TRUE(A1.Success && A2.Success);
    EXPECT_EQ(A1.ColorOf, A2.ColorOf);
    EXPECT_EQ(A1.Stats.totalSpills(), A2.Stats.totalSpills());
    EXPECT_EQ(A1.Stats.numPasses(), A2.Stats.numPasses());
  }
}

TEST(LinearScanAllocTest, StatsShapeMatchesTheBackend) {
  Module M;
  Function &F = buildDMXPY(M);
  optimizeFunction(F);
  AllocatorConfig C = linearScanConfig();
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success);
  ASSERT_FALSE(A.Stats.Passes.empty());
  for (const PassRecord &P : A.Stats.Passes) {
    EXPECT_EQ(P.Interferences, 0u)
        << "linear scan never builds the interference graph";
    EXPECT_EQ(P.SpilledNames.size(), P.SpilledLiveRanges);
    EXPECT_GT(P.LiveRanges, 0u);
  }
  EXPECT_EQ(A.Stats.Passes.back().SpilledLiveRanges, 0u)
      << "the final pass must be spill-free";
}

TEST(LinearScanAllocTest, InjectedMiscoloringDegradesButStaysCorrect) {
  // The degradation ladder is backend-agnostic: a miscolored linear-scan
  // result must be caught by the audit and replaced by the
  // spill-everything fallback, which itself passes the audit.
  Module M;
  Function &F = buildDDOT(M);
  AllocatorConfig C = linearScanConfig();
  C.Audit = true;
  C.FaultInject.Miscolor = true;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_TRUE(auditAllocation(F, A).empty());
}

//===--------------------------------------------------------------------===//
// Naming and parsing helpers shared by the tools.
//===--------------------------------------------------------------------===//

TEST(BackendNamesTest, RoundTripThroughParse) {
  EXPECT_STREQ(backendName(Backend::GraphColoring), "graph-coloring");
  EXPECT_STREQ(backendName(Backend::LinearScan), "linear-scan");
  EXPECT_STREQ(allocatorName(Backend::LinearScan, Heuristic::Briggs),
               "linear-scan");
  EXPECT_STREQ(allocatorName(Backend::GraphColoring, Heuristic::Chaitin),
               "chaitin");

  Backend B;
  Heuristic H;
  ASSERT_TRUE(parseAllocatorName("briggs", B, H));
  EXPECT_EQ(B, Backend::GraphColoring);
  EXPECT_EQ(H, Heuristic::Briggs);
  ASSERT_TRUE(parseAllocatorName("matula-beck", B, H));
  EXPECT_EQ(H, Heuristic::MatulaBeck);
  ASSERT_TRUE(parseAllocatorName("linear-scan", B, H));
  EXPECT_EQ(B, Backend::LinearScan);
  EXPECT_FALSE(parseAllocatorName("bogus", B, H));
  EXPECT_FALSE(parseAllocatorName("", B, H));
}

} // namespace
