//===- tests/LinearScanTest.cpp - linear-scan backend tests ---------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end and unit coverage for the linear-scan backend: the walker's
// eviction decisions, the full driver over the workload suite and the
// regression corpus (audited and differentially simulated against the
// virtual golden run), cross-backend agreement with graph coloring,
// determinism, the fault-injection/degradation ladder, and the backend
// naming/parsing helpers the tools build on.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/InstrNumbering.h"
#include "analysis/Liveness.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "linearscan/LinearScan.h"
#include "linearscan/LiveInterval.h"
#include "opt/Optimizer.h"
#include "regalloc/AllocationAudit.h"
#include "regalloc/Allocator.h"
#include "regalloc/InterferenceGraph.h"
#include "sim/Simulator.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ra;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

AllocatorConfig linearScanConfig(unsigned IntK = 16, unsigned FltK = 8) {
  AllocatorConfig C;
  C.B = Backend::LinearScan;
  C.Machine = MachineInfo(IntK, FltK);
  C.MaxPasses = 64; // small files need headroom, as in the fuzzer
  return C;
}

//===--------------------------------------------------------------------===//
// Walker unit tests (scanIntervals directly).
//===--------------------------------------------------------------------===//

/// Builds a = 1; b = 2; c = a + b; ret c and returns the scan result for
/// a one-register integer file with the given costs for a and b. With
/// K = 1 the walker must keep exactly one of a/b in the register, so the
/// decision exposes the eviction heuristic directly.
ScanResult scanStraightLine(double CostA, double CostB, VRegId &A,
                            VRegId &B2, VRegId &C) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  A = B.movI(1);
  B2 = B.movI(2);
  C = B.add(A, B2);
  B.ret(C);

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  std::vector<double> Costs(F.numVRegs(), 0);
  Costs[A] = CostA;
  Costs[B2] = CostB;
  LI.setCosts(Costs);
  return scanIntervals(LI, MachineInfo(1, 1));
}

TEST(LinearScanWalkerTest, EvictsTheCheaperInterval) {
  VRegId A, B, C;
  // a is cheap: when b arrives, a is evicted (spilled) in its favor.
  ScanResult S1 = scanStraightLine(1.0, 100.0, A, B, C);
  ASSERT_EQ(S1.Spilled.size(), 1u);
  EXPECT_EQ(S1.Spilled[0], A);
  EXPECT_EQ(S1.ColorOf[B], 0);
  EXPECT_EQ(S1.ColorOf[C], 0) << "c starts after b ends and reuses r0";

  // Costs reversed: now b is the cheap one and spills instead.
  ScanResult S2 = scanStraightLine(100.0, 1.0, A, B, C);
  ASSERT_EQ(S2.Spilled.size(), 1u);
  EXPECT_EQ(S2.Spilled[0], B);
  EXPECT_EQ(S2.ColorOf[A], 0);
}

TEST(LinearScanWalkerTest, DisjointLifetimesShareOneRegister) {
  // a dies as c is born (dying use vs same-instruction def): K = 1
  // suffices for c even though three values exist.
  VRegId A, B, C;
  ScanResult S = scanStraightLine(1.0, 100.0, A, B, C);
  EXPECT_EQ(S.LiveRanges, 3u);
  EXPECT_GE(S.WalkSeconds, 0.0);
  EXPECT_FALSE(S.success()) << "K=1 cannot hold a and b together";
}

/// Straight-line function where protected (infinite-cost) h0 and h1
/// hold both registers of a K=2 file with a lifetime hole in the
/// middle, and protected c arrives inside the hole-free region
/// overlapping both. \p CLastStore picks how long c lives: 3 stores
/// keep c narrower than the holders, 4 make its extent exactly match
/// theirs. Every register is then held by a protected interval when c
/// is processed, so the walk must go through breakProtectedDeadlock.
ScanResult scanProtectedDeadlock(unsigned CStores, VRegId &H0, VRegId &H1,
                                 VRegId &C) {
  Module M;
  uint32_t Arr = M.newArray("a", 64, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  H0 = B.movI(1);            // h0 segment 1: [1, 7)
  H1 = B.movI(2);            // h1 segment 1: [3, 9)
  C = B.movI(3);             // c: [5, 19) or [5, 25)
  B.store(Arr, H0, H0);      // read slot 6 — h0's hole begins
  B.store(Arr, H1, H1);      // read slot 8 — h1's hole begins
  B.store(Arr, C, C);
  B.store(Arr, C, C);
  B.movI(4, H0);             // h0 segment 2: [15, 21)
  B.movI(5, H1);             // h1 segment 2: [17, 23)
  B.store(Arr, C, C);        // read slot 18
  B.store(Arr, H0, H0);      // read slot 20
  B.store(Arr, H1, H1);      // read slot 22
  if (CStores == 4)
    B.store(Arr, C, C);      // read slot 24 — c extent grows to 20
  B.ret();

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  // All three are protected; the holders' holes give them a lower
  // spill-cost density than solid c, so c loses the eviction
  // comparison and lands in the deadlock breaker.
  std::vector<double> Costs(F.numVRegs(),
                            InterferenceGraph::InfiniteCost);
  LI.setCosts(Costs);

  // The scenario the helper promises: both holders span the same
  // 20-slot extent with a hole, c is live across both.
  EXPECT_EQ(LI.interval(H0).Segments.size(), 2u);
  EXPECT_EQ(LI.interval(H1).Segments.size(), 2u);
  EXPECT_EQ(LI.interval(H0).stop() - LI.interval(H0).start(), 20u);
  EXPECT_EQ(LI.interval(H1).stop() - LI.interval(H1).start(), 20u);
  EXPECT_TRUE(LI.interval(C).overlaps(LI.interval(H0)));
  EXPECT_TRUE(LI.interval(C).overlaps(LI.interval(H1)));
  return scanIntervals(LI, MachineInfo(2, 1));
}

TEST(LinearScanWalkerTest, ProtectedDeadlockTieEvictsLowestRegister) {
  // h0 (r0) and h1 (r1) have equal 20-slot extents; c is narrower
  // (extent 14). The deadlock break must evict the *widest* holder and
  // break the extent tie toward the lowest register index: h0 spills
  // whole, c inherits r0, h1 keeps r1.
  VRegId H0, H1, C;
  ScanResult S = scanProtectedDeadlock(/*CStores=*/3, H0, H1, C);
  ASSERT_EQ(S.Spilled.size(), 1u);
  EXPECT_EQ(S.Spilled[0], H0);
  EXPECT_EQ(S.SpillFromSlot[0], 0u)
      << "deadlock eviction spills the whole lifetime";
  EXPECT_EQ(S.ColorOf[C], 0);
  EXPECT_EQ(S.ColorOf[H1], 1);
}

TEST(LinearScanWalkerTest, ProtectedDeadlockSpillsCurAtEqualWidth) {
  // With one more store c's extent equals the widest holder's (20).
  // Evicting a holder no wider than c cannot make progress, so the
  // deadlock break spills c itself; both holders keep their registers.
  VRegId H0, H1, C;
  ScanResult S = scanProtectedDeadlock(/*CStores=*/4, H0, H1, C);
  ASSERT_EQ(S.Spilled.size(), 1u);
  EXPECT_EQ(S.Spilled[0], C);
  EXPECT_EQ(S.SpillFromSlot[0], 0u);
  EXPECT_EQ(S.ColorOf[H0], 0);
  EXPECT_EQ(S.ColorOf[H1], 1);
}

//===--------------------------------------------------------------------===//
// Full driver: workloads, corpus, cross-backend agreement.
//===--------------------------------------------------------------------===//

TEST(LinearScanAllocTest, WorkloadsAllocateAuditAndMatchGolden) {
  for (const Workload &W : allWorkloads()) {
    Module M;
    Function &F = W.Build(M);
    optimizeFunction(F);

    Simulator Sim(M);
    MemoryImage Golden(M);
    W.Init(M, Golden);
    ExecutionResult G = Sim.runVirtual(F, Golden);
    ASSERT_TRUE(G.Ok) << W.Routine;

    AllocatorConfig C = linearScanConfig();
    AllocationResult A = allocateRegisters(F, C);
    ASSERT_TRUE(A.Success) << W.Routine << ": " << A.Diag.toString();
    EXPECT_EQ(A.Outcome, AllocOutcome::Converged) << W.Routine;
    EXPECT_TRUE(auditAllocation(F, A).empty()) << W.Routine;
    EXPECT_TRUE(verifyFunction(M, F).empty()) << W.Routine;

    MemoryImage Mem(M);
    W.Init(M, Mem);
    ExecutionResult R = Sim.runAllocated(F, A, Mem);
    ASSERT_TRUE(R.Ok) << W.Routine << ": " << R.Error;
    EXPECT_TRUE(Mem == Golden) << W.Routine;
  }
}

TEST(LinearScanAllocTest, CorpusAllocatesUnderSmallFiles) {
  // The whole regression corpus under a deliberately tight 4/3 file —
  // the configuration that exposed the protected-interval deadlock.
  for (int Seed = 0; Seed < 8; ++Seed) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "seed%04d.ral", Seed);
    std::string Text =
        readFile(std::string(RA_TESTS_DIR) + "/corpus/" + Name);
    ASSERT_FALSE(Text.empty()) << Name;
    Module M;
    std::string Error;
    ASSERT_TRUE(parseModule(Text, M, Error)) << Name << ": " << Error;
    for (unsigned I = 0; I < M.numFunctions(); ++I) {
      Function &F = M.function(I);
      Simulator Sim(M);
      MemoryImage Golden(M);
      ExecutionResult G = Sim.runVirtual(F, Golden);
      ASSERT_TRUE(G.Ok) << Name;

      AllocatorConfig C = linearScanConfig(4, 3);
      AllocationResult A = allocateRegisters(F, C);
      ASSERT_TRUE(A.Success) << Name << ": " << A.Diag.toString();
      EXPECT_TRUE(auditAllocation(F, A).empty()) << Name;

      MemoryImage Mem(M);
      ExecutionResult R = Sim.runAllocated(F, A, Mem);
      ASSERT_TRUE(R.Ok) << Name << ": " << R.Error;
      EXPECT_TRUE(Mem == Golden) << Name;
      EXPECT_EQ(R.IntReturn, G.IntReturn) << Name;
    }
  }
}

TEST(LinearScanAllocTest, ProtectedDeadlockRegressionConverges) {
  // seed0005 under a 4/3 file once drove the walker into re-spilling
  // minimal spill temporaries forever (exponential temp growth). The
  // widest-interval deadlock break must keep the pass count sane.
  std::string Text =
      readFile(std::string(RA_TESTS_DIR) + "/corpus/seed0005.ral");
  ASSERT_FALSE(Text.empty());
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(Text, M, Error)) << Error;
  AllocatorConfig C = linearScanConfig(4, 3);
  AllocationResult A = allocateRegisters(M.function(0), C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Converged);
  EXPECT_LE(A.Stats.numPasses(), 32u)
      << "deadlock breaking must make real progress each pass";
}

TEST(LinearScanAllocTest, AgreesWithGraphColoringOnWorkloads) {
  // Cross-backend differential in unit-test form: both backends must
  // produce the same memory image and returns on every workload.
  for (const Workload &W : allWorkloads()) {
    Module M1, M2;
    Function &F1 = W.Build(M1);
    Function &F2 = W.Build(M2);
    optimizeFunction(F1);
    optimizeFunction(F2);

    AllocatorConfig C1;
    C1.H = Heuristic::Briggs;
    AllocatorConfig C2 = linearScanConfig();
    AllocationResult A1 = allocateRegisters(F1, C1);
    AllocationResult A2 = allocateRegisters(F2, C2);
    ASSERT_TRUE(A1.Success && A2.Success) << W.Routine;

    Simulator S1(M1), S2(M2);
    MemoryImage Mem1(M1), Mem2(M2);
    W.Init(M1, Mem1);
    W.Init(M2, Mem2);
    ExecutionResult R1 = S1.runAllocated(F1, A1, Mem1);
    ExecutionResult R2 = S2.runAllocated(F2, A2, Mem2);
    ASSERT_TRUE(R1.Ok && R2.Ok) << W.Routine;
    EXPECT_TRUE(Mem1 == Mem2) << W.Routine << ": backends diverged";
    EXPECT_EQ(R1.IntReturn, R2.IntReturn) << W.Routine;
  }
}

TEST(LinearScanAllocTest, DeterministicAcrossRuns) {
  for (int Round = 0; Round < 2; ++Round) {
    Module M1, M2;
    Function &F1 = buildSVD(M1);
    Function &F2 = buildSVD(M2);
    optimizeFunction(F1);
    optimizeFunction(F2);
    AllocatorConfig C = linearScanConfig();
    AllocationResult A1 = allocateRegisters(F1, C);
    AllocationResult A2 = allocateRegisters(F2, C);
    ASSERT_TRUE(A1.Success && A2.Success);
    EXPECT_EQ(A1.ColorOf, A2.ColorOf);
    EXPECT_EQ(A1.Pieces, A2.Pieces)
        << "per-slot piece assignments must be deterministic too";
    EXPECT_EQ(A1.Stats.totalSpills(), A2.Stats.totalSpills());
    EXPECT_EQ(A1.Stats.numPasses(), A2.Stats.numPasses());
  }
}

//===--------------------------------------------------------------------===//
// Second-chance splitting: spill reduction, the no-split oracle, and
// the structure of the published piece table.
//===--------------------------------------------------------------------===//

TEST(LinearScanAllocTest, SplittingNeverSpillsMoreThanNoSplit) {
  // Splitting exists to spill less; on every workload the split walk's
  // first pass must spill at most as many ranges as the whole-lifetime
  // baseline, and substantially fewer over the suite (the PR's
  // acceptance bar is a >=50% drop; assert a conservative 40% so the
  // test tracks the property, not the exact corpus).
  unsigned SplitTotal = 0, NoSplitTotal = 0;
  for (const Workload &W : allWorkloads()) {
    Module M1, M2;
    Function &F1 = W.Build(M1);
    Function &F2 = W.Build(M2);
    optimizeFunction(F1);
    optimizeFunction(F2);
    AllocatorConfig CS = linearScanConfig();
    AllocatorConfig CN = linearScanConfig();
    CN.SplitIntervals = false;
    AllocationResult AS = allocateRegisters(F1, CS);
    AllocationResult AN = allocateRegisters(F2, CN);
    ASSERT_TRUE(AS.Success && AN.Success) << W.Routine;
    EXPECT_LE(AS.Stats.firstPassSpills(), AN.Stats.firstPassSpills())
        << W.Routine;
    SplitTotal += AS.Stats.firstPassSpills();
    NoSplitTotal += AN.Stats.firstPassSpills();
  }
  EXPECT_LE(SplitTotal * 10, NoSplitTotal * 6)
      << "second-chance splitting should cut first-pass spills by well "
         "over 40% across the suite";
}

TEST(LinearScanAllocTest, NoSplitModeNeverPublishesPieces) {
  // --no-split is the regression oracle for the original walker: no
  // split decisions, no piece table, every allocated range on exactly
  // one register.
  for (const Workload &W : allWorkloads()) {
    Module M;
    Function &F = W.Build(M);
    optimizeFunction(F);
    AllocatorConfig C = linearScanConfig();
    C.SplitIntervals = false;
    AllocationResult A = allocateRegisters(F, C);
    ASSERT_TRUE(A.Success) << W.Routine;
    EXPECT_TRUE(A.Pieces.empty()) << W.Routine;
    for (const PassRecord &P : A.Stats.Passes) {
      EXPECT_EQ(P.SplitLiveRanges, 0u) << W.Routine;
      EXPECT_EQ(P.SplitDecisions, 0u) << W.Routine;
    }
    EXPECT_TRUE(auditAllocation(F, A).empty()) << W.Routine;
  }
}

TEST(LinearScanWalkerTest, SecondChancePlacesHeadAndTailOnTwoRegisters) {
  // h0 holds r0 over [1, 9); h1 holds r1 but is in a lifetime hole when
  // v arrives, with its second segment starting at slot 13. Neither
  // register is free for v, but r1's conflict starts later, so the
  // second chance splits v at 12: the head rides r1, and when the
  // re-enqueued tail is processed h0 has retired, handing it r0 — one
  // range, two registers, zero spills.
  Module M;
  uint32_t Arr = M.newArray("a", 64, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId H0 = B.movI(1);  // [1, 9)
  VRegId H1 = B.movI(2);  // [3, 5) then [13, 19)
  B.store(Arr, H1, H1);   // read slot 4 — h1's hole begins
  VRegId V = B.movI(3);   // [7, 21)
  B.store(Arr, H0, H0);   // read slot 8 — h0 retires after this
  B.store(Arr, V, V);
  B.movI(4, H1);          // write slot 13 — h1's second segment
  B.store(Arr, H1, H1);
  B.store(Arr, V, V);
  B.store(Arr, H1, H1);   // read slot 18
  B.store(Arr, V, V);     // read slot 20
  B.ret();

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  LI.setCosts(std::vector<double>(F.numVRegs(), 1.0));
  ScanResult S = scanIntervals(LI, MachineInfo(2, 1));

  ASSERT_TRUE(S.success());
  EXPECT_EQ(S.Splits, 1u);
  EXPECT_EQ(S.SplitRanges, 1u);
  ASSERT_EQ(S.Pieces.size(), 2u);
  EXPECT_EQ(S.Pieces[0].Reg, V);
  EXPECT_EQ(S.Pieces[1].Reg, V);
  // Head [7, 12) on r1, normalized to instruction-aligned [6, 12).
  EXPECT_EQ(S.Pieces[0].From, 6u);
  EXPECT_EQ(S.Pieces[0].To, 12u);
  EXPECT_EQ(S.Pieces[0].PhysReg, 1u);
  // Tail [12, 21) on the register h0 vacated, normalized to [12, 22).
  EXPECT_EQ(S.Pieces[1].From, 12u);
  EXPECT_EQ(S.Pieces[1].To, 22u);
  EXPECT_EQ(S.Pieces[1].PhysReg, 0u);
  EXPECT_EQ(S.ColorOf[V], 1) << "ColorOf is the first piece's register";
  EXPECT_EQ(S.ColorOf[H0], 0);
  EXPECT_EQ(S.ColorOf[H1], 1);
}

TEST(LinearScanAllocTest, PieceTableIsWellFormedOnRandomPrograms) {
  // Random programs under a tight 4/4 file occasionally converge with
  // genuine multi-register ranges; whenever they do, the published
  // piece table must be sorted by (Reg, From), instruction aligned,
  // non-overlapping within a range, agree with ColorOf on each range's
  // first piece — and the allocation must still audit clean and
  // reproduce the virtual run's memory image through the simulator's
  // inter-piece moves.
  unsigned PiecedAllocations = 0;
  for (uint64_t Seed = 0; Seed < 100; ++Seed) {
    Module M;
    Function &F = buildRandomProgram(M, Seed);
    optimizeFunction(F);

    Simulator Sim(M);
    MemoryImage Golden(M);
    ExecutionResult G = Sim.runVirtual(F, Golden);
    ASSERT_TRUE(G.Ok) << "seed " << Seed;

    AllocatorConfig C = linearScanConfig(4, 4);
    AllocationResult A = allocateRegisters(F, C);
    ASSERT_TRUE(A.Success) << "seed " << Seed << ": "
                           << A.Diag.toString();
    if (A.Outcome != AllocOutcome::Converged || A.Pieces.empty())
      continue;
    ++PiecedAllocations;

    for (size_t P = 0; P < A.Pieces.size(); ++P) {
      const PieceAssignment &PA = A.Pieces[P];
      EXPECT_LT(PA.From, PA.To) << "seed " << Seed;
      EXPECT_EQ(PA.From % 2, 0u) << "seed " << Seed;
      EXPECT_EQ(PA.To % 2, 0u) << "seed " << Seed;
      EXPECT_LT(PA.PhysReg, A.Machine.numRegs(F.regClass(PA.Reg)))
          << "seed " << Seed;
      if (P > 0 && A.Pieces[P - 1].Reg == PA.Reg) {
        EXPECT_LE(A.Pieces[P - 1].To, PA.From)
            << "seed " << Seed << ": pieces of one range overlap";
        EXPECT_NE(A.Pieces[P - 1].PhysReg, PA.PhysReg)
            << "seed " << Seed
            << ": adjacent same-register pieces must merge";
      } else {
        EXPECT_EQ(int32_t(PA.PhysReg), A.ColorOf[PA.Reg])
            << "seed " << Seed
            << ": ColorOf must be the first piece's register";
      }
      if (P > 0 && A.Pieces[P - 1].Reg != PA.Reg)
        EXPECT_LT(A.Pieces[P - 1].Reg, PA.Reg)
            << "seed " << Seed << ": table must be sorted by vreg";
    }

    EXPECT_TRUE(auditAllocation(F, A).empty()) << "seed " << Seed;
    MemoryImage Mem(M);
    ExecutionResult R = Sim.runAllocated(F, A, Mem);
    ASSERT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error;
    // The differential is the real oracle: a missing inter-piece move
    // leaves the value in the old register and diverges the image. A
    // cut inside a lifetime hole legitimately executes zero moves, so
    // SplitMoves itself carries no lower bound here.
    EXPECT_TRUE(Mem == Golden) << "seed " << Seed;
  }
  EXPECT_GT(PiecedAllocations, 0u)
      << "expected at least one converged piece-publishing allocation "
         "in the seed sweep";
}

TEST(LinearScanAllocTest, StatsShapeMatchesTheBackend) {
  Module M;
  Function &F = buildDMXPY(M);
  optimizeFunction(F);
  AllocatorConfig C = linearScanConfig();
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success);
  ASSERT_FALSE(A.Stats.Passes.empty());
  for (const PassRecord &P : A.Stats.Passes) {
    EXPECT_EQ(P.Interferences, 0u)
        << "linear scan never builds the interference graph";
    EXPECT_EQ(P.SpilledNames.size(), P.SpilledLiveRanges);
    EXPECT_GT(P.LiveRanges, 0u);
  }
  EXPECT_EQ(A.Stats.Passes.back().SpilledLiveRanges, 0u)
      << "the final pass must be spill-free";
}

TEST(LinearScanAllocTest, InjectedMiscoloringDegradesButStaysCorrect) {
  // The degradation ladder is backend-agnostic: a miscolored linear-scan
  // result must be caught by the audit and replaced by the
  // spill-everything fallback, which itself passes the audit.
  Module M;
  Function &F = buildDDOT(M);
  AllocatorConfig C = linearScanConfig();
  C.Audit = true;
  C.FaultInject.Miscolor = true;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_TRUE(auditAllocation(F, A).empty());
}

//===--------------------------------------------------------------------===//
// Naming and parsing helpers shared by the tools.
//===--------------------------------------------------------------------===//

TEST(BackendNamesTest, RoundTripThroughParse) {
  EXPECT_STREQ(backendName(Backend::GraphColoring), "graph-coloring");
  EXPECT_STREQ(backendName(Backend::LinearScan), "linear-scan");
  EXPECT_STREQ(allocatorName(Backend::LinearScan, Heuristic::Briggs),
               "linear-scan");
  EXPECT_STREQ(allocatorName(Backend::GraphColoring, Heuristic::Chaitin),
               "chaitin");

  Backend B;
  Heuristic H;
  ASSERT_TRUE(parseAllocatorName("briggs", B, H));
  EXPECT_EQ(B, Backend::GraphColoring);
  EXPECT_EQ(H, Heuristic::Briggs);
  ASSERT_TRUE(parseAllocatorName("matula-beck", B, H));
  EXPECT_EQ(H, Heuristic::MatulaBeck);
  ASSERT_TRUE(parseAllocatorName("linear-scan", B, H));
  EXPECT_EQ(B, Backend::LinearScan);
  EXPECT_FALSE(parseAllocatorName("bogus", B, H));
  EXPECT_FALSE(parseAllocatorName("", B, H));
}

} // namespace
