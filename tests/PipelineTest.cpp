//===- tests/PipelineTest.cpp - End-to-end allocator smoke tests ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Builds a small program, allocates it with every heuristic, and checks
// that the allocated code computes the same results as the virtual run.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

/// sum = 0; for (i = 0; i < n; ++i) { a[i] = i * 3; sum += a[i]; }
/// returns sum.
struct SumProgram {
  Module M;
  Function *F = nullptr;
  uint32_t Arr = 0;

  explicit SumProgram(int64_t N) {
    Arr = M.newArray("a", 64, RegClass::Int);
    F = &M.newFunction("sum");
    IRBuilder B(M, *F);
    uint32_t Entry = B.newBlock("entry");
    uint32_t Loop = B.newBlock("loop");
    uint32_t Body = B.newBlock("body");
    uint32_t Exit = B.newBlock("exit");

    B.setInsertPoint(Entry);
    VRegId I = B.iReg("i");
    VRegId NR = B.iReg("n");
    VRegId Sum = B.iReg("sum");
    B.movI(0, I);
    B.movI(N, NR);
    B.movI(0, Sum);
    B.jmp(Loop);

    B.setInsertPoint(Loop);
    B.br(CmpKind::LT, I, NR, Body, Exit);

    B.setInsertPoint(Body);
    VRegId V = B.mulI(I, 3);
    B.store(Arr, I, V);
    VRegId L = B.load(Arr, I);
    B.add(Sum, L, Sum);
    B.addI(I, 1, I);
    B.jmp(Loop);

    B.setInsertPoint(Exit);
    B.ret(Sum);
  }
};

class PipelineTest : public ::testing::TestWithParam<Heuristic> {};

TEST_P(PipelineTest, SumLoopMatchesVirtualRun) {
  SumProgram P(10);
  ASSERT_TRUE(verifyFunction(P.M, *P.F).empty());

  Simulator Sim(P.M);
  MemoryImage GoldenMem(P.M);
  ExecutionResult Golden = Sim.runVirtual(*P.F, GoldenMem);
  ASSERT_TRUE(Golden.Ok) << Golden.Error;
  EXPECT_EQ(Golden.IntReturn, 3 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9));

  AllocatorConfig C;
  C.H = GetParam();
  C.Machine = MachineInfo(4, 3);
  AllocationResult A = allocateRegisters(*P.F, C);
  ASSERT_TRUE(A.Success);
  ASSERT_TRUE(verifyFunction(P.M, *P.F).empty());

  MemoryImage Mem(P.M);
  ExecutionResult Run = Sim.runAllocated(*P.F, A, Mem);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_EQ(Run.IntReturn, Golden.IntReturn);
  EXPECT_TRUE(Mem == GoldenMem);
}

TEST_P(PipelineTest, TightRegisterFileForcesSpillsButStaysCorrect) {
  SumProgram P(17);
  Simulator Sim(P.M);
  MemoryImage GoldenMem(P.M);
  ExecutionResult Golden = Sim.runVirtual(*P.F, GoldenMem);
  ASSERT_TRUE(Golden.Ok) << Golden.Error;

  AllocatorConfig C;
  C.H = GetParam();
  C.Machine = MachineInfo(3, 3); // minimum legal file
  AllocationResult A = allocateRegisters(*P.F, C);
  ASSERT_TRUE(A.Success);

  MemoryImage Mem(P.M);
  ExecutionResult Run = Sim.runAllocated(*P.F, A, Mem);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_EQ(Run.IntReturn, Golden.IntReturn);
  EXPECT_TRUE(Mem == GoldenMem);
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, PipelineTest,
                         ::testing::Values(Heuristic::Chaitin,
                                           Heuristic::Briggs,
                                           Heuristic::MatulaBeck),
                         [](const auto &Info) {
                           return std::string(heuristicName(Info.param)) ==
                                          "matula-beck"
                                      ? "MatulaBeck"
                                      : heuristicName(Info.param);
                         });

} // namespace
