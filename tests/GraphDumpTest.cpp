//===- tests/GraphDumpTest.cpp - Graphviz dump golden tests ---------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Pins dumpGraphviz output with golden files: node ordering must be
// stable (nodes appear in graph-node order, edges lexicographically by
// node pair), so rebuilding the same function always renders the same
// DOT text. Comparisons run through the shared normalizing comparator
// that masks volatile fields (timestamps, thread ids) — DOT output has
// none today, and the comparator keeps it that way if annotations grow.
// Regenerate goldens with RA_UPDATE_GOLDEN=1.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "ir/IRBuilder.h"
#include "regalloc/BuildGraph.h"
#include "regalloc/GraphDump.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace ra;

namespace {

/// Same normalizing comparator as TraceTest.cpp: masks ts/dur/tid
/// values so only deterministic structure is compared.
std::string maskVolatile(std::string S) {
  for (const char *Key : {"\"ts\":", "\"dur\":", "\"tid\":"}) {
    size_t Pos = 0;
    while ((Pos = S.find(Key, Pos)) != std::string::npos) {
      Pos += std::strlen(Key);
      size_t End = Pos;
      while (End < S.size() &&
             (std::isdigit(static_cast<unsigned char>(S[End])) ||
              S[End] == '.'))
        ++End;
      S.replace(Pos, End - Pos, "_");
      ++Pos;
    }
  }
  return S;
}

void compareGolden(const std::string &Name, const std::string &Actual) {
  std::string Path = std::string(RA_TESTS_DIR) + "/golden/" + Name;
  if (std::getenv("RA_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Actual;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In) << Path
                  << " missing — regenerate with RA_UPDATE_GOLDEN=1";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(maskVolatile(Buffer.str()), maskVolatile(Actual))
      << "golden mismatch for " << Name
      << " — regenerate with RA_UPDATE_GOLDEN=1 if intended";
}

/// The canned fib-shaped function every dump in this file renders.
ClassGraph builtGraph(Module &M) {
  Function &F = M.newFunction("fib");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Head = B.newBlock("head");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");

  B.setInsertPoint(Entry);
  VRegId A = F.newVReg(RegClass::Int, "a");
  B.movI(0, A);
  VRegId Bv = F.newVReg(RegClass::Int, "b");
  B.movI(1, Bv);
  VRegId I = F.newVReg(RegClass::Int, "i");
  B.movI(0, I);
  VRegId N = F.newVReg(RegClass::Int, "n");
  B.movI(10, N);
  B.jmp(Head);

  B.setInsertPoint(Head);
  B.br(CmpKind::LT, I, N, Body, Exit);

  B.setInsertPoint(Body);
  VRegId T = F.newVReg(RegClass::Int, "t");
  B.add(A, Bv, T);
  B.copy(Bv, A);
  B.copy(T, Bv);
  B.addI(I, 1, I);
  B.jmp(Head);

  B.setInsertPoint(Exit);
  B.ret(A);

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  return std::move(buildInterferenceGraphs(F, LV)[unsigned(RegClass::Int)]);
}

TEST(GraphDumpGolden, UncoloredDumpMatchesGolden) {
  Module M;
  ClassGraph CG = builtGraph(M);
  compareGolden("graphdump_uncolored.golden",
                dumpGraphviz(CG.Graph, nullptr, "fib"));
}

TEST(GraphDumpGolden, ColoredDumpMatchesGolden) {
  Module M;
  ClassGraph CG = builtGraph(M);
  ColoringResult R = colorGraph(CG.Graph, /*K=*/3, Heuristic::Briggs);
  compareGolden("graphdump_colored.golden",
                dumpGraphviz(CG.Graph, &R, "fib"));
}

TEST(GraphDumpGolden, NodeOrderingIsStableAcrossRebuilds) {
  Module M1, M2;
  ClassGraph G1 = builtGraph(M1);
  ClassGraph G2 = builtGraph(M2);
  EXPECT_EQ(dumpGraphviz(G1.Graph, nullptr, "fib"),
            dumpGraphviz(G2.Graph, nullptr, "fib"));

  ColoringResult R1 = colorGraph(G1.Graph, 3, Heuristic::Briggs);
  ColoringResult R2 = colorGraph(G2.Graph, 3, Heuristic::Briggs);
  EXPECT_EQ(dumpGraphviz(G1.Graph, &R1, "fib"),
            dumpGraphviz(G2.Graph, &R2, "fib"));
}

} // namespace
