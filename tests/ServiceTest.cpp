//===- tests/ServiceTest.cpp - AllocationService + AllocCache tests -------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The allocation-as-a-service contract:
//
//  * a cache hit reproduces the cold run byte for byte, under every
//    allocator backend;
//  * the cache honors both its bounds — LRU entry eviction and the
//    Budget-charged byte ceiling (an entry that cannot fit is refused,
//    never force-fitted);
//  * content keys are deliberately rename-SENSITIVE and exclude pure
//    performance knobs;
//  * concurrent clients hammering one service stay consistent;
//  * cache counters flow into an active Trace session.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "service/AllocationService.h"
#include "service/ContentHash.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace ra;
using namespace ra::service;

namespace {

/// A loop with array traffic and enough pressure to make the allocator
/// work: sum = 0; for (i = 0; i < n; ++i) { a[i] = i*3; sum += a[i]; }
std::string sumSource(const char *FnName = "sum", const char *IVar = "i") {
  Module M;
  uint32_t Arr = M.newArray("a", 64, RegClass::Int);
  Function &F = M.newFunction(FnName);
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Loop = B.newBlock("loop");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");

  B.setInsertPoint(Entry);
  VRegId I = B.iReg(IVar);
  VRegId N = B.iReg("n");
  VRegId Sum = B.iReg("sum");
  B.movI(0, I);
  B.movI(10, N);
  B.movI(0, Sum);
  B.jmp(Loop);

  B.setInsertPoint(Loop);
  B.br(CmpKind::LT, I, N, Body, Exit);

  B.setInsertPoint(Body);
  VRegId V = B.mulI(I, 3);
  B.store(Arr, I, V);
  VRegId L = B.load(Arr, I);
  B.add(Sum, L, Sum);
  B.addI(I, 1, I);
  B.jmp(Loop);

  B.setInsertPoint(Exit);
  B.ret(Sum);
  return printModule(M);
}

AllocatorConfig tightConfig(Backend B, Heuristic H) {
  AllocatorConfig C;
  C.B = B;
  C.H = H;
  C.Machine = MachineInfo(3, 2); // pressure -> spill code on the hit path
  C.Audit = true;
  return C;
}

struct BackendCase {
  Backend B;
  Heuristic H;
};

class ServiceBackendTest : public ::testing::TestWithParam<BackendCase> {};

// The headline contract: replaying a request through the service must be
// served from the cache and reproduce the cold allocation byte for
// byte — rewritten code, color assignments, and stats — under every
// allocator configuration.
TEST_P(ServiceBackendTest, WarmHitIsByteIdenticalToColdRun) {
  AllocationService Svc;
  ServiceRequest R;
  R.Source = sumSource();
  R.Alloc = tightConfig(GetParam().B, GetParam().H);

  ServiceReply Cold = Svc.run(R);
  ASSERT_TRUE(Cold.S.ok()) << Cold.S.toString();
  ASSERT_EQ(Cold.numHits(), 0u);
  ASSERT_TRUE(Cold.MA.Functions[0].Success)
      << Cold.MA.Functions[0].Diag.toString();
  EXPECT_EQ(Cold.MA.Functions[0].Outcome, AllocOutcome::Converged);

  ServiceReply Warm = Svc.run(R);
  ASSERT_TRUE(Warm.S.ok()) << Warm.S.toString();
  ASSERT_EQ(Warm.numHits(), Warm.M->numFunctions());

  EXPECT_EQ(printModule(*Cold.M), printModule(*Warm.M));
  EXPECT_EQ(Cold.MA.Functions[0].ColorOf, Warm.MA.Functions[0].ColorOf);
  EXPECT_EQ(Cold.MA.Functions[0].Stats.totalSpills(),
            Warm.MA.Functions[0].Stats.totalSpills());
  EXPECT_EQ(Cold.MA.Functions[0].Stats.numPasses(),
            Warm.MA.Functions[0].Stats.numPasses());

  CacheStats CS = Svc.cacheStats();
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_EQ(CS.Misses, 1u);
  EXPECT_EQ(CS.Insertions, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ServiceBackendTest,
    ::testing::Values(
        BackendCase{Backend::GraphColoring, Heuristic::Chaitin},
        BackendCase{Backend::GraphColoring, Heuristic::Briggs},
        BackendCase{Backend::GraphColoring, Heuristic::MatulaBeck},
        BackendCase{Backend::LinearScan, Heuristic::Briggs}),
    [](const ::testing::TestParamInfo<BackendCase> &Info) {
      std::string Name = allocatorName(Info.param.B, Info.param.H);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

TEST(ServiceTest, PerRequestCacheOptOutBypassesTheCache) {
  AllocationService Svc;
  ServiceRequest R;
  R.Source = sumSource();
  R.Alloc = tightConfig(Backend::GraphColoring, Heuristic::Briggs);
  R.UseCache = false;

  ServiceReply A = Svc.run(R);
  ServiceReply B = Svc.run(R);
  ASSERT_TRUE(A.S.ok());
  ASSERT_TRUE(B.S.ok());
  EXPECT_EQ(A.numHits() + B.numHits(), 0u);
  CacheStats CS = Svc.cacheStats();
  EXPECT_EQ(CS.Hits + CS.Misses + CS.Insertions, 0u);
  // Still deterministic, just not memoized.
  EXPECT_EQ(printModule(*A.M), printModule(*B.M));
}

TEST(ServiceTest, FaultInjectedConfigsAreNeverCached) {
  AllocationService Svc;
  ServiceRequest R;
  R.Source = sumSource();
  R.Alloc = tightConfig(Backend::GraphColoring, Heuristic::Briggs);
  R.Alloc.FaultInject.Miscolor = true; // degrades via the audit ladder

  ServiceReply A = Svc.run(R);
  ASSERT_TRUE(A.S.ok());
  ServiceReply B = Svc.run(R);
  ASSERT_TRUE(B.S.ok());
  EXPECT_EQ(A.numHits() + B.numHits(), 0u);
  EXPECT_EQ(Svc.cacheStats().Insertions, 0u);
}

TEST(ServiceTest, ParseFailureIsStructuredAndModuleFree) {
  AllocationService Svc;
  ServiceRequest R;
  R.Source = "this is not a module";
  ServiceReply Reply = Svc.run(R);
  EXPECT_FALSE(Reply.S.ok());
  EXPECT_EQ(Reply.S.code(), StatusCode::ParseError);
  EXPECT_EQ(Reply.M, nullptr);
}

// Concurrent clients hammering one service: half replay one shared
// module (same key), half send distinct modules (distinct keys). Every
// reply must match the single-threaded reference byte for byte.
TEST(ServiceTest, ConcurrentHammerStaysConsistent) {
  const unsigned Threads = 8, Iters = 6;
  AllocatorConfig C = tightConfig(Backend::GraphColoring,
                                  Heuristic::Briggs);

  const std::string Shared = sumSource();
  std::vector<std::string> Distinct(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Distinct[T] = sumSource(("fn" + std::to_string(T)).c_str());

  // Single-threaded references.
  std::string SharedRef;
  std::vector<std::string> DistinctRef(Threads);
  {
    AllocationService Ref;
    ServiceRequest R;
    R.Alloc = C;
    R.Source = Shared;
    SharedRef = printModule(*Ref.run(R).M);
    for (unsigned T = 0; T < Threads; ++T) {
      R.Source = Distinct[T];
      DistinctRef[T] = printModule(*Ref.run(R).M);
    }
  }

  AllocationService Svc;
  std::vector<std::string> Failures(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (unsigned I = 0; I < Iters; ++I) {
        ServiceRequest R;
        R.Alloc = C;
        const bool UseShared = (T % 2) == 0;
        R.Source = UseShared ? Shared : Distinct[T];
        ServiceReply Reply = Svc.run(R);
        if (!Reply.S.ok()) {
          Failures[T] = Reply.S.toString();
          return;
        }
        std::string Got = printModule(*Reply.M);
        const std::string &Want = UseShared ? SharedRef : DistinctRef[T];
        if (Got != Want) {
          Failures[T] = "byte divergence on iteration " +
                        std::to_string(I);
          return;
        }
      }
    });
  for (std::thread &T : Pool)
    T.join();
  for (unsigned T = 0; T < Threads; ++T)
    EXPECT_TRUE(Failures[T].empty()) << "thread " << T << ": "
                                     << Failures[T];

  // Every request either hit or missed; misses inserted at most once
  // per distinct key (benign races may drop duplicate insertions).
  CacheStats CS = Svc.cacheStats();
  EXPECT_EQ(CS.Hits + CS.Misses, uint64_t(Threads) * Iters);
  EXPECT_GE(CS.Hits, 1u);
  EXPECT_LE(CS.Entries, 1u + Threads / 2);
}

TEST(ServiceTest, CacheCountersFlowIntoTraceSessions) {
  trace::beginSession();
  {
    AllocationService Svc;
    ServiceRequest R;
    R.Source = sumSource();
    R.Alloc = tightConfig(Backend::GraphColoring, Heuristic::Briggs);
    (void)Svc.run(R);
    (void)Svc.run(R);
  }
  trace::SessionLog Log = trace::endSession();
  EXPECT_EQ(Log.counter("cache.hits"), 1.0);
  EXPECT_EQ(Log.counter("cache.misses"), 1.0);
  EXPECT_GT(Log.counter("cache.bytes"), 0.0);
}

//===--------------------------------------------------------------------===//
// AllocCache bounds.
//===--------------------------------------------------------------------===//

TEST(AllocCacheTest, LruEvictionDropsLeastRecentlyUsed) {
  AllocCache C(/*MaxEntries=*/2, /*MaxBytes=*/0);
  AllocCache::Value V;
  EXPECT_TRUE(C.insert("a", V));
  EXPECT_TRUE(C.insert("b", V));
  // Touch "a": "b" becomes the LRU tail.
  AllocCache::Value Out;
  EXPECT_TRUE(C.lookup("a", Out));
  EXPECT_TRUE(C.insert("c", V));

  EXPECT_TRUE(C.lookup("a", Out));
  EXPECT_FALSE(C.lookup("b", Out)) << "LRU entry was not the one evicted";
  EXPECT_TRUE(C.lookup("c", Out));

  CacheStats S = C.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(AllocCacheTest, DuplicateInsertKeepsTheFirstEntry) {
  AllocCache C(/*MaxEntries=*/0, /*MaxBytes=*/0);
  AllocCache::Value V;
  EXPECT_TRUE(C.insert("k", V));
  EXPECT_FALSE(C.insert("k", V));
  EXPECT_EQ(C.stats().Insertions, 1u);
  EXPECT_EQ(C.stats().Entries, 1u);
}

TEST(AllocCacheTest, ByteCeilingRefusesOversizeEntries) {
  AllocCache::Value V;
  const uint64_t OneEntry = AllocCache::estimateBytes("k1", V);
  AllocCache C(/*MaxEntries=*/0, /*MaxBytes=*/OneEntry / 2);
  EXPECT_FALSE(C.insert("k1", V))
      << "an entry larger than the whole ceiling must be refused";
  CacheStats S = C.stats();
  EXPECT_EQ(S.Refusals, 1u);
  EXPECT_EQ(S.Insertions, 0u);
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.BytesInUse, 0u);

  // The refusal must not poison the cache for entries that do fit:
  // the Budget token is re-armed, smaller keys still insert.
  AllocCache Fits(/*MaxEntries=*/0, /*MaxBytes=*/OneEntry * 2);
  EXPECT_TRUE(Fits.insert("k1", V));
  EXPECT_EQ(Fits.stats().BytesInUse, OneEntry);
}

TEST(AllocCacheTest, ByteCeilingEvictsUntilTheNewEntryFits) {
  AllocCache::Value V;
  const uint64_t OneEntry = AllocCache::estimateBytes("k1", V);
  // Room for one entry plus change, never two.
  AllocCache C(/*MaxEntries=*/0, /*MaxBytes=*/OneEntry + OneEntry / 2);
  EXPECT_TRUE(C.insert("k1", V));
  EXPECT_TRUE(C.insert("k2", V)) << "eviction should have made room";

  AllocCache::Value Out;
  EXPECT_FALSE(C.lookup("k1", Out));
  EXPECT_TRUE(C.lookup("k2", Out));
  CacheStats S = C.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_LE(S.BytesInUse, OneEntry + OneEntry / 2);
  EXPECT_EQ(S.Refusals, 0u);
}

TEST(AllocCacheTest, ClearReleasesEveryChargedByte) {
  AllocCache::Value V;
  const uint64_t OneEntry = AllocCache::estimateBytes("k1", V);
  AllocCache C(/*MaxEntries=*/0, /*MaxBytes=*/OneEntry * 4);
  EXPECT_TRUE(C.insert("k1", V));
  EXPECT_TRUE(C.insert("k2", V));
  C.clear();
  EXPECT_EQ(C.stats().Entries, 0u);
  EXPECT_EQ(C.stats().BytesInUse, 0u);
  // Freed budget is genuinely reusable.
  EXPECT_TRUE(C.insert("k3", V));
  EXPECT_TRUE(C.insert("k4", V));
  EXPECT_TRUE(C.insert("k5", V));
  EXPECT_TRUE(C.insert("k6", V));
}

//===--------------------------------------------------------------------===//
// Content keys.
//===--------------------------------------------------------------------===//

TEST(ContentHashTest, KeysAreDeliberatelyRenameSensitive) {
  // Alpha-equivalent functions (same shape, different names) must get
  // DIFFERENT keys: the cache stores the rewritten function verbatim,
  // and substituting a clone named @sum into a module expecting @other
  // would corrupt the module. Rename-insensitivity is explicitly NOT
  // assumed or attempted.
  Module A, B, C2;
  std::string EA, EB, EC;
  parseModule(sumSource("sum", "i"), A, EA);
  parseModule(sumSource("other", "i"), B, EB);
  parseModule(sumSource("sum", "j"), C2, EC);
  ASSERT_TRUE(EA.empty() && EB.empty() && EC.empty());

  AllocatorConfig C = tightConfig(Backend::GraphColoring,
                                  Heuristic::Briggs);
  std::string KeyA = canonicalFunctionKey(A, A.function(0), C, true);
  std::string KeyB = canonicalFunctionKey(B, B.function(0), C, true);
  std::string KeyC = canonicalFunctionKey(C2, C2.function(0), C, true);
  EXPECT_NE(KeyA, KeyB) << "function rename must change the key";
  EXPECT_NE(KeyA, KeyC) << "vreg rename must change the key";

  // Same content, parsed twice -> same key (and same short hash).
  Module A2;
  std::string EA2;
  parseModule(sumSource("sum", "i"), A2, EA2);
  ASSERT_TRUE(EA2.empty());
  std::string KeyA2 = canonicalFunctionKey(A2, A2.function(0), C, true);
  EXPECT_EQ(KeyA, KeyA2);
  EXPECT_EQ(contentHash(KeyA), contentHash(KeyA2));
}

TEST(ContentHashTest, ResultChangingConfigFieldsChangeTheKey) {
  Module M;
  std::string E;
  parseModule(sumSource(), M, E);
  ASSERT_TRUE(E.empty());
  AllocatorConfig C = tightConfig(Backend::GraphColoring,
                                  Heuristic::Briggs);
  const std::string Base = canonicalFunctionKey(M, M.function(0), C, true);

  AllocatorConfig C2 = C;
  C2.H = Heuristic::Chaitin;
  EXPECT_NE(Base, canonicalFunctionKey(M, M.function(0), C2, true));
  C2 = C;
  C2.B = Backend::LinearScan;
  EXPECT_NE(Base, canonicalFunctionKey(M, M.function(0), C2, true));
  C2 = C;
  C2.Machine = MachineInfo(4, 2);
  EXPECT_NE(Base, canonicalFunctionKey(M, M.function(0), C2, true));
  C2 = C;
  C2.Rematerialize = true;
  EXPECT_NE(Base, canonicalFunctionKey(M, M.function(0), C2, true));
  EXPECT_NE(Base, canonicalFunctionKey(M, M.function(0), C, false))
      << "the optimize toggle changes what gets allocated";
}

TEST(ContentHashTest, PurePerformanceKnobsDoNotChangeTheKey) {
  Module M;
  std::string E;
  parseModule(sumSource(), M, E);
  ASSERT_TRUE(E.empty());
  AllocatorConfig C = tightConfig(Backend::GraphColoring,
                                  Heuristic::Briggs);
  const std::string Base = canonicalFunctionKey(M, M.function(0), C, true);

  // Every knob here is proven byte-identical elsewhere (ParallelAlloc,
  // ParallelColoring, megakernel_scaling); including them would shatter
  // the cache across equivalent configurations.
  AllocatorConfig C2 = C;
  C2.Jobs = 16;
  C2.ParallelClasses = !C2.ParallelClasses;
  C2.ParallelGraph = true;
  C2.ParallelGraphJobs = 7;
  C2.ParallelGraphMinNodes = 0;
  EXPECT_EQ(Base, canonicalFunctionKey(M, M.function(0), C2, true));

  // Governance limits are excluded too: only Converged results are
  // cached, and a converged run under a deadline is identical to the
  // unbounded run by construction.
  C2 = C;
  C2.DeadlineSeconds = 5;
  C2.MemoryBudgetBytes = 1ull << 30;
  EXPECT_EQ(Base, canonicalFunctionKey(M, M.function(0), C2, true));

  EXPECT_FALSE(cacheableConfig([] {
    AllocatorConfig F;
    F.FaultInject.Miscolor = true;
    return F;
  }()));
  EXPECT_TRUE(cacheableConfig(C));
}

TEST(ContentHashTest, ArrayTableParticipatesInTheKey) {
  // Instructions reference arrays by id; a cached clone substituted
  // into a module with a different array table would silently retarget
  // its loads and stores. The key must therefore pin the table.
  Module A, B;
  std::string EA, EB;
  std::string SrcA = sumSource();
  parseModule(SrcA, A, EA);
  // Same function text, but the module declares a differently-sized
  // array table.
  std::string SrcB = SrcA;
  size_t Pos = SrcB.find("[64]");
  ASSERT_NE(Pos, std::string::npos);
  SrcB.replace(Pos, 4, "[32]");
  parseModule(SrcB, B, EB);
  ASSERT_TRUE(EA.empty() && EB.empty());

  AllocatorConfig C = tightConfig(Backend::GraphColoring,
                                  Heuristic::Briggs);
  EXPECT_NE(canonicalFunctionKey(A, A.function(0), C, true),
            canonicalFunctionKey(B, B.function(0), C, true));
}

TEST(ContentHashTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors pin the implementation.
  EXPECT_EQ(fnv1a64("", 0), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171F73967E8ull);
}

} // namespace
