//===- tests/SimulatorTest.cpp - interpreter and cost-model tests ---------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "sim/Simulator.h"
#include "target/CostModel.h"
#include "target/MachineInfo.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

struct Fixture {
  Module M;
  Function *F;
  IRBuilder B;

  Fixture() : F(&M.newFunction("t")), B(M, *F) {
    B.setInsertPoint(B.newBlock("entry"));
  }
};

TEST(SimulatorTest, ArithmeticAndReturn) {
  Fixture T;
  VRegId A = T.B.movI(6);
  VRegId Bv = T.B.movI(7);
  VRegId C = T.B.mul(A, Bv);
  T.B.ret(C);
  Simulator Sim(T.M);
  MemoryImage Mem(T.M);
  ExecutionResult R = Sim.runVirtual(*T.F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.HasIntReturn);
  EXPECT_EQ(R.IntReturn, 42);
  EXPECT_EQ(R.Instructions, 4u);
}

TEST(SimulatorTest, FloatOpsAndConversions) {
  Fixture T;
  VRegId I = T.B.movI(-9);
  VRegId Fv = T.B.itof(I);
  VRegId Ab = T.B.fabs(Fv);
  VRegId Sq = T.B.fsqrt(Ab);
  VRegId Back = T.B.ftoi(Sq);
  T.B.ret(Back);
  Simulator Sim(T.M);
  MemoryImage Mem(T.M);
  ExecutionResult R = Sim.runVirtual(*T.F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.IntReturn, 3);
}

TEST(SimulatorTest, TrapsOnDivisionByZero) {
  Fixture T;
  VRegId A = T.B.movI(1);
  VRegId Z = T.B.movI(0);
  T.B.div(A, Z);
  T.B.ret();
  Simulator Sim(T.M);
  MemoryImage Mem(T.M);
  ExecutionResult R = Sim.runVirtual(*T.F, Mem);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(SimulatorTest, TrapsOnNegativeSqrt) {
  Fixture T;
  VRegId V = T.B.movF(-1.0);
  T.B.fsqrt(V);
  T.B.ret();
  Simulator Sim(T.M);
  MemoryImage Mem(T.M);
  ExecutionResult R = Sim.runVirtual(*T.F, Mem);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("negative"), std::string::npos);
}

TEST(SimulatorTest, TrapsOnOutOfBoundsAccess) {
  Module M;
  uint32_t A = M.newArray("a", 4, RegClass::Int);
  Function &F = M.newFunction("t");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Idx = B.movI(4); // one past the end
  VRegId V = B.movI(1);
  B.store(A, Idx, V);
  B.ret();
  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("out of bounds"), std::string::npos);
}

TEST(SimulatorTest, TrapsOnInstructionBudget) {
  Fixture T;
  uint32_t Loop = T.B.newBlock("loop");
  T.B.jmp(Loop);
  T.B.setInsertPoint(Loop);
  T.B.jmp(Loop); // infinite
  Simulator Sim(T.M);
  MemoryImage Mem(T.M);
  ExecutionResult R =
      Sim.runVirtual(*T.F, Mem, SimOptions{.MaxInstructions = 1000});
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
  EXPECT_EQ(R.Diag.code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(R.Instructions, 1000u);
}

TEST(SimulatorTest, SpillSlotsRoundTripBothClasses) {
  Fixture T;
  unsigned SInt = T.F->newSpillSlot(RegClass::Int);
  unsigned SFlt = T.F->newSpillSlot(RegClass::Float);
  VRegId I = T.B.movI(123);
  VRegId Fv = T.B.movF(1.25);
  T.B.emit({Opcode::SpillSt, {Operand::reg(I), Operand::intImm(SInt)}});
  T.B.emit({Opcode::SpillSt, {Operand::reg(Fv), Operand::intImm(SFlt)}});
  VRegId I2 = T.F->newVReg(RegClass::Int, "i2");
  VRegId F2 = T.F->newVReg(RegClass::Float, "f2");
  T.B.emit({Opcode::SpillLd, {Operand::reg(I2), Operand::intImm(SInt)}});
  T.B.emit({Opcode::SpillLd, {Operand::reg(F2), Operand::intImm(SFlt)}});
  VRegId Sum = T.B.add(I2, T.B.ftoi(F2));
  T.B.ret(Sum);
  Simulator Sim(T.M);
  MemoryImage Mem(T.M);
  ExecutionResult R = Sim.runVirtual(*T.F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntReturn, 124);
  EXPECT_EQ(R.SpillOps, 4u);
  EXPECT_GT(R.SpillCycles, 0u);
}

TEST(SimulatorTest, CyclesFollowTheCostModel) {
  Fixture T;
  VRegId A = T.B.movF(2.0);
  VRegId Bv = T.B.movF(3.0);
  T.B.fdiv(A, Bv);
  T.B.ret();
  CostModel CM = CostModel::rtpc();
  Simulator Sim(T.M, CM);
  MemoryImage Mem(T.M);
  ExecutionResult R = Sim.runVirtual(*T.F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Cycles, CM.cycles(Opcode::MovF) * 2 +
                          CM.cycles(Opcode::FDiv) +
                          CM.cycles(Opcode::Ret));
}

TEST(SimulatorTest, FloatReturnIsReported) {
  Fixture T;
  VRegId V = T.B.movF(2.5);
  T.B.ret(V);
  Simulator Sim(T.M);
  MemoryImage Mem(T.M);
  ExecutionResult R = Sim.runVirtual(*T.F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.HasFloatReturn);
  EXPECT_FALSE(R.HasIntReturn);
  EXPECT_EQ(R.FloatReturn, 2.5);
}

TEST(CostModelTest, RelativeCostsMatchTheTarget) {
  CostModel CM = CostModel::rtpc();
  // FP is much more expensive than integer work (RT/PC coprocessor);
  // this ratio is what keeps the paper's dynamic improvements small on
  // FP codes and visible on integer codes.
  EXPECT_GT(CM.cycles(Opcode::FAdd), 5 * CM.cycles(Opcode::Add));
  EXPECT_GT(CM.cycles(Opcode::FDiv), CM.cycles(Opcode::FMul));
  EXPECT_GT(CM.cycles(Opcode::FSqrt), CM.cycles(Opcode::FDiv));
  EXPECT_EQ(CM.bytesPerInstruction(), 4u);
  EXPECT_EQ(CM.spillLoadCost(), CM.cycles(Opcode::SpillLd));
}

TEST(MachineInfoTest, FileSizes) {
  MachineInfo M = MachineInfo::rtpc();
  EXPECT_EQ(M.numRegs(RegClass::Int), 16u);
  EXPECT_EQ(M.numRegs(RegClass::Float), 8u);
  MachineInfo Shrunk = M.withIntRegs(10);
  EXPECT_EQ(Shrunk.numRegs(RegClass::Int), 10u);
  EXPECT_EQ(Shrunk.numRegs(RegClass::Float), 8u);
  MachineInfo F4 = M.withFloatRegs(4);
  EXPECT_EQ(F4.numRegs(RegClass::Float), 4u);
}

TEST(MemoryImageTest, TypedStorageAndEquality) {
  Module M;
  uint32_t A = M.newArray("ints", 4, RegClass::Int);
  uint32_t B = M.newArray("flts", 4, RegClass::Float);
  MemoryImage M1(M), M2(M);
  EXPECT_TRUE(M1 == M2);
  M1.intArray(A)[2] = 5;
  EXPECT_FALSE(M1 == M2);
  M2.intArray(A)[2] = 5;
  EXPECT_TRUE(M1 == M2);
  M1.floatArray(B)[0] = 0.5;
  EXPECT_FALSE(M1 == M2);
}

} // namespace
