//===- tests/AnalysisPropertyTest.cpp - analyses vs brute force -----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Randomized cross-checks of the dataflow machinery against independent
// brute-force implementations: dominance by reachability-after-removal,
// liveness by per-instruction backward propagation. The generated CFGs
// are arbitrary digraphs (including irreducible shapes), which the
// structured workloads never produce.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

/// Builds a random CFG with \p NumBlocks blocks whose bodies use a
/// small pool of integer registers (liveness does not require
/// definite assignment, so defs and uses are placed freely).
struct RandomCfg {
  Module M;
  Function *F;
  std::vector<VRegId> Pool;

  RandomCfg(uint64_t Seed, unsigned NumBlocks, unsigned PoolSize = 6) {
    Rng R(Seed);
    F = &M.newFunction("rand");
    IRBuilder B(M, *F);
    for (unsigned I = 0; I < NumBlocks; ++I)
      B.newBlock("b" + std::to_string(I));
    for (unsigned I = 0; I < PoolSize; ++I)
      Pool.push_back(F->newVReg(RegClass::Int, "p" + std::to_string(I)));

    for (unsigned I = 0; I < NumBlocks; ++I) {
      B.setInsertPoint(I);
      // A few random def/use instructions.
      unsigned N = 1 + unsigned(R.nextBelow(4));
      for (unsigned S = 0; S < N; ++S) {
        VRegId D = Pool[R.nextBelow(Pool.size())];
        VRegId U1 = Pool[R.nextBelow(Pool.size())];
        VRegId U2 = Pool[R.nextBelow(Pool.size())];
        switch (R.nextBelow(3)) {
        case 0:
          B.movI(int64_t(R.nextBelow(100)), D);
          break;
        case 1:
          B.add(U1, U2, D);
          break;
        case 2:
          B.addI(U1, 1, D);
          break;
        }
      }
      // Random terminator.
      switch (R.nextBelow(4)) {
      case 0:
        B.ret(Pool[R.nextBelow(Pool.size())]);
        break;
      case 1:
        B.jmp(uint32_t(R.nextBelow(NumBlocks)));
        break;
      default:
        B.br(CmpKind::LT, Pool[R.nextBelow(Pool.size())],
             Pool[R.nextBelow(Pool.size())],
             uint32_t(R.nextBelow(NumBlocks)),
             uint32_t(R.nextBelow(NumBlocks)));
        break;
      }
    }
  }
};

/// Reachability from \p From, optionally treating \p Removed as absent.
std::vector<bool> reachable(const Function &F, uint32_t From,
                            int32_t Removed) {
  std::vector<bool> Seen(F.numBlocks(), false);
  if (int32_t(From) == Removed)
    return Seen;
  std::vector<uint32_t> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    for (uint32_t S : F.block(B).successors())
      if (int32_t(S) != Removed && !Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  return Seen;
}

class AnalysisSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalysisSeeds, DominatorsMatchRemovalReachability) {
  RandomCfg T(GetParam(), 12);
  CFG G = CFG::compute(*T.F);
  Dominators D = Dominators::compute(*T.F, G);

  std::vector<bool> FromEntry = reachable(*T.F, T.F->entry(), -1);
  for (uint32_t A = 0; A < T.F->numBlocks(); ++A) {
    if (!FromEntry[A])
      continue;
    // Ground truth: A dominates B iff removing A cuts B off from entry.
    std::vector<bool> Without = reachable(*T.F, T.F->entry(), int32_t(A));
    for (uint32_t B = 0; B < T.F->numBlocks(); ++B) {
      if (!FromEntry[B])
        continue;
      bool Truth = (A == B) || !Without[B];
      EXPECT_EQ(D.dominates(A, B), Truth)
          << "seed " << GetParam() << ": dom(" << A << ", " << B << ")";
    }
  }
}

TEST_P(AnalysisSeeds, LivenessMatchesInstructionLevelFixpoint) {
  RandomCfg T(GetParam(), 10);
  const Function &F = *T.F;
  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);

  // Brute force: one live set per instruction position, iterated to a
  // fixpoint with no block-level summaries.
  unsigned NR = F.numVRegs();
  std::vector<std::vector<BitVector>> LiveBefore(F.numBlocks());
  for (uint32_t B = 0; B < F.numBlocks(); ++B)
    LiveBefore[B].assign(F.block(B).Insts.size() + 1, BitVector(NR));

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B = 0; B < F.numBlocks(); ++B) {
      const auto &Insts = F.block(B).Insts;
      // After the last instruction: union of successors' entry sets.
      BitVector Out(NR);
      for (uint32_t S : F.block(B).successors())
        Out.unionWith(LiveBefore[S][0]);
      if (!(Out == LiveBefore[B][Insts.size()])) {
        LiveBefore[B][Insts.size()] = Out;
        Changed = true;
      }
      for (unsigned I = Insts.size(); I-- > 0;) {
        BitVector Cur = LiveBefore[B][I + 1];
        if (Insts[I].hasDef())
          Cur.reset(Insts[I].defReg());
        Insts[I].forEachUse([&](VRegId R) { Cur.set(R); });
        if (!(Cur == LiveBefore[B][I])) {
          LiveBefore[B][I] = Cur;
          Changed = true;
        }
      }
    }
  }

  for (uint32_t B = 0; B < F.numBlocks(); ++B) {
    EXPECT_TRUE(LV.liveIn(B) == LiveBefore[B][0])
        << "seed " << GetParam() << " live-in of block " << B;
    EXPECT_TRUE(LV.liveOut(B) ==
                LiveBefore[B][F.block(B).Insts.size()])
        << "seed " << GetParam() << " live-out of block " << B;
  }
}

TEST_P(AnalysisSeeds, LoopDepthsAreConsistentWithBackEdges) {
  RandomCfg T(GetParam(), 12);
  CFG G = CFG::compute(*T.F);
  Dominators D = Dominators::compute(*T.F, G);
  LoopInfo LI = LoopInfo::compute(*T.F, G, D);

  // Every loop header must be the target of a back edge from inside
  // its own body, and depth(header) >= 1.
  for (const Loop &L : LI.loops()) {
    EXPECT_GE(LI.depth(L.Header), 1u);
    bool HasLatch = false;
    for (uint32_t B : L.Blocks)
      for (uint32_t S : T.F->block(B).successors())
        if (S == L.Header)
          HasLatch = true;
    EXPECT_TRUE(HasLatch) << "header " << L.Header;
    // The header dominates every block of its natural loop.
    for (uint32_t B : L.Blocks)
      if (G.isReachable(B))
        EXPECT_TRUE(D.dominates(L.Header, B));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisSeeds,
                         ::testing::Range(uint64_t(100), uint64_t(120)));

} // namespace
