//===- tests/LiveIntervalTest.cpp - interval construction tests -----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Proves the LiveIntervals contract at slot granularity: an interval
// covers a read slot iff the range is live before that instruction, and
// covers a write slot iff the range is live after it or defined by it.
// The check replays the dataflow solution instruction by instruction —
// an independent oracle, since LiveIntervals only consumes the solver's
// block-boundary sets — and runs over the whole regression corpus and
// the workload suite, plus handwritten hole/loop/two-class cases.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/InstrNumbering.h"
#include "analysis/Liveness.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "linearscan/LiveInterval.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace ra;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Replays liveness backward through every instruction of \p F and
/// asserts the slot-level equivalence with the computed intervals.
void expectIntervalsMatchDataflow(const Function &F,
                                  const std::string &Context) {
  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);

  for (uint32_t B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock &BB = F.block(B);
    // LiveAfter of the block's last instruction is the dataflow LiveOut.
    std::vector<bool> LiveAfter(F.numVRegs(), false);
    LV.liveOut(B).forEachSetBit([&](unsigned R) { LiveAfter[R] = true; });

    for (unsigned Idx = BB.Insts.size(); Idx-- > 0;) {
      const Instruction &I = BB.Insts[Idx];
      const SlotIndex Read = Num.readSlot(B, Idx);
      const SlotIndex Write = Num.writeSlot(B, Idx);

      // LiveBefore = uses(I) ∪ (LiveAfter − defs(I)).
      std::vector<bool> LiveBefore = LiveAfter;
      if (I.hasDef())
        LiveBefore[I.defReg()] = false;
      I.forEachUse([&](VRegId R) { LiveBefore[R] = true; });

      for (VRegId R = 0; R < F.numVRegs(); ++R) {
        const bool Defined = I.hasDef() && I.defReg() == R;
        EXPECT_EQ(LI.interval(R).covers(Write), LiveAfter[R] || Defined)
            << Context << ": vreg " << F.vreg(R).Name << " at write slot "
            << Write << " (block " << B << " inst " << Idx << ")";
        EXPECT_EQ(LI.interval(R).covers(Read), LiveBefore[R])
            << Context << ": vreg " << F.vreg(R).Name << " at read slot "
            << Read << " (block " << B << " inst " << Idx << ")";
      }
      LiveAfter = std::move(LiveBefore);
    }
    // The replayed entry state must close the loop with the solver.
    for (VRegId R = 0; R < F.numVRegs(); ++R)
      EXPECT_EQ(LiveAfter[R], LV.liveIn(B).test(R))
          << Context << ": block " << B << " live-in disagrees for "
          << F.vreg(R).Name;
  }
}

//===--------------------------------------------------------------------===//
// Corpus and workload sweeps.
//===--------------------------------------------------------------------===//

TEST(LiveIntervalTest, MatchesDataflowOnCorpus) {
  for (int Seed = 0; Seed < 8; ++Seed) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "seed%04d.ral", Seed);
    std::string Path = std::string(RA_TESTS_DIR) + "/corpus/" + Name;
    std::string Text = readFile(Path);
    ASSERT_FALSE(Text.empty()) << Path;
    Module M;
    std::string Error;
    ASSERT_TRUE(parseModule(Text, M, Error)) << Path << ": " << Error;
    for (unsigned I = 0; I < M.numFunctions(); ++I)
      expectIntervalsMatchDataflow(M.function(I), Name);
  }
}

TEST(LiveIntervalTest, MatchesDataflowOnWorkloads) {
  for (const Workload &W : allWorkloads()) {
    Module M;
    Function &F = W.Build(M);
    expectIntervalsMatchDataflow(F, W.Routine);
  }
}

//===--------------------------------------------------------------------===//
// Handwritten shapes.
//===--------------------------------------------------------------------===//

TEST(LiveIntervalTest, DiamondDefInBothArmsHasHole) {
  // x is defined in both arms of a diamond and used at the join: dead
  // over the second arm's prefix, so its interval must carry a hole.
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Then = B.newBlock("then");
  uint32_t Else = B.newBlock("else");
  uint32_t Join = B.newBlock("join");
  B.setInsertPoint(Entry);
  VRegId C = B.movI(1);
  VRegId Z = B.movI(0);
  B.br(CmpKind::LT, C, Z, Then, Else);
  VRegId X = B.iReg("x");
  B.setInsertPoint(Then);
  B.movI(10, X);
  B.jmp(Join);
  B.setInsertPoint(Else);
  VRegId Pad = B.movI(3); // genuine prefix before the redefinition
  B.movI(20, X);
  B.jmp(Join);
  B.setInsertPoint(Join);
  B.ret(X);
  (void)Pad;

  expectIntervalsMatchDataflow(F, "diamond");

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  const LiveInterval &IX = LI.interval(X);
  ASSERT_EQ(IX.Segments.size(), 2u)
      << "x must be dead over the else prefix";
  EXPECT_TRUE(IX.covers(Num.writeSlot(Then, 0)));
  EXPECT_FALSE(IX.covers(Num.readSlot(Else, 0)))
      << "hole: x is dead at the else block's first instruction";
  EXPECT_TRUE(IX.covers(Num.writeSlot(Else, 1)));
  EXPECT_TRUE(IX.covers(Num.readSlot(Join, 0)));
}

TEST(LiveIntervalTest, LoopKeepsValueLiveThroughBackEdge) {
  // x defined before the loop, used only in the body: the back edge
  // keeps it live through the whole head/body region in one segment.
  Module M;
  uint32_t Arr = M.newArray("a", 8, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Head = B.newBlock("head");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  VRegId X = B.movI(9);
  VRegId I = B.iReg("i");
  VRegId N = B.movI(4);
  B.movI(0, I);
  B.jmp(Head);
  B.setInsertPoint(Head);
  B.br(CmpKind::LT, I, N, Body, Exit);
  B.setInsertPoint(Body);
  B.store(Arr, I, X);
  B.addI(I, 1, I);
  B.jmp(Head);
  B.setInsertPoint(Exit);
  B.ret();

  expectIntervalsMatchDataflow(F, "loop");

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  const LiveInterval &IX = LI.interval(X);
  ASSERT_EQ(IX.Segments.size(), 1u);
  // Live from its definition through the body's last use of it — in
  // particular across the head, where it is merely passing through.
  for (SlotIndex S = Num.writeSlot(Entry, 0); S <= Num.readSlot(Body, 0);
       ++S)
    EXPECT_TRUE(IX.covers(S)) << "slot " << S;
  EXPECT_FALSE(IX.covers(Num.blockFrom(Exit)))
      << "x is dead once the loop exits";
}

TEST(LiveIntervalTest, TwoClassesGetIndependentIntervals) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId IV = B.movI(1);
  VRegId FV = B.movF(2.0);
  VRegId I2 = B.addI(IV, 1);
  VRegId F2 = B.fadd(FV, FV);
  B.emit({Opcode::Ret, {Operand::reg(I2)}});
  (void)F2;

  expectIntervalsMatchDataflow(F, "two-class");

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  EXPECT_EQ(LI.interval(IV).Class, RegClass::Int);
  EXPECT_EQ(LI.interval(FV).Class, RegClass::Float);
  // Slot math is class-blind: the int and float values are live at the
  // same time and their intervals overlap; the walker keeps them apart
  // by walking each class against its own register file.
  EXPECT_TRUE(LI.interval(IV).overlaps(LI.interval(FV)));
}

TEST(LiveIntervalTest, DeadDefCoversOnlyItsWriteSlot) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId X = B.movI(5); // never used
  B.ret();

  expectIntervalsMatchDataflow(F, "dead-def");

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  const LiveInterval &IX = LI.interval(X);
  ASSERT_EQ(IX.Segments.size(), 1u);
  EXPECT_EQ(IX.start(), Num.writeSlot(0, 0));
  EXPECT_EQ(IX.stop(), Num.writeSlot(0, 0) + 1);
  EXPECT_FALSE(IX.covers(Num.readSlot(0, 0)))
      << "a dead def is not live at its own read slot";
}

TEST(LiveIntervalTest, DyingUseDoesNotConflictWithSameSlotDef) {
  // c = a + b: a and b die at the read slot, c is born at the write
  // slot — the half-open segments must not overlap, which is exactly
  // what lets the walker reuse a's register for c.
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId A = B.movI(1);
  VRegId Bv = B.movI(2);
  VRegId C = B.add(A, Bv);
  B.ret(C);

  CFG G = CFG::compute(F);
  Liveness LV = Liveness::compute(F, G);
  InstrNumbering Num = InstrNumbering::compute(F);
  LiveIntervals LI = LiveIntervals::compute(F, LV, Num);
  EXPECT_FALSE(LI.interval(A).overlaps(LI.interval(C)));
  EXPECT_FALSE(LI.interval(Bv).overlaps(LI.interval(C)));
  EXPECT_TRUE(LI.interval(A).overlaps(LI.interval(Bv)));
}

//===--------------------------------------------------------------------===//
// splitAt — the cut primitive second-chance splitting is built on.
//===--------------------------------------------------------------------===//

LiveInterval makeInterval(std::vector<IntervalSegment> Segs) {
  LiveInterval I;
  I.Reg = 7;
  I.Class = RegClass::Float;
  I.Cost = 42.5;
  I.Segments = std::move(Segs);
  return I;
}

TEST(LiveIntervalTest, SplitAtInsideSegmentCarvesIt) {
  LiveInterval I = makeInterval({{10, 20}, {30, 40}});
  auto [Head, Tail] = I.splitAt(14);
  ASSERT_EQ(Head.Segments.size(), 1u);
  EXPECT_EQ(Head.start(), 10u);
  EXPECT_EQ(Head.stop(), 14u);
  ASSERT_EQ(Tail.Segments.size(), 2u);
  EXPECT_EQ(Tail.start(), 14u);
  EXPECT_EQ(Tail.stop(), 40u);
  // Both halves keep the range identity the walker depends on.
  EXPECT_EQ(Head.Reg, I.Reg);
  EXPECT_EQ(Tail.Reg, I.Reg);
  EXPECT_EQ(Head.Class, I.Class);
  EXPECT_EQ(Tail.Class, I.Class);
  EXPECT_DOUBLE_EQ(Head.Cost, I.Cost);
  EXPECT_DOUBLE_EQ(Tail.Cost, I.Cost);
  EXPECT_EQ(Head.coveredSlots() + Tail.coveredSlots(), I.coveredSlots());
}

TEST(LiveIntervalTest, SplitAtHoleBoundaryPartitionsCleanly) {
  LiveInterval I = makeInterval({{10, 20}, {30, 40}});
  // Cut exactly where the first segment ends: no segment is carved.
  auto [HeadA, TailA] = I.splitAt(20);
  ASSERT_EQ(HeadA.Segments.size(), 1u);
  EXPECT_EQ(HeadA.stop(), 20u);
  ASSERT_EQ(TailA.Segments.size(), 1u);
  EXPECT_EQ(TailA.start(), 30u);
  // Cut inside the hole: same partition — the hole belongs to neither.
  auto [HeadB, TailB] = I.splitAt(25);
  EXPECT_EQ(HeadB.Segments, HeadA.Segments);
  EXPECT_EQ(TailB.Segments, TailA.Segments);
  // Cut where the second segment begins: the whole segment moves to
  // the tail.
  auto [HeadC, TailC] = I.splitAt(30);
  ASSERT_EQ(HeadC.Segments.size(), 1u);
  ASSERT_EQ(TailC.Segments.size(), 1u);
  EXPECT_EQ(TailC.start(), 30u);
  EXPECT_EQ(TailC.stop(), 40u);
}

TEST(LiveIntervalTest, SplitAtExtremesYieldsEmptyPiece) {
  LiveInterval I = makeInterval({{10, 20}, {30, 40}});
  // At or before start: everything is tail.
  auto [HeadA, TailA] = I.splitAt(10);
  EXPECT_TRUE(HeadA.empty());
  EXPECT_EQ(TailA.Segments, I.Segments);
  auto [HeadB, TailB] = I.splitAt(0);
  EXPECT_TRUE(HeadB.empty());
  EXPECT_EQ(TailB.Segments, I.Segments);
  // At or past stop: everything is head.
  auto [HeadC, TailC] = I.splitAt(40);
  EXPECT_EQ(HeadC.Segments, I.Segments);
  EXPECT_TRUE(TailC.empty());
  auto [HeadD, TailD] = I.splitAt(99);
  EXPECT_EQ(HeadD.Segments, I.Segments);
  EXPECT_TRUE(TailD.empty());
}

TEST(LiveIntervalTest, SplitAtSingleSegmentInterval) {
  LiveInterval I = makeInterval({{4, 12}});
  auto [Head, Tail] = I.splitAt(8);
  ASSERT_EQ(Head.Segments.size(), 1u);
  EXPECT_EQ(Head.start(), 4u);
  EXPECT_EQ(Head.stop(), 8u);
  ASSERT_EQ(Tail.Segments.size(), 1u);
  EXPECT_EQ(Tail.start(), 8u);
  EXPECT_EQ(Tail.stop(), 12u);
  EXPECT_FALSE(Head.overlaps(Tail));
}

} // namespace
