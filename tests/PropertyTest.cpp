//===- tests/PropertyTest.cpp - randomized end-to-end properties ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Randomized whole-pipeline invariants, seeded and deterministic:
// generated structured programs must verify, survive optimization, and
// compute bit-identical results virtually, after each heuristic's
// allocation, and across shrinking register files.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

struct Golden {
  int64_t IntReturn = 0;
  double FloatReturn = 0;
  uint64_t Instructions = 0;
};

Golden runGolden(uint64_t Seed, const RandomProgramConfig &C) {
  Module M;
  Function &F = buildRandomProgram(M, Seed, C);
  EXPECT_TRUE(verifyFunction(M, F).empty()) << "seed " << Seed;
  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  EXPECT_TRUE(R.Ok) << "seed " << Seed << ": " << R.Error;
  return {R.IntReturn, R.FloatReturn, R.Instructions};
}

class RandomPrograms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPrograms, AllocationIsTransparentAtEveryFileSize) {
  uint64_t Seed = GetParam();
  RandomProgramConfig C;
  Golden G = runGolden(Seed, C);

  for (Heuristic H :
       {Heuristic::Chaitin, Heuristic::Briggs, Heuristic::MatulaBeck}) {
    for (unsigned K : {16u, 6u, 4u}) {
      Module M;
      Function &F = buildRandomProgram(M, Seed, C);
      AllocatorConfig AC;
      AC.H = H;
      AC.Machine = MachineInfo(K, K);
      AC.MaxPasses = 64; // Matula-Beck can need more rounds
      AllocationResult A = allocateRegisters(F, AC);
      ASSERT_TRUE(A.Success)
          << "seed " << Seed << " " << heuristicName(H) << " k=" << K;
      ASSERT_TRUE(verifyFunction(M, F).empty());

      Simulator Sim(M);
      MemoryImage Mem(M);
      ExecutionResult R = Sim.runAllocated(F, A, Mem);
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(R.IntReturn, G.IntReturn)
          << "seed " << Seed << " " << heuristicName(H) << " k=" << K;
      EXPECT_EQ(R.FloatReturn, G.FloatReturn);
    }
  }
}

TEST_P(RandomPrograms, OptimizerIsTransparent) {
  uint64_t Seed = GetParam();
  RandomProgramConfig C;
  Golden G = runGolden(Seed, C);

  Module M;
  Function &F = buildRandomProgram(M, Seed, C);
  OptStats S = optimizeFunction(F);
  (void)S;
  ASSERT_TRUE(verifyFunction(M, F).empty()) << "seed " << Seed;
  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntReturn, G.IntReturn) << "seed " << Seed;
  EXPECT_EQ(R.FloatReturn, G.FloatReturn) << "seed " << Seed;
}

TEST_P(RandomPrograms, BriggsFirstPassSpillsSubsetOfChaitin) {
  uint64_t Seed = GetParam();
  RandomProgramConfig C;

  Module M1, M2;
  Function &F1 = buildRandomProgram(M1, Seed, C);
  Function &F2 = buildRandomProgram(M2, Seed, C);
  AllocatorConfig A1, A2;
  A1.H = Heuristic::Chaitin;
  A2.H = Heuristic::Briggs;
  A1.Machine = A2.Machine = MachineInfo(5, 4); // tight: force spills
  AllocationResult R1 = allocateRegisters(F1, A1);
  AllocationResult R2 = allocateRegisters(F2, A2);
  ASSERT_TRUE(R1.Success && R2.Success);
  ASSERT_FALSE(R1.Stats.Passes.empty());

  // Subset property on first-pass decisions (identical input graphs).
  const auto &Chaitin = R1.Stats.Passes[0].SpilledNames;
  const auto &Briggs = R2.Stats.Passes[0].SpilledNames;
  EXPECT_LE(Briggs.size(), Chaitin.size()) << "seed " << Seed;
  std::set<std::string> ChaitinSet(Chaitin.begin(), Chaitin.end());
  for (const std::string &Name : Briggs)
    EXPECT_TRUE(ChaitinSet.count(Name))
        << "seed " << Seed << ": Briggs spilled " << Name
        << " which Chaitin kept";
}

TEST_P(RandomPrograms, OptimizedProgramsAllocateAndMatch) {
  uint64_t Seed = GetParam();
  RandomProgramConfig C;
  Golden G = runGolden(Seed, C);

  Module M;
  Function &F = buildRandomProgram(M, Seed, C);
  optimizeFunction(F);
  AllocatorConfig AC;
  AC.H = Heuristic::Briggs;
  AC.Machine = MachineInfo(6, 5);
  AllocationResult A = allocateRegisters(F, AC);
  ASSERT_TRUE(A.Success) << "seed " << Seed;
  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runAllocated(F, A, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntReturn, G.IntReturn) << "seed " << Seed;
  EXPECT_EQ(R.FloatReturn, G.FloatReturn) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range(uint64_t(1), uint64_t(21)));

TEST(RandomProgramTest, GeneratorIsDeterministic) {
  Module M1, M2;
  Function &F1 = buildRandomProgram(M1, 99);
  Function &F2 = buildRandomProgram(M2, 99);
  EXPECT_EQ(F1.numInstructions(), F2.numInstructions());
  EXPECT_EQ(F1.numVRegs(), F2.numVRegs());
  EXPECT_EQ(F1.numBlocks(), F2.numBlocks());
}

TEST(RandomProgramTest, BiggerConfigMakesBiggerPrograms) {
  RandomProgramConfig Small;
  Small.Regions = 2;
  Small.StatementsPerBlock = 3;
  RandomProgramConfig Big;
  Big.Regions = 12;
  Big.StatementsPerBlock = 12;
  Module M1, M2;
  Function &F1 = buildRandomProgram(M1, 5, Small);
  Function &F2 = buildRandomProgram(M2, 5, Big);
  EXPECT_LT(F1.numInstructions(), F2.numInstructions());
}

} // namespace
