//===- tests/KernelBuilderTest.cpp - loop/if scaffold tests ---------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The FORTRAN-style scaffolding the workload reconstructions are built
// from must produce exactly the control flow it advertises.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "sim/Simulator.h"
#include "workloads/KernelBuilder.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

struct Kernel {
  Module M;
  Function *F;
  KernelBuilder B;

  Kernel() : F(&M.newFunction("k")), B(M, *F) {
    B.setInsertPoint(B.newBlock("entry"));
  }

  int64_t run() {
    Simulator Sim(M);
    MemoryImage Mem(M);
    ExecutionResult R = Sim.runVirtual(*F, Mem);
    EXPECT_TRUE(R.Ok) << R.Error;
    return R.IntReturn;
  }
};

TEST(KernelBuilderTest, ForLoopCountsInclusiveExclusive) {
  // sum of 0..9
  Kernel K;
  VRegId I = K.B.iReg("i");
  VRegId N = K.B.constI(10, "n");
  VRegId Sum = K.B.iReg("sum");
  K.B.movI(0, Sum);
  auto L = K.B.forLoop("l", I, 0, N);
  K.B.add(Sum, I, Sum);
  K.B.endDo(L);
  K.B.ret(Sum);
  EXPECT_TRUE(verifyFunction(K.M, *K.F).empty());
  EXPECT_EQ(K.run(), 45);
}

TEST(KernelBuilderTest, ForLoopWithStep) {
  // 0, 3, 6, 9 -> 4 iterations
  Kernel K;
  VRegId I = K.B.iReg("i");
  VRegId N = K.B.constI(10, "n");
  VRegId Count = K.B.iReg("count");
  K.B.movI(0, Count);
  auto L = K.B.forLoop("l", I, 0, N, 3);
  K.B.addI(Count, 1, Count);
  K.B.endDo(L);
  K.B.ret(Count);
  EXPECT_EQ(K.run(), 4);
}

TEST(KernelBuilderTest, ZeroTripLoopBodyNeverRuns) {
  Kernel K;
  VRegId I = K.B.iReg("i");
  VRegId N = K.B.constI(0, "n");
  VRegId Touched = K.B.iReg("touched");
  K.B.movI(0, Touched);
  auto L = K.B.forLoop("l", I, 5, N); // 5 >= 0: never enters
  K.B.movI(1, Touched);
  K.B.endDo(L);
  K.B.ret(Touched);
  EXPECT_EQ(K.run(), 0);
}

TEST(KernelBuilderTest, DownLoopDescendsInclusive) {
  // 5 + 4 + 3 + 2 + 1 + 0
  Kernel K;
  VRegId I = K.B.iReg("i");
  VRegId Zero = K.B.constI(0, "zero");
  VRegId Sum = K.B.iReg("sum");
  K.B.movI(0, Sum);
  K.B.movI(5, I);
  auto L = K.B.downLoopFrom("l", I, Zero);
  K.B.add(Sum, I, Sum);
  K.B.endDo(L);
  K.B.ret(Sum);
  EXPECT_EQ(K.run(), 15);
}

TEST(KernelBuilderTest, ForLoopRegUsesRegisterBound) {
  // for (i = lo; i < n) with lo = 3, n = 7 -> 4 iterations
  Kernel K;
  VRegId I = K.B.iReg("i");
  VRegId Lo = K.B.constI(3, "lo");
  VRegId N = K.B.constI(7, "n");
  VRegId Count = K.B.iReg("count");
  K.B.movI(0, Count);
  auto L = K.B.forLoopReg("l", I, Lo, N);
  K.B.addI(Count, 1, Count);
  K.B.endDo(L);
  K.B.ret(Count);
  EXPECT_EQ(K.run(), 4);
}

TEST(KernelBuilderTest, IfThenTakenAndNotTaken) {
  for (int64_t A : {1, 5}) {
    Kernel K;
    VRegId Av = K.B.constI(A, "a");
    VRegId Three = K.B.constI(3, "three");
    VRegId Out = K.B.iReg("out");
    K.B.movI(0, Out);
    auto If = K.B.ifCmp(CmpKind::GT, Av, Three, "gt3");
    K.B.movI(1, Out);
    K.B.endIf(If);
    K.B.ret(Out);
    EXPECT_EQ(K.run(), A > 3 ? 1 : 0);
  }
}

TEST(KernelBuilderTest, IfElseSelectsTheRightArm) {
  for (int64_t A : {1, 5}) {
    Kernel K;
    VRegId Av = K.B.constI(A, "a");
    VRegId Three = K.B.constI(3, "three");
    VRegId Out = K.B.iReg("out");
    auto If = K.B.ifElseCmp(CmpKind::GT, Av, Three, "gt3");
    K.B.movI(10, Out);
    K.B.elseBranch(If);
    K.B.movI(20, Out);
    K.B.endIf(If);
    K.B.ret(Out);
    EXPECT_EQ(K.run(), A > 3 ? 10 : 20);
  }
}

TEST(KernelBuilderTest, Index2DIsColumnMajor) {
  Kernel K;
  uint32_t A = K.M.newArray("a", 6 * 4, RegClass::Float);
  VRegId Row = K.B.constI(2, "row");
  VRegId Col = K.B.constI(3, "col");
  VRegId V = K.B.constF(1.25, "v");
  K.B.store2D(A, Row, Col, /*Ld=*/6, V);
  K.B.ret();

  Simulator Sim(K.M);
  MemoryImage Mem(K.M);
  ExecutionResult R = Sim.runVirtual(*K.F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(Mem.floatArray(A)[3 * 6 + 2], 1.25)
      << "a(2,3) with lda 6 lives at column*lda + row";
}

TEST(KernelBuilderTest, NestedLoopsCompose) {
  // 3 x 4 grid of increments.
  Kernel K;
  VRegId I = K.B.iReg("i"), J = K.B.iReg("j");
  VRegId NI = K.B.constI(3, "ni"), NJ = K.B.constI(4, "nj");
  VRegId Count = K.B.iReg("count");
  K.B.movI(0, Count);
  auto Li = K.B.forLoop("i", I, 0, NI);
  auto Lj = K.B.forLoop("j", J, 0, NJ);
  K.B.addI(Count, 1, Count);
  K.B.endDo(Lj);
  K.B.endDo(Li);
  K.B.ret(Count);
  EXPECT_EQ(K.run(), 12);
}

} // namespace
