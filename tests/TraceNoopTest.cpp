//===- tests/TraceNoopTest.cpp - compile-time-off tracing guard -----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// This translation unit is compiled with RA_NO_TRACING (see
// tests/CMakeLists.txt), the configuration instrumented code ships in
// when tracing is compiled out. The overhead guard: every RA_TRACE_*
// macro must expand to a no-op that does not even evaluate its
// arguments — asserted by bumping a counter from the argument
// expressions and demanding it stays at zero *while a session is
// actively collecting*.
//
//===----------------------------------------------------------------------===//

#ifndef RA_NO_TRACING
#error "TraceNoopTest.cpp must be compiled with RA_NO_TRACING"
#endif

#include "support/Trace.h"

#include <gtest/gtest.h>

namespace {

int SideEffects = 0;

// [[maybe_unused]] because compiling this TU proves the point: with
// RA_NO_TRACING the macros never even reference these functions.
[[maybe_unused]] const char *touchName() {
  ++SideEffects;
  return "Phase";
}

[[maybe_unused]] double touchValue() {
  ++SideEffects;
  return 1.0;
}

TEST(TraceNoop, MacrosDoNotEvaluateArguments) {
  // A live session makes the check strict: even the runtime-on path
  // must be unreachable from a TU that compiled tracing out.
  ra::trace::beginSession();
  SideEffects = 0;
  {
    RA_TRACE_SPAN(touchName(), "test",
                  [] { return std::string("built"); });
    RA_TRACE_SPAN_NAMED(Named, touchName(), "test");
    RA_TRACE_CONTEXT(std::string(touchName()));
    RA_TRACE_COUNTER(touchName(), touchValue());
    RA_TRACE_INSTANT(touchName(), "test");
    Named.close(); // NoopSpan keeps the close() shape
  }
  EXPECT_EQ(SideEffects, 0)
      << "RA_NO_TRACING macro expansion evaluated an argument";

  ra::trace::SessionLog Log = ra::trace::endSession();
  EXPECT_TRUE(Log.Events.empty())
      << "RA_NO_TRACING instrumentation recorded an event";
  EXPECT_EQ(Log.counter("Phase"), 0.0);
}

// The allocation cache's hot-path counters are instrumented with the
// same macros (AllocCache.cpp emits cache.hits / cache.misses /
// cache.evictions / cache.bytes / cache.refusals on every lookup and
// insert). This pins the shape those call sites rely on: with tracing
// compiled out, a cache operation's telemetry costs literally nothing —
// not even the delta computation.
TEST(TraceNoop, CacheCounterShapedCallsCostNothing) {
  ra::trace::beginSession();
  SideEffects = 0;
  RA_TRACE_COUNTER("cache.hits", touchValue());
  RA_TRACE_COUNTER("cache.misses", touchValue());
  RA_TRACE_COUNTER("cache.evictions", touchValue());
  RA_TRACE_COUNTER("cache.refusals", touchValue());
  RA_TRACE_COUNTER("cache.bytes", -touchValue()); // eviction's negative delta
  EXPECT_EQ(SideEffects, 0)
      << "RA_NO_TRACING cache counter evaluated its delta";

  ra::trace::SessionLog Log = ra::trace::endSession();
  EXPECT_TRUE(Log.Events.empty());
  EXPECT_EQ(Log.counter("cache.hits"), 0.0);
  EXPECT_EQ(Log.counter("cache.bytes"), 0.0);
}

} // namespace
