//===- tests/TraceTest.cpp - tracing/metrics subsystem tests --------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The tracing subsystem's contracts: sessions collect spans / counters /
// instants from any thread; with no session active nothing is recorded
// and detail lambdas are never invoked; the normalized event log of an
// allocation is bit-identical at any worker count; and the golden files
// under tests/golden/ pin the normalized trace, the Chrome JSON shape
// (volatile fields masked), and the per-range metrics CSV for a canned
// input. Regenerate goldens with RA_UPDATE_GOLDEN=1.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "regalloc/Allocator.h"
#include "support/Status.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace ra;

namespace {

std::string testsDir() { return RA_TESTS_DIR; }

std::string readFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path);
  Ok = bool(In);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Compares \p Actual against the golden file \p Name; with
/// RA_UPDATE_GOLDEN set, rewrites the golden instead.
void compareGolden(const std::string &Name, const std::string &Actual) {
  std::string Path = testsDir() + "/golden/" + Name;
  if (std::getenv("RA_UPDATE_GOLDEN")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out) << "cannot write " << Path;
    Out << Actual;
    return;
  }
  bool Ok = false;
  std::string Expected = readFile(Path, Ok);
  ASSERT_TRUE(Ok) << Path
                  << " missing — regenerate with RA_UPDATE_GOLDEN=1";
  EXPECT_EQ(Expected, Actual) << "golden mismatch for " << Name
                              << " — regenerate with RA_UPDATE_GOLDEN=1 "
                                 "if the change is intended";
}

/// The normalizing comparator for machine-readable dumps: masks the
/// volatile fields (timestamps, durations, thread ids) with '_' so only
/// the deterministic structure is compared.
std::string maskVolatile(std::string S) {
  for (const char *Key : {"\"ts\":", "\"dur\":", "\"tid\":"}) {
    size_t Pos = 0;
    while ((Pos = S.find(Key, Pos)) != std::string::npos) {
      Pos += std::strlen(Key);
      size_t End = Pos;
      while (End < S.size() &&
             (std::isdigit(static_cast<unsigned char>(S[End])) ||
              S[End] == '.'))
        ++End;
      S.replace(Pos, End - Pos, "_");
      ++Pos;
    }
  }
  return S;
}

/// Parses the canned golden input and allocates it under a session,
/// returning the collected log (and the metrics CSV when requested).
trace::SessionLog tracedAllocation(unsigned Jobs,
                                   std::string *MetricsCsv = nullptr) {
  bool Ok = false;
  std::string Input = readFile(testsDir() + "/golden/trace_input.ral", Ok);
  EXPECT_TRUE(Ok) << "missing tests/golden/trace_input.ral";

  Module M;
  std::string Error;
  EXPECT_TRUE(parseModule(Input, M, Error)) << Error;

  AllocatorConfig C;
  C.Machine = MachineInfo(4, 2); // tight: the canned loop must spill
  C.Jobs = Jobs;
  C.Audit = true; // pin the AllocationAudit span independent of RA_AUDIT
  C.CollectMetrics = MetricsCsv != nullptr;

  trace::beginSession();
  ModuleAllocationResult MA = allocateModule(M, C);
  trace::SessionLog Log = trace::endSession();

  for (const AllocationResult &A : MA.Functions)
    EXPECT_TRUE(A.Success) << A.Diag.toString();
  if (MetricsCsv) {
    *MetricsCsv = metricsCsvHeader();
    for (unsigned I = 0; I < M.numFunctions(); ++I)
      appendMetricsCsv(*MetricsCsv, M.function(I).name(),
                       MA.Functions[I].Metrics);
  }
  return Log;
}

//===--------------------------------------------------------------------===//
// Core collection semantics.
//===--------------------------------------------------------------------===//

TEST(Trace, SessionCollectsSpansCountersAndInstants) {
  trace::beginSession();
  {
    RA_TRACE_SPAN("Phase", "test", [] { return std::string("k=1"); });
    RA_TRACE_COUNTER("test.bumps", 2);
    RA_TRACE_COUNTER("test.bumps", 3);
    RA_TRACE_INSTANT("Marker", "test");
  }
  trace::SessionLog Log = trace::endSession();

  ASSERT_EQ(Log.Events.size(), 4u);
  EXPECT_EQ(Log.counter("test.bumps"), 5.0);
  EXPECT_EQ(Log.counter("never.bumped"), 0.0);

  unsigned Spans = 0, Counters = 0, Instants = 0;
  for (const trace::Event &E : Log.Events) {
    switch (E.Kind) {
    case trace::EventKind::Span:
      ++Spans;
      EXPECT_STREQ(E.Name, "Phase");
      EXPECT_EQ(E.Detail, "k=1");
      break;
    case trace::EventKind::Counter:
      ++Counters;
      break;
    case trace::EventKind::Instant:
      ++Instants;
      break;
    case trace::EventKind::ThreadName:
      break;
    }
  }
  EXPECT_EQ(Spans, 1u);
  EXPECT_EQ(Counters, 2u);
  EXPECT_EQ(Instants, 1u);
}

TEST(Trace, NoSessionRecordsNothingAndSkipsDetailLambdas) {
  ASSERT_FALSE(trace::enabled());
  bool DetailBuilt = false;
  {
    RA_TRACE_SPAN("Phase", "test", [&] {
      DetailBuilt = true;
      return std::string("expensive");
    });
    RA_TRACE_COUNTER("test.off", 1);
  }
  EXPECT_FALSE(DetailBuilt) << "detail lambda ran with tracing off";

  trace::beginSession();
  trace::SessionLog Log = trace::endSession();
  EXPECT_TRUE(Log.Events.empty())
      << "events recorded outside a session leaked into the next one";
}

TEST(Trace, SecondSessionStartsEmpty) {
  trace::beginSession();
  RA_TRACE_COUNTER("test.stale", 7);
  (void)trace::endSession();

  trace::beginSession();
  trace::SessionLog Log = trace::endSession();
  EXPECT_TRUE(Log.Events.empty());
  EXPECT_EQ(Log.counter("test.stale"), 0.0);
}

TEST(Trace, CountersAggregateAcrossThreads) {
  trace::beginSession();
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I < 100; ++I)
        RA_TRACE_COUNTER("test.parallel", 1);
    });
  for (std::thread &T : Threads)
    T.join();
  trace::SessionLog Log = trace::endSession();
  EXPECT_EQ(Log.counter("test.parallel"), 400.0);
  EXPECT_EQ(Log.Events.size(), 400u);
}

TEST(Trace, ScopedContextNestsAndRestores) {
  trace::beginSession();
  EXPECT_EQ(trace::ScopedContext::current(), "");
  {
    trace::ScopedContext Outer(std::string("@outer"));
    EXPECT_EQ(trace::ScopedContext::current(), "@outer");
    {
      trace::ScopedContext Inner(std::string("@outer/helper"));
      RA_TRACE_INSTANT("Inside", "test");
      EXPECT_EQ(trace::ScopedContext::current(), "@outer/helper");
    }
    EXPECT_EQ(trace::ScopedContext::current(), "@outer");
  }
  EXPECT_EQ(trace::ScopedContext::current(), "");
  trace::SessionLog Log = trace::endSession();
  ASSERT_EQ(Log.Events.size(), 1u);
  EXPECT_EQ(Log.Events[0].Ctx, "@outer/helper");
}

TEST(Trace, SpanCloseIsIdempotent) {
  trace::beginSession();
  {
    RA_TRACE_SPAN_NAMED(S, "Phase", "test");
    S.close();
    S.close(); // second close must not double-record
  }
  trace::SessionLog Log = trace::endSession();
  EXPECT_EQ(Log.Events.size(), 1u);
}

//===--------------------------------------------------------------------===//
// Pipeline instrumentation: every phase shows up, and the normalized
// log is invariant under the worker count.
//===--------------------------------------------------------------------===//

TEST(Trace, PipelineEmitsAllPhaseSpans) {
  trace::SessionLog Log = tracedAllocation(/*Jobs=*/1);
  auto HasSpan = [&](const char *Name) {
    for (const trace::Event &E : Log.Events)
      if (E.Kind == trace::EventKind::Span && !std::strcmp(E.Name, Name))
        return true;
    return false;
  };
  for (const char *Phase :
       {"BuildGraph", "Coalesce", "SpillCost", "Simplify", "Select",
        "SpillInserter", "AllocationAudit", "AllocateFunction", "Build",
        "Pass", "Renumber", "ModuleAlloc"})
    EXPECT_TRUE(HasSpan(Phase)) << "missing span " << Phase;
  EXPECT_GT(Log.counter("coloring.spilled"), 0.0)
      << "canned input must spill at int=4";
}

TEST(Trace, NormalizedLogIdenticalAtAnyJobCount) {
  std::string Serial = trace::normalizedLog(tracedAllocation(1));
  std::string Parallel4 = trace::normalizedLog(tracedAllocation(4));
  std::string Parallel7 = trace::normalizedLog(tracedAllocation(7));
  EXPECT_EQ(Serial, Parallel4);
  EXPECT_EQ(Serial, Parallel7);
}

TEST(Trace, EventsCarryFunctionContext) {
  trace::SessionLog Log = tracedAllocation(/*Jobs=*/2);
  bool SawHot = false, SawTiny = false;
  for (const trace::Event &E : Log.Events) {
    if (E.Ctx == "@hot")
      SawHot = true;
    if (E.Ctx == "@tiny")
      SawTiny = true;
  }
  EXPECT_TRUE(SawHot);
  EXPECT_TRUE(SawTiny);
}

//===--------------------------------------------------------------------===//
// Golden files.
//===--------------------------------------------------------------------===//

TEST(TraceGolden, NormalizedLogMatchesGolden) {
  compareGolden("trace_normalized.golden",
                trace::normalizedLog(tracedAllocation(/*Jobs=*/1)));
}

TEST(TraceGolden, ChromeJsonMatchesGoldenModuloVolatileFields) {
  std::string Json = trace::toChromeJson(tracedAllocation(/*Jobs=*/1));
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  compareGolden("trace_chrome.golden", maskVolatile(Json));
}

TEST(TraceGolden, MetricsCsvMatchesGolden) {
  std::string Csv;
  (void)tracedAllocation(/*Jobs=*/1, &Csv);
  compareGolden("metrics.golden", Csv);
}

//===--------------------------------------------------------------------===//
// JSON writer error paths.
//===--------------------------------------------------------------------===//

TEST(Trace, WriteChromeJsonRoundTripsThroughDisk) {
  trace::beginSession();
  RA_TRACE_INSTANT("Only", "test");
  trace::SessionLog Log = trace::endSession();

  std::string Path = ::testing::TempDir() + "trace_roundtrip.json";
  Status S = trace::writeChromeJson(Path, Log);
  ASSERT_TRUE(S.ok()) << S.toString();
  bool Ok = false;
  std::string OnDisk = readFile(Path, Ok);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(OnDisk, trace::toChromeJson(Log));
  std::remove(Path.c_str());
}

} // namespace
