//===- tests/ParallelAllocTest.cpp - pool, heap picker, CSR, module -------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The parallel-allocation contract: any worker count produces output
// bit-identical to serial allocation, and the O(log n) heap-based spill
// candidate selection picks the exact node sequence the old O(n) linear
// rescan picked.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "regalloc/Allocator.h"
#include "regalloc/Coloring.h"
#include "regalloc/DegreeBuckets.h"
#include "regalloc/SpillHeap.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

using namespace ra;

namespace {

//===--------------------------------------------------------------------===//
// ThreadPool.
//===--------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryTaskAndReturnsResults) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 100; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Futures[I].get(), I * I);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 64; ++I)
      Pool.submit([&Ran] { ++Ran; });
  } // destructor must run all 64 before joining
  EXPECT_EQ(Ran.load(), 64);
}

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolveJobs(3), 3u);
  EXPECT_GE(ThreadPool::resolveJobs(0), 1u); // hardware, at least one
}

TEST(ThreadPoolTest, TaskExceptionReachesFutureNotWorker) {
  ThreadPool Pool(2);
  auto Boom = Pool.submit([]() -> int {
    throw std::runtime_error("task exploded");
  });
  // The exception must surface from get() on the collecting thread...
  EXPECT_THROW(
      {
        try {
          Boom.get();
        } catch (const std::runtime_error &E) {
          EXPECT_STREQ(E.what(), "task exploded");
          throw;
        }
      },
      std::runtime_error);
  // ...and the worker that ran it must still be alive for later tasks.
  std::vector<std::future<int>> After;
  for (int I = 0; I < 16; ++I)
    After.push_back(Pool.submit([I] { return I + 1; }));
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(After[I].get(), I + 1);
}

//===--------------------------------------------------------------------===//
// CSR adjacency layout.
//===--------------------------------------------------------------------===//

TEST(InterferenceGraphCSRTest, NeighborsFollowInsertionOrder) {
  InterferenceGraph G(5);
  G.addEdge(0, 3);
  G.addEdge(0, 1);
  G.addEdge(2, 0);
  G.addEdge(4, 2);
  G.finalize();
  ASSERT_EQ(G.degree(0), 3u);
  std::vector<uint32_t> N0(G.neighbors(0).begin(), G.neighbors(0).end());
  // Exactly the order the old per-node vectors produced.
  EXPECT_EQ(N0, (std::vector<uint32_t>{3, 1, 2}));
  std::vector<uint32_t> N2(G.neighbors(2).begin(), G.neighbors(2).end());
  EXPECT_EQ(N2, (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(G.numEdges(), 4u);
}

TEST(InterferenceGraphCSRTest, AddEdgeAfterFinalizeRebuilds) {
  InterferenceGraph G(4);
  G.addEdge(0, 1);
  G.finalize();
  EXPECT_EQ(G.neighbors(0).size(), 1u);
  EXPECT_TRUE(G.addEdge(0, 2));
  EXPECT_FALSE(G.addEdge(1, 0)); // duplicate, either orientation
  EXPECT_EQ(G.degree(0), 2u);
  std::vector<uint32_t> N0(G.neighbors(0).begin(), G.neighbors(0).end());
  EXPECT_EQ(N0, (std::vector<uint32_t>{1, 2}));
}

//===--------------------------------------------------------------------===//
// Heap-based spill candidate selection vs the linear rescan.
//===--------------------------------------------------------------------===//

InterferenceGraph makeRandomGraph(unsigned NumNodes, double AvgDegree,
                                  uint64_t Seed, double NoSpillP = 0.0) {
  InterferenceGraph G(NumNodes);
  Rng R(Seed);
  uint64_t Edges = uint64_t(NumNodes * AvgDegree / 2);
  for (uint64_t E = 0; E < Edges; ++E)
    G.addEdge(R.nextBelow(NumNodes), R.nextBelow(NumNodes));
  for (unsigned N = 0; N < NumNodes; ++N) {
    // Coarse costs make ratio ties common, exercising the id tie-break.
    G.node(N).SpillCost = double(1 + R.nextBelow(8));
    G.node(N).NoSpill = R.nextBool(NoSpillP);
  }
  G.finalize();
  return G;
}

/// The original O(n) rescan, kept verbatim as the reference oracle.
uint32_t pickSpillCandidateLinear(const InterferenceGraph &G,
                                  const DegreeBuckets &Buckets) {
  uint32_t Best = DegreeBuckets::None;
  double BestRatio = 0;
  bool BestNoSpill = true;
  for (uint32_t N = 0, E = G.numNodes(); N != E; ++N) {
    if (Buckets.isRemoved(N))
      continue;
    const IGNode &Node = G.node(N);
    uint32_t Deg = Buckets.degree(N);
    double Ratio = Node.NoSpill ? InterferenceGraph::InfiniteCost
                                : Node.SpillCost / double(Deg);
    bool Better;
    if (Best == DegreeBuckets::None)
      Better = true;
    else if (Node.NoSpill != BestNoSpill)
      Better = !Node.NoSpill;
    else
      Better = Ratio < BestRatio;
    if (Better) {
      Best = N;
      BestRatio = Ratio;
      BestNoSpill = Node.NoSpill;
    }
  }
  return Best;
}

/// Runs the simplify loop with both pickers in lockstep and returns the
/// stuck-step node sequence chosen by the heap (asserting each choice
/// equals the linear oracle's).
std::vector<uint32_t> runLockstep(const InterferenceGraph &G, unsigned K) {
  DegreeBuckets Buckets;
  {
    std::vector<uint32_t> Degrees(G.numNodes());
    for (uint32_t I = 0; I < G.numNodes(); ++I)
      Degrees[I] = G.degree(I);
    Buckets.init(Degrees);
  }
  SpillCandidateHeap Heap;
  std::vector<uint32_t> Picks;

  uint32_t Hint = 0;
  while (Buckets.numLive() != 0) {
    uint32_t D = Buckets.lowestNonEmpty(Hint);
    uint32_t Chosen;
    if (D < K) {
      Chosen = Buckets.head(D);
    } else {
      if (!Heap.active())
        Heap.build(G, Buckets);
      uint32_t FromHeap = Heap.pick(Buckets);
      uint32_t FromScan = pickSpillCandidateLinear(G, Buckets);
      EXPECT_EQ(FromHeap, FromScan)
          << "divergence after " << Picks.size() << " stuck steps";
      Chosen = FromHeap;
      Picks.push_back(Chosen);
    }
    Buckets.remove(Chosen);
    for (uint32_t M : G.neighbors(Chosen))
      if (!Buckets.isRemoved(M)) {
        Buckets.decrementDegree(M);
        if (Buckets.degree(M) > 0)
          Heap.update(G, M, Buckets.degree(M));
      }
    Hint = D == 0 ? 0 : D - 1;
  }
  return Picks;
}

TEST(SpillHeapTest, MatchesLinearScanOnRandomGraphs) {
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    InterferenceGraph G =
        makeRandomGraph(400, 10.0 + double(Seed), 90 + Seed);
    std::vector<uint32_t> Picks = runLockstep(G, 4);
    EXPECT_FALSE(Picks.empty()) << "seed " << Seed
                                << ": graph never got stuck; weak test";
  }
}

TEST(SpillHeapTest, MatchesLinearScanWithNoSpillNodes) {
  for (uint64_t Seed : {11u, 12u, 13u, 14u}) {
    // Enough NoSpill nodes that the stuck region must rank them last.
    InterferenceGraph G =
        makeRandomGraph(300, 12.0, 700 + Seed, /*NoSpillP=*/0.3);
    runLockstep(G, 3);
  }
}

TEST(SpillHeapTest, ColorGraphUnchangedByHeapPicker) {
  // End-to-end: Chaitin and Briggs over the same stuck-heavy graph
  // still satisfy the paper's subset guarantee, and colorings validate.
  InterferenceGraph G = makeRandomGraph(600, 14.0, 42);
  ColoringResult Chaitin = colorGraph(G, 6, Heuristic::Chaitin);
  ColoringResult Briggs = colorGraph(G, 6, Heuristic::Briggs);
  EXPECT_TRUE(isValidColoring(G, 6, Chaitin));
  EXPECT_TRUE(isValidColoring(G, 6, Briggs));
  EXPECT_LE(Briggs.Spilled.size(), Chaitin.Spilled.size());
  std::set<uint32_t> ChaitinSet(Chaitin.Spilled.begin(),
                                Chaitin.Spilled.end());
  for (uint32_t N : Briggs.Spilled)
    EXPECT_TRUE(ChaitinSet.count(N)) << "node " << N;
}

//===--------------------------------------------------------------------===//
// allocateModule: parallel output is bit-identical to serial.
//===--------------------------------------------------------------------===//

/// Builds the determinism workload: a module of random functions plus
/// real routines, deterministic for a fixed \p Salt.
void buildWorkloadModule(Module &M, uint64_t Salt) {
  for (uint64_t I = 0; I < 6; ++I)
    buildRandomProgram(M, Salt + I);
  buildDAXPY(M);
  buildDDOT(M);
  buildQuicksort(M, 1000);
}

struct ModuleSnapshot {
  std::vector<std::string> Printed;
  std::vector<std::vector<int32_t>> Colors;
  std::vector<std::vector<std::string>> SpilledNames;
  bool Success = true;

  bool operator==(const ModuleSnapshot &O) const {
    return Printed == O.Printed && Colors == O.Colors &&
           SpilledNames == O.SpilledNames && Success == O.Success;
  }
};

ModuleSnapshot allocateSnapshot(uint64_t Salt, const AllocatorConfig &C) {
  Module M;
  buildWorkloadModule(M, Salt);
  ModuleAllocationResult R = allocateModule(M, C);
  ModuleSnapshot S;
  S.Success = R.allSucceeded();
  for (unsigned I = 0; I < M.numFunctions(); ++I) {
    S.Printed.push_back(printFunction(M, M.function(I)));
    S.Colors.push_back(R.Functions[I].ColorOf);
    std::vector<std::string> Names;
    for (const PassRecord &P : R.Functions[I].Stats.Passes)
      Names.insert(Names.end(), P.SpilledNames.begin(),
                   P.SpilledNames.end());
    S.SpilledNames.push_back(std::move(Names));
  }
  return S;
}

TEST(AllocateModuleTest, ParallelIsBitIdenticalToSerial) {
  AllocatorConfig C;
  C.Machine = MachineInfo(8, 6); // tight enough to force spills
  C.Jobs = 1;
  ModuleSnapshot Serial = allocateSnapshot(5000, C);
  ASSERT_TRUE(Serial.Success);
  bool SawSpill = false;
  for (const auto &Names : Serial.SpilledNames)
    SawSpill |= !Names.empty();
  EXPECT_TRUE(SawSpill) << "workload spilled nothing; weak test";

  for (unsigned Jobs : {2u, 4u, 7u}) {
    C.Jobs = Jobs;
    ModuleSnapshot Parallel = allocateSnapshot(5000, C);
    EXPECT_TRUE(Serial == Parallel) << "jobs=" << Jobs;
  }
}

TEST(AllocateModuleTest, MatchesPerFunctionAllocateRegisters) {
  AllocatorConfig C;
  C.Machine = MachineInfo(7, 5);
  C.Jobs = 3;
  ModuleSnapshot Pooled = allocateSnapshot(9000, C);

  Module M;
  buildWorkloadModule(M, 9000);
  for (unsigned I = 0; I < M.numFunctions(); ++I) {
    AllocationResult A = allocateRegisters(M.function(I), C);
    EXPECT_EQ(A.Success, true) << "function " << I;
    EXPECT_EQ(Pooled.Colors[I], A.ColorOf) << "function " << I;
    EXPECT_EQ(Pooled.Printed[I], printFunction(M, M.function(I)))
        << "function " << I;
  }
}

TEST(AllocateModuleTest, ParallelClassColoringIsIdentical) {
  // GRADNT is large enough that both class graphs cross the
  // per-class threading threshold.
  AllocatorConfig On, Off;
  On.ParallelClasses = true;
  Off.ParallelClasses = false;
  Module M1, M2;
  Function &F1 = buildGRADNT(M1);
  Function &F2 = buildGRADNT(M2);
  AllocationResult R1 = allocateRegisters(F1, On);
  AllocationResult R2 = allocateRegisters(F2, Off);
  ASSERT_TRUE(R1.Success && R2.Success);
  EXPECT_EQ(R1.ColorOf, R2.ColorOf);
  EXPECT_EQ(printFunction(M1, F1), printFunction(M2, F2));
}

TEST(AllocateModuleTest, WorkerExceptionFailsOnlyThatFunction) {
  // A function whose allocation throws must come back as one Failed
  // result with a worker-error diagnostic; every other function of the
  // module still allocates, under both the serial and the pooled path.
  for (unsigned Jobs : {1u, 4u}) {
    Module M;
    buildWorkloadModule(M, 5000);
    ASSERT_GE(M.numFunctions(), 2u);
    const std::string Victim = M.function(1).name();

    AllocatorConfig C;
    C.Jobs = Jobs;
    C.FaultInject.ThrowInFunction = Victim;
    ModuleAllocationResult R = allocateModule(M, C);
    ASSERT_EQ(R.Functions.size(), M.numFunctions());
    EXPECT_FALSE(R.allSucceeded());

    for (unsigned I = 0; I < M.numFunctions(); ++I) {
      const AllocationResult &A = R.Functions[I];
      if (M.function(I).name() == Victim) {
        EXPECT_FALSE(A.Success) << "jobs=" << Jobs;
        EXPECT_EQ(A.Outcome, AllocOutcome::Failed);
        EXPECT_EQ(A.Diag.code(), StatusCode::WorkerError);
        EXPECT_NE(A.Diag.toString().find(Victim), std::string::npos)
            << A.Diag.toString();
      } else {
        EXPECT_TRUE(A.Success)
            << "jobs=" << Jobs << " @" << M.function(I).name() << ": "
            << A.Diag.toString();
      }
    }
  }
}

TEST(AllocateModuleTest, WorkerExceptionDoesNotPoisonSiblingBudgets) {
  // The hardest combination: pool workers, in-graph parallel Select,
  // per-function budgets, and one function that throws mid-allocation.
  // The thrown function must come back Failed/WorkerError; every
  // sibling must still produce a usable (Converged or Degraded)
  // allocation with its *own* budget telemetry — a worker's death must
  // not leak pool threads or latch a sibling's budget token. Running
  // the whole thing twice in one process proves the pool survives.
  for (int Round = 0; Round < 2; ++Round) {
    Module M;
    buildWorkloadModule(M, 7000);
    ASSERT_GE(M.numFunctions(), 3u);
    const std::string Victim = M.function(2).name();

    AllocatorConfig C;
    C.Jobs = 4;
    C.ParallelGraph = true;
    C.ParallelGraphJobs = 3;
    C.ParallelGraphMinNodes = 0;
    C.DeadlineSeconds = 30;                 // generous: must not trip
    C.MemoryBudgetBytes = 1ull << 30;
    C.FaultInject.ThrowInFunction = Victim;
    ModuleAllocationResult R = allocateModule(M, C);
    ASSERT_EQ(R.Functions.size(), M.numFunctions());

    for (unsigned I = 0; I < M.numFunctions(); ++I) {
      const AllocationResult &A = R.Functions[I];
      if (M.function(I).name() == Victim) {
        EXPECT_FALSE(A.Success) << "round " << Round;
        EXPECT_EQ(A.Outcome, AllocOutcome::Failed);
        EXPECT_EQ(A.Diag.code(), StatusCode::WorkerError);
      } else {
        EXPECT_TRUE(A.Success)
            << "round " << Round << " @" << M.function(I).name() << ": "
            << A.Diag.toString();
        EXPECT_EQ(A.Outcome, AllocOutcome::Converged)
            << "round " << Round << " @" << M.function(I).name()
            << ": a sibling's budget latched: " << A.Diag.toString();
        // Each sibling carries its own token's telemetry: the
        // governed pipeline polled it at least once.
        EXPECT_GT(A.BudgetCheckpoints, 0u)
            << "round " << Round << " @" << M.function(I).name();
      }
    }
  }
}

} // namespace
