//===- tests/ColoringTest.cpp - heuristic and graph-structure tests -------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Tests the three simplify/select heuristics on the paper's own example
// graphs (Figures 2 and 3), on random graphs (coloring validity and the
// Section 2.3 guarantee that the optimistic method spills a subset of
// what Chaitin spills), and the degree-bucket worklist of Section 2.2.
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"
#include "regalloc/DegreeBuckets.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace ra;

namespace {

InterferenceGraph makeGraph(unsigned N,
                            std::initializer_list<std::pair<int, int>> Edges) {
  InterferenceGraph G(N);
  for (auto [A, B] : Edges)
    G.addEdge(unsigned(A), unsigned(B));
  for (unsigned I = 0; I < N; ++I)
    G.node(I).SpillCost = 100; // equal costs, as in the paper's example
  return G;
}

/// The paper's Figure 2: five nodes, 3-colorable; both heuristics
/// color it with three colors and no spills.
InterferenceGraph figure2() {
  // a-b, a-c, b-c, b-d, c-d, d-e (a triangle plus a tail).
  return makeGraph(5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
}

/// The paper's Figure 3: the 4-cycle w-x-z-y-w. 2-colorable, but every
/// node has degree 2, so Chaitin's simplification gets stuck at k = 2.
InterferenceGraph figure3() {
  return makeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
}

TEST(ColoringTest, Figure2ThreeColorsEveryHeuristic) {
  for (Heuristic H :
       {Heuristic::Chaitin, Heuristic::Briggs, Heuristic::MatulaBeck}) {
    InterferenceGraph G = figure2();
    ColoringResult R = colorGraph(G, 3, H);
    EXPECT_TRUE(R.success()) << heuristicName(H);
    EXPECT_TRUE(isValidColoring(G, 3, R)) << heuristicName(H);
    EXPECT_EQ(R.NumColorsUsed, 3u) << heuristicName(H);
  }
}

TEST(ColoringTest, Figure3DiamondCycle) {
  // The motivating example: Chaitin spills on the 2-colorable 4-cycle;
  // the optimistic heuristic (and smallest-last) 2-color it.
  {
    InterferenceGraph G = figure3();
    ColoringResult R = colorGraph(G, 2, Heuristic::Chaitin);
    EXPECT_FALSE(R.success())
        << "Chaitin's simplification must get stuck on the 4-cycle";
    EXPECT_EQ(R.Spilled.size(), 1u);
    EXPECT_TRUE(isValidColoring(G, 2, R));
  }
  for (Heuristic H : {Heuristic::Briggs, Heuristic::MatulaBeck}) {
    InterferenceGraph G = figure3();
    ColoringResult R = colorGraph(G, 2, H);
    EXPECT_TRUE(R.success()) << heuristicName(H);
    EXPECT_TRUE(isValidColoring(G, 2, R));
    EXPECT_EQ(R.NumColorsUsed, 2u);
  }
}

TEST(ColoringTest, CliqueNeedsExactlyCliqueSizeColors) {
  const unsigned N = 6;
  InterferenceGraph G(N);
  for (unsigned A = 0; A < N; ++A)
    for (unsigned B = A + 1; B < N; ++B)
      G.addEdge(A, B);
  for (unsigned I = 0; I < N; ++I)
    G.node(I).SpillCost = 1 + I;

  for (Heuristic H : {Heuristic::Chaitin, Heuristic::Briggs}) {
    ColoringResult Full = colorGraph(G, N, H);
    EXPECT_TRUE(Full.success());
    EXPECT_EQ(Full.NumColorsUsed, N);
    ColoringResult Short = colorGraph(G, N - 2, H);
    EXPECT_EQ(Short.Spilled.size(), 2u)
        << heuristicName(H) << ": a clique forces exactly the excess";
    // With distinct costs and equal degrees, the cheapest nodes spill.
    std::set<uint32_t> Spilled(Short.Spilled.begin(), Short.Spilled.end());
    EXPECT_TRUE(Spilled.count(0));
    EXPECT_TRUE(Spilled.count(1));
  }
}

TEST(ColoringTest, EmptyAndTrivialGraphs) {
  InterferenceGraph Empty(0);
  ColoringResult R = colorGraph(Empty, 4, Heuristic::Briggs);
  EXPECT_TRUE(R.success());

  InterferenceGraph Isolated(3);
  ColoringResult R2 = colorGraph(Isolated, 1, Heuristic::Chaitin);
  EXPECT_TRUE(R2.success());
  EXPECT_EQ(R2.NumColorsUsed, 1u) << "isolated nodes share one color";
}

TEST(ColoringTest, NoSpillNodesAreSpilledLast) {
  // Clique of 4, k=2: two must go. Nodes 0 and 1 are protected
  // (NoSpill); the heuristic must pick 2 and 3 even though they are
  // more expensive.
  InterferenceGraph G(4);
  for (unsigned A = 0; A < 4; ++A)
    for (unsigned B = A + 1; B < 4; ++B)
      G.addEdge(A, B);
  G.node(0).SpillCost = 1;
  G.node(0).NoSpill = true;
  G.node(1).SpillCost = 2;
  G.node(1).NoSpill = true;
  G.node(2).SpillCost = 1000;
  G.node(3).SpillCost = 2000;
  ColoringResult R = colorGraph(G, 2, Heuristic::Chaitin);
  std::set<uint32_t> Spilled(R.Spilled.begin(), R.Spilled.end());
  EXPECT_EQ(Spilled, (std::set<uint32_t>{2, 3}));
}

//===--------------------------------------------------------------------===//
// Random-graph properties.
//===--------------------------------------------------------------------===//

InterferenceGraph randomGraph(Rng &R, unsigned N, double Density) {
  InterferenceGraph G(N);
  for (unsigned A = 0; A < N; ++A)
    for (unsigned B = A + 1; B < N; ++B)
      if (R.nextBool(Density))
        G.addEdge(A, B);
  for (unsigned I = 0; I < N; ++I)
    G.node(I).SpillCost = double(1 + R.nextBelow(1000));
  return G;
}

struct RandomGraphCase {
  uint64_t Seed;
  unsigned N;
  double Density;
  unsigned K;
};

class RandomGraphs : public ::testing::TestWithParam<RandomGraphCase> {};

TEST_P(RandomGraphs, AllHeuristicsProduceValidColorings) {
  const RandomGraphCase &C = GetParam();
  Rng R(C.Seed);
  InterferenceGraph G = randomGraph(R, C.N, C.Density);
  for (Heuristic H :
       {Heuristic::Chaitin, Heuristic::Briggs, Heuristic::MatulaBeck}) {
    ColoringResult Res = colorGraph(G, C.K, H);
    EXPECT_TRUE(isValidColoring(G, C.K, Res)) << heuristicName(H);
    EXPECT_LE(Res.NumColorsUsed, C.K);
    // Every node is either colored or spilled.
    std::set<uint32_t> Spilled(Res.Spilled.begin(), Res.Spilled.end());
    for (unsigned N2 = 0; N2 < C.N; ++N2)
      EXPECT_TRUE((Res.ColorOf[N2] >= 0) != (Spilled.count(N2) != 0));
  }
}

TEST_P(RandomGraphs, BriggsSpillsASubsetOfChaitin) {
  // The paper's Section 2.3 guarantee: "either we spill a subset of the
  // live ranges that Chaitin would spill or the same set".
  const RandomGraphCase &C = GetParam();
  Rng R(C.Seed);
  InterferenceGraph G = randomGraph(R, C.N, C.Density);
  ColoringResult Chaitin = colorGraph(G, C.K, Heuristic::Chaitin);
  ColoringResult Briggs = colorGraph(G, C.K, Heuristic::Briggs);
  std::set<uint32_t> ChaitinSet(Chaitin.Spilled.begin(),
                                Chaitin.Spilled.end());
  for (uint32_t N2 : Briggs.Spilled)
    EXPECT_TRUE(ChaitinSet.count(N2))
        << "Briggs spilled node " << N2 << " that Chaitin kept";
  EXPECT_LE(Briggs.Spilled.size(), Chaitin.Spilled.size());
  EXPECT_LE(Briggs.SpilledCost, Chaitin.SpilledCost);
}

TEST_P(RandomGraphs, ChaitinSuccessImpliesBriggsIdentical) {
  const RandomGraphCase &C = GetParam();
  Rng R(C.Seed);
  InterferenceGraph G = randomGraph(R, C.N, C.Density);
  ColoringResult Chaitin = colorGraph(G, C.K, Heuristic::Chaitin);
  if (!Chaitin.success())
    GTEST_SKIP() << "graph needs spills at this k";
  ColoringResult Briggs = colorGraph(G, C.K, Heuristic::Briggs);
  EXPECT_TRUE(Briggs.success());
  EXPECT_EQ(Briggs.ColorOf, Chaitin.ColorOf)
      << "identical removal order must give identical colorings";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomGraphs,
    ::testing::Values(RandomGraphCase{1, 30, 0.10, 4},
                      RandomGraphCase{2, 30, 0.30, 4},
                      RandomGraphCase{3, 60, 0.10, 6},
                      RandomGraphCase{4, 60, 0.25, 6},
                      RandomGraphCase{5, 120, 0.05, 8},
                      RandomGraphCase{6, 120, 0.15, 8},
                      RandomGraphCase{7, 200, 0.08, 12},
                      RandomGraphCase{8, 200, 0.02, 3},
                      RandomGraphCase{9, 80, 0.50, 8},
                      RandomGraphCase{10, 45, 0.20, 5}),
    [](const auto &Info) {
      return "Seed" + std::to_string(Info.param.Seed);
    });

//===--------------------------------------------------------------------===//
// Degree buckets (Section 2.2's data structure).
//===--------------------------------------------------------------------===//

TEST(DegreeBucketsTest, TracksDegreesThroughRemovals) {
  // Star: node 0 connected to 1..4.
  InterferenceGraph G = makeGraph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  std::vector<uint32_t> Degrees = {4, 1, 1, 1, 1};
  DegreeBuckets B;
  B.init(Degrees);
  EXPECT_EQ(B.numLive(), 5u);
  EXPECT_EQ(B.lowestNonEmpty(), 1u);
  EXPECT_EQ(B.head(1), 1u) << "lowest id first";

  B.remove(1);
  B.decrementDegree(0);
  EXPECT_EQ(B.degree(0), 3u);
  EXPECT_EQ(B.lowestNonEmpty(), 1u);

  B.remove(2);
  B.decrementDegree(0);
  B.remove(3);
  B.decrementDegree(0);
  B.remove(4);
  B.decrementDegree(0);
  EXPECT_EQ(B.degree(0), 0u);
  EXPECT_EQ(B.lowestNonEmpty(), 0u);
  EXPECT_EQ(B.head(0), 0u);
  B.remove(0);
  EXPECT_EQ(B.numLive(), 0u);
  EXPECT_EQ(B.lowestNonEmpty(), DegreeBuckets::None);
}

TEST(DegreeBucketsTest, SearchHintNeverSkipsWork) {
  // Remove nodes smallest-last over a random graph while checking the
  // bucket-reported degree against one recomputed from scratch.
  Rng R(99);
  InterferenceGraph G(64);
  for (unsigned A = 0; A < 64; ++A)
    for (unsigned B2 = A + 1; B2 < 64; ++B2)
      if (R.nextBool(0.2))
        G.addEdge(A, B2);

  std::vector<uint32_t> Degrees(64);
  for (unsigned N = 0; N < 64; ++N)
    Degrees[N] = G.degree(N);
  DegreeBuckets B;
  B.init(Degrees);

  std::vector<bool> Removed(64, false);
  uint32_t Hint = 0;
  while (B.numLive() != 0) {
    uint32_t D = B.lowestNonEmpty(Hint);
    ASSERT_NE(D, DegreeBuckets::None);
    // The hinted search must agree with a from-zero search.
    ASSERT_EQ(D, B.lowestNonEmpty(0));
    uint32_t N = B.head(D);
    // Cross-check the tracked degree against the real remaining graph.
    unsigned Real = 0;
    for (uint32_t M : G.neighbors(N))
      if (!Removed[M])
        ++Real;
    ASSERT_EQ(B.degree(N), Real);
    B.remove(N);
    Removed[N] = true;
    for (uint32_t M : G.neighbors(N))
      if (!Removed[M])
        B.decrementDegree(M);
    Hint = D == 0 ? 0 : D - 1;
  }
}

TEST(InterferenceGraphTest, AddEdgeDeduplicates) {
  InterferenceGraph G(3);
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(1, 0)) << "duplicate edges rejected";
  EXPECT_FALSE(G.addEdge(2, 2)) << "self edges rejected";
  EXPECT_EQ(G.numEdges(), 1u);
  EXPECT_EQ(G.degree(0), 1u);
  EXPECT_TRUE(G.interferes(0, 1));
  EXPECT_FALSE(G.interferes(0, 2));
}

} // namespace
