//===- tests/AnalysisTest.cpp - CFG/dominator/loop/liveness tests ---------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "analysis/Renumber.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "sim/Simulator.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

/// entry -> (then | else) -> join -> [loop head -> body -> head] -> exit
struct DiamondLoop {
  Module M;
  Function *F;
  uint32_t Entry, Then, Else, Join, Head, Body, Exit;
  VRegId X, Y, I, N;

  DiamondLoop() {
    F = &M.newFunction("shape");
    IRBuilder B(M, *F);
    Entry = B.newBlock("entry");
    Then = B.newBlock("then");
    Else = B.newBlock("else");
    Join = B.newBlock("join");
    Head = B.newBlock("head");
    Body = B.newBlock("body");
    Exit = B.newBlock("exit");

    B.setInsertPoint(Entry);
    X = B.iReg("x");
    Y = B.iReg("y");
    I = B.iReg("i");
    N = B.iReg("n");
    B.movI(1, X);
    B.movI(2, Y);
    B.movI(0, I);
    B.movI(5, N);
    B.br(CmpKind::LT, X, Y, Then, Else);

    B.setInsertPoint(Then);
    B.addI(X, 10, X);
    B.jmp(Join);
    B.setInsertPoint(Else);
    B.addI(Y, 10, Y);
    B.jmp(Join);

    B.setInsertPoint(Join);
    B.jmp(Head);
    B.setInsertPoint(Head);
    B.br(CmpKind::LT, I, N, Body, Exit);
    B.setInsertPoint(Body);
    B.add(X, Y, X);
    B.addI(I, 1, I);
    B.jmp(Head);
    B.setInsertPoint(Exit);
    B.ret(X);
  }
};

TEST(CFGTest, PredsSuccsAndRPO) {
  DiamondLoop D;
  CFG G = CFG::compute(*D.F);
  EXPECT_EQ(G.succs(D.Entry),
            (std::vector<uint32_t>{D.Then, D.Else}));
  EXPECT_EQ(G.preds(D.Join), (std::vector<uint32_t>{D.Then, D.Else}));
  EXPECT_EQ(G.preds(D.Head), (std::vector<uint32_t>{D.Join, D.Body}));
  // RPO starts at the entry and visits every reachable block once.
  ASSERT_EQ(G.rpo().size(), 7u);
  EXPECT_EQ(G.rpo().front(), D.Entry);
  EXPECT_EQ(G.rpoIndex(D.Entry), 0u);
  // RPO property: for non-back edges, source precedes target.
  EXPECT_LT(G.rpoIndex(D.Entry), G.rpoIndex(D.Join));
  EXPECT_LT(G.rpoIndex(D.Head), G.rpoIndex(D.Exit));
}

TEST(CFGTest, UnreachableBlocksAreMarked) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Dead = B.newBlock("dead");
  B.setInsertPoint(Entry);
  B.ret();
  B.setInsertPoint(Dead);
  B.ret();
  CFG G = CFG::compute(F);
  EXPECT_TRUE(G.isReachable(Entry));
  EXPECT_FALSE(G.isReachable(Dead));
}

TEST(DominatorTest, DiamondAndLoop) {
  DiamondLoop D;
  CFG G = CFG::compute(*D.F);
  Dominators Dom = Dominators::compute(*D.F, G);
  EXPECT_EQ(Dom.idom(D.Then), D.Entry);
  EXPECT_EQ(Dom.idom(D.Else), D.Entry);
  EXPECT_EQ(Dom.idom(D.Join), D.Entry) << "join is not dominated by "
                                          "either branch arm";
  EXPECT_EQ(Dom.idom(D.Head), D.Join);
  EXPECT_EQ(Dom.idom(D.Body), D.Head);
  EXPECT_EQ(Dom.idom(D.Exit), D.Head);
  EXPECT_TRUE(Dom.dominates(D.Entry, D.Exit));
  EXPECT_TRUE(Dom.dominates(D.Head, D.Body));
  EXPECT_FALSE(Dom.dominates(D.Then, D.Join));
  EXPECT_TRUE(Dom.dominates(D.Join, D.Join)) << "dominance is reflexive";
}

TEST(LoopInfoTest, SingleLoopDepths) {
  DiamondLoop D;
  CFG G = CFG::compute(*D.F);
  Dominators Dom = Dominators::compute(*D.F, G);
  LoopInfo LI = LoopInfo::compute(*D.F, G, Dom);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0].Header, D.Head);
  EXPECT_EQ(LI.depth(D.Head), 1u);
  EXPECT_EQ(LI.depth(D.Body), 1u);
  EXPECT_EQ(LI.depth(D.Entry), 0u);
  EXPECT_EQ(LI.depth(D.Exit), 0u);
  EXPECT_EQ(LI.maxDepth(), 1u);
}

TEST(LoopInfoTest, NestedLoopsFromWorkload) {
  // MATGEN has a classic doubly-nested loop; its inner body must be at
  // depth 2.
  Module M;
  Function &F = buildMATGEN(M);
  CFG G = CFG::compute(F);
  Dominators Dom = Dominators::compute(F, G);
  LoopInfo LI = LoopInfo::compute(F, G, Dom);
  EXPECT_GE(LI.loops().size(), 4u);
  EXPECT_EQ(LI.maxDepth(), 2u);
}

TEST(LivenessTest, StraightLineAndBranch) {
  DiamondLoop D;
  CFG G = CFG::compute(*D.F);
  Liveness LV = Liveness::compute(*D.F, G);
  // x and y are live into the loop head (used in the body), as is i/n.
  EXPECT_TRUE(LV.liveIn(D.Head).test(D.X));
  EXPECT_TRUE(LV.liveIn(D.Head).test(D.Y));
  EXPECT_TRUE(LV.liveIn(D.Head).test(D.I));
  EXPECT_TRUE(LV.liveIn(D.Head).test(D.N));
  // x is live out of the loop (returned); y is not used after the loop.
  EXPECT_TRUE(LV.liveOut(D.Head).test(D.X));
  // Nothing is live into the entry.
  EXPECT_TRUE(LV.liveIn(D.Entry).none());
  // Upward-exposed and kill sets for the body.
  EXPECT_TRUE(LV.upwardExposed(D.Body).test(D.Y));
  EXPECT_TRUE(LV.defs(D.Body).test(D.X));
}

TEST(LivenessTest, LiveInNeverContainsEntryDeadRegs) {
  for (uint64_t Seed = 10; Seed < 16; ++Seed) {
    Module M;
    Function &F = buildRandomProgram(M, Seed);
    CFG G = CFG::compute(F);
    Liveness LV = Liveness::compute(F, G);
    // Verified programs define everything before use, so nothing can be
    // live into the entry block.
    EXPECT_TRUE(LV.liveIn(F.entry()).none()) << "seed " << Seed;
  }
}

//===--------------------------------------------------------------------===//
// Renumbering (webs).
//===--------------------------------------------------------------------===//

TEST(RenumberTest, SplitsIndependentWebs) {
  // x is defined and consumed twice, independently: two live ranges.
  Module M;
  uint32_t A = M.newArray("a", 8, RegClass::Int);
  Function &F = M.newFunction("webs");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId X = B.iReg("x");
  VRegId C0 = B.movI(0);
  B.movI(1, X);
  B.store(A, C0, X); // first web ends here
  B.movI(2, X);
  B.store(A, C0, X); // second web
  B.ret();

  unsigned Before = F.numVRegs();
  CFG G = CFG::compute(F);
  RenumberStats S = renumberLiveRanges(F, G);
  EXPECT_EQ(S.VRegsBefore, Before);
  EXPECT_EQ(S.VRegsAfter, Before + 1) << "x splits into two webs";
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(RenumberTest, KeepsConnectedWebsTogether) {
  // A value merged at a join must stay one live range.
  Module M;
  Function &F = M.newFunction("join");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Then = B.newBlock("then");
  uint32_t Else = B.newBlock("else");
  uint32_t Join = B.newBlock("join");
  B.setInsertPoint(Entry);
  VRegId X = B.iReg("x");
  VRegId C = B.movI(3);
  VRegId Z = B.movI(0);
  B.br(CmpKind::LT, C, Z, Then, Else);
  B.setInsertPoint(Then);
  B.movI(1, X);
  B.jmp(Join);
  B.setInsertPoint(Else);
  B.movI(2, X);
  B.jmp(Join);
  B.setInsertPoint(Join);
  B.ret(X);

  unsigned Before = F.numVRegs();
  CFG G = CFG::compute(F);
  RenumberStats S = renumberLiveRanges(F, G);
  EXPECT_EQ(S.VRegsAfter, Before)
      << "both defs reach the same use: one web";
}

TEST(RenumberTest, IsIdempotent) {
  Module M;
  Function &F = buildSVD(M);
  CFG G = CFG::compute(F);
  RenumberStats First = renumberLiveRanges(F, G);
  RenumberStats Second = renumberLiveRanges(F, G);
  EXPECT_EQ(Second.VRegsBefore, First.VRegsAfter);
  EXPECT_EQ(Second.VRegsAfter, First.VRegsAfter)
      << "a second renumbering must not split further";
}

TEST(RenumberTest, PreservesSemanticsOnWorkloads) {
  for (const char *Name : {"DAXPY", "DGEFA", "SVD", "SIMPLEX"}) {
    const Workload *W = findWorkload(Name);
    Module M;
    Function &F = W->Build(M);
    Simulator Sim(M);
    MemoryImage Golden(M);
    W->Init(M, Golden);
    ExecutionResult G1 = Sim.runVirtual(F, Golden);
    ASSERT_TRUE(G1.Ok);

    CFG G = CFG::compute(F);
    renumberLiveRanges(F, G);
    ASSERT_TRUE(verifyFunction(M, F).empty()) << Name;

    MemoryImage Mem(M);
    W->Init(M, Mem);
    ExecutionResult R = Sim.runVirtual(F, Mem);
    ASSERT_TRUE(R.Ok);
    EXPECT_TRUE(Mem == Golden) << Name;
    EXPECT_EQ(R.IntReturn, G1.IntReturn);
    EXPECT_EQ(R.FloatReturn, G1.FloatReturn);
  }
}

} // namespace
