//===- tests/ParallelColoringTest.cpp - speculate-and-repair select -------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The parallel-Select contract: the speculate-and-repair engine
// (ParallelSelect.h) reproduces the sequential Select byte-identically
// at every thread count and chunk size — colors, spill decisions, spill
// cost sums, everything — and its repair loop terminates. Conflict
// detection is pinned on hand-built adjacency, including the case a
// naive validity check would miss (a legal-but-not-greedy color).
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "regalloc/Allocator.h"
#include "regalloc/Coloring.h"
#include "regalloc/ParallelSelect.h"
#include "support/Rng.h"
#include "support/Trace.h"
#include "workloads/MegaKernel.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

InterferenceGraph makeRandomGraph(unsigned NumNodes, double AvgDegree,
                                  uint64_t Seed) {
  InterferenceGraph G(NumNodes);
  Rng R(Seed);
  uint64_t Edges = uint64_t(NumNodes * AvgDegree / 2);
  for (uint64_t E = 0; E < Edges; ++E)
    G.addEdge(R.nextBelow(NumNodes), R.nextBelow(NumNodes));
  for (unsigned N = 0; N < NumNodes; ++N)
    G.node(N).SpillCost = double(1 + R.nextBelow(8));
  G.finalize();
  return G;
}

/// Identity select order over a graph's nodes plus its rank array.
std::vector<uint32_t> identityOrder(const InterferenceGraph &G) {
  std::vector<uint32_t> Order(G.numNodes());
  for (uint32_t I = 0; I < G.numNodes(); ++I)
    Order[I] = I;
  return Order;
}

std::vector<uint32_t> rankOf(const InterferenceGraph &G,
                             const std::vector<uint32_t> &Order) {
  std::vector<uint32_t> Rank(G.numNodes(), ~0u);
  for (size_t I = 0; I != Order.size(); ++I)
    Rank[Order[I]] = uint32_t(I);
  return Rank;
}

//===--------------------------------------------------------------------===//
// The greedy rule and conflict detection, pinned on hand-built graphs.
//===--------------------------------------------------------------------===//

TEST(ParallelSelectUnitTest, GreedyColorIsFirstFitOverEarlierRanks) {
  // Path 0-1-2-3, rank = node id, K=2: first-fit gives 0,1,0,1.
  InterferenceGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.finalize();
  auto Order = identityOrder(G);
  auto Rank = rankOf(G, Order);
  std::vector<int32_t> Colors = {0, 1, 0, 1};
  EXPECT_EQ(greedySelectColor(G, 2, Rank, Colors, 0), 0);
  EXPECT_EQ(greedySelectColor(G, 2, Rank, Colors, 1), 0 + 1);
  EXPECT_EQ(greedySelectColor(G, 2, Rank, Colors, 2), 0);
  EXPECT_EQ(greedySelectColor(G, 2, Rank, Colors, 3), 1);
  EXPECT_TRUE(findSelectConflicts(G, 2, Order, Colors).empty());

  // Break node 3: color 0 collides with neighbor 2. Exactly rank 3 is
  // wrong.
  Colors[3] = 0;
  EXPECT_EQ(findSelectConflicts(G, 2, Order, Colors),
            (std::vector<uint32_t>{3}));
}

TEST(ParallelSelectUnitTest, DetectionFlagsValidButNotGreedyColors) {
  // Two isolated nodes, K=2, colors {0, 1}: a *valid* coloring — no
  // edge, no collision — but node 1's greedy color is 0. A detector
  // that only checked validity would accept it and the engine would
  // diverge from the sequential oracle; the mex comparison flags it.
  InterferenceGraph G(2);
  G.finalize();
  auto Order = identityOrder(G);
  std::vector<int32_t> Colors = {0, 1};
  EXPECT_TRUE(isValidColoring(G, 2, [&] {
                ColoringResult R;
                R.ColorOf = Colors;
                return R;
              }()));
  EXPECT_EQ(findSelectConflicts(G, 2, Order, Colors),
            (std::vector<uint32_t>{1}));
}

TEST(ParallelSelectUnitTest, MexOverflowMeansSpill) {
  // Triangle with K=2: the last-ranked node sees both colors taken and
  // must be -1 (the Briggs select-phase spill). Holding any real color
  // instead is a conflict.
  InterferenceGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  G.addEdge(1, 2);
  G.finalize();
  auto Order = identityOrder(G);
  auto Rank = rankOf(G, Order);
  std::vector<int32_t> Colors = {0, 1, -1};
  EXPECT_EQ(greedySelectColor(G, 2, Rank, Colors, 2), -1);
  EXPECT_TRUE(findSelectConflicts(G, 2, Order, Colors).empty());
  Colors[2] = 0;
  EXPECT_EQ(findSelectConflicts(G, 2, Order, Colors),
            (std::vector<uint32_t>{2}));
}

TEST(ParallelSelectUnitTest, ChaitinSpilledNodesNeverConstrain) {
  // Node 1 is outside the select order (rank ~0u — a Chaitin simplify-
  // phase spill). Its color must not constrain node 2 even though they
  // interfere.
  InterferenceGraph G(3);
  G.addEdge(0, 2);
  G.addEdge(1, 2);
  G.finalize();
  std::vector<uint32_t> Order = {0, 2}; // node 1 absent
  auto Rank = rankOf(G, Order);
  std::vector<int32_t> Colors = {0, 0, -1};
  EXPECT_EQ(greedySelectColor(G, 2, Rank, Colors, 2), 1)
      << "only in-order neighbor 0 constrains";
}

//===--------------------------------------------------------------------===//
// The engine itself: forced chunking, repair termination, fallback.
//===--------------------------------------------------------------------===//

TEST(ParallelSelectEngineTest, ForcedTinyChunksConvergeToSequential) {
  for (uint64_t Seed : {21u, 22u, 23u, 24u}) {
    InterferenceGraph G = makeRandomGraph(500, 11.0, Seed);
    ColoringResult Seq = colorGraph(G, 5, Heuristic::Briggs);
    std::vector<uint32_t> Order(Seq.RemovalOrder.rbegin(),
                                Seq.RemovalOrder.rend());

    SelectOptions SO;
    SO.Parallel = true;
    SO.Threads = 4;
    SO.MinNodes = 0;
    SO.ChunkSize = 3; // dozens of chunk boundaries -> real conflicts
    std::vector<int32_t> Colors(G.numNodes(), -1);
    std::vector<SelectRound> Rounds;
    runParallelSelect(G, 5, Order, SO, Colors, Rounds);

    EXPECT_EQ(Colors, Seq.ColorOf) << "seed " << Seed;
    ASSERT_FALSE(Rounds.empty());
    EXPECT_EQ(Rounds.back().Conflicts, 0u) << "must end at the fixpoint";
    EXPECT_LE(Rounds.size(), size_t(SO.MaxRounds) + 2)
        << "repair did not shrink";
    // Left to its own devices the fixpoint must verify from scratch.
    EXPECT_TRUE(findSelectConflicts(G, 5, Order, Colors).empty());
  }
}

TEST(ParallelSelectEngineTest, MaxRoundsFallbackSweepIsExact) {
  // MaxRounds=0 forces the sequential safety-valve sweep immediately
  // after speculation — from *any* intermediate state it must land on
  // the oracle coloring.
  InterferenceGraph G = makeRandomGraph(400, 12.0, 77);
  ColoringResult Seq = colorGraph(G, 4, Heuristic::Briggs);
  std::vector<uint32_t> Order(Seq.RemovalOrder.rbegin(),
                              Seq.RemovalOrder.rend());

  SelectOptions SO;
  SO.Parallel = true;
  SO.Threads = 4;
  SO.MinNodes = 0;
  SO.ChunkSize = 2;
  SO.MaxRounds = 0;
  std::vector<int32_t> Colors(G.numNodes(), -1);
  std::vector<SelectRound> Rounds;
  runParallelSelect(G, 4, Order, SO, Colors, Rounds);

  EXPECT_EQ(Colors, Seq.ColorOf);
  ASSERT_GE(Rounds.size(), 1u);
  EXPECT_LE(Rounds.size(), 2u) << "fallback must run at most once";
}

TEST(ParallelSelectEngineTest, SingleThreadIsPureGaussSeidel) {
  // One thread, one chunk: speculation alone is the sequential loop, so
  // there must be zero candidates and zero conflicts.
  InterferenceGraph G = makeRandomGraph(300, 9.0, 5);
  ColoringResult Seq = colorGraph(G, 4, Heuristic::Briggs);
  std::vector<uint32_t> Order(Seq.RemovalOrder.rbegin(),
                              Seq.RemovalOrder.rend());
  SelectOptions SO;
  SO.Parallel = true;
  SO.Threads = 1;
  SO.MinNodes = 0;
  std::vector<int32_t> Colors(G.numNodes(), -1);
  std::vector<SelectRound> Rounds;
  runParallelSelect(G, 4, Order, SO, Colors, Rounds);
  EXPECT_EQ(Colors, Seq.ColorOf);
  ASSERT_EQ(Rounds.size(), 1u);
  EXPECT_EQ(Rounds[0].Checked, 0u);
  EXPECT_EQ(Rounds[0].Conflicts, 0u);
}

//===--------------------------------------------------------------------===//
// colorGraph dispatch: byte-identical results for every configuration.
//===--------------------------------------------------------------------===//

void expectSameColoring(const ColoringResult &A, const ColoringResult &B,
                        const std::string &What) {
  EXPECT_EQ(A.ColorOf, B.ColorOf) << What;
  EXPECT_EQ(A.Spilled, B.Spilled) << What;
  EXPECT_EQ(A.RemovalOrder, B.RemovalOrder) << What;
  EXPECT_EQ(A.SpilledCost, B.SpilledCost) << What; // exact: same FP order
  EXPECT_EQ(A.NumColorsUsed, B.NumColorsUsed) << What;
}

TEST(ParallelColoringTest, ByteIdenticalAcrossThreadsChunksHeuristics) {
  for (uint64_t Seed : {31u, 32u, 33u}) {
    InterferenceGraph G = makeRandomGraph(600, 13.0, Seed);
    for (Heuristic H :
         {Heuristic::Chaitin, Heuristic::Briggs, Heuristic::MatulaBeck}) {
      ColoringResult Seq = colorGraph(G, 6, H);
      for (unsigned Threads : {1u, 2u, 3u, 8u}) {
        for (unsigned Chunk : {0u, 7u}) {
          SelectOptions SO;
          SO.Parallel = true;
          SO.Threads = Threads;
          SO.MinNodes = 0;
          SO.ChunkSize = Chunk;
          ColoringResult Par = colorGraph(G, 6, H, SO);
          EXPECT_TRUE(Par.ParallelSelect);
          expectSameColoring(Seq, Par,
                             std::string(heuristicName(H)) + " seed " +
                                 std::to_string(Seed) + " threads " +
                                 std::to_string(Threads) + " chunk " +
                                 std::to_string(Chunk));
        }
      }
    }
  }
}

TEST(ParallelColoringTest, MinNodesGateKeepsSmallGraphsSequential) {
  InterferenceGraph G = makeRandomGraph(100, 6.0, 9);
  SelectOptions SO;
  SO.Parallel = true;
  SO.MinNodes = 1000; // above the graph size
  ColoringResult R = colorGraph(G, 4, Heuristic::Briggs, SO);
  EXPECT_FALSE(R.ParallelSelect);
  EXPECT_TRUE(R.SelectRounds.empty());
  expectSameColoring(colorGraph(G, 4, Heuristic::Briggs), R, "gated");
}

//===--------------------------------------------------------------------===//
// End-to-end: --parallel-graph through the whole allocator.
//===--------------------------------------------------------------------===//

void buildCorpusModule(Module &M, uint64_t Salt) {
  for (uint64_t I = 0; I < 6; ++I)
    buildRandomProgram(M, Salt + I);
  buildDAXPY(M);
  buildDDOT(M);
  buildQuicksort(M, 1000);
}

struct ModuleSnapshot {
  std::vector<std::string> Printed;
  std::vector<std::vector<int32_t>> Colors;
  std::vector<std::vector<std::string>> SpilledNames;
  bool Success = true;

  bool operator==(const ModuleSnapshot &O) const = default;
};

ModuleSnapshot allocateSnapshot(uint64_t Salt, const AllocatorConfig &C) {
  Module M;
  buildCorpusModule(M, Salt);
  ModuleAllocationResult R = allocateModule(M, C);
  ModuleSnapshot S;
  S.Success = R.allSucceeded();
  for (unsigned I = 0; I < M.numFunctions(); ++I) {
    S.Printed.push_back(printFunction(M, M.function(I)));
    S.Colors.push_back(R.Functions[I].ColorOf);
    std::vector<std::string> Names;
    for (const PassRecord &P : R.Functions[I].Stats.Passes)
      Names.insert(Names.end(), P.SpilledNames.begin(),
                   P.SpilledNames.end());
    S.SpilledNames.push_back(std::move(Names));
  }
  return S;
}

TEST(ParallelGraphAllocTest, ModuleByteIdentical1vsN) {
  AllocatorConfig C;
  C.Machine = MachineInfo(8, 6); // tight enough to force spills
  ModuleSnapshot Serial = allocateSnapshot(6100, C);
  ASSERT_TRUE(Serial.Success);

  // MinNodes=0 so even the corpus-sized graphs exercise the engine.
  for (unsigned GraphJobs : {1u, 3u, 8u}) {
    for (unsigned Jobs : {1u, 4u}) {
      AllocatorConfig P = C;
      P.ParallelGraph = true;
      P.ParallelGraphMinNodes = 0;
      P.ParallelGraphJobs = GraphJobs;
      P.Jobs = Jobs;
      ModuleSnapshot Par = allocateSnapshot(6100, P);
      EXPECT_TRUE(Serial == Par)
          << "graph-jobs=" << GraphJobs << " jobs=" << Jobs;
    }
  }
}

TEST(ParallelGraphAllocTest, TraceCountersAndPerRoundInstants) {
  trace::beginSession();
  InterferenceGraph G = makeRandomGraph(600, 13.0, 41);
  SelectOptions SO;
  SO.Parallel = true;
  SO.Threads = 4;
  SO.MinNodes = 0;
  SO.ChunkSize = 5;
  ColoringResult R = colorGraph(G, 6, Heuristic::Briggs, SO);
  trace::SessionLog Log = trace::endSession();

  ASSERT_TRUE(R.ParallelSelect);
  EXPECT_EQ(Log.counter("coloring.parallel.selects"), 1.0);
  EXPECT_EQ(Log.counter("coloring.parallel.rounds"),
            double(R.SelectRounds.size()));
  double Conflicts = 0;
  for (const SelectRound &SR : R.SelectRounds)
    Conflicts += SR.Conflicts;
  EXPECT_EQ(Log.counter("coloring.parallel.conflicts"), Conflicts);

  // One per-round instant under the "sched" category (the one
  // normalizedLog drops, because round shapes are scheduling-dependent).
  unsigned RoundEvents = 0;
  for (const trace::Event &E : Log.Events)
    if (std::string(E.Name) == "SelectRound") {
      EXPECT_STREQ(E.Category, "sched");
      ++RoundEvents;
    }
  EXPECT_EQ(RoundEvents, unsigned(R.SelectRounds.size()));
}

TEST(ParallelGraphAllocTest, MetricsCsvCarriesSelectRounds) {
  // The select_rounds CSV column: nonzero when the parallel engine ran,
  // uniform across every row of one function (it is a per-class-graph
  // property), and the header names it.
  Module M;
  Function &F = megaKernelTestFamily()[0].Build(M);
  AllocatorConfig C;
  C.ParallelGraph = true;
  C.ParallelGraphMinNodes = 0;
  C.ParallelGraphJobs = 4;
  C.CollectMetrics = true;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success);
  ASSERT_FALSE(A.Metrics.empty());

  EXPECT_NE(metricsCsvHeader().find("select_rounds"), std::string::npos);
  unsigned NonZero = 0;
  for (const RangeMetrics &RM : A.Metrics)
    NonZero += RM.SelectRounds > 0;
  EXPECT_GT(NonZero, 0u) << "parallel rounds must reach the metrics table";

  std::string Csv;
  appendMetricsCsv(Csv, "mini", A.Metrics);
  std::string FirstLine = Csv.substr(0, Csv.find('\n'));
  std::string Tail = "," + std::to_string(A.Metrics.front().SelectRounds);
  ASSERT_GE(FirstLine.size(), Tail.size());
  EXPECT_EQ(FirstLine.substr(FirstLine.size() - Tail.size()), Tail);
}

TEST(ParallelGraphAllocTest, MegaKernelFamilyByteIdentical) {
  for (const MegaKernel &MK : megaKernelTestFamily()) {
    Module M1, M2;
    Function &F1 = MK.Build(M1);
    Function &F2 = MK.Build(M2);

    AllocatorConfig Seq;
    Seq.Audit = true;
    AllocatorConfig Par = Seq;
    Par.ParallelGraph = true;
    Par.ParallelGraphMinNodes = 0;
    Par.ParallelGraphJobs = 5;

    AllocationResult R1 = allocateRegisters(F1, Seq);
    AllocationResult R2 = allocateRegisters(F2, Par);
    ASSERT_TRUE(R1.Success && R2.Success) << MK.Name;
    EXPECT_EQ(R1.Outcome, AllocOutcome::Converged) << MK.Name;
    EXPECT_EQ(R2.Outcome, AllocOutcome::Converged)
        << MK.Name << ": parallel select must pass the audit";
    EXPECT_EQ(R1.ColorOf, R2.ColorOf) << MK.Name;
    EXPECT_EQ(printFunction(M1, F1), printFunction(M2, F2)) << MK.Name;

    // The engine actually engaged and its telemetry landed in the pass
    // records (rounds are scheduling-dependent, so only presence is
    // asserted).
    unsigned Rounds = 0;
    for (const PassRecord &P : R2.Stats.Passes)
      Rounds += P.SelectRounds;
    EXPECT_GE(Rounds, 1u) << MK.Name;
  }
}

} // namespace
