//===- tests/ProtocolTest.cpp - racd wire protocol tests ------------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The racd wire contract, transport-free:
//
//  * length-prefixed framing survives any byte chunking and refuses
//    corrupt length prefixes without crashing or allocating unboundedly;
//  * every message round-trips encode -> decode, and truncated payloads
//    decode to structured errors, never out-of-bounds reads;
//  * WireConfig's "k=v" line round-trips and rejects unknown keys;
//  * RacdServer::handleFrame answers a replayed AllocRequest from the
//    cache, serves stats, and acknowledges Shutdown by ending the
//    connection.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRPrinter.h"
#include "service/Protocol.h"
#include "service/Server.h"

#include <gtest/gtest.h>

using namespace ra;
using namespace ra::service;

namespace {

/// Pops one frame expecting success.
void popFrame(FrameReader &R, MsgType &T, std::string &Payload) {
  Status Err;
  ASSERT_EQ(R.pop(T, Payload, Err), FrameReader::Result::Frame)
      << Err.toString();
}

std::string tinySource() {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId X = B.iReg("x");
  B.movI(7, X);
  B.ret(X);
  return printModule(M);
}

TEST(ProtocolTest, FramesRoundTripThroughAnyChunking) {
  std::string Wire;
  appendFrame(Wire, MsgType::AllocRequest, "payload-one");
  appendFrame(Wire, MsgType::StatsRequest, "");
  appendFrame(Wire, MsgType::Error, std::string("\x00\xFF\n binary ok", 13));

  // Whole-buffer feed.
  {
    FrameReader R;
    R.feed(Wire.data(), Wire.size());
    MsgType T;
    std::string P;
    popFrame(R, T, P);
    EXPECT_EQ(T, MsgType::AllocRequest);
    EXPECT_EQ(P, "payload-one");
    popFrame(R, T, P);
    EXPECT_EQ(T, MsgType::StatsRequest);
    EXPECT_EQ(P, "");
    popFrame(R, T, P);
    EXPECT_EQ(T, MsgType::Error);
    EXPECT_EQ(P, std::string("\x00\xFF\n binary ok", 13));
    Status Err;
    EXPECT_EQ(R.pop(T, P, Err), FrameReader::Result::NeedMore);
  }

  // One byte at a time: the reader must never misframe on a partial
  // header or partial payload.
  {
    FrameReader R;
    MsgType T;
    std::string P;
    Status Err;
    unsigned Got = 0;
    for (char C : Wire) {
      R.feed(&C, 1);
      while (R.pop(T, P, Err) == FrameReader::Result::Frame)
        ++Got;
    }
    EXPECT_EQ(Got, 3u);
  }
}

TEST(ProtocolTest, OversizeLengthPoisonsTheReader) {
  // A length prefix over MaxFrameBytes: there is no trustworthy frame
  // boundary after it, so the reader reports Malformed now and forever.
  std::string Wire;
  uint32_t Bad = MaxFrameBytes + 1;
  for (unsigned I = 0; I < 4; ++I)
    Wire.push_back(char((Bad >> (8 * I)) & 0xFF));
  Wire.push_back(char(MsgType::AllocRequest));

  FrameReader R;
  R.feed(Wire.data(), Wire.size());
  MsgType T;
  std::string P;
  Status Err;
  EXPECT_EQ(R.pop(T, P, Err), FrameReader::Result::Malformed);
  EXPECT_FALSE(Err.ok());

  // Even feeding a perfectly good frame afterwards cannot unpoison it.
  std::string Good;
  appendFrame(Good, MsgType::StatsRequest, "");
  R.feed(Good.data(), Good.size());
  EXPECT_EQ(R.pop(T, P, Err), FrameReader::Result::Malformed);
}

TEST(ProtocolTest, MessagesRoundTripAndRejectTruncation) {
  AllocRequestMsg Req;
  Req.Config.Allocator = "matula-beck";
  Req.Config.IntK = 5;
  Req.Config.FltK = 3;
  Req.Config.Remat = true;
  Req.Config.Print = true;
  Req.Config.DeadlineMs = 125.5;
  Req.Source = tinySource();

  AllocRequestMsg ReqBack;
  ASSERT_TRUE(ReqBack.decode(Req.encode()).ok());
  EXPECT_EQ(ReqBack.Config.render(), Req.Config.render());
  EXPECT_EQ(ReqBack.Source, Req.Source);

  AllocReplyMsg Reply;
  Reply.Ok = 1;
  Reply.Diag = "ok";
  FunctionReplyMsg F;
  F.Name = "f";
  F.Outcome = uint8_t(AllocOutcome::Degraded);
  F.Success = 1;
  F.CacheHit = 1;
  F.Diag = "deadline: exceeded";
  F.Passes = 3;
  F.Spills = 12;
  F.LiveRanges = 40;
  F.Printed = "func @f {\n}\n";
  Reply.Functions = {F, F};

  const std::string Encoded = Reply.encode();
  AllocReplyMsg ReplyBack;
  ASSERT_TRUE(ReplyBack.decode(Encoded).ok());
  ASSERT_EQ(ReplyBack.Functions.size(), 2u);
  EXPECT_EQ(ReplyBack.Ok, 1);
  EXPECT_EQ(ReplyBack.Functions[1].Name, "f");
  EXPECT_EQ(ReplyBack.Functions[1].Outcome,
            uint8_t(AllocOutcome::Degraded));
  EXPECT_EQ(ReplyBack.Functions[1].CacheHit, 1);
  EXPECT_EQ(ReplyBack.Functions[1].Spills, 12u);
  EXPECT_EQ(ReplyBack.Functions[1].Printed, F.Printed);

  // Every proper prefix must decode to a structured error — a hostile
  // or truncated payload can never read out of bounds or succeed.
  for (size_t Cut = 0; Cut < Encoded.size(); ++Cut) {
    AllocReplyMsg Trunc;
    Status S = Trunc.decode(Encoded.substr(0, Cut));
    EXPECT_FALSE(S.ok()) << "prefix of " << Cut << " bytes decoded";
  }

  StatsReplyMsg Stats;
  Stats.Stats.Hits = 10;
  Stats.Stats.Misses = 4;
  Stats.Stats.PeakBytes = 1 << 20;
  Stats.Requests = 14;
  Stats.PoolWidth = 8;
  StatsReplyMsg StatsBack;
  ASSERT_TRUE(StatsBack.decode(Stats.encode()).ok());
  EXPECT_EQ(StatsBack.Stats.Hits, 10u);
  EXPECT_EQ(StatsBack.Stats.Misses, 4u);
  EXPECT_EQ(StatsBack.Stats.PeakBytes, uint64_t(1) << 20);
  EXPECT_EQ(StatsBack.Requests, 14u);
  EXPECT_EQ(StatsBack.PoolWidth, 8u);
}

TEST(ProtocolTest, WireConfigRoundTripsAndRejectsUnknownKeys) {
  WireConfig C;
  C.Allocator = "linear-scan";
  C.IntK = 4;
  C.FltK = 2;
  C.Optimize = false;
  C.Split = false;
  C.UseCache = false;
  C.MemBudgetMb = 64;

  WireConfig Back;
  ASSERT_TRUE(Back.parse(C.render()).ok());
  EXPECT_EQ(Back.render(), C.render());
  EXPECT_EQ(Back.Allocator, "linear-scan");
  EXPECT_EQ(Back.IntK, 4u);
  EXPECT_FALSE(Back.Optimize);
  EXPECT_FALSE(Back.UseCache);
  EXPECT_EQ(Back.MemBudgetMb, 64u);

  // A newer client's unknown knob must fail loudly, not be dropped.
  WireConfig Bad;
  EXPECT_FALSE(Bad.parse(C.render() + " shiny_new_knob=1").ok());
  EXPECT_FALSE(Bad.parse("not-a-kv-token").ok());
  EXPECT_FALSE(Bad.parse("int=0").ok()) << "zero registers is invalid";

  // apply() validates the allocator spelling against rac's parser.
  WireConfig Bogus;
  Bogus.Allocator = "bogus";
  AllocatorConfig AC;
  Status S = Bogus.apply(AC);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.toString().find("unknown allocator 'bogus'"),
            std::string::npos);
}

TEST(ProtocolTest, HandleFrameServesWarmRepliesStatsAndShutdown) {
  AllocationService Svc;
  RacdServer Server(Svc);

  AllocRequestMsg Req;
  Req.Config.IntK = 4;
  Req.Config.FltK = 2;
  Req.Config.Print = true;
  Req.Source = tinySource();

  auto roundTrip = [&](AllocReplyMsg &Out) {
    std::string Wire;
    ASSERT_TRUE(
        Server.handleFrame(MsgType::AllocRequest, Req.encode(), Wire));
    FrameReader R;
    R.feed(Wire.data(), Wire.size());
    MsgType T;
    std::string Payload;
    popFrame(R, T, Payload);
    ASSERT_EQ(T, MsgType::AllocReply);
    ASSERT_TRUE(Out.decode(Payload).ok());
  };

  AllocReplyMsg Cold, Warm;
  roundTrip(Cold);
  ASSERT_EQ(Cold.Ok, 1) << Cold.Diag;
  ASSERT_EQ(Cold.Functions.size(), 1u);
  EXPECT_EQ(Cold.Functions[0].CacheHit, 0);
  EXPECT_FALSE(Cold.Functions[0].Printed.empty());

  roundTrip(Warm);
  ASSERT_EQ(Warm.Ok, 1);
  EXPECT_EQ(Warm.Functions[0].CacheHit, 1);
  EXPECT_EQ(Warm.Functions[0].Printed, Cold.Functions[0].Printed);
  EXPECT_EQ(Server.allocRequests(), 2u);

  // Stats reflect the warm hit.
  {
    std::string Wire;
    ASSERT_TRUE(Server.handleFrame(MsgType::StatsRequest, "", Wire));
    FrameReader R;
    R.feed(Wire.data(), Wire.size());
    MsgType T;
    std::string Payload;
    popFrame(R, T, Payload);
    ASSERT_EQ(T, MsgType::StatsReply);
    StatsReplyMsg Msg;
    ASSERT_TRUE(Msg.decode(Payload).ok());
    EXPECT_EQ(Msg.Stats.Hits, 1u);
    EXPECT_EQ(Msg.Stats.Misses, 1u);
    EXPECT_EQ(Msg.Requests, 2u);
    EXPECT_GE(Msg.PoolWidth, 1u);
  }

  // An undecodable request earns an Error frame; the connection keeps
  // going (one bad request is the client's problem, not the session's).
  {
    std::string Wire;
    EXPECT_TRUE(
        Server.handleFrame(MsgType::AllocRequest, "garbage", Wire));
    FrameReader R;
    R.feed(Wire.data(), Wire.size());
    MsgType T;
    std::string Payload;
    popFrame(R, T, Payload);
    EXPECT_EQ(T, MsgType::Error);
    EXPECT_FALSE(Payload.empty());
  }

  // Shutdown: acknowledged, connection ends, server marked stopping.
  {
    std::string Wire;
    EXPECT_FALSE(Server.handleFrame(MsgType::Shutdown, "", Wire));
    FrameReader R;
    R.feed(Wire.data(), Wire.size());
    MsgType T;
    std::string Payload;
    popFrame(R, T, Payload);
    EXPECT_EQ(T, MsgType::ShutdownAck);
    EXPECT_TRUE(Server.stopRequested());
  }
}

} // namespace
