//===- tests/AuditTest.cpp - post-allocation audit & degradation ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The self-checking allocator's contract: the independent audit accepts
// every honest allocation, rejects hand-corrupted and fault-injected
// ones, and the degradation ladder (primary -> spill-everything ->
// diagnostic) turns those rejections into Degraded-but-correct results
// instead of wrong code or a dead process.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "regalloc/AllocationAudit.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

//===--------------------------------------------------------------------===//
// The audit accepts honest allocations.
//===--------------------------------------------------------------------===//

TEST(AuditTest, AcceptsHonestAllocationsAcrossHeuristicsAndSizes) {
  for (uint64_t Seed : {1u, 7u, 23u}) {
    for (Heuristic H :
         {Heuristic::Chaitin, Heuristic::Briggs, Heuristic::MatulaBeck}) {
      for (unsigned K : {16u, 6u, 4u}) {
        Module M;
        Function &F = buildRandomProgram(M, Seed);
        AllocatorConfig C;
        C.H = H;
        C.Machine = MachineInfo(K, K);
        C.MaxPasses = 64;
        AllocationResult A = allocateRegisters(F, C);
        ASSERT_TRUE(A.Success);
        EXPECT_EQ(A.Outcome, AllocOutcome::Converged);
        EXPECT_TRUE(auditAllocation(F, A).empty())
            << "seed " << Seed << " " << heuristicName(H) << " k=" << K
            << ": " << auditAllocation(F, A).front();
        EXPECT_TRUE(auditAllocationStatus(F, A).ok());
      }
    }
  }
}

TEST(AuditTest, AcceptsSpillHeavyAllocation) {
  Module M;
  Function &F = buildDGEFA(M); // spills at tight sizes
  AllocatorConfig C;
  C.Machine = MachineInfo(4, 3);
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success);
  ASSERT_GT(A.Stats.totalSpills(), 0u) << "no spills; weak test";
  EXPECT_TRUE(auditAllocation(F, A).empty());
}

//===--------------------------------------------------------------------===//
// The audit rejects corrupted allocations.
//===--------------------------------------------------------------------===//

/// A small allocated function plus its result, ready to be corrupted.
struct Allocated {
  Module M;
  Function *F = nullptr;
  AllocationResult A;
};

Allocated allocateSmall(unsigned IntK = 4, unsigned FltK = 3) {
  Allocated Out;
  Out.F = &buildRandomProgram(Out.M, 42);
  AllocatorConfig C;
  C.Machine = MachineInfo(IntK, FltK);
  Out.A = allocateRegisters(*Out.F, C);
  EXPECT_TRUE(Out.A.Success);
  EXPECT_TRUE(auditAllocation(*Out.F, Out.A).empty());
  return Out;
}

TEST(AuditTest, CatchesOutOfFileRegister) {
  Allocated X = allocateSmall();
  // Push one assignment past the end of its register file.
  X.A.ColorOf[0] = int32_t(X.A.Machine.numRegs(X.F->regClass(0)));
  auto Errors = auditAllocation(*X.F, X.A);
  ASSERT_FALSE(Errors.empty());
  Status S = auditAllocationStatus(*X.F, X.A);
  EXPECT_EQ(S.code(), StatusCode::AuditFailure);
}

TEST(AuditTest, CatchesMissingAssignment) {
  Allocated X = allocateSmall();
  X.A.ColorOf[0] = -1;
  EXPECT_FALSE(auditAllocation(*X.F, X.A).empty());
}

TEST(AuditTest, CatchesInjectedMiscoloringWhenAllocatorDoesNot) {
  // With the in-allocator audit off, the injected miscoloring sails
  // through as Converged — the external audit must still catch it.
  Module M;
  Function &F = buildRandomProgram(M, 11);
  AllocatorConfig C;
  C.Machine = MachineInfo(4, 3);
  C.Audit = false;
  C.FaultInject.Miscolor = true;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success);
  ASSERT_EQ(A.Outcome, AllocOutcome::Converged);
  EXPECT_FALSE(auditAllocation(F, A).empty());
}

TEST(AuditTest, CatchesCorruptedSpillSlot) {
  Allocated X = allocateSmall(4, 2); // tight: guarantees spill code
  ASSERT_GT(X.F->numSpillSlots(), 0u) << "no spill code; weak test";
  // Point the first spill load at a slot that does not exist.
  bool Corrupted = false;
  for (BasicBlock &B : X.F->blocks()) {
    for (Instruction &I : B.Insts)
      if (I.Op == Opcode::SpillLd) {
        I.Ops[1] = Operand::intImm(int64_t(X.F->numSpillSlots()) + 7);
        Corrupted = true;
        break;
      }
    if (Corrupted)
      break;
  }
  ASSERT_TRUE(Corrupted);
  EXPECT_FALSE(auditAllocation(*X.F, X.A).empty());
}

//===--------------------------------------------------------------------===//
// Degradation ladder.
//===--------------------------------------------------------------------===//

TEST(AuditTest, MiscolorFaultDegradesToCorrectFallback) {
  Module M;
  Function &F = buildRandomProgram(M, 5);
  Simulator Sim(M);
  MemoryImage GoldenMem(M);
  ExecutionResult Golden = Sim.runVirtual(F, GoldenMem);
  ASSERT_TRUE(Golden.Ok);

  AllocatorConfig C;
  C.Machine = MachineInfo(4, 3);
  C.Audit = true;
  C.FaultInject.Miscolor = true;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_EQ(A.Diag.code(), StatusCode::AuditFailure);
  EXPECT_TRUE(auditAllocation(F, A).empty())
      << "fallback allocation must itself audit clean";

  // Degraded still means correct: the spill-everything code computes
  // the same results as the virtual golden run.
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runAllocated(F, A, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntReturn, Golden.IntReturn);
  EXPECT_EQ(R.FloatReturn, Golden.FloatReturn);
  EXPECT_TRUE(Mem == GoldenMem);
}

TEST(AuditTest, NonConvergenceFaultDegrades) {
  Module M;
  Function &F = buildRandomProgram(M, 9);
  AllocatorConfig C;
  C.Machine = MachineInfo(4, 3);
  C.FaultInject.NonConvergence = true;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_EQ(A.Diag.code(), StatusCode::NonConvergence);
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(AuditTest, FallbackWorksAtMinimumFileSizes) {
  // The acceptance grid's smallest machine: 4 int, 2 flt. The
  // spill-everything fallback must still terminate and audit clean.
  Module M;
  Function &F = buildRandomProgram(M, 3);
  AllocatorConfig C;
  C.Machine = MachineInfo(4, 2);
  C.FaultInject.NonConvergence = true;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_TRUE(auditAllocation(F, A).empty());
}

TEST(AuditTest, MalformedFunctionFailsWithDiagnosticNotAbort) {
  Module M;
  Function &Empty = M.newFunction("hollow"); // no blocks at all
  AllocatorConfig C;
  AllocationResult A = allocateRegisters(Empty, C);
  EXPECT_FALSE(A.Success);
  EXPECT_EQ(A.Outcome, AllocOutcome::Failed);
  EXPECT_EQ(A.Diag.code(), StatusCode::InvalidInput);
  EXPECT_NE(A.Diag.toString().find("hollow"), std::string::npos)
      << A.Diag.toString();
}

TEST(AuditTest, DegradedFunctionsReportedThroughModuleAllocation) {
  Module M;
  buildDAXPY(M);
  buildDDOT(M);
  AllocatorConfig C;
  C.Machine = MachineInfo(6, 4);
  C.FaultInject.NonConvergence = true; // every function degrades
  ModuleAllocationResult R = allocateModule(M, C);
  ASSERT_EQ(R.Functions.size(), M.numFunctions());
  EXPECT_TRUE(R.allSucceeded());
  EXPECT_EQ(R.numDegraded(), M.numFunctions());
  for (const AllocationResult &A : R.Functions)
    EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
}

} // namespace
